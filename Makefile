GO ?= go

.PHONY: check test bench bench-solver bench-sim bench-controlplane audit-torture vet build fmt

check: ## gofmt + vet + build + race-enabled tests (tier-1 verify)
	sh scripts/check.sh

fmt:
	gofmt -w .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .

bench-solver: ## run the solver scale benchmarks and regenerate BENCH_solver.json
	$(GO) test ./internal/solver -run '^$$' -bench 'SolveScale|MoveDelta' -benchmem
	$(GO) run ./cmd/smbench -fig solverscale -bench-out BENCH_solver.json

bench-sim: ## run the kernel benchmarks and regenerate BENCH_sim.json
	$(GO) test . -run '^$$' -bench 'ProfilerOverhead|SimScale' -benchmem
	$(GO) run ./cmd/smbench -fig simscale -bench-sim-out BENCH_sim.json

bench-controlplane: ## run the 10M-shard control-plane benchmark and regenerate BENCH_controlplane.json
	$(GO) test ./internal/discovery -run '^$$' -bench 'Publish' -benchmem
	$(GO) run ./cmd/smbench -fig controlscale -bench-controlplane-out BENCH_controlplane.json

audit-torture: ## full 500-seed migration-torture sweep -> FOUNDBUGS_audit.json (fails on drift vs the committed log)
	$(GO) run ./cmd/smbench -fig torture -foundbugs-out FOUNDBUGS_audit.json
	git diff --exit-code -- FOUNDBUGS_audit.json || { \
		echo "audit-torture: FOUNDBUGS_audit.json drifted from the committed log (see diff above)"; exit 1; }
