GO ?= go

.PHONY: check test bench vet build fmt

check: ## gofmt + vet + build + race-enabled tests (tier-1 verify)
	sh scripts/check.sh

fmt:
	gofmt -w .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem .
