// Package shardmanager's top-level benchmarks regenerate every table and
// figure of the paper at quick scale — one benchmark per experiment — plus
// microbenchmarks of the performance-critical paths (the solver's move
// evaluation and the allocator). Run the full-parameter versions with
// cmd/smbench.
//
//	go test -bench=. -benchmem
package shardmanager

import (
	"fmt"
	"testing"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/experiments"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/simprof"
	"shardmanager/internal/solver"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, experiments.ScaleQuick)
		if err != nil {
			b.Fatal(err)
		}
		if r == nil || r.ID == "" {
			b.Fatal("empty report")
		}
	}
}

// --- one bench per paper table/figure ---

func BenchmarkFig01PlannedVsUnplanned(b *testing.B) { benchExperiment(b, "fig1") }
func BenchmarkFig02AdoptionGrowth(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig04Demographics(b *testing.B)       { benchExperiment(b, "fig4") }
func BenchmarkFig05Deployments(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFig06Replication(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig07LoadBalancing(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig08DrainPolicies(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig09StorageMachines(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFig15ApplicationScale(b *testing.B)   { benchExperiment(b, "fig15") }
func BenchmarkFig16MiniSMScale(b *testing.B)        { benchExperiment(b, "fig16") }
func BenchmarkFig17Availability(b *testing.B)       { benchExperiment(b, "fig17") }
func BenchmarkFig18ProductionTrace(b *testing.B)    { benchExperiment(b, "fig18") }
func BenchmarkFig19GeoFailover(b *testing.B)        { benchExperiment(b, "fig19") }
func BenchmarkFig20DBShardFollowing(b *testing.B)   { benchExperiment(b, "fig20") }
func BenchmarkFig23ContinuousLB(b *testing.B)       { benchExperiment(b, "fig23") }

// Fig 21/22 and the extra ablations are solver stress tests; the quick
// registry entries are still multi-second, so bench tighter configurations
// here and leave the full sweep to smbench.

func BenchmarkFig21SolverScale(b *testing.B) {
	p := experiments.DefaultSolverScaleParams()
	p.Scales = [][2]int{{200, 15000}}
	for i := 0; i < b.N; i++ {
		if r := experiments.Fig21(p); r == nil {
			b.Fatal("nil report")
		}
	}
}

func BenchmarkFig22SolverAblation(b *testing.B) {
	p := experiments.DefaultSolverAblationParams()
	p.Servers, p.Shards, p.TimeLimit = 200, 15000, 5*time.Second
	for i := 0; i < b.N; i++ {
		if r := experiments.Fig22(p); r == nil {
			b.Fatal("nil report")
		}
	}
}

func BenchmarkAblationEquivalence(b *testing.B)  { benchAblationVariant(b, "equivalence") }
func BenchmarkAblationBigFirst(b *testing.B)     { benchAblationVariant(b, "bigfirst") }
func BenchmarkAblationSwapMoves(b *testing.B)    { benchAblationVariant(b, "swap") }
func BenchmarkAblationGoalBatching(b *testing.B) { benchAblationVariant(b, "batching") }

// benchAblationVariant measures one §5.3 design choice by solving the same
// placement problem with the optimization disabled.
func benchAblationVariant(b *testing.B, which string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rng := sim.NewRNG(1)
		servers := makeBenchServers(rng, 200)
		shards := makeBenchShards(rng, 6000)
		pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
		switch which {
		case "equivalence":
			pol.UseEquivalence = false
		case "bigfirst":
			pol.BigFirst = false
		case "swap":
			pol.EnableSwap = false
		case "batching":
			pol.GoalBatching = false
		}
		a := allocator.New(pol, 1)
		res := a.Run(allocator.Input{Servers: servers, Shards: shards,
			Current: map[shard.ID][]shard.ServerID{}}, allocator.Periodic)
		if res.Final.Unassigned != 0 {
			b.Fatalf("unassigned: %+v", res.Final)
		}
	}
}

func makeBenchServers(rng *sim.RNG, n int) []allocator.ServerInfo {
	out := make([]allocator.ServerInfo, n)
	for i := range out {
		region := fmt.Sprintf("region%d", i%3)
		out[i] = allocator.ServerInfo{
			ID: shard.ServerID(fmt.Sprintf("srv%04d", i)),
			Domains: map[string]string{
				"region": region,
				"rack":   fmt.Sprintf("%s/rack%02d", region, i%8),
			},
			Capacity: topology.Capacity{
				topology.ResourceCPU:        100,
				topology.ResourceShardCount: 1000,
			},
			Alive: true,
		}
	}
	return out
}

func makeBenchShards(rng *sim.RNG, n int) []allocator.ShardSpec {
	out := make([]allocator.ShardSpec, n)
	for i := range out {
		out[i] = allocator.ShardSpec{
			ID:       shard.ID(fmt.Sprintf("s%05d", i)),
			Replicas: 2,
			Load: topology.Capacity{
				topology.ResourceCPU:        0.2 + 2*rng.Float64(),
				topology.ResourceShardCount: 1,
			},
		}
	}
	return out
}

// --- microbenchmarks of the hot paths ---

// BenchmarkSolverMoveEvaluation measures raw local-search throughput:
// candidate evaluations per second on a mid-size problem.
func BenchmarkSolverMoveEvaluation(b *testing.B) {
	rng := sim.NewRNG(1)
	p := solver.NewProblem([]string{"cpu"})
	for i := 0; i < 500; i++ {
		p.AddBucket(solver.Bucket{
			Name:     fmt.Sprintf("b%d", i),
			Capacity: []float64{100},
			Group:    fmt.Sprintf("g%d", i%4),
		})
	}
	for i := 0; i < 20000; i++ {
		p.AddEntity(solver.Entity{
			Name:    fmt.Sprintf("e%d", i),
			Load:    []float64{0.2 + 4*rng.Float64()},
			Bucket:  solver.BucketID(rng.Intn(500)),
			Movable: true,
		})
	}
	p.AddConstraint(solver.CapacitySpec{Metric: "cpu"})
	p.AddBalanceGoal(solver.BalanceSpec{Metric: "cpu", UtilCap: 0.9, MaxDiff: 0.1, Weight: 1})
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		opt := solver.DefaultOptions()
		opt.Seed = uint64(i + 1)
		opt.MoveBudget = 200
		res := solver.Solve(p, opt)
		total += res.Evaluated
	}
	b.ReportMetric(float64(total)/float64(b.N), "evals/op")
}

// BenchmarkTracingOverhead measures the cost the tracing layer adds to a
// routed request workload on a live deployment — with tracing disabled (the
// default nil tracer) and enabled. The disabled case should be within noise
// of the pre-tracing baseline.
func BenchmarkTracingOverhead(b *testing.B) {
	const nShards = 50
	run := func(b *testing.B, tr *trace.Tracer) {
		backing := apps.NewKVBacking()
		d := experiments.Build(experiments.DeploymentSpec{
			Regions:          []topology.RegionID{"west", "east"},
			ServersPerRegion: 4,
			Orch: orchestrator.Config{
				App:      "benchkv",
				Strategy: shard.PrimarySecondary,
				Shards: experiments.UniformShardConfigs(nShards, 2, topology.Capacity{
					topology.ResourceCPU:        1,
					topology.ResourceShardCount: 1,
				}),
				Policy: allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount),
				ServerCapacity: topology.Capacity{
					topology.ResourceCPU:        100,
					topology.ResourceShardCount: 2 * nShards,
				},
			},
			AppFactory: func(s *appserver.Server) appserver.Application {
				return apps.NewKVStore(s, backing)
			},
			Tracer: tr,
			Seed:   1,
		})
		if err := d.Settle(10 * time.Minute); err != nil {
			b.Fatal(err)
		}
		ks := experiments.KeyspaceFor(nShards)
		client := d.NewClient("west", ks, routing.DefaultOptions())
		for i := 0; i < 30 && client.MapVersion() == 0; i++ {
			d.Loop.RunFor(time.Second) // wait out initial shard-map propagation
		}
		if client.MapVersion() == 0 {
			b.Fatal("client never received a shard map")
		}
		rng := d.Loop.RNG().Fork()
		request := func() {
			var got *routing.Result
			client.Do(experiments.KeyForShard(rng.Intn(nShards)), false, apps.KVOpScan, nil,
				func(res routing.Result) { got = &res })
			for i := 0; i < 30 && got == nil; i++ {
				d.Loop.RunFor(time.Second)
			}
			if got == nil || !got.OK {
				b.Fatalf("request failed: %+v", got)
			}
		}
		request() // warmup
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			request()
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, trace.New(trace.Options{})) })
}

// BenchmarkProfilerOverhead measures what the kernel profiler adds to one
// schedule+dispatch cycle. The disabled cases (no profiler attached) are the
// tier-1 bar: a labeled event must cost the same as an unlabeled one — no
// extra allocations, the label check is a single nil-pointer test.
func BenchmarkProfilerOverhead(b *testing.B) {
	lb := sim.LabelFor("bench", "tick")
	run := func(b *testing.B, labeled bool, p sim.Profiler) {
		l := sim.NewLoop(1)
		if p != nil {
			l.SetProfiler(p)
		}
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if labeled {
				l.AfterL(time.Microsecond, lb, fn)
			} else {
				l.After(time.Microsecond, fn)
			}
			if !l.Step() {
				b.Fatal("empty loop")
			}
		}
	}
	b.Run("disabled-unlabeled", func(b *testing.B) { run(b, false, nil) })
	b.Run("disabled-labeled", func(b *testing.B) { run(b, true, nil) })
	b.Run("enabled", func(b *testing.B) { run(b, true, simprof.New(simprof.Options{})) })
	b.Run("enabled-allocs", func(b *testing.B) { run(b, true, simprof.New(simprof.Options{Allocs: true})) })
}

// BenchmarkSimScale drives one small simscale point per iteration — the
// kernel-throughput benchmark smbench runs at full scale for BENCH_sim.json.
func BenchmarkSimScale(b *testing.B) {
	benchSimScale(b, false)
}

// BenchmarkSimScaleTraced is the same point with a live tracer attached:
// every dispatch opens and closes a span and samples two counters. The gap
// between this and BenchmarkSimScale is the traced kernel path's overhead
// (also recorded in BENCH_sim.json as tracer_overhead_pct).
func BenchmarkSimScaleTraced(b *testing.B) {
	benchSimScale(b, true)
}

func benchSimScale(b *testing.B, traced bool) {
	b.Helper()
	b.ReportAllocs()
	p := experiments.DefaultSimScaleParams()
	p.Points = []experiments.SimScalePoint{{Shards: 2000, Clients: 200, Servers: 50}}
	p.SimTime = 2 * time.Minute
	p.MeasureTracerOverhead = false
	for i := 0; i < b.N; i++ {
		if traced {
			p.Tracer = trace.New(trace.Options{})
		}
		r := experiments.SimScale(p)
		if r == nil || r.Extra == nil {
			b.Fatal("empty simscale report")
		}
	}
}

// BenchmarkAllocatorEmergency measures the latency-critical path: replacing
// a failed server's replicas.
func BenchmarkAllocatorEmergency(b *testing.B) {
	rng := sim.NewRNG(1)
	servers := makeBenchServers(rng, 100)
	shards := makeBenchShards(rng, 3000)
	a := allocator.New(allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount), 1)
	initial := a.Run(allocator.Input{Servers: servers, Shards: shards,
		Current: map[shard.ID][]shard.ServerID{}}, allocator.Periodic)
	servers[0].Alive = false
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := a.Run(allocator.Input{Servers: servers, Shards: shards,
			Current: initial.Assignment}, allocator.Emergency)
		if res.Final.Unassigned != 0 {
			b.Fatalf("unassigned: %+v", res.Final)
		}
	}
}
