// Command smbench regenerates the paper's tables and figures.
//
// Usage:
//
//	smbench -fig fig17            # one experiment, full-paper parameters
//	smbench -fig all -scale quick # everything, scaled down
//	smbench -fig solverscale      # solver perf benchmark -> BENCH_solver.json
//	smbench -fig fig21 -scale stress  # solver experiments at ~100k entities
//	smbench -list                 # show available experiment ids
//	smbench -faults "t=60s partition(region-a|region-b) for 120s"
//	                              # compound-fault experiment, custom timeline
//	smbench -fig controlscale     # 10M-shard control plane -> BENCH_controlplane.json
//	smbench -controlscale -controlplane-baseline BENCH_controlplane.json
//	                              # fast publish-cost smoke vs committed record
//
// Each experiment prints its parameters, result tables, downsampled curves,
// and headline findings; EXPERIMENTS.md records the paper-vs-measured
// comparison for every figure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"shardmanager/internal/experiments"
	"shardmanager/internal/healthmon"
	"shardmanager/internal/metrics"
	"shardmanager/internal/sim"
	"shardmanager/internal/simprof"
	"shardmanager/internal/trace"
)

func main() {
	fig := flag.String("fig", "all", "experiment id (fig1..fig23, solverscale, ablations) or 'all'")
	scale := flag.String("scale", "full", "'full' (paper parameters), 'quick', or 'stress' (~100k-entity solver problems)")
	benchOut := flag.String("bench-out", "BENCH_solver.json", "where the solverscale experiment writes its machine-readable benchmark record")
	list := flag.Bool("list", false, "list experiment ids and exit")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run to this file (load in chrome://tracing or ui.perfetto.dev)")
	traceText := flag.String("trace-text", "", "write a human-readable text timeline of the run to this file")
	metricsOut := flag.String("metrics-out", "", "write the run's labeled metrics to this file (byte-stable for a given seed)")
	expo := flag.String("expo", "prom", "metrics exposition format: 'prom' (Prometheus text), 'json', or 'csv'")
	faultSpec := flag.String("faults", "", "fault-timeline DSL for the 'faults' experiment, e.g. \"t=60s partition(region-a|region-b) for 120s\" (see internal/faults); implies -fig faults unless -fig is set")
	tortureSeeds := flag.Int("torture-seeds", 0, "override the 'torture' experiment's seed count (0 keeps the scale default)")
	tortureStart := flag.Uint64("torture-start", 0, "override the 'torture' experiment's starting seed (0 keeps the default)")
	foundBugsOut := flag.String("foundbugs-out", "FOUNDBUGS_audit.json", "where the torture experiment writes its found-bug log (seed-pinned audit violations)")
	failOnBugs := flag.Bool("fail-on-bugs", false, "exit non-zero if the torture sweep records any audit violation or panic (CI gate)")
	benchSimOut := flag.String("bench-sim-out", "BENCH_sim.json", "where the simscale experiment writes its machine-readable kernel benchmark record")
	simSmoke := flag.Bool("sim-smoke", false, "run only the largest minute-cadence simscale point (120k shards) as a fast kernel-throughput smoke; implies -fig simscale unless -fig is set")
	simBaseline := flag.String("sim-baseline", "", "compare the simscale run's events/sec against this committed BENCH_sim.json (points matched by shard count); exit non-zero if any point regresses more than 20%")
	benchControlOut := flag.String("bench-controlplane-out", "BENCH_controlplane.json", "where the controlscale experiment writes its machine-readable control-plane benchmark record")
	controlSmoke := flag.Bool("controlscale", false, "run only the smallest controlscale point as a fast control-plane publish-cost smoke; implies -fig controlscale unless -fig is set")
	controlBaseline := flag.String("controlplane-baseline", "", "compare the controlscale run's delta entries/sec against this committed BENCH_controlplane.json (points matched by shard count); exit non-zero if any point regresses more than 20%")
	profOut := flag.String("prof-out", "", "write the kernel profiler's text report to this file (byte-stable for a given seed unless -prof-wall)")
	profJSON := flag.String("prof-json", "", "write the kernel profiler's JSON report to this file")
	profFolded := flag.String("prof-folded", "", "write folded stacks (flamegraph.pl / inferno / speedscope input) to this file")
	profWall := flag.Bool("prof-wall", false, "include wall-clock and allocation columns in the kernel profiler reports (nondeterministic)")
	cpuProfile := flag.String("cpuprofile", "", "write a Go CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a Go heap profile taken at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *faultSpec != "" {
		experiments.SetFaultSpec(*faultSpec)
		if *fig == "all" {
			*fig = "faults"
		}
	}
	if *tortureSeeds > 0 || *tortureStart > 0 {
		experiments.SetTortureOverride(func(p *experiments.TortureParams) {
			if *tortureSeeds > 0 {
				p.Seeds = *tortureSeeds
			}
			if *tortureStart > 0 {
				p.StartSeed = *tortureStart
			}
		})
		if *fig == "all" {
			*fig = "torture"
		}
	}

	if *simSmoke {
		experiments.SetSimScaleOverride(func(p *experiments.SimScaleParams) {
			for _, pt := range p.Points {
				if pt.Shards == 120000 {
					p.Points = []experiments.SimScalePoint{pt}
					return
				}
			}
			if len(p.Points) > 0 { // fallback: keep the last point
				p.Points = p.Points[len(p.Points)-1:]
			}
		})
		if *fig == "all" {
			*fig = "simscale"
		}
	}

	if *controlSmoke {
		experiments.SetControlScaleOverride(func(p *experiments.ControlScaleParams) {
			if len(p.Points) > 1 {
				p.Points = p.Points[:1]
			}
		})
		if *fig == "all" {
			*fig = "controlscale"
		}
	}

	var tracer *trace.Tracer
	if *traceOut != "" || *traceText != "" {
		tracer = trace.New(trace.Options{})
		experiments.SetDefaultTracer(tracer)
	}
	var reg *metrics.Registry
	if *metricsOut != "" {
		// One registry across every deployment the run builds, so the
		// export covers the whole invocation.
		reg = metrics.NewRegistry()
		experiments.SetDefaultHealthFactory(func() *healthmon.Monitor {
			return healthmon.New(healthmon.Options{Registry: reg})
		})
	}
	var prof *simprof.Profile
	if *profOut != "" || *profJSON != "" || *profFolded != "" {
		// One profile across every deployment the run builds: deployments
		// run sequentially, so combined attribution is safe and covers the
		// whole invocation. Alloc attribution only when the wall-clock
		// columns that render it were requested (it costs ~1µs/event).
		prof = simprof.New(simprof.Options{Allocs: *profWall, Registry: reg})
		experiments.SetDefaultProfiler(func() sim.Profiler { return prof })
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-10s %s\n", id, experiments.Title(id))
		}
		return
	}
	sc := experiments.ScaleFull
	switch *scale {
	case "full":
	case "quick":
		sc = experiments.ScaleQuick
	case "stress":
		sc = experiments.ScaleStress
	default:
		fmt.Fprintf(os.Stderr, "smbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = experiments.IDs()
	}
	bugsFound := false
	for _, id := range ids {
		start := time.Now()
		report, err := experiments.Run(id, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(report.Render())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Truncate(time.Millisecond))
		if report.ID == "solverscale" && *benchOut != "" {
			if err := writeBench(report, *benchOut); err != nil {
				fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
				os.Exit(1)
			}
		}
		if report.ID == "simscale" && *benchSimOut != "" {
			if err := writeBenchSim(report, *benchSimOut); err != nil {
				fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
				os.Exit(1)
			}
		}
		if report.ID == "simscale" && *simBaseline != "" {
			if err := checkSimBaseline(report, *simBaseline); err != nil {
				fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
				os.Exit(1)
			}
		}
		if report.ID == "controlscale" && *benchControlOut != "" {
			if err := writeBenchControl(report, *benchControlOut); err != nil {
				fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
				os.Exit(1)
			}
		}
		if report.ID == "controlscale" && *controlBaseline != "" {
			if err := checkControlBaseline(report, *controlBaseline); err != nil {
				fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
				os.Exit(1)
			}
		}
		if report.ID == "torture" && *foundBugsOut != "" {
			if err := writeFoundBugs(report, *foundBugsOut); err != nil {
				fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
				os.Exit(1)
			}
		}
		if report.ID == "torture" && *failOnBugs {
			if art, ok := report.Extra.(*experiments.TortureArtifacts); ok && (art.Violations > 0 || art.Panics > 0) {
				fmt.Fprintf(os.Stderr, "smbench: torture sweep recorded %d violations on %d seeds (%d panics); failing per -fail-on-bugs\n",
					art.Violations, art.SeedsHit, art.Panics)
				bugsFound = true
			}
		}
	}

	if err := writeTrace(tracer, *traceOut, *traceText); err != nil {
		fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
		os.Exit(1)
	}
	if err := writeMetrics(reg, *metricsOut, *expo); err != nil {
		fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
		os.Exit(1)
	}
	if err := writeProf(prof, *profOut, *profJSON, *profFolded, *profWall); err != nil {
		fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
		os.Exit(1)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC() // settle live-heap numbers before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("heap profile written to %s\n", *memProfile)
	}
	if bugsFound {
		os.Exit(1)
	}
}

// writeBenchSim writes the simscale experiment's structured kernel
// benchmark record (BENCH_sim.json): one entry per scale point with
// events/sec, allocs/event, heap depth, and the top-5 cost centers.
func writeBenchSim(r *experiments.Report, path string) error {
	if r.Extra == nil {
		return fmt.Errorf("simscale report carries no benchmark record")
	}
	data, err := json.MarshalIndent(r.Extra, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("kernel benchmark record written to %s\n", path)
	return nil
}

// checkSimBaseline guards kernel throughput: every point in the run that has
// a same-shard-count point in the committed BENCH_sim.json must reach at
// least 80% of its recorded events/sec. Wall-clock noise on shared machines
// is real, so the margin is deliberately loose — the gate exists to catch
// structural kernel regressions, not single-digit drift.
func checkSimBaseline(r *experiments.Report, path string) error {
	rec, ok := r.Extra.(*experiments.SimScaleRecord)
	if !ok || rec == nil {
		return fmt.Errorf("simscale report carries no benchmark record")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base experiments.SimScaleRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %v", path, err)
	}
	basePts := make(map[int]experiments.SimScalePointRecord, len(base.Points))
	for _, pt := range base.Points {
		basePts[pt.Shards] = pt
	}
	checked := 0
	for _, pt := range rec.Points {
		b, ok := basePts[pt.Shards]
		if !ok || b.EventsPerSec <= 0 {
			continue
		}
		checked++
		if pt.EventsPerSec < 0.8*b.EventsPerSec {
			return fmt.Errorf("kernel throughput regression at %d shards: %.0f events/sec vs committed %.0f (more than 20%% below %s)",
				pt.Shards, pt.EventsPerSec, b.EventsPerSec, path)
		}
		fmt.Printf("kernel-bench smoke: %d shards at %.0f events/sec vs committed %.0f (ok)\n",
			pt.Shards, pt.EventsPerSec, b.EventsPerSec)
	}
	if checked == 0 {
		return fmt.Errorf("no point in this run matches any committed point in %s", path)
	}
	return nil
}

// writeBenchControl writes the controlscale experiment's structured
// control-plane benchmark record (BENCH_controlplane.json): one entry per
// scale point with the mini-SM pool size, full-vs-delta publication cost and
// bytes per publish, and simulated map-convergence latency.
func writeBenchControl(r *experiments.Report, path string) error {
	if r.Extra == nil {
		return fmt.Errorf("controlscale report carries no benchmark record")
	}
	data, err := json.MarshalIndent(r.Extra, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("control-plane benchmark record written to %s\n", path)
	return nil
}

// checkControlBaseline guards delta-publication throughput: every point in
// the run that has a same-shard-count point in the committed
// BENCH_controlplane.json must reach at least 80% of its recorded delta
// entries/sec. The loose margin tolerates shared-machine wall-clock noise;
// the gate exists to catch structural regressions in the delta publish path.
func checkControlBaseline(r *experiments.Report, path string) error {
	rec, ok := r.Extra.(*experiments.ControlScaleRecord)
	if !ok || rec == nil {
		return fmt.Errorf("controlscale report carries no benchmark record")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base experiments.ControlScaleRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse %s: %v", path, err)
	}
	basePts := make(map[int]experiments.ControlScalePointRecord, len(base.Points))
	for _, pt := range base.Points {
		basePts[pt.Shards] = pt
	}
	checked := 0
	for _, pt := range rec.Points {
		b, ok := basePts[pt.Shards]
		if !ok || b.DeltaEntriesPerSec <= 0 {
			continue
		}
		checked++
		if pt.DeltaEntriesPerSec < 0.8*b.DeltaEntriesPerSec {
			return fmt.Errorf("delta publish regression at %d shards: %.0f entries/sec vs committed %.0f (more than 20%% below %s)",
				pt.Shards, pt.DeltaEntriesPerSec, b.DeltaEntriesPerSec, path)
		}
		fmt.Printf("control-plane smoke: %d shards at %.0f delta entries/sec vs committed %.0f (ok)\n",
			pt.Shards, pt.DeltaEntriesPerSec, b.DeltaEntriesPerSec)
	}
	if checked == 0 {
		return fmt.Errorf("no point in this run matches any committed point in %s", path)
	}
	return nil
}

// writeFoundBugs writes the torture sweep's found-bug log: every audit
// violation discovered, pinned to the seed that reproduces it (committed
// even when empty, so a sweep that finds nothing is distinguishable from a
// sweep that never ran).
func writeFoundBugs(r *experiments.Report, path string) error {
	if r.Extra == nil {
		return fmt.Errorf("torture report carries no artifacts")
	}
	data, err := json.MarshalIndent(r.Extra, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("found-bug log written to %s\n", path)
	return nil
}

// writeProf exports the run's kernel profile in the requested formats
// (no-op when no -prof-* flag was given).
func writeProf(prof *simprof.Profile, textPath, jsonPath, foldedPath string, wall bool) error {
	if prof == nil {
		return nil
	}
	opts := simprof.ReportOptions{Wall: wall}
	write := func(path string, render func(io.Writer, simprof.ReportOptions) error, what string) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f, opts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%s written to %s\n", what, path)
		return nil
	}
	if err := write(textPath, prof.WriteText, "kernel profile"); err != nil {
		return err
	}
	if err := write(jsonPath, prof.WriteJSON, "kernel profile (json)"); err != nil {
		return err
	}
	return write(foldedPath, prof.WriteFolded, "folded stacks")
}

// writeBench writes the solverscale experiment's machine-readable record
// (BENCH_solver.json): one flat JSON object with the headline numbers —
// problem size, evaluation throughput, moves, violations, and wall time.
// Integral values are emitted as JSON integers for readability.
func writeBench(r *experiments.Report, path string) error {
	obj := make(map[string]any, len(r.Values))
	for k, v := range r.Values {
		if v == float64(int64(v)) {
			obj[k] = int64(v)
		} else {
			obj[k] = v
		}
	}
	data, err := json.MarshalIndent(obj, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchmark record written to %s\n", path)
	return nil
}

// writeMetrics exports the shared registry in the requested format (no-op
// when -metrics-out is unset).
func writeMetrics(reg *metrics.Registry, path, format string) error {
	if reg == nil || path == "" {
		return nil
	}
	var write func(io.Writer) error
	switch format {
	case "prom":
		write = reg.WritePrometheus
	case "json":
		write = reg.WriteJSON
	case "csv":
		write = reg.WriteCSV
	default:
		return fmt.Errorf("unknown exposition format %q (want prom, json, or csv)", format)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("metrics written to %s (%s)\n", path, format)
	return nil
}

// writeTrace exports the tracer to the requested files (no-ops when tracing
// is off).
func writeTrace(tracer *trace.Tracer, chromePath, textPath string) error {
	if tracer == nil {
		return nil
	}
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := tracer.WriteChrome(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", chromePath)
	}
	if textPath != "" {
		f, err := os.Create(textPath)
		if err != nil {
			return err
		}
		if err := tracer.WriteText(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace timeline written to %s\n", textPath)
	}
	return nil
}
