// Command smbench regenerates the paper's tables and figures.
//
// Usage:
//
//	smbench -fig fig17            # one experiment, full-paper parameters
//	smbench -fig all -scale quick # everything, scaled down
//	smbench -list                 # show available experiment ids
//
// Each experiment prints its parameters, result tables, downsampled curves,
// and headline findings; EXPERIMENTS.md records the paper-vs-measured
// comparison for every figure.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"shardmanager/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "experiment id (fig1..fig23, ablations) or 'all'")
	scale := flag.String("scale", "full", "'full' (paper parameters) or 'quick'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-10s %s\n", id, experiments.Title(id))
		}
		return
	}
	sc := experiments.ScaleFull
	if *scale == "quick" {
		sc = experiments.ScaleQuick
	} else if *scale != "full" {
		fmt.Fprintf(os.Stderr, "smbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}

	ids := []string{*fig}
	if *fig == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		start := time.Now()
		report, err := experiments.Run(id, sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "smbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(report.Render())
		fmt.Printf("(%s completed in %v)\n\n", id, time.Since(start).Truncate(time.Millisecond))
	}
}
