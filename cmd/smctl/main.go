// Command smctl builds a demonstration Shard Manager deployment, runs a
// short operational scenario on it, and dumps control-plane state — a quick
// way to see the whole system (cluster manager, orchestrator,
// TaskController, discovery) working together.
//
// Usage:
//
//	smctl                         # default demo: 3 regions, failover + drain
//	smctl -servers 20 -shards 500 -replicas 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/experiments"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/taskcontroller"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
)

func main() {
	servers := flag.Int("servers", 12, "servers per region")
	shards := flag.Int("shards", 120, "number of shards")
	replicas := flag.Int("replicas", 2, "replicas per shard")
	seed := flag.Uint64("seed", 42, "simulation seed")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the scenario to this file")
	traceText := flag.String("trace-text", "", "write a human-readable text timeline to this file")
	flag.Parse()

	var tracer *trace.Tracer
	if *traceOut != "" || *traceText != "" {
		tracer = trace.New(trace.Options{})
	}

	regions := []topology.RegionID{"frc", "prn", "odn"}
	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	strategy := shard.PrimarySecondary
	if *replicas == 1 {
		strategy = shard.PrimaryOnly
		pol.SpreadWeight = 0
	}
	cfg := orchestrator.Config{
		App:      "demo",
		Strategy: strategy,
		Shards: experiments.UniformShardConfigs(*shards, *replicas, topology.Capacity{
			topology.ResourceCPU:        1,
			topology.ResourceShardCount: 1,
		}),
		Policy: pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: float64(*shards),
		},
		GracefulMigration: true,
		FailoverGrace:     20 * time.Second,
	}
	tp := taskcontroller.DefaultPolicy(3)
	backing := apps.NewKVBacking()
	d := experiments.Build(experiments.DeploymentSpec{
		Regions:          regions,
		ServersPerRegion: *servers,
		Orch:             cfg,
		TaskPolicy:       &tp,
		ClusterOpts:      cluster.DefaultOptions(),
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Tracer: tracer,
		Seed:   *seed,
	})

	step := func(title string) {
		fmt.Printf("\n--- %s (t=%v) ---\n", title, d.Loop.Now().Truncate(time.Second))
		fmt.Println(d.Orch.Stats())
	}

	if err := d.Settle(10 * time.Minute); err != nil {
		fmt.Fprintf(os.Stderr, "smctl: %v\n", err)
		os.Exit(1)
	}
	step("initial placement settled")
	dumpMap(d, 5)

	// Scenario 1: unplanned machine failure and automatic failover.
	mgr := d.Managers["frc"]
	victim := mgr.RunningContainers(d.Jobs["frc"])[0]
	c, _ := mgr.Container(victim)
	fmt.Printf("\nkilling machine %s (container %s)\n", c.Machine, victim)
	mgr.KillMachine(c.Machine)
	d.Loop.RunFor(3 * time.Minute)
	step("after unplanned failure + emergency reallocation")

	// Scenario 2: negotiable rolling upgrade gated by the TaskController.
	fmt.Printf("\nrolling upgrade of job %s (drain + graceful migration)\n", d.Jobs["prn"])
	done := false
	d.Managers["prn"].RollingUpgrade(d.Jobs["prn"], 2, "upgrade", func() { done = true })
	for i := 0; i < 120 && !done; i++ {
		d.Loop.RunFor(30 * time.Second)
	}
	step(fmt.Sprintf("after rolling upgrade (done=%v)", done))

	// Scenario 3: scheduled maintenance with advance notice.
	m2 := d.Managers["odn"].RunningContainers(d.Jobs["odn"])
	if len(m2) > 0 {
		cc, _ := d.Managers["odn"].Container(m2[0])
		fmt.Printf("\nscheduling rack maintenance for machine %s\n", cc.Machine)
		d.Managers["odn"].ScheduleMaintenance([]topology.MachineID{cc.Machine},
			d.Loop.Now()+5*time.Minute, d.Loop.Now()+10*time.Minute, cluster.ImpactNetworkLoss)
		d.Loop.RunFor(12 * time.Minute)
		step("after maintenance window")
	}

	dumpMap(d, 5)

	if tracer != nil {
		if *traceOut != "" {
			if err := writeFile(*traceOut, tracer.WriteChrome); err != nil {
				fmt.Fprintf(os.Stderr, "smctl: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("\ntrace written to %s\n", *traceOut)
		}
		if *traceText != "" {
			if err := writeFile(*traceText, tracer.WriteText); err != nil {
				fmt.Fprintf(os.Stderr, "smctl: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("trace timeline written to %s\n", *traceText)
		}
	}
	fmt.Println("\ndone.")
}

// writeFile creates path and streams one tracer export into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dumpMap prints the first n shard-map entries.
func dumpMap(d *experiments.Deployment, n int) {
	m := d.Orch.AssignmentSnapshot()
	fmt.Printf("shard map v%d (%d shards), first %d entries:\n", m.Version, len(m.Entries), n)
	for i, id := range d.Orch.ShardIDs() {
		if i >= n {
			break
		}
		as := m.Replicas(id)
		fmt.Printf("  %-8s %s", id, shard.FormatAssignments(as))
		for _, a := range as {
			fmt.Printf(" [%s]", d.Net.Region(rpcnet.Endpoint(a.Server)))
		}
		fmt.Println()
	}
}
