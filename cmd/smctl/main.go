// Command smctl builds a demonstration Shard Manager deployment, runs a
// short operational scenario on it, and dumps control-plane state — a quick
// way to see the whole system (cluster manager, orchestrator,
// TaskController, discovery) working together.
//
// Usage:
//
//	smctl                         # default demo: 3 regions, failover + drain
//	smctl -servers 20 -shards 500 -replicas 3
//	smctl status                  # live health dashboard through the demo
//	smctl status -scenario geofailover
//	smctl faults                  # compound fault-injection scenario
//	smctl faults -spec "t=30s stall(coord) for 1m" -parse
//	smctl audit -seed 5           # replay a torture seed, dump ownership timelines
//	smctl audit -seed 5 -shard s00004
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/experiments"
	"shardmanager/internal/faults"
	"shardmanager/internal/healthmon"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/simprof"
	"shardmanager/internal/taskcontroller"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "status" {
		runStatus(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "faults" {
		runFaults(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "audit" {
		runAudit(os.Args[2:])
		return
	}
	servers := flag.Int("servers", 12, "servers per region")
	shards := flag.Int("shards", 120, "number of shards")
	replicas := flag.Int("replicas", 2, "replicas per shard")
	seed := flag.Uint64("seed", 42, "simulation seed")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the scenario to this file")
	traceText := flag.String("trace-text", "", "write a human-readable text timeline to this file")
	flag.Parse()

	var tracer *trace.Tracer
	if *traceOut != "" || *traceText != "" {
		tracer = trace.New(trace.Options{})
	}

	regions := []topology.RegionID{"frc", "prn", "odn"}
	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	strategy := shard.PrimarySecondary
	if *replicas == 1 {
		strategy = shard.PrimaryOnly
		pol.SpreadWeight = 0
	}
	cfg := orchestrator.Config{
		App:      "demo",
		Strategy: strategy,
		Shards: experiments.UniformShardConfigs(*shards, *replicas, topology.Capacity{
			topology.ResourceCPU:        1,
			topology.ResourceShardCount: 1,
		}),
		Policy: pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: float64(*shards),
		},
		GracefulMigration: true,
		FailoverGrace:     20 * time.Second,
	}
	tp := taskcontroller.DefaultPolicy(3)
	backing := apps.NewKVBacking()
	d := experiments.Build(experiments.DeploymentSpec{
		Regions:          regions,
		ServersPerRegion: *servers,
		Orch:             cfg,
		TaskPolicy:       &tp,
		ClusterOpts:      cluster.DefaultOptions(),
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Tracer: tracer,
		Seed:   *seed,
	})

	step := func(title string) {
		fmt.Printf("\n--- %s (t=%v) ---\n", title, d.Loop.Now().Truncate(time.Second))
		fmt.Println(d.Orch.Stats())
	}

	if err := d.Settle(10 * time.Minute); err != nil {
		fmt.Fprintf(os.Stderr, "smctl: %v\n", err)
		os.Exit(1)
	}
	step("initial placement settled")
	dumpMap(d, 5)

	// Scenario 1: unplanned machine failure and automatic failover.
	mgr := d.Managers["frc"]
	victim := mgr.RunningContainers(d.Jobs["frc"])[0]
	c, _ := mgr.Container(victim)
	fmt.Printf("\nkilling machine %s (container %s)\n", c.Machine, victim)
	mgr.KillMachine(c.Machine)
	d.Loop.RunFor(3 * time.Minute)
	step("after unplanned failure + emergency reallocation")

	// Scenario 2: negotiable rolling upgrade gated by the TaskController.
	fmt.Printf("\nrolling upgrade of job %s (drain + graceful migration)\n", d.Jobs["prn"])
	done := false
	d.Managers["prn"].RollingUpgrade(d.Jobs["prn"], 2, "upgrade", func() { done = true })
	for i := 0; i < 120 && !done; i++ {
		d.Loop.RunFor(30 * time.Second)
	}
	step(fmt.Sprintf("after rolling upgrade (done=%v)", done))

	// Scenario 3: scheduled maintenance with advance notice.
	m2 := d.Managers["odn"].RunningContainers(d.Jobs["odn"])
	if len(m2) > 0 {
		cc, _ := d.Managers["odn"].Container(m2[0])
		fmt.Printf("\nscheduling rack maintenance for machine %s\n", cc.Machine)
		d.Managers["odn"].ScheduleMaintenance([]topology.MachineID{cc.Machine},
			d.Loop.Now()+5*time.Minute, d.Loop.Now()+10*time.Minute, cluster.ImpactNetworkLoss)
		d.Loop.RunFor(12 * time.Minute)
		step("after maintenance window")
	}

	dumpMap(d, 5)

	if tracer != nil {
		if *traceOut != "" {
			if err := writeFile(*traceOut, tracer.WriteChrome); err != nil {
				fmt.Fprintf(os.Stderr, "smctl: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("\ntrace written to %s\n", *traceOut)
		}
		if *traceText != "" {
			if err := writeFile(*traceText, tracer.WriteText); err != nil {
				fmt.Fprintf(os.Stderr, "smctl: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("trace timeline written to %s\n", *traceText)
		}
	}
	fmt.Println("\ndone.")
}

// writeFile creates path and streams one tracer export into it.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runStatus is the `smctl status` subcommand: it builds a monitored
// deployment with background client traffic, runs an operational scenario,
// and renders the operator health dashboard at each checkpoint.
func runStatus(argv []string) {
	fs := flag.NewFlagSet("smctl status", flag.ExitOnError)
	servers := fs.Int("servers", 12, "servers per region")
	shards := fs.Int("shards", 120, "number of shards")
	replicas := fs.Int("replicas", 2, "replicas per shard (demo scenario; geofailover always uses 2)")
	seed := fs.Uint64("seed", 42, "simulation seed")
	scenario := fs.String("scenario", "demo",
		"'demo' (machine failure + rolling upgrade) or 'geofailover' (fig19-style region loss and recovery)")
	profile := fs.Bool("prof", false, "attach the kernel profiler and print the top-10 cost centers after the scenario")
	fs.Parse(argv)

	mon := healthmon.New(healthmon.Options{})
	var prof *simprof.Profile
	if *profile {
		prof = simprof.New(simprof.Options{Allocs: true, Registry: mon.Registry()})
	}
	switch *scenario {
	case "demo":
		statusDemo(mon, prof, *servers, *shards, *replicas, *seed)
	case "geofailover":
		statusGeoFailover(mon, prof, *servers, *shards, *seed)
	default:
		fmt.Fprintf(os.Stderr, "smctl status: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if prof != nil {
		fmt.Printf("\n%s", prof.RenderTop(10))
	}
}

// runFaults is the `smctl faults` subcommand: parse a fault-timeline spec,
// print the normalized scenario, and run the compound-fault experiment
// under it.
func runFaults(argv []string) {
	fs := flag.NewFlagSet("smctl faults", flag.ExitOnError)
	spec := fs.String("spec", experiments.DefaultCompoundFaultSpec,
		"fault timeline (scenario DSL, e.g. \"t=60s partition(region-a|region-b) for 120s\"; see internal/faults)")
	scale := fs.String("scale", "quick", "'quick' or 'full' experiment sizing")
	parseOnly := fs.Bool("parse", false, "validate and print the normalized timeline, then exit")
	fs.Parse(argv)

	scenario, err := faults.ParseSpec(*spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smctl faults: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("fault timeline (%d events):\n%s\n", len(scenario.Events), scenario)
	if *parseOnly {
		return
	}

	sc := experiments.ScaleQuick
	if *scale == "full" {
		sc = experiments.ScaleFull
	} else if *scale != "quick" {
		fmt.Fprintf(os.Stderr, "smctl faults: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	experiments.SetFaultSpec(*spec)
	report, err := experiments.Run("faults", sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "smctl faults: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(report.Render())
}

// runAudit is the `smctl audit` subcommand: replay one torture seed under
// the runtime auditor and print a shard's ownership timeline around any
// violation — the same deterministic world the sweep ran, so a seed from
// FOUNDBUGS_audit.json reproduces its finding exactly. Exits 1 if the replay
// hit any violation, so scripts and CI can gate on a seed staying clean.
func runAudit(argv []string) {
	fs := flag.NewFlagSet("smctl audit", flag.ExitOnError)
	seed := fs.Uint64("seed", 5, "torture seed to replay (e.g. one pinned in FOUNDBUGS_audit.json)")
	shardID := fs.String("shard", "", "shard whose ownership timeline to print (default: the first violation's shard)")
	full := fs.Bool("report", false, "also print the full audit report (every violation with its timeline)")
	fs.Parse(argv)

	run := experiments.RunTortureSeed(experiments.DefaultTortureParams(), *seed)
	a := run.Auditor
	checks := int64(0)
	for _, n := range a.Checks() {
		checks += n
	}
	fmt.Printf("torture seed %d: %d invariant checks, %d violations\n",
		*seed, checks, a.ViolationCount())
	fmt.Printf("fault timeline (%d events):\n%s\n", len(run.Scenario.Events), run.Scenario)
	for _, b := range run.Bugs {
		fmt.Printf("  first %-26s shard=%-8s at=%-14v %s\n", b.Invariant, b.Shard, b.At, b.Detail)
	}

	if *full {
		fmt.Println()
		a.WriteText(os.Stdout)
	}

	target := shard.ID(*shardID)
	if target == "" {
		if vs := a.Violations(); len(vs) > 0 {
			target = vs[0].Shard
		} else if ids := a.Shards(); len(ids) > 0 {
			target = ids[0]
		} else {
			fmt.Println("\nno ownership events observed")
			if a.ViolationCount() > 0 {
				os.Exit(1)
			}
			return
		}
	}
	fmt.Printf("\nownership timeline for %s:\n", target)
	a.TimelineText(target, os.Stdout)
	if a.ViolationCount() > 0 {
		os.Exit(1)
	}
}

// buildProfiled builds the deployment with the kernel profiler attached when
// one was requested (spec.Profiler must stay unset for a nil *Profile — a
// typed-nil sim.Profiler would make the loop call methods on nil).
func buildProfiled(spec experiments.DeploymentSpec, prof *simprof.Profile) *experiments.Deployment {
	if prof != nil {
		spec.Profiler = prof
	}
	return experiments.Build(spec)
}

// checkpoint renders the dashboard under a scenario heading.
func checkpoint(mon *healthmon.Monitor, title string) {
	fmt.Printf("\n=== %s ===\n", title)
	fmt.Print(mon.Snapshot().Render())
}

// startTraffic issues a steady read workload from an FRC client so the
// monitor has a request stream to grade.
func startTraffic(d *experiments.Deployment, shards int) {
	ks := experiments.KeyspaceFor(shards)
	client := d.NewClient("frc", ks, routing.DefaultOptions())
	rng := d.Loop.RNG().Fork()
	d.Loop.EveryL(250*time.Millisecond, sim.LabelFor("smctl", "traffic"), func() {
		key := experiments.KeyForShard(rng.Intn(shards))
		client.Do(key, false, apps.KVOpScan, nil, func(routing.Result) {})
	})
}

// statusDemo runs the default demo scenario (same world as plain smctl)
// under the health monitor: settle, unplanned machine failure, then a
// negotiated rolling upgrade.
func statusDemo(mon *healthmon.Monitor, prof *simprof.Profile, servers, shards, replicas int, seed uint64) {
	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	strategy := shard.PrimarySecondary
	if replicas == 1 {
		strategy = shard.PrimaryOnly
		pol.SpreadWeight = 0
	}
	cfg := orchestrator.Config{
		App:      "demo",
		Strategy: strategy,
		Shards: experiments.UniformShardConfigs(shards, replicas, topology.Capacity{
			topology.ResourceCPU:        1,
			topology.ResourceShardCount: 1,
		}),
		Policy: pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: float64(shards),
		},
		GracefulMigration: true,
		FailoverGrace:     20 * time.Second,
	}
	tp := taskcontroller.DefaultPolicy(3)
	backing := apps.NewKVBacking()
	d := buildProfiled(experiments.DeploymentSpec{
		Regions:          []topology.RegionID{"frc", "prn", "odn"},
		ServersPerRegion: servers,
		Orch:             cfg,
		TaskPolicy:       &tp,
		ClusterOpts:      cluster.DefaultOptions(),
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Health: mon,
		Seed:   seed,
	}, prof)
	if err := d.Settle(10 * time.Minute); err != nil {
		fmt.Fprintf(os.Stderr, "smctl status: %v\n", err)
		os.Exit(1)
	}
	startTraffic(d, shards)
	d.Loop.RunFor(2 * time.Minute)
	checkpoint(mon, "steady state (settled + 2m of traffic)")

	mgr := d.Managers["frc"]
	victim := mgr.RunningContainers(d.Jobs["frc"])[0]
	c, _ := mgr.Container(victim)
	fmt.Printf("\n>>> killing machine %s (container %s)\n", c.Machine, victim)
	mgr.KillMachine(c.Machine)
	d.Loop.RunFor(3 * time.Minute)
	checkpoint(mon, "after unplanned machine failure + failover")

	fmt.Printf("\n>>> rolling upgrade of job %s (drain + graceful migration)\n", d.Jobs["prn"])
	done := false
	d.Managers["prn"].RollingUpgrade(d.Jobs["prn"], 2, "upgrade", func() { done = true })
	for i := 0; i < 120 && !done; i++ {
		d.Loop.RunFor(30 * time.Second)
	}
	checkpoint(mon, fmt.Sprintf("after rolling upgrade (done=%v)", done))
}

// statusGeoFailover runs the Fig 19 shape — a secondary-only geo-distributed
// store losing and recovering a whole region — and shows what an operator
// would see at each stage.
func statusGeoFailover(mon *healthmon.Monitor, prof *simprof.Profile, servers, shards int, seed uint64) {
	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	pol.SpreadLevel = topology.LevelRegion
	pol.SpreadWeight = 100
	pol.AffinityWeight = 300
	shardCfgs := experiments.UniformShardConfigs(shards, 2, topology.Capacity{
		topology.ResourceCPU:        0.5,
		topology.ResourceShardCount: 1,
	})
	ec := shards * 2 / 5 // 40% "east-coast" shards prefer FRC, as in fig19
	for i := 0; i < ec; i++ {
		shardCfgs[i].RegionPreference = "frc"
	}
	cfg := orchestrator.Config{
		App:      "geostore",
		Strategy: shard.SecondaryOnly,
		Shards:   shardCfgs,
		Policy:   pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: float64(shards),
		},
		HomeRegion:              "prn",
		GracefulMigration:       true,
		FailoverGrace:           20 * time.Second,
		AllocInterval:           15 * time.Second,
		MaxConcurrentMigrations: 200,
	}
	backing := apps.NewKVBacking()
	d := buildProfiled(experiments.DeploymentSpec{
		Regions:          []topology.RegionID{"frc", "prn", "odn"},
		ServersPerRegion: servers,
		Latency: map[[2]topology.RegionID]time.Duration{
			{"frc", "prn"}: 35 * time.Millisecond,
			{"frc", "odn"}: 45 * time.Millisecond,
			{"prn", "odn"}: 80 * time.Millisecond,
		},
		Orch: cfg,
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Health: mon,
		Seed:   seed,
	}, prof)
	if err := d.Settle(10 * time.Minute); err != nil {
		fmt.Fprintf(os.Stderr, "smctl status: %v\n", err)
		os.Exit(1)
	}
	startTraffic(d, shards)
	d.Loop.RunFor(90 * time.Second)
	checkpoint(mon, "steady state (EC shards homed at frc)")

	frc := d.Managers["frc"]
	fmt.Printf("\n>>> region frc fails\n")
	frc.FailRegion()
	d.Loop.RunFor(2 * time.Minute)
	checkpoint(mon, "2m after region frc failed (replicas promoted remotely)")

	fmt.Printf("\n>>> region frc recovers\n")
	frc.RecoverRegion()
	d.Loop.RunFor(5 * time.Minute)
	checkpoint(mon, "5m after recovery (EC shards migrating home)")
}

// dumpMap prints the first n shard-map entries.
func dumpMap(d *experiments.Deployment, n int) {
	m := d.Orch.AssignmentSnapshot()
	fmt.Printf("shard map v%d (%d shards), first %d entries:\n", m.Version, len(m.Entries), n)
	for i, id := range d.Orch.ShardIDs() {
		if i >= n {
			break
		}
		as := m.Replicas(id)
		fmt.Printf("  %-8s %s", id, shard.FormatAssignments(as))
		for _, a := range as {
			fmt.Printf(" [%s]", d.Net.Region(rpcnet.Endpoint(a.Server)))
		}
		fmt.Println()
	}
}
