// Package shardmanager is a from-scratch Go reproduction of "Shard
// Manager: A Generic Shard Management Framework for Geo-distributed
// Applications" (SOSP 2021).
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory), runnable examples under examples/, and the experiment
// binaries under cmd/. This root package holds the benchmark suite that
// regenerates every table and figure of the paper's evaluation:
//
//	go test -bench=. -benchmem
package shardmanager
