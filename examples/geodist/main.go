// geodist: a geo-distributed deployment with per-shard regional placement
// preferences — the Fig 19 scenario in miniature. A secondary-only store
// spans three regions; "east-coast" shards prefer FRC for locality. When
// FRC fails, clients fail over to remote replicas (higher latency) and SM
// re-replicates across the surviving regions; when FRC recovers, SM
// migrates replicas back and latency returns to normal.
package main

import (
	"fmt"
	"log"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/experiments"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

func main() {
	const (
		numShards = 120
		ecShards  = 48
	)
	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	pol.AffinityWeight = 300
	shards := experiments.UniformShardConfigs(numShards, 2, topology.Capacity{
		topology.ResourceCPU:        1,
		topology.ResourceShardCount: 1,
	})
	for i := 0; i < ecShards; i++ {
		shards[i].RegionPreference = "frc"
	}
	cfg := orchestrator.Config{
		App:      "geodist",
		Strategy: shard.SecondaryOnly,
		Shards:   shards,
		Policy:   pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: numShards,
		},
		HomeRegion:              "prn",
		GracefulMigration:       true,
		FailoverGrace:           20 * time.Second,
		AllocInterval:           15 * time.Second,
		MaxConcurrentMigrations: 60,
	}
	backing := apps.NewKVBacking()
	d := experiments.Build(experiments.DeploymentSpec{
		Regions:          []topology.RegionID{"frc", "prn", "odn"},
		ServersPerRegion: 6,
		Latency: map[[2]topology.RegionID]time.Duration{
			{"frc", "prn"}: 35 * time.Millisecond,
			{"frc", "odn"}: 45 * time.Millisecond,
			{"prn", "odn"}: 80 * time.Millisecond,
		},
		Orch:        cfg,
		ClusterOpts: cluster.DefaultOptions(),
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Seed: 19,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("settled:", d.Orch.Stats())

	ks := experiments.KeyspaceFor(numShards)
	client := d.NewClient("frc", ks, routing.DefaultOptions())
	d.Loop.RunFor(5 * time.Second) // receive the shard map
	rng := d.Loop.RNG().Fork()

	// Measure EC-shard read latency in each phase.
	measure := func(label string, dur time.Duration) {
		var sum time.Duration
		n := 0
		tick := d.Loop.Every(100*time.Millisecond, func() {
			key := experiments.KeyForShard(rng.Intn(ecShards))
			client.Do(key, false, apps.KVOpScan, nil, func(res routing.Result) {
				if res.OK {
					sum += res.Latency
					n++
				}
			})
		})
		d.Loop.RunFor(dur)
		tick.Stop()
		if n > 0 {
			fmt.Printf("%-28s mean EC-read latency %v over %d reads\n",
				label, (sum / time.Duration(n)).Truncate(100*time.Microsecond), n)
		}
	}

	measure("steady state (local reads):", 30*time.Second)

	fmt.Println("\n>>> FRC region fails")
	d.Managers["frc"].FailRegion()
	d.Loop.RunFor(time.Minute) // retries + emergency reallocation
	measure("during FRC outage:", 30*time.Second)

	fmt.Println("\n>>> FRC region recovers")
	d.Managers["frc"].RecoverRegion()
	d.Loop.RunFor(3 * time.Minute) // shards migrate back per preference
	measure("after shards move back:", 30*time.Second)

	fmt.Printf("\nshard moves: %d, emergency allocations: %d\n",
		d.Orch.ShardMoves.Value(), d.Orch.EmergencyRuns.Value())
}
