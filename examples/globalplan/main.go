// globalplan: capacity planning + geo-distributed deployment end to end —
// the paper's future-work item 3 (§10) implemented on top of SM.
//
// Given per-region client demand for each shard and a read-latency SLO, the
// capacity planner chooses the minimal replica regions per shard and
// forecasts the number of servers each region needs. Those decisions then
// configure a real SM deployment, and clients in each region verify that
// their reads meet the SLO.
package main

import (
	"fmt"
	"log"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/capacity"
	"shardmanager/internal/cluster"
	"shardmanager/internal/experiments"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

func main() {
	const numShards = 60
	regions := []topology.RegionID{"us-east", "us-west", "eu"}
	latency := map[[2]topology.RegionID]time.Duration{
		{"us-east", "us-west"}: 60 * time.Millisecond,
		{"us-east", "eu"}:      80 * time.Millisecond,
		{"us-west", "eu"}:      140 * time.Millisecond,
	}

	// 1. Demand model: the first 20 shards are hot in the US, the next
	//    20 hot in the EU, the rest accessed from everywhere.
	planFleet := topology.Build(topology.Spec{
		Regions: regions, MachinesPerRegion: 1, Latency: latency,
	})
	for _, r := range regions {
		planFleet.SetLatency(r, r, 2*time.Millisecond)
	}
	var demands []capacity.Demand
	for i := 0; i < numShards; i++ {
		id := shard.ID(fmt.Sprintf("s%05d", i))
		switch {
		case i < 20:
			demands = append(demands,
				capacity.Demand{Shard: id, Region: "us-east", Rate: 40},
				capacity.Demand{Shard: id, Region: "us-west", Rate: 20})
		case i < 40:
			demands = append(demands, capacity.Demand{Shard: id, Region: "eu", Rate: 50})
		default:
			for _, r := range regions {
				demands = append(demands, capacity.Demand{Shard: id, Region: r, Rate: 10})
			}
		}
	}

	// 2. Plan: 70ms SLO means us-east can cover us-west but not the EU.
	plan, err := capacity.Solve(capacity.Input{
		Fleet:         planFleet,
		Demands:       demands,
		SLO:           70 * time.Millisecond,
		PerServerRate: 150,
		MinReplicas:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("capacity plan:")
	for _, r := range regions {
		fmt.Printf("  %-8s forecast load %.0f req/s -> %d servers\n",
			r, plan.LoadPerRegion[r], plan.ServersPerRegion[r])
	}
	fmt.Printf("  total replicas: %d (vs %d if every shard went everywhere)\n",
		plan.TotalReplicas, numShards*len(regions))

	// 3. Deploy exactly what the plan says.
	serversPerRegion := 0
	for _, n := range plan.ServersPerRegion {
		if n > serversPerRegion {
			serversPerRegion = n
		}
	}
	if serversPerRegion < 2 {
		serversPerRegion = 2
	}
	planned := plan.ShardConfigs(300)
	shardCfgs := make([]orchestrator.ShardConfig, len(planned))
	for i, ps := range planned {
		shardCfgs[i] = orchestrator.ShardConfig{
			ID:               ps.Shard,
			Replicas:         ps.Replicas,
			RegionPreference: ps.RegionPreference,
			PreferenceWeight: ps.PreferenceWeight,
			DefaultLoad: topology.Capacity{
				topology.ResourceCPU:        1,
				topology.ResourceShardCount: 1,
			},
		}
	}
	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	pol.AffinityWeight = 300
	backing := apps.NewKVBacking()
	d := experiments.Build(experiments.DeploymentSpec{
		Regions:          regions,
		ServersPerRegion: serversPerRegion,
		Latency:          latency,
		LocalLatency:     2 * time.Millisecond,
		Orch: orchestrator.Config{
			App:      "planned",
			Strategy: shard.SecondaryOnly,
			Shards:   shardCfgs,
			Policy:   pol,
			ServerCapacity: topology.Capacity{
				topology.ResourceCPU:        100,
				topology.ResourceShardCount: numShards,
			},
			GracefulMigration: true,
		},
		ClusterOpts: cluster.DefaultOptions(),
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Seed: 33,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndeployed:", d.Orch.Stats())

	// 4. Verify the SLO from each demand region.
	ks := experiments.KeyspaceFor(numShards)
	probe := func(region topology.RegionID, shardIdx int) time.Duration {
		client := d.NewClient(region, ks, routing.DefaultOptions())
		d.Loop.RunFor(3 * time.Second)
		var lat time.Duration
		client.Do(experiments.KeyForShard(shardIdx), false, apps.KVOpScan, nil,
			func(res routing.Result) { lat = res.Latency })
		d.Loop.RunFor(5 * time.Second)
		return lat
	}
	fmt.Println("\nread latencies (SLO 70ms one-way, ~140ms round trip):")
	fmt.Printf("  us-east -> US-hot shard:    %v\n", probe("us-east", 0))
	fmt.Printf("  us-west -> US-hot shard:    %v\n", probe("us-west", 1))
	fmt.Printf("  eu      -> EU-hot shard:    %v\n", probe("eu", 25))
	fmt.Printf("  eu      -> global shard:    %v\n", probe("eu", 50))
}
