// kvstore: a ZippyDB-like geo-replicated key-value store on Shard Manager
// (§2.5). Each shard has one primary (handling writes) and two secondaries
// spread across three regions; SM elects and migrates primaries, clients
// write through the primary and read from the closest replica, and prefix
// scans work because the app-owned keyspace preserves key locality (§3.1).
//
// The example then kills the primary's machine and shows SM promoting a
// secondary — the automatic failover path — without losing any data.
package main

import (
	"fmt"
	"log"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/experiments"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

func main() {
	const numShards = 24

	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	pol.SpreadLevel = topology.LevelRegion
	cfg := orchestrator.Config{
		App:      "zippy",
		Strategy: shard.PrimarySecondary,
		Shards: experiments.UniformShardConfigs(numShards, 3, topology.Capacity{
			topology.ResourceCPU:        1,
			topology.ResourceShardCount: 1,
		}),
		Policy: pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: numShards,
		},
		GracefulMigration: true,
		FailoverGrace:     15 * time.Second,
	}
	backing := apps.NewKVBacking()
	d := experiments.Build(experiments.DeploymentSpec{
		Regions:          []topology.RegionID{"frc", "prn", "odn"},
		ServersPerRegion: 4,
		Latency: map[[2]topology.RegionID]time.Duration{
			{"frc", "prn"}: 35 * time.Millisecond,
			{"frc", "odn"}: 45 * time.Millisecond,
			{"prn", "odn"}: 80 * time.Millisecond,
		},
		Orch:        cfg,
		ClusterOpts: cluster.DefaultOptions(),
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Seed: 7,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("settled:", d.Orch.Stats())

	// Every shard's replicas span all three regions.
	m := d.Orch.AssignmentSnapshot()
	regionsOf := func(id shard.ID) map[topology.RegionID]bool {
		out := map[topology.RegionID]bool{}
		for _, a := range m.Replicas(id) {
			out[d.Net.Region(rpcnet.Endpoint(a.Server))] = true
		}
		return out
	}
	fmt.Printf("shard s00000 replicas: %s (regions: %d)\n",
		shard.FormatAssignments(m.Replicas("s00000")), len(regionsOf("s00000")))

	ks := experiments.KeyspaceFor(numShards)
	client := d.NewClient("frc", ks, routing.DefaultOptions())
	d.Loop.RunFor(3 * time.Second)

	// Writes go to the primary; reads are served by the closest replica.
	prefix := experiments.KeyForShard(0)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("%s:user%d", prefix, i)
		client.Do(key, true, apps.KVOpPut, apps.KVPut{Value: fmt.Sprintf("v%d", i)}, func(res routing.Result) {
			fmt.Printf("write %s via primary %s: ok=%v\n", key, res.Server, res.OK)
		})
	}
	d.Loop.RunFor(time.Second)
	client.Do(prefix+":user1", false, apps.KVOpGet, nil, func(res routing.Result) {
		fmt.Printf("read from closest replica %s [%s]: %v (%v)\n",
			res.Server, d.Net.Region(rpcnet.Endpoint(res.Server)), res.Payload, res.Latency)
	})
	// Prefix scan: possible because the keyspace preserves locality.
	client.Do(prefix+":", false, apps.KVOpScan, nil, func(res routing.Result) {
		fmt.Printf("prefix scan %q: %v\n", prefix+":", res.Payload)
	})
	d.Loop.RunFor(time.Second)

	// Kill the primary's machine; SM promotes a secondary.
	primary, _ := m.Primary("s00000")
	fmt.Printf("\nkilling primary %s of s00000...\n", primary)
	for _, mgr := range d.Managers {
		if c, ok := mgr.Container(cluster.ContainerID(primary)); ok {
			mgr.KillMachine(c.Machine)
		}
	}
	d.Loop.RunFor(2 * time.Minute)
	m = d.Orch.AssignmentSnapshot()
	newPrimary, ok := m.Primary("s00000")
	fmt.Printf("new primary: %s (promoted=%v)\n", newPrimary, ok && newPrimary != primary)

	// Data survives: the new primary serves the same keys.
	client.Do(prefix+":user2", true, apps.KVOpPut, apps.KVPut{Value: "after-failover"}, func(res routing.Result) {
		fmt.Printf("write after failover via %s: ok=%v\n", res.Server, res.OK)
	})
	client.Do(prefix+":user0", false, apps.KVOpGet, nil, func(res routing.Result) {
		fmt.Printf("read after failover: %v (ok=%v)\n", res.Payload, res.OK)
	})
	d.Loop.RunFor(time.Second)
}
