// queue: a FOQS-like primary-only priority queue on Shard Manager ([47],
// §2.5), demonstrating the paper's headline property: a full rolling
// software upgrade of every server while client traffic flows, with zero
// dropped requests — the TaskController drains each container before its
// restart and graceful primary migration forwards in-flight requests
// (§4.1, §4.3).
package main

import (
	"fmt"
	"log"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/experiments"
	"shardmanager/internal/metrics"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/taskcontroller"
	"shardmanager/internal/topology"
)

func main() {
	const (
		numShards  = 400
		numServers = 10
	)
	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	pol.SpreadWeight = 0
	cfg := orchestrator.Config{
		App:      "foqs",
		Strategy: shard.PrimaryOnly,
		Shards: experiments.UniformShardConfigs(numShards, 1, topology.Capacity{
			topology.ResourceCPU:        0.5,
			topology.ResourceShardCount: 1,
		}),
		Policy: pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: numShards,
		},
		GracefulMigration:       true,
		FailoverGrace:           3 * time.Minute,
		MaxConcurrentMigrations: 20,
		ShardLoadTime:           3 * time.Second,
	}
	tp := taskcontroller.DefaultPolicy(2) // at most 2 concurrent restarts
	backing := apps.NewQueueBacking()
	opts := cluster.DefaultOptions()
	opts.RestartDuration = 60 * time.Second
	d := experiments.Build(experiments.DeploymentSpec{
		Regions:          []topology.RegionID{"region1"},
		ServersPerRegion: numServers,
		Orch:             cfg,
		TaskPolicy:       &tp,
		ClusterOpts:      opts,
		AppFactory: func(s *appserver.Server) appserver.Application {
			s.LoadTime = 3 * time.Second
			return apps.NewQueue(s, backing)
		},
		Seed: 11,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("settled:", d.Orch.Stats())

	// Continuous enqueue traffic. Give the client a few seconds to
	// receive the shard map before measuring.
	ks := experiments.KeyspaceFor(numShards)
	client := d.NewClient("region1", ks, routing.DefaultOptions())
	d.Loop.RunFor(5 * time.Second)
	rng := d.Loop.RNG().Fork()
	ratio := metrics.NewSuccessRatio(time.Minute)
	n := 0
	d.Loop.Every(50*time.Millisecond, func() {
		n++
		key := experiments.KeyForShard(rng.Intn(numShards))
		client.Do(key, true, apps.QueueOpEnqueue, fmt.Sprintf("msg-%d", n), func(res routing.Result) {
			ratio.Observe(d.Loop.Now(), res.OK)
		})
	})
	d.Loop.RunFor(time.Minute)

	// Rolling upgrade of all servers while traffic flows.
	fmt.Println("starting rolling upgrade of all", numServers, "servers...")
	start := d.Loop.Now()
	done := time.Duration(0)
	d.Managers["region1"].RollingUpgrade(d.Jobs["region1"], 2, "upgrade", func() {
		done = d.Loop.Now()
	})
	for i := 0; i < 240 && done == 0; i++ {
		d.Loop.RunFor(15 * time.Second)
	}
	d.Loop.RunFor(time.Minute)

	ok, total := ratio.Totals()
	fmt.Printf("upgrade finished in %v\n", (done - start).Truncate(time.Second))
	fmt.Printf("requests during the run: %d, succeeded: %d (%.4f%%)\n",
		total, ok, 100*ratio.Rate())
	fmt.Printf("worst one-minute success rate: %.3f%%\n", 100*ratio.MinBucketRate())
	fmt.Printf("queue state: %d enqueued across all shards\n", backing.Enqueued)
	fmt.Printf("shard moves performed: %d, drains: %d, approvals: %d\n",
		d.Orch.ShardMoves.Value(), d.Ctrl.Drains.Value(), d.Ctrl.Approved.Value())
}
