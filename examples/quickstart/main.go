// Quickstart: the smallest complete Shard Manager application.
//
// It builds a one-region deployment of a primary-only key-value app with 8
// shards on 4 servers, lets the orchestrator place the shards, and then
// performs writes and reads through the service-router client — the
// §3.3 programming model end to end:
//
//	application servers implement AddShard/DropShard/HandleRequest
//	the orchestrator assigns shards and publishes the shard map
//	clients route by key: get_client(app, key).function_foo(...)
package main

import (
	"fmt"
	"log"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/experiments"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

func main() {
	const (
		numShards  = 8
		numServers = 4
	)

	// 1. Configure the application: primary-only, one replica per shard.
	pol := allocator.DefaultPolicy(topology.ResourceShardCount)
	pol.SpreadWeight = 0
	cfg := orchestrator.Config{
		App:      "hello",
		Strategy: shard.PrimaryOnly,
		Shards: experiments.UniformShardConfigs(numShards, 1, topology.Capacity{
			topology.ResourceShardCount: 1,
		}),
		Policy:            pol,
		ServerCapacity:    topology.Capacity{topology.ResourceShardCount: numShards},
		GracefulMigration: true,
	}

	// 2. Build the world: cluster manager, app servers, orchestrator.
	backing := apps.NewKVBacking()
	d := experiments.Build(experiments.DeploymentSpec{
		Regions:          []topology.RegionID{"local"},
		ServersPerRegion: numServers,
		Orch:             cfg,
		ClusterOpts:      cluster.DefaultOptions(),
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Seed: 1,
	})
	if err := d.Settle(5 * time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("placement settled:", d.Orch.Stats())

	// 3. Create a client and talk to the app through the router.
	ks := experiments.KeyspaceFor(numShards)
	client := d.NewClient("local", ks, routing.DefaultOptions())
	d.Loop.RunFor(3 * time.Second) // let the client receive the shard map

	put := func(key, value string) {
		client.Do(key, true, apps.KVOpPut, apps.KVPut{Value: value}, func(res routing.Result) {
			fmt.Printf("put %-12s -> shard %s on %s (ok=%v, %v)\n",
				key, res.Shard, res.Server, res.OK, res.Latency)
		})
	}
	get := func(key string) {
		client.Do(key, false, apps.KVOpGet, nil, func(res routing.Result) {
			fmt.Printf("get %-12s -> %v (ok=%v)\n", key, res.Payload, res.OK)
		})
	}

	put(experiments.KeyForShard(0)+":user", "alice")
	put(experiments.KeyForShard(3)+":user", "bob")
	put(experiments.KeyForShard(7)+":user", "carol")
	d.Loop.RunFor(time.Second)
	get(experiments.KeyForShard(0) + ":user")
	get(experiments.KeyForShard(3) + ":user")
	get(experiments.KeyForShard(7) + ":user")
	d.Loop.RunFor(time.Second)

	// 4. Show the shard map the client used.
	m := d.Orch.AssignmentSnapshot()
	fmt.Printf("\nshard map v%d:\n", m.Version)
	for _, id := range d.Orch.ShardIDs() {
		fmt.Printf("  %s -> %s\n", id, shard.FormatAssignments(m.Replicas(id)))
	}
}
