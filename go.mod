module shardmanager

go 1.22
