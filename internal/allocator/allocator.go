// Package allocator implements Shard Manager's allocator (§5): it turns the
// current view of an application partition — servers with capacities and
// health, shards with per-replica loads and placement preferences — into a
// constrained optimization problem for the generic solver, runs the solver
// in either emergency or periodic mode, and converts the solution back into
// a bounded set of replica moves.
//
// The allocator is where SM's domain knowledge lives (§5.3): it groups
// servers for sampling, orders big shards first, batches goals by priority,
// and enforces the churn hard constraints (per-shard and global move caps)
// on the emitted diff.
package allocator

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"shardmanager/internal/shard"
	"shardmanager/internal/solver"
	"shardmanager/internal/topology"
)

// ServerInfo describes one candidate placement target (one application
// server / container).
type ServerInfo struct {
	ID shard.ServerID
	// Domains maps fault-domain level names ("region", "datacenter",
	// "rack") to this server's domain at that level.
	Domains map[string]string
	// Capacity per resource. Resources missing from the map have zero
	// capacity for balancing purposes.
	Capacity topology.Capacity
	// Alive servers can receive replicas. Dead servers' replicas are
	// treated as unassigned.
	Alive bool
	// Draining servers should shed replicas (pending maintenance or
	// upgrade, §5.1 soft goal 3).
	Draining bool
}

// ShardSpec describes one shard's placement requirements.
type ShardSpec struct {
	ID shard.ID
	// Replicas is the desired replica count (the shard scaler adjusts
	// this, §6.1).
	Replicas int
	// Load is the measured per-replica load.
	Load topology.Capacity
	// RegionPreference, if non-empty, is the preferred region for this
	// shard's replicas (§5.1 soft goal 1). Weight defaults to
	// Policy.AffinityWeight when PreferenceWeight is zero.
	RegionPreference topology.RegionID
	PreferenceWeight float64
}

// Input is one allocation request.
type Input struct {
	Servers []ServerInfo
	Shards  []ShardSpec
	// Current maps each shard to the servers currently holding its
	// replicas (one element per replica; length may differ from the
	// spec's Replicas when scaling or after failures).
	Current map[shard.ID][]shard.ServerID
}

// Mode selects the allocation mode (§5.1).
type Mode int

// Allocation modes.
const (
	// Periodic optimizes the placement of all shards and must not
	// deteriorate soft goals.
	Periodic Mode = iota
	// Emergency places unavailable shards as quickly as possible while
	// satisfying hard constraints; healthy replicas are pinned.
	Emergency
)

// String returns the mode name.
func (m Mode) String() string {
	if m == Emergency {
		return "emergency"
	}
	return "periodic"
}

// Policy configures the allocator for one application.
type Policy struct {
	// Metrics to balance on; the first is the primary metric used for
	// big-first ordering and sampler utilization bias.
	Metrics []topology.Resource
	// BalanceWeight per metric (default 1).
	BalanceWeight map[topology.Resource]float64
	// UtilCap is the per-server utilization threshold (§5.1 soft goal 4);
	// 0 disables.
	UtilCap float64
	// MaxDiff is the allowed utilization deviation above the mean (§5.1
	// soft goals 5-6); 0 disables.
	MaxDiff float64
	// SpreadLevel is the fault-domain level across which a shard's
	// replicas spread (§5.1 soft goal 2); SpreadWeight 0 disables.
	SpreadLevel  topology.FaultDomainLevel
	SpreadWeight float64
	// AffinityWeight is the default region-preference weight.
	AffinityWeight float64
	// DrainWeight penalizes replicas on draining servers; 0 disables.
	DrainWeight float64
	// PerShardMoveCap bounds concurrent replica moves per shard emitted
	// in one run (hard constraint 1 of §5.1). 0 means 1.
	PerShardMoveCap int
	// MaxTotalMoves bounds total moves per run; 0 means unlimited.
	MaxTotalMoves int
	// SolveTime bounds solver wall-clock time per batch; 0 = unlimited.
	SolveTime time.Duration

	// Optimization toggles (all default true via DefaultPolicy; the
	// ablation benches turn them off individually).
	GroupedSampling bool
	BigFirst        bool
	UseEquivalence  bool
	GoalBatching    bool
	EnableSwap      bool
}

// DefaultPolicy returns a policy balancing on the given metrics with all
// §5.3 optimizations enabled.
func DefaultPolicy(metrics ...topology.Resource) Policy {
	if len(metrics) == 0 {
		metrics = []topology.Resource{topology.ResourceCPU}
	}
	return Policy{
		Metrics:         metrics,
		UtilCap:         0.9,
		MaxDiff:         0.1,
		SpreadLevel:     topology.LevelRegion,
		SpreadWeight:    100,
		AffinityWeight:  200,
		DrainWeight:     500,
		PerShardMoveCap: 1,
		GroupedSampling: true,
		BigFirst:        true,
		UseEquivalence:  true,
		GoalBatching:    true,
		EnableSwap:      true,
	}
}

// ReplicaMove is one element of the emitted diff. From == "" is a new
// placement (add); To == "" is a removal (drop); otherwise a migration.
type ReplicaMove struct {
	Shard shard.ID
	From  shard.ServerID
	To    shard.ServerID
}

// Kind classifies the move.
func (m ReplicaMove) Kind() string {
	switch {
	case m.From == "":
		return "add"
	case m.To == "":
		return "drop"
	default:
		return "move"
	}
}

// Result is the outcome of one allocation run.
type Result struct {
	// Assignment is the new shard-to-servers placement after applying
	// the (cap-limited) moves.
	Assignment map[shard.ID][]shard.ServerID
	// Moves is the emitted diff, adds first.
	Moves []ReplicaMove
	// Deferred counts solver-proposed moves suppressed by churn caps;
	// the next periodic run will retry them.
	Deferred int
	// Initial and Final are the solver's violation counts (final is
	// before churn capping).
	Initial, Final solver.ViolationCounts
	// Solves is the number of solver batches run.
	Solves int
	// Elapsed is total solver wall-clock time.
	Elapsed time.Duration
	// Evaluated counts solver candidate evaluations.
	Evaluated int
}

// Allocator runs allocations for one application partition.
type Allocator struct {
	policy Policy
	seed   uint64
}

// New returns an allocator with the given policy.
func New(policy Policy, seed uint64) *Allocator {
	if len(policy.Metrics) == 0 {
		panic("allocator: policy needs at least one metric")
	}
	if policy.PerShardMoveCap <= 0 {
		policy.PerShardMoveCap = 1
	}
	return &Allocator{policy: policy, seed: seed}
}

// Policy returns the allocator's policy.
func (a *Allocator) Policy() Policy { return a.policy }

// replicaRef identifies one replica slot of a shard.
type replicaRef struct {
	shard shard.ID
	idx   int
}

// Run performs one allocation and returns the bounded diff. The input is
// not mutated.
func (a *Allocator) Run(in Input, mode Mode) *Result {
	p := a.policy
	metricNames := make([]string, len(p.Metrics))
	for i, m := range p.Metrics {
		metricNames[i] = string(m)
	}

	prob := solver.NewProblem(metricNames)

	// Buckets: live servers only. Dead servers' replicas become
	// unassigned entities.
	bucketOf := make(map[shard.ServerID]solver.BucketID)
	serverOf := make(map[solver.BucketID]shard.ServerID)
	for _, s := range in.Servers {
		if !s.Alive {
			continue
		}
		cap := make([]float64, len(p.Metrics))
		for i, m := range p.Metrics {
			cap[i] = s.Capacity.Get(m)
		}
		props := make(map[string]string, len(s.Domains))
		for k, v := range s.Domains {
			props[k] = v
		}
		group := props[topology.LevelRegion.String()]
		if group == "" {
			group = "all"
		}
		id := prob.AddBucket(solver.Bucket{
			Name:     string(s.ID),
			Capacity: cap,
			Props:    props,
			Group:    group,
			Draining: s.Draining,
		})
		bucketOf[s.ID] = id
		serverOf[id] = s.ID
	}
	if len(bucketOf) == 0 {
		return &Result{Assignment: cloneAssignment(in.Current)}
	}

	// Entities: one per desired replica. Existing placements on live
	// servers keep their bucket; others start unassigned. In emergency
	// mode, placed replicas are pinned.
	refs := make([]replicaRef, 0)
	exclGroups := make(map[solver.EntityID]string)
	conflictGroups := make(map[solver.EntityID]string)
	var affinities []solver.AffinityGoal
	for _, spec := range in.Shards {
		cur := in.Current[spec.ID]
		for idx := 0; idx < spec.Replicas; idx++ {
			load := make([]float64, len(p.Metrics))
			for i, m := range p.Metrics {
				load[i] = spec.Load.Get(m)
			}
			bucket := solver.Unassigned
			placed := false
			if idx < len(cur) {
				if b, ok := bucketOf[cur[idx]]; ok {
					bucket = b
					placed = true
				}
			}
			movable := true
			if mode == Emergency && placed {
				movable = false
			}
			id := prob.AddEntity(solver.Entity{
				Name:    fmt.Sprintf("%s#%d", spec.ID, idx),
				Load:    load,
				Bucket:  bucket,
				Movable: movable,
			})
			refs = append(refs, replicaRef{shard: spec.ID, idx: idx})
			if spec.Replicas > 1 {
				// Invariant: a shard's replicas never share a
				// server (hard).
				conflictGroups[id] = string(spec.ID)
				if p.SpreadWeight > 0 {
					exclGroups[id] = string(spec.ID)
				}
			}
			if spec.RegionPreference != "" && movable {
				w := spec.PreferenceWeight
				if w == 0 {
					w = p.AffinityWeight
				}
				affinities = append(affinities, solver.AffinityGoal{
					Scope:  topology.LevelRegion.String(),
					Entity: id,
					Domain: string(spec.RegionPreference),
					Weight: w,
				})
			}
		}
	}

	// Goal batches, highest priority first (§5.3: "groups placement
	// goals of similar priorities into batches"). Each batch adds its
	// goals on top of the previous ones so later batches cannot undo
	// earlier fixes for free.
	type batch func(*solver.Problem)
	critical := func(pr *solver.Problem) {
		for _, m := range metricNames {
			pr.AddConstraint(solver.CapacitySpec{Metric: m})
		}
		if len(conflictGroups) > 0 {
			pr.AddConflict(solver.ExclusionSpec{
				Scope:  solver.ScopeBucket,
				Groups: conflictGroups,
			})
		}
		if p.DrainWeight > 0 {
			pr.AddDrainGoal(p.DrainWeight)
		}
	}
	placementGoals := func(pr *solver.Problem) {
		if p.SpreadWeight > 0 && len(exclGroups) > 0 {
			pr.AddExclusionGoal(solver.ExclusionSpec{
				Scope:  p.SpreadLevel.String(),
				Groups: exclGroups,
				Weight: p.SpreadWeight,
			})
		}
		for _, g := range affinities {
			pr.AddAffinityGoal(g)
		}
	}
	balanceGoals := func(pr *solver.Problem) {
		for _, m := range p.Metrics {
			w := 1.0
			if p.BalanceWeight != nil && p.BalanceWeight[m] > 0 {
				w = p.BalanceWeight[m]
			}
			if p.UtilCap > 0 || p.MaxDiff > 0 {
				pr.AddBalanceGoal(solver.BalanceSpec{
					Metric:  string(m),
					UtilCap: p.UtilCap,
					MaxDiff: p.MaxDiff,
					Weight:  w,
				})
			}
		}
	}

	var batches [][]batch
	switch {
	case mode == Emergency:
		// Emergency: hard constraints + spread only, one fast batch.
		batches = [][]batch{{critical, placementGoals}}
	case p.GoalBatching:
		batches = [][]batch{
			{critical},
			{critical, placementGoals},
			{critical, placementGoals, balanceGoals},
		}
	default:
		batches = [][]batch{{critical, placementGoals, balanceGoals}}
	}

	res := &Result{}
	opt := solver.DefaultOptions()
	opt.Seed = a.seed
	opt.BigFirst = p.BigFirst
	opt.UseEquivalence = p.UseEquivalence
	opt.EnableSwap = p.EnableSwap
	if p.SolveTime > 0 {
		opt.TimeLimit = p.SolveTime / time.Duration(len(batches))
	}
	start := time.Now()
	for bi, goals := range batches {
		// Rebuild specs on a fresh copy of the problem structure:
		// specs accumulate per batch but entity/bucket state carries
		// over via prob (Solve updates Entities' Bucket in place).
		pr := rebuildProblem(prob, metricNames)
		for _, g := range goals {
			g(pr)
		}
		if p.GroupedSampling {
			opt.Sampler = solver.GroupedSampler(pr, 0)
		} else {
			opt.Sampler = solver.RandomSampler(pr)
		}
		sres := solver.Solve(pr, opt)
		if bi == 0 {
			res.Initial = sres.Initial
		}
		res.Final = sres.Final
		res.Solves++
		res.Evaluated += sres.Evaluated
		// Copy the batch's final assignment back into prob for the
		// next batch.
		for i := range prob.Entities {
			prob.Entities[i].Bucket = pr.Entities[i].Bucket
		}
	}
	res.Elapsed = time.Since(start)

	// Convert the solver assignment into per-shard server lists.
	proposed := make(map[shard.ID][]shard.ServerID, len(in.Shards))
	for i, ref := range refs {
		b := prob.Entities[i].Bucket
		var srv shard.ServerID
		if b != solver.Unassigned {
			srv = serverOf[b]
		}
		lst := proposed[ref.shard]
		for len(lst) <= ref.idx {
			lst = append(lst, "")
		}
		lst[ref.idx] = srv
		proposed[ref.shard] = lst
	}

	res.Assignment, res.Moves, res.Deferred = a.capDiff(in, proposed)
	sortMoves(res.Moves)
	return res
}

// rebuildProblem clones buckets and entities (with current assignments)
// into a new Problem without any specs, so each goal batch starts clean.
// The interned domain table is shared with the source problem: the bucket
// set is identical across batches, so re-interning every scope's domain
// strings per batch would be pure waste.
func rebuildProblem(src *solver.Problem, metrics []string) *solver.Problem {
	pr := solver.NewProblem(metrics)
	for _, b := range src.Buckets {
		pr.AddBucket(b)
	}
	for _, e := range src.Entities {
		pr.AddEntity(e)
	}
	pr.AdoptDomainTable(src.DomainTable())
	return pr
}

// capDiff compares the proposed placement against the current one and
// emits a diff bounded by the churn caps. Adds (restoring availability)
// are never capped; migrations of already-placed replicas are.
func (a *Allocator) capDiff(in Input, proposed map[shard.ID][]shard.ServerID) (map[shard.ID][]shard.ServerID, []ReplicaMove, int) {
	p := a.policy
	final := make(map[shard.ID][]shard.ServerID, len(proposed))
	var adds, migrations []ReplicaMove
	deferred := 0
	totalMigrations := 0

	// Deterministic iteration order.
	ids := make([]shard.ID, 0, len(proposed))
	for id := range proposed {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	liveServers := make(map[shard.ServerID]bool)
	for _, s := range in.Servers {
		if s.Alive {
			liveServers[s.ID] = true
		}
	}

	// Per-replica decision; kind is keep (including unplaced), add, or
	// migrate. Decisions are made first, then de-duplicated, and only then
	// turned into moves — a capped migration falls back to keeping the
	// replica in place, which can collide with a sibling replica that just
	// migrated onto that very server.
	const (
		kindKeep = iota
		kindAdd
		kindMigrate
	)
	type decision struct {
		srv, from shard.ServerID
		kind      int
	}

	for _, id := range ids {
		want := proposed[id]
		cur := in.Current[id]
		shardMoves := 0
		dec := make([]decision, len(want))
		for idx, target := range want {
			var curSrv shard.ServerID
			if idx < len(cur) && liveServers[cur[idx]] {
				curSrv = cur[idx]
			}
			switch {
			case target == "" && curSrv == "":
				// Still unplaceable (no feasible server).
				dec[idx] = decision{kind: kindKeep}
			case target == curSrv:
				dec[idx] = decision{srv: curSrv, kind: kindKeep}
			case curSrv == "":
				// Add: restores availability, never capped.
				dec[idx] = decision{srv: target, kind: kindAdd}
			case target == "":
				// Solver failed to place an existing replica;
				// keep it where it is.
				dec[idx] = decision{srv: curSrv, kind: kindKeep}
			default:
				// Migration: subject to per-shard and global caps.
				if shardMoves >= p.PerShardMoveCap ||
					(p.MaxTotalMoves > 0 && totalMigrations >= p.MaxTotalMoves) {
					deferred++
					dec[idx] = decision{srv: curSrv, kind: kindKeep}
					continue
				}
				shardMoves++
				totalMigrations++
				dec[idx] = decision{srv: target, from: curSrv, kind: kindMigrate}
			}
		}
		// Invariant: a shard never ends with two replicas on one server.
		// Cancel any add/migration whose target collides with another
		// replica of the same shard (typically one kept in place by the
		// churn caps). A cancelled migration reverts to its current
		// server, which may collide with yet another pending move, so
		// iterate to a fixpoint (bounded by the replica count).
		for changed := true; changed; {
			changed = false
			used := make(map[shard.ServerID]int, len(dec))
			for idx := range dec {
				srv := dec[idx].srv
				if srv == "" {
					continue
				}
				first, dup := used[srv]
				if !dup {
					used[srv] = idx
					continue
				}
				cancel := idx
				if dec[cancel].kind == kindKeep {
					cancel = first
				}
				if dec[cancel].kind == kindKeep {
					continue // two keeps: current placement was malformed
				}
				d := &dec[cancel]
				if d.kind == kindMigrate {
					shardMoves--
					totalMigrations--
					d.srv = d.from
				} else {
					d.srv = "" // add retried next round
				}
				d.kind = kindKeep
				d.from = ""
				deferred++
				changed = true
				break
			}
		}
		out := make([]shard.ServerID, len(dec))
		for idx, d := range dec {
			out[idx] = d.srv
			switch d.kind {
			case kindAdd:
				adds = append(adds, ReplicaMove{Shard: id, From: "", To: d.srv})
			case kindMigrate:
				migrations = append(migrations, ReplicaMove{Shard: id, From: d.from, To: d.srv})
			}
		}
		// Surplus current replicas beyond the spec become drops.
		for idx := len(want); idx < len(cur); idx++ {
			if liveServers[cur[idx]] {
				migrations = append(migrations, ReplicaMove{Shard: id, From: cur[idx], To: ""})
			}
		}
		final[id] = out
	}
	return final, append(adds, migrations...), deferred
}

func cloneAssignment(cur map[shard.ID][]shard.ServerID) map[shard.ID][]shard.ServerID {
	out := make(map[shard.ID][]shard.ServerID, len(cur))
	for k, v := range cur {
		out[k] = append([]shard.ServerID(nil), v...)
	}
	return out
}

func sortMoves(moves []ReplicaMove) {
	sort.SliceStable(moves, func(i, j int) bool {
		if (moves[i].From == "") != (moves[j].From == "") {
			return moves[i].From == ""
		}
		if moves[i].Shard != moves[j].Shard {
			return moves[i].Shard < moves[j].Shard
		}
		return moves[i].To < moves[j].To
	})
}

// FormatMoves renders a diff compactly for logs and smctl.
func FormatMoves(moves []ReplicaMove) string {
	parts := make([]string, len(moves))
	for i, m := range moves {
		switch m.Kind() {
		case "add":
			parts[i] = fmt.Sprintf("+%s@%s", m.Shard, m.To)
		case "drop":
			parts[i] = fmt.Sprintf("-%s@%s", m.Shard, m.From)
		default:
			parts[i] = fmt.Sprintf("%s:%s->%s", m.Shard, m.From, m.To)
		}
	}
	return strings.Join(parts, " ")
}
