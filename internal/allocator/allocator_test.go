package allocator

import (
	"fmt"
	"testing"

	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// makeServers builds n live servers spread across the given regions with
// the given CPU capacity each.
func makeServers(n int, regions []string, cpu float64) []ServerInfo {
	out := make([]ServerInfo, n)
	for i := range out {
		region := regions[i%len(regions)]
		out[i] = ServerInfo{
			ID: shard.ServerID(fmt.Sprintf("srv%03d", i)),
			Domains: map[string]string{
				"region":     region,
				"datacenter": region + "/dc0",
				"rack":       fmt.Sprintf("%s/dc0/rack%02d", region, i%8),
			},
			Capacity: topology.Capacity{topology.ResourceCPU: cpu, topology.ResourceShardCount: 1000},
			Alive:    true,
		}
	}
	return out
}

func makeShards(n, replicas int, cpu float64) []ShardSpec {
	out := make([]ShardSpec, n)
	for i := range out {
		out[i] = ShardSpec{
			ID:       shard.ID(fmt.Sprintf("s%04d", i)),
			Replicas: replicas,
			Load:     topology.Capacity{topology.ResourceCPU: cpu, topology.ResourceShardCount: 1},
		}
	}
	return out
}

func assignmentOf(res *Result) map[shard.ID][]shard.ServerID { return res.Assignment }

func TestInitialPlacementAssignsEverything(t *testing.T) {
	a := New(DefaultPolicy(topology.ResourceCPU), 1)
	in := Input{
		Servers: makeServers(10, []string{"r1", "r2"}, 100),
		Shards:  makeShards(50, 2, 1),
		Current: map[shard.ID][]shard.ServerID{},
	}
	res := a.Run(in, Emergency)
	if res.Final.Unassigned != 0 {
		t.Fatalf("unassigned after initial placement: %+v", res.Final)
	}
	for _, sp := range in.Shards {
		servers := res.Assignment[sp.ID]
		if len(servers) != 2 || servers[0] == "" || servers[1] == "" {
			t.Fatalf("shard %s assignment = %v", sp.ID, servers)
		}
		if servers[0] == servers[1] {
			t.Fatalf("shard %s replicas colocated on %s", sp.ID, servers[0])
		}
	}
	// All moves are adds.
	for _, m := range res.Moves {
		if m.Kind() != "add" {
			t.Fatalf("unexpected %s in initial placement", m.Kind())
		}
	}
}

func TestSpreadAcrossRegions(t *testing.T) {
	a := New(DefaultPolicy(topology.ResourceCPU), 1)
	in := Input{
		Servers: makeServers(12, []string{"r1", "r2", "r3"}, 100),
		Shards:  makeShards(30, 3, 1),
		Current: map[shard.ID][]shard.ServerID{},
	}
	res := a.Run(in, Periodic)
	regionOf := map[shard.ServerID]string{}
	for _, s := range in.Servers {
		regionOf[s.ID] = s.Domains["region"]
	}
	for _, sp := range in.Shards {
		regions := map[string]bool{}
		for _, srv := range res.Assignment[sp.ID] {
			regions[regionOf[srv]] = true
		}
		if len(regions) != 3 {
			t.Fatalf("shard %s spans %d regions, want 3", sp.ID, len(regions))
		}
	}
}

func TestRegionPreferenceHonored(t *testing.T) {
	a := New(DefaultPolicy(topology.ResourceCPU), 1)
	shards := makeShards(20, 1, 1)
	for i := range shards {
		shards[i].RegionPreference = "r2"
	}
	in := Input{
		Servers: makeServers(10, []string{"r1", "r2"}, 100),
		Shards:  shards,
		Current: map[shard.ID][]shard.ServerID{},
	}
	res := a.Run(in, Periodic)
	regionOf := map[shard.ServerID]string{}
	for _, s := range in.Servers {
		regionOf[s.ID] = s.Domains["region"]
	}
	for _, sp := range shards {
		srv := res.Assignment[sp.ID][0]
		if regionOf[srv] != "r2" {
			t.Fatalf("shard %s placed in %s, want r2", sp.ID, regionOf[srv])
		}
	}
}

func TestEmergencyPinsHealthyReplicas(t *testing.T) {
	a := New(DefaultPolicy(topology.ResourceCPU), 1)
	servers := makeServers(6, []string{"r1", "r2"}, 100)
	shards := makeShards(12, 2, 1)
	in := Input{Servers: servers, Shards: shards, Current: map[shard.ID][]shard.ServerID{}}
	first := a.Run(in, Periodic)

	// Kill server 0; its replicas must move, everything else must stay.
	servers[0].Alive = false
	in2 := Input{Servers: servers, Shards: shards, Current: first.Assignment}
	res := a.Run(in2, Emergency)
	for _, sp := range shards {
		oldList := first.Assignment[sp.ID]
		newList := res.Assignment[sp.ID]
		for i := range oldList {
			if oldList[i] == "srv000" {
				if newList[i] == "srv000" || newList[i] == "" {
					t.Fatalf("shard %s replica %d not recovered: %v", sp.ID, i, newList)
				}
			} else if newList[i] != oldList[i] {
				t.Fatalf("emergency moved healthy replica of %s: %v -> %v", sp.ID, oldList, newList)
			}
		}
	}
	if res.Final.Unassigned != 0 {
		t.Fatalf("unassigned after emergency: %+v", res.Final)
	}
}

func TestPerShardMoveCapLimitsChurn(t *testing.T) {
	pol := DefaultPolicy(topology.ResourceCPU)
	pol.PerShardMoveCap = 1
	a := New(pol, 1)
	servers := makeServers(9, []string{"r1", "r2", "r3"}, 100)
	shards := makeShards(9, 3, 1)
	// Start all replicas of each shard on the same region (violating
	// spread twice per shard); the solver wants to move 2 replicas per
	// shard but only 1 may move per run.
	current := map[shard.ID][]shard.ServerID{}
	for i, sp := range shards {
		srv := servers[(i%3)*3].ID // a server in region r1
		current[sp.ID] = []shard.ServerID{srv, srv, srv}
	}
	_ = current
	// colocated on one server is invalid input for replicas; use three
	// servers of the same region instead.
	regionServers := map[string][]shard.ServerID{}
	for _, s := range servers {
		r := s.Domains["region"]
		regionServers[r] = append(regionServers[r], s.ID)
	}
	for _, sp := range shards {
		current[sp.ID] = append([]shard.ServerID(nil), regionServers["r1"]...)
	}
	in := Input{Servers: servers, Shards: shards, Current: current}
	res := a.Run(in, Periodic)
	perShard := map[shard.ID]int{}
	for _, m := range res.Moves {
		if m.Kind() == "move" {
			perShard[m.Shard]++
		}
	}
	for id, n := range perShard {
		if n > 1 {
			t.Fatalf("shard %s has %d concurrent moves, cap is 1", id, n)
		}
	}
	if res.Deferred == 0 {
		t.Fatal("expected deferred moves under per-shard cap")
	}
}

func TestMaxTotalMovesCap(t *testing.T) {
	pol := DefaultPolicy(topology.ResourceCPU)
	pol.MaxTotalMoves = 3
	pol.PerShardMoveCap = 2
	a := New(pol, 1)
	servers := makeServers(6, []string{"r1", "r2"}, 100)
	shards := makeShards(12, 2, 1)
	// Colocate both replicas per shard in r1 to force spread moves.
	r1 := []shard.ServerID{}
	for _, s := range servers {
		if s.Domains["region"] == "r1" {
			r1 = append(r1, s.ID)
		}
	}
	current := map[shard.ID][]shard.ServerID{}
	for i, sp := range shards {
		current[sp.ID] = []shard.ServerID{r1[i%3], r1[(i+1)%3]}
	}
	in := Input{Servers: servers, Shards: shards, Current: current}
	res := a.Run(in, Periodic)
	migrations := 0
	for _, m := range res.Moves {
		if m.Kind() == "move" {
			migrations++
		}
	}
	if migrations > 3 {
		t.Fatalf("migrations = %d, cap is 3", migrations)
	}
}

func TestDrainingServerSheds(t *testing.T) {
	a := New(DefaultPolicy(topology.ResourceCPU), 1)
	servers := makeServers(4, []string{"r1"}, 100)
	shards := makeShards(8, 1, 1)
	in := Input{Servers: servers, Shards: shards, Current: map[shard.ID][]shard.ServerID{}}
	first := a.Run(in, Periodic)

	servers[1].Draining = true
	in2 := Input{Servers: servers, Shards: shards, Current: first.Assignment}
	res := a.Run(in2, Periodic)
	for _, sp := range shards {
		for _, srv := range res.Assignment[sp.ID] {
			if srv == servers[1].ID {
				t.Fatalf("shard %s still on draining server", sp.ID)
			}
		}
	}
}

func TestShrinkReplicasEmitsDrops(t *testing.T) {
	a := New(DefaultPolicy(topology.ResourceCPU), 1)
	servers := makeServers(6, []string{"r1", "r2"}, 100)
	shards := makeShards(4, 3, 1)
	in := Input{Servers: servers, Shards: shards, Current: map[shard.ID][]shard.ServerID{}}
	first := a.Run(in, Periodic)

	for i := range shards {
		shards[i].Replicas = 2
	}
	in2 := Input{Servers: servers, Shards: shards, Current: first.Assignment}
	res := a.Run(in2, Periodic)
	drops := 0
	for _, m := range res.Moves {
		if m.Kind() == "drop" {
			drops++
		}
	}
	if drops != 4 {
		t.Fatalf("drops = %d, want 4 (one per shard)", drops)
	}
	for _, sp := range shards {
		if len(res.Assignment[sp.ID]) != 2 {
			t.Fatalf("shard %s has %d replicas, want 2", sp.ID, len(res.Assignment[sp.ID]))
		}
	}
}

func TestLoadBalancingReducesHotServer(t *testing.T) {
	pol := DefaultPolicy(topology.ResourceCPU)
	pol.SpreadWeight = 0 // single-replica shards; spread irrelevant
	a := New(pol, 1)
	servers := makeServers(4, []string{"r1"}, 100)
	shards := makeShards(40, 1, 2) // total load 80 over 400 capacity
	// All on server 0: utilization 0.8 > mean(0.2)+0.1.
	current := map[shard.ID][]shard.ServerID{}
	for _, sp := range shards {
		current[sp.ID] = []shard.ServerID{servers[0].ID}
	}
	pol.PerShardMoveCap = 1
	pol.MaxTotalMoves = 0
	a = New(pol, 1)
	in := Input{Servers: servers, Shards: shards, Current: current}
	res := a.Run(in, Periodic)
	load := map[shard.ServerID]float64{}
	for _, sp := range shards {
		load[res.Assignment[sp.ID][0]] += 2
	}
	if load[servers[0].ID] > 30+1e-9 { // mean 20, +10% of 100 => 30
		t.Fatalf("server 0 still hot: %v", load)
	}
	if res.Final.Balance != 0 {
		t.Fatalf("balance violations remain: %+v", res.Final)
	}
}

func TestNoLiveServers(t *testing.T) {
	a := New(DefaultPolicy(topology.ResourceCPU), 1)
	servers := makeServers(2, []string{"r1"}, 100)
	servers[0].Alive = false
	servers[1].Alive = false
	cur := map[shard.ID][]shard.ServerID{"s0001": {"srv000"}}
	res := a.Run(Input{Servers: servers, Shards: makeShards(2, 1, 1), Current: cur}, Emergency)
	if len(res.Moves) != 0 {
		t.Fatalf("moves with no live servers: %v", res.Moves)
	}
	if got := res.Assignment["s0001"][0]; got != "srv000" {
		t.Fatalf("assignment rewritten: %v", got)
	}
}

func TestStablePlacementProducesNoMoves(t *testing.T) {
	a := New(DefaultPolicy(topology.ResourceCPU), 1)
	servers := makeServers(8, []string{"r1", "r2"}, 100)
	shards := makeShards(24, 2, 1)
	in := Input{Servers: servers, Shards: shards, Current: map[shard.ID][]shard.ServerID{}}
	first := a.Run(in, Periodic)
	in2 := Input{Servers: servers, Shards: shards, Current: first.Assignment}
	res := a.Run(in2, Periodic)
	if len(res.Moves) != 0 {
		t.Fatalf("stable placement produced %d moves: %s", len(res.Moves), FormatMoves(res.Moves))
	}
}

func TestModeString(t *testing.T) {
	if Periodic.String() != "periodic" || Emergency.String() != "emergency" {
		t.Fatal("mode names wrong")
	}
}

func TestMoveKindAndFormat(t *testing.T) {
	add := ReplicaMove{Shard: "s", To: "b"}
	drop := ReplicaMove{Shard: "s", From: "a"}
	mv := ReplicaMove{Shard: "s", From: "a", To: "b"}
	if add.Kind() != "add" || drop.Kind() != "drop" || mv.Kind() != "move" {
		t.Fatal("kinds wrong")
	}
	s := FormatMoves([]ReplicaMove{add, drop, mv})
	if s != "+s@b -s@a s:a->b" {
		t.Fatalf("FormatMoves = %q", s)
	}
}

func TestNewPanicsWithoutMetrics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Policy{}, 1)
}
