package allocator

import (
	"fmt"
	"testing"
	"testing/quick"

	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

// TestRunInvariantsProperty checks the allocator's hard guarantees on
// random inputs: every emitted placement targets a live server, no shard
// ever has two replicas on one server, per-shard and global churn caps are
// respected, and the result is internally consistent with its own moves.
func TestRunInvariantsProperty(t *testing.T) {
	check := func(seed uint64) bool { return checkRunInvariants(t, seed) }
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRunInvariantsRegressions re-checks inputs that once violated the
// invariants (found by the property test's random search).
func TestRunInvariantsRegressions(t *testing.T) {
	for _, seed := range []uint64{16414554008349849662} {
		if !checkRunInvariants(t, seed) {
			t.Errorf("invariants violated for seed %d", seed)
		}
	}
}

// checkRunInvariants builds a random allocator input from seed, runs it,
// and reports whether the hard invariants hold (logging any violation).
func checkRunInvariants(t *testing.T, seed uint64) bool {
	{
		rng := sim.NewRNG(seed)
		nServers := 4 + rng.Intn(8)
		nShards := 5 + rng.Intn(30)
		replicas := 1 + rng.Intn(3)
		if replicas > nServers {
			replicas = nServers
		}

		servers := make([]ServerInfo, nServers)
		for i := range servers {
			servers[i] = ServerInfo{
				ID: shard.ServerID(fmt.Sprintf("srv%02d", i)),
				Domains: map[string]string{
					"region": fmt.Sprintf("r%d", i%3),
					"rack":   fmt.Sprintf("rk%d", i%4),
				},
				Capacity: topology.Capacity{
					topology.ResourceCPU:        100,
					topology.ResourceShardCount: 1000,
				},
				Alive:    rng.Intn(6) != 0, // ~17% dead
				Draining: rng.Intn(8) == 0,
			}
		}
		anyAlive := false
		for _, s := range servers {
			if s.Alive {
				anyAlive = true
			}
		}
		if !anyAlive {
			servers[0].Alive = true
		}
		liveSet := map[shard.ServerID]bool{}
		for _, s := range servers {
			if s.Alive {
				liveSet[s.ID] = true
			}
		}

		shards := make([]ShardSpec, nShards)
		current := map[shard.ID][]shard.ServerID{}
		for i := range shards {
			id := shard.ID(fmt.Sprintf("s%03d", i))
			shards[i] = ShardSpec{
				ID:       id,
				Replicas: replicas,
				Load: topology.Capacity{
					topology.ResourceCPU:        0.5 + 2*rng.Float64(),
					topology.ResourceShardCount: 1,
				},
			}
			// Random (possibly partial, possibly dead) current
			// placement with distinct servers.
			n := rng.Intn(replicas + 1)
			perm := rng.Perm(nServers)
			var cur []shard.ServerID
			for j := 0; j < n; j++ {
				cur = append(cur, servers[perm[j]].ID)
			}
			current[id] = cur
		}

		pol := DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
		pol.PerShardMoveCap = 1 + rng.Intn(2)
		pol.MaxTotalMoves = 1 + rng.Intn(20)
		a := New(pol, seed)

		mode := Periodic
		if rng.Intn(2) == 0 {
			mode = Emergency
		}
		res := a.Run(Input{Servers: servers, Shards: shards, Current: current}, mode)

		// (a) placements target live servers only.
		for id, list := range res.Assignment {
			seen := map[shard.ServerID]bool{}
			for _, srv := range list {
				if srv == "" {
					continue
				}
				if !liveSet[srv] {
					// A replica may legitimately remain on a
					// dead server only if it was already there
					// (kept, not placed).
					was := false
					for _, old := range current[id] {
						if old == srv {
							was = true
						}
					}
					if !was {
						t.Logf("seed %d: shard %s placed on dead %s", seed, id, srv)
						return false
					}
					continue
				}
				// (b) no duplicate servers within a shard.
				if seen[srv] {
					t.Logf("seed %d: shard %s duplicated on %s", seed, id, srv)
					return false
				}
				seen[srv] = true
			}
		}
		// (c) churn caps.
		perShard := map[shard.ID]int{}
		totalMigrations := 0
		for _, m := range res.Moves {
			if m.Kind() == "move" {
				perShard[m.Shard]++
				totalMigrations++
			}
			if m.Kind() != "drop" && !liveSet[m.To] {
				t.Logf("seed %d: move targets dead server %s", seed, m.To)
				return false
			}
		}
		for id, n := range perShard {
			if n > pol.PerShardMoveCap {
				t.Logf("seed %d: shard %s has %d moves > cap %d", seed, id, n, pol.PerShardMoveCap)
				return false
			}
		}
		if totalMigrations > pol.MaxTotalMoves {
			t.Logf("seed %d: %d migrations > cap %d", seed, totalMigrations, pol.MaxTotalMoves)
			return false
		}
		return true
	}
}
