package apps

import (
	"testing"

	"shardmanager/internal/appserver"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

func TestKVStorePutGetScan(t *testing.T) {
	backing := NewKVBacking()
	kv := NewKVStore(nil, backing)
	kv.AddShard("s1", shard.RolePrimary)

	if _, err := kv.HandleRequest(&appserver.Request{Shard: "s1", Op: KVOpPut, Key: "user:1", Payload: KVPut{Value: "alice"}}); err != nil {
		t.Fatal(err)
	}
	kv.HandleRequest(&appserver.Request{Shard: "s1", Op: KVOpPut, Key: "user:2", Payload: KVPut{Value: "bob"}})
	kv.HandleRequest(&appserver.Request{Shard: "s1", Op: KVOpPut, Key: "item:9", Payload: KVPut{Value: "x"}})

	v, err := kv.HandleRequest(&appserver.Request{Shard: "s1", Op: KVOpGet, Key: "user:1"})
	if err != nil || v != "alice" {
		t.Fatalf("get = %v err=%v", v, err)
	}
	// Prefix scan needs key locality (§3.1).
	scan, err := kv.HandleRequest(&appserver.Request{Shard: "s1", Op: KVOpScan, Key: "user:"})
	if err != nil {
		t.Fatal(err)
	}
	keys := scan.([]string)
	if len(keys) != 2 || keys[0] != "user:1" || keys[1] != "user:2" {
		t.Fatalf("scan = %v", keys)
	}
	if backing.Writes != 3 {
		t.Fatalf("writes = %d", backing.Writes)
	}
}

func TestKVStoreErrors(t *testing.T) {
	kv := NewKVStore(nil, NewKVBacking())
	if _, err := kv.HandleRequest(&appserver.Request{Shard: "nope", Op: KVOpGet}); err == nil {
		t.Fatal("unowned shard accepted")
	}
	kv.AddShard("s1", shard.RolePrimary)
	if _, err := kv.HandleRequest(&appserver.Request{Shard: "s1", Op: KVOpGet, Key: "missing"}); err == nil {
		t.Fatal("missing key returned no error")
	}
	if _, err := kv.HandleRequest(&appserver.Request{Shard: "s1", Op: KVOpPut, Key: "k", Payload: 42}); err == nil {
		t.Fatal("bad payload accepted")
	}
	if _, err := kv.HandleRequest(&appserver.Request{Shard: "s1", Op: "bogus"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestKVStoreSurvivesMigration(t *testing.T) {
	// Two replicas over the same backing: writes through the old owner
	// are visible to the new one — the property graceful migration
	// relies on.
	backing := NewKVBacking()
	a := NewKVStore(nil, backing)
	b := NewKVStore(nil, backing)
	a.AddShard("s1", shard.RolePrimary)
	a.HandleRequest(&appserver.Request{Shard: "s1", Op: KVOpPut, Key: "k", Payload: KVPut{Value: "v"}})
	a.DropShard("s1")
	b.AddShard("s1", shard.RolePrimary)
	v, err := b.HandleRequest(&appserver.Request{Shard: "s1", Op: KVOpGet, Key: "k"})
	if err != nil || v != "v" {
		t.Fatalf("migrated read = %v err=%v", v, err)
	}
}

func TestKVStoreLoadReport(t *testing.T) {
	kv := NewKVStore(nil, NewKVBacking())
	kv.AddShard("s1", shard.RolePrimary)
	kv.HandleRequest(&appserver.Request{Shard: "s1", Op: KVOpPut, Key: "k", Payload: KVPut{Value: "v"}})
	if got := kv.ShardLoad("s1").Get(topology.ResourceStorage); got != 1 {
		t.Fatalf("storage load = %v", got)
	}
	kv.SetShardLoad("s1", topology.Capacity{topology.ResourceCPU: 42})
	if got := kv.ShardLoad("s1").Get(topology.ResourceCPU); got != 42 {
		t.Fatalf("override load = %v", got)
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	backing := NewQueueBacking()
	q := NewQueue(nil, backing)
	q.AddShard("s1", shard.RolePrimary)
	for _, m := range []string{"a", "b", "c"} {
		if _, err := q.HandleRequest(&appserver.Request{Shard: "s1", Op: QueueOpEnqueue, Payload: m}); err != nil {
			t.Fatal(err)
		}
	}
	depth, _ := q.HandleRequest(&appserver.Request{Shard: "s1", Op: QueueOpDepth})
	if depth != 3 {
		t.Fatalf("depth = %v", depth)
	}
	for _, want := range []string{"a", "b", "c"} {
		got, err := q.HandleRequest(&appserver.Request{Shard: "s1", Op: QueueOpDequeue})
		if err != nil || got != want {
			t.Fatalf("dequeue = %v err=%v, want %s", got, err, want)
		}
	}
	// Empty dequeue is not an error (in-order delivery just waits).
	got, err := q.HandleRequest(&appserver.Request{Shard: "s1", Op: QueueOpDequeue})
	if err != nil || got != "" {
		t.Fatalf("empty dequeue = %v err=%v", got, err)
	}
	if backing.Enqueued != 3 || backing.Dequeued != 3 {
		t.Fatalf("counters = %d/%d", backing.Enqueued, backing.Dequeued)
	}
}

func TestQueueSurvivesOwnerChange(t *testing.T) {
	backing := NewQueueBacking()
	a := NewQueue(nil, backing)
	b := NewQueue(nil, backing)
	a.AddShard("s1", shard.RolePrimary)
	a.HandleRequest(&appserver.Request{Shard: "s1", Op: QueueOpEnqueue, Payload: "m1"})
	a.HandleRequest(&appserver.Request{Shard: "s1", Op: QueueOpEnqueue, Payload: "m2"})
	a.DropShard("s1")
	b.AddShard("s1", shard.RolePrimary)
	got, err := b.HandleRequest(&appserver.Request{Shard: "s1", Op: QueueOpDequeue})
	if err != nil || got != "m1" {
		t.Fatalf("in-order delivery broken across owners: %v err=%v", got, err)
	}
}

func TestQueueErrors(t *testing.T) {
	q := NewQueue(nil, NewQueueBacking())
	if _, err := q.HandleRequest(&appserver.Request{Shard: "nope", Op: QueueOpDequeue}); err == nil {
		t.Fatal("unowned shard accepted")
	}
	q.AddShard("s1", shard.RolePrimary)
	if _, err := q.HandleRequest(&appserver.Request{Shard: "s1", Op: QueueOpEnqueue, Payload: 3}); err == nil {
		t.Fatal("bad payload accepted")
	}
	if _, err := q.HandleRequest(&appserver.Request{Shard: "s1", Op: "bogus"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestQueueLoadReportsDepth(t *testing.T) {
	q := NewQueue(nil, NewQueueBacking())
	q.AddShard("s1", shard.RolePrimary)
	q.HandleRequest(&appserver.Request{Shard: "s1", Op: QueueOpEnqueue, Payload: "x"})
	if got := q.ShardLoad("s1").Get("queue_depth"); got != 1 {
		t.Fatalf("queue_depth = %v", got)
	}
}

func TestStreamProcessorMaterializesFromBus(t *testing.T) {
	bus := NewDataBus()
	bus.Publish(BusEvent{Shard: "s1", Key: "ad1", Count: 3})
	bus.Publish(BusEvent{Shard: "s1", Key: "ad1", Count: 2})
	bus.Publish(BusEvent{Shard: "s1", Key: "ad2", Count: 1})

	p := NewStreamProcessor(nil, bus)
	p.AddShard("s1", shard.RolePrimary)
	got, err := p.HandleRequest(&appserver.Request{Shard: "s1", Op: StreamOpQuery, Key: "ad1"})
	if err != nil || got != int64(5) {
		t.Fatalf("query = %v err=%v", got, err)
	}
	// New events are consumed on poke/query.
	bus.Publish(BusEvent{Shard: "s1", Key: "ad1", Count: 10})
	got, _ = p.HandleRequest(&appserver.Request{Shard: "s1", Op: StreamOpQuery, Key: "ad1"})
	if got != int64(15) {
		t.Fatalf("query after publish = %v", got)
	}
}

func TestStreamProcessorRebuildOnMigration(t *testing.T) {
	bus := NewDataBus()
	bus.Publish(BusEvent{Shard: "s1", Key: "k", Count: 7})
	a := NewStreamProcessor(nil, bus)
	b := NewStreamProcessor(nil, bus)
	a.AddShard("s1", shard.RolePrimary)
	a.DropShard("s1")
	// The new owner rebuilds the materialized view from the bus.
	b.AddShard("s1", shard.RolePrimary)
	got, err := b.HandleRequest(&appserver.Request{Shard: "s1", Op: StreamOpQuery, Key: "k"})
	if err != nil || got != int64(7) {
		t.Fatalf("rebuilt query = %v err=%v", got, err)
	}
	if b.Rebuilds != 1 {
		t.Fatalf("rebuilds = %d", b.Rebuilds)
	}
}

func TestStreamProcessorErrors(t *testing.T) {
	p := NewStreamProcessor(nil, NewDataBus())
	if _, err := p.HandleRequest(&appserver.Request{Shard: "nope", Op: StreamOpQuery}); err == nil {
		t.Fatal("unowned shard accepted")
	}
	p.AddShard("s1", shard.RolePrimary)
	if _, err := p.HandleRequest(&appserver.Request{Shard: "s1", Op: "bogus"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestDataBusReadFrom(t *testing.T) {
	bus := NewDataBus()
	for i := 0; i < 5; i++ {
		bus.Publish(BusEvent{Shard: "s1", Key: "k", Count: int64(i)})
	}
	if got := len(bus.ReadFrom("s1", 3)); got != 2 {
		t.Fatalf("ReadFrom(3) = %d events", got)
	}
	if got := bus.ReadFrom("s1", 99); got != nil {
		t.Fatalf("ReadFrom past end = %v", got)
	}
	if bus.Len("s1") != 5 {
		t.Fatalf("Len = %d", bus.Len("s1"))
	}
}
