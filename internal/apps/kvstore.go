// Package apps contains functional example applications built on the SM
// programming model, mirroring the application classes the paper reports
// (§2.5): a ZippyDB-like replicated key-value store (primary-secondary,
// persistent state), a FOQS-like priority queue (primary-only), and an
// AdEvents-like stream processor (primary-only soft state fed by an
// external data bus). The experiments and runnable examples use these as
// their workloads.
package apps

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"shardmanager/internal/appserver"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// KVStore is a ZippyDB-like sharded key-value store server (§2.5): each
// shard has a primary handling writes and secondaries serving reads.
// Replication is modeled through a shared per-shard backing store (standing
// in for the Paxos log + SST files): all replicas of a shard read and write
// the same shard state, so a migrated or promoted replica sees the data.
// What the simulation exercises is the control plane — ownership, roles,
// forwarding, failover — not the consensus protocol itself.
type KVStore struct {
	server *appserver.Server
	// backing is shared by all replicas of the application (the
	// "durable" store); keyed by shard then key.
	backing *KVBacking
	// owned tracks shards this replica currently serves.
	owned map[shard.ID]shard.Role
	// loads optionally reports synthetic per-shard load.
	loads map[shard.ID]topology.Capacity
}

// KVBacking is the durable shard state shared by an application's replicas.
type KVBacking struct {
	mu   sync.Mutex
	data map[shard.ID]map[string]string
	// Writes counts committed writes, for tests.
	Writes int64
}

// NewKVBacking returns an empty backing store.
func NewKVBacking() *KVBacking {
	return &KVBacking{data: make(map[shard.ID]map[string]string)}
}

// Put commits a write to a shard.
func (b *KVBacking) Put(s shard.ID, key, value string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	m := b.data[s]
	if m == nil {
		m = make(map[string]string)
		b.data[s] = m
	}
	m[key] = value
	b.Writes++
}

// Get reads a key from a shard.
func (b *KVBacking) Get(s shard.ID, key string) (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	v, ok := b.data[s][key]
	return v, ok
}

// Scan returns the sorted keys in a shard with the given prefix — the
// prefix-scan operation that requires key locality (§3.1, the Laser
// example).
func (b *KVBacking) Scan(s shard.ID, prefix string) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for k := range b.data[s] {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Keys returns the number of keys in a shard.
func (b *KVBacking) Keys(s shard.ID) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.data[s])
}

// NewKVStore builds the application instance for one server.
func NewKVStore(server *appserver.Server, backing *KVBacking) *KVStore {
	return &KVStore{
		server:  server,
		backing: backing,
		owned:   make(map[shard.ID]shard.Role),
		loads:   make(map[shard.ID]topology.Capacity),
	}
}

// SetShardLoad sets the synthetic load reported for a shard.
func (k *KVStore) SetShardLoad(s shard.ID, load topology.Capacity) {
	k.loads[s] = load
}

// AddShard implements appserver.Application.
func (k *KVStore) AddShard(s shard.ID, role shard.Role) { k.owned[s] = role }

// DropShard implements appserver.Application.
func (k *KVStore) DropShard(s shard.ID) { delete(k.owned, s) }

// ChangeRole implements appserver.Application.
func (k *KVStore) ChangeRole(s shard.ID, _, to shard.Role) { k.owned[s] = to }

// ShardLoad implements appserver.LoadReporter.
func (k *KVStore) ShardLoad(s shard.ID) topology.Capacity {
	if l, ok := k.loads[s]; ok {
		return l
	}
	return topology.Capacity{
		topology.ResourceShardCount: 1,
		topology.ResourceCPU:        1,
		topology.ResourceStorage:    float64(k.backing.Keys(s)),
	}
}

// KV operation names.
const (
	KVOpPut  = "put"
	KVOpGet  = "get"
	KVOpScan = "scan"
)

// KVPut is the payload of a put.
type KVPut struct {
	Value string
}

// HandleRequest implements appserver.Application.
func (k *KVStore) HandleRequest(req *appserver.Request) (any, error) {
	if _, ok := k.owned[req.Shard]; !ok {
		return nil, fmt.Errorf("kvstore: shard %s not owned", req.Shard)
	}
	switch req.Op {
	case KVOpPut:
		p, ok := req.Payload.(KVPut)
		if !ok {
			return nil, errors.New("kvstore: bad put payload")
		}
		k.backing.Put(req.Shard, req.Key, p.Value)
		return "ok", nil
	case KVOpGet:
		v, ok := k.backing.Get(req.Shard, req.Key)
		if !ok {
			return nil, errors.New("kvstore: not found")
		}
		return v, nil
	case KVOpScan:
		return k.backing.Scan(req.Shard, req.Key), nil
	default:
		return nil, fmt.Errorf("kvstore: unknown op %q", req.Op)
	}
}
