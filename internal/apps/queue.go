package apps

import (
	"errors"
	"fmt"
	"sync"

	"shardmanager/internal/appserver"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// Queue is a FOQS-like sharded priority-queue server (§1.2, [47]): a
// primary-only application where each shard is an independent queue
// guaranteeing in-order delivery — the instant-messaging queue service of
// Fig 18. Queue contents live in a shared backing store (the external
// database of data-persistency option 2, §2.4) so an in-place restart or a
// migrated primary resumes exactly where the old one stopped.
type Queue struct {
	server  *appserver.Server
	backing *QueueBacking
	owned   map[shard.ID]bool
	loads   map[shard.ID]topology.Capacity
}

// QueueBacking is the durable queue state shared by an application's
// servers.
type QueueBacking struct {
	mu     sync.Mutex
	queues map[shard.ID][]string
	// Enqueued and Dequeued count operations, for tests.
	Enqueued, Dequeued int64
}

// NewQueueBacking returns an empty backing store.
func NewQueueBacking() *QueueBacking {
	return &QueueBacking{queues: make(map[shard.ID][]string)}
}

// push appends an item to a shard's queue.
func (b *QueueBacking) push(s shard.ID, item string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.queues[s] = append(b.queues[s], item)
	b.Enqueued++
}

// pop removes the head of a shard's queue.
func (b *QueueBacking) pop(s shard.ID) (string, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	q := b.queues[s]
	if len(q) == 0 {
		return "", false
	}
	item := q[0]
	b.queues[s] = q[1:]
	b.Dequeued++
	return item, true
}

// Len returns a shard queue's depth.
func (b *QueueBacking) Len(s shard.ID) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.queues[s])
}

// NewQueue builds the application instance for one server.
func NewQueue(server *appserver.Server, backing *QueueBacking) *Queue {
	return &Queue{
		server:  server,
		backing: backing,
		owned:   make(map[shard.ID]bool),
		loads:   make(map[shard.ID]topology.Capacity),
	}
}

// SetShardLoad sets the synthetic load reported for a shard ("single
// synthetic" LB on queue depth, §2.2.4).
func (q *Queue) SetShardLoad(s shard.ID, load topology.Capacity) { q.loads[s] = load }

// AddShard implements appserver.Application.
func (q *Queue) AddShard(s shard.ID, _ shard.Role) { q.owned[s] = true }

// DropShard implements appserver.Application.
func (q *Queue) DropShard(s shard.ID) { delete(q.owned, s) }

// ChangeRole implements appserver.Application (primary-only: no-op).
func (q *Queue) ChangeRole(shard.ID, shard.Role, shard.Role) {}

// ShardLoad implements appserver.LoadReporter: queue depth as the synthetic
// metric.
func (q *Queue) ShardLoad(s shard.ID) topology.Capacity {
	if l, ok := q.loads[s]; ok {
		return l
	}
	return topology.Capacity{
		topology.ResourceShardCount: 1,
		"queue_depth":               float64(q.backing.Len(s)),
	}
}

// Queue operation names.
const (
	QueueOpEnqueue = "enqueue"
	QueueOpDequeue = "dequeue"
	QueueOpDepth   = "depth"
)

// HandleRequest implements appserver.Application.
func (q *Queue) HandleRequest(req *appserver.Request) (any, error) {
	if !q.owned[req.Shard] {
		return nil, fmt.Errorf("queue: shard %s not owned", req.Shard)
	}
	switch req.Op {
	case QueueOpEnqueue:
		item, ok := req.Payload.(string)
		if !ok {
			return nil, errors.New("queue: bad enqueue payload")
		}
		q.backing.push(req.Shard, item)
		return "ok", nil
	case QueueOpDequeue:
		item, ok := q.backing.pop(req.Shard)
		if !ok {
			return "", nil // empty queue is not an error
		}
		return item, nil
	case QueueOpDepth:
		return q.backing.Len(req.Shard), nil
	default:
		return nil, fmt.Errorf("queue: unknown op %q", req.Op)
	}
}
