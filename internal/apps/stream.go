package apps

import (
	"fmt"
	"sync"

	"shardmanager/internal/appserver"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// StreamProcessor is an AdEvents-like stream-processing application (§2.5):
// a primary-only app using standard materialized state (data-persistency
// option 3, §2.4). Each shard consumes a partition of an external data bus
// (a Kafka-like log), maintains per-key aggregates on "local SSD", and on
// total state loss rebuilds by replaying the bus from the shard's last
// checkpoint.
type StreamProcessor struct {
	server *appserver.Server
	bus    *DataBus
	mu     sync.Mutex
	// state is this replica's materialized view: shard -> key -> count.
	state map[shard.ID]map[string]int64
	// cursor is the bus offset each owned shard has consumed through.
	cursor map[shard.ID]int
	owned  map[shard.ID]bool
	loads  map[shard.ID]topology.Capacity

	// Rebuilds counts state rebuilds from the bus (shard adds).
	Rebuilds int64
}

// BusEvent is one record on the data bus.
type BusEvent struct {
	Shard shard.ID
	Key   string
	Count int64
}

// DataBus is a Kafka-like per-shard event log: producers append, shard
// owners replay from a checkpoint. It stands in for the "off-the-shelf
// external tools such as a Kafka-like data bus" of §2.4.
type DataBus struct {
	mu   sync.Mutex
	logs map[shard.ID][]BusEvent
}

// NewDataBus returns an empty bus.
func NewDataBus() *DataBus {
	return &DataBus{logs: make(map[shard.ID][]BusEvent)}
}

// Publish appends an event to its shard's log.
func (b *DataBus) Publish(ev BusEvent) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.logs[ev.Shard] = append(b.logs[ev.Shard], ev)
}

// ReadFrom returns the events of a shard's log starting at offset.
func (b *DataBus) ReadFrom(s shard.ID, offset int) []BusEvent {
	b.mu.Lock()
	defer b.mu.Unlock()
	log := b.logs[s]
	if offset >= len(log) {
		return nil
	}
	out := make([]BusEvent, len(log)-offset)
	copy(out, log[offset:])
	return out
}

// Len returns the length of a shard's log.
func (b *DataBus) Len(s shard.ID) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.logs[s])
}

// NewStreamProcessor builds the application instance for one server.
func NewStreamProcessor(server *appserver.Server, bus *DataBus) *StreamProcessor {
	return &StreamProcessor{
		server: server,
		bus:    bus,
		state:  make(map[shard.ID]map[string]int64),
		cursor: make(map[shard.ID]int),
		owned:  make(map[shard.ID]bool),
		loads:  make(map[shard.ID]topology.Capacity),
	}
}

// SetShardLoad sets the synthetic load reported for a shard.
func (p *StreamProcessor) SetShardLoad(s shard.ID, load topology.Capacity) { p.loads[s] = load }

// AddShard implements appserver.Application: taking ownership rebuilds the
// shard's materialized state by replaying the bus (option 3's recovery
// path).
func (p *StreamProcessor) AddShard(s shard.ID, _ shard.Role) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.owned[s] = true
	p.state[s] = make(map[string]int64)
	p.cursor[s] = 0
	p.Rebuilds++
	p.consumeLocked(s)
}

// DropShard implements appserver.Application: the materialized state is
// discarded; the bus remains the source of truth.
func (p *StreamProcessor) DropShard(s shard.ID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.owned, s)
	delete(p.state, s)
	delete(p.cursor, s)
}

// ChangeRole implements appserver.Application (primary-only: no-op).
func (p *StreamProcessor) ChangeRole(shard.ID, shard.Role, shard.Role) {}

// ShardLoad implements appserver.LoadReporter.
func (p *StreamProcessor) ShardLoad(s shard.ID) topology.Capacity {
	if l, ok := p.loads[s]; ok {
		return l
	}
	return topology.Capacity{topology.ResourceShardCount: 1, topology.ResourceCPU: 1}
}

// consumeLocked advances the shard's cursor through the bus.
func (p *StreamProcessor) consumeLocked(s shard.ID) {
	for _, ev := range p.bus.ReadFrom(s, p.cursor[s]) {
		p.state[s][ev.Key] += ev.Count
		p.cursor[s]++
	}
}

// Stream operation names.
const (
	// StreamOpQuery reads the aggregate for a key.
	StreamOpQuery = "query"
	// StreamOpPoke makes the owner consume new bus events (the
	// experiments call this in lieu of a background consumer timer).
	StreamOpPoke = "poke"
)

// HandleRequest implements appserver.Application.
func (p *StreamProcessor) HandleRequest(req *appserver.Request) (any, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.owned[req.Shard] {
		return nil, fmt.Errorf("stream: shard %s not owned", req.Shard)
	}
	switch req.Op {
	case StreamOpPoke:
		p.consumeLocked(req.Shard)
		return p.cursor[req.Shard], nil
	case StreamOpQuery:
		p.consumeLocked(req.Shard)
		return p.state[req.Shard][req.Key], nil
	default:
		return nil, fmt.Errorf("stream: unknown op %q", req.Op)
	}
}
