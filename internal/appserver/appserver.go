// Package appserver implements the application-server side of Shard
// Manager: the SM library that is linked into application servers (§3.2)
// and the simple programming model of §3.3 — add_shard / drop_shard /
// change_role / prepare_add_shard / prepare_drop_shard — plus the
// request-forwarding machinery that makes graceful primary-replica
// migration drop zero requests (§4.3).
//
// A Host bridges the cluster manager and the application: whenever a
// container of the application's job starts, the Host spins up a Server
// (registering it on the network and creating its ephemeral liveness node
// in the coordination store); when the container stops, the Server dies
// with it. The orchestrator discovers server liveness through those
// ephemeral nodes, exactly as SM does with ZooKeeper.
package appserver

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"shardmanager/internal/cluster"
	"shardmanager/internal/coord"
	"shardmanager/internal/metrics"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
)

// Application is the programming model implemented by application owners
// (Fig 11). The runtime invokes these callbacks; the application manages
// its own per-shard state.
type Application interface {
	// AddShard makes the server officially own the shard in the given
	// role and accept requests for it.
	AddShard(s shard.ID, role shard.Role)
	// DropShard releases the shard.
	DropShard(s shard.ID)
	// ChangeRole switches the shard's replica between primary and
	// secondary (demotion ahead of maintenance, promotion on failover).
	ChangeRole(s shard.ID, from, to shard.Role)
	// HandleRequest processes one client request for an owned shard and
	// returns the response payload or an error.
	HandleRequest(req *Request) (any, error)
}

// Preparer is optionally implemented by applications that need hooks during
// graceful migration (e.g. to transfer state). The runtime's forwarding
// works regardless.
type Preparer interface {
	PrepareAddShard(s shard.ID, currentOwner shard.ServerID, role shard.Role)
	PrepareDropShard(s shard.ID, newOwner shard.ServerID, role shard.Role)
}

// LoadReporter is optionally implemented by applications that report
// per-shard load for load balancing (§2.2.4). Servers without it report
// shard count only.
type LoadReporter interface {
	ShardLoad(s shard.ID) topology.Capacity
}

// Request is one client request routed to a server.
type Request struct {
	App   shard.AppID
	Shard shard.ID
	Key   string
	// Write marks primary-related requests that only the primary may
	// handle.
	Write bool
	// Forwarded marks requests relayed from the old primary during
	// migration (§4.3 step 1).
	Forwarded bool
	// Op and Payload carry application-specific data.
	Op      string
	Payload any
	// TraceSpan is the client request span this RPC belongs to (0 when
	// tracing is disabled); servers attach forwarding events to it.
	TraceSpan trace.SpanID
}

// Response is the outcome of one request.
type Response struct {
	OK      bool
	Err     string
	Payload any
	// Server that finally handled (or rejected) the request.
	Server shard.ServerID
	// Hops counts forwarding hops beyond the first delivery.
	Hops int
}

// Phase is the runtime state of one shard replica on one server. It is
// exported so observers (the runtime auditor) can reason about the §4.3
// protocol steps a replica is in.
type Phase int

// Replica phases, in rough lifecycle order.
const (
	// PhaseNone: zero value; a replica in the map never keeps it.
	PhaseNone Phase = iota
	// PhaseLoading: the replica is loading shard state (LoadTime) and
	// cannot serve yet.
	PhaseLoading
	// PhasePreparingAdd: loaded and ready to take over; serves only
	// forwarded requests.
	PhasePreparingAdd
	// PhaseActive: owns the shard; serves matching requests.
	PhaseActive
	// PhaseForwarding: handing off; forwards requests to the new owner.
	PhaseForwarding
)

// String returns the phase name used in reports and timelines.
func (p Phase) String() string {
	switch p {
	case PhaseNone:
		return "none"
	case PhaseLoading:
		return "loading"
	case PhasePreparingAdd:
		return "preparing"
	case PhaseActive:
		return "active"
	case PhaseForwarding:
		return "forwarding"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

type replica struct {
	role      shard.Role
	phase     Phase
	forwardTo shard.ServerID
	// pendingActive marks a replica that must activate as soon as its
	// state load completes (AddShard arrived during/starting the load).
	pendingActive bool
	// loadGen guards stale load-completion timers.
	loadGen int
	// unconfirmed marks a primary restored from the persisted assignment
	// at start-up: that snapshot may be stale (assignment writes are
	// skipped while the coordination store is unavailable), so the replica
	// rejects writes until an authoritative orchestrator grant or sync
	// confirms the role. Reads still serve — the data is no worse than a
	// secondary's.
	unconfirmed bool
}

// tombstoneTTL is how long a server keeps forwarding requests for a shard
// after drop_shard; §4.3 step 5 says the old primary "keeps forwarding
// client requests ... and drops its replica when no more requests arrive".
const tombstoneTTL = 30 * time.Second

// Kernel-profiler attribution labels for server-side timers.
var (
	lbShardLoad        = sim.LabelFor("appserver", "shard_load")
	lbTombstoneGC      = sim.LabelFor("appserver", "tombstone_gc")
	lbServeDelay       = sim.LabelFor("appserver", "serve_delay")
	lbLivenessRetry    = sim.LabelFor("appserver", "liveness_retry")
	lbSessionReconnect = sim.LabelFor("appserver", "session_reconnect")
	lbFence            = sim.LabelFor("appserver", "fence")
)

// DefaultFenceDelay is how long after losing its coordination session the SM
// library takes to notice and self-fence (the client-side session-timeout
// detection). It must stay well under any orchestrator FailoverGrace /
// PromoteHold so a false-dead server stops serving its primaries before a
// replacement can be promoted.
const DefaultFenceDelay = 2 * time.Second

// Server is one application server instance (the SM library + the app).
type Server struct {
	ID     shard.ServerID
	App    shard.AppID
	Region topology.RegionID

	// LoadTime is how long a newly assigned replica takes to load shard
	// state before it can serve (0 = instant). Graceful migration hides
	// it — the new primary loads during prepare_add_shard while the old
	// one keeps serving; without graceful migration the shard is simply
	// down for this long on every move (the Fig 17 gap).
	LoadTime time.Duration

	loop *sim.Loop
	net  *rpcnet.Network
	dir  *Directory
	app  Application

	// serveDelay stalls every request by this much before processing — a
	// gray failure: the process is alive (liveness node intact, orchestrator
	// sees it healthy) but slow. Set by fault injection via SetServeDelay.
	serveDelay time.Duration

	replicas   map[shard.ID]*replica
	tombstones map[shard.ID]shard.ServerID

	// fenced marks lost-lease state: the server's coordination session
	// expired and no newer-generation sync has arrived, so its primary
	// replicas neither serve nor accept writes ("fenced" rejection). The
	// fencing token is fenceGen — the lost session's generation; only a
	// SyncAssignment with a strictly greater generation lifts the fence.
	fenced   bool
	fenceGen int64
	// grantGen is the highest generation seen in any grant or sync, kept
	// for observability and stale-grant rejection.
	grantGen int64

	// Stats.
	Handled   metrics.Counter
	ForwardTx metrics.Counter // requests this server forwarded away
	Rejected  metrics.Counter
}

// requestMetric counts one request outcome in the loop's labeled registry
// (a no-op when metrics are disabled). outcome is one of the fixed reject
// reasons, "ok", or "app_error" — never raw application error text, which
// would be an unbounded label.
func (s *Server) requestMetric(outcome string) {
	s.loop.Metrics().Counter("appserver_requests_total",
		"app", string(s.App), "outcome", outcome).Inc()
}

// opMetric counts one SM-library shard operation (add/drop/change_role/
// prepare_add/prepare_drop).
func (s *Server) opMetric(op string) {
	s.loop.Metrics().Counter("appserver_shard_ops_total",
		"app", string(s.App), "op", op).Inc()
}

// replicaMetric moves the live-replica gauge when a replica is created or
// deleted on this server.
func (s *Server) replicaMetric(delta float64) {
	s.loop.Metrics().Gauge("appserver_replicas", "app", string(s.App)).Add(delta)
}

// reject counts and replies with one of the fixed rejection reasons.
func (s *Server) reject(sid shard.ID, reply func(Response), errMsg string) {
	s.Rejected.Inc()
	s.requestMetric(errMsg)
	for i := range s.dir.observers {
		if fn := s.dir.observers[i].Rejected; fn != nil {
			fn(s.ID, sid, errMsg)
		}
	}
	reply(Response{Err: errMsg, Server: s.ID})
}

// Observer sees server-side ownership events across every server in a
// Directory. All callbacks fire synchronously inside existing events and
// must draw no randomness, so attaching one (the runtime auditor does)
// cannot perturb a seeded run. Any field may be nil.
type Observer struct {
	// ReplicaChanged fires after any replica state transition (add, prepare
	// add/drop, role change, load completion). peer is the forwarding target
	// while the replica forwards, else "".
	ReplicaChanged func(server shard.ServerID, s shard.ID, role shard.Role, phase Phase, peer shard.ServerID)
	// ReplicaDropped fires when drop_shard removes a replica; tombstone
	// reports whether a forwarding tombstone was left behind.
	ReplicaDropped func(server shard.ServerID, s shard.ID, tombstone bool)
	// Handled fires when a server executes a request locally, with the
	// phase the replica was in at execution time.
	Handled func(server shard.ServerID, s shard.ID, write, forwarded bool, phase Phase)
	// Rejected fires when a server turns a request away with one of the
	// fixed rejection reasons.
	Rejected func(server shard.ServerID, s shard.ID, reason string)
	// Fenced fires when a server enters (fenced=true) or leaves
	// (fenced=false) the lost-lease fenced state, with the generation the
	// transition happened at.
	Fenced func(server shard.ServerID, fenced bool, gen int64)
	// ReplicaConfirmed fires when a replica's confirmed flag changes:
	// false when start-up restores a primary from the (possibly stale)
	// persisted assignment, true when an authoritative grant confirms it.
	ReplicaConfirmed func(server shard.ServerID, s shard.ID, confirmed bool)
	// ServerRemoved fires when a server leaves the directory (its container
	// stopped): every replica it held died with the process.
	ServerRemoved func(server shard.ServerID)
}

// Directory resolves server IDs to live Server instances for the in-process
// RPC layer. One Directory serves a whole simulation.
type Directory struct {
	servers   map[shard.ServerID]*Server
	observers []Observer
}

// AddObserver registers an ownership-event observer with every server that
// resolves through this directory (append-only; observers cannot be
// removed).
func (d *Directory) AddObserver(o Observer) { d.observers = append(d.observers, o) }

// notifyReplica reports a replica's post-transition state to observers.
func (s *Server) notifyReplica(id shard.ID, r *replica) {
	for i := range s.dir.observers {
		if fn := s.dir.observers[i].ReplicaChanged; fn != nil {
			fn(s.ID, id, r.role, r.phase, r.forwardTo)
		}
	}
}

// notifyFenced reports a fence transition to observers.
func (s *Server) notifyFenced() {
	for i := range s.dir.observers {
		if fn := s.dir.observers[i].Fenced; fn != nil {
			fn(s.ID, s.fenced, s.fenceGen)
		}
	}
}

// notifyConfirmed reports a replica's confirmed-flag change to observers.
func (s *Server) notifyConfirmed(id shard.ID, confirmed bool) {
	for i := range s.dir.observers {
		if fn := s.dir.observers[i].ReplicaConfirmed; fn != nil {
			fn(s.ID, id, confirmed)
		}
	}
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{servers: make(map[shard.ServerID]*Server)}
}

// Lookup returns the live server with the given ID, or nil.
func (d *Directory) Lookup(id shard.ServerID) *Server { return d.servers[id] }

// Register adds a server to the directory (Hosts do this automatically;
// exported for tests and hand-wired setups).
func (d *Directory) Register(s *Server) { d.servers[s.ID] = s }

// Remove deletes a server from the directory. Observers are told the server
// is gone: every replica it held died with the process, so ownership views
// must not keep counting them as live.
func (d *Directory) Remove(id shard.ServerID) {
	if _, ok := d.servers[id]; !ok {
		return
	}
	delete(d.servers, id)
	for i := range d.observers {
		if fn := d.observers[i].ServerRemoved; fn != nil {
			fn(id)
		}
	}
}

// Servers returns the number of live servers.
func (d *Directory) Servers() int { return len(d.servers) }

// NewServer constructs a server; Hosts normally do this.
func NewServer(loop *sim.Loop, net *rpcnet.Network, dir *Directory, app Application,
	appID shard.AppID, id shard.ServerID, region topology.RegionID) *Server {
	return &Server{
		ID:         id,
		App:        appID,
		Region:     region,
		loop:       loop,
		net:        net,
		dir:        dir,
		app:        app,
		replicas:   make(map[shard.ID]*replica),
		tombstones: make(map[shard.ID]shard.ServerID),
	}
}

// --- SM library API, invoked by the orchestrator (Fig 11) ---

// applyGrantGen screens one grant's fencing token. Generation 0 grants (the
// pre-epoch API, used directly by tests and hand-wired setups) always apply.
// A positive generation at or below the fence generation belongs to a lease
// the server already lost — the grant is stale and must be dropped.
func (s *Server) applyGrantGen(gen int64) bool {
	if gen > s.grantGen {
		s.grantGen = gen
	}
	if gen > 0 && gen <= s.fenceGen {
		s.loop.Metrics().Counter("appserver_stale_grants_total",
			"app", string(s.App)).Inc()
		return false
	}
	return true
}

// Fence puts the server into the fenced state at generation gen: primary
// replicas stop serving and reject everything with "fenced" until a
// SyncAssignment carrying a newer generation arrives. The SM library invokes
// this when it detects its coordination session expired (lost lease).
func (s *Server) Fence(gen int64) {
	if s.fenced && gen <= s.fenceGen {
		return
	}
	s.fenced = true
	if gen > s.fenceGen {
		s.fenceGen = gen
	}
	s.opMetric("fence")
	s.notifyFenced()
}

// Fenced reports whether the server is currently fenced.
func (s *Server) Fenced() bool { return s.fenced }

// FenceGen returns the generation the server last fenced at (0 if never).
func (s *Server) FenceGen() int64 { return s.fenceGen }

// AddShard gives the server official ownership of the shard. A replica that
// already prepared (or already served) activates immediately; a brand-new
// replica first loads shard state for LoadTime and rejects requests until
// done (step 3 of §4.3 when preceded by prepare_add_shard; a cold add
// otherwise).
func (s *Server) AddShard(id shard.ID, role shard.Role) {
	s.AddShardGen(id, role, 0)
}

// AddShardGen is AddShard carrying the grant's fencing generation; stale
// grants (gen at or below the fence generation) are dropped.
func (s *Server) AddShardGen(id shard.ID, role shard.Role, gen int64) {
	if !s.applyGrantGen(gen) {
		return
	}
	s.addShard(id, role, true)
}

func (s *Server) addShard(id shard.ID, role shard.Role, confirmed bool) {
	r := s.replicas[id]
	if r == nil {
		r = &replica{}
		s.replicas[id] = r
		s.replicaMetric(1)
	}
	s.opMetric("add")
	r.role = role
	r.forwardTo = ""
	wasUnconfirmed := r.unconfirmed
	r.unconfirmed = !confirmed
	delete(s.tombstones, id)
	switch r.phase {
	case PhaseLoading:
		r.pendingActive = true
	case PhaseNone:
		if s.LoadTime > 0 {
			r.pendingActive = true
			s.startLoad(id, r)
		} else {
			r.phase = PhaseActive
		}
	default: // prepared, active, or forwarding: state already present
		r.phase = PhaseActive
	}
	if r.unconfirmed != wasUnconfirmed {
		s.notifyConfirmed(id, !r.unconfirmed)
	}
	s.notifyReplica(id, r)
	s.app.AddShard(id, role)
}

// startLoad begins the replica's state load; on completion it becomes
// active (if AddShard already arrived) or prepared.
func (s *Server) startLoad(id shard.ID, r *replica) {
	r.phase = PhaseLoading
	r.loadGen++
	gen := r.loadGen
	s.loop.AfterL(s.LoadTime, lbShardLoad, func() {
		if s.replicas[id] != r || r.loadGen != gen || r.phase != PhaseLoading {
			return
		}
		if r.pendingActive {
			r.pendingActive = false
			r.phase = PhaseActive
		} else {
			r.phase = PhasePreparingAdd
		}
		s.notifyReplica(id, r)
	})
}

// DropShard releases the shard. If the replica was forwarding, a tombstone
// keeps forwarding stragglers for tombstoneTTL (step 5 of §4.3).
func (s *Server) DropShard(id shard.ID) {
	r := s.replicas[id]
	if r == nil {
		return
	}
	if r.phase == PhaseForwarding && r.forwardTo != "" {
		to := r.forwardTo
		s.tombstones[id] = to
		s.loop.AfterL(tombstoneTTL, lbTombstoneGC, func() {
			if s.tombstones[id] == to {
				delete(s.tombstones, id)
			}
		})
	}
	delete(s.replicas, id)
	s.replicaMetric(-1)
	s.opMetric("drop")
	_, tomb := s.tombstones[id]
	for i := range s.dir.observers {
		if fn := s.dir.observers[i].ReplicaDropped; fn != nil {
			fn(s.ID, id, tomb)
		}
	}
	s.app.DropShard(id)
}

// ChangeRole changes the replica's role in place (§2.2.3; also used to
// demote primaries ahead of non-negotiable maintenance, §4.2).
func (s *Server) ChangeRole(id shard.ID, from, to shard.Role) error {
	return s.ChangeRoleGen(id, from, to, 0)
}

// ChangeRoleGen is ChangeRole carrying the grant's fencing generation; stale
// grants are dropped with an error.
func (s *Server) ChangeRoleGen(id shard.ID, from, to shard.Role, gen int64) error {
	if !s.applyGrantGen(gen) {
		return fmt.Errorf("appserver: stale role grant for %s (gen %d <= fence %d)", id, gen, s.fenceGen)
	}
	r := s.replicas[id]
	if r == nil {
		return fmt.Errorf("appserver: %s does not hold shard %s", s.ID, id)
	}
	if r.role != from {
		return fmt.Errorf("appserver: shard %s role is %v, not %v", id, r.role, from)
	}
	r.role = to
	if r.unconfirmed && gen > 0 {
		r.unconfirmed = false
		s.notifyConfirmed(id, true)
	}
	s.opMetric("change_role")
	s.notifyReplica(id, r)
	s.app.ChangeRole(id, from, to)
	return nil
}

// PrepareAddShard readies this server to take over the shard: it loads
// state (LoadTime) and then processes only requests forwarded from the
// current owner (step 1 of §4.3). The old primary keeps serving clients
// throughout, which is why the load is invisible to them.
func (s *Server) PrepareAddShard(id shard.ID, currentOwner shard.ServerID, role shard.Role) {
	s.PrepareAddShardGen(id, currentOwner, role, 0)
}

// PrepareAddShardGen is PrepareAddShard carrying the grant's fencing
// generation; stale grants are dropped.
func (s *Server) PrepareAddShardGen(id shard.ID, currentOwner shard.ServerID, role shard.Role, gen int64) {
	if !s.applyGrantGen(gen) {
		return
	}
	r := s.replicas[id]
	if r == nil {
		r = &replica{}
		s.replicas[id] = r
		s.replicaMetric(1)
	}
	s.opMetric("prepare_add")
	r.role = role
	if r.phase == PhaseNone && s.LoadTime > 0 {
		s.startLoad(id, r)
	} else if r.phase != PhaseLoading {
		r.phase = PhasePreparingAdd
	}
	s.notifyReplica(id, r)
	if p, ok := s.app.(Preparer); ok {
		p.PrepareAddShard(id, currentOwner, role)
	}
}

// PrepareDropShard tells this server that newOwner is taking over: from now
// on it forwards the shard's requests to newOwner (step 2 of §4.3).
func (s *Server) PrepareDropShard(id shard.ID, newOwner shard.ServerID, role shard.Role) {
	r := s.replicas[id]
	if r == nil {
		return
	}
	s.opMetric("prepare_drop")
	r.phase = PhaseForwarding
	r.forwardTo = newOwner
	s.notifyReplica(id, r)
	if p, ok := s.app.(Preparer); ok {
		p.PrepareDropShard(id, newOwner, role)
	}
}

// ResumeShard cancels a hand-off: a forwarding replica returns to active
// serving. The orchestrator issues it when a graceful migration aborts after
// its prepare_drop already executed on the old primary — without it the old
// primary would forward to a target that no longer holds the shard. No-op
// unless the replica is forwarding.
func (s *Server) ResumeShard(id shard.ID) { s.ResumeShardGen(id, 0) }

// ResumeShardGen is ResumeShard carrying the grant's fencing generation;
// stale grants are dropped.
func (s *Server) ResumeShardGen(id shard.ID, gen int64) {
	if !s.applyGrantGen(gen) {
		return
	}
	r := s.replicas[id]
	if r == nil || r.phase != PhaseForwarding {
		return
	}
	s.opMetric("resume")
	r.phase = PhaseActive
	r.forwardTo = ""
	s.notifyReplica(id, r)
}

// SyncAssignment reconciles this server's replica set against the
// orchestrator's authoritative view at generation gen — the anti-entropy
// step the orchestrator runs when a server rejoins (its liveness node
// reappeared after expiry or restart). A generation newer than the fence
// generation lifts the fence; an older one means the sync itself is stale
// and is ignored. Only settled (active-phase) replicas are corrected —
// replicas mid-migration (loading/preparing/forwarding) belong to the §4.3
// protocol and are left alone. Corrections: roles fixed in place,
// unconfirmed restores confirmed, active replicas absent from want dropped,
// and shards the orchestrator assigns that the server lost added cold.
//
// protect lists shards that an in-flight migration is handing to this server:
// the authoritative slots still name the old owner until the migration
// commits, so such replicas are neither dropped nor cold-added here — the
// migration's own add_shard grant settles them.
func (s *Server) SyncAssignment(want map[shard.ID]shard.Role, protect map[shard.ID]bool, gen int64) {
	if gen > 0 && gen <= s.fenceGen {
		s.loop.Metrics().Counter("appserver_stale_grants_total",
			"app", string(s.App)).Inc()
		return
	}
	if gen > s.grantGen {
		s.grantGen = gen
	}
	s.opMetric("sync")
	ids := make([]string, 0, len(s.replicas))
	for id := range s.replicas {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, sid := range ids {
		id := shard.ID(sid)
		r := s.replicas[id]
		if r.phase != PhaseActive {
			continue
		}
		role, ok := want[id]
		if !ok {
			if !protect[id] {
				s.DropShard(id)
			}
			continue
		}
		if r.role != role {
			old := r.role
			r.role = role
			if r.unconfirmed {
				r.unconfirmed = false
				s.notifyConfirmed(id, true)
			}
			s.notifyReplica(id, r)
			s.app.ChangeRole(id, old, role)
		} else if r.unconfirmed {
			r.unconfirmed = false
			s.notifyConfirmed(id, true)
			s.notifyReplica(id, r)
		}
	}
	missing := make([]string, 0, len(want))
	for id := range want {
		if s.replicas[id] == nil {
			missing = append(missing, string(id))
		}
	}
	sort.Strings(missing)
	for _, sid := range missing {
		id := shard.ID(sid)
		s.addShard(id, want[id], true)
	}
	// Unfence last: the fence may only lift once the replica set matches the
	// authoritative assignment — lifting it first would momentarily revive
	// stale primaries the reconcile above is about to drop or demote.
	if s.fenced {
		s.fenced = false
		s.opMetric("unfence")
		s.notifyFenced()
	}
}

// Shards returns a snapshot of owned shards and their roles (all phases).
func (s *Server) Shards() map[shard.ID]shard.Role {
	out := make(map[shard.ID]shard.Role, len(s.replicas))
	for id, r := range s.replicas {
		out[id] = r.role
	}
	return out
}

// HoldsActive reports whether the server actively owns the shard.
func (s *Server) HoldsActive(id shard.ID) bool {
	r := s.replicas[id]
	return r != nil && r.phase == PhaseActive
}

// LoadReport returns per-shard load for the orchestrator's collection
// cycle. Applications implementing LoadReporter control the numbers;
// otherwise each shard reports shard_count=1.
func (s *Server) LoadReport() map[shard.ID]topology.Capacity {
	out := make(map[shard.ID]topology.Capacity, len(s.replicas))
	for id := range s.replicas {
		if lr, ok := s.app.(LoadReporter); ok {
			out[id] = lr.ShardLoad(id)
		} else {
			out[id] = topology.Capacity{topology.ResourceShardCount: 1}
		}
	}
	return out
}

// Serve processes one request, replying asynchronously (possibly after one
// or more forwarding hops). reply is invoked exactly once and must not be
// nil.
func (s *Server) Serve(req *Request, reply func(Response)) {
	if s.serveDelay > 0 {
		s.loop.AfterL(s.serveDelay, lbServeDelay, func() { s.serve(req, reply) })
		return
	}
	s.serve(req, reply)
}

// SetServeDelay sets the per-request gray-failure stall (0 restores normal
// service).
func (s *Server) SetServeDelay(d time.Duration) { s.serveDelay = d }

// ServeDelay returns the current gray-failure stall.
func (s *Server) ServeDelay() time.Duration { return s.serveDelay }

func (s *Server) serve(req *Request, reply func(Response)) {
	r := s.replicas[req.Shard]
	if r == nil {
		if to, ok := s.tombstones[req.Shard]; ok {
			s.forward(req, to, reply)
			return
		}
		s.reject(req.Shard, reply, "not-owner")
		return
	}
	switch r.phase {
	case PhaseActive:
		// Lost lease: a fenced primary serves nothing — the orchestrator
		// may already have promoted a replacement, and any response from
		// here could contradict it. An unconfirmed (restored-from-store)
		// primary only blocks writes: its data is no staler than a
		// secondary's, but write ownership needs an authoritative grant.
		if r.role == shard.RolePrimary && (s.fenced || (req.Write && r.unconfirmed)) {
			s.reject(req.Shard, reply, "fenced")
			return
		}
		if req.Write && r.role != shard.RolePrimary {
			s.reject(req.Shard, reply, "not-primary")
			return
		}
		s.handle(req, r.phase, reply)
	case PhaseLoading:
		s.reject(req.Shard, reply, "loading")
	case PhasePreparingAdd:
		if req.Forwarded {
			s.handle(req, r.phase, reply)
			return
		}
		s.reject(req.Shard, reply, "preparing")
	case PhaseForwarding:
		s.forward(req, r.forwardTo, reply)
	default:
		panic("appserver: unknown replica phase")
	}
}

func (s *Server) handle(req *Request, phase Phase, reply func(Response)) {
	for i := range s.dir.observers {
		if fn := s.dir.observers[i].Handled; fn != nil {
			fn(s.ID, req.Shard, req.Write, req.Forwarded, phase)
		}
	}
	payload, err := s.app.HandleRequest(req)
	if err != nil {
		s.Rejected.Inc()
		s.requestMetric("app_error")
		reply(Response{Err: err.Error(), Server: s.ID})
		return
	}
	s.Handled.Inc()
	s.requestMetric("ok")
	reply(Response{OK: true, Payload: payload, Server: s.ID})
}

// forward relays the request to the shard's new owner and relays the
// response back (one extra hop each way).
func (s *Server) forward(req *Request, to shard.ServerID, reply func(Response)) {
	if to == "" || to == s.ID {
		s.reject(req.Shard, reply, "forward-loop")
		return
	}
	s.ForwardTx.Inc()
	s.loop.Metrics().Counter("appserver_forwarded_total", "app", string(s.App)).Inc()
	if tr := s.loop.Tracer(); tr.Enabled() {
		tr.Event("appserver", "forward", req.TraceSpan,
			trace.String("from", string(s.ID)),
			trace.String("to", string(to)),
			trace.String("shard", string(req.Shard)))
	}
	fwd := *req
	fwd.Forwarded = true
	s.net.Send(s.Region, rpcnet.Endpoint(to), func() {
		target := s.dir.Lookup(to)
		if target == nil {
			reply(Response{Err: "forward-target-gone", Server: s.ID})
			return
		}
		target.Serve(&fwd, func(resp Response) {
			resp.Hops++
			// Relay the response back through this server's region.
			s.net.Send(target.Region, rpcnet.Endpoint(s.ID), func() {
				reply(resp)
			}, func() {
				// Original server died mid-relay; the client's
				// RPC times out and it retries.
				reply(Response{Err: "relay-lost", Server: s.ID, Hops: resp.Hops})
			})
		})
	}, func() {
		reply(Response{Err: "forward-failed", Server: s.ID})
	})
}

// --- Host: container lifecycle -> server lifecycle ---

// CoordPaths groups the coordination-store layout for one application.
type CoordPaths struct {
	// ServersPath is the parent of per-server ephemeral liveness nodes.
	ServersPath string
	// AssignPath is the parent of per-server persisted assignments.
	AssignPath string
}

// DefaultPaths returns the standard layout for an application.
func DefaultPaths(app shard.AppID) CoordPaths {
	return CoordPaths{
		ServersPath: "/apps/" + string(app) + "/servers",
		AssignPath:  "/apps/" + string(app) + "/assign",
	}
}

// EscapeID flattens a server ID (which may contain '/', e.g. "job/3") into
// a single coordination-store path segment.
func EscapeID(id shard.ServerID) string {
	b := []byte(string(id))
	for i := range b {
		if b[i] == '/' {
			b[i] = '~'
		}
	}
	return string(b)
}

// ServerNode returns the liveness node path for a server.
func (p CoordPaths) ServerNode(id shard.ServerID) string {
	return p.ServersPath + "/" + EscapeID(id)
}

// AssignNode returns the persisted-assignment node path for a server.
func (p CoordPaths) AssignNode(id shard.ServerID) string {
	return p.AssignPath + "/" + EscapeID(id)
}

// Host materializes application servers for the containers of one job in
// one region. It implements cluster.Listener.
type Host struct {
	loop    *sim.Loop
	net     *rpcnet.Network
	dir     *Directory
	store   *coord.Store
	fleet   *topology.Fleet
	appID   shard.AppID
	job     cluster.JobID
	factory func(*Server) Application
	paths   CoordPaths

	// FenceDelay is how long after losing its coordination session a server
	// waits before self-fencing (§4.3 safety: it must elapse before the
	// orchestrator's failover grace so a false-dead server stops serving as
	// primary strictly before a replacement can be promoted).
	FenceDelay time.Duration

	servers  map[shard.ServerID]*Server
	sessions map[shard.ServerID]*coord.Session
	machines map[shard.ServerID]topology.MachineID
}

// NewHost creates the host and prepares the coordination-store layout. The
// factory builds the per-server application instance.
func NewHost(loop *sim.Loop, net *rpcnet.Network, dir *Directory, store *coord.Store,
	fleet *topology.Fleet, appID shard.AppID, job cluster.JobID,
	factory func(*Server) Application) *Host {
	paths := DefaultPaths(appID)
	mustCreateAll(store, paths.ServersPath)
	mustCreateAll(store, paths.AssignPath)
	return &Host{
		loop:       loop,
		net:        net,
		dir:        dir,
		store:      store,
		fleet:      fleet,
		appID:      appID,
		job:        job,
		factory:    factory,
		paths:      paths,
		FenceDelay: DefaultFenceDelay,
		servers:    make(map[shard.ServerID]*Server),
		sessions:   make(map[shard.ServerID]*coord.Session),
		machines:   make(map[shard.ServerID]topology.MachineID),
	}
}

func mustCreateAll(store *coord.Store, path string) {
	if err := store.CreateAll(path, nil, nil); err != nil && !store.Exists(path) {
		panic(fmt.Sprintf("appserver: creating %s: %v", path, err))
	}
}

// Server returns the live server for an ID, or nil.
func (h *Host) Server(id shard.ServerID) *Server { return h.servers[id] }

// ServerIDs returns the IDs of all live servers under this host, sorted —
// fault injection iterates this, so the order must be deterministic.
func (h *Host) ServerIDs() []shard.ServerID {
	ids := make([]shard.ServerID, 0, len(h.servers))
	for id := range h.servers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// LiveServers returns the number of live servers under this host.
func (h *Host) LiveServers() int { return len(h.servers) }

// ContainerStarted implements cluster.Listener: boot a server.
func (h *Host) ContainerStarted(c cluster.Container) {
	if c.Job != h.job {
		return
	}
	id := shard.ServerID(c.ID)
	if _, dup := h.servers[id]; dup {
		return
	}
	machine := h.fleet.Machine(c.Machine)
	if machine == nil {
		panic(fmt.Sprintf("appserver: container %s on unknown machine %s", c.ID, c.Machine))
	}
	srv := NewServer(h.loop, h.net, h.dir, nil, h.appID, id, machine.Region)
	srv.app = h.factory(srv)
	h.servers[id] = srv
	h.machines[id] = machine.ID
	h.dir.Register(srv)
	h.net.Register(rpcnet.Endpoint(id), machine.Region)

	// Liveness: ephemeral node, as the SM library does with ZooKeeper.
	sess := h.store.NewSession()
	h.sessions[id] = sess
	h.armFence(id, sess)
	path := h.paths.ServerNode(id)
	if h.store.Exists(path) {
		// Leftover from an earlier incarnation; replace it.
		_ = h.store.Delete(path, -1)
	}
	// The payload is the machine ID; the orchestrator resolves placement
	// metadata (region, datacenter, rack) from it.
	h.createLiveness(id, sess, []byte(machine.ID))

	// Start-up assignment: read persisted shard assignment directly from
	// the store, without the SM control plane (§3.2).
	h.restoreAssignment(srv)
}

// createLiveness publishes the server's ephemeral liveness node, retrying
// while the coordination service is unavailable (write-stall fault): a real
// SM library keeps reconnecting rather than crashing the container.
func (h *Host) createLiveness(id shard.ServerID, sess *coord.Session, payload []byte) {
	path := h.paths.ServerNode(id)
	err := h.store.Create(path, payload, sess)
	switch {
	case err == nil:
		return
	case errors.Is(err, coord.ErrUnavailable):
		h.loop.AfterL(livenessRetryDelay, lbLivenessRetry, func() {
			// Give up silently if the server died or reconnected with a
			// fresh session in the meantime.
			if h.servers[id] == nil || h.sessions[id] != sess {
				return
			}
			h.createLiveness(id, sess, payload)
		})
	case errors.Is(err, coord.ErrNodeExists):
		// Leftover from a racing earlier incarnation; replace it.
		_ = h.store.Delete(path, -1)
		h.createLiveness(id, sess, payload)
	default:
		panic(fmt.Sprintf("appserver: liveness node: %v", err))
	}
}

// livenessRetryDelay spaces liveness-publication retries while the
// coordination service rejects writes.
const livenessRetryDelay = 500 * time.Millisecond

// ExpireSession force-expires the coordination session of one live server —
// the classic ZooKeeper false-dead: the process is healthy but its ephemeral
// node vanishes, so the orchestrator begins failover. After reconnectAfter
// (0 = never) the server opens a fresh session and republishes its liveness
// node, as a real client would on reconnect.
func (h *Host) ExpireSession(id shard.ServerID, reconnectAfter time.Duration) bool {
	sess := h.sessions[id]
	if sess == nil {
		return false
	}
	sess.Expire()
	delete(h.sessions, id)
	if reconnectAfter > 0 {
		h.loop.AfterL(reconnectAfter, lbSessionReconnect, func() {
			if h.servers[id] == nil || h.sessions[id] != nil {
				return // died, or something else reconnected it
			}
			fresh := h.store.NewSession()
			h.sessions[id] = fresh
			h.armFence(id, fresh)
			h.createLiveness(id, fresh, []byte(h.machines[id]))
		})
	}
	return true
}

// armFence schedules self-fencing for a server when its coordination session
// expires: FenceDelay after the loss, the server stops serving primaries and
// rejects writes with a "fenced" error. The skip check consults the server's
// *current* session generation, not the grant stream — a false-dead server
// may legitimately receive new grants while the orchestrator still believes
// it alive, and those must not suppress the fence. Only a fresh session
// (reconnect) or an authoritative SyncAssignment lifts it.
func (h *Host) armFence(id shard.ServerID, sess *coord.Session) {
	gen := sess.Generation()
	sess.OnExpire(func() {
		h.loop.AfterL(h.FenceDelay, lbFence, func() {
			srv := h.servers[id]
			if srv == nil {
				return // container died; nothing to fence
			}
			if cur := h.sessions[id]; cur != nil && !cur.Closed() && cur.Generation() > gen {
				return // already reconnected with a fresh session
			}
			srv.Fence(gen)
		})
	})
}

// restoreAssignment loads the server's persisted shard list, if any.
// Restored primaries start unconfirmed: the persisted snapshot may be stale
// (assignment writes are skipped while the coordination store is
// unavailable), so write ownership waits for the orchestrator's rejoin sync.
func (h *Host) restoreAssignment(srv *Server) {
	data, _, err := h.store.Get(h.paths.AssignNode(srv.ID))
	if err != nil {
		return
	}
	for _, entry := range splitAssign(string(data)) {
		srv.addShard(entry.id, entry.role, entry.role != shard.RolePrimary)
	}
}

// ContainerStopping implements cluster.Listener: the process dies now.
func (h *Host) ContainerStopping(c cluster.Container, reason string) {
	if c.Job != h.job {
		return
	}
	id := shard.ServerID(c.ID)
	if _, ok := h.servers[id]; !ok {
		return
	}
	h.net.Unregister(rpcnet.Endpoint(id))
	h.dir.Remove(id)
	delete(h.servers, id)
	delete(h.machines, id)
	if sess := h.sessions[id]; sess != nil {
		sess.Expire()
		delete(h.sessions, id)
	}
}

// ContainerStopped implements cluster.Listener (no-op; work happens at
// stopping time).
func (h *Host) ContainerStopped(cluster.Container) {}

// --- persisted assignment encoding (tiny, line-based) ---

type assignEntry struct {
	id   shard.ID
	role shard.Role
}

// EncodeAssignment renders a server's shard set for persistence.
func EncodeAssignment(shards map[shard.ID]shard.Role) []byte {
	out := make([]byte, 0, len(shards)*16)
	// Deterministic order for stable store contents.
	ids := make([]string, 0, len(shards))
	for id := range shards {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		out = append(out, id...)
		out = append(out, ' ')
		if shards[shard.ID(id)] == shard.RolePrimary {
			out = append(out, 'p')
		} else {
			out = append(out, 's')
		}
		out = append(out, '\n')
	}
	return out
}

func splitAssign(s string) []assignEntry {
	var out []assignEntry
	for len(s) > 0 {
		nl := -1
		for i := 0; i < len(s); i++ {
			if s[i] == '\n' {
				nl = i
				break
			}
		}
		var line string
		if nl == -1 {
			line, s = s, ""
		} else {
			line, s = s[:nl], s[nl+1:]
		}
		if len(line) < 3 {
			continue
		}
		role := shard.RoleSecondary
		if line[len(line)-1] == 'p' {
			role = shard.RolePrimary
		}
		out = append(out, assignEntry{id: shard.ID(line[:len(line)-2]), role: role})
	}
	return out
}
