package appserver

import (
	"errors"
	"testing"
	"time"

	"shardmanager/internal/cluster"
	"shardmanager/internal/coord"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

// echoApp records callbacks and echoes request keys.
type echoApp struct {
	added   []shard.ID
	dropped []shard.ID
	roles   map[shard.ID]shard.Role
	prepAdd int
	prepDrp int
	failAll bool
}

func newEchoApp() *echoApp { return &echoApp{roles: map[shard.ID]shard.Role{}} }

func (a *echoApp) AddShard(s shard.ID, role shard.Role) {
	a.added = append(a.added, s)
	a.roles[s] = role
}
func (a *echoApp) DropShard(s shard.ID) {
	a.dropped = append(a.dropped, s)
	delete(a.roles, s)
}
func (a *echoApp) ChangeRole(s shard.ID, from, to shard.Role) { a.roles[s] = to }
func (a *echoApp) HandleRequest(req *Request) (any, error) {
	if a.failAll {
		return nil, errors.New("app-error")
	}
	return "echo:" + req.Key, nil
}
func (a *echoApp) PrepareAddShard(shard.ID, shard.ServerID, shard.Role)  { a.prepAdd++ }
func (a *echoApp) PrepareDropShard(shard.ID, shard.ServerID, shard.Role) { a.prepDrp++ }

type testEnv struct {
	loop  *sim.Loop
	fleet *topology.Fleet
	net   *rpcnet.Network
	dir   *Directory
}

func newEnv() *testEnv {
	fleet := topology.Build(topology.Spec{
		Regions:           []topology.RegionID{"a", "b"},
		MachinesPerRegion: 4,
	})
	loop := sim.NewLoop(1)
	net := rpcnet.NewNetwork(loop, fleet)
	net.Jitter = 0
	return &testEnv{loop: loop, fleet: fleet, net: net, dir: NewDirectory()}
}

func (e *testEnv) server(id shard.ServerID, region topology.RegionID, app Application) *Server {
	s := NewServer(e.loop, e.net, e.dir, app, "app", id, region)
	e.dir.servers[id] = s
	e.net.Register(rpcnet.Endpoint(id), region)
	return s
}

func TestAddDropShardLifecycle(t *testing.T) {
	env := newEnv()
	app := newEchoApp()
	s := env.server("s1", "a", app)
	s.AddShard("sh1", shard.RolePrimary)
	if !s.HoldsActive("sh1") {
		t.Fatal("shard not active after AddShard")
	}
	if got := s.Shards()["sh1"]; got != shard.RolePrimary {
		t.Fatalf("role = %v", got)
	}
	s.DropShard("sh1")
	if len(s.Shards()) != 0 || len(app.dropped) != 1 {
		t.Fatal("DropShard did not release")
	}
	// Dropping an unowned shard is a no-op.
	s.DropShard("ghost")
}

func TestChangeRole(t *testing.T) {
	env := newEnv()
	app := newEchoApp()
	s := env.server("s1", "a", app)
	s.AddShard("sh1", shard.RoleSecondary)
	if err := s.ChangeRole("sh1", shard.RoleSecondary, shard.RolePrimary); err != nil {
		t.Fatal(err)
	}
	if app.roles["sh1"] != shard.RolePrimary {
		t.Fatal("app not notified of role change")
	}
	if err := s.ChangeRole("sh1", shard.RoleSecondary, shard.RolePrimary); err == nil {
		t.Fatal("stale role change accepted")
	}
	if err := s.ChangeRole("ghost", shard.RolePrimary, shard.RoleSecondary); err == nil {
		t.Fatal("role change on unowned shard accepted")
	}
}

func serve(t *testing.T, env *testEnv, s *Server, req *Request) Response {
	t.Helper()
	var resp Response
	got := false
	s.Serve(req, func(r Response) { resp = r; got = true })
	env.loop.Run()
	if !got {
		t.Fatal("no reply")
	}
	return resp
}

func TestServeActivePrimary(t *testing.T) {
	env := newEnv()
	s := env.server("s1", "a", newEchoApp())
	s.AddShard("sh1", shard.RolePrimary)
	resp := serve(t, env, s, &Request{Shard: "sh1", Key: "k", Write: true})
	if !resp.OK || resp.Payload != "echo:k" || resp.Server != "s1" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestServeWriteOnSecondaryRejected(t *testing.T) {
	env := newEnv()
	s := env.server("s1", "a", newEchoApp())
	s.AddShard("sh1", shard.RoleSecondary)
	resp := serve(t, env, s, &Request{Shard: "sh1", Write: true})
	if resp.OK || resp.Err != "not-primary" {
		t.Fatalf("resp = %+v", resp)
	}
	// Reads are fine on secondaries.
	resp = serve(t, env, s, &Request{Shard: "sh1", Key: "k"})
	if !resp.OK {
		t.Fatalf("read on secondary rejected: %+v", resp)
	}
}

func TestServeUnownedShardRejected(t *testing.T) {
	env := newEnv()
	s := env.server("s1", "a", newEchoApp())
	resp := serve(t, env, s, &Request{Shard: "ghost"})
	if resp.OK || resp.Err != "not-owner" {
		t.Fatalf("resp = %+v", resp)
	}
	if s.Rejected.Value() != 1 {
		t.Fatalf("Rejected = %d", s.Rejected.Value())
	}
}

func TestServeAppError(t *testing.T) {
	env := newEnv()
	app := newEchoApp()
	app.failAll = true
	s := env.server("s1", "a", app)
	s.AddShard("sh1", shard.RolePrimary)
	resp := serve(t, env, s, &Request{Shard: "sh1", Write: true})
	if resp.OK || resp.Err != "app-error" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestGracefulMigrationProtocol(t *testing.T) {
	env := newEnv()
	appOld, appNew := newEchoApp(), newEchoApp()
	old := env.server("old", "a", appOld)
	newer := env.server("new", "b", appNew)
	old.AddShard("sh1", shard.RolePrimary)

	// Step 1: prepare_add on the new primary. Direct client requests are
	// rejected; only forwarded ones are served.
	newer.PrepareAddShard("sh1", "old", shard.RolePrimary)
	if appNew.prepAdd != 1 {
		t.Fatal("PrepareAddShard hook not invoked")
	}
	resp := serve(t, env, newer, &Request{Shard: "sh1", Write: true})
	if resp.OK || resp.Err != "preparing" {
		t.Fatalf("direct request during prepare = %+v", resp)
	}

	// Step 2: prepare_drop on the old primary: all requests forward.
	old.PrepareDropShard("sh1", "new", shard.RolePrimary)
	if appOld.prepDrp != 1 {
		t.Fatal("PrepareDropShard hook not invoked")
	}
	resp = serve(t, env, old, &Request{Shard: "sh1", Key: "k", Write: true})
	if !resp.OK || resp.Server != "new" || resp.Hops != 1 {
		t.Fatalf("forwarded resp = %+v", resp)
	}

	// Step 3: add_shard on the new primary: it serves directly.
	newer.AddShard("sh1", shard.RolePrimary)
	resp = serve(t, env, newer, &Request{Shard: "sh1", Write: true})
	if !resp.OK || resp.Hops != 0 {
		t.Fatalf("direct resp after add = %+v", resp)
	}

	// Step 5: drop_shard on the old primary; stragglers still forward
	// via the tombstone.
	old.DropShard("sh1")
	resp = serve(t, env, old, &Request{Shard: "sh1", Write: true})
	if !resp.OK || resp.Server != "new" {
		t.Fatalf("tombstone forward = %+v", resp)
	}
	// After the tombstone TTL, requests are rejected.
	env.loop.RunFor(tombstoneTTL + time.Second)
	resp = serve(t, env, old, &Request{Shard: "sh1", Write: true})
	if resp.OK || resp.Err != "not-owner" {
		t.Fatalf("post-TTL resp = %+v", resp)
	}
}

func TestForwardToDeadServerFails(t *testing.T) {
	env := newEnv()
	old := env.server("old", "a", newEchoApp())
	env.server("new", "b", newEchoApp())
	old.AddShard("sh1", shard.RolePrimary)
	old.PrepareDropShard("sh1", "new", shard.RolePrimary)
	env.net.Unregister("new")
	resp := serve(t, env, old, &Request{Shard: "sh1", Write: true})
	if resp.OK || resp.Err != "forward-failed" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestForwardLoopRejected(t *testing.T) {
	env := newEnv()
	s := env.server("s1", "a", newEchoApp())
	s.AddShard("sh1", shard.RolePrimary)
	s.PrepareDropShard("sh1", "s1", shard.RolePrimary)
	resp := serve(t, env, s, &Request{Shard: "sh1", Write: true})
	if resp.OK || resp.Err != "forward-loop" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestLoadReportDefaultsToShardCount(t *testing.T) {
	env := newEnv()
	s := env.server("s1", "a", newEchoApp())
	s.AddShard("a", shard.RolePrimary)
	s.AddShard("b", shard.RoleSecondary)
	rep := s.LoadReport()
	if len(rep) != 2 || rep["a"].Get(topology.ResourceShardCount) != 1 {
		t.Fatalf("LoadReport = %v", rep)
	}
}

type loadApp struct {
	*echoApp
}

func (l loadApp) ShardLoad(s shard.ID) topology.Capacity {
	return topology.Capacity{topology.ResourceCPU: 7}
}

func TestLoadReporterOverride(t *testing.T) {
	env := newEnv()
	s := env.server("s1", "a", loadApp{newEchoApp()})
	s.AddShard("a", shard.RolePrimary)
	if got := s.LoadReport()["a"].Get(topology.ResourceCPU); got != 7 {
		t.Fatalf("load = %v", got)
	}
}

func TestEncodeDecodeAssignment(t *testing.T) {
	in := map[shard.ID]shard.Role{
		"beta":  shard.RoleSecondary,
		"alpha": shard.RolePrimary,
	}
	data := EncodeAssignment(in)
	if string(data) != "alpha p\nbeta s\n" {
		t.Fatalf("encoded = %q", data)
	}
	entries := splitAssign(string(data))
	if len(entries) != 2 || entries[0].id != "alpha" || entries[0].role != shard.RolePrimary ||
		entries[1].id != "beta" || entries[1].role != shard.RoleSecondary {
		t.Fatalf("decoded = %+v", entries)
	}
}

func TestHostLifecycle(t *testing.T) {
	env := newEnv()
	store := coord.NewStore()
	mgr := cluster.NewManager(env.loop, env.fleet, "a", cluster.DefaultOptions())
	host := NewHost(env.loop, env.net, env.dir, store, env.fleet, "app", "job", func(s *Server) Application {
		return newEchoApp()
	})
	mgr.AddListener(host)
	mgr.CreateJob("job", "app", 3)
	env.loop.RunFor(time.Minute)
	if host.LiveServers() != 3 {
		t.Fatalf("live servers = %d", host.LiveServers())
	}
	// Liveness nodes exist.
	kids, err := store.Children("/apps/app/servers")
	if err != nil || len(kids) != 3 {
		t.Fatalf("liveness nodes = %v err=%v", kids, err)
	}
	// Kill a container: server dies, ephemeral vanishes, endpoint down.
	cid := mgr.RunningContainers("job")[0]
	c, _ := mgr.Container(cid)
	mgr.KillMachine(c.Machine)
	if host.LiveServers() != 2 {
		t.Fatalf("live servers after kill = %d", host.LiveServers())
	}
	kids, _ = store.Children("/apps/app/servers")
	if len(kids) != 2 {
		t.Fatalf("liveness nodes after kill = %v", kids)
	}
	if env.net.Reachable(rpcnet.Endpoint(cid)) {
		t.Fatal("dead server still reachable")
	}
}

func TestHostRestoresPersistedAssignment(t *testing.T) {
	env := newEnv()
	store := coord.NewStore()
	mgr := cluster.NewManager(env.loop, env.fleet, "a", cluster.DefaultOptions())
	host := NewHost(env.loop, env.net, env.dir, store, env.fleet, "app", "job", func(s *Server) Application {
		return newEchoApp()
	})
	mgr.AddListener(host)
	// Persist an assignment for the first container before it starts.
	if err := store.Create(DefaultPaths("app").AssignNode("job/0"),
		EncodeAssignment(map[shard.ID]shard.Role{"sh9": shard.RolePrimary}), nil); err != nil {
		t.Fatal(err)
	}
	mgr.CreateJob("job", "app", 1)
	env.loop.RunFor(time.Minute)
	srv := host.Server("job/0")
	if srv == nil {
		t.Fatal("server not started")
	}
	if !srv.HoldsActive("sh9") {
		t.Fatal("persisted assignment not restored at start-up")
	}
}

func TestHostIgnoresOtherJobs(t *testing.T) {
	env := newEnv()
	store := coord.NewStore()
	mgr := cluster.NewManager(env.loop, env.fleet, "a", cluster.DefaultOptions())
	host := NewHost(env.loop, env.net, env.dir, store, env.fleet, "app", "job", func(s *Server) Application {
		return newEchoApp()
	})
	mgr.AddListener(host)
	mgr.CreateJob("otherjob", "other", 2)
	env.loop.RunFor(time.Minute)
	if host.LiveServers() != 0 {
		t.Fatal("host adopted containers of a different job")
	}
}

func TestHostExpireSessionFalseDeadThenReconnect(t *testing.T) {
	env := newEnv()
	store := coord.NewStore()
	mgr := cluster.NewManager(env.loop, env.fleet, "a", cluster.DefaultOptions())
	host := NewHost(env.loop, env.net, env.dir, store, env.fleet, "app", "job", func(s *Server) Application {
		return newEchoApp()
	})
	mgr.AddListener(host)
	mgr.CreateJob("job", "app", 3)
	env.loop.RunFor(time.Minute)
	if host.LiveServers() != 3 {
		t.Fatalf("live servers = %d", host.LiveServers())
	}
	id := host.ServerIDs()[0]
	if !host.ExpireSession(id, 5*time.Second) {
		t.Fatal("ExpireSession on a live server returned false")
	}
	// False-dead: the process is alive but its ephemeral node is gone.
	if host.LiveServers() != 3 {
		t.Fatalf("live servers after expiry = %d; expiry must not kill the process", host.LiveServers())
	}
	kids, _ := store.Children("/apps/app/servers")
	if len(kids) != 2 {
		t.Fatalf("liveness nodes right after expiry = %d, want 2", len(kids))
	}
	// After the reconnect delay the server republishes its liveness node.
	env.loop.RunFor(10 * time.Second)
	kids, _ = store.Children("/apps/app/servers")
	if len(kids) != 3 {
		t.Fatalf("liveness nodes after reconnect = %d, want 3", len(kids))
	}
	if !store.Exists(host.paths.ServerNode(id)) {
		t.Fatalf("liveness node for %s missing after reconnect", id)
	}
	if host.ExpireSession("no-such-server", time.Second) {
		t.Fatal("ExpireSession on unknown server returned true")
	}
}

func TestHostLivenessRetriesThroughCoordWriteStall(t *testing.T) {
	env := newEnv()
	store := coord.NewStore()
	mgr := cluster.NewManager(env.loop, env.fleet, "a", cluster.DefaultOptions())
	host := NewHost(env.loop, env.net, env.dir, store, env.fleet, "app", "job", func(s *Server) Application {
		return newEchoApp()
	})
	mgr.AddListener(host)
	// Stall all coordination writes, then start containers: liveness
	// publication must keep retrying instead of crashing.
	store.SetWriteGate(func(op, path string) error { return coord.ErrUnavailable })
	mgr.CreateJob("job", "app", 3)
	env.loop.RunFor(time.Minute)
	if host.LiveServers() != 3 {
		t.Fatalf("live servers during stall = %d", host.LiveServers())
	}
	kids, _ := store.Children("/apps/app/servers")
	if len(kids) != 0 {
		t.Fatalf("liveness nodes published through the stall: %v", kids)
	}
	store.SetWriteGate(nil)
	env.loop.RunFor(2 * time.Second)
	kids, _ = store.Children("/apps/app/servers")
	if len(kids) != 3 {
		t.Fatalf("liveness nodes after stall lifted = %d, want 3", len(kids))
	}
}

func TestServeDelayGrayFailure(t *testing.T) {
	env := newEnv()
	s := env.server("s1", "a", newEchoApp())
	s.AddShard("sh1", shard.RolePrimary)

	timed := func() time.Duration {
		start := env.loop.Now()
		var took time.Duration
		got := false
		s.Serve(&Request{Shard: "sh1", Key: "k", Write: true}, func(r Response) {
			if !r.OK {
				t.Fatalf("resp = %+v", r)
			}
			took = env.loop.Now() - start
			got = true
		})
		env.loop.Run()
		if !got {
			t.Fatal("no reply")
		}
		return took
	}

	base := timed()
	s.SetServeDelay(300 * time.Millisecond)
	if d := timed(); d != base+300*time.Millisecond {
		t.Fatalf("gray serve took %v, want base %v + 300ms", d, base)
	}
	s.SetServeDelay(0)
	if d := timed(); d != base {
		t.Fatalf("restored serve took %v, want %v", d, base)
	}
}
