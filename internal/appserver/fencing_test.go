package appserver

import (
	"testing"
	"time"

	"shardmanager/internal/cluster"
	"shardmanager/internal/coord"
	"shardmanager/internal/shard"
)

// fencedHost builds a one-container host world and returns the host, its
// coordination store, and the single live server holding sh1 as primary.
func fencedHost(t *testing.T) (*testEnv, *Host, *coord.Store, *Server) {
	t.Helper()
	env := newEnv()
	store := coord.NewStore()
	mgr := cluster.NewManager(env.loop, env.fleet, "a", cluster.DefaultOptions())
	host := NewHost(env.loop, env.net, env.dir, store, env.fleet, "app", "job", func(s *Server) Application {
		return newEchoApp()
	})
	mgr.AddListener(host)
	mgr.CreateJob("job", "app", 1)
	env.loop.RunFor(time.Minute)
	id := host.ServerIDs()[0]
	srv := host.Server(id)
	if srv == nil {
		t.Fatal("server not started")
	}
	srv.AddShard("sh1", shard.RolePrimary)
	return env, host, store, srv
}

// TestFenceOnSessionExpiryBeforeFailoverGrace is the lease-expiry half of
// the dual-primary fix: a primary whose coordination session expires must
// self-fence within DefaultFenceDelay — well before any failover grace the
// orchestrator uses (the torture sweep runs 10s, production defaults 30s) —
// so by the time a successor can be promoted, the false-dead server has
// provably stopped serving.
func TestFenceOnSessionExpiryBeforeFailoverGrace(t *testing.T) {
	env, host, _, srv := fencedHost(t)
	id := srv.ID

	resp := serve(t, env, srv, &Request{Shard: "sh1", Key: "k", Write: true})
	if !resp.OK {
		t.Fatalf("write before expiry rejected: %+v", resp)
	}

	// Expire the session; the process stays alive (false-dead) and would
	// keep serving forever without self-fencing.
	if !host.ExpireSession(id, time.Minute) {
		t.Fatal("ExpireSession returned false")
	}
	if srv.Fenced() {
		t.Fatal("server fenced instantly; the fence must wait FenceDelay")
	}
	env.loop.RunFor(DefaultFenceDelay + 100*time.Millisecond)
	if !srv.Fenced() {
		t.Fatalf("server not fenced %v after session expiry", DefaultFenceDelay)
	}
	resp = serve(t, env, srv, &Request{Shard: "sh1", Key: "k", Write: true})
	if resp.OK || resp.Err != "fenced" {
		t.Fatalf("write on fenced primary = %+v, want fenced rejection", resp)
	}
	// The fence must land before any plausible failover grace: total elapsed
	// since expiry is ~2s against the 10s the torture worlds use.
	if DefaultFenceDelay >= 10*time.Second {
		t.Fatalf("DefaultFenceDelay = %v; must be far below failover grace", DefaultFenceDelay)
	}
}

// TestSyncAssignmentLiftsFence proves only an authoritative sync unfences:
// the orchestrator reconciles the rejoined server's replica set at a fresh
// generation, after which the primary serves again.
func TestSyncAssignmentLiftsFence(t *testing.T) {
	env, host, store, srv := fencedHost(t)
	host.ExpireSession(srv.ID, time.Minute)
	env.loop.RunFor(DefaultFenceDelay + 100*time.Millisecond)
	if !srv.Fenced() {
		t.Fatal("server not fenced after expiry")
	}

	// A grant from before the fence (stale generation) must not unfence or
	// apply: the lease it rode on is already lost.
	if err := srv.ChangeRoleGen("sh1", shard.RolePrimary, shard.RoleSecondary, srv.FenceGen()); err == nil {
		t.Fatal("stale role grant accepted on fenced server")
	}

	gen := store.NextEpoch()
	srv.SyncAssignment(map[shard.ID]shard.Role{"sh1": shard.RolePrimary}, nil, gen)
	if srv.Fenced() {
		t.Fatal("authoritative sync did not lift the fence")
	}
	resp := serve(t, env, srv, &Request{Shard: "sh1", Key: "k", Write: true})
	if !resp.OK {
		t.Fatalf("write after sync rejected: %+v", resp)
	}
}

// TestReconnectedSessionDisarmsStaleFence pins the fence-arming race: the
// fence timer of an expired session must not fire after the server already
// reconnected with a fresh session (the new lease is live; fencing it would
// be a spurious outage).
func TestReconnectedSessionDisarmsStaleFence(t *testing.T) {
	env, host, _, srv := fencedHost(t)
	// Reconnect after 1s, well inside the 2s fence delay.
	host.ExpireSession(srv.ID, time.Second)
	env.loop.RunFor(DefaultFenceDelay + time.Second)
	if srv.Fenced() {
		t.Fatal("fence fired for a session that already reconnected")
	}
	resp := serve(t, env, srv, &Request{Shard: "sh1", Key: "k", Write: true})
	if !resp.OK {
		t.Fatalf("write after reconnect rejected: %+v", resp)
	}
}
