package appserver

import (
	"testing"
	"time"

	"shardmanager/internal/shard"
)

// These tests cover the shard state-load window (Server.LoadTime): a cold
// AddShard cannot serve until the load completes, while the graceful
// prepare path hides the load entirely.

func TestColdAddRejectsUntilLoaded(t *testing.T) {
	env := newEnv()
	s := env.server("s1", "a", newEchoApp())
	s.LoadTime = 5 * time.Second
	s.AddShard("sh1", shard.RolePrimary)

	if s.HoldsActive("sh1") {
		t.Fatal("active immediately despite LoadTime")
	}
	resp := serve(t, env, s, &Request{Shard: "sh1", Write: true})
	if resp.OK || resp.Err != "loading" {
		t.Fatalf("resp during load = %+v", resp)
	}
	env.loop.RunFor(6 * time.Second)
	if !s.HoldsActive("sh1") {
		t.Fatal("not active after load window")
	}
	resp = serve(t, env, s, &Request{Shard: "sh1", Key: "k", Write: true})
	if !resp.OK {
		t.Fatalf("resp after load = %+v", resp)
	}
}

func TestPrepareThenAddActivatesInstantly(t *testing.T) {
	env := newEnv()
	s := env.server("s1", "a", newEchoApp())
	s.LoadTime = 5 * time.Second
	s.PrepareAddShard("sh1", "old", shard.RolePrimary)
	env.loop.RunFor(6 * time.Second) // load completes during prepare
	// add_shard after a completed prepare is instant (§4.3 step 3).
	s.AddShard("sh1", shard.RolePrimary)
	if !s.HoldsActive("sh1") {
		t.Fatal("prepared replica not active immediately after AddShard")
	}
}

func TestAddDuringPrepareLoadActivatesWhenLoaded(t *testing.T) {
	env := newEnv()
	s := env.server("s1", "a", newEchoApp())
	s.LoadTime = 5 * time.Second
	s.PrepareAddShard("sh1", "old", shard.RolePrimary)
	env.loop.RunFor(time.Second)
	s.AddShard("sh1", shard.RolePrimary) // arrives mid-load
	if s.HoldsActive("sh1") {
		t.Fatal("active before load completed")
	}
	env.loop.RunFor(5 * time.Second)
	if !s.HoldsActive("sh1") {
		t.Fatal("not active after load completed")
	}
}

func TestPreparedReplicaServesForwardedAfterLoad(t *testing.T) {
	env := newEnv()
	s := env.server("s1", "a", newEchoApp())
	s.LoadTime = 2 * time.Second
	s.PrepareAddShard("sh1", "old", shard.RolePrimary)
	// During the load even forwarded requests are rejected...
	resp := serve(t, env, s, &Request{Shard: "sh1", Write: true, Forwarded: true})
	if resp.OK {
		t.Fatal("served forwarded request while loading")
	}
	env.loop.RunFor(3 * time.Second)
	// ...after it, forwarded requests are served, direct ones are not.
	resp = serve(t, env, s, &Request{Shard: "sh1", Key: "k", Write: true, Forwarded: true})
	if !resp.OK {
		t.Fatalf("forwarded after load = %+v", resp)
	}
	resp = serve(t, env, s, &Request{Shard: "sh1", Write: true})
	if resp.OK || resp.Err != "preparing" {
		t.Fatalf("direct during prepare = %+v", resp)
	}
}

func TestDropDuringLoadCancelsActivation(t *testing.T) {
	env := newEnv()
	app := newEchoApp()
	s := env.server("s1", "a", app)
	s.LoadTime = 5 * time.Second
	s.AddShard("sh1", shard.RolePrimary)
	env.loop.RunFor(time.Second)
	s.DropShard("sh1")
	env.loop.RunFor(10 * time.Second)
	if len(s.Shards()) != 0 {
		t.Fatal("dropped shard reappeared after load timer")
	}
	resp := serve(t, env, s, &Request{Shard: "sh1"})
	if resp.OK {
		t.Fatal("dropped shard serving")
	}
}

func TestReAddDuringLoadUsesFreshGeneration(t *testing.T) {
	env := newEnv()
	s := env.server("s1", "a", newEchoApp())
	s.LoadTime = 5 * time.Second
	s.AddShard("sh1", shard.RolePrimary)
	env.loop.RunFor(time.Second)
	s.DropShard("sh1")
	s.AddShard("sh1", shard.RolePrimary) // second incarnation
	// The first load timer (t=5s) must not activate the second
	// incarnation early; only the second timer (t=6s) may.
	env.loop.RunFor(4*time.Second + 500*time.Millisecond) // t=5.5s
	if s.HoldsActive("sh1") {
		t.Fatal("stale load timer activated the new incarnation")
	}
	env.loop.RunFor(time.Second) // t=6.5s
	if !s.HoldsActive("sh1") {
		t.Fatal("second incarnation never activated")
	}
}

func TestZeroLoadTimeIsInstant(t *testing.T) {
	env := newEnv()
	s := env.server("s1", "a", newEchoApp())
	s.AddShard("sh1", shard.RoleSecondary)
	if !s.HoldsActive("sh1") {
		t.Fatal("zero LoadTime should activate immediately")
	}
}
