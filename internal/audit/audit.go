// Package audit implements the runtime migration auditor: a passive
// observer that reconstructs per-shard ownership timelines from the hooks
// exposed by the orchestrator, application servers, service discovery, the
// coordination store, and routing clients, and checks the §4.3
// migration-safety invariants on every ownership-relevant event.
//
// The auditor is RNG-free by construction: every callback it attaches is a
// synchronous observer that draws no randomness, so enabling auditing never
// perturbs a seeded simulation — an audited run and a bare run of the same
// seed execute the identical event sequence. That property is what makes
// torture-seed sweeps trustworthy: a violation found under audit reproduces
// with the pinned seed alone.
//
// Invariants checked (the names are the metric label values):
//
//	one-primary                at most one active primary replica per shard
//	write-owner                no primary-routed write executes locally
//	                           while a second active primary exists (an
//	                           acked write one of them will never see)
//	serve-during-prepare-drop  a replica in the forwarding phase never
//	                           executes a request locally (§4.3 step 2:
//	                           after prepare_drop_shard the old owner must
//	                           forward, not serve)
//	stale-routing              no request outcome proves routing state is
//	                           permanently stale: success on a server
//	                           removed from the map more than StaleBound
//	                           ago, or a final not-owner rejection more
//	                           than StaleBound after the last publication
package audit

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"shardmanager/internal/appserver"
	"shardmanager/internal/coord"
	"shardmanager/internal/discovery"
	"shardmanager/internal/metrics"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
)

// Invariant names, used as the "invariant" label on audit metrics and in
// reports.
const (
	InvOnePrimary   = "one-primary"
	InvWriteOwner   = "write-owner"
	InvServePrepare = "serve-during-prepare-drop"
	InvStaleRouting = "stale-routing"
)

// Invariants lists all invariant names in report order.
var Invariants = []string{InvOnePrimary, InvServePrepare, InvStaleRouting, InvWriteOwner}

// Options configure an Auditor.
type Options struct {
	// App is the application under audit.
	App shard.AppID
	// StaleBound is how long routing state may lag reality before the
	// auditor calls it permanently stale. It must exceed the forwarding
	// tombstone TTL (30s) plus map-propagation delay plus client retry
	// backoff; the default is 45s.
	StaleBound time.Duration
	// MaxTimeline bounds the per-shard ownership timeline ring (default 64
	// events). Older events fall off the front.
	MaxTimeline int
	// MaxViolations bounds recorded violations with full timeline
	// snapshots (default 256). Beyond the cap violations are still
	// counted, just not stored.
	MaxViolations int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.StaleBound <= 0 {
		o.StaleBound = 45 * time.Second
	}
	if o.MaxTimeline <= 0 {
		o.MaxTimeline = 64
	}
	if o.MaxViolations <= 0 {
		o.MaxViolations = 256
	}
	return o
}

// Event is one entry in a shard's ownership timeline.
type Event struct {
	At     time.Duration `json:"at_ns"`
	Kind   string        `json:"kind"` // replica, step, migration, role, map, violation
	Detail string        `json:"detail"`
}

// Violation is one invariant breach, with a snapshot of the shard's
// ownership timeline up to (and including) the breach.
type Violation struct {
	At        time.Duration    `json:"at_ns"`
	Invariant string           `json:"invariant"`
	Shard     shard.ID         `json:"shard"`
	Servers   []shard.ServerID `json:"servers,omitempty"`
	Detail    string           `json:"detail"`
	Timeline  []Event          `json:"timeline,omitempty"`
}

// CoordWrite is one observed coordination-store mutation.
type CoordWrite struct {
	At   time.Duration `json:"at_ns"`
	Op   string        `json:"op"`
	Path string        `json:"path"`
}

// maxCoordWrites bounds the recent-coord-write ring kept for reports.
const maxCoordWrites = 32

// replicaView is the auditor's picture of one replica, rebuilt purely from
// ReplicaChanged / ReplicaConfirmed events.
type replicaView struct {
	role  shard.Role
	phase appserver.Phase
	peer  shard.ServerID
	// unconfirmed mirrors the server's restored-from-store flag: the replica
	// claims the primary role but rejects writes until an authoritative
	// grant confirms it, so it cannot conflict with the real owner.
	unconfirmed bool
}

// shardState is the auditor's per-shard bookkeeping.
type shardState struct {
	replicas  map[shard.ServerID]*replicaView
	inMap     map[shard.ServerID]shard.Role
	mapDesc   string
	mapSeen   bool
	removedAt map[shard.ServerID]time.Duration
	timeline  []Event

	// Dedup flags: one violation per episode, cleared when the episode
	// ends (the condition stops holding / the map entry changes).
	dualPrimary bool
	dualWrite   bool
	staleMap    bool
	staleSrv    map[shard.ServerID]bool
	servedFwd   map[shard.ServerID]bool
}

// Auditor observes one application's ownership events and checks the §4.3
// invariants. Create with New, attach with the Watch* methods, then read
// Violations / WriteText / WriteJSON after (or during) the run.
type Auditor struct {
	loop *sim.Loop
	opts Options

	shards map[shard.ID]*shardState
	// fencedSrv tracks servers currently in the self-fenced (lost-lease)
	// state: their active primaries neither serve nor accept writes, so
	// "two active primaries" is judged per generation — a fenced primary
	// cannot conflict with the one that superseded it.
	fencedSrv map[shard.ServerID]bool

	checks     map[string]int64
	violCounts map[string]int64
	violations []Violation
	dropped    int

	checkCtr map[string]*metrics.Counter
	violCtr  map[string]*metrics.Counter

	havePublish   bool
	lastPublishAt time.Duration
	lastVersion   int64

	coordWrites []CoordWrite
	coordOps    map[string]int64
	deliveries  map[string]int64
	rejects     map[string]int64
}

// New returns an auditor for opts.App. If the loop has a metrics registry,
// audit_checks_total / audit_violations_total counters are pre-registered
// for every invariant so the exposition is stable from the first scrape.
func New(loop *sim.Loop, opts Options) *Auditor {
	a := &Auditor{
		loop:       loop,
		opts:       opts.withDefaults(),
		shards:     make(map[shard.ID]*shardState),
		fencedSrv:  make(map[shard.ServerID]bool),
		checks:     make(map[string]int64),
		violCounts: make(map[string]int64),
		checkCtr:   make(map[string]*metrics.Counter),
		violCtr:    make(map[string]*metrics.Counter),
		coordOps:   make(map[string]int64),
		deliveries: make(map[string]int64),
		rejects:    make(map[string]int64),
	}
	if mr := loop.Metrics(); mr != nil {
		mr.Describe("audit_checks_total", "Invariant evaluations performed by the runtime auditor.")
		mr.Describe("audit_violations_total", "Invariant violations detected by the runtime auditor.")
		for _, inv := range Invariants {
			a.checkCtr[inv] = mr.Counter("audit_checks_total", "invariant", inv)
			a.violCtr[inv] = mr.Counter("audit_violations_total", "invariant", inv)
		}
	}
	return a
}

// App returns the audited application.
func (a *Auditor) App() shard.AppID { return a.opts.App }

func (a *Auditor) shard(s shard.ID) *shardState {
	st := a.shards[s]
	if st == nil {
		st = &shardState{
			replicas:  make(map[shard.ServerID]*replicaView),
			inMap:     make(map[shard.ServerID]shard.Role),
			removedAt: make(map[shard.ServerID]time.Duration),
			staleSrv:  make(map[shard.ServerID]bool),
			servedFwd: make(map[shard.ServerID]bool),
		}
		a.shards[s] = st
	}
	return st
}

// event appends one timeline entry, evicting the oldest past MaxTimeline.
func (a *Auditor) event(st *shardState, kind, detail string) {
	e := Event{At: a.loop.Now(), Kind: kind, Detail: detail}
	if len(st.timeline) >= a.opts.MaxTimeline {
		copy(st.timeline, st.timeline[1:])
		st.timeline[len(st.timeline)-1] = e
		return
	}
	st.timeline = append(st.timeline, e)
}

// check counts one invariant evaluation.
func (a *Auditor) check(inv string) {
	a.checks[inv]++
	if c := a.checkCtr[inv]; c != nil {
		c.Inc()
	}
}

// violate records one invariant breach against shard s: a timeline marker,
// a stored Violation with the timeline snapshot (up to MaxViolations), and
// the labeled metric.
func (a *Auditor) violate(inv string, s shard.ID, st *shardState, servers []shard.ServerID, detail string) {
	a.violCounts[inv]++
	if c := a.violCtr[inv]; c != nil {
		c.Inc()
	}
	a.event(st, "violation", inv+": "+detail)
	if len(a.violations) >= a.opts.MaxViolations {
		a.dropped++
		return
	}
	a.violations = append(a.violations, Violation{
		At:        a.loop.Now(),
		Invariant: inv,
		Shard:     s,
		Servers:   append([]shard.ServerID(nil), servers...),
		Detail:    detail,
		Timeline:  append([]Event(nil), st.timeline...),
	})
}

// activePrimaries returns the sorted servers whose replica of this shard is
// an active, serving primary — the set §4.3 requires to never exceed one.
// Fenced servers (lost lease, self-fenced, rejecting everything) and
// unconfirmed primaries (restored from a possibly-stale snapshot, rejecting
// writes) are excluded: they hold the primary role in name only and cannot
// conflict with the generation's true owner.
func (a *Auditor) activePrimaries(st *shardState) []shard.ServerID {
	var out []shard.ServerID
	for srv, v := range st.replicas {
		if v.role == shard.RolePrimary && v.phase == appserver.PhaseActive &&
			!v.unconfirmed && !a.fencedSrv[srv] {
			out = append(out, srv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func joinServers(ids []shard.ServerID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ",")
}

// checkOnePrimary evaluates the one-primary invariant after any replica
// transition, firing at most one violation per dual-primary episode.
func (a *Auditor) checkOnePrimary(s shard.ID, st *shardState) {
	a.check(InvOnePrimary)
	prims := a.activePrimaries(st)
	if len(prims) >= 2 {
		if !st.dualPrimary {
			st.dualPrimary = true
			a.violate(InvOnePrimary, s, st, prims,
				fmt.Sprintf("%d active primaries: %s", len(prims), joinServers(prims)))
		}
		return
	}
	st.dualPrimary = false
	st.dualWrite = false
}

// --- attachment: one Watch* per observed subsystem ---

// WatchOrchestrator chains auditor hooks onto the orchestrator (coexisting
// with healthmon or any other observer).
func (a *Auditor) WatchOrchestrator(o *orchestrator.Orchestrator) {
	o.AddHooks(orchestrator.Hooks{
		MigrationStarted: func(s shard.ID, from, to shard.ServerID, graceful bool) {
			a.event(a.shard(s), "migration", fmt.Sprintf("start %s -> %s graceful=%v", from, to, graceful))
		},
		MigrationFinished: func(s shard.ID, ok bool) {
			a.event(a.shard(s), "migration", fmt.Sprintf("finished ok=%v", ok))
		},
		MigrationStep: func(s shard.ID, step string, server shard.ServerID, status string) {
			a.event(a.shard(s), "step", fmt.Sprintf("%s %s %s", step, server, status))
		},
		RoleChanged: func(s shard.ID, server shard.ServerID, from, to shard.Role) {
			a.event(a.shard(s), "role", fmt.Sprintf("%s %s -> %s", server, from, to))
		},
		MapSnapshot: a.onMap,
	})
}

// onMap diffs a published map against the auditor's view: per-shard map
// events, removal timestamps for the stale-routing bound, and the
// publication clock. Iteration is sorted so timelines are deterministic.
func (a *Auditor) onMap(m *shard.Map) {
	now := a.loop.Now()
	a.havePublish = true
	a.lastPublishAt = now
	a.lastVersion = m.Version
	ids := make([]string, 0, len(m.Entries))
	for s := range m.Entries {
		ids = append(ids, string(s))
	}
	sort.Strings(ids)
	for _, sid := range ids {
		s := shard.ID(sid)
		as := m.Entries[s]
		desc := describeAssignments(as)
		st := a.shard(s)
		if st.mapSeen && desc == st.mapDesc {
			continue // unchanged assignment: no timeline noise
		}
		newSet := make(map[shard.ServerID]shard.Role, len(as))
		for _, asn := range as {
			newSet[asn.Server] = asn.Role
		}
		var removed []string
		for srv := range st.inMap {
			if _, ok := newSet[srv]; !ok {
				st.removedAt[srv] = now
				removed = append(removed, string(srv))
			}
		}
		sort.Strings(removed)
		for srv := range newSet {
			delete(st.removedAt, srv)
			delete(st.staleSrv, srv)
		}
		st.inMap = newSet
		st.mapDesc = desc
		st.mapSeen = true
		st.staleMap = false
		ev := fmt.Sprintf("v%d g%d %s", m.Version, m.Gen, desc)
		if len(removed) > 0 {
			ev += " removed=" + strings.Join(removed, ",")
		}
		a.event(st, "map", ev)
	}
}

// describeAssignments renders an assignment list sorted by server, so the
// description is insensitive to the publisher's slice order.
func describeAssignments(as []shard.Assignment) string {
	sorted := append([]shard.Assignment(nil), as...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Server < sorted[j].Server })
	return shard.FormatAssignments(sorted)
}

// WatchDirectory attaches the server-side ownership observer to every
// server resolving through the directory.
func (a *Auditor) WatchDirectory(d *appserver.Directory) {
	d.AddObserver(a.directoryObserver())
}

// directoryObserver builds the appserver observer; split out so tests can
// drive the callbacks directly.
func (a *Auditor) directoryObserver() appserver.Observer {
	return appserver.Observer{
		ReplicaChanged: func(server shard.ServerID, s shard.ID, role shard.Role, phase appserver.Phase, peer shard.ServerID) {
			st := a.shard(s)
			v := st.replicas[server]
			if v == nil {
				v = &replicaView{}
				st.replicas[server] = v
			}
			v.role, v.phase, v.peer = role, phase, peer
			delete(st.servedFwd, server)
			// A replica transition is the server acting on a control-plane
			// grant: §4.3 re-engages a server (prepare_add, add_shard) before
			// the map re-including it is published, and forwarded traffic
			// legitimately reaches it in that window. Reset the staleness
			// clock so the grant isn't misread as a stale route.
			delete(st.removedAt, server)
			delete(st.staleSrv, server)
			detail := fmt.Sprintf("%s %s/%s", server, role, phase)
			if peer != "" {
				detail += " fwd->" + string(peer)
			}
			a.event(st, "replica", detail)
			a.checkOnePrimary(s, st)
		},
		ReplicaDropped: func(server shard.ServerID, s shard.ID, tombstone bool) {
			st := a.shard(s)
			delete(st.replicas, server)
			delete(st.servedFwd, server)
			detail := string(server) + " dropped"
			if tombstone {
				detail += " (tombstone)"
			}
			a.event(st, "replica", detail)
			a.checkOnePrimary(s, st)
		},
		Handled: func(server shard.ServerID, s shard.ID, write, forwarded bool, phase appserver.Phase) {
			st := a.shard(s)
			a.check(InvServePrepare)
			if phase == appserver.PhaseForwarding && !st.servedFwd[server] {
				st.servedFwd[server] = true
				a.violate(InvServePrepare, s, st, []shard.ServerID{server},
					fmt.Sprintf("%s executed a request while in the forwarding phase", server))
			}
			if write && !forwarded {
				a.check(InvWriteOwner)
				prims := a.activePrimaries(st)
				if len(prims) >= 2 && !st.dualWrite {
					st.dualWrite = true
					a.violate(InvWriteOwner, s, st, prims,
						fmt.Sprintf("write executed on %s while %d active primaries exist (%s)",
							server, len(prims), joinServers(prims)))
				}
			}
		},
		Rejected: func(server shard.ServerID, s shard.ID, reason string) {
			a.rejects[reason]++
		},
		Fenced: func(server shard.ServerID, fenced bool, gen int64) {
			if fenced {
				a.fencedSrv[server] = true
			} else {
				delete(a.fencedSrv, server)
			}
			// The transition changes which primaries count as active, so
			// re-judge every shard with a replica on this server (sorted
			// for deterministic timelines).
			state := "fenced"
			if !fenced {
				state = "unfenced"
			}
			ids := make([]string, 0, len(a.shards))
			for s, st := range a.shards {
				if st.replicas[server] != nil {
					ids = append(ids, string(s))
				}
			}
			sort.Strings(ids)
			for _, sid := range ids {
				s := shard.ID(sid)
				st := a.shards[s]
				a.event(st, "fence", fmt.Sprintf("%s %s g%d", server, state, gen))
				a.checkOnePrimary(s, st)
			}
		},
		ServerRemoved: func(server shard.ServerID) {
			// The container is gone; every replica it held died with the
			// process. Without this the view keeps a crashed server's primary
			// "active" forever and falsely flags its successor as a dual
			// primary. Sorted for deterministic timelines.
			delete(a.fencedSrv, server)
			ids := make([]string, 0, len(a.shards))
			for s, st := range a.shards {
				if st.replicas[server] != nil {
					ids = append(ids, string(s))
				}
			}
			sort.Strings(ids)
			for _, sid := range ids {
				s := shard.ID(sid)
				st := a.shards[s]
				delete(st.replicas, server)
				delete(st.servedFwd, server)
				a.event(st, "replica", string(server)+" removed (server gone)")
				a.checkOnePrimary(s, st)
			}
		},
		ReplicaConfirmed: func(server shard.ServerID, s shard.ID, confirmed bool) {
			st := a.shard(s)
			v := st.replicas[server]
			if v == nil {
				v = &replicaView{}
				st.replicas[server] = v
			}
			v.unconfirmed = !confirmed
			if confirmed {
				a.event(st, "replica", fmt.Sprintf("%s confirmed", server))
				a.checkOnePrimary(s, st)
			} else {
				a.event(st, "replica", fmt.Sprintf("%s unconfirmed (restored)", server))
			}
		},
	}
}

// WatchDiscovery tallies map-delivery outcomes for the audited app.
func (a *Auditor) WatchDiscovery(s *discovery.Service) {
	s.AddObserver(func(app shard.AppID, version int64, lag time.Duration, status string) {
		if app != a.opts.App {
			return
		}
		a.deliveries[status]++
	})
}

// WatchCoord records coordination-store mutations (the control-plane side
// of every ownership change, including session expirations) in a bounded
// ring for report context.
func (a *Auditor) WatchCoord(st *coord.Store) {
	st.AddWriteObserver(func(op, path string) {
		a.coordOps[op]++
		w := CoordWrite{At: a.loop.Now(), Op: op, Path: path}
		if len(a.coordWrites) >= maxCoordWrites {
			copy(a.coordWrites, a.coordWrites[1:])
			a.coordWrites[len(a.coordWrites)-1] = w
			return
		}
		a.coordWrites = append(a.coordWrites, w)
	})
}

// WatchClient attaches the stale-routing check to one client's final
// request results.
func (a *Auditor) WatchClient(c *routing.Client) {
	c.OnResult(a.clientObserver())
}

// clientObserver builds the per-result callback; split out for tests.
func (a *Auditor) clientObserver() func(routing.Result) {
	return func(res routing.Result) {
		if res.Shard == "" {
			return
		}
		a.check(InvStaleRouting)
		st := a.shard(res.Shard)
		now := a.loop.Now()
		if res.OK {
			t, removed := st.removedAt[res.Server]
			if removed && now-t > a.opts.StaleBound && !st.staleSrv[res.Server] {
				st.staleSrv[res.Server] = true
				a.violate(InvStaleRouting, res.Shard, st, []shard.ServerID{res.Server},
					fmt.Sprintf("request served by %s, removed from the map %s ago (client map v%d)",
						res.Server, now-t, res.MapVersion))
			}
			return
		}
		if res.Err == "not-owner" && a.havePublish && now-a.lastPublishAt > a.opts.StaleBound && !st.staleMap {
			st.staleMap = true
			a.violate(InvStaleRouting, res.Shard, st, []shard.ServerID{res.RejectedBy},
				fmt.Sprintf("final not-owner from %s, %s after last publication (client map v%d, published v%d)",
					res.RejectedBy, now-a.lastPublishAt, res.MapVersion, a.lastVersion))
		}
	}
}

// --- read side ---

// Violations returns the recorded violations in detection order.
func (a *Auditor) Violations() []Violation {
	return append([]Violation(nil), a.violations...)
}

// ViolationCount returns the total number of violations detected
// (including any dropped past MaxViolations).
func (a *Auditor) ViolationCount() int64 {
	var n int64
	for _, c := range a.violCounts {
		n += c
	}
	return n
}

// Checks returns per-invariant evaluation counts.
func (a *Auditor) Checks() map[string]int64 {
	out := make(map[string]int64, len(a.checks))
	for k, v := range a.checks {
		out[k] = v
	}
	return out
}

// Timeline returns a copy of the shard's ownership timeline (nil if the
// auditor never saw the shard).
func (a *Auditor) Timeline(s shard.ID) []Event {
	st := a.shards[s]
	if st == nil {
		return nil
	}
	return append([]Event(nil), st.timeline...)
}

// Shards returns the sorted shard IDs the auditor has state for.
func (a *Auditor) Shards() []shard.ID {
	out := make([]shard.ID, 0, len(a.shards))
	for s := range a.shards {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
