package audit

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"shardmanager/internal/appserver"
	"shardmanager/internal/metrics"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

type fakeApp struct{}

func (fakeApp) AddShard(shard.ID, shard.Role)               {}
func (fakeApp) DropShard(shard.ID)                          {}
func (fakeApp) ChangeRole(shard.ID, shard.Role, shard.Role) {}
func (fakeApp) HandleRequest(*appserver.Request) (any, error) {
	return "ok", nil
}

// rig wires two real app servers into a directory watched by an auditor.
type rig struct {
	loop *sim.Loop
	dir  *appserver.Directory
	a    *Auditor
	srvA *appserver.Server
	srvB *appserver.Server
}

func newRig(t *testing.T, opts Options) *rig {
	t.Helper()
	loop := sim.NewLoop(1)
	if opts.App == "" {
		opts.App = "kv"
	}
	dir := appserver.NewDirectory()
	a := New(loop, opts)
	a.WatchDirectory(dir)
	mk := func(id shard.ServerID) *appserver.Server {
		srv := appserver.NewServer(loop, nil, dir, fakeApp{}, opts.App, id, "rgn-a")
		dir.Register(srv)
		return srv
	}
	return &rig{loop: loop, dir: dir, a: a, srvA: mk("srv-a"), srvB: mk("srv-b")}
}

func TestOnePrimaryViolation(t *testing.T) {
	r := newRig(t, Options{})
	r.srvA.AddShard("s1", shard.RolePrimary)
	if n := r.a.ViolationCount(); n != 0 {
		t.Fatalf("single primary flagged: %d violations", n)
	}
	r.srvB.AddShard("s1", shard.RolePrimary)
	vs := r.a.Violations()
	if len(vs) != 1 || vs[0].Invariant != InvOnePrimary {
		t.Fatalf("want one one-primary violation, got %+v", vs)
	}
	if got := joinServers(vs[0].Servers); got != "srv-a,srv-b" {
		t.Fatalf("violation servers = %q", got)
	}
	// Still inside the same episode: no second violation.
	r.srvB.AddShard("s1", shard.RolePrimary)
	if n := len(r.a.Violations()); n != 1 {
		t.Fatalf("dedup failed: %d violations", n)
	}
	// End the episode, then re-enter it: a fresh violation fires.
	if err := r.srvA.ChangeRole("s1", shard.RolePrimary, shard.RoleSecondary); err != nil {
		t.Fatal(err)
	}
	if err := r.srvA.ChangeRole("s1", shard.RoleSecondary, shard.RolePrimary); err != nil {
		t.Fatal(err)
	}
	if n := len(r.a.Violations()); n != 2 {
		t.Fatalf("re-entered episode: want 2 violations, got %d", n)
	}
}

func TestWriteOwnerViolation(t *testing.T) {
	r := newRig(t, Options{})
	r.srvA.AddShard("s1", shard.RolePrimary)
	r.srvB.AddShard("s1", shard.RolePrimary) // fires one-primary
	var resp appserver.Response
	r.srvA.Serve(&appserver.Request{App: "kv", Shard: "s1", Write: true, Op: "set"},
		func(rs appserver.Response) { resp = rs })
	if !resp.OK {
		t.Fatalf("write rejected: %+v", resp)
	}
	var wo int
	for _, v := range r.a.Violations() {
		if v.Invariant == InvWriteOwner {
			wo++
			if len(v.Timeline) == 0 {
				t.Fatal("violation carries no timeline")
			}
		}
	}
	if wo != 1 {
		t.Fatalf("want 1 write-owner violation, got %d", wo)
	}
	// Second write in the same episode is deduped but still checked.
	r.srvA.Serve(&appserver.Request{App: "kv", Shard: "s1", Write: true, Op: "set"},
		func(appserver.Response) {})
	if got := r.a.Checks()[InvWriteOwner]; got != 2 {
		t.Fatalf("write-owner checks = %d, want 2", got)
	}
	if got := r.a.violCounts[InvWriteOwner]; got != 1 {
		t.Fatalf("write-owner violations = %d, want 1", got)
	}
}

func TestServeDuringPrepareDrop(t *testing.T) {
	loop := sim.NewLoop(1)
	a := New(loop, Options{App: "kv"})
	obs := a.directoryObserver()
	// The real appserver never handles locally while forwarding; drive the
	// hook directly to prove the auditor would catch a regression.
	obs.Handled("srv-a", "s1", false, false, appserver.PhaseForwarding)
	vs := a.Violations()
	if len(vs) != 1 || vs[0].Invariant != InvServePrepare {
		t.Fatalf("want one serve-during-prepare-drop violation, got %+v", vs)
	}
	obs.Handled("srv-a", "s1", false, false, appserver.PhaseForwarding)
	if len(a.Violations()) != 1 {
		t.Fatalf("dedup failed")
	}
	// A replica transition resets the flag.
	obs.ReplicaChanged("srv-a", "s1", shard.RoleSecondary, appserver.PhaseForwarding, "srv-b")
	obs.Handled("srv-a", "s1", false, false, appserver.PhaseForwarding)
	if len(a.Violations()) != 2 {
		t.Fatalf("want fresh violation after replica transition, got %d", len(a.Violations()))
	}
}

func mapV(v int64, s shard.ID, as ...shard.Assignment) *shard.Map {
	m := shard.NewMap("kv")
	m.Version = v
	m.Entries[s] = as
	return m
}

func TestStaleRoutingRemovedServer(t *testing.T) {
	loop := sim.NewLoop(1)
	a := New(loop, Options{App: "kv", StaleBound: 45 * time.Second})
	obs := a.clientObserver()
	a.onMap(mapV(1, "s1", shard.Assignment{Server: "srv-a", Role: shard.RolePrimary}))
	a.onMap(mapV(2, "s1", shard.Assignment{Server: "srv-b", Role: shard.RolePrimary}))
	// Within the bound: tombstone forwarding makes this legitimate.
	loop.After(30*time.Second, func() {
		obs(routing.Result{OK: true, Server: "srv-a", Shard: "s1", MapVersion: 1})
	})
	// Past the bound: the map has long converged, srv-a must be out.
	loop.After(50*time.Second, func() {
		obs(routing.Result{OK: true, Server: "srv-a", Shard: "s1", MapVersion: 1})
	})
	loop.Run()
	vs := a.Violations()
	if len(vs) != 1 || vs[0].Invariant != InvStaleRouting {
		t.Fatalf("want one stale-routing violation, got %+v", vs)
	}
	if vs[0].At != 50*time.Second {
		t.Fatalf("violation at %s, want 50s", vs[0].At)
	}
	if got := a.Checks()[InvStaleRouting]; got != 2 {
		t.Fatalf("stale-routing checks = %d, want 2", got)
	}
}

func TestStaleRoutingNotOwner(t *testing.T) {
	loop := sim.NewLoop(1)
	a := New(loop, Options{App: "kv", StaleBound: 45 * time.Second})
	obs := a.clientObserver()
	a.onMap(mapV(1, "s1", shard.Assignment{Server: "srv-a", Role: shard.RolePrimary}))
	// Shortly after publication a not-owner is ordinary propagation lag.
	loop.After(10*time.Second, func() {
		obs(routing.Result{Err: "not-owner", RejectedBy: "srv-b", Shard: "s1", MapVersion: 1})
	})
	loop.After(60*time.Second, func() {
		obs(routing.Result{Err: "not-owner", RejectedBy: "srv-b", Shard: "s1", MapVersion: 1})
		// Same stale episode: deduped.
		obs(routing.Result{Err: "not-owner", RejectedBy: "srv-b", Shard: "s1", MapVersion: 1})
	})
	loop.Run()
	vs := a.Violations()
	if len(vs) != 1 || vs[0].Invariant != InvStaleRouting {
		t.Fatalf("want one stale-routing violation, got %+v", vs)
	}
	// A fresh publication clears the episode.
	a.onMap(mapV(2, "s1", shard.Assignment{Server: "srv-b", Role: shard.RolePrimary}))
	obs(routing.Result{Err: "not-owner", RejectedBy: "srv-b", Shard: "s1", MapVersion: 2})
	if len(a.Violations()) != 1 {
		t.Fatalf("not-owner right after publish flagged")
	}
}

func TestMetricsCounters(t *testing.T) {
	loop := sim.NewLoop(1)
	reg := metrics.NewRegistry()
	loop.SetMetrics(reg)
	a := New(loop, Options{App: "kv"})
	obs := a.directoryObserver()
	obs.ReplicaChanged("srv-a", "s1", shard.RolePrimary, appserver.PhaseActive, "")
	obs.ReplicaChanged("srv-b", "s1", shard.RolePrimary, appserver.PhaseActive, "")
	if got := reg.Counter("audit_checks_total", "invariant", InvOnePrimary).Value(); got != 2 {
		t.Fatalf("audit_checks_total{one-primary} = %d, want 2", got)
	}
	if got := reg.Counter("audit_violations_total", "invariant", InvOnePrimary).Value(); got != 1 {
		t.Fatalf("audit_violations_total{one-primary} = %d, want 1", got)
	}
	// Untouched invariants still expose zero-valued cells.
	if got := reg.Counter("audit_violations_total", "invariant", InvStaleRouting).Value(); got != 0 {
		t.Fatalf("audit_violations_total{stale-routing} = %d, want 0", got)
	}
}

// scenario drives a fixed mixed-violation sequence used by the determinism
// and golden tests.
func scenario() *Auditor {
	loop := sim.NewLoop(7)
	a := New(loop, Options{App: "kv", StaleBound: 45 * time.Second, MaxTimeline: 16})
	dobs := a.directoryObserver()
	cobs := a.clientObserver()
	a.onMap(mapV(1, "s1",
		shard.Assignment{Server: "srv-a", Role: shard.RolePrimary},
		shard.Assignment{Server: "srv-b", Role: shard.RoleSecondary}))
	dobs.ReplicaChanged("srv-a", "s1", shard.RolePrimary, appserver.PhaseActive, "")
	dobs.ReplicaChanged("srv-b", "s1", shard.RoleSecondary, appserver.PhaseActive, "")
	loop.After(5*time.Second, func() {
		a.onMap(mapV(2, "s1",
			shard.Assignment{Server: "srv-b", Role: shard.RolePrimary}))
		dobs.ReplicaChanged("srv-b", "s1", shard.RolePrimary, appserver.PhaseActive, "")
	})
	loop.After(8*time.Second, func() {
		// srv-a never demoted: dual active primaries.
		dobs.Handled("srv-b", "s1", true, false, appserver.PhaseActive)
	})
	loop.After(55*time.Second, func() {
		cobs(routing.Result{OK: true, Server: "srv-a", Shard: "s1", MapVersion: 1})
	})
	loop.Run()
	return a
}

func TestReportDeterminism(t *testing.T) {
	var texts, jsons [2]bytes.Buffer
	for i := 0; i < 2; i++ {
		a := scenario()
		a.WriteText(&texts[i])
		if err := a.WriteJSON(&jsons[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(texts[0].Bytes(), texts[1].Bytes()) {
		t.Fatalf("text reports differ:\n--- run 1\n%s\n--- run 2\n%s", texts[0].String(), texts[1].String())
	}
	if !bytes.Equal(jsons[0].Bytes(), jsons[1].Bytes()) {
		t.Fatalf("json reports differ")
	}
}

func TestReportGolden(t *testing.T) {
	a := scenario()
	var buf bytes.Buffer
	a.WriteText(&buf)
	buf.WriteString("--- timeline ---\n")
	a.TimelineText("s1", &buf)
	path := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report drifted from golden:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

func TestTimelineBounded(t *testing.T) {
	loop := sim.NewLoop(1)
	a := New(loop, Options{App: "kv", MaxTimeline: 8})
	obs := a.directoryObserver()
	for i := 0; i < 50; i++ {
		role := shard.RoleSecondary
		if i%2 == 0 {
			role = shard.RolePrimary
		}
		obs.ReplicaChanged("srv-a", "s1", role, appserver.PhaseActive, "")
	}
	tl := a.Timeline("s1")
	if len(tl) != 8 {
		t.Fatalf("timeline length = %d, want 8", len(tl))
	}
	if !strings.Contains(tl[len(tl)-1].Detail, "srv-a") {
		t.Fatalf("last event = %+v", tl[len(tl)-1])
	}
}
