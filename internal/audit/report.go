// Deterministic audit reports. Both renderers iterate in sorted order and
// derive everything from simulated time, so two runs of the same seed emit
// byte-identical output — the report itself is a regression surface.
package audit

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"shardmanager/internal/shard"
)

// Report is the JSON shape of a full audit report.
type Report struct {
	App             string           `json:"app"`
	At              time.Duration    `json:"at_ns"`
	Checks          map[string]int64 `json:"checks"`
	ViolationCounts map[string]int64 `json:"violation_counts"`
	Violations      []Violation      `json:"violations"`
	Dropped         int              `json:"dropped,omitempty"`
	Rejects         map[string]int64 `json:"rejects,omitempty"`
	Deliveries      map[string]int64 `json:"deliveries,omitempty"`
	CoordOps        map[string]int64 `json:"coord_ops,omitempty"`
	CoordWrites     []CoordWrite     `json:"coord_writes,omitempty"`
}

// Report assembles the current audit state into its JSON shape.
func (a *Auditor) Report() Report {
	r := Report{
		App:             string(a.opts.App),
		At:              a.loop.Now(),
		Checks:          make(map[string]int64, len(Invariants)),
		ViolationCounts: make(map[string]int64, len(Invariants)),
		Violations:      a.Violations(),
		Dropped:         a.dropped,
		CoordWrites:     append([]CoordWrite(nil), a.coordWrites...),
	}
	for _, inv := range Invariants {
		r.Checks[inv] = a.checks[inv]
		r.ViolationCounts[inv] = a.violCounts[inv]
	}
	if len(a.rejects) > 0 {
		r.Rejects = copyCounts(a.rejects)
	}
	if len(a.deliveries) > 0 {
		r.Deliveries = copyCounts(a.deliveries)
	}
	if len(a.coordOps) > 0 {
		r.CoordOps = copyCounts(a.coordOps)
	}
	return r
}

func copyCounts(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// WriteJSON writes the indented JSON report. encoding/json sorts map keys,
// so the output is deterministic.
func (a *Auditor) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a.Report())
}

// WriteText writes the human-readable report: the per-invariant check and
// violation tallies, observed reject / delivery / coord-write counts, and
// every recorded violation with its ownership-timeline snapshot.
func (a *Auditor) WriteText(w io.Writer) {
	fmt.Fprintf(w, "audit report app=%s at=%s\n", a.opts.App, a.loop.Now())
	fmt.Fprintf(w, "%-28s %10s %10s\n", "invariant", "checks", "violations")
	for _, inv := range Invariants {
		fmt.Fprintf(w, "%-28s %10d %10d\n", inv, a.checks[inv], a.violCounts[inv])
	}
	writeCounts(w, "rejects", a.rejects)
	writeCounts(w, "deliveries", a.deliveries)
	writeCounts(w, "coord writes", a.coordOps)
	if len(a.violations) == 0 && a.dropped == 0 {
		fmt.Fprintln(w, "violations: none")
		return
	}
	for i, v := range a.violations {
		fmt.Fprintf(w, "violation #%d at=%s invariant=%s shard=%s servers=%s\n",
			i+1, v.At, v.Invariant, v.Shard, joinServers(v.Servers))
		fmt.Fprintf(w, "  detail: %s\n", v.Detail)
		writeTimeline(w, "    ", v.Timeline)
	}
	if a.dropped > 0 {
		fmt.Fprintf(w, "... and %d more violations past the storage cap\n", a.dropped)
	}
}

// writeCounts prints one "name: k=v k=v" line with sorted keys (nothing
// when the map is empty).
func writeCounts(w io.Writer, name string, m map[string]int64) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "%s:", name)
	for _, k := range keys {
		fmt.Fprintf(w, " %s=%d", k, m[k])
	}
	fmt.Fprintln(w)
}

// writeTimeline prints events one per line, time-aligned.
func writeTimeline(w io.Writer, indent string, tl []Event) {
	for _, e := range tl {
		fmt.Fprintf(w, "%s%12s %-9s %s\n", indent, e.At, e.Kind, e.Detail)
	}
}

// TimelineText writes one shard's ownership timeline (what `smctl audit`
// prints around a violation).
func (a *Auditor) TimelineText(s shard.ID, w io.Writer) {
	tl := a.Timeline(s)
	fmt.Fprintf(w, "ownership timeline shard=%s app=%s events=%d\n", s, a.opts.App, len(tl))
	writeTimeline(w, "  ", tl)
}
