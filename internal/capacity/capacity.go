// Package capacity implements the third item of the paper's future work
// (§10): "managing an application's global-placement policy and capacity
// need, i.e., forecasting the number of servers needed for each region and
// placing shards intelligently to meet the application's global clients'
// latency requirements while minimizing the number of shard replicas."
//
// The planner takes per-region client demand for each shard, the WAN
// latency model, a read-latency SLO, and per-server throughput, and
// produces: (1) a minimal set of replica regions per shard such that every
// client region with demand reaches some replica within the SLO (greedy
// weighted set cover, with a fault-tolerance floor), and (2) the forecast
// number of servers per region assuming nearest-replica routing. The
// output's region preferences feed straight into orchestrator.ShardConfig.
package capacity

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// Demand is one (shard, client region) request rate.
type Demand struct {
	Shard  shard.ID
	Region topology.RegionID
	// Rate in requests/second.
	Rate float64
}

// Input describes one planning problem.
type Input struct {
	// Fleet supplies regions and the latency model.
	Fleet *topology.Fleet
	// Demands lists client load. Shards may appear multiple times (one
	// entry per client region).
	Demands []Demand
	// SLO is the maximum acceptable one-way client-to-replica latency.
	SLO time.Duration
	// PerServerRate is the request throughput one server sustains.
	PerServerRate float64
	// MinReplicas is the fault-tolerance floor per shard (default 1).
	MinReplicas int
	// Headroom over-provisions server counts (e.g. 0.3 = 30% spare;
	// default 0.2).
	Headroom float64
}

// ShardPlan is the planner's decision for one shard.
type ShardPlan struct {
	Shard   shard.ID
	Regions []topology.RegionID
	// Unserved lists demand regions that no region can serve within the
	// SLO (the SLO itself is infeasible for them); they are still routed
	// to the nearest replica.
	Unserved []topology.RegionID
}

// Plan is a full capacity forecast.
type Plan struct {
	Shards map[shard.ID]*ShardPlan
	// ServersPerRegion is the forecast server count per region.
	ServersPerRegion map[topology.RegionID]int
	// LoadPerRegion is the raw forecast load (requests/second).
	LoadPerRegion map[topology.RegionID]float64
	// TotalReplicas across all shards — the quantity being minimized.
	TotalReplicas int
}

// Solve computes the plan.
func Solve(in Input) (*Plan, error) {
	if in.Fleet == nil || len(in.Fleet.Regions()) == 0 {
		return nil, errors.New("capacity: no fleet")
	}
	if len(in.Demands) == 0 {
		return nil, errors.New("capacity: no demand")
	}
	if in.SLO <= 0 {
		return nil, errors.New("capacity: non-positive SLO")
	}
	if in.PerServerRate <= 0 {
		return nil, errors.New("capacity: non-positive per-server rate")
	}
	if in.MinReplicas <= 0 {
		in.MinReplicas = 1
	}
	if in.Headroom <= 0 {
		in.Headroom = 0.2
	}
	regions := in.Fleet.Regions()
	known := make(map[topology.RegionID]bool, len(regions))
	for _, r := range regions {
		known[r] = true
	}

	// Group demand per shard.
	perShard := make(map[shard.ID]map[topology.RegionID]float64)
	var order []shard.ID
	for _, d := range in.Demands {
		if d.Rate < 0 {
			return nil, fmt.Errorf("capacity: negative rate for %s", d.Shard)
		}
		if !known[d.Region] {
			return nil, fmt.Errorf("capacity: demand from unknown region %q", d.Region)
		}
		m, ok := perShard[d.Shard]
		if !ok {
			m = make(map[topology.RegionID]float64)
			perShard[d.Shard] = m
			order = append(order, d.Shard)
		}
		m[d.Region] += d.Rate
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	plan := &Plan{
		Shards:           make(map[shard.ID]*ShardPlan, len(perShard)),
		ServersPerRegion: make(map[topology.RegionID]int, len(regions)),
		LoadPerRegion:    make(map[topology.RegionID]float64, len(regions)),
	}

	// covers reports whether a replica in r serves clients in c within
	// the SLO.
	covers := func(r, c topology.RegionID) bool {
		return in.Fleet.Latency(c, r) <= in.SLO
	}

	for _, id := range order {
		demand := perShard[id]
		sp := &ShardPlan{Shard: id}
		uncovered := make(map[topology.RegionID]float64, len(demand))
		for c, rate := range demand {
			uncovered[c] = rate
		}
		// Drop demand regions no placement can serve within the SLO.
		for c := range uncovered {
			feasible := false
			for _, r := range regions {
				if covers(r, c) {
					feasible = true
					break
				}
			}
			if !feasible {
				sp.Unserved = append(sp.Unserved, c)
				delete(uncovered, c)
			}
		}
		sort.Slice(sp.Unserved, func(i, j int) bool { return sp.Unserved[i] < sp.Unserved[j] })

		chosen := make(map[topology.RegionID]bool)
		// Greedy weighted set cover: repeatedly pick the region that
		// covers the most uncovered demand; break ties toward regions
		// with more local demand, then lexicographically.
		for len(uncovered) > 0 {
			var best topology.RegionID
			bestGain := -1.0
			for _, r := range regions {
				if chosen[r] {
					continue
				}
				gain := 0.0
				for c, rate := range uncovered {
					if covers(r, c) {
						gain += rate
					}
				}
				// Prefer serving demand locally when gains tie.
				gain += 1e-9 * demand[r]
				if gain > bestGain || (gain == bestGain && (best == "" || r < best)) {
					best, bestGain = r, gain
				}
			}
			if bestGain <= 0 {
				break // cannot happen: infeasible regions removed
			}
			chosen[best] = true
			for c := range uncovered {
				if covers(best, c) {
					delete(uncovered, c)
				}
			}
		}
		// Fault-tolerance floor: add the regions with the highest
		// residual demand proximity until MinReplicas is met.
		for len(chosen) < in.MinReplicas && len(chosen) < len(regions) {
			var best topology.RegionID
			bestScore := -1.0
			for _, r := range regions {
				if chosen[r] {
					continue
				}
				score := 0.0
				for c, rate := range demand {
					score += rate / (1 + float64(in.Fleet.Latency(c, r))/float64(time.Millisecond))
				}
				if score > bestScore || (score == bestScore && (best == "" || r < best)) {
					best, bestScore = r, score
				}
			}
			chosen[best] = true
		}
		for r := range chosen {
			sp.Regions = append(sp.Regions, r)
		}
		sort.Slice(sp.Regions, func(i, j int) bool { return sp.Regions[i] < sp.Regions[j] })
		plan.Shards[id] = sp
		plan.TotalReplicas += len(sp.Regions)

		// Nearest-replica routing determines per-region load.
		for c, rate := range demand {
			nearest := sp.Regions[0]
			for _, r := range sp.Regions[1:] {
				if in.Fleet.Latency(c, r) < in.Fleet.Latency(c, nearest) {
					nearest = r
				}
			}
			plan.LoadPerRegion[nearest] += rate
		}
	}

	for r, load := range plan.LoadPerRegion {
		n := int((load*(1+in.Headroom))/in.PerServerRate) + 1
		plan.ServersPerRegion[r] = n
	}
	return plan, nil
}

// ShardConfigs converts a plan into orchestrator-ready region preferences:
// the shard's first (sorted) planned region becomes its preference, and the
// replica count equals the planned region count. Loads default to one
// shard_count unit.
func (p *Plan) ShardConfigs(weight float64) []PlannedShard {
	ids := make([]shard.ID, 0, len(p.Shards))
	for id := range p.Shards {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]PlannedShard, 0, len(ids))
	for _, id := range ids {
		sp := p.Shards[id]
		out = append(out, PlannedShard{
			Shard:            id,
			Replicas:         len(sp.Regions),
			RegionPreference: sp.Regions[0],
			PreferenceWeight: weight,
		})
	}
	return out
}

// PlannedShard is the planner's output row for one shard.
type PlannedShard struct {
	Shard            shard.ID
	Replicas         int
	RegionPreference topology.RegionID
	PreferenceWeight float64
}
