package capacity

import (
	"testing"
	"time"

	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// testFleet builds four regions with a simple metric: us-east/us-west 60ms
// apart, eu 80ms from us-east, asia 120ms from everything.
func testFleet() *topology.Fleet {
	f := topology.Build(topology.Spec{
		Regions:           []topology.RegionID{"us-east", "us-west", "eu", "asia"},
		MachinesPerRegion: 1,
	})
	for _, r := range f.Regions() {
		f.SetLatency(r, r, 2*time.Millisecond)
	}
	f.SetLatency("us-east", "us-west", 60*time.Millisecond)
	f.SetLatency("us-east", "eu", 80*time.Millisecond)
	f.SetLatency("us-west", "eu", 140*time.Millisecond)
	f.SetLatency("us-east", "asia", 120*time.Millisecond)
	f.SetLatency("us-west", "asia", 120*time.Millisecond)
	f.SetLatency("eu", "asia", 120*time.Millisecond)
	return f
}

func TestSingleRegionDemandGetsLocalReplica(t *testing.T) {
	plan, err := Solve(Input{
		Fleet:         testFleet(),
		Demands:       []Demand{{Shard: "s1", Region: "eu", Rate: 100}},
		SLO:           10 * time.Millisecond,
		PerServerRate: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := plan.Shards["s1"]
	if len(sp.Regions) != 1 || sp.Regions[0] != "eu" {
		t.Fatalf("regions = %v, want [eu]", sp.Regions)
	}
	// 100 rps * 1.2 headroom / 50 per server => 3 servers.
	if plan.ServersPerRegion["eu"] != 3 {
		t.Fatalf("eu servers = %d, want 3", plan.ServersPerRegion["eu"])
	}
	if plan.TotalReplicas != 1 {
		t.Fatalf("total replicas = %d", plan.TotalReplicas)
	}
}

func TestTightSLOForcesReplicasPerContinent(t *testing.T) {
	plan, err := Solve(Input{
		Fleet: testFleet(),
		Demands: []Demand{
			{Shard: "s1", Region: "us-east", Rate: 100},
			{Shard: "s1", Region: "eu", Rate: 100},
			{Shard: "s1", Region: "asia", Rate: 100},
		},
		SLO:           10 * time.Millisecond, // only local replicas qualify
		PerServerRate: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := plan.Shards["s1"]
	if len(sp.Regions) != 3 {
		t.Fatalf("regions = %v, want one per demand continent", sp.Regions)
	}
}

func TestLooseSLOMinimizesReplicas(t *testing.T) {
	// 100ms SLO: us-east covers us-west (60), eu (80); asia needs its
	// own replica or... asia is 120 from everything, so it is only
	// coverable locally.
	plan, err := Solve(Input{
		Fleet: testFleet(),
		Demands: []Demand{
			{Shard: "s1", Region: "us-east", Rate: 50},
			{Shard: "s1", Region: "us-west", Rate: 50},
			{Shard: "s1", Region: "eu", Rate: 50},
			{Shard: "s1", Region: "asia", Rate: 50},
		},
		SLO:           100 * time.Millisecond,
		PerServerRate: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := plan.Shards["s1"]
	if len(sp.Regions) != 2 {
		t.Fatalf("regions = %v, want 2 (us-east covers 3 regions, asia local)", sp.Regions)
	}
	has := map[topology.RegionID]bool{}
	for _, r := range sp.Regions {
		has[r] = true
	}
	if !has["us-east"] || !has["asia"] {
		t.Fatalf("regions = %v, want us-east + asia", sp.Regions)
	}
}

func TestMinReplicasFloor(t *testing.T) {
	plan, err := Solve(Input{
		Fleet:         testFleet(),
		Demands:       []Demand{{Shard: "s1", Region: "eu", Rate: 10}},
		SLO:           10 * time.Millisecond,
		PerServerRate: 100,
		MinReplicas:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(plan.Shards["s1"].Regions); got != 3 {
		t.Fatalf("regions = %d, want MinReplicas floor 3", got)
	}
}

func TestInfeasibleSLOReportedAsUnserved(t *testing.T) {
	plan, err := Solve(Input{
		Fleet:         testFleet(),
		Demands:       []Demand{{Shard: "s1", Region: "asia", Rate: 10}},
		SLO:           time.Millisecond, // below even local latency (2ms)
		PerServerRate: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	sp := plan.Shards["s1"]
	if len(sp.Unserved) != 1 || sp.Unserved[0] != "asia" {
		t.Fatalf("unserved = %v", sp.Unserved)
	}
	// The fault-tolerance floor still places a replica somewhere.
	if len(sp.Regions) == 0 {
		t.Fatal("no replica placed at all")
	}
}

func TestNearestReplicaRoutingDrivesServerCounts(t *testing.T) {
	plan, err := Solve(Input{
		Fleet: testFleet(),
		Demands: []Demand{
			{Shard: "s1", Region: "us-east", Rate: 200},
			{Shard: "s1", Region: "us-west", Rate: 100},
			{Shard: "s2", Region: "us-east", Rate: 100},
		},
		SLO:           70 * time.Millisecond, // us-east covers us-west
		PerServerRate: 100,
		Headroom:      0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Everything routes to us-east: 400 rps total => 5 servers.
	if got := plan.ServersPerRegion["us-east"]; got != 5 {
		t.Fatalf("us-east servers = %d (load %v)", got, plan.LoadPerRegion)
	}
	if plan.ServersPerRegion["us-west"] != 0 {
		t.Fatalf("us-west should host nothing: %v", plan.ServersPerRegion)
	}
}

func TestMultipleShardsAggregateLoad(t *testing.T) {
	demands := []Demand{}
	for i := 0; i < 10; i++ {
		demands = append(demands, Demand{
			Shard:  shard.ID(rune('a' + i)),
			Region: "eu",
			Rate:   30,
		})
	}
	plan, err := Solve(Input{
		Fleet:         testFleet(),
		Demands:       demands,
		SLO:           10 * time.Millisecond,
		PerServerRate: 100,
		Headroom:      0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 10 shards x 30 rps = 300 => 4 servers.
	if got := plan.ServersPerRegion["eu"]; got != 4 {
		t.Fatalf("eu servers = %d", got)
	}
	if plan.TotalReplicas != 10 {
		t.Fatalf("total replicas = %d", plan.TotalReplicas)
	}
}

func TestShardConfigsConversion(t *testing.T) {
	plan, err := Solve(Input{
		Fleet: testFleet(),
		Demands: []Demand{
			{Shard: "s1", Region: "eu", Rate: 10},
			{Shard: "s2", Region: "asia", Rate: 10},
		},
		SLO:           10 * time.Millisecond,
		PerServerRate: 100,
		MinReplicas:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := plan.ShardConfigs(250)
	if len(cfgs) != 2 {
		t.Fatalf("configs = %d", len(cfgs))
	}
	for _, c := range cfgs {
		if c.Replicas != 2 || c.PreferenceWeight != 250 || c.RegionPreference == "" {
			t.Fatalf("config = %+v", c)
		}
	}
	if cfgs[0].Shard != "s1" || cfgs[1].Shard != "s2" {
		t.Fatalf("order = %v", cfgs)
	}
}

func TestSolveValidation(t *testing.T) {
	f := testFleet()
	good := Demand{Shard: "s", Region: "eu", Rate: 1}
	cases := map[string]Input{
		"no fleet":     {Demands: []Demand{good}, SLO: time.Second, PerServerRate: 1},
		"no demand":    {Fleet: f, SLO: time.Second, PerServerRate: 1},
		"bad slo":      {Fleet: f, Demands: []Demand{good}, PerServerRate: 1},
		"bad rate":     {Fleet: f, Demands: []Demand{good}, SLO: time.Second},
		"neg demand":   {Fleet: f, Demands: []Demand{{Shard: "s", Region: "eu", Rate: -1}}, SLO: time.Second, PerServerRate: 1},
		"ghost region": {Fleet: f, Demands: []Demand{{Shard: "s", Region: "mars", Rate: 1}}, SLO: time.Second, PerServerRate: 1},
	}
	for name, in := range cases {
		if _, err := Solve(in); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDeterministicOutput(t *testing.T) {
	in := Input{
		Fleet: testFleet(),
		Demands: []Demand{
			{Shard: "s1", Region: "us-east", Rate: 10},
			{Shard: "s1", Region: "eu", Rate: 10},
			{Shard: "s2", Region: "asia", Rate: 10},
		},
		SLO:           100 * time.Millisecond,
		PerServerRate: 10,
	}
	a, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Solve(in)
	if a.TotalReplicas != b.TotalReplicas {
		t.Fatal("nondeterministic replica count")
	}
	for id, sp := range a.Shards {
		other := b.Shards[id]
		if len(sp.Regions) != len(other.Regions) {
			t.Fatalf("shard %s regions differ", id)
		}
		for i := range sp.Regions {
			if sp.Regions[i] != other.Regions[i] {
				t.Fatalf("shard %s region order differs", id)
			}
		}
	}
}
