// Package cluster implements a Twine-like regional cluster manager.
//
// The paper's Shard Manager does not start or stop containers itself; it
// negotiates with Facebook's cluster manager Twine [60] via the TaskControl
// protocol about *when* container lifecycle operations may safely execute
// (§4.1), and receives advance notice of non-negotiable maintenance events
// (§4.2). This package provides that substrate: jobs made of containers
// placed on machines, negotiable lifecycle operations (start / stop /
// restart / move) gated on an external Controller, rolling upgrades with a
// concurrency limit, scheduled maintenance with advance notice, and
// unplanned failure injection (machine and whole-region losses).
//
// One Manager governs one region; a geo-distributed application is hosted by
// several Managers, and a single TaskController coordinates approvals across
// all of them — exactly the cross-region scenario of §2.3.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

// Scheduling labels for the kernel profiler (simprof): every timer the
// manager arms is attributed to a cluster cost center.
var (
	lbContainerStart = sim.LabelFor("cluster", "container_start")
	lbNegotiate      = sim.LabelFor("cluster", "negotiate")
	lbOpExec         = sim.LabelFor("cluster", "op_exec")
	lbMaintenance    = sim.LabelFor("cluster", "maintenance")
)

// JobID names a deployed application job within a region.
type JobID string

// ContainerID names one container (task) of a job. Container IDs are stable
// across restarts in place, matching Twine tasks.
type ContainerID string

// OperationID names a pending or executing lifecycle operation.
type OperationID int64

// OpType enumerates container lifecycle operations.
type OpType int

// Lifecycle operation types.
const (
	OpStart OpType = iota
	OpStop
	OpRestart
	OpMove
)

// String returns the op name.
func (o OpType) String() string {
	switch o {
	case OpStart:
		return "start"
	case OpStop:
		return "stop"
	case OpRestart:
		return "restart"
	case OpMove:
		return "move"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// ContainerState enumerates the observable states of a container.
type ContainerState int

// Container states.
const (
	StateRunning ContainerState = iota
	StateDown                   // stopped, restarting, or lost
)

// Operation is one requested container lifecycle change.
type Operation struct {
	ID        OperationID
	Type      OpType
	Container ContainerID
	Job       JobID
	Region    topology.RegionID
	// Target is the destination machine for OpMove and the placement
	// machine for OpStart (empty = manager chooses).
	Target topology.MachineID
	// Reason is a free-form tag ("upgrade", "autoscale", "drain", ...).
	Reason string
	// Negotiable operations wait for Controller approval; non-negotiable
	// ones execute immediately (used internally for maintenance and
	// failure handling).
	Negotiable bool
}

// Container is one task of a job bound to a machine.
type Container struct {
	ID      ContainerID
	Job     JobID
	Machine topology.MachineID
	State   ContainerState
	// Generation increments on every (re)start; lets observers detect
	// restarts in place.
	Generation int
}

// Job is a named group of containers for one application.
type Job struct {
	ID         JobID
	App        string
	containers []ContainerID
}

// Containers returns the job's container IDs in creation order.
func (j *Job) Containers() []ContainerID {
	out := make([]ContainerID, len(j.containers))
	copy(out, j.containers)
	return out
}

// Controller is the TaskControl protocol seen from the cluster manager's
// side: the manager offers pending operations and the controller returns the
// subset that is safe to execute now; the manager reports each completion so
// the controller can approve the next batch (§4.1).
type Controller interface {
	// OfferOperations presents the currently pending negotiable
	// operations in one region and returns the IDs approved to execute
	// immediately. Unapproved operations stay pending and are offered
	// again on the next negotiation round.
	OfferOperations(region topology.RegionID, pending []Operation) []OperationID
	// OperationComplete reports that an approved operation finished.
	OperationComplete(region topology.RegionID, op Operation)
}

// MaintenanceImpact classifies what a maintenance event does to the
// machines it touches (§4.2).
type MaintenanceImpact int

// Maintenance impacts, mildest first.
const (
	// ImpactNetworkLoss: machines stay up but are unreachable for the
	// duration.
	ImpactNetworkLoss MaintenanceImpact = iota
	// ImpactRestart: containers on the machines restart (runtime state
	// loss); they come back when the event ends.
	ImpactRestart
	// ImpactMachineLoss: the machines are gone for the duration;
	// containers die and are restarted elsewhere only if moved.
	ImpactMachineLoss
)

// String returns the impact name.
func (i MaintenanceImpact) String() string {
	switch i {
	case ImpactNetworkLoss:
		return "network-loss"
	case ImpactRestart:
		return "restart"
	case ImpactMachineLoss:
		return "machine-loss"
	default:
		return fmt.Sprintf("impact(%d)", int(i))
	}
}

// MaintenanceEvent is an unavoidable infrastructure event with advance
// notice.
type MaintenanceEvent struct {
	ID       int64
	Machines []topology.MachineID
	Start    time.Duration
	End      time.Duration
	Impact   MaintenanceImpact
}

// MaintenanceListener receives advance notice of maintenance events so that
// SM can proactively drain or demote replicas (§4.2).
type MaintenanceListener interface {
	MaintenanceScheduled(region topology.RegionID, ev MaintenanceEvent)
}

// Listener observes container state transitions. The application-server
// runtime uses it to spawn and kill server processes.
type Listener interface {
	// ContainerStarted fires when a container reaches StateRunning.
	ContainerStarted(c Container)
	// ContainerStopping fires when a container begins going down for any
	// reason (op execution, failure, maintenance). The process is about
	// to die; requests routed to it will fail.
	ContainerStopping(c Container, reason string)
	// ContainerStopped fires when the container is fully down.
	ContainerStopped(c Container)
}

// Options configure a Manager's timing.
type Options struct {
	// StartDuration is the time to cold-start a container.
	StartDuration time.Duration
	// StopDuration is the time to tear a container down.
	StopDuration time.Duration
	// RestartDuration is the in-place restart time (binary swap).
	RestartDuration time.Duration
	// NegotiationDelay batches pending ops before offering them to the
	// controller.
	NegotiationDelay time.Duration
}

// DefaultOptions mirror production-ish magnitudes at simulation scale.
func DefaultOptions() Options {
	return Options{
		StartDuration:    30 * time.Second,
		StopDuration:     5 * time.Second,
		RestartDuration:  60 * time.Second,
		NegotiationDelay: 1 * time.Second,
	}
}

// Manager is the per-region cluster manager.
type Manager struct {
	Region topology.RegionID

	loop  *sim.Loop
	fleet *topology.Fleet
	opts  Options

	controller  Controller
	maintaince  []MaintenanceListener
	listeners   []Listener
	jobs        map[JobID]*Job
	containers  map[ContainerID]*Container
	perMachine  map[topology.MachineID]int // running containers per machine
	deadMachine map[topology.MachineID]bool

	nextOp      OperationID
	nextMaint   int64
	pending     []*Operation
	executing   map[OperationID]*Operation
	tracked     map[OperationID]func()
	negotiating bool

	// Stats for Fig 1.
	PlannedStops   int64
	UnplannedStops int64
}

// NewManager returns a manager for the machines of one region of the fleet.
func NewManager(loop *sim.Loop, fleet *topology.Fleet, region topology.RegionID, opts Options) *Manager {
	if len(fleet.MachinesInRegion(region)) == 0 {
		panic(fmt.Sprintf("cluster: region %q has no machines", region))
	}
	return &Manager{
		Region:      region,
		loop:        loop,
		fleet:       fleet,
		opts:        opts,
		jobs:        make(map[JobID]*Job),
		containers:  make(map[ContainerID]*Container),
		perMachine:  make(map[topology.MachineID]int),
		deadMachine: make(map[topology.MachineID]bool),
		executing:   make(map[OperationID]*Operation),
	}
}

// SetController installs the TaskControl peer. A nil controller approves
// everything immediately (legacy applications without SM).
func (m *Manager) SetController(c Controller) { m.controller = c }

// AddListener registers a container-lifecycle observer.
func (m *Manager) AddListener(l Listener) { m.listeners = append(m.listeners, l) }

// AddMaintenanceListener registers for advance maintenance notices.
func (m *Manager) AddMaintenanceListener(l MaintenanceListener) {
	m.maintaince = append(m.maintaince, l)
}

// Job returns a job by ID, or nil.
func (m *Manager) Job(id JobID) *Job { return m.jobs[id] }

// Container returns a copy of the container's current state.
func (m *Manager) Container(id ContainerID) (Container, bool) {
	c, ok := m.containers[id]
	if !ok {
		return Container{}, false
	}
	return *c, true
}

// RunningContainers returns the IDs of all running containers of a job.
func (m *Manager) RunningContainers(job JobID) []ContainerID {
	j := m.jobs[job]
	if j == nil {
		return nil
	}
	var out []ContainerID
	for _, id := range j.containers {
		if c := m.containers[id]; c != nil && c.State == StateRunning {
			out = append(out, id)
		}
	}
	return out
}

// CreateJob deploys a job with n containers spread across the region's
// machines (fewest-containers-first placement) and starts them immediately
// (initial placement is not negotiable — there are no shards yet). Container
// IDs are "<job>/<index>".
func (m *Manager) CreateJob(id JobID, app string, n int) *Job {
	if _, dup := m.jobs[id]; dup {
		panic(fmt.Sprintf("cluster: duplicate job %q", id))
	}
	if n <= 0 {
		panic("cluster: CreateJob with no containers")
	}
	j := &Job{ID: id, App: app}
	m.jobs[id] = j
	for i := 0; i < n; i++ {
		cid := ContainerID(fmt.Sprintf("%s/%d", id, i))
		machine := m.pickMachine()
		c := &Container{ID: cid, Job: id, Machine: machine, State: StateDown}
		m.containers[cid] = c
		m.perMachine[machine]++
		j.containers = append(j.containers, cid)
		m.startContainer(c, "deploy")
	}
	return j
}

// pickMachine returns the live machine with the fewest containers.
func (m *Manager) pickMachine() topology.MachineID {
	var best topology.MachineID
	bestN := -1
	for _, mach := range m.fleet.MachinesInRegion(m.Region) {
		if m.deadMachine[mach.ID] {
			continue
		}
		n := m.perMachine[mach.ID]
		if bestN == -1 || n < bestN {
			best, bestN = mach.ID, n
		}
	}
	if bestN == -1 {
		panic(fmt.Sprintf("cluster: no live machines in region %q", m.Region))
	}
	return best
}

func (m *Manager) startContainer(c *Container, reason string) {
	m.loop.AfterL(m.opts.StartDuration, lbContainerStart, func() {
		if m.deadMachine[c.Machine] {
			return // machine died while starting
		}
		if c.State == StateRunning {
			return
		}
		m.containerUp(c)
	})
}

// containerUp transitions a container to StateRunning and notifies
// listeners. Every start path (cold start, restart, move, maintenance
// recovery) funnels through here so the running-container metrics stay
// consistent.
func (m *Manager) containerUp(c *Container) {
	c.State = StateRunning
	c.Generation++
	if mr := m.loop.Metrics(); mr != nil {
		mr.Counter("cluster_container_starts_total",
			"region", string(m.Region), "job", string(c.Job)).Inc()
		mr.Gauge("cluster_containers_running",
			"region", string(m.Region), "job", string(c.Job)).Add(1)
	}
	for _, l := range m.listeners {
		l.ContainerStarted(*c)
	}
}

// stopContainer takes the container down now. planned marks the stop as a
// planned event for Fig 1 accounting.
func (m *Manager) stopContainer(c *Container, reason string, planned bool) {
	if c.State == StateDown {
		return
	}
	if planned {
		m.PlannedStops++
	} else {
		m.UnplannedStops++
	}
	if mr := m.loop.Metrics(); mr != nil {
		mr.Counter("cluster_container_stops_total",
			"region", string(m.Region), "job", string(c.Job),
			"planned", fmt.Sprintf("%t", planned)).Inc()
		mr.Gauge("cluster_containers_running",
			"region", string(m.Region), "job", string(c.Job)).Add(-1)
	}
	for _, l := range m.listeners {
		l.ContainerStopping(*c, reason)
	}
	c.State = StateDown
	for _, l := range m.listeners {
		l.ContainerStopped(*c)
	}
}

// removeContainer permanently decommissions a stopped container.
func (m *Manager) removeContainer(c *Container) {
	delete(m.containers, c.ID)
	m.perMachine[c.Machine]--
	if j := m.jobs[c.Job]; j != nil {
		for i, id := range j.containers {
			if id == c.ID {
				j.containers = append(j.containers[:i], j.containers[i+1:]...)
				break
			}
		}
	}
}

// Submit queues a lifecycle operation. Negotiable operations wait for
// controller approval; others execute after NegotiationDelay without asking.
// It returns the assigned operation ID.
func (m *Manager) Submit(op Operation) OperationID {
	c := m.containers[op.Container]
	if c == nil && op.Type != OpStart {
		panic(fmt.Sprintf("cluster: Submit %v for unknown container %q", op.Type, op.Container))
	}
	m.nextOp++
	op.ID = m.nextOp
	op.Region = m.Region
	if c != nil {
		op.Job = c.Job
	}
	stored := op
	m.pending = append(m.pending, &stored)
	m.scheduleNegotiation()
	return op.ID
}

// PendingOps returns a snapshot of pending (unapproved) operations.
func (m *Manager) PendingOps() []Operation {
	out := make([]Operation, 0, len(m.pending))
	for _, op := range m.pending {
		out = append(out, *op)
	}
	return out
}

// ExecutingOps returns the number of approved operations still in flight.
func (m *Manager) ExecutingOps() int { return len(m.executing) }

// scheduleNegotiation coalesces negotiation rounds.
func (m *Manager) scheduleNegotiation() {
	if m.negotiating {
		return
	}
	m.negotiating = true
	m.loop.AfterL(m.opts.NegotiationDelay, lbNegotiate, func() {
		m.negotiating = false
		m.negotiate()
	})
}

// negotiate offers pending negotiable ops to the controller and executes the
// approved subset plus all non-negotiable ops.
func (m *Manager) negotiate() {
	if len(m.pending) == 0 {
		return
	}
	var negotiable []Operation
	for _, op := range m.pending {
		if op.Negotiable {
			negotiable = append(negotiable, *op)
		}
	}
	approved := make(map[OperationID]bool)
	if m.controller == nil {
		for _, op := range negotiable {
			approved[op.ID] = true
		}
	} else if len(negotiable) > 0 {
		for _, id := range m.controller.OfferOperations(m.Region, negotiable) {
			approved[id] = true
		}
	}
	var stillPending []*Operation
	var toRun []*Operation
	for _, op := range m.pending {
		if !op.Negotiable || approved[op.ID] {
			toRun = append(toRun, op)
		} else {
			stillPending = append(stillPending, op)
		}
	}
	m.pending = stillPending
	for _, op := range toRun {
		m.execute(op)
	}
	// Keep negotiating while work remains; completion also re-arms.
	if len(m.pending) > 0 {
		m.scheduleNegotiation()
	}
}

// execute runs one approved operation to completion.
func (m *Manager) execute(op *Operation) {
	m.executing[op.ID] = op
	done := func() {
		delete(m.executing, op.ID)
		if op.Negotiable && m.controller != nil {
			m.controller.OperationComplete(m.Region, *op)
		}
		if len(m.pending) > 0 {
			m.scheduleNegotiation()
		}
	}
	if cb := m.tracked[op.ID]; cb != nil {
		delete(m.tracked, op.ID)
		inner := done
		done = func() {
			inner()
			cb()
		}
	}
	c := m.containers[op.Container]
	switch op.Type {
	case OpRestart:
		if c == nil || c.State == StateDown {
			done()
			return
		}
		m.stopContainer(c, op.Reason, true)
		m.loop.AfterL(m.opts.RestartDuration, lbOpExec, func() {
			if !m.deadMachine[c.Machine] {
				m.containerUp(c)
			}
			done()
		})
	case OpStop:
		if c != nil {
			m.stopContainer(c, op.Reason, true)
			m.removeContainer(c)
		}
		m.loop.AfterL(m.opts.StopDuration, lbOpExec, done)
	case OpStart:
		if c == nil {
			// New container appended to the job.
			j := m.jobs[op.Job]
			if j == nil {
				panic(fmt.Sprintf("cluster: OpStart for unknown job %q", op.Job))
			}
			machine := op.Target
			if machine == "" {
				machine = m.pickMachine()
			}
			c = &Container{ID: op.Container, Job: op.Job, Machine: machine, State: StateDown}
			m.containers[op.Container] = c
			m.perMachine[machine]++
			j.containers = append(j.containers, op.Container)
		}
		if c.State == StateRunning {
			done()
			return
		}
		m.loop.AfterL(m.opts.StartDuration, lbOpExec, func() {
			if !m.deadMachine[c.Machine] && c.State == StateDown {
				m.containerUp(c)
			}
			done()
		})
	case OpMove:
		if c == nil {
			done()
			return
		}
		target := op.Target
		if target == "" {
			target = m.pickMachine()
		}
		m.stopContainer(c, op.Reason, true)
		m.loop.AfterL(m.opts.StopDuration+m.opts.StartDuration, lbOpExec, func() {
			if !m.deadMachine[target] {
				m.perMachine[c.Machine]--
				c.Machine = target
				m.perMachine[c.Machine]++
				m.containerUp(c)
			}
			done()
		})
	default:
		panic(fmt.Sprintf("cluster: unknown op type %v", op.Type))
	}
}

// RollingUpgrade submits negotiable restart operations for every container
// of the job, tagged with the given reason. The controller (if any) paces
// them; with no controller, maxConcurrent bounds how many restart at once
// (Twine's own default pacing). onDone, if non-nil, fires when every
// container has been restarted.
func (m *Manager) RollingUpgrade(job JobID, maxConcurrent int, reason string, onDone func()) {
	j := m.jobs[job]
	if j == nil {
		panic(fmt.Sprintf("cluster: RollingUpgrade of unknown job %q", job))
	}
	if maxConcurrent <= 0 {
		maxConcurrent = 1
	}
	remaining := append([]ContainerID(nil), j.containers...)
	inFlight := 0
	var pump func()
	var complete func()
	complete = func() {
		inFlight--
		pump()
	}
	pump = func() {
		for inFlight < maxConcurrent && len(remaining) > 0 {
			cid := remaining[0]
			remaining = remaining[1:]
			inFlight++
			m.submitTracked(Operation{
				Type:       OpRestart,
				Container:  cid,
				Negotiable: true,
				Reason:     reason,
			}, complete)
		}
		if inFlight == 0 && len(remaining) == 0 && onDone != nil {
			done := onDone
			onDone = nil
			done()
		}
	}
	pump()
}

// tracked completion callbacks keyed by op ID.
func (m *Manager) submitTracked(op Operation, onDone func()) {
	id := m.Submit(op)
	if m.tracked == nil {
		m.tracked = make(map[OperationID]func())
	}
	m.tracked[id] = onDone
}

// Resize grows or shrinks the job to n containers via negotiable start/stop
// operations (the auto-scaler path of §4.1).
func (m *Manager) Resize(job JobID, n int) {
	j := m.jobs[job]
	if j == nil {
		panic(fmt.Sprintf("cluster: Resize of unknown job %q", job))
	}
	cur := len(j.containers)
	for i := cur; i < n; i++ {
		cid := ContainerID(fmt.Sprintf("%s/%d", job, i))
		m.Submit(Operation{Type: OpStart, Container: cid, Job: job, Negotiable: true, Reason: "autoscale"})
	}
	for i := cur - 1; i >= n; i-- {
		m.Submit(Operation{Type: OpStop, Container: j.containers[i], Negotiable: true, Reason: "autoscale"})
	}
}

// ScheduleMaintenance registers a non-negotiable maintenance event and
// notifies maintenance listeners immediately (the advance notice). At
// event start the impact is applied; at event end machines recover.
func (m *Manager) ScheduleMaintenance(machines []topology.MachineID, start, end time.Duration, impact MaintenanceImpact) MaintenanceEvent {
	if end <= start {
		panic("cluster: maintenance end before start")
	}
	m.nextMaint++
	ev := MaintenanceEvent{
		ID:       m.nextMaint,
		Machines: append([]topology.MachineID(nil), machines...),
		Start:    start,
		End:      end,
		Impact:   impact,
	}
	m.loop.Metrics().Counter("cluster_maintenance_total",
		"region", string(m.Region), "impact", impact.String()).Inc()
	for _, l := range m.maintaince {
		l.MaintenanceScheduled(m.Region, ev)
	}
	m.loop.AtL(start, lbMaintenance, func() { m.beginMaintenance(ev) })
	return ev
}

func (m *Manager) beginMaintenance(ev MaintenanceEvent) {
	switch ev.Impact {
	case ImpactNetworkLoss, ImpactMachineLoss:
		for _, mach := range ev.Machines {
			m.killMachineInternal(mach, "maintenance", true)
		}
		m.loop.AtL(ev.End, lbMaintenance, func() {
			for _, mach := range ev.Machines {
				m.RestoreMachine(mach)
			}
		})
	case ImpactRestart:
		for _, mach := range ev.Machines {
			for _, c := range m.containers {
				if c.Machine == mach && c.State == StateRunning {
					c := c
					m.stopContainer(c, "maintenance", true)
					m.loop.AfterL(m.opts.RestartDuration, lbMaintenance, func() {
						if !m.deadMachine[c.Machine] && c.State == StateDown {
							m.containerUp(c)
						}
					})
				}
			}
		}
	}
}

// KillMachine simulates an unplanned machine failure: all its containers
// stop (unplanned) and the machine accepts no new containers until restored.
func (m *Manager) KillMachine(id topology.MachineID) {
	m.killMachineInternal(id, "machine-failure", false)
}

func (m *Manager) killMachineInternal(id topology.MachineID, reason string, planned bool) {
	if m.deadMachine[id] {
		return
	}
	m.deadMachine[id] = true
	for _, c := range m.containers {
		if c.Machine == id {
			m.stopContainer(c, reason, planned)
		}
	}
}

// RestoreMachine brings a failed machine back; its containers restart in
// place after StartDuration.
func (m *Manager) RestoreMachine(id topology.MachineID) {
	if !m.deadMachine[id] {
		return
	}
	delete(m.deadMachine, id)
	for _, c := range m.containers {
		if c.Machine == id && c.State == StateDown {
			m.startContainer(c, "machine-restore")
		}
	}
}

// FailRegion kills every machine in the region (whole-region outage).
func (m *Manager) FailRegion() {
	for _, mach := range m.fleet.MachinesInRegion(m.Region) {
		m.KillMachine(mach.ID)
	}
}

// RecoverRegion restores every machine in the region.
func (m *Manager) RecoverRegion() {
	for _, mach := range m.fleet.MachinesInRegion(m.Region) {
		m.RestoreMachine(mach.ID)
	}
}

// MachineAlive reports whether the machine is currently healthy.
func (m *Manager) MachineAlive(id topology.MachineID) bool { return !m.deadMachine[id] }

// ContainersOnMachine returns the IDs of containers currently placed on the
// machine (any state), sorted for determinism.
func (m *Manager) ContainersOnMachine(id topology.MachineID) []ContainerID {
	var out []ContainerID
	for cid, c := range m.containers {
		if c.Machine == id {
			out = append(out, cid)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
