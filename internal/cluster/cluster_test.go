package cluster

import (
	"testing"
	"time"

	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

func testFleet() *topology.Fleet {
	return topology.Build(topology.Spec{
		Regions:           []topology.RegionID{"r1", "r2"},
		MachinesPerRegion: 10,
		Capacity:          topology.Capacity{topology.ResourceCPU: 100},
	})
}

type recordingListener struct {
	started  []ContainerID
	stopping []ContainerID
	stopped  []ContainerID
}

func (r *recordingListener) ContainerStarted(c Container) { r.started = append(r.started, c.ID) }
func (r *recordingListener) ContainerStopping(c Container, reason string) {
	r.stopping = append(r.stopping, c.ID)
}
func (r *recordingListener) ContainerStopped(c Container) { r.stopped = append(r.stopped, c.ID) }

func newTestManager(t *testing.T) (*sim.Loop, *Manager, *recordingListener) {
	t.Helper()
	loop := sim.NewLoop(1)
	m := NewManager(loop, testFleet(), "r1", DefaultOptions())
	rl := &recordingListener{}
	m.AddListener(rl)
	return loop, m, rl
}

func TestCreateJobStartsContainers(t *testing.T) {
	loop, m, rl := newTestManager(t)
	j := m.CreateJob("app", "app", 5)
	if len(j.Containers()) != 5 {
		t.Fatalf("containers = %d", len(j.Containers()))
	}
	loop.RunFor(time.Minute)
	if len(rl.started) != 5 {
		t.Fatalf("started = %d, want 5", len(rl.started))
	}
	if got := len(m.RunningContainers("app")); got != 5 {
		t.Fatalf("running = %d, want 5", got)
	}
}

func TestContainersSpreadAcrossMachines(t *testing.T) {
	loop, m, _ := newTestManager(t)
	m.CreateJob("app", "app", 10)
	loop.RunFor(time.Minute)
	perMachine := map[topology.MachineID]int{}
	for _, cid := range m.RunningContainers("app") {
		c, _ := m.Container(cid)
		perMachine[c.Machine]++
	}
	if len(perMachine) != 10 {
		t.Fatalf("machines used = %d, want 10 (one each)", len(perMachine))
	}
}

func TestRestartWithoutControllerExecutes(t *testing.T) {
	loop, m, rl := newTestManager(t)
	m.CreateJob("app", "app", 1)
	loop.RunFor(time.Minute)
	cid := m.RunningContainers("app")[0]
	before, _ := m.Container(cid)
	m.Submit(Operation{Type: OpRestart, Container: cid, Negotiable: true, Reason: "upgrade"})
	loop.RunFor(5 * time.Minute)
	after, _ := m.Container(cid)
	if after.Generation != before.Generation+1 {
		t.Fatalf("generation = %d, want %d", after.Generation, before.Generation+1)
	}
	if after.State != StateRunning {
		t.Fatal("container not running after restart")
	}
	if len(rl.stopping) != 1 || len(rl.started) != 2 {
		t.Fatalf("events: stopping=%d started=%d", len(rl.stopping), len(rl.started))
	}
	if m.PlannedStops != 1 || m.UnplannedStops != 0 {
		t.Fatalf("stops: planned=%d unplanned=%d", m.PlannedStops, m.UnplannedStops)
	}
}

// gateController approves nothing until opened, then everything.
type gateController struct {
	open      bool
	offered   int
	completed int
}

func (g *gateController) OfferOperations(_ topology.RegionID, pending []Operation) []OperationID {
	g.offered++
	if !g.open {
		return nil
	}
	ids := make([]OperationID, len(pending))
	for i, op := range pending {
		ids[i] = op.ID
	}
	return ids
}

func (g *gateController) OperationComplete(topology.RegionID, Operation) { g.completed++ }

func TestControllerGatesNegotiableOps(t *testing.T) {
	loop, m, _ := newTestManager(t)
	g := &gateController{}
	m.SetController(g)
	m.CreateJob("app", "app", 2)
	loop.RunFor(time.Minute)
	cid := m.RunningContainers("app")[0]
	m.Submit(Operation{Type: OpRestart, Container: cid, Negotiable: true})
	loop.RunFor(time.Minute)
	c, _ := m.Container(cid)
	if c.Generation != 1 {
		t.Fatal("unapproved op executed")
	}
	if g.offered == 0 {
		t.Fatal("controller never consulted")
	}
	if len(m.PendingOps()) != 1 {
		t.Fatalf("pending = %d, want 1", len(m.PendingOps()))
	}
	g.open = true
	loop.RunFor(5 * time.Minute)
	c, _ = m.Container(cid)
	if c.Generation != 2 {
		t.Fatal("approved op did not execute")
	}
	if g.completed != 1 {
		t.Fatalf("completions = %d, want 1", g.completed)
	}
}

func TestNonNegotiableSkipsController(t *testing.T) {
	loop, m, _ := newTestManager(t)
	g := &gateController{} // closed gate
	m.SetController(g)
	m.CreateJob("app", "app", 1)
	loop.RunFor(time.Minute)
	cid := m.RunningContainers("app")[0]
	m.Submit(Operation{Type: OpRestart, Container: cid, Negotiable: false})
	loop.RunFor(5 * time.Minute)
	c, _ := m.Container(cid)
	if c.Generation != 2 {
		t.Fatal("non-negotiable op blocked by controller")
	}
}

func TestRollingUpgradeBoundedConcurrency(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewManager(loop, testFleet(), "r1", DefaultOptions())
	m.CreateJob("app", "app", 10)
	loop.RunFor(time.Minute)

	maxDown := 0
	loop.Every(time.Second, func() {
		down := 10 - len(m.RunningContainers("app"))
		if down > maxDown {
			maxDown = down
		}
	})
	doneAt := time.Duration(0)
	m.RollingUpgrade("app", 3, "upgrade", func() { doneAt = loop.Now() })
	loop.RunFor(30 * time.Minute)
	if doneAt == 0 {
		t.Fatal("upgrade never completed")
	}
	if maxDown > 3 {
		t.Fatalf("max concurrent down = %d, want <= 3", maxDown)
	}
	if got := len(m.RunningContainers("app")); got != 10 {
		t.Fatalf("running after upgrade = %d", got)
	}
}

func TestResizeGrowAndShrink(t *testing.T) {
	loop, m, _ := newTestManager(t)
	m.CreateJob("app", "app", 3)
	loop.RunFor(time.Minute)
	m.Resize("app", 6)
	loop.RunFor(5 * time.Minute)
	if got := len(m.RunningContainers("app")); got != 6 {
		t.Fatalf("after grow = %d, want 6", got)
	}
	m.Resize("app", 2)
	loop.RunFor(5 * time.Minute)
	if got := len(m.RunningContainers("app")); got != 2 {
		t.Fatalf("after shrink = %d, want 2", got)
	}
}

func TestKillAndRestoreMachine(t *testing.T) {
	loop, m, _ := newTestManager(t)
	m.CreateJob("app", "app", 10)
	loop.RunFor(time.Minute)
	c0, _ := m.Container(m.RunningContainers("app")[0])
	m.KillMachine(c0.Machine)
	if m.MachineAlive(c0.Machine) {
		t.Fatal("machine still alive")
	}
	if got := len(m.RunningContainers("app")); got != 9 {
		t.Fatalf("running after kill = %d, want 9", got)
	}
	if m.UnplannedStops != 1 {
		t.Fatalf("unplanned stops = %d", m.UnplannedStops)
	}
	m.RestoreMachine(c0.Machine)
	loop.RunFor(time.Minute)
	if got := len(m.RunningContainers("app")); got != 10 {
		t.Fatalf("running after restore = %d, want 10", got)
	}
}

func TestFailAndRecoverRegion(t *testing.T) {
	loop, m, _ := newTestManager(t)
	m.CreateJob("app", "app", 8)
	loop.RunFor(time.Minute)
	m.FailRegion()
	if got := len(m.RunningContainers("app")); got != 0 {
		t.Fatalf("running after region failure = %d", got)
	}
	m.RecoverRegion()
	loop.RunFor(time.Minute)
	if got := len(m.RunningContainers("app")); got != 8 {
		t.Fatalf("running after recovery = %d", got)
	}
}

type maintRecorder struct {
	events []MaintenanceEvent
}

func (r *maintRecorder) MaintenanceScheduled(_ topology.RegionID, ev MaintenanceEvent) {
	r.events = append(r.events, ev)
}

func TestMaintenanceAdvanceNoticeAndImpact(t *testing.T) {
	loop, m, _ := newTestManager(t)
	mr := &maintRecorder{}
	m.AddMaintenanceListener(mr)
	m.CreateJob("app", "app", 10)
	loop.RunFor(time.Minute)
	c0, _ := m.Container(m.RunningContainers("app")[0])
	m.ScheduleMaintenance([]topology.MachineID{c0.Machine}, loop.Now()+10*time.Minute, loop.Now()+20*time.Minute, ImpactNetworkLoss)
	if len(mr.events) != 1 {
		t.Fatal("no advance notice")
	}
	// Before start: machine is fine.
	loop.RunFor(5 * time.Minute)
	if !m.MachineAlive(c0.Machine) {
		t.Fatal("machine down before maintenance start")
	}
	// During: machine unavailable.
	loop.RunFor(6 * time.Minute)
	if m.MachineAlive(c0.Machine) {
		t.Fatal("machine up during maintenance")
	}
	// Stops from maintenance are planned.
	if m.PlannedStops == 0 || m.UnplannedStops != 0 {
		t.Fatalf("stops: planned=%d unplanned=%d", m.PlannedStops, m.UnplannedStops)
	}
	// After end: restored.
	loop.RunFor(15 * time.Minute)
	if !m.MachineAlive(c0.Machine) {
		t.Fatal("machine not restored after maintenance")
	}
	if got := len(m.RunningContainers("app")); got != 10 {
		t.Fatalf("running after maintenance = %d", got)
	}
}

func TestMaintenanceRestartImpact(t *testing.T) {
	loop, m, _ := newTestManager(t)
	m.CreateJob("app", "app", 10)
	loop.RunFor(time.Minute)
	c0, _ := m.Container(m.RunningContainers("app")[0])
	gen := c0.Generation
	m.ScheduleMaintenance([]topology.MachineID{c0.Machine}, loop.Now()+time.Minute, loop.Now()+10*time.Minute, ImpactRestart)
	loop.RunFor(10 * time.Minute)
	after, _ := m.Container(c0.ID)
	if after.Generation != gen+1 {
		t.Fatalf("generation = %d, want %d", after.Generation, gen+1)
	}
	if after.State != StateRunning {
		t.Fatal("container not running after restart maintenance")
	}
}

func TestPanicsOnMisuse(t *testing.T) {
	loop, m, _ := newTestManager(t)
	m.CreateJob("app", "app", 1)
	loop.RunFor(time.Minute)
	for name, fn := range map[string]func(){
		"dup job":        func() { m.CreateJob("app", "app", 1) },
		"empty job":      func() { m.CreateJob("other", "other", 0) },
		"unknown target": func() { m.Submit(Operation{Type: OpRestart, Container: "nope"}) },
		"bad maint":      func() { m.ScheduleMaintenance(nil, 10, 5, ImpactRestart) },
		"unknown resize": func() { m.Resize("nope", 3) },
		"unknown roll":   func() { m.RollingUpgrade("nope", 1, "", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestOpTypeString(t *testing.T) {
	if OpRestart.String() != "restart" || OpMove.String() != "move" {
		t.Fatal("op names wrong")
	}
}
