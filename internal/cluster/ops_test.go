package cluster

import (
	"testing"
	"time"

	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

// countingController approves everything but records offer rounds.
type countingController struct {
	offers    int
	completes int
}

func (c *countingController) OfferOperations(_ topology.RegionID, pending []Operation) []OperationID {
	c.offers++
	out := make([]OperationID, len(pending))
	for i, op := range pending {
		out[i] = op.ID
	}
	return out
}

func (c *countingController) OperationComplete(topology.RegionID, Operation) { c.completes++ }

func TestMoveOperationRelocatesContainer(t *testing.T) {
	loop := sim.NewLoop(1)
	fleet := testFleet()
	m := NewManager(loop, fleet, "r1", DefaultOptions())
	m.CreateJob("app", "app", 2)
	loop.RunFor(time.Minute)
	cid := m.RunningContainers("app")[0]
	before, _ := m.Container(cid)

	var target topology.MachineID
	for _, mach := range fleet.MachinesInRegion("r1") {
		if mach.ID != before.Machine {
			used := false
			for _, other := range m.RunningContainers("app") {
				if c, _ := m.Container(other); c.Machine == mach.ID {
					used = true
				}
			}
			if !used {
				target = mach.ID
				break
			}
		}
	}
	m.Submit(Operation{Type: OpMove, Container: cid, Target: target, Negotiable: true, Reason: "rebalance"})
	loop.RunFor(5 * time.Minute)
	after, _ := m.Container(cid)
	if after.Machine != target {
		t.Fatalf("container on %s, want %s", after.Machine, target)
	}
	if after.State != StateRunning {
		t.Fatal("container not running after move")
	}
	if after.Generation != before.Generation+1 {
		t.Fatalf("generation = %d, want %d", after.Generation, before.Generation+1)
	}
}

func TestMoveToDefaultTargetPicksColdMachine(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewManager(loop, testFleet(), "r1", DefaultOptions())
	m.CreateJob("app", "app", 2)
	loop.RunFor(time.Minute)
	cid := m.RunningContainers("app")[0]
	before, _ := m.Container(cid)
	m.Submit(Operation{Type: OpMove, Container: cid, Negotiable: false})
	loop.RunFor(5 * time.Minute)
	after, _ := m.Container(cid)
	if after.Machine == before.Machine {
		t.Fatal("move without target stayed on the same machine")
	}
}

func TestNegotiationReoffersWhilePending(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewManager(loop, testFleet(), "r1", DefaultOptions())
	gate := &gateController{} // approves nothing
	m.SetController(gate)
	m.CreateJob("app", "app", 1)
	loop.RunFor(time.Minute)
	cid := m.RunningContainers("app")[0]
	m.Submit(Operation{Type: OpRestart, Container: cid, Negotiable: true})
	loop.RunFor(10 * time.Second)
	// With 1s negotiation delay, the manager must have re-offered the
	// pending op many times ("Periodically, Twine notifies...").
	if gate.offered < 5 {
		t.Fatalf("offers = %d, want periodic re-offers", gate.offered)
	}
}

func TestOperationCompleteNotifiesController(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewManager(loop, testFleet(), "r1", DefaultOptions())
	ctrl := &countingController{}
	m.SetController(ctrl)
	m.CreateJob("app", "app", 3)
	loop.RunFor(time.Minute)
	for _, cid := range m.RunningContainers("app") {
		m.Submit(Operation{Type: OpRestart, Container: cid, Negotiable: true})
	}
	loop.RunFor(10 * time.Minute)
	if ctrl.completes != 3 {
		t.Fatalf("completions = %d, want 3", ctrl.completes)
	}
}

func TestContainersOnMachine(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewManager(loop, testFleet(), "r1", DefaultOptions())
	m.CreateJob("app", "app", 10)
	loop.RunFor(time.Minute)
	total := 0
	for _, mach := range testFleet().MachinesInRegion("r1") {
		ids := m.ContainersOnMachine(mach.ID)
		total += len(ids)
		for i := 1; i < len(ids); i++ {
			if ids[i-1] >= ids[i] {
				t.Fatal("ContainersOnMachine not sorted")
			}
		}
	}
	if total != 10 {
		t.Fatalf("containers across machines = %d, want 10", total)
	}
	if got := m.ContainersOnMachine("bogus"); got != nil {
		t.Fatalf("bogus machine containers = %v", got)
	}
}

func TestRestartOfDownContainerCompletesImmediately(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewManager(loop, testFleet(), "r1", DefaultOptions())
	ctrl := &countingController{}
	m.SetController(ctrl)
	m.CreateJob("app", "app", 2)
	loop.RunFor(time.Minute)
	cid := m.RunningContainers("app")[0]
	c, _ := m.Container(cid)
	m.KillMachine(c.Machine)
	m.Submit(Operation{Type: OpRestart, Container: cid, Negotiable: true})
	loop.RunFor(time.Minute)
	if ctrl.completes != 1 {
		t.Fatalf("restart of down container should complete as a no-op (completes=%d)", ctrl.completes)
	}
	after, _ := m.Container(cid)
	if after.State != StateDown {
		t.Fatal("container resurrected by no-op restart")
	}
}

func TestStopStatsCountPlannedAndUnplanned(t *testing.T) {
	loop := sim.NewLoop(1)
	m := NewManager(loop, testFleet(), "r1", DefaultOptions())
	m.CreateJob("app", "app", 4)
	loop.RunFor(time.Minute)
	ids := m.RunningContainers("app")
	m.Submit(Operation{Type: OpRestart, Container: ids[0], Negotiable: false, Reason: "upgrade"})
	loop.RunFor(5 * time.Minute)
	c, _ := m.Container(ids[1])
	m.KillMachine(c.Machine)
	if m.PlannedStops != 1 || m.UnplannedStops != 1 {
		t.Fatalf("stops: planned=%d unplanned=%d, want 1/1", m.PlannedStops, m.UnplannedStops)
	}
}

func BenchmarkNegotiationRound(b *testing.B) {
	loop := sim.NewLoop(1)
	fleet := topology.Build(topology.Spec{
		Regions:           []topology.RegionID{"r1"},
		MachinesPerRegion: 100,
	})
	m := NewManager(loop, fleet, "r1", DefaultOptions())
	gate := &gateController{}
	m.SetController(gate)
	m.CreateJob("app", "app", 100)
	loop.RunFor(time.Minute)
	for _, cid := range m.RunningContainers("app") {
		m.Submit(Operation{Type: OpRestart, Container: cid, Negotiable: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loop.RunFor(time.Second) // one negotiation round
	}
}
