// Package controlplane implements SM's scale-out global control plane
// (§6.1): a single mini-SM cannot manage millions of servers and billions
// of shards, so applications are divided into partitions, partitions are
// assigned to mini-SMs, and a thin set of global components — frontend,
// application registry, application manager, partition registry, shard
// scaler, read service — tie the pool together.
//
//	Frontend -> ApplicationRegistry -> ApplicationManager -> partitions
//	         -> PartitionRegistry  -> mini-SMs
//
// The package is deliberately structural: a Partition is an accounting unit
// (server/shard counts, regions) that may optionally carry a live
// orchestrator. The Fig 15/16 experiments partition the synthetic fleet of
// package workload through this code; the integration tests attach real
// orchestrators to partitions.
package controlplane

import (
	"errors"
	"fmt"
	"sort"

	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// PartitionID names one partition of an application.
type PartitionID string

// MiniSMID names one mini-SM control-plane instance.
type MiniSMID string

// Kind distinguishes regional from geo-distributed mini-SMs; a mini-SM
// manages deployments of one kind (§8.1 reports 139 regional and 48 geo
// mini-SMs).
type Kind int

// Mini-SM kinds.
const (
	Regional Kind = iota
	Geo
)

// String returns the kind name.
func (k Kind) String() string {
	if k == Geo {
		return "geo-distributed"
	}
	return "regional"
}

// AppSpec registers an application with the control plane.
type AppSpec struct {
	App     shard.AppID
	Servers int
	Shards  int
	// Regions the deployment spans; one region = regional deployment.
	Regions []topology.RegionID
}

// Kind derives the deployment kind.
func (a AppSpec) Kind() Kind {
	if len(a.Regions) > 1 {
		return Geo
	}
	return Regional
}

// Partition is one managed slice of an application: servers in a partition
// may come from different regions, and a shard's replicas always stay
// within one partition (§6.1).
type Partition struct {
	ID      PartitionID
	App     shard.AppID
	Index   int
	Servers int
	Shards  int
	Regions []topology.RegionID
	// Orchestrator optionally carries the live mini-SM state for this
	// partition (nil in accounting-only uses).
	Orchestrator any
}

// MiniSM is one control-plane instance managing some partitions.
type MiniSM struct {
	ID         MiniSMID
	Kind       Kind
	Partitions []*Partition
}

// Servers returns the total servers managed.
func (m *MiniSM) Servers() int {
	n := 0
	for _, p := range m.Partitions {
		n += p.Servers
	}
	return n
}

// Shards returns the total shard replicas managed.
func (m *MiniSM) Shards() int {
	n := 0
	for _, p := range m.Partitions {
		n += p.Shards
	}
	return n
}

// Limits bound what one partition and one mini-SM may hold. Paper: a
// partition "typically comprises thousands of servers and hundreds of
// thousands of shard replicas"; the largest mini-SMs manage ~50K servers
// and ~1.3M shards (§8.1).
type Limits struct {
	PartitionMaxServers int
	PartitionMaxShards  int
	MiniSMMaxServers    int
	MiniSMMaxShards     int
}

// DefaultLimits mirror the paper's magnitudes.
func DefaultLimits() Limits {
	return Limits{
		PartitionMaxServers: 5000,
		PartitionMaxShards:  500000,
		MiniSMMaxServers:    50000,
		MiniSMMaxShards:     1300000,
	}
}

// ControlPlane is the global layer: registries plus the mini-SM pool.
type ControlPlane struct {
	limits Limits

	apps       map[shard.AppID]*AppSpec
	partitions map[PartitionID]*Partition
	// appPartitions preserves creation order per app.
	appPartitions map[shard.AppID][]PartitionID
	assignment    map[PartitionID]MiniSMID
	miniSMs       map[MiniSMID]*MiniSM
	order         []MiniSMID
	nextMiniSM    int
}

// New creates an empty control plane.
func New(limits Limits) *ControlPlane {
	if limits.PartitionMaxServers <= 0 || limits.MiniSMMaxServers <= 0 ||
		limits.PartitionMaxShards <= 0 || limits.MiniSMMaxShards <= 0 {
		panic("controlplane: non-positive limits")
	}
	return &ControlPlane{
		limits:        limits,
		apps:          make(map[shard.AppID]*AppSpec),
		partitions:    make(map[PartitionID]*Partition),
		appPartitions: make(map[shard.AppID][]PartitionID),
		assignment:    make(map[PartitionID]MiniSMID),
		miniSMs:       make(map[MiniSMID]*MiniSM),
	}
}

// RegisterApp admits an application: the application manager divides it
// into partitions and the partition registry assigns each partition to a
// mini-SM of the right kind, creating new mini-SMs as the pool fills
// ("as the system scales, more mini-SMs can be added to scale out").
func (cp *ControlPlane) RegisterApp(spec AppSpec) ([]*Partition, error) {
	if spec.App == "" || spec.Servers <= 0 || spec.Shards < 0 || len(spec.Regions) == 0 {
		return nil, fmt.Errorf("controlplane: invalid spec %+v", spec)
	}
	if _, dup := cp.apps[spec.App]; dup {
		return nil, fmt.Errorf("controlplane: app %q already registered", spec.App)
	}
	s := spec
	cp.apps[spec.App] = &s

	parts := cp.split(&s)
	for _, p := range parts {
		cp.partitions[p.ID] = p
		cp.appPartitions[spec.App] = append(cp.appPartitions[spec.App], p.ID)
		cp.assign(p, spec.Kind())
	}
	return parts, nil
}

// split divides an application into partitions under the partition limits.
// An application manager "usually maps an application to one partition, but
// may divide a large application into multiple partitions".
func (cp *ControlPlane) split(spec *AppSpec) []*Partition {
	nByServers := (spec.Servers + cp.limits.PartitionMaxServers - 1) / cp.limits.PartitionMaxServers
	nByShards := 1
	if spec.Shards > 0 {
		nByShards = (spec.Shards + cp.limits.PartitionMaxShards - 1) / cp.limits.PartitionMaxShards
	}
	n := nByServers
	if nByShards > n {
		n = nByShards
	}
	parts := make([]*Partition, 0, n)
	for i := 0; i < n; i++ {
		parts = append(parts, &Partition{
			ID:      PartitionID(fmt.Sprintf("%s/p%03d", spec.App, i)),
			App:     spec.App,
			Index:   i,
			Servers: chunk(spec.Servers, n, i),
			Shards:  chunk(spec.Shards, n, i),
			Regions: append([]topology.RegionID(nil), spec.Regions...),
		})
	}
	return parts
}

// chunk splits total into n near-equal parts and returns part i.
func chunk(total, n, i int) int {
	base := total / n
	if i < total%n {
		return base + 1
	}
	return base
}

// assign places a partition on the least-loaded mini-SM of the kind that
// still fits it, creating a new mini-SM when none fits.
func (cp *ControlPlane) assign(p *Partition, kind Kind) {
	var best *MiniSM
	for _, id := range cp.order {
		m := cp.miniSMs[id]
		if m.Kind != kind {
			continue
		}
		if m.Servers()+p.Servers > cp.limits.MiniSMMaxServers ||
			m.Shards()+p.Shards > cp.limits.MiniSMMaxShards {
			continue
		}
		if best == nil || m.Servers() < best.Servers() {
			best = m
		}
	}
	if best == nil {
		cp.nextMiniSM++
		best = &MiniSM{
			ID:   MiniSMID(fmt.Sprintf("minism-%03d", cp.nextMiniSM)),
			Kind: kind,
		}
		cp.miniSMs[best.ID] = best
		cp.order = append(cp.order, best.ID)
	}
	best.Partitions = append(best.Partitions, p)
	cp.assignment[p.ID] = best.ID
}

// MiniSMs returns the pool in creation order.
func (cp *ControlPlane) MiniSMs() []*MiniSM {
	out := make([]*MiniSM, 0, len(cp.order))
	for _, id := range cp.order {
		out = append(out, cp.miniSMs[id])
	}
	return out
}

// Partitions returns an app's partitions in creation order.
func (cp *ControlPlane) Partitions(app shard.AppID) []*Partition {
	var out []*Partition
	for _, id := range cp.appPartitions[app] {
		out = append(out, cp.partitions[id])
	}
	return out
}

// MiniSMFor returns the mini-SM managing a partition.
func (cp *ControlPlane) MiniSMFor(p PartitionID) (*MiniSM, error) {
	id, ok := cp.assignment[p]
	if !ok {
		return nil, fmt.Errorf("controlplane: unknown partition %q", p)
	}
	return cp.miniSMs[id], nil
}

// Frontend is the stateless global entry point (§6.1): it answers lookup
// queries by delegating to the registries.
type Frontend struct {
	cp *ControlPlane
}

// NewFrontend wraps a control plane.
func NewFrontend(cp *ControlPlane) *Frontend { return &Frontend{cp: cp} }

// Route returns the mini-SM responsible for an app's partition index.
func (f *Frontend) Route(app shard.AppID, partition int) (MiniSMID, error) {
	parts := f.cp.Partitions(app)
	if partition < 0 || partition >= len(parts) {
		return "", fmt.Errorf("controlplane: app %q has no partition %d", app, partition)
	}
	m, err := f.cp.MiniSMFor(parts[partition].ID)
	if err != nil {
		return "", err
	}
	return m.ID, nil
}

// ReadService builds query indices over the control-plane metadata (§6.1:
// "the read service builds indices on mini-SM's metadata to serve
// queries").
type ReadService struct {
	cp *ControlPlane
}

// NewReadService wraps a control plane.
func NewReadService(cp *ControlPlane) *ReadService { return &ReadService{cp: cp} }

// Stats summarizes the pool: counts and largest mini-SM, the numbers
// Figure 16 plots.
type Stats struct {
	RegionalMiniSMs int
	GeoMiniSMs      int
	TotalServers    int
	TotalShards     int
	MaxServers      int
	MaxShards       int
}

// Stats computes pool statistics.
func (rs *ReadService) Stats() Stats {
	var st Stats
	for _, m := range rs.cp.MiniSMs() {
		if m.Kind == Geo {
			st.GeoMiniSMs++
		} else {
			st.RegionalMiniSMs++
		}
		s, sh := m.Servers(), m.Shards()
		st.TotalServers += s
		st.TotalShards += sh
		if s > st.MaxServers {
			st.MaxServers = s
		}
		if sh > st.MaxShards {
			st.MaxShards = sh
		}
	}
	return st
}

// AppsBySize returns registered apps sorted by server count, descending —
// the Figure 15 scatter data.
func (rs *ReadService) AppsBySize() []AppSpec {
	out := make([]AppSpec, 0, len(rs.cp.apps))
	for _, a := range rs.cp.apps {
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Servers != out[j].Servers {
			return out[i].Servers > out[j].Servers
		}
		return out[i].App < out[j].App
	})
	return out
}

// --- shard scaler ---

// ScalerTarget is the minimal orchestrator surface the shard scaler needs.
type ScalerTarget interface {
	ShardIDs() []shard.ID
	ShardLoadValue(s shard.ID, r topology.Resource) float64
	TotalReplicas(s shard.ID) int
	SetReplicas(s shard.ID, n int)
}

// ScalerPolicy configures the shard scaler (§6.1: "the shard scaler
// increases or decreases a shard's replica count in response to its load
// changes").
type ScalerPolicy struct {
	Metric topology.Resource
	// ScaleUpAt / ScaleDownAt are per-replica load thresholds.
	ScaleUpAt   float64
	ScaleDownAt float64
	MinReplicas int
	MaxReplicas int
}

// Validate checks the policy.
func (p ScalerPolicy) Validate() error {
	if p.ScaleUpAt <= p.ScaleDownAt {
		return errors.New("controlplane: ScaleUpAt must exceed ScaleDownAt")
	}
	if p.MinReplicas <= 0 || p.MaxReplicas < p.MinReplicas {
		return errors.New("controlplane: bad replica bounds")
	}
	return nil
}

// Scaler adjusts per-shard replica counts.
type Scaler struct {
	policy ScalerPolicy
	target ScalerTarget
	// ScaleUps and ScaleDowns count adjustments.
	ScaleUps, ScaleDowns int
}

// NewScaler builds a scaler; the caller schedules Tick (e.g. on the
// simulation loop).
func NewScaler(target ScalerTarget, policy ScalerPolicy) (*Scaler, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	return &Scaler{policy: policy, target: target}, nil
}

// Tick examines every shard and adjusts replica counts: measured
// per-replica load above ScaleUpAt adds a replica (spreading the load over
// one more copy); below ScaleDownAt removes one.
func (s *Scaler) Tick() {
	for _, id := range s.target.ShardIDs() {
		n := s.target.TotalReplicas(id)
		if n <= 0 {
			continue
		}
		perReplica := s.target.ShardLoadValue(id, s.policy.Metric)
		switch {
		case perReplica > s.policy.ScaleUpAt && n < s.policy.MaxReplicas:
			s.target.SetReplicas(id, n+1)
			s.ScaleUps++
		case perReplica < s.policy.ScaleDownAt && n > s.policy.MinReplicas:
			s.target.SetReplicas(id, n-1)
			s.ScaleDowns++
		}
	}
}
