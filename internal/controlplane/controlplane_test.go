package controlplane

import (
	"fmt"
	"testing"

	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

func TestSmallAppSinglePartition(t *testing.T) {
	cp := New(DefaultLimits())
	parts, err := cp.RegisterApp(AppSpec{
		App: "small", Servers: 100, Shards: 5000,
		Regions: []topology.RegionID{"r1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 {
		t.Fatalf("partitions = %d, want 1", len(parts))
	}
	if parts[0].Servers != 100 || parts[0].Shards != 5000 {
		t.Fatalf("partition = %+v", parts[0])
	}
}

func TestLargeAppSplitsIntoPartitions(t *testing.T) {
	cp := New(DefaultLimits())
	// 19K servers / 2.6M shards (Fig 15's largest deployment): shards
	// dominate: ceil(2.6M / 500K) = 6 partitions.
	parts, err := cp.RegisterApp(AppSpec{
		App: "huge", Servers: 19000, Shards: 2600000,
		Regions: []topology.RegionID{"r1", "r2", "r3"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 6 {
		t.Fatalf("partitions = %d, want 6", len(parts))
	}
	totalServers, totalShards := 0, 0
	for _, p := range parts {
		totalServers += p.Servers
		totalShards += p.Shards
		if p.Servers > DefaultLimits().PartitionMaxServers ||
			p.Shards > DefaultLimits().PartitionMaxShards {
			t.Fatalf("partition over limit: %+v", p)
		}
	}
	if totalServers != 19000 || totalShards != 2600000 {
		t.Fatalf("totals = %d/%d", totalServers, totalShards)
	}
}

func TestKindSeparation(t *testing.T) {
	cp := New(DefaultLimits())
	cp.RegisterApp(AppSpec{App: "reg", Servers: 100, Shards: 100, Regions: []topology.RegionID{"r1"}})
	cp.RegisterApp(AppSpec{App: "geo", Servers: 100, Shards: 100, Regions: []topology.RegionID{"r1", "r2"}})
	regional, geo := 0, 0
	for _, m := range cp.MiniSMs() {
		switch m.Kind {
		case Regional:
			regional++
		case Geo:
			geo++
		}
		for _, p := range m.Partitions {
			want := Regional
			if len(p.Regions) > 1 {
				want = Geo
			}
			if m.Kind != want {
				t.Fatalf("partition %s on wrong mini-SM kind", p.ID)
			}
		}
	}
	if regional != 1 || geo != 1 {
		t.Fatalf("mini-SMs = %d regional, %d geo", regional, geo)
	}
}

func TestMiniSMPoolGrowsUnderLoad(t *testing.T) {
	limits := Limits{
		PartitionMaxServers: 1000,
		PartitionMaxShards:  100000,
		MiniSMMaxServers:    2000,
		MiniSMMaxShards:     200000,
	}
	cp := New(limits)
	for i := 0; i < 10; i++ {
		_, err := cp.RegisterApp(AppSpec{
			App: shard.AppID(fmt.Sprintf("app%d", i)), Servers: 1000, Shards: 1000,
			Regions: []topology.RegionID{"r1"},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// 10 x 1000 servers with 2000/miniSM => 5 mini-SMs.
	if got := len(cp.MiniSMs()); got != 5 {
		t.Fatalf("mini-SMs = %d, want 5", got)
	}
	for _, m := range cp.MiniSMs() {
		if m.Servers() > limits.MiniSMMaxServers {
			t.Fatalf("mini-SM %s over capacity: %d", m.ID, m.Servers())
		}
	}
}

func TestRegisterAppErrors(t *testing.T) {
	cp := New(DefaultLimits())
	if _, err := cp.RegisterApp(AppSpec{App: "x"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	cp.RegisterApp(AppSpec{App: "a", Servers: 1, Shards: 1, Regions: []topology.RegionID{"r"}})
	if _, err := cp.RegisterApp(AppSpec{App: "a", Servers: 1, Shards: 1, Regions: []topology.RegionID{"r"}}); err == nil {
		t.Fatal("duplicate app accepted")
	}
}

func TestFrontendRouting(t *testing.T) {
	cp := New(DefaultLimits())
	cp.RegisterApp(AppSpec{App: "a", Servers: 12000, Shards: 100, Regions: []topology.RegionID{"r1"}})
	f := NewFrontend(cp)
	id0, err := f.Route("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if id0 == "" {
		t.Fatal("empty mini-SM id")
	}
	if _, err := f.Route("a", 99); err == nil {
		t.Fatal("bad partition index accepted")
	}
	if _, err := f.Route("ghost", 0); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestReadServiceStats(t *testing.T) {
	cp := New(DefaultLimits())
	cp.RegisterApp(AppSpec{App: "a", Servers: 3000, Shards: 30000, Regions: []topology.RegionID{"r1"}})
	cp.RegisterApp(AppSpec{App: "b", Servers: 1000, Shards: 5000, Regions: []topology.RegionID{"r1", "r2"}})
	rs := NewReadService(cp)
	st := rs.Stats()
	if st.RegionalMiniSMs != 1 || st.GeoMiniSMs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TotalServers != 4000 || st.TotalShards != 35000 {
		t.Fatalf("totals = %+v", st)
	}
	apps := rs.AppsBySize()
	if len(apps) != 2 || apps[0].App != "a" {
		t.Fatalf("AppsBySize = %v", apps)
	}
}

func TestMiniSMForUnknownPartition(t *testing.T) {
	cp := New(DefaultLimits())
	if _, err := cp.MiniSMFor("ghost"); err == nil {
		t.Fatal("unknown partition accepted")
	}
}

func TestNewPanicsOnBadLimits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Limits{})
}

// fakeTarget implements ScalerTarget.
type fakeTarget struct {
	loads    map[shard.ID]float64
	replicas map[shard.ID]int
}

func (f *fakeTarget) ShardIDs() []shard.ID {
	return []shard.ID{"hot", "cold", "steady"}
}
func (f *fakeTarget) ShardLoadValue(s shard.ID, _ topology.Resource) float64 { return f.loads[s] }
func (f *fakeTarget) TotalReplicas(s shard.ID) int                           { return f.replicas[s] }
func (f *fakeTarget) SetReplicas(s shard.ID, n int)                          { f.replicas[s] = n }

func TestScalerTick(t *testing.T) {
	target := &fakeTarget{
		loads:    map[shard.ID]float64{"hot": 95, "cold": 2, "steady": 50},
		replicas: map[shard.ID]int{"hot": 2, "cold": 3, "steady": 2},
	}
	s, err := NewScaler(target, ScalerPolicy{
		Metric: topology.ResourceCPU, ScaleUpAt: 80, ScaleDownAt: 10,
		MinReplicas: 1, MaxReplicas: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Tick()
	if target.replicas["hot"] != 3 {
		t.Fatalf("hot replicas = %d, want 3", target.replicas["hot"])
	}
	if target.replicas["cold"] != 2 {
		t.Fatalf("cold replicas = %d, want 2", target.replicas["cold"])
	}
	if target.replicas["steady"] != 2 {
		t.Fatalf("steady replicas = %d, want unchanged", target.replicas["steady"])
	}
	if s.ScaleUps != 1 || s.ScaleDowns != 1 {
		t.Fatalf("counters = %d/%d", s.ScaleUps, s.ScaleDowns)
	}
}

func TestScalerRespectsBounds(t *testing.T) {
	target := &fakeTarget{
		loads:    map[shard.ID]float64{"hot": 100, "cold": 0, "steady": 50},
		replicas: map[shard.ID]int{"hot": 5, "cold": 1, "steady": 2},
	}
	s, _ := NewScaler(target, ScalerPolicy{
		Metric: topology.ResourceCPU, ScaleUpAt: 80, ScaleDownAt: 10,
		MinReplicas: 1, MaxReplicas: 5,
	})
	s.Tick()
	if target.replicas["hot"] != 5 || target.replicas["cold"] != 1 {
		t.Fatalf("bounds violated: %+v", target.replicas)
	}
}

func TestScalerPolicyValidation(t *testing.T) {
	bad := []ScalerPolicy{
		{ScaleUpAt: 1, ScaleDownAt: 2, MinReplicas: 1, MaxReplicas: 2},
		{ScaleUpAt: 2, ScaleDownAt: 1, MinReplicas: 0, MaxReplicas: 2},
		{ScaleUpAt: 2, ScaleDownAt: 1, MinReplicas: 3, MaxReplicas: 2},
	}
	for i, p := range bad {
		if _, err := NewScaler(&fakeTarget{}, p); err == nil {
			t.Fatalf("policy %d accepted", i)
		}
	}
}

func TestKindString(t *testing.T) {
	if Regional.String() != "regional" || Geo.String() != "geo-distributed" {
		t.Fatal("kind names wrong")
	}
}
