package controlplane

import (
	"fmt"
	"time"

	"shardmanager/internal/discovery"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
)

// lbFlush attributes partition publication waves in the kernel profiler.
var lbFlush = sim.LabelFor("controlplane", "partition_flush")

// ShardRouter maps an application's global shard index to the partition that
// owns it, mirroring the contiguous near-equal split RegisterApp performs
// (chunk): partition i owns chunk(total, n, i) consecutive shards. This is
// the frontend-side counterpart of split — the piece a client library needs
// to find which mini-SM to ask about a shard.
type ShardRouter struct {
	app    shard.AppID
	total  int
	parts  int
	base   int // shards per partition before remainder spread
	rem    int // first rem partitions hold base+1
	bound  int // global index where base+1-sized partitions end
	starts []int
}

// NewShardRouter builds the router for an app split into parts partitions of
// totalShards, matching RegisterApp's chunking.
func NewShardRouter(app shard.AppID, totalShards, parts int) *ShardRouter {
	if parts <= 0 || totalShards < 0 {
		panic("controlplane: NewShardRouter needs parts > 0 and shards >= 0")
	}
	r := &ShardRouter{
		app:   app,
		total: totalShards,
		parts: parts,
		base:  totalShards / parts,
		rem:   totalShards % parts,
	}
	r.bound = r.rem * (r.base + 1)
	r.starts = make([]int, parts+1)
	for i := 0; i < parts; i++ {
		r.starts[i+1] = r.starts[i] + chunk(totalShards, parts, i)
	}
	return r
}

// Partitions returns the partition count.
func (r *ShardRouter) Partitions() int { return r.parts }

// PartitionOf returns the partition owning global shard index idx, in O(1).
func (r *ShardRouter) PartitionOf(idx int) int {
	if idx < 0 || idx >= r.total {
		panic(fmt.Sprintf("controlplane: shard index %d out of [0,%d)", idx, r.total))
	}
	if idx < r.bound {
		return idx / (r.base + 1)
	}
	return r.rem + (idx-r.bound)/r.base
}

// Range returns the half-open global index range [lo, hi) partition p owns.
func (r *ShardRouter) Range(p int) (lo, hi int) {
	if p < 0 || p >= r.parts {
		panic(fmt.Sprintf("controlplane: partition %d out of [0,%d)", p, r.parts))
	}
	return r.starts[p], r.starts[p+1]
}

// PartitionApp returns the discovery app ID a partition publishes under:
// each partition is its own publication stream ("app/pNNN"), so mini-SMs
// publish independently and clients subscribe only to partitions they touch.
func (r *ShardRouter) PartitionApp(p int) shard.AppID {
	if p < 0 || p >= r.parts {
		panic(fmt.Sprintf("controlplane: partition %d out of [0,%d)", p, r.parts))
	}
	return shard.AppID(fmt.Sprintf("%s/p%03d", r.app, p))
}

// PublisherStats accumulate one partition publisher's publication costs —
// the raw material for BENCH_controlplane.json's full-vs-delta comparison.
type PublisherStats struct {
	FullPublishes  int64
	DeltaPublishes int64
	// FullBytes / DeltaBytes are the approximate wire sizes published on
	// each path, under the same accounting (shard.Map/Delta ApproxBytes) so
	// the ratio is meaningful.
	FullBytes  int64
	DeltaBytes int64
	// ChangedEntries counts staged edits across all flushes.
	ChangedEntries int64
}

// Bytes is the total approximate wire size published on both paths.
func (s PublisherStats) Bytes() int64 { return s.FullBytes + s.DeltaBytes }

// PartitionPublisher maintains one partition's authoritative shard map and
// publishes updates to discovery — as O(changed) deltas in delta mode, or as
// full snapshots (the pre-delta control plane) for comparison. Edits are
// staged between flushes; Flush stamps a new version and publishes exactly
// one update, so steady-state publication cost is proportional to churn, not
// partition size. Buffers (the staged delta and the full-publish scratch
// map) ping-pong through discovery's recycling contracts, so a warm
// publisher allocates nothing per flush.
type PartitionPublisher struct {
	disc  *discovery.Service
	app   shard.AppID
	delta bool

	cur     *shard.Map // authoritative map, version = last flushed
	scratch *shard.Map // full-mode ping-pong buffer
	staged  *shard.Delta
	dirty   int // staged edits since the last flush

	Stats PublisherStats
}

// NewPartitionPublisher wraps one partition's publication stream. initial is
// adopted (not copied) as the authoritative map; its version must be 0 — the
// first Flush publishes version 1 as a full snapshot (discovery requires a
// full base before deltas).
func NewPartitionPublisher(disc *discovery.Service, app shard.AppID, initial *shard.Map, deltaMode bool) *PartitionPublisher {
	if initial == nil || initial.App != app {
		panic("controlplane: NewPartitionPublisher needs an initial map for app")
	}
	if initial.Version != 0 {
		panic("controlplane: initial map must be unversioned (Flush assigns versions)")
	}
	return &PartitionPublisher{
		disc:   disc,
		app:    app,
		delta:  deltaMode,
		cur:    initial,
		staged: shard.NewDelta(app),
	}
}

// Map exposes the authoritative map (read-only to callers).
func (p *PartitionPublisher) Map() *shard.Map { return p.cur }

// SetOne stages a single-replica reassignment of shard s — the bulk of
// steady-state control-plane churn — mirroring it into the authoritative map.
func (p *PartitionPublisher) SetOne(s shard.ID, server shard.ServerID, role shard.Role) {
	p.staged.SetOne(s, server, role)
	e := p.cur.Entries[s]
	if cap(e) < 1 {
		e = make([]shard.Assignment, 1, 4)
	} else {
		e = e[:1]
	}
	e[0] = shard.Assignment{Server: server, Role: role}
	p.cur.Entries[s] = e
	p.dirty++
}

// Set stages shard s's full new assignment list.
func (p *PartitionPublisher) Set(s shard.ID, as []shard.Assignment) {
	p.staged.Set(s, as)
	p.cur.Entries[s] = append(p.cur.Entries[s][:0], as...)
	p.dirty++
}

// Remove stages the removal of shard s.
func (p *PartitionPublisher) Remove(s shard.ID) {
	p.staged.Remove(s)
	delete(p.cur.Entries, s)
	p.dirty++
}

// Dirty returns the number of edits staged since the last flush.
func (p *PartitionPublisher) Dirty() int { return p.dirty }

// Flush publishes the staged edits as one new map version and clears the
// staging buffer. The first flush (and every flush in full mode) publishes a
// full snapshot; later delta-mode flushes publish only the staged delta. A
// flush with nothing staged still publishes (a heartbeat republication),
// which in delta mode costs O(1).
func (p *PartitionPublisher) Flush() {
	from := p.cur.Version
	p.cur.Version++
	p.Stats.ChangedEntries += int64(p.staged.Len())
	if p.delta && from > 0 {
		p.staged.App, p.staged.FromVersion, p.staged.ToVersion, p.staged.Gen = p.app, from, p.cur.Version, 0
		p.Stats.DeltaPublishes++
		p.Stats.DeltaBytes += p.staged.ApproxBytes()
		next := p.disc.PublishDelta(p.staged)
		if next == nil {
			next = shard.NewDelta(p.app)
		}
		p.staged = next
	} else {
		p.Stats.FullPublishes++
		p.Stats.FullBytes += p.cur.ApproxBytes()
		if p.delta {
			// Delta mode publishes a full snapshot only as the base; the
			// clone keeps cur private so later deltas can mutate it freely.
			p.disc.Publish(p.cur)
		} else {
			if p.scratch == nil {
				p.scratch = shard.NewMap(p.app)
			}
			p.scratch = p.disc.PublishScratch(p.cur, p.scratch)
			if p.scratch == nil {
				// First publish: discovery adopted the scratch as current and
				// had no previous map to return; reseed so the ping-pong
				// starts on the next flush.
				p.scratch = shard.NewMap(p.app)
			}
		}
	}
	p.staged.Reset(p.app, 0, 0, 0)
	p.dirty = 0
}

// FlushWave schedules one batched cross-partition publication wave on the
// sim loop: publishers flush in groups of batchSize per event, consecutive
// groups stagger apart, and done (optional) runs after the last group. A
// wave models §6.1's independent mini-SMs pushing their partitions' updates
// without a global synchronization point: the control plane's total publish
// work is spread across O(parts/batchSize) events instead of one giant stop-
// the-world broadcast.
func FlushWave(loop *sim.Loop, pubs []*PartitionPublisher, batchSize int, stagger time.Duration, done func()) {
	if batchSize < 1 {
		batchSize = 1
	}
	groups := (len(pubs) + batchSize - 1) / batchSize
	for g := 0; g < groups; g++ {
		lo, hi := g*batchSize, (g+1)*batchSize
		if hi > len(pubs) {
			hi = len(pubs)
		}
		batch := pubs[lo:hi]
		last := g == groups-1
		loop.AfterL(time.Duration(g)*stagger, lbFlush, func() {
			for _, p := range batch {
				p.Flush()
			}
			if last && done != nil {
				done()
			}
		})
	}
	if groups == 0 && done != nil {
		loop.AfterL(0, lbFlush, done)
	}
}
