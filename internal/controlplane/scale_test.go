package controlplane

import (
	"fmt"
	"testing"
	"time"

	"shardmanager/internal/discovery"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

// --- chunk / router boundary behavior ---

// TestChunkPartitionsExactly pins chunk's off-by-one behavior: the parts sum
// to the total, differ by at most one, and the larger parts come first —
// exactly the remainder spread split() and ShardRouter assume.
func TestChunkPartitionsExactly(t *testing.T) {
	cases := []struct{ total, n int }{
		{10, 3}, {9, 3}, {1, 1}, {0, 4}, {3, 4}, {7, 7}, {100, 1},
		{500000, 7}, {10_000_000, 200},
	}
	for _, c := range cases {
		sum, prev := 0, -1
		for i := 0; i < c.n; i++ {
			got := chunk(c.total, c.n, i)
			sum += got
			base := c.total / c.n
			if got != base && got != base+1 {
				t.Fatalf("chunk(%d,%d,%d) = %d, not base or base+1", c.total, c.n, i, got)
			}
			if prev >= 0 && got > prev {
				t.Fatalf("chunk(%d,%d,%d) = %d grew after %d: larger parts must come first",
					c.total, c.n, i, got, prev)
			}
			prev = got
		}
		if sum != c.total {
			t.Fatalf("chunk(%d,%d,·) sums to %d", c.total, c.n, sum)
		}
	}
}

func TestShardRouterMatchesChunk(t *testing.T) {
	for _, c := range []struct{ total, parts int }{
		{10, 3}, {9, 3}, {1, 1}, {3, 4}, {1000, 7}, {120000, 13},
	} {
		r := NewShardRouter("app", c.total, c.parts)
		// Every partition's range has exactly chunk() shards and the ranges
		// tile [0, total).
		next := 0
		for p := 0; p < c.parts; p++ {
			lo, hi := r.Range(p)
			if lo != next {
				t.Fatalf("%+v: partition %d starts at %d, want %d", c, p, lo, next)
			}
			if hi-lo != chunk(c.total, c.parts, p) {
				t.Fatalf("%+v: partition %d size %d != chunk %d", c, p, hi-lo, chunk(c.total, c.parts, p))
			}
			next = hi
		}
		if next != c.total {
			t.Fatalf("%+v: ranges tile to %d", c, next)
		}
		// PartitionOf agrees with the ranges at every index (O(1) formula vs
		// the table).
		for idx := 0; idx < c.total; idx++ {
			p := r.PartitionOf(idx)
			if lo, hi := r.Range(p); idx < lo || idx >= hi {
				t.Fatalf("%+v: PartitionOf(%d) = %d whose range is [%d,%d)", c, idx, p, lo, hi)
			}
		}
	}
}

func TestShardRouterPanicsOutOfRange(t *testing.T) {
	r := NewShardRouter("app", 10, 3)
	for _, fn := range []func(){
		func() { r.PartitionOf(-1) },
		func() { r.PartitionOf(10) },
		func() { r.Range(3) },
		func() { r.PartitionApp(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

// --- Frontend.Route partition boundaries ---

func TestFrontendRoutePartitionBoundaries(t *testing.T) {
	cp := New(Limits{
		PartitionMaxServers: 100, PartitionMaxShards: 1000,
		MiniSMMaxServers: 100, MiniSMMaxShards: 1000,
	})
	// 250 servers -> 3 partitions, each on its own mini-SM (limits allow one
	// partition per mini-SM).
	parts, err := cp.RegisterApp(AppSpec{App: "a", Servers: 250, Shards: 300,
		Regions: []topology.RegionID{"r1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 3 {
		t.Fatalf("partitions = %d, want 3", len(parts))
	}
	f := NewFrontend(cp)
	if _, err := f.Route("a", -1); err == nil {
		t.Fatal("negative partition accepted")
	}
	seen := map[MiniSMID]bool{}
	for p := 0; p < 3; p++ {
		id, err := f.Route("a", p)
		if err != nil {
			t.Fatalf("partition %d: %v", p, err)
		}
		seen[id] = true
	}
	if len(seen) != 3 {
		t.Fatalf("3 partitions landed on %d mini-SMs, want 3 (limits force 1:1)", len(seen))
	}
	if _, err := f.Route("a", 3); err == nil {
		t.Fatal("one-past-the-end partition accepted")
	}
}

// --- Scaler.Tick edge cases ---

// boundaryTarget reports loads exactly at the thresholds.
type boundaryTarget struct {
	ids      []shard.ID
	loads    map[shard.ID]float64
	replicas map[shard.ID]int
	sets     int
}

func (f *boundaryTarget) ShardIDs() []shard.ID                                   { return f.ids }
func (f *boundaryTarget) ShardLoadValue(s shard.ID, _ topology.Resource) float64 { return f.loads[s] }
func (f *boundaryTarget) TotalReplicas(s shard.ID) int                           { return f.replicas[s] }
func (f *boundaryTarget) SetReplicas(s shard.ID, n int) {
	f.replicas[s] = n
	f.sets++
}

func TestScalerTickThresholdBoundaries(t *testing.T) {
	target := &boundaryTarget{
		ids: []shard.ID{"at-up", "at-down", "zero-replicas"},
		loads: map[shard.ID]float64{
			"at-up":   80, // exactly ScaleUpAt: strict >, no action
			"at-down": 10, // exactly ScaleDownAt: strict <, no action
		},
		replicas: map[shard.ID]int{"at-up": 2, "at-down": 2, "zero-replicas": 0},
	}
	s, err := NewScaler(target, ScalerPolicy{
		Metric: topology.ResourceCPU, ScaleUpAt: 80, ScaleDownAt: 10,
		MinReplicas: 1, MaxReplicas: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Tick()
	if target.sets != 0 {
		t.Fatalf("threshold-boundary loads triggered %d adjustments, want 0", target.sets)
	}
	if s.ScaleUps != 0 || s.ScaleDowns != 0 {
		t.Fatalf("counters = %d/%d, want 0/0", s.ScaleUps, s.ScaleDowns)
	}
	// Repeated ticks on a shard pinned at a bound never oscillate.
	target.loads["at-up"] = 100
	target.replicas["at-up"] = 5 // already at MaxReplicas
	for i := 0; i < 3; i++ {
		s.Tick()
	}
	if target.replicas["at-up"] != 5 || s.ScaleUps != 0 {
		t.Fatalf("MaxReplicas not respected across ticks: %d replicas, %d ups",
			target.replicas["at-up"], s.ScaleUps)
	}
}

// --- PartitionPublisher ---

func buildPartitionMap(app shard.AppID, shards int) *shard.Map {
	m := shard.NewMap(app)
	for i := 0; i < shards; i++ {
		m.Entries[shard.ID(fmt.Sprintf("s%05d", i))] = []shard.Assignment{
			{Server: shard.ServerID(fmt.Sprintf("srv%03d", i%7)), Role: shard.RolePrimary},
		}
	}
	return m
}

// TestPartitionPublisherDeltaMatchesFull drives identical churn through a
// delta-mode and a full-mode publisher and checks the subscriber-visible
// maps stay deep-equal, while the delta stream moves far fewer bytes.
func TestPartitionPublisherDeltaMatchesFull(t *testing.T) {
	const shards = 500
	type world struct {
		loop *sim.Loop
		pub  *PartitionPublisher
		f    *shard.Map
	}
	mk := func(deltaMode bool) *world {
		loop := sim.NewLoop(3)
		disc := discovery.NewService(loop, discovery.FixedDelay(time.Millisecond))
		w := &world{loop: loop}
		w.pub = NewPartitionPublisher(disc, "app/p000", buildPartitionMap("app/p000", shards), deltaMode)
		disc.SubscribeDelta("app/p000",
			func(m *shard.Map) { w.f = m.CloneInto(w.f) },
			func(d *shard.Delta) {
				if err := w.f.ApplyDelta(d); err != nil {
					t.Fatalf("follower: %v", err)
				}
			})
		return w
	}
	wd, wf := mk(true), mk(false)
	step := func(w *world, round int) {
		for k := 0; k < 20; k++ {
			idx := (round*37 + k*13) % shards
			w.pub.SetOne(shard.ID(fmt.Sprintf("s%05d", idx)),
				shard.ServerID(fmt.Sprintf("srv%03d", (round+k)%11)), shard.RolePrimary)
		}
		if round%5 == 4 {
			w.pub.Remove(shard.ID(fmt.Sprintf("s%05d", round%shards)))
		}
		w.pub.Flush()
		w.loop.RunFor(10 * time.Millisecond)
	}
	for round := 0; round < 12; round++ {
		step(wd, round)
		step(wf, round)
	}
	if wd.f.Version != wf.f.Version || len(wd.f.Entries) != len(wf.f.Entries) {
		t.Fatalf("followers diverged: v%d/%d entries vs v%d/%d entries",
			wd.f.Version, len(wd.f.Entries), wf.f.Version, len(wf.f.Entries))
	}
	for s, as := range wf.f.Entries {
		das, ok := wd.f.Entries[s]
		if !ok || len(das) != len(as) || das[0] != as[0] {
			t.Fatalf("shard %s: delta follower %v vs full follower %v", s, das, as)
		}
	}
	// Stats: the first flush publishes the full base, the other 11 rounds go
	// out as deltas; the full-mode publisher pays a full snapshot every
	// round. The delta stream must be at least 10x smaller.
	if wd.pub.Stats.FullPublishes != 1 || wd.pub.Stats.DeltaPublishes != 11 {
		t.Fatalf("delta publisher stats: %+v", wd.pub.Stats)
	}
	if wf.pub.Stats.FullPublishes != 12 || wf.pub.Stats.DeltaPublishes != 0 {
		t.Fatalf("full publisher stats: %+v", wf.pub.Stats)
	}
	// Per-publish, the delta stream must be at least 10x smaller than the
	// full snapshots the legacy path keeps re-sending.
	deltaPer := wd.pub.Stats.DeltaBytes / wd.pub.Stats.DeltaPublishes
	fullPer := wf.pub.Stats.FullBytes / wf.pub.Stats.FullPublishes
	if deltaPer*10 >= fullPer {
		t.Fatalf("delta bytes/publish %d not <10%% of full %d", deltaPer, fullPer)
	}
}

// TestPartitionPublisherSteadyStateAllocs pins the warm-path contract: a
// delta-mode stage+flush+deliver cycle allocates nothing once buffers have
// ping-ponged.
func TestPartitionPublisherSteadyStateAllocs(t *testing.T) {
	loop := sim.NewLoop(1)
	disc := discovery.NewService(loop, discovery.FixedDelay(time.Millisecond))
	pub := NewPartitionPublisher(disc, "app/p000", buildPartitionMap("app/p000", 200), true)
	follower := shard.NewMap("app/p000")
	disc.SubscribeDelta("app/p000",
		func(m *shard.Map) { follower = m.CloneInto(follower) },
		func(d *shard.Delta) {
			if err := follower.ApplyDelta(d); err != nil {
				t.Fatal(err)
			}
		})
	servers := make([]shard.ServerID, 7)
	for i := range servers {
		servers[i] = shard.ServerID(fmt.Sprintf("srv%03d", i))
	}
	for i := 0; i < 4; i++ { // warm the ping-pong and delivery freelist
		pub.SetOne("s00005", servers[i], shard.RolePrimary)
		pub.Flush()
		loop.RunFor(10 * time.Millisecond)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		pub.SetOne("s00005", servers[i%len(servers)], shard.RolePrimary)
		pub.Flush()
		loop.RunFor(10 * time.Millisecond)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state stage+flush allocates %.1f/run, want 0", allocs)
	}
}

func TestFlushWaveBatchesAndCompletes(t *testing.T) {
	loop := sim.NewLoop(1)
	disc := discovery.NewService(loop, discovery.FixedDelay(time.Millisecond))
	const parts = 10
	pubs := make([]*PartitionPublisher, parts)
	for i := range pubs {
		app := shard.AppID(fmt.Sprintf("app/p%03d", i))
		pubs[i] = NewPartitionPublisher(disc, app, buildPartitionMap(app, 10), true)
	}
	var doneAt time.Duration
	FlushWave(loop, pubs, 4, 10*time.Millisecond, func() { doneAt = loop.Now() })
	loop.RunFor(time.Second)
	// 10 publishers in batches of 4 -> 3 groups at 0/10/20ms.
	if doneAt != 20*time.Millisecond {
		t.Fatalf("wave completed at %v, want 20ms", doneAt)
	}
	for i, p := range pubs {
		if p.Map().Version != 1 {
			t.Fatalf("publisher %d not flushed (v%d)", i, p.Map().Version)
		}
	}
}
