package coord

import (
	"fmt"
	"testing"
)

func BenchmarkCreateGetSet(b *testing.B) {
	s := NewStore()
	s.Create("/bench", nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := fmt.Sprintf("/bench/n%d", i)
		if err := s.Create(path, []byte("x"), nil); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Get(path); err != nil {
			b.Fatal(err)
		}
		if _, err := s.Set(path, []byte("y"), -1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEphemeralSessionChurn(b *testing.B) {
	s := NewStore()
	s.Create("/servers", nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess := s.NewSession()
		for j := 0; j < 8; j++ {
			if err := s.Create(fmt.Sprintf("/servers/s%d-%d", i, j), nil, sess); err != nil {
				b.Fatal(err)
			}
		}
		sess.Expire()
	}
}

func BenchmarkChildWatchFanout(b *testing.B) {
	s := NewStore()
	s.Create("/servers", nil, nil)
	fired := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.WatchChildren("/servers", func(Event) { fired++ })
		if err := s.Create(fmt.Sprintf("/servers/s%d", i), nil, nil); err != nil {
			b.Fatal(err)
		}
	}
	if fired != b.N {
		b.Fatalf("fired = %d, want %d", fired, b.N)
	}
}
