// Package coord implements a ZooKeeper-like coordination store.
//
// Shard Manager uses ZooKeeper for three things (§3.2): storing the
// orchestrator's persistent state, letting application servers read their
// shard assignment at start-up without the SM control plane, and detecting
// application-server failures by watching ephemeral nodes created by the SM
// library. This package provides the needed primitives: a hierarchical
// namespace of versioned znodes, sessions with session-bound ephemeral
// nodes, and watches on node data and children.
//
// The store is an in-process substitute for a real ZooKeeper ensemble. It is
// safe for concurrent use; watch callbacks are invoked outside the store's
// lock, after the mutation that triggered them committed.
package coord

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"shardmanager/internal/trace"
)

// Errors returned by store operations.
var (
	ErrNoNode        = errors.New("coord: node does not exist")
	ErrNodeExists    = errors.New("coord: node already exists")
	ErrBadVersion    = errors.New("coord: version mismatch")
	ErrNotEmpty      = errors.New("coord: node has children")
	ErrSessionClosed = errors.New("coord: session closed")
	ErrBadPath       = errors.New("coord: malformed path")
	ErrUnavailable   = errors.New("coord: service unavailable")
)

// EventType describes what changed at a watched path.
type EventType int

// Watch event types.
const (
	EventCreated EventType = iota
	EventDataChanged
	EventDeleted
	EventChildrenChanged
)

// String returns the event-type name.
func (e EventType) String() string {
	switch e {
	case EventCreated:
		return "created"
	case EventDataChanged:
		return "data-changed"
	case EventDeleted:
		return "deleted"
	case EventChildrenChanged:
		return "children-changed"
	default:
		return fmt.Sprintf("event(%d)", int(e))
	}
}

// Event is delivered to watchers.
type Event struct {
	Type EventType
	Path string
}

// Watcher receives watch events. Like ZooKeeper watches, a watcher fires
// once and must be re-registered; this forces callers to re-read state and
// keeps the notify path simple.
type Watcher func(Event)

// Stat carries node metadata.
type Stat struct {
	Version   int
	Ephemeral bool
	NumChild  int
}

type node struct {
	data     []byte
	version  int
	ephem    bool
	owner    *Session // non-nil for ephemeral nodes
	children map[string]*node
	// one-shot watches
	dataWatch  []Watcher
	childWatch []Watcher
}

func newNode() *node {
	return &node{children: make(map[string]*node)}
}

// Store is the coordination service. Create one with NewStore.
type Store struct {
	mu       sync.Mutex
	root     *node
	sessions map[int64]*Session
	nextSess int64
	// epoch is the store-wide fencing counter. Every session and every
	// orchestrator publish draws a fresh value, so "newer" is totally
	// ordered across sessions, role grants, and shard-map generations —
	// the fencing-token construction from the MIT 6.824 Spanner lecture's
	// "two servers both believe they own a shard" discussion.
	epoch  int64
	tracer *trace.Tracer
	// writeGate, if set, is consulted before every mutating client
	// operation (Create/Set/Delete) and may veto it, typically with
	// ErrUnavailable. Fault injection uses it to model znode-write stalls;
	// server-side cleanup (ephemeral deletion on session expiry) is not
	// gated, matching a ZooKeeper ensemble that can still expire sessions
	// while rejecting client writes.
	writeGate func(op, path string) error
	// writeObs observe every committed mutation (op "create", "set",
	// "delete", or "session-expire") after it applied. They fire outside
	// the store's lock and must draw no randomness; the runtime auditor
	// uses them for ownership timelines.
	writeObs []func(op, path string)
}

// AddWriteObserver registers an observer of committed mutations
// (append-only; observers cannot be removed).
func (s *Store) AddWriteObserver(fn func(op, path string)) {
	if fn == nil {
		panic("coord: AddWriteObserver(nil)")
	}
	s.mu.Lock()
	s.writeObs = append(s.writeObs, fn)
	s.mu.Unlock()
}

// notifyWrite reports one committed mutation to the write observers.
func (s *Store) notifyWrite(op, path string) {
	s.mu.Lock()
	obs := s.writeObs
	s.mu.Unlock()
	for _, fn := range obs {
		fn(op, path)
	}
}

// SetWriteGate installs (or, with nil, removes) the write gate.
func (s *Store) SetWriteGate(gate func(op, path string) error) {
	s.mu.Lock()
	s.writeGate = gate
	s.mu.Unlock()
}

// gated returns the gate's verdict for one mutating op (nil when open).
func (s *Store) gated(op, path string) error {
	s.mu.Lock()
	g := s.writeGate
	s.mu.Unlock()
	if g == nil {
		return nil
	}
	return g(op, path)
}

// SetTracer attaches a tracer; every watch delivery is recorded as a
// "watch_fire" event. The store has no event loop of its own, so unlike the
// loop-bound components it is wired explicitly. Pass nil to disable.
func (s *Store) SetTracer(tr *trace.Tracer) {
	s.mu.Lock()
	s.tracer = tr
	s.mu.Unlock()
}

// NewStore returns an empty store containing only the root node "/".
func NewStore() *Store {
	return &Store{root: newNode(), sessions: make(map[int64]*Session)}
}

// NextEpoch atomically increments and returns the store's fencing epoch.
// Values are strictly positive and never reused.
func (s *Store) NextEpoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	return s.epoch
}

// Epoch returns the last epoch handed out by NextEpoch (0 before any).
func (s *Store) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Session groups ephemeral nodes; closing or expiring the session deletes
// them, which is how the orchestrator detects server failures.
type Session struct {
	store    *Store
	id       int64
	gen      int64
	closed   bool
	ephem    map[string]struct{}
	onExpire []func()
}

// NewSession opens a session.
func (s *Store) NewSession() *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSess++
	s.epoch++
	sess := &Session{store: s, id: s.nextSess, gen: s.epoch, ephem: make(map[string]struct{})}
	s.sessions[sess.id] = sess
	return sess
}

// ID returns the session's unique id.
func (sess *Session) ID() int64 { return sess.id }

// Generation returns the fencing epoch assigned when the session was
// created. Any epoch drawn after this session opened — in particular the
// generation of any shard-map publish or role grant issued after the
// session expired — is strictly greater, so a server that fences itself at
// its session generation can never outrank a post-expiry grant.
func (sess *Session) Generation() int64 { return sess.gen }

// OnExpire registers fn to run when the session closes or expires. Hooks
// fire outside the store's lock, after the session's ephemeral nodes are
// deleted and their watches dispatched; they must draw no randomness. The
// SM library uses this as the lease-loss signal that triggers self-fencing.
func (sess *Session) OnExpire(fn func()) {
	if fn == nil {
		panic("coord: OnExpire(nil)")
	}
	sess.store.mu.Lock()
	if sess.closed {
		sess.store.mu.Unlock()
		fn()
		return
	}
	sess.onExpire = append(sess.onExpire, fn)
	sess.store.mu.Unlock()
}

// Closed reports whether the session has been closed or expired.
func (sess *Session) Closed() bool {
	sess.store.mu.Lock()
	defer sess.store.mu.Unlock()
	return sess.closed
}

// Close ends the session, deleting its ephemeral nodes and firing their
// watches. Closing twice is a no-op.
func (sess *Session) Close() {
	sess.store.expire(sess)
}

// Expire is an alias for Close that reads better at failure-injection sites.
func (sess *Session) Expire() { sess.store.expire(sess) }

func (s *Store) expire(sess *Session) {
	s.mu.Lock()
	if sess.closed {
		s.mu.Unlock()
		return
	}
	sess.closed = true
	delete(s.sessions, sess.id)
	paths := make([]string, 0, len(sess.ephem))
	for p := range sess.ephem {
		paths = append(paths, p)
	}
	// Delete deepest-first so parents empty out correctly.
	sort.Slice(paths, func(i, j int) bool { return len(paths[i]) > len(paths[j]) })
	var fire []pendingEvent
	for _, p := range paths {
		fire = append(fire, s.deleteLocked(p)...)
	}
	hooks := sess.onExpire
	sess.onExpire = nil
	s.mu.Unlock()
	s.dispatch(fire)
	for _, p := range paths {
		s.notifyWrite("session-expire", p)
	}
	for _, fn := range hooks {
		fn()
	}
}

type pendingEvent struct {
	watchers []Watcher
	ev       Event
}

// dispatch fires watch callbacks outside the store's lock.
func (s *Store) dispatch(pend []pendingEvent) {
	if len(pend) == 0 {
		return
	}
	s.mu.Lock()
	tr := s.tracer
	s.mu.Unlock()
	for _, p := range pend {
		if tr.Enabled() {
			tr.Event("coord", "watch_fire", 0,
				trace.String("path", p.ev.Path),
				trace.String("type", p.ev.Type.String()),
				trace.Int("watchers", len(p.watchers)))
		}
		for _, w := range p.watchers {
			w(p.ev)
		}
	}
}

// splitPath validates and splits an absolute path like "/a/b/c".
func splitPath(path string) ([]string, error) {
	if path == "/" {
		return nil, nil
	}
	if !strings.HasPrefix(path, "/") || strings.HasSuffix(path, "/") {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	parts := strings.Split(path[1:], "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
		}
	}
	return parts, nil
}

func (s *Store) lookup(path string) (*node, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	n := s.root
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoNode, path)
		}
		n = child
	}
	return n, nil
}

func parentPath(path string) string {
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/"
	}
	return path[:i]
}

// Create makes a new node at path with data. Parent must exist. If sess is
// non-nil the node is ephemeral and bound to the session.
func (s *Store) Create(path string, data []byte, sess *Session) error {
	if err := s.gated("create", path); err != nil {
		return err
	}
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return fmt.Errorf("%w: cannot create root", ErrNodeExists)
	}
	s.mu.Lock()
	if sess != nil && sess.closed {
		s.mu.Unlock()
		return ErrSessionClosed
	}
	parent := s.root
	for _, p := range parts[:len(parts)-1] {
		child, ok := parent.children[p]
		if !ok {
			s.mu.Unlock()
			return fmt.Errorf("%w: parent of %q", ErrNoNode, path)
		}
		parent = child
	}
	name := parts[len(parts)-1]
	if _, dup := parent.children[name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNodeExists, path)
	}
	n := newNode()
	n.data = append([]byte(nil), data...)
	if sess != nil {
		n.ephem = true
		n.owner = sess
		sess.ephem[path] = struct{}{}
	}
	parent.children[name] = n
	var fire []pendingEvent
	if len(parent.childWatch) > 0 {
		fire = append(fire, pendingEvent{parent.childWatch, Event{EventChildrenChanged, parentPath(path)}})
		parent.childWatch = nil
	}
	s.mu.Unlock()
	s.dispatch(fire)
	s.notifyWrite("create", path)
	return nil
}

// CreateAll creates any missing intermediate nodes (persistent, empty) and
// then the final node with data.
func (s *Store) CreateAll(path string, data []byte, sess *Session) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	prefix := ""
	for _, p := range parts[:max(0, len(parts)-1)] {
		prefix += "/" + p
		if err := s.Create(prefix, nil, nil); err != nil && !errors.Is(err, ErrNodeExists) {
			return err
		}
	}
	return s.Create(path, data, sess)
}

// Get returns the data and stat at path.
func (s *Store) Get(path string) ([]byte, Stat, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.lookup(path)
	if err != nil {
		return nil, Stat{}, err
	}
	return append([]byte(nil), n.data...), statOf(n), nil
}

func statOf(n *node) Stat {
	return Stat{Version: n.version, Ephemeral: n.ephem, NumChild: len(n.children)}
}

// Set replaces the data at path. If version >= 0 it must match the node's
// current version (compare-and-swap); pass -1 to overwrite unconditionally.
func (s *Store) Set(path string, data []byte, version int) (Stat, error) {
	if err := s.gated("set", path); err != nil {
		return Stat{}, err
	}
	s.mu.Lock()
	n, err := s.lookup(path)
	if err != nil {
		s.mu.Unlock()
		return Stat{}, err
	}
	if version >= 0 && version != n.version {
		s.mu.Unlock()
		return Stat{}, fmt.Errorf("%w: %q have %d want %d", ErrBadVersion, path, n.version, version)
	}
	n.data = append([]byte(nil), data...)
	n.version++
	st := statOf(n)
	var fire []pendingEvent
	if len(n.dataWatch) > 0 {
		fire = append(fire, pendingEvent{n.dataWatch, Event{EventDataChanged, path}})
		n.dataWatch = nil
	}
	s.mu.Unlock()
	s.dispatch(fire)
	s.notifyWrite("set", path)
	return st, nil
}

// Delete removes the node at path. If version >= 0 it must match. Nodes with
// children cannot be deleted.
func (s *Store) Delete(path string, version int) error {
	if err := s.gated("delete", path); err != nil {
		return err
	}
	s.mu.Lock()
	n, err := s.lookup(path)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if version >= 0 && version != n.version {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q have %d want %d", ErrBadVersion, path, n.version, version)
	}
	if len(n.children) > 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotEmpty, path)
	}
	fire := s.deleteLocked(path)
	s.mu.Unlock()
	s.dispatch(fire)
	s.notifyWrite("delete", path)
	return nil
}

// deleteLocked removes path (which must exist and be childless) and returns
// the watch events to dispatch. Caller holds the lock.
func (s *Store) deleteLocked(path string) []pendingEvent {
	parts, err := splitPath(path)
	if err != nil || len(parts) == 0 {
		return nil
	}
	parent := s.root
	for _, p := range parts[:len(parts)-1] {
		child, ok := parent.children[p]
		if !ok {
			return nil
		}
		parent = child
	}
	name := parts[len(parts)-1]
	n, ok := parent.children[name]
	if !ok {
		return nil
	}
	delete(parent.children, name)
	if n.owner != nil {
		delete(n.owner.ephem, path)
	}
	var fire []pendingEvent
	if len(n.dataWatch) > 0 {
		fire = append(fire, pendingEvent{n.dataWatch, Event{EventDeleted, path}})
	}
	if len(n.childWatch) > 0 {
		fire = append(fire, pendingEvent{n.childWatch, Event{EventDeleted, path}})
	}
	if len(parent.childWatch) > 0 {
		fire = append(fire, pendingEvent{parent.childWatch, Event{EventChildrenChanged, parentPath(path)}})
		parent.childWatch = nil
	}
	return fire
}

// Exists reports whether a node exists at path (false on malformed paths).
func (s *Store) Exists(path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := s.lookup(path)
	return err == nil
}

// Children returns the sorted child names of path.
func (s *Store) Children(path string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.lookup(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(n.children))
	for name := range n.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// WatchData registers a one-shot watcher for data changes or deletion of the
// node at path. The node must exist.
func (s *Store) WatchData(path string, w Watcher) error {
	if w == nil {
		return errors.New("coord: nil watcher")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.lookup(path)
	if err != nil {
		return err
	}
	n.dataWatch = append(n.dataWatch, w)
	return nil
}

// WatchChildren registers a one-shot watcher for child creation/deletion
// under path (or deletion of path itself). The node must exist.
func (s *Store) WatchChildren(path string, w Watcher) error {
	if w == nil {
		return errors.New("coord: nil watcher")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.lookup(path)
	if err != nil {
		return err
	}
	n.childWatch = append(n.childWatch, w)
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
