package coord

import (
	"errors"
	"testing"
)

func TestCreateGetSetDelete(t *testing.T) {
	s := NewStore()
	if err := s.Create("/a", []byte("one"), nil); err != nil {
		t.Fatal(err)
	}
	data, st, err := s.Get("/a")
	if err != nil || string(data) != "one" || st.Version != 0 {
		t.Fatalf("Get = %q v%d err=%v", data, st.Version, err)
	}
	st, err = s.Set("/a", []byte("two"), 0)
	if err != nil || st.Version != 1 {
		t.Fatalf("Set = v%d err=%v", st.Version, err)
	}
	data, _, _ = s.Get("/a")
	if string(data) != "two" {
		t.Fatalf("data = %q", data)
	}
	if err := s.Delete("/a", 1); err != nil {
		t.Fatal(err)
	}
	if s.Exists("/a") {
		t.Fatal("node still exists after delete")
	}
}

func TestVersionCAS(t *testing.T) {
	s := NewStore()
	s.Create("/a", nil, nil)
	if _, err := s.Set("/a", []byte("x"), 5); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("Set stale = %v, want ErrBadVersion", err)
	}
	if _, err := s.Set("/a", []byte("x"), -1); err != nil {
		t.Fatalf("unconditional Set = %v", err)
	}
	if err := s.Delete("/a", 0); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("Delete stale = %v, want ErrBadVersion", err)
	}
}

func TestCreateErrors(t *testing.T) {
	s := NewStore()
	if err := s.Create("/a/b", nil, nil); !errors.Is(err, ErrNoNode) {
		t.Fatalf("orphan create = %v, want ErrNoNode", err)
	}
	s.Create("/a", nil, nil)
	if err := s.Create("/a", nil, nil); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("dup create = %v, want ErrNodeExists", err)
	}
	for _, bad := range []string{"", "a", "/a/", "//", "/a//b"} {
		if err := s.Create(bad, nil, nil); !errors.Is(err, ErrBadPath) {
			t.Errorf("Create(%q) = %v, want ErrBadPath", bad, err)
		}
	}
}

func TestCreateAll(t *testing.T) {
	s := NewStore()
	if err := s.CreateAll("/a/b/c", []byte("deep"), nil); err != nil {
		t.Fatal(err)
	}
	data, _, err := s.Get("/a/b/c")
	if err != nil || string(data) != "deep" {
		t.Fatalf("Get = %q err=%v", data, err)
	}
	// Idempotent on intermediates; final node must still collide.
	if err := s.CreateAll("/a/b/d", nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateAll("/a/b/c", nil, nil); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("CreateAll dup = %v", err)
	}
}

func TestDeleteNonEmpty(t *testing.T) {
	s := NewStore()
	s.CreateAll("/a/b", nil, nil)
	if err := s.Delete("/a", -1); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("Delete parent = %v, want ErrNotEmpty", err)
	}
}

func TestChildren(t *testing.T) {
	s := NewStore()
	s.Create("/a", nil, nil)
	s.Create("/a/z", nil, nil)
	s.Create("/a/b", nil, nil)
	kids, err := s.Children("/a")
	if err != nil || len(kids) != 2 || kids[0] != "b" || kids[1] != "z" {
		t.Fatalf("Children = %v err=%v", kids, err)
	}
	root, err := s.Children("/")
	if err != nil || len(root) != 1 || root[0] != "a" {
		t.Fatalf("root Children = %v err=%v", root, err)
	}
}

func TestEphemeralDeletedOnSessionClose(t *testing.T) {
	s := NewStore()
	s.Create("/servers", nil, nil)
	sess := s.NewSession()
	if err := s.Create("/servers/s1", []byte("alive"), sess); err != nil {
		t.Fatal(err)
	}
	_, st, _ := s.Get("/servers/s1")
	if !st.Ephemeral {
		t.Fatal("node not marked ephemeral")
	}
	sess.Close()
	if s.Exists("/servers/s1") {
		t.Fatal("ephemeral survived session close")
	}
	if !sess.Closed() {
		t.Fatal("session not marked closed")
	}
	// Double close is a no-op.
	sess.Close()
}

func TestEphemeralCreateOnClosedSession(t *testing.T) {
	s := NewStore()
	sess := s.NewSession()
	sess.Expire()
	if err := s.Create("/x", nil, sess); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Create on closed session = %v", err)
	}
}

func TestExplicitDeleteDetachesFromSession(t *testing.T) {
	s := NewStore()
	sess := s.NewSession()
	s.Create("/e", nil, sess)
	s.Delete("/e", -1)
	s.Create("/e", nil, nil) // recreate persistent
	sess.Close()
	if !s.Exists("/e") {
		t.Fatal("session close deleted a node it no longer owns")
	}
}

func TestDataWatchFiresOnceOnSet(t *testing.T) {
	s := NewStore()
	s.Create("/w", nil, nil)
	var events []Event
	s.WatchData("/w", func(e Event) { events = append(events, e) })
	s.Set("/w", []byte("1"), -1)
	s.Set("/w", []byte("2"), -1)
	if len(events) != 1 || events[0].Type != EventDataChanged || events[0].Path != "/w" {
		t.Fatalf("events = %v", events)
	}
}

func TestDataWatchFiresOnDelete(t *testing.T) {
	s := NewStore()
	s.Create("/w", nil, nil)
	var got Event
	s.WatchData("/w", func(e Event) { got = e })
	s.Delete("/w", -1)
	if got.Type != EventDeleted || got.Path != "/w" {
		t.Fatalf("event = %v", got)
	}
}

func TestChildWatchFiresOnCreateAndDelete(t *testing.T) {
	s := NewStore()
	s.Create("/p", nil, nil)
	var events []Event
	rearm := func() {
		s.WatchChildren("/p", func(e Event) { events = append(events, e) })
	}
	rearm()
	s.Create("/p/c", nil, nil)
	if len(events) != 1 || events[0].Type != EventChildrenChanged {
		t.Fatalf("events after create = %v", events)
	}
	rearm()
	s.Delete("/p/c", -1)
	if len(events) != 2 || events[1].Type != EventChildrenChanged {
		t.Fatalf("events after delete = %v", events)
	}
}

func TestChildWatchFiresOnEphemeralExpiry(t *testing.T) {
	s := NewStore()
	s.Create("/servers", nil, nil)
	sess := s.NewSession()
	s.Create("/servers/s1", nil, sess)
	fired := 0
	s.WatchChildren("/servers", func(Event) { fired++ })
	sess.Expire()
	if fired != 1 {
		t.Fatalf("child watch fired %d times, want 1", fired)
	}
}

func TestWatchCallbackCanReenterStore(t *testing.T) {
	s := NewStore()
	s.Create("/w", nil, nil)
	reread := ""
	s.WatchData("/w", func(Event) {
		data, _, _ := s.Get("/w")
		reread = string(data)
	})
	s.Set("/w", []byte("new"), -1)
	if reread != "new" {
		t.Fatalf("re-entrant read = %q", reread)
	}
}

func TestWatchErrors(t *testing.T) {
	s := NewStore()
	if err := s.WatchData("/missing", func(Event) {}); !errors.Is(err, ErrNoNode) {
		t.Fatalf("WatchData missing = %v", err)
	}
	s.Create("/x", nil, nil)
	if err := s.WatchData("/x", nil); err == nil {
		t.Fatal("nil watcher accepted")
	}
	if err := s.WatchChildren("/x", nil); err == nil {
		t.Fatal("nil child watcher accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	s.Create("/c", []byte("abc"), nil)
	data, _, _ := s.Get("/c")
	data[0] = 'X'
	again, _, _ := s.Get("/c")
	if string(again) != "abc" {
		t.Fatal("Get exposed internal buffer")
	}
}

func TestMultipleEphemeralsOneSession(t *testing.T) {
	s := NewStore()
	s.Create("/servers", nil, nil)
	sess := s.NewSession()
	for _, p := range []string{"/servers/a", "/servers/b", "/servers/c"} {
		if err := s.Create(p, nil, sess); err != nil {
			t.Fatal(err)
		}
	}
	sess.Expire()
	kids, _ := s.Children("/servers")
	if len(kids) != 0 {
		t.Fatalf("ephemerals remain: %v", kids)
	}
}

func TestSessionIDsUnique(t *testing.T) {
	s := NewStore()
	a, b := s.NewSession(), s.NewSession()
	if a.ID() == b.ID() {
		t.Fatal("duplicate session ids")
	}
}

func TestEventTypeString(t *testing.T) {
	if EventCreated.String() != "created" || EventDeleted.String() != "deleted" {
		t.Fatal("event names wrong")
	}
	if EventType(42).String() != "event(42)" {
		t.Fatal("unknown event name wrong")
	}
}
