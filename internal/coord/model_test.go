package coord

import (
	"errors"
	"fmt"
	"testing"

	"shardmanager/internal/sim"
)

// TestStoreAgainstModel runs random operation sequences against both the
// real store and a trivial in-memory model, and checks they agree — a
// model-based test of the store's CRUD semantics (watches and sessions are
// covered by the behavioral tests).
func TestStoreAgainstModel(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99, 12345} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runModel(t, seed)
		})
	}
}

type modelNode struct {
	data    []byte
	version int
}

func runModel(t *testing.T, seed uint64) {
	t.Helper()
	rng := sim.NewRNG(seed)
	store := NewStore()
	model := map[string]*modelNode{} // path -> node

	// A small fixed path universe keeps collisions (and thus interesting
	// error paths) frequent.
	paths := []string{
		"/a", "/b", "/c",
		"/a/x", "/a/y", "/b/x", "/b/x/deep",
	}
	parentOf := func(p string) string { return parentPath(p) }
	hasChildren := func(p string) bool {
		for q := range model {
			if q != p && parentOf(q) == p {
				return true
			}
		}
		return false
	}

	for step := 0; step < 2000; step++ {
		p := paths[rng.Intn(len(paths))]
		switch rng.Intn(4) {
		case 0: // Create
			err := store.Create(p, []byte(fmt.Sprint(step)), nil)
			_, exists := model[p]
			parent := parentOf(p)
			_, parentOK := model[parent]
			if parent == "/" {
				parentOK = true
			}
			switch {
			case exists:
				if !errors.Is(err, ErrNodeExists) {
					t.Fatalf("step %d: Create(%s) = %v, want ErrNodeExists", step, p, err)
				}
			case !parentOK:
				if !errors.Is(err, ErrNoNode) {
					t.Fatalf("step %d: Create(%s) = %v, want ErrNoNode", step, p, err)
				}
			default:
				if err != nil {
					t.Fatalf("step %d: Create(%s) = %v", step, p, err)
				}
				model[p] = &modelNode{data: []byte(fmt.Sprint(step))}
			}
		case 1: // Set (unconditional or CAS)
			ver := -1
			if n, ok := model[p]; ok && rng.Intn(2) == 0 {
				ver = n.version
				if rng.Intn(4) == 0 {
					ver++ // deliberately stale
				}
			}
			_, err := store.Set(p, []byte(fmt.Sprint(step)), ver)
			n, exists := model[p]
			switch {
			case !exists:
				if !errors.Is(err, ErrNoNode) {
					t.Fatalf("step %d: Set(%s) = %v, want ErrNoNode", step, p, err)
				}
			case ver >= 0 && ver != n.version:
				if !errors.Is(err, ErrBadVersion) {
					t.Fatalf("step %d: Set(%s) stale = %v, want ErrBadVersion", step, p, err)
				}
			default:
				if err != nil {
					t.Fatalf("step %d: Set(%s) = %v", step, p, err)
				}
				n.data = []byte(fmt.Sprint(step))
				n.version++
			}
		case 2: // Delete
			err := store.Delete(p, -1)
			_, exists := model[p]
			switch {
			case !exists:
				if !errors.Is(err, ErrNoNode) {
					t.Fatalf("step %d: Delete(%s) = %v, want ErrNoNode", step, p, err)
				}
			case hasChildren(p):
				if !errors.Is(err, ErrNotEmpty) {
					t.Fatalf("step %d: Delete(%s) = %v, want ErrNotEmpty", step, p, err)
				}
			default:
				if err != nil {
					t.Fatalf("step %d: Delete(%s) = %v", step, p, err)
				}
				delete(model, p)
			}
		case 3: // Get + agreement check
			data, st, err := store.Get(p)
			n, exists := model[p]
			if exists != (err == nil) {
				t.Fatalf("step %d: Get(%s) existence mismatch: model=%v err=%v", step, p, exists, err)
			}
			if exists {
				if string(data) != string(n.data) {
					t.Fatalf("step %d: Get(%s) = %q, model %q", step, p, data, n.data)
				}
				if st.Version != n.version {
					t.Fatalf("step %d: Get(%s) version = %d, model %d", step, p, st.Version, n.version)
				}
			}
		}
	}

	// Final sweep: every model path agrees with the store.
	for p, n := range model {
		data, st, err := store.Get(p)
		if err != nil || string(data) != string(n.data) || st.Version != n.version {
			t.Fatalf("final: %s disagrees (err=%v data=%q v=%d, model %q v=%d)",
				p, err, data, st.Version, n.data, n.version)
		}
	}
	for _, p := range paths {
		if _, ok := model[p]; !ok && store.Exists(p) {
			t.Fatalf("final: store has %s, model does not", p)
		}
	}
}
