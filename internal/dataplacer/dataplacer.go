// Package dataplacer implements the composable-adoption path of §7 for
// applications that cannot (or will not) adopt the whole SM framework:
//
//   - GenericTaskController: a TaskControl-protocol participant driven by an
//     *application-supplied* shard map instead of the SM orchestrator. The
//     paper reports ~100 legacy applications adopted exactly this component
//     "without using SM's APIs, allocator, or orchestrator": the application
//     keeps its custom control plane but tells the controller where its
//     shards live, and the controller decides whether container operations
//     would endanger shard availability.
//
//   - Placer ("Data Placer"): a derived SM allocator for the largest custom
//     data stores (the SQL database / graph store / log store of §2.2.1).
//     The application keeps its custom orchestrator and calls Place with its
//     own placement constraints; Data Placer returns shard-to-server
//     assignments that honor both the application's constraints and the
//     infrastructure contracts (spread, drain, balance), leaving execution
//     to the application.
package dataplacer

import (
	"fmt"
	"sort"

	"shardmanager/internal/allocator"
	"shardmanager/internal/cluster"
	"shardmanager/internal/metrics"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// ShardMapSource supplies the application's current shard map. The
// application's custom control plane implements this; the controller calls
// it on every negotiation round so the map may change freely.
type ShardMapSource interface {
	// CurrentMap returns the app-maintained shard map.
	CurrentMap() *shard.Map
	// ReplicaTarget returns the shard's configured replica count (used
	// to count already-missing replicas against the cap).
	ReplicaTarget(s shard.ID) int
}

// StaticMapSource is a trivial ShardMapSource for applications whose map
// changes rarely; update it with Set.
type StaticMapSource struct {
	m       *shard.Map
	targets map[shard.ID]int
}

// NewStaticMapSource wraps an initial map. Targets default to each shard's
// current replica count.
func NewStaticMapSource(m *shard.Map) *StaticMapSource {
	s := &StaticMapSource{targets: make(map[shard.ID]int)}
	s.Set(m)
	return s
}

// Set replaces the map (targets for new shards default to current count).
func (s *StaticMapSource) Set(m *shard.Map) {
	s.m = m.Clone()
	for id, as := range m.Entries {
		if _, ok := s.targets[id]; !ok {
			s.targets[id] = len(as)
		}
	}
}

// SetTarget overrides a shard's replica target.
func (s *StaticMapSource) SetTarget(id shard.ID, n int) { s.targets[id] = n }

// CurrentMap implements ShardMapSource.
func (s *StaticMapSource) CurrentMap() *shard.Map { return s.m.Clone() }

// ReplicaTarget implements ShardMapSource.
func (s *StaticMapSource) ReplicaTarget(id shard.ID) int {
	if n, ok := s.targets[id]; ok {
		return n
	}
	return len(s.m.Entries[id])
}

// ControllerPolicy configures a GenericTaskController.
type ControllerPolicy struct {
	// MaxConcurrentOps is the global concurrent-operation cap.
	MaxConcurrentOps int
	// MaxUnavailableReplicas is the per-shard cap on simultaneously
	// unavailable replicas.
	MaxUnavailableReplicas int
}

// GenericTaskController implements cluster.Controller from an
// application-supplied shard map. Unlike the full SM TaskController it
// never drains (it has no orchestrator to drain with); it purely delays
// operations that would push any shard past the per-shard cap, counting
// replicas on servers that are already down.
type GenericTaskController struct {
	source ShardMapSource
	policy ControllerPolicy
	// down tracks servers currently impacted by approved in-flight ops.
	inFlight map[cluster.ContainerID]cluster.OperationID
	// serverDown reports whether a server is currently unavailable for
	// reasons other than tracked ops (unplanned failures); supplied by
	// the application, may be nil.
	serverDown func(shard.ServerID) bool

	Approved metrics.Counter
	Delayed  metrics.Counter
}

// NewGenericTaskController builds the controller. serverDown may be nil.
func NewGenericTaskController(source ShardMapSource, policy ControllerPolicy,
	serverDown func(shard.ServerID) bool) *GenericTaskController {
	if source == nil {
		panic("dataplacer: nil map source")
	}
	if policy.MaxConcurrentOps <= 0 {
		policy.MaxConcurrentOps = 1
	}
	if policy.MaxUnavailableReplicas <= 0 {
		policy.MaxUnavailableReplicas = 1
	}
	return &GenericTaskController{
		source:     source,
		policy:     policy,
		inFlight:   make(map[cluster.ContainerID]cluster.OperationID),
		serverDown: serverDown,
	}
}

// Attach registers with a regional cluster manager.
func (c *GenericTaskController) Attach(mgr *cluster.Manager) { mgr.SetController(c) }

// OfferOperations implements cluster.Controller.
func (c *GenericTaskController) OfferOperations(region topology.RegionID, pending []cluster.Operation) []cluster.OperationID {
	sorted := append([]cluster.Operation(nil), pending...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })

	m := c.source.CurrentMap()
	var approved []cluster.OperationID
	for _, op := range sorted {
		if _, dup := c.inFlight[op.Container]; dup {
			c.Delayed.Inc()
			continue
		}
		if len(c.inFlight) >= c.policy.MaxConcurrentOps {
			c.Delayed.Inc()
			continue
		}
		if !c.capAllows(m, shard.ServerID(op.Container)) {
			c.Delayed.Inc()
			continue
		}
		c.inFlight[op.Container] = op.ID
		approved = append(approved, op.ID)
		c.Approved.Inc()
	}
	return approved
}

// capAllows checks the per-shard unavailability cap for taking server down.
func (c *GenericTaskController) capAllows(m *shard.Map, server shard.ServerID) bool {
	unavailableServer := func(s shard.ServerID) bool {
		if _, ok := c.inFlight[cluster.ContainerID(s)]; ok {
			return true
		}
		return c.serverDown != nil && c.serverDown(s)
	}
	for id := range m.Entries {
		onServer := false
		unavailable := c.source.ReplicaTarget(id) - len(m.Entries[id])
		if unavailable < 0 {
			unavailable = 0
		}
		for _, a := range m.Entries[id] {
			if a.Server == server {
				onServer = true
				continue
			}
			if unavailableServer(a.Server) {
				unavailable++
			}
		}
		if onServer && unavailable+1 > c.policy.MaxUnavailableReplicas {
			return false
		}
	}
	return true
}

// OperationComplete implements cluster.Controller.
func (c *GenericTaskController) OperationComplete(region topology.RegionID, op cluster.Operation) {
	if id, ok := c.inFlight[op.Container]; ok && id == op.ID {
		delete(c.inFlight, op.Container)
	}
}

// --- Data Placer ---

// PlacementRequest is a custom data store's placement problem: its servers,
// its shards with application-specific constraints, and its current
// assignment. Data Placer computes where replicas should go; the
// application's custom orchestrator executes the moves itself.
type PlacementRequest struct {
	Servers []allocator.ServerInfo
	Shards  []allocator.ShardSpec
	Current map[shard.ID][]shard.ServerID
	// Colocate optionally groups shards that must land on the same
	// server (e.g. a database shard and its sidecar); every shard in a
	// group is pinned to the first member's placement.
	Colocate map[shard.ID]shard.ID
	// Emergency selects the fast mode (only place missing replicas).
	Emergency bool
}

// Placer is the derived SM allocator of §7 ("reuse a derived SM allocator
// called Data Placer ... it can generate shard-to-server assignments that
// take into account both application-specific placement constraints and
// the infrastructure contracts").
type Placer struct {
	alloc *allocator.Allocator
}

// NewPlacer builds a Data Placer with the given policy.
func NewPlacer(policy allocator.Policy, seed uint64) *Placer {
	return &Placer{alloc: allocator.New(policy, seed)}
}

// Place computes a new assignment. The returned moves are advisory: the
// caller's custom orchestrator executes them at its own pace.
func (p *Placer) Place(req PlacementRequest) (*allocator.Result, error) {
	if len(req.Servers) == 0 {
		return nil, fmt.Errorf("dataplacer: no servers")
	}
	shards := req.Shards
	if len(req.Colocate) > 0 {
		// Fold colocated shards into their leader's load; place the
		// leader, then mirror the assignment.
		shards = foldColocated(req.Shards, req.Colocate)
	}
	mode := allocator.Periodic
	if req.Emergency {
		mode = allocator.Emergency
	}
	res := p.alloc.Run(allocator.Input{
		Servers: req.Servers,
		Shards:  shards,
		Current: req.Current,
	}, mode)
	if len(req.Colocate) > 0 {
		expandColocated(res, req)
	}
	return res, nil
}

// foldColocated merges followers' loads into their leaders and drops the
// followers from the solver's view.
func foldColocated(specs []allocator.ShardSpec, colocate map[shard.ID]shard.ID) []allocator.ShardSpec {
	byID := make(map[shard.ID]*allocator.ShardSpec, len(specs))
	out := make([]allocator.ShardSpec, 0, len(specs))
	for _, s := range specs {
		if _, isFollower := colocate[s.ID]; isFollower {
			continue
		}
		out = append(out, s)
		byID[s.ID] = &out[len(out)-1]
	}
	for _, s := range specs {
		leaderID, isFollower := colocate[s.ID]
		if !isFollower {
			continue
		}
		leader := byID[leaderID]
		if leader == nil {
			panic(fmt.Sprintf("dataplacer: colocation leader %q missing", leaderID))
		}
		merged := leader.Load.Clone()
		if merged == nil {
			merged = topology.Capacity{}
		}
		for k, v := range s.Load {
			merged[k] += v
		}
		leader.Load = merged
	}
	return out
}

// expandColocated mirrors each leader's placement onto its followers.
func expandColocated(res *allocator.Result, req PlacementRequest) {
	for follower, leader := range req.Colocate {
		newPlacement := append([]shard.ServerID(nil), res.Assignment[leader]...)
		old := req.Current[follower]
		res.Assignment[follower] = newPlacement
		// Emit the diff for the follower too.
		for i, srv := range newPlacement {
			var cur shard.ServerID
			if i < len(old) {
				cur = old[i]
			}
			switch {
			case cur == srv:
			case cur == "":
				res.Moves = append(res.Moves, allocator.ReplicaMove{Shard: follower, To: srv})
			default:
				res.Moves = append(res.Moves, allocator.ReplicaMove{Shard: follower, From: cur, To: srv})
			}
		}
		for i := len(newPlacement); i < len(old); i++ {
			res.Moves = append(res.Moves, allocator.ReplicaMove{Shard: follower, From: old[i]})
		}
	}
}
