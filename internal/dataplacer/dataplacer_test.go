package dataplacer

import (
	"fmt"
	"testing"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/cluster"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

func appMap(entries map[shard.ID][]shard.ServerID) *shard.Map {
	m := shard.NewMap("custom")
	for id, servers := range entries {
		for _, s := range servers {
			m.Entries[id] = append(m.Entries[id], shard.Assignment{Server: s, Role: shard.RoleSecondary})
		}
	}
	return m
}

func op(id int, container string) cluster.Operation {
	return cluster.Operation{
		ID:         cluster.OperationID(id),
		Type:       cluster.OpRestart,
		Container:  cluster.ContainerID(container),
		Negotiable: true,
	}
}

func TestGenericControllerBlocksDoubleUnavailability(t *testing.T) {
	src := NewStaticMapSource(appMap(map[shard.ID][]shard.ServerID{
		"sA": {"c1", "c2"},
		"sB": {"c3", "c4"},
	}))
	c := NewGenericTaskController(src, ControllerPolicy{MaxConcurrentOps: 10, MaxUnavailableReplicas: 1}, nil)

	// Restarting c1 is fine; restarting c2 simultaneously would take
	// both of sA's replicas down.
	got := c.OfferOperations("r1", []cluster.Operation{op(1, "c1"), op(2, "c2"), op(3, "c3")})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("approved = %v, want [1 3]", got)
	}
	// After c1 completes, c2 may go.
	c.OperationComplete("r1", op(1, "c1"))
	got = c.OfferOperations("r1", []cluster.Operation{op(2, "c2")})
	if len(got) != 1 {
		t.Fatalf("c2 still blocked: %v", got)
	}
}

func TestGenericControllerGlobalCap(t *testing.T) {
	src := NewStaticMapSource(appMap(map[shard.ID][]shard.ServerID{
		"s1": {"c1"}, "s2": {"c2"}, "s3": {"c3"},
	}))
	// Per-shard cap 1 with single replicas would block everything; use
	// cap 2 so the global cap is the binding constraint.
	c := NewGenericTaskController(src, ControllerPolicy{MaxConcurrentOps: 2, MaxUnavailableReplicas: 2}, nil)
	got := c.OfferOperations("r1", []cluster.Operation{op(1, "c1"), op(2, "c2"), op(3, "c3")})
	if len(got) != 2 {
		t.Fatalf("approved = %v, want 2 (global cap)", got)
	}
	if c.Delayed.Value() != 1 {
		t.Fatalf("delayed = %d", c.Delayed.Value())
	}
}

func TestGenericControllerCountsDeadReplicas(t *testing.T) {
	// sA is configured for 2 replicas but the map currently shows one:
	// the other is dead. Restarting the survivor must be delayed.
	src := NewStaticMapSource(appMap(map[shard.ID][]shard.ServerID{"sA": {"c1"}}))
	src.SetTarget("sA", 2)
	c := NewGenericTaskController(src, ControllerPolicy{MaxConcurrentOps: 10, MaxUnavailableReplicas: 1}, nil)
	if got := c.OfferOperations("r1", []cluster.Operation{op(1, "c1")}); len(got) != 0 {
		t.Fatalf("approved restart of last replica: %v", got)
	}
}

func TestGenericControllerUsesServerDownCallback(t *testing.T) {
	src := NewStaticMapSource(appMap(map[shard.ID][]shard.ServerID{"sA": {"c1", "c2"}}))
	down := map[shard.ServerID]bool{"c2": true} // unplanned outage
	c := NewGenericTaskController(src,
		ControllerPolicy{MaxConcurrentOps: 10, MaxUnavailableReplicas: 1},
		func(s shard.ServerID) bool { return down[s] })
	if got := c.OfferOperations("r1", []cluster.Operation{op(1, "c1")}); len(got) != 0 {
		t.Fatal("approved op while the other replica is already down")
	}
	down["c2"] = false
	if got := c.OfferOperations("r1", []cluster.Operation{op(1, "c1")}); len(got) != 1 {
		t.Fatal("blocked op after outage cleared")
	}
}

func TestGenericControllerWithRealClusterManager(t *testing.T) {
	// End to end: a "custom sharding" application that never talks to
	// the SM orchestrator still gets safe rolling restarts.
	fleet := topology.Build(topology.Spec{
		Regions:           []topology.RegionID{"r1"},
		MachinesPerRegion: 4,
	})
	loop := sim.NewLoop(1)
	mgr := cluster.NewManager(loop, fleet, "r1", cluster.DefaultOptions())
	mgr.CreateJob("db", "db", 4)
	loop.RunFor(time.Minute)
	ids := mgr.RunningContainers("db")

	// The app's own shard map: each adjacent pair of containers shares a
	// shard.
	entries := map[shard.ID][]shard.ServerID{}
	for i := 0; i < len(ids); i++ {
		s := shard.ID(fmt.Sprintf("s%d", i))
		entries[s] = []shard.ServerID{
			shard.ServerID(ids[i]),
			shard.ServerID(ids[(i+1)%len(ids)]),
		}
	}
	src := NewStaticMapSource(appMap(entries))
	c := NewGenericTaskController(src, ControllerPolicy{MaxConcurrentOps: 4, MaxUnavailableReplicas: 1}, nil)
	c.Attach(mgr)

	down := 0
	maxDown := 0
	loop.Every(time.Second, func() {
		down = 4 - len(mgr.RunningContainers("db"))
		if down > maxDown {
			maxDown = down
		}
	})
	done := false
	mgr.RollingUpgrade("db", 4, "upgrade", func() { done = true })
	loop.RunFor(30 * time.Minute)
	if !done {
		t.Fatal("upgrade never completed")
	}
	// Ring topology: neighbors share shards, so at most every other
	// container may be down — with per-shard cap 1 that means max 2
	// concurrent for 4 containers, and never two adjacent.
	if maxDown > 2 {
		t.Fatalf("max concurrent down = %d", maxDown)
	}
	if c.Approved.Value() != 4 {
		t.Fatalf("approved = %d", c.Approved.Value())
	}
}

func placerServers(n int) []allocator.ServerInfo {
	out := make([]allocator.ServerInfo, n)
	for i := range out {
		out[i] = allocator.ServerInfo{
			ID: shard.ServerID(fmt.Sprintf("srv%02d", i)),
			Domains: map[string]string{
				"region": fmt.Sprintf("region%d", i%2),
				"rack":   fmt.Sprintf("rack%d", i%4),
			},
			Capacity: topology.Capacity{topology.ResourceCPU: 100, topology.ResourceShardCount: 100},
			Alive:    true,
		}
	}
	return out
}

func TestPlacerBasicPlacement(t *testing.T) {
	p := NewPlacer(allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount), 1)
	shards := make([]allocator.ShardSpec, 10)
	for i := range shards {
		shards[i] = allocator.ShardSpec{
			ID: shard.ID(fmt.Sprintf("db%02d", i)), Replicas: 2,
			Load: topology.Capacity{topology.ResourceCPU: 1, topology.ResourceShardCount: 1},
		}
	}
	res, err := p.Place(PlacementRequest{
		Servers: placerServers(6),
		Shards:  shards,
		Current: map[shard.ID][]shard.ServerID{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final.Unassigned != 0 {
		t.Fatalf("unassigned: %+v", res.Final)
	}
	for _, s := range shards {
		got := res.Assignment[s.ID]
		if len(got) != 2 || got[0] == got[1] {
			t.Fatalf("shard %s placement = %v", s.ID, got)
		}
	}
}

func TestPlacerColocation(t *testing.T) {
	// A database shard and its sidecar must land on the same server —
	// the §7 example ("their orchestrator may create both a database
	// container and a sidecar container").
	p := NewPlacer(allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount), 1)
	specs := []allocator.ShardSpec{
		{ID: "db0", Replicas: 1, Load: topology.Capacity{topology.ResourceCPU: 5, topology.ResourceShardCount: 1}},
		{ID: "db0-sidecar", Replicas: 1, Load: topology.Capacity{topology.ResourceCPU: 1, topology.ResourceShardCount: 1}},
		{ID: "db1", Replicas: 1, Load: topology.Capacity{topology.ResourceCPU: 5, topology.ResourceShardCount: 1}},
		{ID: "db1-sidecar", Replicas: 1, Load: topology.Capacity{topology.ResourceCPU: 1, topology.ResourceShardCount: 1}},
	}
	res, err := p.Place(PlacementRequest{
		Servers: placerServers(4),
		Shards:  specs,
		Current: map[shard.ID][]shard.ServerID{},
		Colocate: map[shard.ID]shard.ID{
			"db0-sidecar": "db0",
			"db1-sidecar": "db1",
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]shard.ID{{"db0", "db0-sidecar"}, {"db1", "db1-sidecar"}} {
		a, b := res.Assignment[pair[0]], res.Assignment[pair[1]]
		if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
			t.Fatalf("pair %v not colocated: %v vs %v", pair, a, b)
		}
	}
	// The sidecars' moves appear in the diff too.
	sidecarMoves := 0
	for _, m := range res.Moves {
		if m.Shard == "db0-sidecar" || m.Shard == "db1-sidecar" {
			sidecarMoves++
		}
	}
	if sidecarMoves != 2 {
		t.Fatalf("sidecar moves = %d", sidecarMoves)
	}
}

func TestPlacerEmergencyPinsSurvivors(t *testing.T) {
	p := NewPlacer(allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount), 1)
	servers := placerServers(4)
	specs := []allocator.ShardSpec{
		{ID: "db0", Replicas: 2, Load: topology.Capacity{topology.ResourceCPU: 1, topology.ResourceShardCount: 1}},
	}
	first, err := p.Place(PlacementRequest{Servers: servers, Shards: specs, Current: map[shard.ID][]shard.ServerID{}})
	if err != nil {
		t.Fatal(err)
	}
	dead := first.Assignment["db0"][0]
	for i := range servers {
		if servers[i].ID == dead {
			servers[i].Alive = false
		}
	}
	res, err := p.Place(PlacementRequest{Servers: servers, Shards: specs, Current: first.Assignment, Emergency: true})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Assignment["db0"]
	if got[1] != first.Assignment["db0"][1] {
		t.Fatalf("survivor moved: %v -> %v", first.Assignment["db0"], got)
	}
	if got[0] == dead || got[0] == "" {
		t.Fatalf("dead replica not replaced: %v", got)
	}
}

func TestPlacerErrors(t *testing.T) {
	p := NewPlacer(allocator.DefaultPolicy(topology.ResourceCPU), 1)
	if _, err := p.Place(PlacementRequest{}); err == nil {
		t.Fatal("empty request accepted")
	}
}

func TestPlacerColocationMissingLeaderPanics(t *testing.T) {
	p := NewPlacer(allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.Place(PlacementRequest{
		Servers:  placerServers(2),
		Shards:   []allocator.ShardSpec{{ID: "orphan", Replicas: 1, Load: topology.Capacity{}}},
		Current:  map[shard.ID][]shard.ServerID{},
		Colocate: map[shard.ID]shard.ID{"orphan": "ghost"},
	})
}

func TestNewGenericControllerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGenericTaskController(nil, ControllerPolicy{}, nil)
}
