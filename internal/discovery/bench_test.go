package discovery

import (
	"fmt"
	"testing"
	"time"

	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
)

// BenchmarkPublishFanout measures publishing a 1,000-shard map to 100
// subscribers, including delivery.
func BenchmarkPublishFanout(b *testing.B) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Millisecond))
	delivered := 0
	for i := 0; i < 100; i++ {
		svc.Subscribe("app", func(*shard.Map) { delivered++ })
	}
	m := shard.NewMap("app")
	for i := 0; i < 1000; i++ {
		id := shard.ID(fmt.Sprintf("s%04d", i))
		m.Entries[id] = []shard.Assignment{{Server: "srv", Role: shard.RolePrimary}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Version = int64(i + 1)
		svc.Publish(m)
		loop.RunFor(10 * time.Millisecond)
	}
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
}

// benchMap builds an n-shard single-primary map.
func benchMap(n int) *shard.Map {
	m := shard.NewMap("app")
	m.Version = 1
	for i := 0; i < n; i++ {
		id := shard.ID(fmt.Sprintf("s%07d", i))
		m.Entries[id] = []shard.Assignment{{Server: shard.ServerID(fmt.Sprintf("srv%05d", i%512)), Role: shard.RolePrimary}}
	}
	return m
}

// publishSizes are the map sizes the full-vs-delta comparison runs at; the
// 1M point is the simscale baseline where a full-copy publish costs ~1.1 s.
var publishSizes = []int{10_000, 120_000, 1_000_000}

// BenchmarkPublishFullScratch measures the pre-delta steady state: a full
// republish through PublishScratch, whose cost is the O(shards) CloneInto
// copy even when nothing changed but churn touched a handful of entries.
func BenchmarkPublishFullScratch(b *testing.B) {
	for _, n := range publishSizes {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			loop := sim.NewLoop(1)
			svc := NewService(loop, FixedDelay(time.Millisecond))
			delivered := 0
			svc.Subscribe("app", func(*shard.Map) { delivered++ })
			m := benchMap(n)
			svc.Publish(m)
			loop.RunFor(10 * time.Millisecond)
			scratch := shard.NewMap("app")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Version++
				m.Entries["s0000000"] = []shard.Assignment{
					{Server: shard.ServerID(fmt.Sprintf("srv%05d", i%512)), Role: shard.RolePrimary}}
				scratch = svc.PublishScratch(m, scratch)
				loop.RunFor(10 * time.Millisecond)
			}
			b.StopTimer()
			if delivered == 0 {
				b.Fatal("nothing delivered")
			}
		})
	}
}

// BenchmarkPublishDelta measures the same single-entry churn published as a
// delta: cost is O(changed entries) regardless of map size, which is the
// entire point of the delta path (ROADMAP item 2).
func BenchmarkPublishDelta(b *testing.B) {
	for _, n := range publishSizes {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			loop := sim.NewLoop(1)
			svc := NewService(loop, FixedDelay(time.Millisecond))
			f := &deltaFollower{}
			f.m = shard.NewMap("app")
			svc.SubscribeDelta("app", f.onFull, func(d *shard.Delta) {
				if err := f.m.ApplyDelta(d); err != nil {
					b.Fatal(err)
				}
				f.deltas++
			})
			m := benchMap(n)
			svc.Publish(m)
			loop.RunFor(10 * time.Millisecond)
			d := shard.NewDelta("app")
			version := m.Version
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Reset("app", version, version+1, 0)
				d.SetOne("s0000000", shard.ServerID(fmt.Sprintf("srv%05d", i%512)), shard.RolePrimary)
				version++
				d = svc.PublishDelta(d)
				loop.RunFor(10 * time.Millisecond)
				if d == nil {
					d = shard.NewDelta("app")
				}
			}
			b.StopTimer()
			if f.deltas == 0 {
				b.Fatal("no deltas delivered")
			}
		})
	}
}

// TestPublishDeltaSteadyStateAllocs pins the pooled steady state: once the
// delta ping-pong and delivery records have warmed up, a publish-and-deliver
// delta cycle allocates nothing.
func TestPublishDeltaSteadyStateAllocs(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Millisecond))
	follower := shard.NewMap("app")
	svc.SubscribeDelta("app",
		func(m *shard.Map) { follower = m.CloneInto(follower) },
		func(d *shard.Delta) {
			if err := follower.ApplyDelta(d); err != nil {
				t.Fatal(err)
			}
		})
	m := benchMap(1000)
	svc.Publish(m)
	loop.RunFor(10 * time.Millisecond)
	version := m.Version
	d := shard.NewDelta("app")
	// Warm up the ping-pong pair and the delivery freelist.
	for i := 0; i < 3; i++ {
		d.Reset("app", version, version+1, 0)
		d.SetOne("s0000100", "srvX", shard.RolePrimary)
		version++
		if next := svc.PublishDelta(d); next != nil {
			d = next
		}
		loop.RunFor(10 * time.Millisecond)
	}
	allocs := testing.AllocsPerRun(100, func() {
		d.Reset("app", version, version+1, 0)
		d.SetOne("s0000100", "srvY", shard.RolePrimary)
		version++
		d = svc.PublishDelta(d)
		loop.RunFor(10 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("steady-state delta publish allocates %.1f/run, want 0", allocs)
	}
}
