package discovery

import (
	"fmt"
	"testing"
	"time"

	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
)

// BenchmarkPublishFanout measures publishing a 1,000-shard map to 100
// subscribers, including delivery.
func BenchmarkPublishFanout(b *testing.B) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Millisecond))
	delivered := 0
	for i := 0; i < 100; i++ {
		svc.Subscribe("app", func(*shard.Map) { delivered++ })
	}
	m := shard.NewMap("app")
	for i := 0; i < 1000; i++ {
		id := shard.ID(fmt.Sprintf("s%04d", i))
		m.Entries[id] = []shard.Assignment{{Server: "srv", Role: shard.RolePrimary}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Version = int64(i + 1)
		svc.Publish(m)
		loop.RunFor(10 * time.Millisecond)
	}
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
}
