package discovery

import (
	"testing"
	"time"

	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
)

// deltaFollower is a test subscriber that maintains its own map the way a
// routing client in delta mode does: full snapshots clone, deltas apply in
// place.
type deltaFollower struct {
	m       *shard.Map
	fulls   int
	deltas  int
	applyNG *testing.T
}

func (f *deltaFollower) onFull(m *shard.Map) {
	f.m = m.CloneInto(f.m)
	f.fulls++
}

func (f *deltaFollower) onDelta(d *shard.Delta) {
	if err := f.m.ApplyDelta(d); err != nil {
		f.applyNG.Fatalf("follower ApplyDelta: %v", err)
	}
	f.deltas++
}

func stageDelta(d *shard.Delta, from, to, gen int64, server shard.ServerID) *shard.Delta {
	if d == nil {
		d = shard.NewDelta("app")
	}
	d.Reset("app", from, to, gen)
	d.SetOne("s1", server, shard.RolePrimary)
	return d
}

func TestPublishDeltaInOrderChaining(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	f := &deltaFollower{applyNG: t}
	svc.SubscribeDelta("app", f.onFull, f.onDelta)
	svc.Publish(mapV(1))
	loop.RunFor(2 * time.Second)
	if f.fulls != 1 || f.m.Version != 1 {
		t.Fatalf("catch-up: fulls=%d v=%d", f.fulls, f.m.Version)
	}

	var scratch *shard.Delta
	for v := int64(1); v < 5; v++ {
		scratch = svc.PublishDelta(stageDelta(scratch, v, v+1, 0, shard.ServerID("srv2")))
		loop.RunFor(2 * time.Second)
	}
	if f.deltas != 4 || f.fulls != 1 {
		t.Fatalf("deltas=%d fulls=%d, want 4/1", f.deltas, f.fulls)
	}
	if f.m.Version != 5 {
		t.Fatalf("follower at v%d, want 5", f.m.Version)
	}
	if cur := svc.Current("app"); cur.Version != 5 ||
		cur.Entries["s1"][0].Server != "srv2" {
		t.Fatalf("service current: %+v", cur)
	}
	// The first PublishDelta had no prior delta to recycle; later ones hand
	// back the previously retained buffer.
	if scratch == nil {
		t.Fatal("no recycled delta buffer returned")
	}
}

func TestPublishDeltaGapTriggersResync(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	svc.Publish(mapV(1))
	loop.RunFor(2 * time.Second)

	f := &deltaFollower{applyNG: t}
	var statuses []string
	svc.SetObserver(func(app shard.AppID, version int64, lag time.Duration, status string) {
		statuses = append(statuses, status)
	})
	svc.SubscribeDelta("app", f.onFull, f.onDelta)
	loop.RunFor(2 * time.Second) // catch-up at v1

	// Two deltas published back-to-back: the follower receives 1→2 in order,
	// but a delta jumping straight past its version forces a full resync.
	d1 := stageDelta(nil, 1, 2, 0, shard.ServerID("a"))
	svc.PublishDelta(d1)
	loop.RunFor(2 * time.Second)
	d3 := stageDelta(nil, 3, 4, 0, shard.ServerID("b"))
	d3.ToVersion = 4
	// Force the service itself past v3 so the delta chains there but not at
	// the follower: publish v3 as a full map with no propagation to f by
	// cancelling... simpler: publish full v3, let it deliver, then make the
	// follower stale by hand.
	m3 := mapV(3)
	m3.Entries["s1"] = []shard.Assignment{{Server: shard.ServerID("c"), Role: shard.RolePrimary}}
	svc.Publish(m3)
	loop.RunFor(2 * time.Second)
	// Follower is now at v3 via the full path. Rewind it to simulate a missed
	// version, then publish the 3→4 delta: lastSeen(2) != FromVersion(3).
	f.m.Version = 2
	subRewind(svc, "app", 2)
	svc.PublishDelta(d3)
	loop.RunFor(2 * time.Second)

	if f.m.Version != 4 {
		t.Fatalf("follower at v%d after resync, want 4", f.m.Version)
	}
	last := statuses[len(statuses)-1]
	if last != "resync" {
		t.Fatalf("last delivery status %q, want resync (all: %v)", last, statuses)
	}
	if f.m.Entries["s1"][0].Server != "b" {
		t.Fatalf("resync content: %+v", f.m.Entries["s1"])
	}
}

// subRewind forces app's subscribers' lastSeen to v, simulating a missed
// delivery window.
func subRewind(s *Service, app shard.AppID, v int64) {
	for _, sub := range s.state(app).subs {
		sub.lastSeen = v
	}
}

func TestPublishDeltaStaleAndGapDrops(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	svc.Publish(mapV(5))

	// Stale: target version behind current.
	d := stageDelta(nil, 4, 5, 0, shard.ServerID("x"))
	if got := svc.PublishDelta(d); got != d {
		t.Fatal("stale delta not returned to caller")
	}
	// Gap: FromVersion doesn't match the current map.
	d.Reset("app", 6, 7, 0)
	d.SetOne("s1", shard.ServerID("x"), shard.RolePrimary)
	if got := svc.PublishDelta(d); got != d {
		t.Fatal("gap delta not returned to caller")
	}
	if svc.Current("app").Version != 5 || svc.Publications != 1 {
		t.Fatalf("dropped deltas mutated state: v%d pubs=%d",
			svc.Current("app").Version, svc.Publications)
	}

	// Generation ordering: a delta with an older gen is stale even with a
	// newer version.
	m := mapV(5)
	m.Gen = 10
	svc.Publish(mapV(6)) // bump version first so the gen-stamped map lands
	mg := mapV(7)
	mg.Gen = 10
	svc.Publish(mg)
	d.Reset("app", 7, 8, 9) // gen 9 < current gen 10
	if got := svc.PublishDelta(d); got != d {
		t.Fatal("gen-stale delta accepted")
	}
}

func TestPublishDeltaLegacySubscriberGetsFullMaps(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	var got []int64
	svc.Subscribe("app", func(m *shard.Map) { got = append(got, m.Version) })
	svc.Publish(mapV(1))
	loop.RunFor(2 * time.Second)
	svc.PublishDelta(stageDelta(nil, 1, 2, 0, shard.ServerID("y")))
	loop.RunFor(2 * time.Second)
	if len(got) != 2 || got[1] != 2 {
		t.Fatalf("legacy subscriber deliveries = %v, want [1 2]", got)
	}
}

// TestPublishDeltaRNGParityWithFull pins the schedule-identity contract: a
// run where the publisher uses deltas consumes exactly the same delay draws
// as one using full maps, so every delivery lands at the same instant.
func TestPublishDeltaRNGParityWithFull(t *testing.T) {
	run := func(useDelta bool) []time.Duration {
		loop := sim.NewLoop(42)
		svc := NewService(loop, nil) // DefaultDelay: real RNG draws
		var at []time.Duration
		for i := 0; i < 5; i++ {
			svc.Subscribe("app", func(*shard.Map) { at = append(at, loop.Now()) })
		}
		f := &deltaFollower{applyNG: t}
		svc.SubscribeDelta("app", func(m *shard.Map) {
			f.onFull(m)
			at = append(at, loop.Now())
		}, func(d *shard.Delta) {
			f.onDelta(d)
			at = append(at, loop.Now())
		})
		svc.Publish(mapV(1))
		loop.RunFor(5 * time.Second)
		for v := int64(1); v <= 3; v++ {
			if useDelta {
				svc.PublishDelta(stageDelta(nil, v, v+1, 0, shard.ServerID("z")))
			} else {
				m := mapV(v + 1)
				m.Entries["s1"] = []shard.Assignment{{Server: shard.ServerID("z"), Role: shard.RolePrimary}}
				svc.Publish(m)
			}
			loop.RunFor(5 * time.Second)
		}
		return at
	}
	full, delta := run(false), run(true)
	if len(full) != len(delta) {
		t.Fatalf("delivery counts differ: %d vs %d", len(full), len(delta))
	}
	for i := range full {
		if full[i] != delta[i] {
			t.Fatalf("delivery %d at %v (full) vs %v (delta)", i, full[i], delta[i])
		}
	}
}

func TestPublishDeltaBatchFanout(t *testing.T) {
	loop := sim.NewLoop(7)
	svc := NewService(loop, FixedDelay(time.Second))
	svc.SetFanoutBatch(4)
	const subs = 10
	fs := make([]*deltaFollower, subs)
	for i := range fs {
		fs[i] = &deltaFollower{applyNG: t}
		svc.SubscribeDelta("app", fs[i].onFull, fs[i].onDelta)
	}
	svc.Publish(mapV(1))
	loop.RunFor(2 * time.Second)
	var scratch *shard.Delta
	for v := int64(1); v <= 4; v++ {
		scratch = svc.PublishDelta(stageDelta(scratch, v, v+1, 0, shard.ServerID("b")))
		loop.RunFor(2 * time.Second)
	}
	for i, f := range fs {
		if f.m.Version != 5 || f.deltas != 4 {
			t.Fatalf("sub %d: v%d deltas=%d, want v5/4", i, f.m.Version, f.deltas)
		}
	}
}

func TestCurrentMetaAndCurrentInto(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	if _, _, ok := svc.CurrentMeta("app"); ok {
		t.Fatal("CurrentMeta ok before publish")
	}
	if svc.CurrentInto("app", nil) != nil {
		t.Fatal("CurrentInto non-nil before publish")
	}
	m := mapV(3)
	m.Gen = 11
	svc.Publish(m)
	v, g, ok := svc.CurrentMeta("app")
	if !ok || v != 3 || g != 11 {
		t.Fatalf("CurrentMeta = (%d,%d,%v)", v, g, ok)
	}
	dst := shard.NewMap("app")
	got := svc.CurrentInto("app", dst)
	if got != dst || got.Version != 3 || len(got.Entries) != 1 {
		t.Fatalf("CurrentInto: %+v", got)
	}
	// Reusing dst must not alias service state.
	got.Entries["s1"][0].Server = "mutated"
	if svc.Current("app").Entries["s1"][0].Server == "mutated" {
		t.Fatal("CurrentInto aliased the service's map")
	}
}
