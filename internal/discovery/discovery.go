// Package discovery models the service discovery system of §3.2: the
// orchestrator publishes each application's versioned shard map, and the
// system fans it out to all application clients "in a timely manner" through
// a multi-level data-distribution tree. We model the tree as a per-
// subscriber, per-publication propagation delay; what matters to SM is that
// clients act on *eventually consistent, slightly stale* maps, which the
// graceful migration protocol (§4.3) must tolerate without dropping
// requests.
package discovery

import (
	"time"

	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/trace"
)

// lbDeliver attributes propagation deliveries in the kernel profiler.
var lbDeliver = sim.LabelFor("discovery", "deliver")

// DelayFunc returns the propagation delay for one delivery.
type DelayFunc func(rng *sim.RNG) time.Duration

// FixedDelay returns a DelayFunc with constant delay.
func FixedDelay(d time.Duration) DelayFunc {
	return func(*sim.RNG) time.Duration { return d }
}

// UniformDelay returns a DelayFunc uniform in [lo, hi].
func UniformDelay(lo, hi time.Duration) DelayFunc {
	if hi < lo {
		panic("discovery: UniformDelay hi < lo")
	}
	return func(rng *sim.RNG) time.Duration {
		return lo + time.Duration(rng.Int63()%int64(hi-lo+1))
	}
}

// DefaultDelay approximates a production dissemination tree: most clients
// learn a new map within a second or two.
func DefaultDelay() DelayFunc { return UniformDelay(500*time.Millisecond, 2*time.Second) }

// Subscription is one client's registration for an app's shard maps.
type Subscription struct {
	app shard.AppID
	id  int // per-app subscriber index, for trace labels
	fn  func(*shard.Map)
	// deltaFn, when non-nil, receives in-order incremental updates instead
	// of full snapshots (SubscribeDelta). fn still handles full snapshots:
	// the initial catch-up and any resync after a missed version.
	deltaFn func(*shard.Delta)
	// rng drives this subscriber's propagation delays. Each subscriber owns
	// a stream forked at Subscribe time: were delays drawn from one shared
	// service RNG, adding or removing any subscriber would shift every other
	// subscriber's delay sequence.
	rng       *sim.RNG
	lastSeen  int64
	cancelled bool
}

// Cancel stops future deliveries.
func (s *Subscription) Cancel() { s.cancelled = true }

// subBatch groups consecutive subscribers that share one delivery event per
// publication. Each batch owns a forked RNG for its propagation delays, so
// batch membership changes never perturb other batches' delay streams.
type subBatch struct {
	rng  *sim.RNG
	subs []*Subscription
}

type appState struct {
	current *shard.Map
	pubAt   time.Duration // simulated time current was published
	subs    []*Subscription
	batches []*subBatch // populated only when fanoutBatch > 1
	// inflight is the delta delivered by the most recent PublishDelta,
	// retained until the next publish so in-flight deliveries can read it;
	// it is then handed back to the publisher as a recycled buffer.
	inflight *shard.Delta
}

// Service is the discovery system. One instance serves all applications.
type Service struct {
	loop  *sim.Loop
	rng   *sim.RNG
	delay DelayFunc
	apps  map[shard.AppID]*appState

	// fanoutBatch is the number of subscribers sharing one delivery event
	// (and one sampled propagation delay) per publication. The default of 1
	// is the exact legacy behavior: every subscriber draws its own delay
	// from its own RNG stream. Large-scale experiments raise it so a
	// publish schedules O(subs/batch) events instead of O(subs).
	fanoutBatch int

	// freeDeliveries / freeBatchDeliveries recycle the per-delivery records
	// that ride the event loop's arg slot, keeping fan-out allocation-free.
	freeDeliveries      *delivery
	freeBatchDeliveries *batchDelivery

	// Publications counts Publish calls, for tests and smctl.
	Publications int64

	// observers see every delivery outcome. Unlike Subscribe they consume
	// no RNG draws, so attaching one (healthmon and the auditor do) cannot
	// perturb a seeded run. lag is publish-to-delivery staleness; status is
	// "delivered", "stale", "cancelled", or — delta mode only — "resync" (a
	// subscriber that could not chain onto a delta received a full snapshot).
	observers []func(app shard.AppID, version int64, lag time.Duration, status string)
}

// SetObserver registers the delivery observer, replacing any previously
// attached observers (nil to clear).
func (s *Service) SetObserver(fn func(app shard.AppID, version int64, lag time.Duration, status string)) {
	if fn == nil {
		s.observers = nil
		return
	}
	s.observers = []func(shard.AppID, int64, time.Duration, string){fn}
}

// AddObserver registers an additional delivery observer without disturbing
// ones already attached; observers fire in attachment order.
func (s *Service) AddObserver(fn func(app shard.AppID, version int64, lag time.Duration, status string)) {
	if fn == nil {
		panic("discovery: AddObserver(nil)")
	}
	s.observers = append(s.observers, fn)
}

// NewService returns a discovery service using the given delay model (nil
// means DefaultDelay).
func NewService(loop *sim.Loop, delay DelayFunc) *Service {
	if delay == nil {
		delay = DefaultDelay()
	}
	return &Service{
		loop:        loop,
		rng:         loop.RNG().Fork(),
		delay:       delay,
		apps:        make(map[shard.AppID]*appState),
		fanoutBatch: 1,
	}
}

// SetFanoutBatch sets how many subscribers share one delivery event per
// publication (n <= 1 restores the exact per-subscriber legacy behavior).
// Batch membership is fixed at Subscribe time, so the batch size must be
// chosen before any subscriber registers.
func (s *Service) SetFanoutBatch(n int) {
	if n < 1 {
		n = 1
	}
	for _, st := range s.apps {
		if len(st.subs) > 0 {
			panic("discovery: SetFanoutBatch after Subscribe")
		}
	}
	s.fanoutBatch = n
}

func (s *Service) state(app shard.AppID) *appState {
	st, ok := s.apps[app]
	if !ok {
		st = &appState{}
		s.apps[app] = st
	}
	return st
}

// Publish stores the map as the app's current version and schedules delivery
// to every subscriber after an independent propagation delay. Maps are
// applied in generation order when stamped (Gen > 0) — a publish whose
// fencing generation is behind the current map's is stale (e.g. reordered in
// flight from a superseded control-plane incarnation) and dropped, counted in
// discovery_stale_publishes_total; unstamped maps fall back to version order.
// The map is cloned; the caller may keep mutating its copy.
func (s *Service) Publish(m *shard.Map) {
	s.publish(m, nil)
}

// PublishScratch is Publish for callers that recycle map storage: the
// snapshot is cloned into scratch (reusing its entry map and assignment
// slices) instead of deep-allocating, and the app's previous current map is
// returned to serve as the caller's next scratch buffer. It is only safe
// when no subscriber retains a delivered map beyond its callback and every
// delivery of the previous map has completed (propagation delay shorter
// than the publish interval); otherwise retained maps would be mutated in
// place. Returns scratch unchanged when the publish is dropped as stale.
func (s *Service) PublishScratch(m, scratch *shard.Map) *shard.Map {
	return s.publish(m, scratch)
}

func (s *Service) publish(m, scratch *shard.Map) *shard.Map {
	if m == nil {
		panic("discovery: Publish(nil)")
	}
	st := s.state(m.App)
	if st.current != nil {
		stale := m.Version <= st.current.Version
		if m.Gen > 0 && st.current.Gen > 0 {
			stale = m.Gen <= st.current.Gen
		}
		if stale {
			if mr := s.loop.Metrics(); mr != nil {
				mr.Counter("discovery_stale_publishes_total", "app", string(m.App)).Inc()
			}
			return scratch
		}
	}
	var prev, snap *shard.Map
	if scratch != nil {
		prev = st.current
		snap = m.CloneInto(scratch)
	} else {
		snap = m.Clone()
	}
	st.current = snap
	st.pubAt = s.loop.Now()
	s.Publications++
	if mr := s.loop.Metrics(); mr != nil {
		mr.Counter("discovery_publications_total", "app", string(m.App)).Inc()
		mr.Gauge("discovery_map_version", "app", string(m.App)).Set(float64(snap.Version))
	}
	if s.fanoutBatch > 1 {
		for _, b := range st.batches {
			s.deliverBatch(b, st, snap, nil, st.pubAt)
		}
	} else {
		for _, sub := range st.subs {
			s.deliver(sub, st, snap, nil, st.pubAt)
		}
	}
	return prev
}

// PublishDelta publishes an incremental update: the delta is applied in
// place to the app's current map — O(changed entries) instead of the
// O(shards) copy a full publish pays — and fanned out to subscribers, who
// chain it onto their own maps (or resync from a full snapshot when they
// can't; see SubscribeDelta). Delivery delays draw from the same
// per-subscriber (or per-batch) RNG streams as full publishes, so a run is
// schedule-identical whichever form the publisher uses.
//
// Ordering follows Publish: a delta whose generation (when stamped, Gen > 0)
// or target version is behind the current map is dropped as stale and
// counted in discovery_stale_publishes_total; a non-stale delta whose
// FromVersion does not match the current map (the publisher diffed against a
// base the service never saw) is dropped and counted in
// discovery_delta_gap_publishes_total — the publisher must fall back to a
// full Publish.
//
// Buffer recycling mirrors PublishScratch: the service retains d until the
// app's next publish and then returns it as the caller's next scratch
// buffer, so the returned delta (nil on the first call, d itself on a drop)
// must not be read — only Reset and refilled. As with PublishScratch this is
// safe only while propagation delays are shorter than the publish interval.
func (s *Service) PublishDelta(d *shard.Delta) *shard.Delta {
	if d == nil {
		panic("discovery: PublishDelta(nil)")
	}
	st := s.state(d.App)
	if st.current == nil {
		panic("discovery: PublishDelta before any full Publish")
	}
	stale := d.ToVersion <= st.current.Version
	if d.Gen > 0 && st.current.Gen > 0 {
		stale = d.Gen <= st.current.Gen
	}
	if stale {
		if mr := s.loop.Metrics(); mr != nil {
			mr.Counter("discovery_stale_publishes_total", "app", string(d.App)).Inc()
		}
		return d
	}
	if st.current.Version != d.FromVersion {
		if mr := s.loop.Metrics(); mr != nil {
			mr.Counter("discovery_delta_gap_publishes_total", "app", string(d.App)).Inc()
		}
		return d
	}
	if err := st.current.ApplyDelta(d); err != nil {
		panic("discovery: " + err.Error())
	}
	st.pubAt = s.loop.Now()
	s.Publications++
	if mr := s.loop.Metrics(); mr != nil {
		mr.Counter("discovery_publications_total", "app", string(d.App)).Inc()
		mr.Counter("discovery_delta_publishes_total", "app", string(d.App)).Inc()
		mr.Gauge("discovery_map_version", "app", string(d.App)).Set(float64(st.current.Version))
	}
	if s.fanoutBatch > 1 {
		for _, b := range st.batches {
			s.deliverBatch(b, st, nil, d, st.pubAt)
		}
	} else {
		for _, sub := range st.subs {
			s.deliver(sub, st, nil, d, st.pubAt)
		}
	}
	recycled := st.inflight
	st.inflight = d
	return recycled
}

// delivery is the pooled state of one scheduled per-subscriber delivery —
// what the old per-delivery closure captured, recycled when it fires. Exactly
// one of m (full snapshot) and d (incremental delta) is non-nil; st is the
// owning app's state, consulted at fire time when a delta delivery must fall
// back to a full resync.
type delivery struct {
	s     *Service
	sub   *Subscription
	st    *appState
	m     *shard.Map
	d     *shard.Delta
	pubAt time.Duration
	sp    trace.SpanID
	next  *delivery
}

// batchDelivery is the pooled state of one scheduled batch fan-out event.
type batchDelivery struct {
	s     *Service
	batch *subBatch
	st    *appState
	m     *shard.Map
	d     *shard.Delta
	pubAt time.Duration
	sp    trace.SpanID
	next  *batchDelivery
}

// deliver schedules one delivery — a full map m, or a delta dlt when m is
// nil; its span stretches from publication to the subscriber's callback, so
// map-propagation lag is directly visible. pubAt is when the version was
// published, so staleness metrics measure from publication rather than from
// this (possibly later) subscribe time. Full and delta deliveries draw their
// delays from the same per-subscriber RNG stream, so switching a publisher
// to deltas does not shift anyone's delay sequence.
func (s *Service) deliver(sub *Subscription, st *appState, m *shard.Map, dlt *shard.Delta, pubAt time.Duration) {
	d := s.delay(sub.rng)
	tr := s.loop.Tracer()
	var sp trace.SpanID
	if tr.Enabled() {
		if m != nil {
			sp = tr.StartSpan("discovery", "propagate", 0,
				trace.String("app", string(m.App)),
				trace.Int64("version", m.Version),
				trace.Int("sub", sub.id))
		} else {
			sp = tr.StartSpan("discovery", "propagate", 0,
				trace.String("app", string(dlt.App)),
				trace.Int64("version", dlt.ToVersion),
				trace.Int("sub", sub.id),
				trace.Int("edits", dlt.Len()))
		}
	}
	dv := s.freeDeliveries
	if dv == nil {
		dv = &delivery{s: s}
	} else {
		s.freeDeliveries = dv.next
		dv.next = nil
	}
	dv.sub, dv.st, dv.m, dv.d, dv.pubAt, dv.sp = sub, st, m, dlt, pubAt, sp
	s.loop.PostArgL(d, lbDeliver, deliverOne, dv)
}

// applyDeltaDelivery applies one delta delivery to sub, emitting the delivery
// metrics and observer calls, and returns the outcome status. A subscriber
// whose version chains onto the delta (lastSeen == FromVersion) applies it
// in order through its delta callback; one that missed a version — or that
// subscribed without a delta callback — resyncs from the app's authoritative
// current map instead (status "resync").
func (s *Service) applyDeltaDelivery(sub *Subscription, st *appState, dlt *shard.Delta, lag time.Duration) string {
	status, version := "delivered", dlt.ToVersion
	var resync *shard.Map
	switch {
	case sub.cancelled:
		status = "cancelled"
	case dlt.ToVersion <= sub.lastSeen:
		status = "stale"
	case sub.deltaFn != nil && sub.lastSeen == dlt.FromVersion:
		// In-order: apply below, after metrics/observers.
	default:
		if cur := st.current; cur != nil && cur.Version > sub.lastSeen {
			status, version, resync = "resync", cur.Version, cur
		} else {
			status = "stale"
		}
	}
	if mr := s.loop.Metrics(); mr != nil {
		mr.Counter("discovery_deliveries_total",
			"app", string(dlt.App), "status", status).Inc()
		if status == "delivered" || status == "resync" {
			mr.Histogram("discovery_propagation_ms", nil, "app", string(dlt.App)).
				Observe(float64(lag) / float64(time.Millisecond))
		}
	}
	for _, obs := range s.observers {
		obs(dlt.App, version, lag, status)
	}
	switch status {
	case "delivered":
		sub.lastSeen = dlt.ToVersion
		sub.deltaFn(dlt)
	case "resync":
		sub.lastSeen = resync.Version
		sub.fn(resync)
	}
	return status
}

// deliverOne runs one per-subscriber delivery at its propagation instant.
func deliverOne(a any) {
	dv := a.(*delivery)
	s, sub, st, m, dlt, pubAt, sp := dv.s, dv.sub, dv.st, dv.m, dv.d, dv.pubAt, dv.sp
	*dv = delivery{s: s, next: s.freeDeliveries}
	s.freeDeliveries = dv

	if dlt != nil {
		status := s.applyDeltaDelivery(sub, st, dlt, s.loop.Now()-pubAt)
		if tr := s.loop.Tracer(); tr.Enabled() {
			tr.EndSpan(sp, trace.String("status", status))
		}
		return
	}

	status := "delivered"
	if sub.cancelled || m.Version <= sub.lastSeen {
		status = "stale"
		if sub.cancelled {
			status = "cancelled"
		}
	}
	lag := s.loop.Now() - pubAt
	if mr := s.loop.Metrics(); mr != nil {
		mr.Counter("discovery_deliveries_total",
			"app", string(m.App), "status", status).Inc()
		if status == "delivered" {
			mr.Histogram("discovery_propagation_ms", nil, "app", string(m.App)).
				Observe(float64(lag) / float64(time.Millisecond))
		}
	}
	for _, obs := range s.observers {
		obs(m.App, m.Version, lag, status)
	}
	tr := s.loop.Tracer()
	if status != "delivered" {
		if tr.Enabled() {
			tr.EndSpan(sp, trace.String("status", status))
		}
		return // stale delivery overtaken by a newer one
	}
	sub.lastSeen = m.Version
	if tr.Enabled() {
		tr.EndSpan(sp, trace.String("status", "delivered"))
	}
	sub.fn(m)
}

// deliverBatch schedules one delivery event for a whole subscriber batch —
// one sampled delay from the batch's RNG, one event, one span — carrying a
// full map m or, when m is nil, the delta dlt.
func (s *Service) deliverBatch(b *subBatch, st *appState, m *shard.Map, dlt *shard.Delta, pubAt time.Duration) {
	d := s.delay(b.rng)
	tr := s.loop.Tracer()
	var sp trace.SpanID
	if tr.Enabled() {
		if m != nil {
			sp = tr.StartSpan("discovery", "propagate", 0,
				trace.String("app", string(m.App)),
				trace.Int64("version", m.Version),
				trace.Int("subs", len(b.subs)))
		} else {
			sp = tr.StartSpan("discovery", "propagate", 0,
				trace.String("app", string(dlt.App)),
				trace.Int64("version", dlt.ToVersion),
				trace.Int("subs", len(b.subs)),
				trace.Int("edits", dlt.Len()))
		}
	}
	bd := s.freeBatchDeliveries
	if bd == nil {
		bd = &batchDelivery{s: s}
	} else {
		s.freeBatchDeliveries = bd.next
		bd.next = nil
	}
	bd.batch, bd.st, bd.m, bd.d, bd.pubAt, bd.sp = b, st, m, dlt, pubAt, sp
	s.loop.PostArgL(d, lbDeliver, deliverToBatch, bd)
}

// deliverToBatch applies one published map or delta to every subscriber in a
// batch.
func deliverToBatch(a any) {
	bd := a.(*batchDelivery)
	s, batch, st, m, dlt, pubAt, sp := bd.s, bd.batch, bd.st, bd.m, bd.d, bd.pubAt, bd.sp
	*bd = batchDelivery{s: s, next: s.freeBatchDeliveries}
	s.freeBatchDeliveries = bd

	lag := s.loop.Now() - pubAt
	if dlt != nil {
		delivered := 0
		for _, sub := range batch.subs {
			if s.applyDeltaDelivery(sub, st, dlt, lag) == "delivered" {
				delivered++
			}
		}
		if tr := s.loop.Tracer(); tr.Enabled() {
			tr.EndSpan(sp, trace.String("status", "delivered"),
				trace.Int("delivered", delivered))
		}
		return
	}
	mr := s.loop.Metrics()
	delivered := 0
	for _, sub := range batch.subs {
		status := "delivered"
		if sub.cancelled || m.Version <= sub.lastSeen {
			status = "stale"
			if sub.cancelled {
				status = "cancelled"
			}
		}
		if mr != nil {
			mr.Counter("discovery_deliveries_total",
				"app", string(m.App), "status", status).Inc()
			if status == "delivered" {
				mr.Histogram("discovery_propagation_ms", nil, "app", string(m.App)).
					Observe(float64(lag) / float64(time.Millisecond))
			}
		}
		for _, obs := range s.observers {
			obs(m.App, m.Version, lag, status)
		}
		if status != "delivered" {
			continue
		}
		delivered++
		sub.lastSeen = m.Version
		sub.fn(m)
	}
	if tr := s.loop.Tracer(); tr.Enabled() {
		tr.EndSpan(sp, trace.String("status", "delivered"),
			trace.Int("delivered", delivered))
	}
}

// Subscribe registers fn to receive the app's shard maps. If a map already
// exists it is delivered after one propagation delay (a client fetching the
// current state at start-up).
func (s *Service) Subscribe(app shard.AppID, fn func(*shard.Map)) *Subscription {
	if fn == nil {
		panic("discovery: Subscribe(nil)")
	}
	st := s.state(app)
	sub := &Subscription{app: app, id: len(st.subs), fn: fn, rng: s.rng.Fork()}
	st.subs = append(st.subs, sub)
	if s.fanoutBatch > 1 {
		if nb := len(st.batches); nb == 0 || len(st.batches[nb-1].subs) == s.fanoutBatch {
			st.batches = append(st.batches, &subBatch{rng: s.rng.Fork()})
		}
		b := st.batches[len(st.batches)-1]
		b.subs = append(b.subs, sub)
	}
	if st.current != nil {
		// Start-up catch-up is per-subscriber even in batch mode: the new
		// subscriber fetches the current map on its own stream.
		s.deliver(sub, st, st.current, nil, st.pubAt)
	}
	return sub
}

// SubscribeDelta registers a delta-aware subscriber. onDelta receives each
// in-order incremental update (the N→N+1 delta when the subscriber's map is
// at N); onFull receives full snapshots — the start-up catch-up, full-map
// publishes, and a resync whenever the subscriber cannot chain onto a
// delivered delta (observer status "resync"). Both arguments are
// service-owned: apply them inside the callback and do not retain them.
// RNG accounting matches Subscribe exactly, so replacing a Subscribe call
// with SubscribeDelta does not perturb a seeded run.
func (s *Service) SubscribeDelta(app shard.AppID, onFull func(*shard.Map), onDelta func(*shard.Delta)) *Subscription {
	if onFull == nil || onDelta == nil {
		panic("discovery: SubscribeDelta(nil)")
	}
	sub := s.Subscribe(app, onFull)
	sub.deltaFn = onDelta
	return sub
}

// Current returns the latest published map for app (no delay — this is the
// authoritative read used by control-plane components, not clients), or nil.
func (s *Service) Current(app shard.AppID) *shard.Map {
	st, ok := s.apps[app]
	if !ok || st.current == nil {
		return nil
	}
	return st.current.Clone()
}

// CurrentMeta returns the version and generation of app's current map
// without cloning it, or ok=false when nothing has been published. Clients
// use it to decide whether a refresh is worth the copy.
func (s *Service) CurrentMeta(app shard.AppID) (version, gen int64, ok bool) {
	st, found := s.apps[app]
	if !found || st.current == nil {
		return 0, 0, false
	}
	return st.current.Version, st.current.Gen, true
}

// CurrentInto clones the latest published map for app into dst, reusing its
// storage (shard.Map.CloneInto; dst may be nil). Returns the clone, or nil
// when nothing has been published.
func (s *Service) CurrentInto(app shard.AppID, dst *shard.Map) *shard.Map {
	st, ok := s.apps[app]
	if !ok || st.current == nil {
		return nil
	}
	return st.current.CloneInto(dst)
}
