package discovery

import (
	"testing"
	"time"

	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
)

func mapV(v int64) *shard.Map {
	m := shard.NewMap("app")
	m.Version = v
	m.Entries["s1"] = []shard.Assignment{{Server: shard.ServerID("srv"), Role: shard.RolePrimary}}
	return m
}

func TestPublishDeliversAfterDelay(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	var got []int64
	svc.Subscribe("app", func(m *shard.Map) { got = append(got, m.Version) })
	svc.Publish(mapV(1))
	loop.RunFor(500 * time.Millisecond)
	if len(got) != 0 {
		t.Fatal("delivered before propagation delay")
	}
	loop.RunFor(time.Second)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("got = %v", got)
	}
}

func TestSubscribeReceivesCurrentMap(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	svc.Publish(mapV(7))
	var got int64
	svc.Subscribe("app", func(m *shard.Map) { got = m.Version })
	loop.RunFor(2 * time.Second)
	if got != 7 {
		t.Fatalf("late subscriber got v%d, want 7", got)
	}
}

func TestStaleVersionsIgnoredOnPublish(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	svc.Publish(mapV(5))
	svc.Publish(mapV(4)) // older, ignored
	svc.Publish(mapV(5)) // same, ignored
	if svc.Publications != 1 {
		t.Fatalf("Publications = %d, want 1", svc.Publications)
	}
	if svc.Current("app").Version != 5 {
		t.Fatalf("Current = v%d", svc.Current("app").Version)
	}
}

func TestOutOfOrderDeliverySuppressed(t *testing.T) {
	loop := sim.NewLoop(1)
	// Delay alternates long, short: v1 delivery scheduled with a longer
	// delay than v2, so v2 arrives first and v1 must be dropped.
	delays := []time.Duration{3 * time.Second, 1 * time.Second}
	i := 0
	svc := NewService(loop, func(*sim.RNG) time.Duration {
		d := delays[i%len(delays)]
		i++
		return d
	})
	var got []int64
	svc.Subscribe("app", func(m *shard.Map) { got = append(got, m.Version) })
	svc.Publish(mapV(1))
	svc.Publish(mapV(2))
	loop.RunFor(10 * time.Second)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("got = %v, want just [2]", got)
	}
}

func TestCancelStopsDelivery(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	n := 0
	sub := svc.Subscribe("app", func(*shard.Map) { n++ })
	svc.Publish(mapV(1))
	sub.Cancel()
	loop.RunFor(5 * time.Second)
	if n != 0 {
		t.Fatalf("cancelled subscriber received %d maps", n)
	}
}

func TestPublishClonesMap(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(0))
	m := mapV(1)
	svc.Publish(m)
	m.Entries["s1"][0].Server = "mutated"
	if svc.Current("app").Entries["s1"][0].Server != "srv" {
		t.Fatal("Publish did not clone")
	}
}

func TestCurrentUnknownApp(t *testing.T) {
	svc := NewService(sim.NewLoop(1), nil)
	if svc.Current("nope") != nil {
		t.Fatal("Current of unknown app should be nil")
	}
}

func TestUniformDelayBounds(t *testing.T) {
	rng := sim.NewRNG(3)
	f := UniformDelay(time.Second, 2*time.Second)
	for i := 0; i < 1000; i++ {
		d := f(rng)
		if d < time.Second || d > 2*time.Second {
			t.Fatalf("delay %v out of bounds", d)
		}
	}
}

func TestUniformDelayPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UniformDelay(2*time.Second, time.Second)
}

func TestMultipleSubscribersIndependentDelays(t *testing.T) {
	loop := sim.NewLoop(42)
	svc := NewService(loop, DefaultDelay())
	n := 0
	for i := 0; i < 50; i++ {
		svc.Subscribe("app", func(*shard.Map) { n++ })
	}
	svc.Publish(mapV(1))
	loop.RunFor(3 * time.Second)
	if n != 50 {
		t.Fatalf("deliveries = %d, want 50", n)
	}
}

func TestPanicsOnNilArgs(t *testing.T) {
	svc := NewService(sim.NewLoop(1), nil)
	for name, fn := range map[string]func(){
		"publish nil":   func() { svc.Publish(nil) },
		"subscribe nil": func() { svc.Subscribe("app", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestSubscriberDeliveryTimingUnaffectedByOtherSubscribers is the regression
// test for the shared-RNG bug: delivery delays used to come from one service
// stream consumed in delivery order, so adding a subscriber shifted every
// other subscriber's delay sequence. With per-subscriber forked RNGs, an
// earlier subscriber's timing is identical whether or not later subscribers
// exist.
func TestSubscriberDeliveryTimingUnaffectedByOtherSubscribers(t *testing.T) {
	run := func(extraSubscribers int) []time.Duration {
		loop := sim.NewLoop(42)
		svc := NewService(loop, DefaultDelay())
		var at []time.Duration
		svc.Subscribe("app", func(*shard.Map) { at = append(at, loop.Now()) })
		for i := 0; i < extraSubscribers; i++ {
			svc.Subscribe("app", func(*shard.Map) {})
		}
		for v := int64(1); v <= 5; v++ {
			svc.Publish(mapV(v))
			loop.RunFor(5 * time.Second)
		}
		return at
	}
	alone := run(0)
	crowded := run(7)
	if len(alone) != 5 || len(crowded) != 5 {
		t.Fatalf("deliveries = %d and %d, want 5 each", len(alone), len(crowded))
	}
	for i := range alone {
		if alone[i] != crowded[i] {
			t.Fatalf("delivery %d at %v alone but %v with extra subscribers", i, alone[i], crowded[i])
		}
	}
}

// A cancelled subscription must not change the delay sequence of the
// remaining subscribers either.
func TestCancelDoesNotPerturbOtherSubscribers(t *testing.T) {
	run := func(cancel bool) []time.Duration {
		loop := sim.NewLoop(7)
		svc := NewService(loop, DefaultDelay())
		var at []time.Duration
		svc.Subscribe("app", func(*shard.Map) { at = append(at, loop.Now()) })
		other := svc.Subscribe("app", func(*shard.Map) {})
		if cancel {
			other.Cancel()
		}
		for v := int64(1); v <= 5; v++ {
			svc.Publish(mapV(v))
			loop.RunFor(5 * time.Second)
		}
		return at
	}
	kept, cancelled := run(false), run(true)
	for i := range kept {
		if kept[i] != cancelled[i] {
			t.Fatalf("delivery %d moved from %v to %v when a sibling cancelled", i, kept[i], cancelled[i])
		}
	}
}

func TestBatchedFanoutDeliversToAllSubscribers(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	svc.SetFanoutBatch(4)
	const subs = 10 // 3 batches: 4 + 4 + 2
	got := make([]int64, subs)
	for i := 0; i < subs; i++ {
		i := i
		svc.Subscribe("app", func(m *shard.Map) { got[i] = m.Version })
	}
	svc.Publish(mapV(1))
	// One event per batch, not per subscriber.
	if p := loop.Pending(); p != 3 {
		t.Fatalf("Pending = %d after publish, want 3 batch events", p)
	}
	loop.RunFor(2 * time.Second)
	for i, v := range got {
		if v != 1 {
			t.Fatalf("subscriber %d saw version %d, want 1", i, v)
		}
	}
}

func TestBatchedFanoutRespectsCancelAndStaleness(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	svc.SetFanoutBatch(8)
	var live, dead int
	svc.Subscribe("app", func(*shard.Map) { live++ })
	cancelled := svc.Subscribe("app", func(*shard.Map) { dead++ })
	cancelled.Cancel()
	svc.Publish(mapV(1))
	svc.Publish(mapV(2))
	loop.RunFor(5 * time.Second)
	if live != 2 || dead != 0 {
		t.Fatalf("live=%d dead=%d, want 2/0", live, dead)
	}
}

func TestBatchedFanoutCatchUpOnSubscribe(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	svc.SetFanoutBatch(4)
	svc.Publish(mapV(3))
	loop.RunFor(2 * time.Second)
	var got int64
	svc.Subscribe("app", func(m *shard.Map) { got = m.Version })
	loop.RunFor(2 * time.Second)
	if got != 3 {
		t.Fatalf("late subscriber saw version %d, want 3", got)
	}
}

func TestSetFanoutBatchAfterSubscribePanics(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	svc.Subscribe("app", func(*shard.Map) {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetFanoutBatch after Subscribe did not panic")
		}
	}()
	svc.SetFanoutBatch(4)
}

func TestDefaultFanoutMatchesLegacyPerSubscriberTiming(t *testing.T) {
	// Batch size 1 (the default) must be byte-for-byte the legacy path:
	// same per-subscriber RNG streams, same delivery instants. Compare a
	// default service against one with SetFanoutBatch(1) explicitly.
	run := func(configure func(*Service)) []time.Duration {
		loop := sim.NewLoop(42)
		svc := NewService(loop, nil) // DefaultDelay: per-delivery RNG draws
		configure(svc)
		var at []time.Duration
		for i := 0; i < 5; i++ {
			svc.Subscribe("app", func(*shard.Map) { at = append(at, loop.Now()) })
		}
		svc.Publish(mapV(1))
		loop.RunFor(time.Minute)
		return at
	}
	a := run(func(*Service) {})
	b := run(func(s *Service) { s.SetFanoutBatch(1) })
	if len(a) != len(b) || len(a) != 5 {
		t.Fatalf("deliveries: %d vs %d, want 5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d at %v vs %v: batch=1 diverges from legacy", i, a[i], b[i])
		}
	}
}

func TestPublishScratchReusesBuffers(t *testing.T) {
	loop := sim.NewLoop(1)
	svc := NewService(loop, FixedDelay(time.Second))
	applied := 0
	svc.Subscribe("app", func(*shard.Map) { applied++ })
	m := mapV(1)
	scratch := svc.PublishScratch(m, shard.NewMap("app"))
	loop.RunFor(2 * time.Second)
	for v := int64(2); v <= 4; v++ {
		m.Version = v
		scratch = svc.PublishScratch(m, scratch)
		loop.RunFor(2 * time.Second)
	}
	if applied != 4 {
		t.Fatalf("applied = %d, want 4", applied)
	}
	if cur := svc.Current("app"); cur == nil || cur.Version != 4 {
		t.Fatalf("Current = %+v, want version 4", cur)
	}
	// A stale publish hands the scratch straight back.
	m.Version = 2
	if got := svc.PublishScratch(m, scratch); got != scratch {
		t.Fatal("stale PublishScratch did not return the scratch buffer")
	}
}
