package experiments

import (
	"strings"
	"testing"
)

// quickTortureParams shrink nothing — each torture seed is already a small
// world; tests just bound the seed count.
func quickTortureParams() TortureParams {
	p := DefaultTortureParams()
	p.Seeds = 4
	return p
}

// TestCompoundFaultsAuditClean asserts the §4.3 invariants hold through the
// whole compound-fault scenario on its default seed: thousands of checks,
// zero violations — the auditor proves the graceful-migration protocol
// survives the fault barrage, not just that availability recovers.
func TestCompoundFaultsAuditClean(t *testing.T) {
	r := CompoundFaults(quickCompoundFaultParams())
	if got := r.Values["audit_violations"]; got != 0 {
		art, _ := r.Extra.(*AuditArtifacts)
		txt := ""
		if art != nil {
			txt = art.Text
		}
		t.Fatalf("audit_violations = %v, want 0\n%s", got, txt)
	}
	if got := r.Values["audit_checks"]; got < 1000 {
		t.Fatalf("audit_checks = %v, want >= 1000 (auditor not wired?)", got)
	}
}

// TestCompoundFaultsAuditByteIdentical runs the audited compound experiment
// twice and compares the full deterministic audit reports byte for byte.
// The report includes every timeline timestamp, so any nondeterminism in
// the run — or any RNG draw introduced by the observer hooks themselves —
// shows up here.
func TestCompoundFaultsAuditByteIdentical(t *testing.T) {
	var texts [2]string
	for i := range texts {
		r := CompoundFaults(quickCompoundFaultParams())
		art, ok := r.Extra.(*AuditArtifacts)
		if !ok {
			t.Fatalf("compound report carries no audit artifacts (Extra = %T)", r.Extra)
		}
		texts[i] = art.Text
	}
	if texts[0] != texts[1] {
		t.Fatalf("audit reports differ between identical runs:\n--- first\n%s\n--- second\n%s",
			texts[0], texts[1])
	}
}

// TestTortureCleanSeed pins a seed the sweep found clean: concurrent
// migrations under its random fault timeline with zero violations.
func TestTortureCleanSeed(t *testing.T) {
	run := RunTortureSeed(quickTortureParams(), 1)
	if n := run.Auditor.ViolationCount(); n != 0 {
		t.Fatalf("seed 1: %d violations, want 0 (first: %+v)", n, run.Bugs)
	}
	checks := run.Auditor.Checks()
	for _, inv := range []string{"one-primary", "stale-routing", "write-owner"} {
		if checks[inv] == 0 {
			t.Errorf("seed 1: invariant %s never checked", inv)
		}
	}
}

// TestTortureRegressionSeed5 pins the torture sweep's headline finding:
// under seed 5's timeline a session-expired ("false-dead") server keeps
// serving as primary while failover promotes a replacement, so the auditor
// must observe dual active primaries and a write executed during the
// overlap. The pinned seed reproduces the finding deterministically; if a
// future change fixes the false-dead overlap (e.g. demotion RPCs to
// suspected-dead servers), update this test alongside it.
func TestTortureRegressionSeed5(t *testing.T) {
	run := RunTortureSeed(quickTortureParams(), 5)
	if run.Auditor.ViolationCount() == 0 {
		t.Fatal("seed 5: no violations; the pinned false-dead overlap no longer reproduces")
	}
	got := make(map[string]bool)
	for _, b := range run.Bugs {
		got[b.Invariant] = true
	}
	for _, inv := range []string{"one-primary", "write-owner"} {
		if !got[inv] {
			t.Errorf("seed 5: invariant %s not violated (bugs: %+v)", inv, run.Bugs)
		}
	}
	// The violation's ownership timeline must show the session expiry side:
	// the map moving off the still-serving primary.
	vs := run.Auditor.Violations()
	if len(vs) == 0 || len(vs[0].Timeline) == 0 {
		t.Fatal("seed 5: violation carries no timeline")
	}
	var sawMap bool
	for _, e := range vs[0].Timeline {
		if e.Kind == "map" {
			sawMap = true
		}
	}
	if !sawMap {
		t.Errorf("seed 5: first violation timeline has no map event:\n%+v", vs[0].Timeline)
	}
	// Determinism pin: the same seed must yield the identical report.
	again := RunTortureSeed(quickTortureParams(), 5)
	if a, b := NewAuditArtifacts(run.Auditor).Text, NewAuditArtifacts(again.Auditor).Text; a != b {
		t.Fatal("seed 5 audit reports differ between identical runs")
	}
}

// TestTortureRegressionSeed70 pins the sweep's stale-routing class: under
// seed 70's timeline a client keeps getting requests served by a server
// long after the published map moved the shard away (the tombstone-forward
// window plus propagation is bounded by StaleBound; this seed exceeds it).
func TestTortureRegressionSeed70(t *testing.T) {
	run := RunTortureSeed(quickTortureParams(), 70)
	var found *FoundBug
	for i := range run.Bugs {
		if run.Bugs[i].Invariant == "stale-routing" {
			found = &run.Bugs[i]
		}
	}
	if found == nil {
		t.Fatalf("seed 70: no stale-routing finding (bugs: %+v)", run.Bugs)
	}
	if !strings.Contains(found.Detail, "removed from the map") {
		t.Errorf("seed 70 stale-routing detail changed: %q", found.Detail)
	}
}

// TestTortureRegressionSeed321 pins the sweep's second class of finding: a
// seed whose world crashes outright. Under seed 321's timeline the
// orchestrator publishes a map with a duplicate replica of one shard on one
// server, tripping its own publish-time sanity panic. The harness must
// survive the crash, record it as an InvPanic finding, and stay
// deterministic. If a future change fixes the duplicate-replica path, update
// this test alongside it.
func TestTortureRegressionSeed321(t *testing.T) {
	run := RunTortureSeed(quickTortureParams(), 321)
	if run.Panic == "" {
		t.Fatal("seed 321: no panic; the pinned duplicate-replica crash no longer reproduces")
	}
	if !strings.Contains(run.Panic, "duplicate replica") {
		t.Errorf("seed 321 panic changed: %q", run.Panic)
	}
	last := run.Bugs[len(run.Bugs)-1]
	if last.Invariant != InvPanic || last.Detail != run.Panic {
		t.Errorf("panic not recorded as a found bug: %+v", last)
	}
	again := RunTortureSeed(quickTortureParams(), 321)
	if again.Panic != run.Panic || again.Bugs[len(again.Bugs)-1].At != last.At {
		t.Errorf("seed 321 crash not deterministic: %q at %v vs %q at %v",
			run.Panic, last.At, again.Panic, again.Bugs[len(again.Bugs)-1].At)
	}
}

// TestTortureReport runs a tiny sweep through the registry entry and checks
// the report carries the found-bug artifacts.
func TestTortureReport(t *testing.T) {
	p := quickTortureParams()
	p.StartSeed, p.Seeds = 5, 1
	r := Torture(p)
	art, ok := r.Extra.(*TortureArtifacts)
	if !ok {
		t.Fatalf("torture report Extra = %T, want *TortureArtifacts", r.Extra)
	}
	if len(art.Bugs) == 0 || art.SeedsHit != 1 {
		t.Fatalf("artifacts = %+v, want seed 5 findings", art)
	}
	for _, b := range art.Bugs {
		if b.Seed != 5 {
			t.Errorf("bug pinned to seed %d, want 5: %+v", b.Seed, b)
		}
	}
	rendered := r.Render()
	if !strings.Contains(rendered, "seed 5:") {
		t.Errorf("rendered report lacks per-seed findings:\n%s", rendered)
	}
}
