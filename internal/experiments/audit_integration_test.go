package experiments

import (
	"strings"
	"testing"
)

// quickTortureParams shrink nothing — each torture seed is already a small
// world; tests just bound the seed count.
func quickTortureParams() TortureParams {
	p := DefaultTortureParams()
	p.Seeds = 4
	return p
}

// TestCompoundFaultsAuditClean asserts the §4.3 invariants hold through the
// whole compound-fault scenario on its default seed: thousands of checks,
// zero violations — the auditor proves the graceful-migration protocol
// survives the fault barrage, not just that availability recovers.
func TestCompoundFaultsAuditClean(t *testing.T) {
	r := CompoundFaults(quickCompoundFaultParams())
	if got := r.Values["audit_violations"]; got != 0 {
		art, _ := r.Extra.(*AuditArtifacts)
		txt := ""
		if art != nil {
			txt = art.Text
		}
		t.Fatalf("audit_violations = %v, want 0\n%s", got, txt)
	}
	if got := r.Values["audit_checks"]; got < 1000 {
		t.Fatalf("audit_checks = %v, want >= 1000 (auditor not wired?)", got)
	}
}

// TestCompoundFaultsAuditByteIdentical runs the audited compound experiment
// twice and compares the full deterministic audit reports byte for byte.
// The report includes every timeline timestamp, so any nondeterminism in
// the run — or any RNG draw introduced by the observer hooks themselves —
// shows up here.
func TestCompoundFaultsAuditByteIdentical(t *testing.T) {
	var texts [2]string
	for i := range texts {
		r := CompoundFaults(quickCompoundFaultParams())
		art, ok := r.Extra.(*AuditArtifacts)
		if !ok {
			t.Fatalf("compound report carries no audit artifacts (Extra = %T)", r.Extra)
		}
		texts[i] = art.Text
	}
	if texts[0] != texts[1] {
		t.Fatalf("audit reports differ between identical runs:\n--- first\n%s\n--- second\n%s",
			texts[0], texts[1])
	}
}

// TestTortureCleanSeed pins a seed the sweep found clean: concurrent
// migrations under its random fault timeline with zero violations.
func TestTortureCleanSeed(t *testing.T) {
	run := RunTortureSeed(quickTortureParams(), 1)
	if n := run.Auditor.ViolationCount(); n != 0 {
		t.Fatalf("seed 1: %d violations, want 0 (first: %+v)", n, run.Bugs)
	}
	checks := run.Auditor.Checks()
	for _, inv := range []string{"one-primary", "stale-routing", "write-owner"} {
		if checks[inv] == 0 {
			t.Errorf("seed 1: invariant %s never checked", inv)
		}
	}
}

// TestTortureRegressionSeed5 pins what used to be the torture sweep's
// headline finding: under seed 5's timeline a server the orchestrator
// believed dead kept serving as primary while failover promoted a
// replacement, producing dual active primaries and a write during the
// overlap. Epoch-fenced ownership (self-fencing on session expiry, the
// PromoteHold gate, and generation-ordered grants) eliminates the overlap;
// this test asserts the finding stays gone and that fencing actually
// engaged during the run rather than the fault timeline going soft.
func TestTortureRegressionSeed5(t *testing.T) {
	run := RunTortureSeed(quickTortureParams(), 5)
	if n := run.Auditor.ViolationCount(); n != 0 {
		t.Fatalf("seed 5: %d violations, want 0 — the false-dead dual-primary regressed (bugs: %+v)",
			n, run.Bugs)
	}
	fences := run.Deployment.Loop.Metrics().
		Counter("appserver_shard_ops_total", "app", "torture", "op", "fence").Value()
	if fences == 0 {
		t.Error("seed 5: no server ever self-fenced; the expire faults should trigger fencing")
	}
	// Determinism pin: the same seed must yield the identical report.
	again := RunTortureSeed(quickTortureParams(), 5)
	if a, b := NewAuditArtifacts(run.Auditor).Text, NewAuditArtifacts(again.Auditor).Text; a != b {
		t.Fatal("seed 5 audit reports differ between identical runs")
	}
}

// TestTortureRegressionSeed70 pins what used to be the sweep's stale-routing
// class: under seed 70's timeline a client kept getting requests served by a
// server long after the published map moved the shard away. Generation-
// ordered map application plus rejection-triggered map refresh keeps client
// routing inside StaleBound; the seed must stay clean.
func TestTortureRegressionSeed70(t *testing.T) {
	run := RunTortureSeed(quickTortureParams(), 70)
	for _, b := range run.Bugs {
		if b.Invariant == "stale-routing" {
			t.Fatalf("seed 70: stale-routing finding returned: %s", b.Detail)
		}
	}
	if n := run.Auditor.ViolationCount(); n != 0 {
		t.Fatalf("seed 70: %d violations, want 0 (bugs: %+v)", n, run.Bugs)
	}
}

// TestTortureRegressionSeed321 pins what used to be the sweep's crash class:
// under seed 321's timeline the orchestrator assembled a map with a
// duplicate replica of one shard and tripped its own publish-time sanity
// panic, killing the world. The publish guards now reject the bad plan
// entry (counted in orchestrator_publish_rejected_total) instead of
// publishing garbage or panicking; the seed must run to completion clean.
func TestTortureRegressionSeed321(t *testing.T) {
	run := RunTortureSeed(quickTortureParams(), 321)
	if run.Panic != "" {
		t.Fatalf("seed 321: world crashed again: %q", run.Panic)
	}
	if n := run.Auditor.ViolationCount(); n != 0 {
		t.Fatalf("seed 321: %d violations, want 0 (bugs: %+v)", n, run.Bugs)
	}
	again := RunTortureSeed(quickTortureParams(), 321)
	if a, b := NewAuditArtifacts(run.Auditor).Text, NewAuditArtifacts(again.Auditor).Text; a != b {
		t.Fatal("seed 321 audit reports differ between identical runs")
	}
}

// TestTortureReport runs a tiny sweep through the registry entry and checks
// the report carries the found-bug artifacts — now an empty log, since the
// previously pinned seeds run clean under epoch-fenced ownership.
func TestTortureReport(t *testing.T) {
	p := quickTortureParams()
	p.StartSeed, p.Seeds = 5, 1
	r := Torture(p)
	art, ok := r.Extra.(*TortureArtifacts)
	if !ok {
		t.Fatalf("torture report Extra = %T, want *TortureArtifacts", r.Extra)
	}
	if len(art.Bugs) != 0 || art.SeedsHit != 0 {
		t.Fatalf("artifacts = %+v, want no findings on seed 5", art)
	}
	if art.Checks == 0 {
		t.Fatal("artifacts carry no invariant checks; auditor not wired?")
	}
	rendered := r.Render()
	if !strings.Contains(rendered, "no invariant violations") {
		t.Errorf("rendered report should state the log is clean:\n%s", rendered)
	}
}
