package experiments

import (
	"fmt"
	"time"

	"shardmanager/internal/controlplane"
	"shardmanager/internal/discovery"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

// ControlScalePoint is one partitioned-control-plane benchmark configuration:
// an application of Shards shards split under the given partition/mini-SM
// shard limits, churned for Rounds publication waves.
type ControlScalePoint struct {
	Shards int
	// PartitionMaxShards / MiniSMMaxShards bound the split: Shards /
	// PartitionMaxShards partitions, packed onto mini-SMs that hold
	// MiniSMMaxShards shards each.
	PartitionMaxShards int
	MiniSMMaxShards    int
	// ChurnPerPartition is how many single-replica reassignments each
	// partition stages per publication wave.
	ChurnPerPartition int
	// Rounds is the number of steady-state churn waves.
	Rounds int
}

// ControlScaleParams configure the controlscale benchmark.
type ControlScaleParams struct {
	// Points are run in order; BENCH_controlplane.json records one entry
	// each. Every point runs twice — full-snapshot publication and delta
	// publication — over the same churn sequence.
	Points []ControlScalePoint
	// ShardsPerServer sizes the synthetic fleet (Shards/ShardsPerServer
	// servers, minimum 1).
	ShardsPerServer int
	// FlushBatch / FlushStagger shape the cross-partition publication wave:
	// FlushBatch partitions flush per event, consecutive batches
	// FlushStagger apart.
	FlushBatch   int
	FlushStagger time.Duration
	// SettleTime is the simulated time each wave is given to propagate
	// (must exceed the discovery delay ceiling plus the wave stagger).
	SettleTime time.Duration
	Seed       uint64
}

// DefaultControlScaleParams sweep the control plane from 100k shards up to
// the 10M-shard target: 200 partitions of 50k shards, one per mini-SM —
// a 200-mini-SM pool, the paper's "add mini-SMs to scale out" regime (§6.1).
func DefaultControlScaleParams() ControlScaleParams {
	return ControlScaleParams{
		Points: []ControlScalePoint{
			{Shards: 100_000, PartitionMaxShards: 25_000, MiniSMMaxShards: 25_000, ChurnPerPartition: 200, Rounds: 8},
			{Shards: 1_000_000, PartitionMaxShards: 50_000, MiniSMMaxShards: 50_000, ChurnPerPartition: 200, Rounds: 8},
			{Shards: 10_000_000, PartitionMaxShards: 50_000, MiniSMMaxShards: 50_000, ChurnPerPartition: 200, Rounds: 5},
		},
		ShardsPerServer: 1000,
		FlushBatch:      16,
		FlushStagger:    5 * time.Millisecond,
		SettleTime:      5 * time.Second,
		Seed:            1,
	}
}

// controlScaleOverride, when non-nil, reshapes the point sweep. smbench sets
// it from the -controlscale smoke flag.
var controlScaleOverride func(*ControlScaleParams)

// SetControlScaleOverride installs a mutator applied to the controlscale
// params after scale selection (nil to clear).
func SetControlScaleOverride(fn func(*ControlScaleParams)) { controlScaleOverride = fn }

// ControlScaleModeRecord is one publication mode's measured cost at a point.
type ControlScaleModeRecord struct {
	// Publishes counts steady-state churn publications (full snapshots or
	// deltas; the bootstrap base is excluded).
	Publishes int64 `json:"publishes"`
	// BytesPerPublish is the approximate wire size of one steady-state
	// publication (shard.Map/Delta ApproxBytes, same accounting both modes).
	BytesPerPublish float64 `json:"bytes_per_publish"`
	// ChurnWallMS is the wall-clock cost of all churn waves end to end:
	// staging, publication, discovery fan-out, and subscriber application.
	ChurnWallMS     float64 `json:"churn_wall_ms"`
	PublishesPerSec float64 `json:"publishes_per_sec"`
}

// ControlScalePointRecord is one point's machine-readable result.
type ControlScalePointRecord struct {
	Shards            int                    `json:"shards"`
	Partitions        int                    `json:"partitions"`
	MiniSMs           int                    `json:"mini_sms"`
	Servers           int                    `json:"servers"`
	Rounds            int                    `json:"rounds"`
	ChurnPerPartition int                    `json:"churn_per_partition"`
	BootstrapWallMS   float64                `json:"bootstrap_wall_ms"`
	Full              ControlScaleModeRecord `json:"full"`
	Delta             ControlScaleModeRecord `json:"delta"`
	// DeltaSpeedup is Full.ChurnWallMS / Delta.ChurnWallMS — how much
	// cheaper steady-state publication is with deltas.
	DeltaSpeedup float64 `json:"delta_speedup"`
	// DeltaEntriesPerSec is changed entries propagated per wall-clock
	// second on the delta path (the baseline-gate metric).
	DeltaEntriesPerSec float64 `json:"delta_entries_per_sec"`
	// ConvergenceMS is the worst-case simulated latency from the start of a
	// delta publication wave until every subscriber has applied its update.
	ConvergenceMS float64 `json:"convergence_ms"`
}

// ControlScaleRecord is the BENCH_controlplane.json payload (Report.Extra).
type ControlScaleRecord struct {
	Points []ControlScalePointRecord `json:"points"`
}

// ControlScale benchmarks the partitioned control plane end to end: each
// point registers one application with the control plane, which splits it
// into partitions and packs them onto mini-SMs; every partition owns a
// publication stream (its mini-SM's shard map slice) with one subscriber.
// Steady-state churn — a few hundred reassignments per partition per wave —
// is published either as full snapshots (the pre-delta control plane) or as
// deltas, over the identical churn sequence, and the two costs are compared.
func ControlScale(p ControlScaleParams) *Report {
	rep := &Report{
		ID:    "controlscale",
		Title: "partitioned control plane: full vs delta publication cost",
		Params: map[string]string{
			"points":        fmt.Sprintf("%d", len(p.Points)),
			"flush_batch":   fmt.Sprintf("%d", p.FlushBatch),
			"settle":        p.SettleTime.String(),
			"seed":          fmt.Sprintf("%d", p.Seed),
			"shards/server": fmt.Sprintf("%d", p.ShardsPerServer),
		},
	}
	rec := &ControlScaleRecord{}
	table := Table{
		Title: "steady-state publication cost by scale",
		Columns: []string{"shards", "parts", "miniSMs", "full ms/wave", "delta ms/wave",
			"full B/pub", "delta B/pub", "speedup", "converge ms"},
	}
	for i, pt := range p.Points {
		r := runControlScalePoint(p, pt, p.Seed+uint64(i))
		rec.Points = append(rec.Points, r)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Partitions),
			fmt.Sprintf("%d", r.MiniSMs),
			fmt.Sprintf("%.1f", r.Full.ChurnWallMS/float64(r.Rounds)),
			fmt.Sprintf("%.2f", r.Delta.ChurnWallMS/float64(r.Rounds)),
			fmt.Sprintf("%.0f", r.Full.BytesPerPublish),
			fmt.Sprintf("%.0f", r.Delta.BytesPerPublish),
			fmt.Sprintf("%.0fx", r.DeltaSpeedup),
			fmt.Sprintf("%.0f", r.ConvergenceMS),
		})
	}
	rep.Tables = append(rep.Tables, table)
	last := rec.Points[len(rec.Points)-1]
	rep.AddValue("shards", float64(last.Shards))
	rep.AddValue("mini_sms", float64(last.MiniSMs))
	rep.AddValue("delta_speedup", last.DeltaSpeedup)
	rep.AddValue("delta_entries_per_sec", rec.Points[0].DeltaEntriesPerSec)
	rep.AddNote("largest point: %d shards over %d partitions on %d mini-SMs; delta publication %.0fx cheaper than full snapshots (%.0f vs %.0f bytes/publish)",
		last.Shards, last.Partitions, last.MiniSMs, last.DeltaSpeedup,
		last.Delta.BytesPerPublish, last.Full.BytesPerPublish)
	rep.AddNote("worst-case map convergence at that point: %.0f ms simulated from wave start to every subscriber applied",
		last.ConvergenceMS)
	rep.Extra = rec
	return rep
}

// runControlScalePoint drives one configuration through both publication
// modes over the same churn sequence and merges the results.
func runControlScalePoint(p ControlScaleParams, pt ControlScalePoint, seed uint64) ControlScalePointRecord {
	full := runControlScaleWorld(p, pt, seed, false)
	delta := runControlScaleWorld(p, pt, seed, true)

	r := ControlScalePointRecord{
		Shards:            pt.Shards,
		Partitions:        delta.partitions,
		MiniSMs:           delta.miniSMs,
		Servers:           delta.servers,
		Rounds:            pt.Rounds,
		ChurnPerPartition: pt.ChurnPerPartition,
		BootstrapWallMS:   delta.bootstrapWall.Seconds() * 1e3,
		Full:              full.mode(),
		Delta:             delta.mode(),
		ConvergenceMS:     float64(delta.convergence) / float64(time.Millisecond),
	}
	if r.Delta.ChurnWallMS > 0 {
		r.DeltaSpeedup = r.Full.ChurnWallMS / r.Delta.ChurnWallMS
		r.DeltaEntriesPerSec = float64(delta.changedEntries) / (r.Delta.ChurnWallMS / 1e3)
	}
	return r
}

// controlScaleWorld holds one mode's measurements.
type controlScaleWorld struct {
	partitions, miniSMs, servers int
	bootstrapWall                time.Duration
	churnWall                    time.Duration
	publishes                    int64 // steady-state churn publications
	bytes                        int64 // their total approximate wire size
	changedEntries               int64
	convergence                  time.Duration // worst sim-time wave->applied
}

func (w *controlScaleWorld) mode() ControlScaleModeRecord {
	m := ControlScaleModeRecord{
		Publishes:   w.publishes,
		ChurnWallMS: w.churnWall.Seconds() * 1e3,
	}
	if w.publishes > 0 {
		m.BytesPerPublish = float64(w.bytes) / float64(w.publishes)
	}
	if w.churnWall > 0 {
		m.PublishesPerSec = float64(w.publishes) / w.churnWall.Seconds()
	}
	return m
}

// runControlScaleWorld builds one world — control plane, partition
// publishers, one subscriber per partition — bootstraps it with a full
// publication wave, then drives Rounds churn waves, measuring wall-clock
// publication cost and simulated convergence latency.
func runControlScaleWorld(p ControlScaleParams, pt ControlScalePoint, seed uint64, deltaMode bool) *controlScaleWorld {
	const app = shard.AppID("controlscale")
	loop := sim.NewLoop(seed)
	disc := discovery.NewService(loop, discovery.DefaultDelay())

	servers := pt.Shards / p.ShardsPerServer
	if servers < 1 {
		servers = 1
	}
	limits := controlplane.Limits{
		PartitionMaxServers: 5000,
		PartitionMaxShards:  pt.PartitionMaxShards,
		MiniSMMaxServers:    50000,
		MiniSMMaxShards:     pt.MiniSMMaxShards,
	}
	cp := controlplane.New(limits)
	parts, err := cp.RegisterApp(controlplane.AppSpec{
		App:     app,
		Servers: servers,
		Shards:  pt.Shards,
		Regions: []topology.RegionID{"global"},
	})
	if err != nil {
		panic(err)
	}
	router := controlplane.NewShardRouter(app, pt.Shards, len(parts))

	w := &controlScaleWorld{
		partitions: len(parts),
		miniSMs:    len(cp.MiniSMs()),
		servers:    servers,
	}

	// Identities are precomputed so churn staging costs no formatting.
	ids := make([]shard.ID, pt.Shards)
	srvs := make([]shard.ServerID, servers)
	for i := range srvs {
		srvs[i] = shard.ServerID(fmt.Sprintf("srv-%05d", i))
	}

	// One publisher and one subscriber per partition. The subscriber mirrors
	// a mini-SM's downstream consumer: in delta mode it maintains a private
	// map copy and applies each delta in place; in full mode each delivery
	// replaces the whole map (storage recycled by discovery, so the
	// subscriber only observes, never retains).
	pubs := make([]*controlplane.PartitionPublisher, len(parts))
	lastApplied := make([]time.Duration, len(parts))
	for pi := range parts {
		lo, hi := router.Range(pi)
		pm := shard.NewMap(router.PartitionApp(pi))
		for idx := lo; idx < hi; idx++ {
			ids[idx] = shard.ID(fmt.Sprintf("s%08d", idx))
			pm.Entries[ids[idx]] = []shard.Assignment{{
				Server: srvs[idx%servers],
				Role:   shard.RolePrimary,
			}}
		}
		pubs[pi] = controlplane.NewPartitionPublisher(disc, pm.App, pm, deltaMode)

		cell := &lastApplied[pi]
		if deltaMode {
			var mine *shard.Map
			disc.SubscribeDelta(pm.App,
				func(m *shard.Map) {
					mine = m.CloneInto(mine)
					*cell = loop.Now()
				},
				func(d *shard.Delta) {
					if err := mine.ApplyDelta(d); err != nil {
						panic(err)
					}
					*cell = loop.Now()
				})
		} else {
			disc.Subscribe(pm.App, func(*shard.Map) { *cell = loop.Now() })
		}
	}

	settle := func() {
		done := false
		controlplane.FlushWave(loop, pubs, p.FlushBatch, p.FlushStagger, func() { done = true })
		loop.RunFor(p.SettleTime)
		if !done {
			panic("controlscale: flush wave did not complete within the settle window")
		}
	}

	// Bootstrap: the base full publication wave (both modes publish full
	// snapshots here; deltas need a base).
	t0 := time.Now()
	settle()
	w.bootstrapWall = time.Since(t0)
	base := aggregate(pubs)

	// Steady-state churn: each wave stages ChurnPerPartition single-replica
	// reassignments per partition, then publishes partition-by-partition in
	// batched flush groups. Wall clock covers staging through subscriber
	// application; convergence is simulated time from wave start to the last
	// subscriber's apply.
	rng := loop.RNG().Fork()
	for round := 0; round < pt.Rounds; round++ {
		waveStart := loop.Now()
		t0 = time.Now()
		for pi, pub := range pubs {
			lo, hi := router.Range(pi)
			for j := 0; j < pt.ChurnPerPartition; j++ {
				idx := lo + rng.Intn(hi-lo)
				pub.SetOne(ids[idx], srvs[rng.Intn(servers)], shard.RolePrimary)
			}
		}
		settle()
		w.churnWall += time.Since(t0)
		for _, at := range lastApplied {
			if lag := at - waveStart; lag > w.convergence {
				w.convergence = lag
			}
		}
	}

	st := aggregate(pubs)
	w.changedEntries = st.ChangedEntries - base.ChangedEntries
	if deltaMode {
		w.publishes = st.DeltaPublishes - base.DeltaPublishes
		w.bytes = st.DeltaBytes - base.DeltaBytes
	} else {
		w.publishes = st.FullPublishes - base.FullPublishes
		w.bytes = st.FullBytes - base.FullBytes
	}
	return w
}

// aggregate sums publisher stats across partitions.
func aggregate(pubs []*controlplane.PartitionPublisher) controlplane.PublisherStats {
	var st controlplane.PublisherStats
	for _, p := range pubs {
		st.FullPublishes += p.Stats.FullPublishes
		st.DeltaPublishes += p.Stats.DeltaPublishes
		st.FullBytes += p.Stats.FullBytes
		st.DeltaBytes += p.Stats.DeltaBytes
		st.ChangedEntries += p.Stats.ChangedEntries
	}
	return st
}
