package experiments

import (
	"fmt"
	"testing"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/healthmon"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// runDeltaEquivalenceWorld builds a small deployment, drives deterministic
// client traffic through shard-map churn (a drain moves primaries mid-run),
// and returns a rendering of every final routing Result in completion order.
// The delta flag switches the publisher to orchestrator delta publishes and
// the clients to in-place delta application; everything else is identical.
func runDeltaEquivalenceWorld(t *testing.T, seed uint64, delta bool) []string {
	t.Helper()
	const shards = 24
	cfg := orchestrator.Config{
		App:      "deltakv",
		Strategy: shard.PrimarySecondary,
		Shards: UniformShardConfigs(shards, 2, topology.Capacity{
			topology.ResourceCPU:        1,
			topology.ResourceShardCount: 1,
		}),
		Policy: allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount),
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: 40,
		},
		GracefulMigration: true,
		FailoverGrace:     10 * time.Second,
		AllocInterval:     15 * time.Second,
		DeltaPublish:      delta,
	}
	backing := apps.NewKVBacking()
	d := Build(DeploymentSpec{
		Regions:          []topology.RegionID{"west", "east"},
		ServersPerRegion: 4,
		Orch:             cfg,
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Seed: seed,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		t.Fatal(err)
	}

	ks := KeyspaceFor(shards)
	opts := routing.DefaultOptions()
	opts.ApplyDeltas = delta
	var results []string
	record := func(region string) func(routing.Result) {
		return func(r routing.Result) {
			results = append(results, fmt.Sprintf(
				"%s t=%d ok=%v err=%s srv=%s shard=%s att=%d hops=%d lat=%d v=%d",
				region, d.Loop.Now(), r.OK, r.Err, r.Server, r.Shard,
				r.Attempts, r.Hops, r.Latency, r.MapVersion))
		}
	}
	clients := map[string]*routing.Client{
		"west": d.NewClient("west", ks, opts),
		"east": d.NewClient("east", ks, opts),
	}
	for region, c := range clients {
		c.OnResult(record(region))
	}
	d.Loop.RunFor(5 * time.Second) // let the start-up catch-up land

	// Deterministic traffic: every 500ms each client hits a rotating shard,
	// alternating reads and writes.
	i := 0
	d.Loop.Every(500*time.Millisecond, func() {
		key := KeyForShard(i % shards)
		clients["west"].Do(key, i%2 == 0, "op", i, func(routing.Result) {})
		clients["east"].Do(key, i%3 == 0, "op", i, func(routing.Result) {})
		i++
	})

	// Churn the map mid-run: drain the primary of s00000 so migrations
	// republish while traffic is in flight.
	d.Loop.RunFor(10 * time.Second)
	victim, ok := d.Orch.AssignmentSnapshot().Primary(shard.ID("s00000"))
	if !ok {
		t.Fatal("s00000 has no primary")
	}
	d.Orch.Drain(victim, nil)
	d.Loop.RunFor(4 * time.Minute)
	return results
}

// TestDeltaPublishRoutingOutcomesIdentical is the tentpole's equivalence
// gate: with DeltaPublish + ApplyDeltas enabled, every final routing Result
// (outcome, server, attempts, latency, map version, completion instant) is
// byte-identical to the legacy full-publish run of the same seed — the delta
// path changes publication cost, not behavior.
func TestDeltaPublishRoutingOutcomesIdentical(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		full := runDeltaEquivalenceWorld(t, seed, false)
		del := runDeltaEquivalenceWorld(t, seed, true)
		if len(full) == 0 {
			t.Fatalf("seed %d: no results recorded", seed)
		}
		if len(full) != len(del) {
			t.Fatalf("seed %d: %d results (full) vs %d (delta)", seed, len(full), len(del))
		}
		for i := range full {
			if full[i] != del[i] {
				t.Fatalf("seed %d: result %d differs:\nfull:  %s\ndelta: %s",
					seed, i, full[i], del[i])
			}
		}
		// The delta run must actually have exercised the delta path.
		if full[0] == "" {
			t.Fatal("unreachable")
		}
	}
}

// TestDeltaPublishActuallyPublishesDeltas guards against the equivalence test
// passing vacuously: the delta-enabled world must route its map updates
// through PublishDelta (discovery_delta_publishes_total > 0).
func TestDeltaPublishActuallyPublishesDeltas(t *testing.T) {
	cfg := orchestrator.Config{
		App:      "deltakv",
		Strategy: shard.PrimarySecondary,
		Shards: UniformShardConfigs(8, 2, topology.Capacity{
			topology.ResourceCPU:        1,
			topology.ResourceShardCount: 1,
		}),
		Policy: allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount),
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: 40,
		},
		DeltaPublish:  true,
		AllocInterval: 15 * time.Second,
	}
	backing := apps.NewKVBacking()
	d := Build(DeploymentSpec{
		Regions:          []topology.RegionID{"west"},
		ServersPerRegion: 4,
		Orch:             cfg,
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Health: healthmon.New(healthmon.Options{}),
		Seed:   1,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	// Force extra publishes past the initial snapshot.
	victim, ok := d.Orch.AssignmentSnapshot().Primary(shard.ID("s00000"))
	if !ok {
		t.Fatal("no primary")
	}
	d.Orch.Drain(victim, nil)
	d.Loop.RunFor(2 * time.Minute)
	n := d.Health.Registry().Counter("discovery_delta_publishes_total", "app", "deltakv").Value()
	if n == 0 {
		t.Fatal("no delta publishes recorded; DeltaPublish not wired")
	}
}
