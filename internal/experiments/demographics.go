package experiments

import (
	"fmt"

	"shardmanager/internal/controlplane"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
	"shardmanager/internal/workload"
)

// DemographicsParams size the synthetic survey fleet.
type DemographicsParams struct {
	Apps int
	Seed uint64
}

// DefaultDemographicsParams mirror "hundreds of sharded applications".
func DefaultDemographicsParams() DemographicsParams {
	return DemographicsParams{Apps: 300, Seed: 42}
}

func fleetFor(p DemographicsParams) workload.Fleet {
	return workload.GenerateFleet(sim.NewRNG(p.Seed), p.Apps)
}

func sharesTable(title string, shares []workload.Share) Table {
	t := Table{Title: title, Columns: []string{"category", "by #application", "by #server"}}
	for _, s := range shares {
		t.Rows = append(t.Rows, []string{s.Label, pct(s.ByApps), pct(s.ByServers)})
	}
	return t
}

// Fig01 regenerates Figure 1: planned vs unplanned container stops.
func Fig01(p DemographicsParams) *Report {
	r := &Report{
		ID:    "fig1",
		Title: "Planned vs. unplanned container stops (log scale, ~1000x gap)",
		Params: map[string]string{
			"weeks": "26", "fleet_containers": "100000", "seed": fmt.Sprint(p.Seed),
		},
	}
	series := workload.ContainerStopSeries(sim.NewRNG(p.Seed), 26, 100000)
	planned := Curve{Name: "planned maintenance or software updates", Unit: "stops/week (thousands)"}
	unplanned := Curve{Name: "unplanned failures", Unit: "stops/week (thousands)"}
	var totalP, totalU int64
	for _, s := range series {
		t := weekDur(s.Week)
		planned.Points = append(planned.Points, point(t, float64(s.Planned)/1000))
		unplanned.Points = append(unplanned.Points, point(t, float64(s.Unplanned)/1000))
		totalP += s.Planned
		totalU += s.Unplanned
	}
	r.Curves = append(r.Curves, planned, unplanned)
	r.AddNote("planned/unplanned ratio = %.0fx (paper: ~1000x)", float64(totalP)/float64(totalU))
	return r
}

// Fig02 regenerates Figure 2: machines used by SM applications, 2012-2021.
func Fig02() *Report {
	r := &Report{
		ID:    "fig2",
		Title: "Machines used by SM applications (logistic growth to >1M)",
	}
	curve := Curve{Name: "machines", Unit: "machines"}
	for _, pt := range workload.AdoptionCurve(37) {
		// Encode years as durations from 2012 for the Point type.
		t := yearDur(pt.Year)
		curve.Points = append(curve.Points, point(t, pt.Machines))
	}
	r.Curves = append(r.Curves, curve)
	last := curve.Points[len(curve.Points)-1].V
	r.AddNote("machines in 2021 = %.2fM (paper: >1M; 100K line crossed mid-curve)", last/1e6)
	return r
}

// Fig04 regenerates Figure 4: breakdown of sharding schemes.
func Fig04(p DemographicsParams) *Report {
	f := fleetFor(p)
	r := &Report{
		ID:     "fig4",
		Title:  "Breakdown of all sharded applications by sharding scheme",
		Params: map[string]string{"apps": fmt.Sprint(p.Apps), "seed": fmt.Sprint(p.Seed)},
	}
	r.Tables = append(r.Tables, sharesTable("sharding schemes", f.SchemeBreakdown()))
	r.AddNote("paper: SM 54%%/34%%, static 35%%/30%%, consistent hashing 10%%/9%%, custom 1%%/27%%")
	return r
}

// Fig05 regenerates Figure 5: regional vs geo-distributed deployments.
func Fig05(p DemographicsParams) *Report {
	f := fleetFor(p)
	r := &Report{ID: "fig5", Title: "SM applications: regional vs geo-distributed deployments",
		Params: map[string]string{"apps": fmt.Sprint(p.Apps)}}
	r.Tables = append(r.Tables, sharesTable("deployment modes", f.DeploymentBreakdown()))
	r.AddNote("paper: geo-distributed 33%%/58%%, regional 67%%/42%%")
	return r
}

// Fig06 regenerates Figure 6: shard replication strategies.
func Fig06(p DemographicsParams) *Report {
	f := fleetFor(p)
	r := &Report{ID: "fig6", Title: "SM applications: shard replication strategies",
		Params: map[string]string{"apps": fmt.Sprint(p.Apps)}}
	r.Tables = append(r.Tables, sharesTable("replication strategies", f.StrategyBreakdown()))
	r.AddNote("paper: primary-only 68%%/25%%, primary-secondary 24%%/41%%, secondary-only 8%%/34%%")
	return r
}

// Fig07 regenerates Figure 7: load-balancing policies.
func Fig07(p DemographicsParams) *Report {
	f := fleetFor(p)
	r := &Report{ID: "fig7", Title: "SM applications: load-balancing policies",
		Params: map[string]string{"apps": fmt.Sprint(p.Apps)}}
	r.Tables = append(r.Tables, sharesTable("LB policies", f.LBBreakdown()))
	r.AddNote("paper: 55%% shard count by #app; multi-metric apps hold 65%% of servers")
	return r
}

// Fig08 regenerates Figure 8: drain policies for container restarts.
func Fig08(p DemographicsParams) *Report {
	f := fleetFor(p)
	r := &Report{ID: "fig8", Title: "SM applications: drain policies for container restarts",
		Params: map[string]string{"apps": fmt.Sprint(p.Apps)}}
	prim, sec := f.DrainBreakdown()
	r.Tables = append(r.Tables,
		sharesTable("primary replicas", prim),
		sharesTable("secondary replicas", sec))
	r.AddNote("paper: drain primaries 94%%/93%%, drain secondaries 22%%/15%%")
	return r
}

// Fig09 regenerates Figure 9: storage vs non-storage machines.
func Fig09(p DemographicsParams) *Report {
	f := fleetFor(p)
	r := &Report{ID: "fig9", Title: "SM applications: usage of storage machines",
		Params: map[string]string{"apps": fmt.Sprint(p.Apps)}}
	r.Tables = append(r.Tables, sharesTable("machine types", f.StorageBreakdown()))
	r.AddNote("paper: storage 18%% of apps / 38%% of servers")
	return r
}

// Fig15 regenerates Figure 15: scale of SM application deployments.
func Fig15(p DemographicsParams) *Report {
	f := fleetFor(p).SMApps()
	r := &Report{ID: "fig15", Title: "Scale of SM applications (servers x shards scatter)",
		Params: map[string]string{"sm_apps": fmt.Sprint(len(f))}}
	t := Table{Title: "deployment size distribution", Columns: []string{"quantile", "servers", "shards"}}
	servers := make([]float64, len(f))
	shards := make([]float64, len(f))
	big := 0
	for i, a := range f {
		servers[i] = float64(a.Servers)
		shards[i] = float64(a.Shards)
		if a.Servers >= 1000 {
			big++
		}
	}
	qs := []float64{0.5, 0.9, 0.99, 1.0}
	serverQ := quantiles(servers, qs...)
	shardQ := quantiles(shards, qs...)
	for i, q := range qs {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("p%.0f", q*100),
			fmt.Sprintf("%.0f", serverQ[i]),
			fmt.Sprintf("%.0f", shardQ[i]),
		})
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("%.0f%% of deployments use >= 1000 servers (paper: 14%%)", 100*float64(big)/float64(len(f)))
	r.AddNote("largest deployment: %.0f servers / %.1fM shards (paper: ~19K servers / ~2.6M shards)",
		serverQ[len(qs)-1], shardQ[len(qs)-1]/1e6)
	return r
}

// Fig16 regenerates Figure 16: scale of mini-SMs, by partitioning the
// synthetic fleet through the scale-out control plane.
func Fig16(p DemographicsParams) *Report {
	f := fleetFor(p).SMApps()
	cp := controlplane.New(controlplane.DefaultLimits())
	for _, a := range f {
		regions := []topology.RegionID{"region0"}
		if a.Deployment == workload.DeploymentGeo {
			regions = []topology.RegionID{"region0", "region1", "region2"}
		}
		_, err := cp.RegisterApp(controlplane.AppSpec{
			App:     shard.AppID(a.Name),
			Servers: a.Servers,
			Shards:  a.Shards,
			Regions: regions,
		})
		if err != nil {
			panic(err)
		}
	}
	rs := controlplane.NewReadService(cp)
	st := rs.Stats()
	r := &Report{ID: "fig16", Title: "Scale of mini-SMs (regional + geo-distributed)",
		Params: map[string]string{"sm_apps": fmt.Sprint(len(f))}}
	t := Table{Title: "mini-SM pool", Columns: []string{"metric", "value"}}
	t.Rows = append(t.Rows,
		[]string{"regional mini-SMs", fmt.Sprint(st.RegionalMiniSMs)},
		[]string{"geo-distributed mini-SMs", fmt.Sprint(st.GeoMiniSMs)},
		[]string{"total servers managed", fmt.Sprint(st.TotalServers)},
		[]string{"total shards managed", fmt.Sprint(st.TotalShards)},
		[]string{"largest mini-SM servers", fmt.Sprint(st.MaxServers)},
		[]string{"largest mini-SM shards", fmt.Sprint(st.MaxShards)},
	)
	r.Tables = append(r.Tables, t)
	r.AddNote("paper: 139 regional + 48 geo mini-SMs; largest manages ~50K servers / ~1.3M shards")
	return r
}

func quantile(vals []float64, q float64) float64 {
	return metricsQuantile(vals, q)
}

// quantiles pulls several quantiles from one slice with a single sort.
func quantiles(vals []float64, qs ...float64) []float64 {
	return metricsQuantiles(vals, qs...)
}
