package experiments

import (
	"fmt"
	"time"

	"shardmanager/internal/appserver"
	"shardmanager/internal/audit"
	"shardmanager/internal/cluster"
	"shardmanager/internal/coord"
	"shardmanager/internal/discovery"
	"shardmanager/internal/faults"
	"shardmanager/internal/healthmon"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/taskcontroller"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
)

// defaultTracer, when non-nil, is attached to every deployment whose spec
// does not set its own tracer. smbench sets it from the -trace flags so
// experiment code needs no per-figure plumbing.
var defaultTracer *trace.Tracer

// SetDefaultTracer installs the tracer used by deployments whose spec leaves
// Tracer nil. Pass nil to clear.
func SetDefaultTracer(tr *trace.Tracer) { defaultTracer = tr }

// defaultHealthFactory, when non-nil, supplies a health monitor for every
// deployment whose spec does not set its own. A factory (rather than a shared
// monitor) because each deployment has its own loop/clock, and tests want one
// monitor per Build to cross-check figures.
var defaultHealthFactory func() *healthmon.Monitor

// SetDefaultHealthFactory installs the monitor factory used by deployments
// whose spec leaves Health nil. Pass nil to clear.
func SetDefaultHealthFactory(fn func() *healthmon.Monitor) { defaultHealthFactory = fn }

// defaultProfiler, when non-nil, supplies the kernel profiler for every
// deployment whose spec does not set its own. A factory so callers can choose
// between one shared profile (combined attribution across the sequentially
// built deployments of a run, as smbench does) and one per Build.
var defaultProfiler func() sim.Profiler

// SetDefaultProfiler installs the profiler factory used by deployments whose
// spec leaves Profiler nil. Pass nil to clear.
func SetDefaultProfiler(fn func() sim.Profiler) { defaultProfiler = fn }

// DeploymentSpec wires a complete single-application world: fleet, one
// cluster manager + job per region, application hosts, an orchestrator,
// and optionally a TaskController.
type DeploymentSpec struct {
	Regions          []topology.RegionID
	ServersPerRegion int
	// Latency configures pairwise one-way region latency; unset pairs
	// use topology defaults.
	Latency map[[2]topology.RegionID]time.Duration
	// LocalLatency is the intra-region hop (default 1ms).
	LocalLatency time.Duration

	// Orchestrator configuration; App, Shards, Strategy, Policy must be
	// set. HomeRegion defaults to the last region (survives failures of
	// the first).
	Orch orchestrator.Config

	// TaskPolicy, if non-nil, attaches a TaskController to every
	// regional cluster manager.
	TaskPolicy *taskcontroller.Policy

	// AppFactory builds the per-server application (required).
	AppFactory func(*appserver.Server) appserver.Application

	// ClusterOpts configure container lifecycle timing.
	ClusterOpts cluster.Options

	// PropagationDelay bounds shard-map dissemination (default 0.5-2s).
	PropagationDelay discovery.DelayFunc

	// Tracer, if non-nil, records the whole deployment's control-plane
	// activity (falls back to the package default set by SetDefaultTracer).
	Tracer *trace.Tracer

	// Health, if non-nil, watches the whole deployment — cluster managers,
	// discovery, orchestrator, and every client made with NewClient (falls
	// back to the factory set by SetDefaultHealthFactory).
	Health *healthmon.Monitor

	// Profiler, if non-nil, receives the loop's kernel-profiling hooks
	// (falls back to the factory set by SetDefaultProfiler).
	Profiler sim.Profiler

	// Audit, if non-nil, attaches a runtime migration auditor to the whole
	// deployment (orchestrator, servers, discovery, coordination store, and
	// every client made with NewClient). The App field is filled from the
	// deployment; auditing is RNG-free, so enabling it does not perturb the
	// seeded run.
	Audit *audit.Options

	Seed uint64
}

// Deployment is a fully wired world under simulation.
type Deployment struct {
	Loop     *sim.Loop
	Fleet    *topology.Fleet
	Store    *coord.Store
	Disc     *discovery.Service
	Net      *rpcnet.Network
	Dir      *appserver.Directory
	Managers map[topology.RegionID]*cluster.Manager
	Jobs     map[topology.RegionID]cluster.JobID
	Hosts    map[topology.RegionID]*appserver.Host
	Orch     *orchestrator.Orchestrator
	Ctrl     *taskcontroller.Controller
	Health   *healthmon.Monitor
	Auditor  *audit.Auditor
	App      shard.AppID
}

// Build constructs and starts the deployment. Containers begin starting at
// t=0; call Settle to reach a converged initial placement.
func Build(spec DeploymentSpec) *Deployment {
	if spec.AppFactory == nil {
		panic("experiments: DeploymentSpec.AppFactory required")
	}
	if spec.ServersPerRegion <= 0 || len(spec.Regions) == 0 {
		panic("experiments: deployment needs regions and servers")
	}
	loop := sim.NewLoop(spec.Seed)
	tr := spec.Tracer
	if tr == nil {
		tr = defaultTracer
	}
	loop.SetTracer(tr) // before any component is built or scheduled
	prof := spec.Profiler
	if prof == nil && defaultProfiler != nil {
		prof = defaultProfiler()
	}
	if prof != nil {
		loop.SetProfiler(prof)
	}
	mon := spec.Health
	if mon == nil && defaultHealthFactory != nil {
		mon = defaultHealthFactory()
	}
	if mon != nil {
		mon.Bind(loop)
		loop.SetMetrics(mon.Registry())
	}
	fleet := topology.Build(topology.Spec{
		Regions:           spec.Regions,
		MachinesPerRegion: spec.ServersPerRegion,
		Capacity:          topology.Capacity{topology.ResourceCPU: 100},
		Latency:           spec.Latency,
	})
	if spec.LocalLatency <= 0 {
		spec.LocalLatency = time.Millisecond
	}
	for _, r := range spec.Regions {
		fleet.SetLatency(r, r, spec.LocalLatency)
	}
	d := &Deployment{
		Loop:     loop,
		Fleet:    fleet,
		Store:    coord.NewStore(),
		Net:      rpcnet.NewNetwork(loop, fleet),
		Dir:      appserver.NewDirectory(),
		Managers: make(map[topology.RegionID]*cluster.Manager),
		Jobs:     make(map[topology.RegionID]cluster.JobID),
		Hosts:    make(map[topology.RegionID]*appserver.Host),
		Health:   mon,
		App:      spec.Orch.App,
	}
	d.Store.SetTracer(tr)
	d.Disc = discovery.NewService(loop, spec.PropagationDelay)

	for _, r := range spec.Regions {
		mgr := cluster.NewManager(loop, fleet, r, spec.ClusterOpts)
		if mon != nil {
			mon.WatchManager(mgr)
		}
		d.Managers[r] = mgr
		job := cluster.JobID(fmt.Sprintf("%s-%s", spec.Orch.App, r))
		d.Jobs[r] = job
		host := appserver.NewHost(loop, d.Net, d.Dir, d.Store, fleet, spec.Orch.App, job, spec.AppFactory)
		d.Hosts[r] = host
		mgr.AddListener(host)
		mgr.CreateJob(job, string(spec.Orch.App), spec.ServersPerRegion)
	}

	cfg := spec.Orch
	if cfg.HomeRegion == "" {
		cfg.HomeRegion = spec.Regions[len(spec.Regions)-1]
	}
	d.Orch = orchestrator.New(loop, d.Store, d.Disc, d.Net, d.Dir, fleet, cfg, spec.Seed)
	if mon != nil {
		mon.WatchDiscovery(d.Disc)
		mon.WatchOrchestrator(d.Orch)
	}
	if spec.Audit != nil {
		ao := *spec.Audit
		ao.App = spec.Orch.App
		a := audit.New(loop, ao)
		a.WatchDirectory(d.Dir)
		a.WatchCoord(d.Store)
		a.WatchDiscovery(d.Disc)
		a.WatchOrchestrator(d.Orch)
		d.Auditor = a
	}
	d.Orch.Start()

	if spec.TaskPolicy != nil {
		d.Ctrl = taskcontroller.New(loop, d.Orch, *spec.TaskPolicy)
		for _, mgr := range d.Managers {
			d.Ctrl.Attach(mgr)
		}
	}
	return d
}

// Settle runs the loop until the initial placement converges (every shard
// fully replicated), bounded by maxWait.
func (d *Deployment) Settle(maxWait time.Duration) error {
	deadline := d.Loop.Now() + maxWait
	for d.Loop.Now() < deadline {
		d.Loop.RunFor(30 * time.Second)
		if d.converged() {
			return nil
		}
	}
	return fmt.Errorf("experiments: placement did not settle within %v (%s)", maxWait, d.Orch.Stats())
}

func (d *Deployment) converged() bool {
	m := d.Orch.AssignmentSnapshot()
	want := 0
	for _, id := range d.Orch.ShardIDs() {
		want++
		as := m.Replicas(id)
		if len(as) != d.Orch.TotalReplicas(id) {
			return false
		}
		for _, a := range as {
			srv := d.Dir.Lookup(a.Server)
			if srv == nil || !srv.HoldsActive(id) {
				return false
			}
		}
	}
	return want > 0
}

// FaultEnv adapts the deployment to the fault-injection subsystem: every
// handle an Action can touch, taken from this world.
func (d *Deployment) FaultEnv() *faults.Env {
	return &faults.Env{
		Loop:     d.Loop,
		Fleet:    d.Fleet,
		Net:      d.Net,
		Store:    d.Store,
		Managers: d.Managers,
		Hosts:    d.Hosts,
	}
}

// NewClient creates a routed application client in a region. When the
// deployment has a health monitor, the client's results feed it.
func (d *Deployment) NewClient(region topology.RegionID, ks *shard.Keyspace, opts routing.Options) *routing.Client {
	c := routing.NewClient(d.Loop, d.Net, d.Dir, d.Disc, d.Fleet, d.App, ks, region, opts)
	if d.Health != nil {
		d.Health.WatchClient(c)
	}
	if d.Auditor != nil {
		d.Auditor.WatchClient(c)
	}
	return c
}

// UniformShardConfigs builds n single-load shard configs named "sNNNNN".
func UniformShardConfigs(n, replicas int, load topology.Capacity) []orchestrator.ShardConfig {
	out := make([]orchestrator.ShardConfig, n)
	for i := range out {
		out[i] = orchestrator.ShardConfig{
			ID:          shard.ID(fmt.Sprintf("s%05d", i)),
			Replicas:    replicas,
			DefaultLoad: load,
		}
	}
	return out
}

// KeyspaceFor builds the app-owned keyspace matching UniformShardConfigs:
// key "sNNNNN/..." maps to shard sNNNNN via explicit ranges, preserving key
// locality.
func KeyspaceFor(n int) *shard.Keyspace {
	ids := make([]shard.ID, n)
	starts := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = shard.ID(fmt.Sprintf("s%05d", i))
		if i > 0 {
			starts[i] = fmt.Sprintf("s%05d", i)
		}
	}
	ks, err := shard.NewKeyspace(ids, starts)
	if err != nil {
		panic(err)
	}
	return ks
}

// KeyForShard returns a key owned by shard index i.
func KeyForShard(i int) string { return fmt.Sprintf("s%05d/key", i) }
