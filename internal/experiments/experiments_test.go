package experiments

import (
	"shardmanager/internal/metrics"
	"strings"
	"testing"
	"time"
)

// The experiment tests run every harness at quick scale and assert the
// paper's qualitative claims — who wins, roughly by how much, and where the
// transitions fall — not absolute numbers.

func TestFig01PlannedDominatesUnplanned(t *testing.T) {
	r := Fig01(DefaultDemographicsParams())
	if len(r.Curves) != 2 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	var planned, unplanned float64
	for _, p := range r.Curves[0].Points {
		planned += p.V
	}
	for _, p := range r.Curves[1].Points {
		unplanned += p.V
	}
	ratio := planned / unplanned
	if ratio < 300 || ratio > 3000 {
		t.Fatalf("planned/unplanned = %.0f, want ~1000", ratio)
	}
}

func TestFig02GrowthReachesAMillion(t *testing.T) {
	r := Fig02()
	last := r.Curves[0].Points[len(r.Curves[0].Points)-1]
	if last.V < 9e5 {
		t.Fatalf("2021 machines = %.0f", last.V)
	}
}

func TestDemographicTablesRender(t *testing.T) {
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig15", "fig16"} {
		r, err := Run(id, ScaleQuick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := r.Render()
		if !strings.Contains(out, "===") || len(out) < 100 {
			t.Fatalf("%s render too small:\n%s", id, out)
		}
	}
}

func TestFig16PoolShape(t *testing.T) {
	r := Fig16(DefaultDemographicsParams())
	// Both kinds of mini-SMs exist and the regional pool is larger, as
	// in production (139 regional vs 48 geo).
	var regional, geo int
	for _, row := range r.Tables[0].Rows {
		switch row[0] {
		case "regional mini-SMs":
			regional = atoiOrZero(row[1])
		case "geo-distributed mini-SMs":
			geo = atoiOrZero(row[1])
		}
	}
	if regional == 0 || geo == 0 {
		t.Fatalf("mini-SM pool empty: regional=%d geo=%d", regional, geo)
	}
}

func atoiOrZero(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestFig17ShapeMatchesPaper(t *testing.T) {
	p := DefaultAvailabilityParams()
	p.Servers, p.Shards, p.RequestRate = 20, 1000, 30
	r := Fig17(p)
	// Parse outcomes from the table: SM best, no-graceful in between,
	// neither worst and below ~92%.
	rows := r.Tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	sm := parsePct(t, rows[0][1])
	noGraceful := parsePct(t, rows[1][1])
	neither := parsePct(t, rows[2][1])
	if !(sm > noGraceful && noGraceful > neither) {
		t.Fatalf("ordering violated: SM %.3f, no-graceful %.3f, neither %.3f", sm, noGraceful, neither)
	}
	if sm < 99.9 {
		t.Fatalf("SM success = %.3f%%, want ~100%%", sm)
	}
	if neither > 92 {
		t.Fatalf("neither success = %.3f%%, want <92%%", neither)
	}
	// SM's upgrade takes longer than the unconstrained one (paper: 1500s
	// vs 800s).
	smDur := parseDur(t, rows[0][3])
	neitherDur := parseDur(t, rows[2][3])
	if smDur <= neitherDur {
		t.Fatalf("SM upgrade (%v) should be slower than unconstrained (%v)", smDur, neitherDur)
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := sscanf(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func sscanf(s string, v *float64) (int, error) {
	s = strings.TrimSuffix(s, "%")
	var f float64
	var err error
	f, err = parseFloat(s)
	*v = f
	return 1, err
}

func parseFloat(s string) (float64, error) {
	var f float64
	var frac float64
	div := 1.0
	afterDot := false
	for _, c := range s {
		switch {
		case c == '.':
			afterDot = true
		case c >= '0' && c <= '9':
			if afterDot {
				div *= 10
				frac = frac*10 + float64(c-'0')
			} else {
				f = f*10 + float64(c-'0')
			}
		default:
			return 0, &parseError{s}
		}
	}
	return f + frac/div, nil
}

type parseError struct{ s string }

func (e *parseError) Error() string { return "cannot parse " + e.s }

func parseDur(t *testing.T, s string) time.Duration {
	t.Helper()
	d, err := time.ParseDuration(s)
	if err != nil {
		t.Fatalf("parse duration %q: %v", s, err)
	}
	return d
}

func TestFig19FailoverShape(t *testing.T) {
	p := DefaultGeoFailoverParams()
	p.Shards, p.ECShards, p.ServersPerRegion, p.RequestRate = 300, 120, 10, 30
	r := Fig19(p)
	curve := r.Curves[0].Points
	steady := meanVal(curve, 20*time.Second, p.FailAt-10*time.Second)
	plateau := meanVal(curve, p.FailAt+60*time.Second, p.RecoverAt-10*time.Second)
	restored := meanVal(curve, p.RecoverAt+2*time.Minute, p.Horizon)
	if steady <= 0 || plateau < steady*5 {
		t.Fatalf("failover plateau (%.1fms) should dominate steady latency (%.1fms)", plateau, steady)
	}
	if restored > steady*2 {
		t.Fatalf("latency not restored after shards moved back: %.1fms vs steady %.1fms", restored, steady)
	}
}

func TestFig20LatencySpikesAndRecovers(t *testing.T) {
	p := DefaultDBShardParams()
	p.Shards, p.BatchSize, p.ServersPerRegion = 200, 50, 6
	r := Fig20(p)
	lat := r.Curves[0].Points
	steady := meanVal(lat, 0, p.Batch1At-time.Minute)
	spike := maxVal(lat, p.Batch1At, p.Batch1At+10*time.Minute)
	settled := meanVal(lat, p.Batch2At+40*time.Minute, p.Horizon)
	if spike < steady*3 {
		t.Fatalf("no latency spike after DBShard batch: steady %.2f spike %.2f", steady, spike)
	}
	if settled > steady*1.5 {
		t.Fatalf("latency did not recover: settled %.2f steady %.2f", settled, steady)
	}
}

func TestFig21AllViolationsFixedAndScaling(t *testing.T) {
	p := DefaultSolverScaleParams()
	p.Scales = [][2]int{{200, 15000}, {1000, 75000}}
	r := Fig21(p)
	for _, row := range r.Tables[0].Rows {
		if row[3] != "0" {
			t.Fatalf("violations remain at scale %s: %s", row[0], row[3])
		}
	}
}

func TestFig22OptimizedBeatsBaseline(t *testing.T) {
	p := DefaultSolverAblationParams()
	p.Servers, p.Shards, p.TimeLimit = 400, 30000, 15*time.Second
	r := Fig22(p)
	rows := r.Tables[0].Rows
	optMoves := atoiOrZero(rows[0][2])
	baseMoves := atoiOrZero(rows[1][2])
	if optMoves == 0 || baseMoves == 0 {
		t.Fatalf("no moves recorded: %v", rows)
	}
	// The paper's claim: the baseline needs more shard moves (22% there).
	// Allow a little noise but the direction must hold.
	if float64(baseMoves) < float64(optMoves)*0.98 {
		t.Fatalf("baseline moves (%d) should not undercut optimized (%d)", baseMoves, optMoves)
	}
}

func TestSolverScaleParallelIdentical(t *testing.T) {
	p := DefaultSolverBenchParams()
	p.Servers, p.Shards = 400, 8000
	r := SolverScale(p)
	if r.Values["parallel_identical"] != 1 {
		t.Fatalf("parallel Result diverged from serial: %v", r.Notes)
	}
	if r.Values["final_violations"] != 0 {
		t.Fatalf("violations remain: %v", r.Values["final_violations"])
	}
	if r.Values["evaluations"] <= 0 || r.Values["moves"] <= 0 {
		t.Fatalf("empty benchmark record: %v", r.Values)
	}
}

func TestFig23KeepsP99Bounded(t *testing.T) {
	p := DefaultContinuousLBParams()
	p.Servers, p.Shards, p.Days = 40, 1200, 1
	r := Fig23(p)
	var p99 *Curve
	for i := range r.Curves {
		if r.Curves[i].Name == "p99 CPU" {
			p99 = &r.Curves[i]
		}
	}
	if p99 == nil {
		t.Fatal("p99 curve missing")
	}
	for _, pt := range p99.Points[1:] {
		if pt.V > 0.92 {
			t.Fatalf("p99 CPU exceeded threshold at %v: %.2f", pt.T, pt.V)
		}
	}
}

func TestFig18ErrorsStayFlat(t *testing.T) {
	p := DefaultProductionTraceParams()
	p.Servers, p.Shards, p.Days, p.BaseRate = 20, 600, 1, 5
	r := Fig18(p)
	var errCurve, moveCurve *Curve
	for i := range r.Curves {
		switch r.Curves[i].Name {
		case "client error rate":
			errCurve = &r.Curves[i]
		case "shard moves":
			moveCurve = &r.Curves[i]
		}
	}
	if maxVal(moveCurve.Points, 0, 1<<62) == 0 {
		t.Fatal("no shard moves despite upgrades")
	}
	if peak := maxVal(errCurve.Points, 0, 1<<62); peak > 0.5 {
		t.Fatalf("error rate spiked to %.2f/s", peak)
	}
}

func TestRegistryRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite is still seconds per figure")
	}
	for _, id := range IDs() {
		if id == "fig17" || id == "fig18" || id == "fig19" || id == "fig20" ||
			id == "fig21" || id == "fig22" || id == "fig23" || id == "ablations" {
			continue // exercised by their dedicated tests above
		}
		r, err := Run(id, ScaleQuick)
		if err != nil || r == nil {
			t.Fatalf("Run(%s) = %v", id, err)
		}
		if Title(id) == "" {
			t.Fatalf("missing title for %s", id)
		}
	}
	if _, err := Run("nope", ScaleQuick); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestDownsampleKeepsEndpoints(t *testing.T) {
	in := make([]metrics.Point, 100)
	for i := range in {
		in[i] = point(time.Duration(i)*time.Second, float64(i))
	}
	out := downsample(in, 10)
	if len(out) != 10 || out[0].V != 0 || out[9].V != 99 {
		t.Fatalf("downsample = %v", out)
	}
	short := downsample(in[:5], 10)
	if len(short) != 5 {
		t.Fatalf("short downsample = %d", len(short))
	}
}
