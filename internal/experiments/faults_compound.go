package experiments

import (
	"fmt"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/audit"
	"shardmanager/internal/faults"
	"shardmanager/internal/healthmon"
	"shardmanager/internal/metrics"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// CompoundFaultParams configure the compound-fault scenario: a three-region
// deployment (region-a, region-b, region-c) under a timeline that layers
// partitions, latency inflation, packet loss, session expiry, gray failure,
// and a coordination write stall, then heals everything and checks recovery.
type CompoundFaultParams struct {
	Shards           int
	Replicas         int
	ServersPerRegion int
	// RequestRate is requests/second issued by the region-a client.
	RequestRate int
	Horizon     time.Duration
	// Spec overrides the fault timeline (ParseSpec DSL). Empty uses
	// DefaultCompoundFaultSpec.
	Spec string
	Seed uint64
}

// DefaultCompoundFaultParams return the standard compound scenario sizing.
func DefaultCompoundFaultParams() CompoundFaultParams {
	return CompoundFaultParams{
		Shards:           300,
		Replicas:         2,
		ServersPerRegion: 10,
		RequestRate:      30,
		Horizon:          11 * time.Minute,
		Seed:             23,
	}
}

// DefaultCompoundFaultSpec is the built-in compound timeline. The allocator
// keeps a replica of every shard in region-a, so a partition alone never
// hurts the region-a client; the region-a crash first forces its reads
// remote, and the overlapping partitions (t=1m45s..2m30s cuts both remote
// regions) then guarantee an outage that breaches the availability SLO.
// Everything is healed by t=9m15s, leaving the rest of the horizon to verify
// recovery.
const DefaultCompoundFaultSpec = "" +
	"t=60s crash(region:region-a) for 2m; " +
	"t=90s partition(region-a|region-b) for 90s; " +
	"t=105s partition(region-a|region-c) for 45s; " +
	"t=4m latency(region-a|region-b, x5) for 60s; " +
	"t=5m30s loss(region-a|region-b, 0.3) for 45s; " +
	"t=7m gray(region-b, 2, 300ms) for 60s; " +
	"t=8m expire(region-c, 2) for 30s; " +
	"t=8m45s stall(coord) for 30s"

// CompoundFaults runs the compound-fault experiment: drive steady read
// traffic from a region-a client while the scenario unfolds, and cross-check
// what the client saw against healthmon's SLO-violation intervals.
func CompoundFaults(p CompoundFaultParams) *Report {
	specText := p.Spec
	if specText == "" {
		specText = DefaultCompoundFaultSpec
	}
	scenario, err := faults.ParseSpec(specText)
	if err != nil {
		panic(err)
	}
	r := &Report{
		ID:    "faults",
		Title: "compound fault injection: availability dips during faults, recovers after heal",
		Params: map[string]string{
			"shards":   fmt.Sprint(p.Shards),
			"replicas": fmt.Sprint(p.Replicas),
			"servers":  fmt.Sprintf("%dx3", p.ServersPerRegion),
			"seed":     fmt.Sprint(p.Seed),
			"events":   fmt.Sprint(len(scenario.Events)),
		},
	}

	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	pol.SpreadLevel = topology.LevelRegion
	pol.SpreadWeight = 100
	cfg := orchestrator.Config{
		App:      "faultstore",
		Strategy: shard.SecondaryOnly,
		Shards: UniformShardConfigs(p.Shards, p.Replicas, topology.Capacity{
			topology.ResourceCPU:        0.5,
			topology.ResourceShardCount: 1,
		}),
		Policy: pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: float64(p.Shards),
		},
		HomeRegion:              "region-c",
		GracefulMigration:       true,
		FailoverGrace:           20 * time.Second,
		AllocInterval:           15 * time.Second,
		MaxConcurrentMigrations: 200,
	}
	backing := apps.NewKVBacking()
	// Respect an installed default health factory (smbench -metrics-out,
	// determinism tests) so the run's metrics land in the caller's registry;
	// the experiment needs its own handle on the monitor for cross-checks.
	var mon *healthmon.Monitor
	if defaultHealthFactory != nil {
		mon = defaultHealthFactory()
	}
	if mon == nil {
		mon = healthmon.New(healthmon.Options{})
	}
	d := Build(DeploymentSpec{
		Regions:          []topology.RegionID{"region-a", "region-b", "region-c"},
		ServersPerRegion: p.ServersPerRegion,
		Latency: map[[2]topology.RegionID]time.Duration{
			{"region-a", "region-b"}: 35 * time.Millisecond,
			{"region-a", "region-c"}: 45 * time.Millisecond,
			{"region-b", "region-c"}: 80 * time.Millisecond,
		},
		Orch: cfg,
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Health: mon,
		Audit:  &audit.Options{},
		Seed:   p.Seed,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		panic(err)
	}

	// Steady read traffic from region-a. Let the client pick up the shard
	// map before traffic starts so the baseline plateau is clean.
	ks := KeyspaceFor(p.Shards)
	client := d.NewClient("region-a", ks, routing.DefaultOptions())
	d.Loop.RunFor(2 * time.Second)
	rng := d.Loop.RNG().Fork()
	latency := metrics.NewSeries("latency")
	failures := metrics.NewSeries("failures")
	t0 := d.Loop.Now()
	d.Loop.EveryL(time.Second/time.Duration(p.RequestRate), lbExpClient, func() {
		key := KeyForShard(rng.Intn(p.Shards))
		client.Do(key, false, apps.KVOpScan, nil, func(res routing.Result) {
			if res.OK {
				latency.Record(d.Loop.Now()-t0, float64(res.Latency)/float64(time.Millisecond))
			} else {
				failures.Record(d.Loop.Now()-t0, 1)
			}
		})
	})

	// Arm the fault timeline (relative to t0) and run it out.
	inj := faults.NewInjector(d.FaultEnv())
	shifted := faults.NewScenario()
	var lastHeal time.Duration
	for _, ev := range scenario.Events {
		shifted.Add(t0+ev.At, ev.For, ev.Action)
		if end := ev.At + ev.For; end > lastHeal {
			lastHeal = end
		}
	}
	inj.Schedule(shifted)
	d.Loop.RunFor(p.Horizon)

	// Latency curve in 10s buckets.
	curve := Curve{Name: "read latency (region-a client)", Unit: "ms"}
	bucket := 10 * time.Second
	for t := time.Duration(0); t < p.Horizon; t += bucket {
		pts := latency.Between(t, t+bucket-1)
		if len(pts) == 0 {
			continue
		}
		sum := 0.0
		for _, pt := range pts {
			sum += pt.V
		}
		curve.Points = append(curve.Points, point(t, sum/float64(len(pts))))
	}
	r.Curves = append(r.Curves, curve)

	// Cross-check against healthmon: violations must overlap the fault
	// window and stop before the recovery tail. Healthmon timestamps are
	// absolute sim time, so drop intervals that ended before traffic
	// started (deployment-settle noise) and report the rest relative to t0.
	snap := mon.Snapshot()
	var violations []healthmon.Interval
	for _, app := range snap.Apps {
		if app.App != cfg.App {
			continue
		}
		for _, v := range app.Violations {
			if v.To <= t0 {
				continue
			}
			violations = append(violations, healthmon.Interval{From: v.From - t0, To: v.To - t0})
		}
	}
	recoveryFrom := p.Horizon - 90*time.Second
	tailRate := mon.RateBetween(cfg.App, t0+recoveryFrom, t0+p.Horizon)
	firstAt, lastEnd := time.Duration(-1), time.Duration(-1)
	for _, v := range violations {
		if firstAt < 0 || v.From < firstAt {
			firstAt = v.From
		}
		if v.To > lastEnd {
			lastEnd = v.To
		}
	}

	r.AddValue("faults_injected", float64(inj.Injected))
	r.AddValue("faults_reverted", float64(inj.Reverted))
	r.AddValue("slo_violation_intervals", float64(len(violations)))
	r.AddValue("failed_requests", float64(failures.Len()))
	r.AddValue("recovery_tail_rate", tailRate)
	if firstAt >= 0 {
		r.AddValue("first_violation_s", firstAt.Seconds())
		r.AddValue("last_violation_end_s", lastEnd.Seconds())
	}

	before := latency.MeanBetween(0, 59*time.Second)
	after := latency.MeanBetween(recoveryFrom, p.Horizon)
	r.AddValue("latency_before_ms", before)
	r.AddValue("latency_after_ms", after)

	r.AddNote("scenario:\n%s", scenario)
	r.AddNote("injected %d faults, reverted %d; last heal at %s", inj.Injected, inj.Reverted, lastHeal)
	r.AddNote("SLO violations: %d interval(s), %d failed requests", len(violations), failures.Len())
	if firstAt >= 0 {
		r.AddNote("violation window %s..%s (faults ran %s..%s)",
			firstAt, lastEnd, scenario.Events[0].At, lastHeal)
	}
	r.AddNote("availability over final %s: %.6f (recovered: %v)",
		90*time.Second, tailRate, tailRate >= snap.SLOTarget)
	r.AddNote("mean latency: before %.1fms -> after recovery %.1fms", before, after)

	// Runtime-audit verdict: on a clean seed the §4.3 invariants must hold
	// through every injected fault. The full deterministic report rides in
	// Extra so smbench can write it out and tests can compare two runs
	// byte for byte.
	art := NewAuditArtifacts(d.Auditor)
	r.Extra = art
	checks := int64(0)
	for _, n := range d.Auditor.Checks() {
		checks += n
	}
	r.AddValue("audit_checks", float64(checks))
	r.AddValue("audit_violations", float64(d.Auditor.ViolationCount()))
	r.AddNote("runtime audit: %d invariant checks, %d violations", checks, d.Auditor.ViolationCount())
	return r
}
