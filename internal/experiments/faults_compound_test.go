package experiments

import (
	"bytes"
	"testing"

	"shardmanager/internal/healthmon"
	"shardmanager/internal/trace"
)

func quickCompoundFaultParams() CompoundFaultParams {
	p := DefaultCompoundFaultParams()
	p.Shards, p.ServersPerRegion, p.RequestRate = 150, 6, 15
	return p
}

func TestCompoundFaultsBreachSLOAndRecover(t *testing.T) {
	r := CompoundFaults(quickCompoundFaultParams())

	if got := r.Values["faults_injected"]; got != 8 {
		t.Errorf("faults_injected = %v, want 8", got)
	}
	// The final stall(coord) heals, but one event (expire) is self-healing,
	// so reverted is injected minus one.
	if got := r.Values["faults_reverted"]; got != 7 {
		t.Errorf("faults_reverted = %v, want 7", got)
	}
	if r.Values["slo_violation_intervals"] < 1 {
		t.Errorf("slo_violation_intervals = %v, want >= 1", r.Values["slo_violation_intervals"])
	}
	if r.Values["failed_requests"] < 100 {
		t.Errorf("failed_requests = %v, want >= 100 during the outage window", r.Values["failed_requests"])
	}

	// Violations must sit inside the fault window, not the settle phase or
	// the recovery tail: the first fault fires at t=60s (violation buckets
	// are 30s wide, so the interval may open one bucket early), and the
	// crash+partition outage is fully healed by t=3m.
	first, last := r.Values["first_violation_s"], r.Values["last_violation_end_s"]
	if first < 30 || first > 120 {
		t.Errorf("first_violation_s = %v, want within one bucket of the t=60s fault", first)
	}
	if last <= first || last > 300 {
		t.Errorf("last_violation_end_s = %v, want after %v and before full heal + slack", last, first)
	}

	// Recovery: the availability SLO holds again over the final 90s.
	if rate := r.Values["recovery_tail_rate"]; rate < 0.9999 {
		t.Errorf("recovery_tail_rate = %v, want >= 0.9999", rate)
	}
	// The pre-fault plateau is all-local reads; it must be clean.
	if before := r.Values["latency_before_ms"]; before <= 0 || before > 10 {
		t.Errorf("latency_before_ms = %v, want a clean local plateau", before)
	}
}

// TestCompoundFaultsIsDeterministic runs the compound experiment twice with
// the same seed and requires byte-identical trace and metrics output — the
// acceptance bar for the fault subsystem riding on the deterministic sim.
func TestCompoundFaultsIsDeterministic(t *testing.T) {
	run := func() (traceOut, metricsOut []byte) {
		tr := trace.New(trace.Options{})
		var mon *healthmon.Monitor
		SetDefaultTracer(tr)
		SetDefaultHealthFactory(func() *healthmon.Monitor {
			mon = healthmon.New(healthmon.Options{})
			return mon
		})
		defer SetDefaultTracer(nil)
		defer SetDefaultHealthFactory(nil)

		CompoundFaults(quickCompoundFaultParams())

		var tb, mb bytes.Buffer
		if err := tr.WriteChrome(&tb); err != nil {
			t.Fatal(err)
		}
		if mon == nil {
			t.Fatal("deployment never asked the health factory for a monitor")
		}
		if err := mon.Registry().WritePrometheus(&mb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), mb.Bytes()
	}

	t1, m1 := run()
	t2, m2 := run()
	if len(t1) == 0 || bytes.Count(t1, []byte("\"faults\"")) == 0 {
		t.Fatalf("trace has no fault spans (len=%d)", len(t1))
	}
	if !bytes.Equal(t1, t2) {
		t.Fatalf("trace output differs across same-seed runs (%d vs %d bytes)", len(t1), len(t2))
	}
	if !bytes.Equal(m1, m2) {
		t.Fatalf("metrics exposition differs across same-seed runs (%d vs %d bytes)", len(m1), len(m2))
	}
}
