package experiments

import (
	"fmt"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/metrics"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/taskcontroller"
	"shardmanager/internal/topology"
)

// AvailabilityParams configure the Fig 17 rolling-upgrade experiment. The
// paper deploys a primary-only application with 10,000 shards on 60
// servers, allows up to 10% of containers to restart concurrently, and
// compares three configurations:
//
//	SM (TaskController drains + graceful migration)  -> ~100% success
//	no graceful migration                            -> ~98%
//	neither (Twine paces restarts on its own)        -> <90%, but faster
//	                                                    (800s vs 1500s)
type AvailabilityParams struct {
	Servers            int
	Shards             int
	ConcurrentFraction float64
	// RequestRate is client requests per second.
	RequestRate int
	// Horizon bounds the measured window after the upgrade starts.
	Horizon time.Duration
	Seed    uint64
}

// DefaultAvailabilityParams mirror the paper's setup.
func DefaultAvailabilityParams() AvailabilityParams {
	return AvailabilityParams{
		Servers:            60,
		Shards:             10000,
		ConcurrentFraction: 0.10,
		RequestRate:        100,
		Horizon:            2000 * time.Second,
		Seed:               17,
	}
}

// shardLoadTime is how long a replica takes to load shard state on a new
// server. Graceful migration hides it behind prepare_add_shard; without it
// every migrated shard is down for this long.
const shardLoadTime = 5 * time.Second

// availabilityVariant names one configuration of the comparison.
type availabilityVariant struct {
	name       string
	graceful   bool
	controller bool
}

// availabilityOutcome is one variant's measured result.
type availabilityOutcome struct {
	variant       availabilityVariant
	curve         []metrics.Point
	rate          float64
	worstBucket   float64
	upgradeLength time.Duration
	// windowFrom/windowTo delimit the measured upgrade window, so external
	// monitors can recompute rate over the exact same interval.
	windowFrom time.Duration
	windowTo   time.Duration
}

// Fig17 regenerates Figure 17.
func Fig17(p AvailabilityParams) *Report {
	r := &Report{
		ID:    "fig17",
		Title: "Request success rate during a rolling software upgrade",
		Params: map[string]string{
			"servers":    fmt.Sprint(p.Servers),
			"shards":     fmt.Sprint(p.Shards),
			"concurrent": fmt.Sprintf("%.0f%%", p.ConcurrentFraction*100),
			"req_rate":   fmt.Sprint(p.RequestRate),
			"seed":       fmt.Sprint(p.Seed),
		},
	}
	variants := []availabilityVariant{
		{"SM", true, true},
		{"no graceful migration", false, true},
		{"no graceful migration & no TaskController", false, false},
	}
	t := Table{
		Title:   "outcome per configuration",
		Columns: []string{"configuration", "success rate", "worst 30s bucket", "upgrade duration"},
	}
	for _, v := range variants {
		out := runAvailabilityVariant(p, v)
		r.Curves = append(r.Curves, Curve{Name: v.name, Unit: "success fraction", Points: out.curve})
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprintf("%.3f%%", out.rate*100),
			fmt.Sprintf("%.1f%%", out.worstBucket*100),
			out.upgradeLength.Truncate(time.Second).String(),
		})
		r.AddNote("%s: success %.3f%%, upgrade took %v", v.name, out.rate*100,
			out.upgradeLength.Truncate(time.Second))
		r.AddValue(v.name+"/success_rate", out.rate)
		r.AddValue(v.name+"/window_from_ns", float64(out.windowFrom))
		r.AddValue(v.name+"/window_to_ns", float64(out.windowTo))
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("paper: SM ~100%%, no graceful migration ~98%%, neither <90%% (800s vs 1500s upgrade)")
	return r
}

func runAvailabilityVariant(p AvailabilityParams, v availabilityVariant) availabilityOutcome {
	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	pol.SpreadWeight = 0 // single-replica shards
	pol.MaxTotalMoves = 0
	cfg := orchestrator.Config{
		App:      "queueapp",
		Strategy: shard.PrimaryOnly,
		Shards: UniformShardConfigs(p.Shards, 1, topology.Capacity{
			topology.ResourceCPU:        0.05,
			topology.ResourceShardCount: 1,
		}),
		Policy: pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: float64(p.Shards),
		},
		GracefulMigration: v.graceful,
		// Restarts take 80s; keep them under the failover grace so a
		// restart is downtime, not a permanent failure.
		FailoverGrace:           3 * time.Minute,
		MaxConcurrentMigrations: p.Shards / 100,
		AllocInterval:           30 * time.Second,
		ShardLoadTime:           shardLoadTime,
	}
	var taskPolicy *taskcontroller.Policy
	if v.controller {
		tp := taskcontroller.DefaultPolicy(int(float64(p.Servers) * p.ConcurrentFraction))
		taskPolicy = &tp
	}
	backing := apps.NewQueueBacking()
	opts := cluster.DefaultOptions()
	opts.RestartDuration = 80 * time.Second
	d := Build(DeploymentSpec{
		Regions:          []topology.RegionID{"region1"},
		ServersPerRegion: p.Servers,
		Orch:             cfg,
		TaskPolicy:       taskPolicy,
		ClusterOpts:      opts,
		AppFactory: func(s *appserver.Server) appserver.Application {
			s.LoadTime = shardLoadTime
			return apps.NewQueue(s, backing)
		},
		Seed: p.Seed,
	})
	if err := d.Settle(15 * time.Minute); err != nil {
		panic(err)
	}

	// Client traffic: enqueue to a random shard every tick.
	ks := KeyspaceFor(p.Shards)
	client := d.NewClient("region1", ks, routing.DefaultOptions())
	rng := d.Loop.RNG().Fork()
	ratio := metrics.NewSuccessRatio(30 * time.Second)
	interval := time.Second / time.Duration(p.RequestRate)
	d.Loop.EveryL(interval, lbExpClient, func() {
		key := KeyForShard(rng.Intn(p.Shards))
		client.Do(key, true, apps.QueueOpEnqueue, "msg", func(res routing.Result) {
			ratio.Observe(d.Loop.Now(), res.OK)
		})
	})
	// Warm-up traffic before the upgrade starts.
	d.Loop.RunFor(2 * time.Minute)

	// Rolling upgrade of every container.
	start := d.Loop.Now()
	var finished time.Duration
	maxConc := int(float64(p.Servers) * p.ConcurrentFraction)
	for _, mgr := range d.Managers {
		mgr.RollingUpgrade(d.Jobs[mgr.Region], maxConc, "upgrade", func() {
			finished = d.Loop.Now()
		})
	}
	d.Loop.RunFor(p.Horizon)
	if finished == 0 {
		finished = d.Loop.Now() // did not finish within horizon
	}

	// Measure over the upgrade window only, as the paper's figure does.
	return availabilityOutcome{
		variant:       v,
		curve:         ratio.Curve(),
		rate:          ratio.RateBetween(start, finished),
		worstBucket:   ratio.MinBucketBetween(start, finished),
		upgradeLength: finished - start,
		windowFrom:    start,
		windowTo:      finished,
	}
}
