package experiments

import (
	"fmt"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/taskcontroller"
	"shardmanager/internal/topology"
	"shardmanager/internal/workload"
)

// ProductionTraceParams configure the Fig 18 scenario: Facebook's
// instant-messaging queue service (a primary-only SM application) over two
// days. Client request rate follows a diurnal pattern; every day the
// service does a staged rolling upgrade — a small-scale canary first, then,
// three hours later, a full-scale upgrade — producing the small and big
// spikes in the shard-moves curve. Despite the concurrent shard moves, the
// client error rate stays flat.
type ProductionTraceParams struct {
	Servers int
	Shards  int
	Days    int
	// BaseRate is the mean request rate (requests/second); the diurnal
	// pattern swings around it.
	BaseRate int
	// CanaryAt / FullAt are the time-of-day of the two upgrade stages.
	CanaryAt, FullAt time.Duration
	Seed             uint64
}

// DefaultProductionTraceParams scale the trace to simulation size.
func DefaultProductionTraceParams() ProductionTraceParams {
	return ProductionTraceParams{
		Servers:  30,
		Shards:   2000,
		Days:     2,
		BaseRate: 12,
		CanaryAt: 9 * time.Hour,
		FullAt:   12 * time.Hour,
		Seed:     18,
	}
}

// Fig18 regenerates Figure 18.
func Fig18(p ProductionTraceParams) *Report {
	r := &Report{
		ID:    "fig18",
		Title: "No increase in client errors during upgrades, thanks to graceful shard migration",
		Params: map[string]string{
			"servers":  fmt.Sprint(p.Servers),
			"shards":   fmt.Sprint(p.Shards),
			"days":     fmt.Sprint(p.Days),
			"baserate": fmt.Sprint(p.BaseRate),
			"seed":     fmt.Sprint(p.Seed),
		},
	}

	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	pol.SpreadWeight = 0
	cfg := orchestrator.Config{
		App:      "msgqueue",
		Strategy: shard.PrimaryOnly,
		Shards: UniformShardConfigs(p.Shards, 1, topology.Capacity{
			topology.ResourceCPU:        0.5,
			topology.ResourceShardCount: 1,
		}),
		Policy: pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: float64(p.Shards),
		},
		GracefulMigration:       true,
		FailoverGrace:           3 * time.Minute,
		MaxConcurrentMigrations: p.Shards / 100,
		ShardLoadTime:           shardLoadTime,
	}
	tp := taskcontroller.DefaultPolicy(p.Servers / 10)
	backing := apps.NewQueueBacking()
	opts := cluster.DefaultOptions()
	opts.RestartDuration = 80 * time.Second
	d := Build(DeploymentSpec{
		Regions:          []topology.RegionID{"region1"},
		ServersPerRegion: p.Servers,
		Orch:             cfg,
		TaskPolicy:       &tp,
		ClusterOpts:      opts,
		AppFactory: func(s *appserver.Server) appserver.Application {
			s.LoadTime = shardLoadTime
			return apps.NewQueue(s, backing)
		},
		Seed: p.Seed,
	})
	if err := d.Settle(15 * time.Minute); err != nil {
		panic(err)
	}

	ks := KeyspaceFor(p.Shards)
	client := d.NewClient("region1", ks, routing.DefaultOptions())
	rng := d.Loop.RNG().Fork()
	t0 := d.Loop.Now()

	var sent, completed, failed int64
	bucket := 20 * time.Minute
	rateCurve := Curve{Name: "client request rate", Unit: "req/s"}
	errCurve := Curve{Name: "client error rate", Unit: "errors/s"}
	moveCurve := Curve{Name: "shard moves", Unit: "moves/bucket"}
	lastMoves := d.Orch.ShardMoves.Value()
	var lastSent, lastFailed int64
	d.Loop.EveryL(bucket, lbExpSample, func() {
		t := d.Loop.Now() - t0
		rateCurve.Points = append(rateCurve.Points, point(t, float64(sent-lastSent)/bucket.Seconds()))
		errCurve.Points = append(errCurve.Points, point(t, float64(failed-lastFailed)/bucket.Seconds()))
		cur := d.Orch.ShardMoves.Value()
		moveCurve.Points = append(moveCurve.Points, point(t, float64(cur-lastMoves)))
		lastSent, lastFailed, lastMoves = sent, failed, cur
	})

	// Diurnal request generator: every second issue a Poisson-ish number
	// of enqueues around BaseRate * diurnal(t).
	d.Loop.EveryL(time.Second, lbExpClient, func() {
		t := d.Loop.Now() - t0
		rate := float64(p.BaseRate) * workload.Diurnal(t, 0.5)
		n := int(rate)
		if rng.Float64() < rate-float64(n) {
			n++
		}
		for i := 0; i < n; i++ {
			sent++
			key := KeyForShard(rng.Intn(p.Shards))
			client.Do(key, true, apps.QueueOpEnqueue, "m", func(res routing.Result) {
				completed++
				if !res.OK {
					failed++
				}
			})
		}
	})

	// Daily staged upgrades: canary (10% of containers), then full scale
	// three hours later.
	mgr := d.Managers["region1"]
	job := d.Jobs["region1"]
	canarySize := p.Servers / 10
	if canarySize < 1 {
		canarySize = 1
	}
	for day := 0; day < p.Days; day++ {
		dayStart := t0 + time.Duration(day)*24*time.Hour
		d.Loop.AtL(dayStart+p.CanaryAt, lbExpAdmin, func() {
			// Canary: restart the first canarySize containers.
			ids := mgr.RunningContainers(job)
			for i := 0; i < canarySize && i < len(ids); i++ {
				mgr.Submit(cluster.Operation{
					Type: cluster.OpRestart, Container: ids[i],
					Negotiable: true, Reason: "canary",
				})
			}
		})
		d.Loop.AtL(dayStart+p.FullAt, lbExpAdmin, func() {
			mgr.RollingUpgrade(job, canarySize, "full-upgrade", nil)
		})
	}
	d.Loop.RunFor(time.Duration(p.Days) * 24 * time.Hour)

	r.Curves = append(r.Curves, rateCurve, errCurve, moveCurve)
	// Success over completed requests (requests still in flight at the
	// horizon have no outcome), matching what external monitors observe.
	overall := 1 - float64(failed)/float64(maxI64(completed, 1))
	r.AddValue("overall_success_rate", overall)
	r.AddNote("overall success rate across %d requests: %.4f%%", sent, overall*100)
	r.AddNote("peak error rate bucket: %.3f errors/s at request rates up to %.0f req/s",
		maxVal(errCurve.Points, 0, 1<<62), maxVal(rateCurve.Points, 0, 1<<62))
	r.AddNote("shard-move spikes align with the daily canary and full-scale upgrades; the error curve stays flat (paper: 'hardly changes')")
	return r
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
