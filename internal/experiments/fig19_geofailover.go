package experiments

import (
	"fmt"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/metrics"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// GeoFailoverParams configure the Fig 19 experiment: a secondary-only
// application with 1,000 shards and two replicas per shard across three
// regions — FRC (Forest City, NC), PRN (Prineville, OR), ODN (Odense,
// Denmark) — 30 servers per region. 400 "east-coast" (EC) shards carry a
// region preference for FRC. The FRC servers fail at FailAt and recover at
// RecoverAt; the plotted curve is the latency an FRC client sees accessing
// EC shards.
type GeoFailoverParams struct {
	Shards           int
	ECShards         int
	Replicas         int
	ServersPerRegion int
	RequestRate      int
	FailAt           time.Duration
	RecoverAt        time.Duration
	Horizon          time.Duration
	Seed             uint64
}

// DefaultGeoFailoverParams mirror the paper's setup.
func DefaultGeoFailoverParams() GeoFailoverParams {
	return GeoFailoverParams{
		Shards:           1000,
		ECShards:         400,
		Replicas:         2,
		ServersPerRegion: 30,
		RequestRate:      60,
		FailAt:           90 * time.Second,
		RecoverAt:        450 * time.Second,
		Horizon:          620 * time.Second,
		Seed:             19,
	}
}

// Fig19 regenerates Figure 19.
func Fig19(p GeoFailoverParams) *Report {
	r := &Report{
		ID:    "fig19",
		Title: "SM migrates a geo-distributed application's shards across regions to handle failures",
		Params: map[string]string{
			"shards":   fmt.Sprint(p.Shards),
			"ec":       fmt.Sprint(p.ECShards),
			"replicas": fmt.Sprint(p.Replicas),
			"servers":  fmt.Sprintf("%dx3", p.ServersPerRegion),
			"seed":     fmt.Sprint(p.Seed),
		},
	}

	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	pol.SpreadLevel = topology.LevelRegion
	pol.SpreadWeight = 100
	pol.AffinityWeight = 300
	shards := UniformShardConfigs(p.Shards, p.Replicas, topology.Capacity{
		topology.ResourceCPU:        0.5,
		topology.ResourceShardCount: 1,
	})
	for i := 0; i < p.ECShards; i++ {
		shards[i].RegionPreference = "frc"
	}
	cfg := orchestrator.Config{
		App:      "geostore",
		Strategy: shard.SecondaryOnly,
		Shards:   shards,
		Policy:   pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: float64(p.Shards),
		},
		HomeRegion:              "prn",
		GracefulMigration:       true,
		FailoverGrace:           20 * time.Second,
		AllocInterval:           15 * time.Second,
		MaxConcurrentMigrations: 200,
	}
	backing := apps.NewKVBacking()
	d := Build(DeploymentSpec{
		Regions:          []topology.RegionID{"frc", "prn", "odn"},
		ServersPerRegion: p.ServersPerRegion,
		Latency: map[[2]topology.RegionID]time.Duration{
			{"frc", "prn"}: 35 * time.Millisecond,
			{"frc", "odn"}: 45 * time.Millisecond,
			{"prn", "odn"}: 80 * time.Millisecond,
		},
		Orch: cfg,
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Seed: p.Seed,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		panic(err)
	}
	// Verify the region preference took hold: every EC shard should have
	// a replica at FRC in the steady state.
	m := d.Orch.AssignmentSnapshot()
	atFRC := 0
	for i := 0; i < p.ECShards; i++ {
		for _, a := range m.Replicas(shards[i].ID) {
			if d.Net.Region(rpcnet.Endpoint(a.Server)) == "frc" {
				atFRC++
				break
			}
		}
	}
	r.AddNote("steady state: %d/%d EC shards have a replica at FRC", atFRC, p.ECShards)

	// FRC client reading EC shards.
	ks := KeyspaceFor(p.Shards)
	client := d.NewClient("frc", ks, routing.DefaultOptions())
	rng := d.Loop.RNG().Fork()
	latency := metrics.NewSeries("latency")
	failures := metrics.NewSeries("failures")
	t0 := d.Loop.Now()
	d.Loop.EveryL(time.Second/time.Duration(p.RequestRate), lbExpClient, func() {
		key := KeyForShard(rng.Intn(p.ECShards))
		client.Do(key, false, apps.KVOpScan, nil, func(res routing.Result) {
			if res.OK {
				latency.Record(d.Loop.Now()-t0, float64(res.Latency)/float64(time.Millisecond))
			} else {
				failures.Record(d.Loop.Now()-t0, 1)
			}
		})
	})

	frc := d.Managers["frc"]
	d.Loop.AtL(t0+p.FailAt, lbExpAdmin, frc.FailRegion)
	d.Loop.AtL(t0+p.RecoverAt, lbExpAdmin, frc.RecoverRegion)
	d.Loop.RunFor(p.Horizon)

	// Bucket latency into 10s means for the plotted curve.
	curve := Curve{Name: "EC-shard read latency (FRC client)", Unit: "ms"}
	bucket := 10 * time.Second
	for t := time.Duration(0); t < p.Horizon; t += bucket {
		pts := latency.Between(t, t+bucket-1)
		if len(pts) == 0 {
			continue
		}
		sum := 0.0
		for _, pt := range pts {
			sum += pt.V
		}
		curve.Points = append(curve.Points, point(t, sum/float64(len(pts))))
	}
	r.Curves = append(r.Curves, curve)

	before := latency.MeanBetween(0, p.FailAt-1)
	during := latency.MeanBetween(p.FailAt+60*time.Second, p.RecoverAt-1)
	after := latency.MeanBetween(p.RecoverAt+120*time.Second, p.Horizon)
	r.AddNote("mean latency: steady %.1fms -> failover plateau %.1fms -> after shards move back %.1fms",
		before, during, after)
	r.AddNote("failed requests: %d (clients retry onto surviving replicas)", failures.Len())
	r.AddNote("paper shape: low steady latency, spike at failure, remote-replica plateau, restored after shards move back")
	return r
}
