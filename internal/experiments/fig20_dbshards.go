package experiments

import (
	"fmt"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/metrics"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// DBShardParams configure the Fig 20 experiment. Facebook's
// instant-messaging product stores messages in a sharded SQL database not
// managed by SM; all accesses to a DBShard must go through a paired
// AppShard (an SM-managed primary-only soft-state service). A DBShard and
// its AppShard should run in the same region. An administrator moves
// batches of DBShards across regions; updating the impacted AppShards'
// regional placement preferences triggers SM to migrate them after their
// DBShards, restoring locality.
type DBShardParams struct {
	Shards           int
	ServersPerRegion int
	Regions          int
	// BatchSize DBShards move in each administrative batch.
	BatchSize int
	// Batch1At / Batch2At are the two batch times; Horizon ends the run.
	Batch1At, Batch2At, Horizon time.Duration
	Seed                        uint64
}

// DefaultDBShardParams mirror the paper's two-batch production episode
// (Fig 20 spans two hours with batches ~30 minutes apart).
func DefaultDBShardParams() DBShardParams {
	return DBShardParams{
		Shards:           800,
		ServersPerRegion: 15,
		Regions:          4,
		BatchSize:        200,
		Batch1At:         30 * time.Minute,
		Batch2At:         60 * time.Minute,
		Horizon:          2 * time.Hour,
		Seed:             20,
	}
}

// Fig20 regenerates Figure 20.
func Fig20(p DBShardParams) *Report {
	r := &Report{
		ID:    "fig20",
		Title: "SM migrates AppShards across regions to follow DBShards and reduce latency",
		Params: map[string]string{
			"shards":  fmt.Sprint(p.Shards),
			"regions": fmt.Sprint(p.Regions),
			"batch":   fmt.Sprint(p.BatchSize),
			"seed":    fmt.Sprint(p.Seed),
		},
	}
	regions := make([]topology.RegionID, p.Regions)
	for i := range regions {
		regions[i] = topology.RegionID(fmt.Sprintf("region%d", i))
	}

	// DBShard home regions (the external database's placement).
	rng := newSeededRNG(p.Seed)
	dbRegion := make([]topology.RegionID, p.Shards)
	for i := range dbRegion {
		dbRegion[i] = regions[rng.Intn(p.Regions)]
	}

	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	pol.SpreadWeight = 0 // primary-only
	pol.AffinityWeight = 300
	shards := UniformShardConfigs(p.Shards, 1, topology.Capacity{
		topology.ResourceCPU:        0.5,
		topology.ResourceShardCount: 1,
	})
	for i := range shards {
		shards[i].RegionPreference = dbRegion[i]
	}
	cfg := orchestrator.Config{
		App:      "msgapp",
		Strategy: shard.PrimaryOnly,
		Shards:   shards,
		Policy:   pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: float64(p.Shards),
		},
		GracefulMigration:       true,
		AllocInterval:           30 * time.Second,
		MaxConcurrentMigrations: 100,
		ShardLoadTime:           2 * time.Second,
	}
	bus := apps.NewDataBus()
	d := Build(DeploymentSpec{
		Regions:          regions,
		ServersPerRegion: p.ServersPerRegion,
		Orch:             cfg,
		AppFactory: func(s *appserver.Server) appserver.Application {
			s.LoadTime = 2 * time.Second
			return apps.NewStreamProcessor(s, bus)
		},
		Seed: p.Seed,
	})
	if err := d.Settle(15 * time.Minute); err != nil {
		panic(err)
	}

	// pairLatency is the mean one-way latency between each AppShard's
	// current region and its DBShard's region — the paper's top curve.
	pairLatency := func() float64 {
		m := d.Orch.AssignmentSnapshot()
		var sum float64
		n := 0
		for i := range shards {
			srv, ok := m.Primary(shards[i].ID)
			if !ok {
				continue
			}
			appRegion := d.Net.Region(rpcnet.Endpoint(srv))
			sum += float64(d.Fleet.Latency(appRegion, dbRegion[i])) / float64(time.Millisecond)
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}

	latCurve := Curve{Name: "latency between AppShard and DBShard", Unit: "ms (mean)"}
	appMoves := Curve{Name: "AppShard moves", Unit: "moves/interval"}
	dbMoves := Curve{Name: "DBShard moves", Unit: "moves/interval"}
	t0 := d.Loop.Now()
	lastMoves := d.Orch.ShardMoves.Value()
	dbMoved := 0
	d.Loop.EveryL(time.Minute, lbExpSample, func() {
		t := d.Loop.Now() - t0
		latCurve.Points = append(latCurve.Points, point(t, pairLatency()))
		cur := d.Orch.ShardMoves.Value()
		appMoves.Points = append(appMoves.Points, point(t, float64(cur-lastMoves)))
		lastMoves = cur
		dbMoves.Points = append(dbMoves.Points, point(t, float64(dbMoved)))
		dbMoved = 0
	})

	// Administrative DBShard batches: move BatchSize DBShards to a new
	// region, then update the impacted AppShards' preferences (the
	// paper's exact workflow).
	moveBatch := func(startIdx int) {
		for i := startIdx; i < startIdx+p.BatchSize && i < p.Shards; i++ {
			next := regions[(regionIndex(regions, dbRegion[i])+1+rng.Intn(p.Regions-1))%p.Regions]
			dbRegion[i] = next
			dbMoved++
			d.Orch.SetRegionPreference(shards[i].ID, next, pol.AffinityWeight)
		}
	}
	d.Loop.AtL(t0+p.Batch1At, lbExpAdmin, func() { moveBatch(0) })
	d.Loop.AtL(t0+p.Batch2At, lbExpAdmin, func() { moveBatch(p.BatchSize) })
	d.Loop.RunFor(p.Horizon)

	r.Curves = append(r.Curves, latCurve, appMoves, dbMoves)
	steady := meanVal(latCurve.Points, 0, p.Batch1At-time.Minute)
	spike1 := maxVal(latCurve.Points, p.Batch1At, p.Batch1At+10*time.Minute)
	settled := meanVal(latCurve.Points, p.Batch2At+30*time.Minute, p.Horizon)
	r.AddNote("AppShard<->DBShard latency: steady %.2fms, spike after batch %.2fms, settled %.2fms", steady, spike1, settled)
	r.AddNote("paper shape: two latency spikes when DBShard batches move, each recovering as SM migrates AppShards to follow")
	return r
}

func regionIndex(regions []topology.RegionID, r topology.RegionID) int {
	for i, x := range regions {
		if x == r {
			return i
		}
	}
	return 0
}

func meanVal(pts []metrics.Point, from, to time.Duration) float64 {
	var sum float64
	n := 0
	for _, p := range pts {
		if p.T >= from && p.T <= to {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func maxVal(pts []metrics.Point, from, to time.Duration) float64 {
	m := 0.0
	for _, p := range pts {
		if p.T >= from && p.T <= to && p.V > m {
			m = p.V
		}
	}
	return m
}
