package experiments

import (
	"fmt"
	"time"

	"shardmanager/internal/metrics"

	"shardmanager/internal/sim"
	"shardmanager/internal/solver"
)

// SolverScaleParams configure the Fig 21 allocator-scalability stress test.
// The paper's setup (§8.4): a snapshot of a production ZippyDB deployment,
// balancing storage, CPU, and shard count; shard loads vary 20x; server
// storage capacity varies up to 20%; violations are utilization > 90% or
// utilization > mean + 10%; the initial state is a random assignment.
type SolverScaleParams struct {
	// Scales lists (servers, shards) problem sizes.
	Scales [][2]int
	Seed   uint64
	// TimeLimit bounds each solve (0 = none).
	TimeLimit time.Duration
	// EvalBudget bounds each solve by candidate evaluations (0 = none).
	// Unlike TimeLimit it is deterministic, so curves reproduce exactly.
	EvalBudget int
}

// evalTime maps a candidate-evaluation count onto the curve time axis
// (1 evaluation ≡ 1µs). Keying progress points by evaluation count instead
// of wall clock makes two runs with the same seed produce identical curves;
// the µs encoding just reuses the metrics.Point time axis.
func evalTime(evals int) time.Duration { return time.Duration(evals) * time.Microsecond }

// DefaultSolverScaleParams mirror the paper's three problem sizes.
func DefaultSolverScaleParams() SolverScaleParams {
	return SolverScaleParams{
		Scales: [][2]int{{1000, 75000}, {3000, 225000}, {5000, 375000}},
		Seed:   1,
	}
}

// zippyProblem builds a ZippyDB-like placement problem with a random
// initial assignment. With geo set, servers span many regions and a large
// minority of shards carry region preferences — the placement features that
// make domain-guided sampling matter (§5.3; Fig 22's ablation uses it).
func zippyProblem(rng *sim.RNG, servers, shards int, geo bool) *solver.Problem {
	const geoRegions = 24
	p := solver.NewProblem([]string{"storage", "cpu", "shard_count"})
	for i := 0; i < servers; i++ {
		// Heterogeneous hardware: storage capacity varies up to 20%.
		storageCap := 1000 * (1 + 0.2*rng.Float64())
		b := solver.Bucket{
			Name:     fmt.Sprintf("srv%05d", i),
			Capacity: []float64{storageCap, 100, 1000},
			Group:    fmt.Sprintf("g%d", i%8),
		}
		if geo {
			region := fmt.Sprintf("region%02d", i%geoRegions)
			b.Group = region
			b.Props = map[string]string{"region": region}
		}
		p.AddBucket(b)
	}
	// Shard load varies 20x between the smallest and largest shard.
	// Average the totals to ~55% mean utilization so the 90%-cap and
	// mean+10% rules are satisfiable but violated by a random start. The
	// geo variant runs hotter (72%): with most servers near the balance
	// band, blind sampling mostly proposes targets that are already warm,
	// which is exactly the regime where sampling *underutilized* servers
	// per group pays off (§5.3).
	meanUtil := 0.55
	if geo {
		meanUtil = 0.72
	}
	baseStorage := float64(servers) * 1100 * meanUtil / float64(shards)
	baseCPU := float64(servers) * 100 * meanUtil / float64(shards)
	for i := 0; i < shards; i++ {
		skew := 0.1 + 1.9*rng.Float64() // 20x spread around the mean
		id := p.AddEntity(solver.Entity{
			Name:    fmt.Sprintf("sh%06d", i),
			Load:    []float64{baseStorage * skew, baseCPU * skew, 1},
			Bucket:  solver.BucketID(rng.Intn(servers)),
			Movable: true,
		})
		if geo && i%5 == 0 {
			// A fifth of shards dictate a regional placement
			// preference (§2.2.4: 33% of geo-distributed server
			// usage is preference-driven).
			p.AddAffinityGoal(solver.AffinityGoal{
				Scope:  "region",
				Entity: id,
				Domain: fmt.Sprintf("region%02d", rng.Intn(geoRegions)),
				Weight: 20,
			})
		}
	}
	for _, m := range []string{"storage", "cpu"} {
		p.AddConstraint(solver.CapacitySpec{Metric: m})
		p.AddBalanceGoal(solver.BalanceSpec{Metric: m, UtilCap: 0.9, MaxDiff: 0.1, Weight: 1})
	}
	p.AddBalanceGoal(solver.BalanceSpec{Metric: "shard_count", MaxDiff: 0.15, Weight: 0.5})
	return p
}

// Fig21 regenerates Figure 21: violations-vs-time curves at three problem
// sizes, with total solve times. The paper reports 30s for 75K shards and
// 205s for 375K (6.8x for 5x size) on production hardware; the shape that
// must hold is sub-~1.5x-superlinear growth and zero remaining violations.
func Fig21(params SolverScaleParams) *Report {
	r := &Report{
		ID:    "fig21",
		Title: "SM allocator scalability w.r.t. problem size",
		Params: map[string]string{
			"scales": fmt.Sprint(params.Scales),
			"seed":   fmt.Sprint(params.Seed),
		},
	}
	t := Table{
		Title:   "solve summary",
		Columns: []string{"servers", "shards", "initial violations", "final violations", "moves", "solve time"},
	}
	var firstTime, lastTime time.Duration
	var firstSize, lastSize int
	for _, scale := range params.Scales {
		servers, shards := scale[0], scale[1]
		rng := sim.NewRNG(params.Seed)
		p := zippyProblem(rng, servers, shards, false)
		curve := Curve{Name: fmt.Sprintf("%dK shards on %dK servers", shards/1000, servers/1000), Unit: "violations"}
		opt := solver.DefaultOptions()
		opt.Seed = params.Seed
		opt.TimeLimit = params.TimeLimit
		opt.EvalBudget = params.EvalBudget
		opt.Sampler = solver.GroupedSampler(p, 1) // utilization bias on CPU
		opt.Progress = func(pi solver.ProgressInfo) {
			curve.Points = append(curve.Points, point(evalTime(pi.Evaluated), float64(pi.Violations.Total())))
		}
		res := solver.Solve(p, opt)
		curve.Points = append(curve.Points, point(evalTime(res.Evaluated), float64(res.Final.Total())))
		r.Curves = append(r.Curves, curve)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(servers), fmt.Sprint(shards),
			fmt.Sprint(res.Initial.Total()), fmt.Sprint(res.Final.Total()),
			fmt.Sprint(len(res.Moves)), res.Elapsed.Truncate(time.Millisecond).String(),
		})
		if firstTime == 0 {
			firstTime, firstSize = res.Elapsed, shards
		}
		lastTime, lastSize = res.Elapsed, shards
	}
	r.Tables = append(r.Tables, t)
	if firstTime > 0 {
		r.AddNote("solve time grew %.1fx for a %.0fx problem-size increase (paper: 6.8x for 5x)",
			float64(lastTime)/float64(firstTime), float64(lastSize)/float64(firstSize))
	}
	r.AddNote("all violations fixed at every scale (paper: allocator fixes all violations in all stress tests)")
	return r
}

// SolverAblationParams configure Fig 22 and the extra §5.3 ablations.
type SolverAblationParams struct {
	Servers, Shards int
	Seed            uint64
	// TimeLimit bounds each solve; the paper's baseline fails to finish
	// within 300s.
	TimeLimit time.Duration
	// EvalBudget bounds each solve by candidate evaluations (0 = none);
	// deterministic, so ablation curves reproduce exactly per seed.
	EvalBudget int
}

// DefaultSolverAblationParams scale the paper's 75K-shard comparison to a
// size where convergence is reachable within the time limit on commodity
// hardware (the structure — 24 regions, region preferences, hot servers —
// is preserved).
func DefaultSolverAblationParams() SolverAblationParams {
	return SolverAblationParams{Servers: 600, Shards: 45000, Seed: 1, TimeLimit: 90 * time.Second}
}

// ablationVariant is one solver configuration under test.
type ablationVariant struct {
	name  string
	tweak func(*solver.Options, *solver.Problem)
}

func runAblation(params SolverAblationParams, variants []ablationVariant) (*Report, []solver.Result) {
	r := &Report{
		ID:    "fig22",
		Title: "Optimizations help scale the constraint solver (grouped sampling ablation)",
		Params: map[string]string{
			"servers": fmt.Sprint(params.Servers),
			"shards":  fmt.Sprint(params.Shards),
			"limit":   params.TimeLimit.String(),
		},
	}
	t := Table{
		Title:   "variant comparison",
		Columns: []string{"variant", "final violations", "moves", "evaluations", "evals to fix 90%", "solve time"},
	}
	var results []solver.Result
	for _, v := range variants {
		rng := sim.NewRNG(params.Seed)
		p := zippyProblem(rng, params.Servers, params.Shards, true)
		opt := solver.DefaultOptions()
		opt.Seed = params.Seed
		opt.TimeLimit = params.TimeLimit
		opt.EvalBudget = params.EvalBudget
		// Both variants get the same candidate budget (one per region)
		// so the comparison isolates *where* candidates come from, not
		// how many there are.
		opt.CandidateTargets = 24
		opt.Sampler = solver.GroupedSampler(p, 1)
		v.tweak(&opt, p)
		curve := Curve{Name: v.name, Unit: "violations"}
		opt.Progress = func(pi solver.ProgressInfo) {
			curve.Points = append(curve.Points, point(evalTime(pi.Evaluated), float64(pi.Violations.Total())))
		}
		res := solver.Solve(p, opt)
		curve.Points = append(curve.Points, point(evalTime(res.Evaluated), float64(res.Final.Total())))
		r.Curves = append(r.Curves, curve)
		t.Rows = append(t.Rows, []string{
			v.name, fmt.Sprint(res.Final.Total()), fmt.Sprint(len(res.Moves)),
			fmt.Sprint(res.Evaluated),
			fmt.Sprint(int64(timeToFix(curve.Points, res.Initial.Total(), 0.9) / time.Microsecond)),
			res.Elapsed.Truncate(time.Millisecond).String(),
		})
		results = append(results, *res)
	}
	r.Tables = append(r.Tables, t)
	return r, results
}

// timeToFix returns the curve position at which the violation curve first
// dropped to (1-frac) of initial, or the last point's position if it never
// did. With evaluation-keyed curves the returned Duration encodes an
// evaluation count (1µs ≡ 1 evaluation).
func timeToFix(pts []metrics.Point, initial int, frac float64) time.Duration {
	target := float64(initial) * (1 - frac)
	for _, p := range pts {
		if p.V <= target {
			return p.T
		}
	}
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].T
}

// Fig22 regenerates Figure 22: the domain-knowledge sampling optimization
// (§5.3 item 4) against a random-sampling baseline. The paper's claims are
// that without the optimization the solver cannot finish in its 300s budget
// and the solution needs 22% more shard moves; the reproduced shape is
// "baseline is slower to fix violations and moves more shards".
func Fig22(params SolverAblationParams) *Report {
	r, results := runAblation(params, []ablationVariant{
		{"optimized (grouped, utilization-aware sampling)", func(*solver.Options, *solver.Problem) {}},
		{"baseline (uniform random sampling)", func(o *solver.Options, p *solver.Problem) {
			o.Sampler = solver.RandomSampler(p)
		}},
	})
	if len(results) == 2 {
		opt, base := results[0], results[1]
		optFix := timeToFix(r.Curves[0].Points, opt.Initial.Total(), 0.9)
		baseFix := timeToFix(r.Curves[1].Points, base.Initial.Total(), 0.9)
		r.AddNote("evaluations to fix 90%% of violations: optimized %d vs baseline %d",
			int64(optFix/time.Microsecond), int64(baseFix/time.Microsecond))
		if len(opt.Moves) > 0 {
			r.AddNote("baseline used %.0f%% more shard moves (paper: 22%% more)",
				100*(float64(len(base.Moves))/float64(len(opt.Moves))-1))
		}
	}
	return r
}

// Ablations runs the remaining §5.3 design-choice ablations called out in
// DESIGN.md: equivalence classes, big-shards-first, and swap moves.
func Ablations(params SolverAblationParams) *Report {
	r, _ := runAblation(params, []ablationVariant{
		{"all optimizations", func(*solver.Options, *solver.Problem) {}},
		{"no equivalence classes", func(o *solver.Options, _ *solver.Problem) { o.UseEquivalence = false }},
		{"no big-shards-first", func(o *solver.Options, _ *solver.Problem) { o.BigFirst = false }},
		{"no swap moves", func(o *solver.Options, _ *solver.Problem) { o.EnableSwap = false }},
	})
	r.ID = "ablations"
	r.Title = "Design-choice ablations for the §5.3 solver optimizations"
	return r
}
