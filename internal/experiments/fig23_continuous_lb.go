package experiments

import (
	"fmt"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/metrics"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
	"shardmanager/internal/workload"
)

// ContinuousLBParams configure the Fig 23 experiment: a ZippyDB-like
// deployment under ever-changing production load. The paper plots three
// days of a 12K-machine deployment: CPU utilization, LB violations, and
// shard moves all follow a diurnal pattern, a small number of violations
// constantly emerge, the allocator fixes them, and p99 CPU stays under 80%.
type ContinuousLBParams struct {
	Servers int
	Shards  int
	Days    int
	// RoundEvery is the LB cadence (load refresh + allocation).
	RoundEvery time.Duration
	Seed       uint64
}

// DefaultContinuousLBParams scale the scenario to simulation size.
func DefaultContinuousLBParams() ContinuousLBParams {
	return ContinuousLBParams{
		Servers:    120,
		Shards:     4000,
		Days:       3,
		RoundEvery: 10 * time.Minute,
		Seed:       23,
	}
}

// Fig23 regenerates Figure 23. It drives the allocator directly (no RPC
// plumbing): what the figure shows is the continuous-optimization loop —
// measure load, count violations, solve, move — under diurnal drift.
func Fig23(p ContinuousLBParams) *Report {
	r := &Report{
		ID:    "fig23",
		Title: "SM balances load in an ever-changing environment (3 days, diurnal load)",
		Params: map[string]string{
			"servers": fmt.Sprint(p.Servers),
			"shards":  fmt.Sprint(p.Shards),
			"days":    fmt.Sprint(p.Days),
			"seed":    fmt.Sprint(p.Seed),
		},
	}
	rng := sim.NewRNG(p.Seed)

	// Heterogeneous servers (storage capacity varies 20%).
	servers := make([]allocator.ServerInfo, p.Servers)
	cpuCap := make(map[shard.ServerID]float64, p.Servers)
	for i := range servers {
		id := shard.ServerID(fmt.Sprintf("srv%04d", i))
		cap := 100.0
		servers[i] = allocator.ServerInfo{
			ID: id,
			Domains: map[string]string{
				"region": fmt.Sprintf("region%d", i%3),
				"rack":   fmt.Sprintf("rack%02d", i%16),
			},
			Capacity: topology.Capacity{
				topology.ResourceCPU:        cap,
				topology.ResourceStorage:    1000 * (1 + 0.2*rng.Float64()),
				topology.ResourceShardCount: float64(p.Shards),
			},
			Alive: true,
		}
		cpuCap[id] = cap
	}

	// Shard base loads: 20x spread; targets ~50% mean CPU utilization so
	// the diurnal peak pushes hot servers toward the 90% threshold.
	baseCPU := make([]float64, p.Shards)
	baseStorage := make([]float64, p.Shards)
	meanCPU := float64(p.Servers) * 100 * 0.50 / float64(p.Shards)
	for i := range baseCPU {
		skew := 0.1 + 1.9*rng.Float64()
		baseCPU[i] = meanCPU * skew
		baseStorage[i] = 8 * skew
	}

	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceStorage, topology.ResourceShardCount)
	pol.SpreadWeight = 0
	pol.UtilCap = 0.9
	pol.MaxDiff = 0.1
	pol.PerShardMoveCap = 1
	pol.MaxTotalMoves = 400
	alloc := allocator.New(pol, p.Seed)

	// Current placement starts from a quick initial solve.
	current := map[shard.ID][]shard.ServerID{}
	shardIDs := make([]shard.ID, p.Shards)
	specs := make([]allocator.ShardSpec, p.Shards)
	for i := range specs {
		shardIDs[i] = shard.ID(fmt.Sprintf("s%05d", i))
		specs[i] = allocator.ShardSpec{ID: shardIDs[i], Replicas: 1}
	}

	utilOf := func(placement map[shard.ID][]shard.ServerID, loads []float64) []float64 {
		perServer := make(map[shard.ServerID]float64)
		for i, id := range shardIDs {
			for _, srv := range placement[id] {
				if srv != "" {
					perServer[srv] += loads[i]
				}
			}
		}
		out := make([]float64, 0, len(servers))
		for _, s := range servers {
			out = append(out, perServer[s.ID]/cpuCap[s.ID])
		}
		return out
	}

	avgCurve := Curve{Name: "avg CPU", Unit: "utilization"}
	p99Curve := Curve{Name: "p99 CPU", Unit: "utilization"}
	violCurve := Curve{Name: "violations", Unit: "count"}
	movesCurve := Curve{Name: "shard moves", Unit: "moves/round"}

	horizon := time.Duration(p.Days) * 24 * time.Hour
	loads := make([]float64, p.Shards)
	for t := time.Duration(0); t <= horizon; t += p.RoundEvery {
		// Measured load: diurnal swing plus per-shard noise driven by
		// real-time user activity.
		diurnal := workload.Diurnal(t, 0.35)
		for i := range loads {
			noise := 1 + 0.15*rng.NormFloat64()
			if noise < 0.1 {
				noise = 0.1
			}
			loads[i] = baseCPU[i] * diurnal * noise
			specs[i].Load = topology.Capacity{
				topology.ResourceCPU:        loads[i],
				topology.ResourceStorage:    baseStorage[i],
				topology.ResourceShardCount: 1,
			}
		}
		res := alloc.Run(allocator.Input{Servers: servers, Shards: specs, Current: current}, allocator.Periodic)
		current = res.Assignment

		utils := utilOf(current, loads)
		avgCurve.Points = append(avgCurve.Points, point(t, mean(utils)))
		p99Curve.Points = append(p99Curve.Points, point(t, metrics.Quantile(utils, 0.99)))
		violCurve.Points = append(violCurve.Points, point(t, float64(res.Initial.Total())))
		movesCurve.Points = append(movesCurve.Points, point(t, float64(len(res.Moves))))
	}
	r.Curves = append(r.Curves, avgCurve, p99Curve, violCurve, movesCurve)

	// Skip the first round (initial placement) in the headline stats.
	var p99Max float64
	for _, pt := range p99Curve.Points[1:] {
		if pt.V > p99Max {
			p99Max = pt.V
		}
	}
	r.AddNote("max p99 CPU utilization after initial placement: %.0f%% (paper: LB keeps p99 under 80%%)", p99Max*100)
	r.AddNote("violations and shard moves follow the diurnal load (paper: all three curves are diurnal)")
	return r
}

func mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}
