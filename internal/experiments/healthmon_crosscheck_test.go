package experiments

import (
	"bytes"
	"math"
	"testing"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/healthmon"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// captureMonitors installs a default health factory that hands every Build a
// fresh monitor and records it, so figure harnesses need no health plumbing.
func captureMonitors(t *testing.T) *[]*healthmon.Monitor {
	t.Helper()
	var mons []*healthmon.Monitor
	SetDefaultHealthFactory(func() *healthmon.Monitor {
		m := healthmon.New(healthmon.Options{})
		mons = append(mons, m)
		return m
	})
	t.Cleanup(func() { SetDefaultHealthFactory(nil) })
	return &mons
}

// TestHealthMonitorMatchesFig17 recomputes each Fig 17 variant's success
// rate from the health monitor's independent observation stream and demands
// agreement with the figure's own bookkeeping to 1e-9.
func TestHealthMonitorMatchesFig17(t *testing.T) {
	mons := captureMonitors(t)
	p := DefaultAvailabilityParams()
	p.Servers, p.Shards, p.RequestRate = 12, 400, 20
	r := Fig17(p)

	names := []string{"SM", "no graceful migration", "no graceful migration & no TaskController"}
	if len(*mons) != len(names) {
		t.Fatalf("captured %d monitors, want %d (one per variant Build)", len(*mons), len(names))
	}
	for i, name := range names {
		want, ok := r.Values[name+"/success_rate"]
		if !ok {
			t.Fatalf("report has no %q success rate value", name)
		}
		from := time.Duration(r.Values[name+"/window_from_ns"])
		to := time.Duration(r.Values[name+"/window_to_ns"])
		got := (*mons)[i].RateBetween("queueapp", from, to)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s: healthmon rate %v, figure rate %v (window %v-%v)", name, got, want, from, to)
		}
	}
}

// TestHealthMonitorMatchesFig18 checks the overall Fig 18 success rate
// against the monitor's availability for the same app.
func TestHealthMonitorMatchesFig18(t *testing.T) {
	mons := captureMonitors(t)
	p := DefaultProductionTraceParams()
	p.Servers, p.Shards, p.Days, p.BaseRate = 20, 600, 1, 5
	r := Fig18(p)

	if len(*mons) != 1 {
		t.Fatalf("captured %d monitors, want 1", len(*mons))
	}
	want, ok := r.Values["overall_success_rate"]
	if !ok {
		t.Fatal("report has no overall_success_rate value")
	}
	got := (*mons)[0].Rate("msgqueue")
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("healthmon rate %v, figure rate %v", got, want)
	}
}

// runMonitoredFailover mirrors runTracedFailover but with a health monitor
// and background client traffic: a small primary/secondary deployment, a
// drain (graceful migration), then a machine kill (failover promotion).
func runMonitoredFailover(t *testing.T, seed uint64) *healthmon.Monitor {
	t.Helper()
	mon := healthmon.New(healthmon.Options{})
	cfg := orchestrator.Config{
		App:      "monkv",
		Strategy: shard.PrimarySecondary,
		Shards: UniformShardConfigs(20, 2, topology.Capacity{
			topology.ResourceCPU:        1,
			topology.ResourceShardCount: 1,
		}),
		Policy: allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount),
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: 40,
		},
		GracefulMigration: true,
		FailoverGrace:     10 * time.Second,
		AllocInterval:     15 * time.Second,
	}
	backing := apps.NewKVBacking()
	d := Build(DeploymentSpec{
		Regions:          []topology.RegionID{"west", "east"},
		ServersPerRegion: 4,
		Orch:             cfg,
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Health: mon,
		Seed:   seed,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		t.Fatal(err)
	}

	ks := KeyspaceFor(20)
	client := d.NewClient("west", ks, routing.DefaultOptions())
	rng := d.Loop.RNG().Fork()
	d.Loop.Every(500*time.Millisecond, func() {
		client.Do(KeyForShard(rng.Intn(20)), false, apps.KVOpGet, "k", func(routing.Result) {})
	})

	victim, ok := d.Orch.AssignmentSnapshot().Primary(shard.ID("s00000"))
	if !ok {
		t.Fatal("s00000 has no primary after settle")
	}
	drained := false
	d.Orch.Drain(victim, func() { drained = true })
	for i := 0; i < 20 && !drained; i++ {
		d.Loop.RunFor(30 * time.Second)
	}
	if !drained {
		t.Fatalf("drain of %s did not complete", victim)
	}

	m := d.Orch.AssignmentSnapshot()
	var killed shard.ServerID
	for _, sid := range d.Orch.ShardIDs() {
		if p, ok := m.Primary(sid); ok && p != victim {
			killed = p
			break
		}
	}
	if killed == "" {
		t.Fatal("no primary left to kill")
	}
	for _, mgr := range d.Managers {
		if c, ok := mgr.Container(cluster.ContainerID(killed)); ok {
			mgr.KillMachine(c.Machine)
		}
	}
	d.Loop.RunFor(2 * time.Minute)
	return mon
}

// TestHealthExportsAreDeterministic runs the same seeded failover scenario
// twice and demands byte-identical metric exports and dashboards — the
// property smbench's -metrics-out flag documents.
func TestHealthExportsAreDeterministic(t *testing.T) {
	a := runMonitoredFailover(t, 7)
	b := runMonitoredFailover(t, 7)

	var ap, bp, aj, bj, ac, bc bytes.Buffer
	for _, w := range []struct {
		mon      *healthmon.Monitor
		pr, j, c *bytes.Buffer
	}{{a, &ap, &aj, &ac}, {b, &bp, &bj, &bc}} {
		reg := w.mon.Registry()
		if err := reg.WritePrometheus(w.pr); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteJSON(w.j); err != nil {
			t.Fatal(err)
		}
		if err := reg.WriteCSV(w.c); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(ap.Bytes(), bp.Bytes()) {
		t.Fatal("same seed produced different Prometheus exports")
	}
	if !bytes.Equal(aj.Bytes(), bj.Bytes()) {
		t.Fatal("same seed produced different JSON exports")
	}
	if !bytes.Equal(ac.Bytes(), bc.Bytes()) {
		t.Fatal("same seed produced different CSV exports")
	}
	if ap.Len() == 0 {
		t.Fatal("empty Prometheus export from a monitored run")
	}
	if a.Snapshot().Render() != b.Snapshot().Render() {
		t.Fatal("same seed produced different dashboards")
	}

	// The run must actually have produced control-plane metrics, not just
	// routing counters.
	for _, want := range []string{
		"routing_requests_total", "orchestrator_migrations_total",
		"cluster_container_stops_total", "discovery_deliveries_total",
		"health_availability",
	} {
		if !bytes.Contains(ap.Bytes(), []byte(want)) {
			t.Fatalf("Prometheus export missing %q:\n%.2000s", want, ap.String())
		}
	}
}
