package experiments

import (
	"time"

	"shardmanager/internal/metrics"
	"shardmanager/internal/sim"
)

// point builds a metrics.Point.
func point(t time.Duration, v float64) metrics.Point { return metrics.Point{T: t, V: v} }

// weekDur encodes a week index as a duration (for Curve X axes).
func weekDur(w int) time.Duration { return time.Duration(w) * 7 * 24 * time.Hour }

// yearDur encodes a calendar year as a duration offset from 2012.
func yearDur(year float64) time.Duration {
	return time.Duration((year - 2012) * 365 * 24 * float64(time.Hour))
}

// metricsQuantile is a thin alias so experiment files read naturally.
func metricsQuantile(vals []float64, q float64) float64 { return metrics.Quantile(vals, q) }

// metricsQuantiles is the batched form: one sort for all requested quantiles.
func metricsQuantiles(vals []float64, qs ...float64) []float64 {
	return metrics.Quantiles(vals, qs...)
}

// newSeededRNG builds a deterministic random source for harness-local
// decisions that must not perturb the simulation's own streams.
func newSeededRNG(seed uint64) *sim.RNG { return sim.NewRNG(seed ^ 0xabcdef) }
