package experiments

import "shardmanager/internal/sim"

// Shared scheduling labels for experiment drivers, so simprof attributes
// every driver timer to a cost center (keeping the unlabeled share at ~0):
// client traffic tickers, curve/metric samplers, and scripted administrative
// actions (upgrades, region failures, batch moves).
var (
	lbExpClient = sim.LabelFor("experiment", "client")
	lbExpSample = sim.LabelFor("experiment", "sample")
	lbExpAdmin  = sim.LabelFor("experiment", "admin")
)
