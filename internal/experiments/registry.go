package experiments

import (
	"fmt"
	"sort"
	"time"
)

// Scale selects experiment sizing: Full mirrors the paper's parameters;
// Quick shrinks each scenario so the whole suite finishes in seconds
// (benchmarks and CI use Quick); Stress grows the solver experiments to
// ~100k entities / 5k buckets to exercise the fast path at scale.
type Scale int

// Experiment scales.
const (
	ScaleQuick Scale = iota
	ScaleFull
	ScaleStress
)

// String returns the scale name.
func (s Scale) String() string {
	switch s {
	case ScaleFull:
		return "full"
	case ScaleStress:
		return "stress"
	}
	return "quick"
}

// faultSpec, when non-empty, overrides the "faults" experiment's timeline.
// smbench sets it from the -faults flag.
var faultSpec string

// SetFaultSpec installs the scenario DSL text the "faults" experiment runs
// (empty restores the built-in compound timeline).
func SetFaultSpec(spec string) { faultSpec = spec }

// tortureOverride, when non-nil, reshapes the "torture" experiment's sweep.
// smbench sets it from the -torture-* flags.
var tortureOverride func(*TortureParams)

// SetTortureOverride installs a mutator applied to the torture params after
// scale selection (nil to clear).
func SetTortureOverride(fn func(*TortureParams)) { tortureOverride = fn }

// simScaleOverride, when non-nil, reshapes the "simscale" experiment's point
// sweep. smbench sets it from the -sim-smoke flag.
var simScaleOverride func(*SimScaleParams)

// SetSimScaleOverride installs a mutator applied to the simscale params after
// scale selection (nil to clear).
func SetSimScaleOverride(fn func(*SimScaleParams)) { simScaleOverride = fn }

// runner builds one experiment report.
type runner struct {
	id    string
	title string
	run   func(Scale) *Report
}

var registry = []runner{
	{"fig1", "planned vs unplanned container stops", func(Scale) *Report {
		return Fig01(DefaultDemographicsParams())
	}},
	{"fig2", "SM adoption growth", func(Scale) *Report { return Fig02() }},
	{"fig4", "sharding-scheme breakdown", func(Scale) *Report { return Fig04(DefaultDemographicsParams()) }},
	{"fig5", "regional vs geo-distributed", func(Scale) *Report { return Fig05(DefaultDemographicsParams()) }},
	{"fig6", "replication strategies", func(Scale) *Report { return Fig06(DefaultDemographicsParams()) }},
	{"fig7", "load-balancing policies", func(Scale) *Report { return Fig07(DefaultDemographicsParams()) }},
	{"fig8", "drain policies", func(Scale) *Report { return Fig08(DefaultDemographicsParams()) }},
	{"fig9", "storage machines", func(Scale) *Report { return Fig09(DefaultDemographicsParams()) }},
	{"fig15", "scale of SM applications", func(Scale) *Report { return Fig15(DefaultDemographicsParams()) }},
	{"fig16", "scale of mini-SMs", func(Scale) *Report { return Fig16(DefaultDemographicsParams()) }},
	{"fig17", "availability during upgrades", func(s Scale) *Report {
		p := DefaultAvailabilityParams()
		if s == ScaleQuick {
			p.Servers, p.Shards, p.RequestRate = 20, 1000, 30
		}
		return Fig17(p)
	}},
	{"fig18", "production availability trace", func(s Scale) *Report {
		p := DefaultProductionTraceParams()
		if s == ScaleQuick {
			p.Servers, p.Shards, p.Days, p.BaseRate = 20, 600, 1, 5
		}
		return Fig18(p)
	}},
	{"fig19", "geo-distributed failover", func(s Scale) *Report {
		p := DefaultGeoFailoverParams()
		if s == ScaleQuick {
			p.Shards, p.ECShards, p.ServersPerRegion, p.RequestRate = 300, 120, 10, 30
		}
		return Fig19(p)
	}},
	{"fig20", "AppShards follow DBShards", func(s Scale) *Report {
		p := DefaultDBShardParams()
		if s == ScaleQuick {
			p.Shards, p.BatchSize, p.ServersPerRegion = 200, 50, 6
		}
		return Fig20(p)
	}},
	{"fig21", "allocator scalability", func(s Scale) *Report {
		p := DefaultSolverScaleParams()
		switch s {
		case ScaleQuick:
			p.Scales = [][2]int{{200, 15000}, {600, 45000}, {1000, 75000}}
		case ScaleStress:
			p.Scales = [][2]int{{1000, 20000}, {2500, 50000}, {5000, 100000}}
		}
		return Fig21(p)
	}},
	{"fig22", "solver optimization ablation", func(s Scale) *Report {
		p := DefaultSolverAblationParams()
		switch s {
		case ScaleQuick:
			p.Servers, p.Shards, p.TimeLimit = 400, 30000, 10*time.Second
		case ScaleStress:
			p.Servers, p.Shards = 5000, 100000
		}
		return Fig22(p)
	}},
	{"fig23", "continuous load balancing", func(s Scale) *Report {
		p := DefaultContinuousLBParams()
		if s == ScaleQuick {
			p.Servers, p.Shards, p.Days = 40, 1200, 1
		}
		return Fig23(p)
	}},
	{"faults", "compound fault injection and recovery", func(s Scale) *Report {
		p := DefaultCompoundFaultParams()
		if s == ScaleQuick {
			p.Shards, p.ServersPerRegion, p.RequestRate = 150, 6, 15
		}
		if faultSpec != "" {
			p.Spec = faultSpec
		}
		return CompoundFaults(p)
	}},
	{"torture", "randomized migration torture under runtime audit", func(s Scale) *Report {
		p := DefaultTortureParams()
		if s == ScaleQuick {
			p.Seeds = 40
		}
		if tortureOverride != nil {
			tortureOverride(&p)
		}
		return Torture(p)
	}},
	{"simscale", "sim-kernel throughput benchmark -> BENCH_sim.json", func(s Scale) *Report {
		p := DefaultSimScaleParams()
		if s == ScaleQuick {
			p.Points = []SimScalePoint{
				{Shards: 2000, Clients: 200, Servers: 50},
				{Shards: 5000, Clients: 500, Servers: 100},
				{Shards: 10000, Clients: 1000, Servers: 200},
			}
			p.SimTime = 2 * time.Minute
		}
		if simScaleOverride != nil {
			simScaleOverride(&p)
		}
		return SimScale(p)
	}},
	{"controlscale", "partitioned control plane: full vs delta publish -> BENCH_controlplane.json", func(s Scale) *Report {
		p := DefaultControlScaleParams()
		if s == ScaleQuick {
			p.Points = []ControlScalePoint{
				{Shards: 20000, PartitionMaxShards: 2000, MiniSMMaxShards: 2000, ChurnPerPartition: 50, Rounds: 3},
			}
		}
		if controlScaleOverride != nil {
			controlScaleOverride(&p)
		}
		return ControlScale(p)
	}},
	{"solverscale", "solver fast-path scale benchmark (serial vs parallel)", func(s Scale) *Report {
		p := DefaultSolverBenchParams()
		if s == ScaleQuick {
			p.Servers, p.Shards = 1000, 20000
		}
		return SolverScale(p)
	}},
	{"ablations", "extra §5.3 design-choice ablations", func(s Scale) *Report {
		p := DefaultSolverAblationParams()
		if s == ScaleQuick {
			p.Servers, p.Shards, p.TimeLimit = 400, 30000, 10*time.Second
		}
		return Ablations(p)
	}},
}

// IDs returns the registered experiment ids in display order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.id
	}
	return out
}

// Title returns an experiment's short description.
func Title(id string) string {
	for _, r := range registry {
		if r.id == id {
			return r.title
		}
	}
	return ""
}

// Run executes one experiment by id at the given scale.
func Run(id string, scale Scale) (*Report, error) {
	for _, r := range registry {
		if r.id == id {
			return r.run(scale), nil
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
}
