// Package experiments contains one harness per table/figure of the paper's
// evaluation (§8) and survey (§2). Each harness builds its workload on the
// simulation substrate, runs the scenario, and returns a Report with the
// same rows/series the paper plots. cmd/smbench prints them; bench_test.go
// wraps them as testing.B benchmarks; EXPERIMENTS.md records
// paper-vs-measured for each.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"shardmanager/internal/metrics"
)

// Table is a printable rows-and-columns result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Curve is a printable named time series.
type Curve struct {
	Name   string
	Points []metrics.Point
	// Unit annotates the Y axis ("%", "ms", "violations", ...).
	Unit string
}

// Report is one experiment's output.
type Report struct {
	ID    string // "fig17", "fig21", ...
	Title string
	// Params records the workload parameters used.
	Params map[string]string
	Tables []Table
	Curves []Curve
	// Notes carries headline findings ("SM success rate 99.98%").
	Notes []string
	// Values exposes headline numbers machine-readably for cross-checks
	// (e.g. healthmon agreement tests). Not rendered.
	Values map[string]float64
	// Extra carries an experiment-specific structured record for
	// machine-readable export (simscale's BENCH_sim.json payload). Not
	// rendered.
	Extra any
}

// AddNote appends a formatted finding.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// AddValue records a machine-readable headline number.
func (r *Report) AddValue(name string, v float64) {
	if r.Values == nil {
		r.Values = make(map[string]float64)
	}
	r.Values[name] = v
}

// Render produces the harness's text output.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	if len(r.Params) > 0 {
		keys := make([]string, 0, len(r.Params))
		for k := range r.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("params:")
		for _, k := range keys {
			fmt.Fprintf(&b, " %s=%s", k, r.Params[k])
		}
		b.WriteString("\n")
	}
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "\n%s\n", t.Title)
		widths := make([]int, len(t.Columns))
		for i, c := range t.Columns {
			widths[i] = len(c)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		writeRow := func(cells []string) {
			for i, cell := range cells {
				if i > 0 {
					b.WriteString("  ")
				}
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			}
			b.WriteString("\n")
		}
		writeRow(t.Columns)
		for _, row := range t.Rows {
			writeRow(row)
		}
	}
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "\nseries %q (%s): %d points\n", c.Name, c.Unit, len(c.Points))
		for _, p := range downsample(c.Points, 24) {
			fmt.Fprintf(&b, "  t=%-10s %v\n", fmtDur(p.T), fmtVal(p.V))
		}
	}
	if len(r.Notes) > 0 {
		b.WriteString("\nfindings:\n")
		for _, n := range r.Notes {
			fmt.Fprintf(&b, "  - %s\n", n)
		}
	}
	return b.String()
}

// downsample keeps at most n roughly evenly spaced points (always the first
// and last).
func downsample(pts []metrics.Point, n int) []metrics.Point {
	if len(pts) <= n {
		return pts
	}
	out := make([]metrics.Point, 0, n)
	step := float64(len(pts)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, pts[int(float64(i)*step)])
	}
	return out
}

func fmtDur(d time.Duration) string {
	return d.Truncate(time.Second).String()
}

func fmtVal(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// pct renders a fraction as a percentage string.
func pct(f float64) string { return fmt.Sprintf("%.0f%%", f*100) }
