package experiments

import (
	"bytes"
	"testing"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/simprof"
	"shardmanager/internal/topology"
)

// profileDemoDeployment runs a small demo-shaped deployment (failover +
// client traffic) with the kernel profiler attached and returns its
// deterministic text and JSON reports.
func profileDemoDeployment(t *testing.T, seed uint64) (string, string) {
	t.Helper()
	prof := simprof.New(simprof.Options{})
	backing := apps.NewKVBacking()
	d := Build(DeploymentSpec{
		Regions:          []topology.RegionID{"west", "east"},
		ServersPerRegion: 4,
		Orch: orchestrator.Config{
			App:      "profdemo",
			Strategy: shard.PrimarySecondary,
			Shards: UniformShardConfigs(30, 2, topology.Capacity{
				topology.ResourceCPU:        1,
				topology.ResourceShardCount: 1,
			}),
			Policy: allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount),
			ServerCapacity: topology.Capacity{
				topology.ResourceCPU:        100,
				topology.ResourceShardCount: 60,
			},
			GracefulMigration: true,
			FailoverGrace:     10 * time.Second,
		},
		ClusterOpts: cluster.DefaultOptions(),
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Profiler: prof,
		Seed:     seed,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	mgr := d.Managers["west"]
	victims := mgr.RunningContainers(d.Jobs["west"])
	if len(victims) == 0 {
		t.Fatal("no running containers to kill")
	}
	c, _ := mgr.Container(victims[0])
	mgr.KillMachine(c.Machine)
	d.Loop.RunFor(3 * time.Minute)

	var txt, js bytes.Buffer
	if err := prof.WriteText(&txt, simprof.ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := prof.WriteJSON(&js, simprof.ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	return txt.String(), js.String()
}

// TestProfilerReportByteIdenticalAcrossRuns is the tentpole determinism bar
// on a full deployment: two independent runs of the same seeded world render
// byte-identical deterministic profiler reports.
func TestProfilerReportByteIdenticalAcrossRuns(t *testing.T) {
	t1, j1 := profileDemoDeployment(t, 7)
	t2, j2 := profileDemoDeployment(t, 7)
	if t1 != t2 {
		t.Errorf("text reports differ across runs:\n--- first:\n%s\n--- second:\n%s", t1, t2)
	}
	if j1 != j2 {
		t.Errorf("JSON reports differ across runs:\n--- first:\n%s\n--- second:\n%s", j1, j2)
	}
	if t1 == "" || j1 == "" {
		t.Fatal("profiler produced empty reports")
	}
}

// TestProfilerDeterministicOnFaultsExperiment repeats the determinism check
// on the fault-injection experiment via the package-default profiler hook —
// the path smbench's -prof-out flag uses.
func TestProfilerDeterministicOnFaultsExperiment(t *testing.T) {
	run := func() string {
		prof := simprof.New(simprof.Options{})
		SetDefaultProfiler(func() sim.Profiler { return prof })
		defer SetDefaultProfiler(nil)
		if _, err := Run("faults", ScaleQuick); err != nil {
			t.Fatal(err)
		}
		var txt bytes.Buffer
		if err := prof.WriteText(&txt, simprof.ReportOptions{}); err != nil {
			t.Fatal(err)
		}
		return txt.String()
	}
	r1 := run()
	r2 := run()
	if r1 != r2 {
		t.Errorf("faults-experiment profiler reports differ:\n--- first:\n%s\n--- second:\n%s", r1, r2)
	}
	if r1 == "" {
		t.Fatal("empty profiler report")
	}
}
