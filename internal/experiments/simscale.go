package experiments

import (
	"fmt"
	"runtime"
	"time"

	"shardmanager/internal/discovery"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/simprof"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
	"shardmanager/internal/workload"
)

// Attribution labels for the simscale workload's own timers; everything else
// (fabric delivery, map propagation) is attributed by the component packages.
var (
	lbSimRequest  = sim.LabelFor("simscale", "client_request")
	lbSimLiveness = sim.LabelFor("simscale", "liveness")
	lbSimShard    = sim.LabelFor("simscale", "shard_load")
	lbSimPublish  = sim.LabelFor("simscale", "publish")
)

// SimScalePoint is one kernel-benchmark configuration. The interval fields
// override the suite-wide SimScaleParams when non-zero, so a sweep can mix
// minute-scale stress points with a multi-day, million-entity point whose
// pacing mirrors production cadence rather than benchmark cadence.
type SimScalePoint struct {
	Shards  int
	Clients int
	Servers int

	// Per-point overrides; zero values inherit SimScaleParams.
	SimTime          time.Duration
	ClientInterval   time.Duration
	LivenessInterval time.Duration
	PublishInterval  time.Duration

	// FanoutBatch is the discovery fan-out batch size for this point
	// (subscribers per delivery event). 0 or 1 keeps the legacy
	// per-subscriber fan-out.
	FanoutBatch int

	// DeltaPublish switches the republication timer to incremental
	// publishes: each tick stages ChurnPerPublish random single-replica
	// reassignments and publishes them as a delta — O(changed) instead of
	// the O(shards) full-map copy — and clients apply deltas in place.
	DeltaPublish    bool
	ChurnPerPublish int
}

// SimScaleParams configure the simscale kernel benchmark.
type SimScaleParams struct {
	// Points are run in order; BENCH_sim.json records one entry each.
	Points []SimScalePoint
	// SimTime is the simulated horizon per point.
	SimTime time.Duration
	// ClientInterval is the mean gap between one client's requests
	// (diurnally modulated, exponentially jittered).
	ClientInterval time.Duration
	// LivenessInterval paces per-server heartbeat ticks.
	LivenessInterval time.Duration
	// PublishInterval paces shard-map republication (version bump + fan-out
	// to every subscribed client).
	PublishInterval time.Duration
	// MeasureTracerOverhead reruns the first point with a live tracer
	// attached and records the throughput delta in BENCH_sim.json.
	MeasureTracerOverhead bool
	// Tracer, when non-nil, is attached to every point's loop, exercising
	// the traced kernel dispatch path (span per event plus queue-depth and
	// lag counters) instead of the nil-tracer fast path.
	Tracer *trace.Tracer
	Seed   uint64
}

// DefaultSimScaleParams mirror the fig18-style production trace shape at
// kernel-stress scale. The first three points keep the historical
// minute-cadence configuration (so events/sec is comparable release over
// release); the final point is the ROADMAP's million-entity target — 1M
// shards, 100k clients, 10k servers over two simulated days at production
// cadence, with discovery fan-out batched so each publish schedules
// O(clients/256) events instead of O(clients).
func DefaultSimScaleParams() SimScaleParams {
	return SimScaleParams{
		Points: []SimScalePoint{
			{Shards: 10000, Clients: 1000, Servers: 200},
			{Shards: 50000, Clients: 5000, Servers: 1000},
			{Shards: 120000, Clients: 10000, Servers: 2000},
			{
				Shards: 1000000, Clients: 100000, Servers: 10000,
				SimTime:          48 * time.Hour,
				ClientInterval:   time.Hour,
				LivenessInterval: 10 * time.Minute,
				PublishInterval:  4 * time.Hour,
				FanoutBatch:      256,
				DeltaPublish:     true,
				ChurnPerPublish:  256,
			},
		},
		SimTime:               10 * time.Minute,
		ClientInterval:        10 * time.Second,
		LivenessInterval:      15 * time.Second,
		PublishInterval:       time.Minute,
		MeasureTracerOverhead: true,
		Seed:                  1,
	}
}

// SimCostCenter is one profiler row in the BENCH_sim.json record.
type SimCostCenter struct {
	Component string  `json:"component"`
	Kind      string  `json:"kind"`
	Events    uint64  `json:"events"`
	WallMS    float64 `json:"wall_ms"`
	SharePct  float64 `json:"share_pct"`
}

// SimScalePointRecord is one point's machine-readable result.
type SimScalePointRecord struct {
	Shards         int             `json:"shards"`
	Clients        int             `json:"clients"`
	Servers        int             `json:"servers"`
	SimTime        string          `json:"sim_time"`
	FanoutBatch    int             `json:"fanout_batch"`
	DeltaPublish   bool            `json:"delta_publish"`
	Events         uint64          `json:"events"`
	Requests       int             `json:"requests"`
	MapDeliveries  int             `json:"map_deliveries"`
	WallMS         float64         `json:"wall_ms"`
	EventsPerSec   float64         `json:"events_per_sec"`
	AllocsPerEvent float64         `json:"allocs_per_event"`
	MaxHeapDepth   int             `json:"max_heap_depth"`
	AvgHeapDepth   float64         `json:"avg_heap_depth"`
	Top            []SimCostCenter `json:"top_cost_centers"`
}

// SimScaleRecord is the BENCH_sim.json payload (Report.Extra).
type SimScaleRecord struct {
	SimTime string                `json:"sim_time"`
	Points  []SimScalePointRecord `json:"points"`
	// TracedEventsPerSec / TracerOverheadPct record the first point rerun
	// with a live tracer attached: the throughput of the traced kernel
	// dispatch path and its overhead relative to the untraced run.
	TracedEventsPerSec float64 `json:"traced_events_per_sec,omitempty"`
	TracerOverheadPct  float64 `json:"tracer_overhead_pct,omitempty"`
}

// SimScale benchmarks the simulation kernel itself: a fig18-style trace —
// diurnal client request load over the RPC fabric, shard-map republication
// fanning out through discovery, per-server liveness ticks, and one load
// report per shard — at increasing shard/client/server counts. It measures
// raw kernel throughput (events/sec), run-phase allocations per event, and
// event-queue depth, and attributes cost to (component, kind) with simprof.
func SimScale(p SimScaleParams) *Report {
	rep := &Report{
		ID:    "simscale",
		Title: "sim-kernel throughput and cost attribution",
		Params: map[string]string{
			"sim_time":        p.SimTime.String(),
			"client_interval": p.ClientInterval.String(),
			"points":          fmt.Sprintf("%d", len(p.Points)),
			"seed":            fmt.Sprintf("%d", p.Seed),
		},
	}
	rec := &SimScaleRecord{SimTime: p.SimTime.String()}
	table := Table{
		Title:   "kernel throughput by scale",
		Columns: []string{"shards", "clients", "servers", "sim time", "events", "wall ms", "events/sec", "allocs/ev", "queue max"},
	}
	for i, pt := range p.Points {
		r := runSimScalePoint(p, pt, p.Seed+uint64(i))
		rec.Points = append(rec.Points, r)
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Clients),
			fmt.Sprintf("%d", r.Servers),
			r.SimTime,
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%.1f", r.WallMS),
			fmt.Sprintf("%.0f", r.EventsPerSec),
			fmt.Sprintf("%.2f", r.AllocsPerEvent),
			fmt.Sprintf("%d", r.MaxHeapDepth),
		})
	}
	rep.Tables = append(rep.Tables, table)
	if p.MeasureTracerOverhead && p.Tracer == nil && len(p.Points) > 0 {
		// Rerun the first (smallest) point with a live tracer attached: every
		// dispatch opens and closes a span and samples two counters, the path
		// smbench -trace exercises. Recorded so the overhead is tracked
		// release over release alongside the untraced throughput.
		tp := p
		tp.Tracer = trace.New(trace.Options{})
		traced := runSimScalePoint(tp, p.Points[0], p.Seed)
		base := rec.Points[0]
		rec.TracedEventsPerSec = traced.EventsPerSec
		if traced.EventsPerSec > 0 && base.EventsPerSec > 0 {
			rec.TracerOverheadPct = (base.EventsPerSec/traced.EventsPerSec - 1) * 100
		}
		rep.AddValue("tracer_overhead_pct", rec.TracerOverheadPct)
		rep.AddNote("tracer-enabled rerun of the %d-shard point: %.0f events/sec, %.0f%% overhead vs %.0f untraced",
			base.Shards, traced.EventsPerSec, rec.TracerOverheadPct, base.EventsPerSec)
	}
	last := rec.Points[len(rec.Points)-1]
	rep.AddValue("events_per_sec", last.EventsPerSec)
	rep.AddValue("allocs_per_event", last.AllocsPerEvent)
	rep.AddValue("max_heap_depth", float64(last.MaxHeapDepth))
	rep.AddValue("events", float64(last.Events))
	rep.AddNote("largest point (%d shards, %s simulated): %.0f events/sec, %.2f allocs/event, queue depth peaked at %d",
		last.Shards, last.SimTime, last.EventsPerSec, last.AllocsPerEvent, last.MaxHeapDepth)
	if len(last.Top) > 0 {
		t := last.Top[0]
		rep.AddNote("top cost center at that point: %s/%s (%d events, %.1f%% of dispatches)",
			t.Component, t.Kind, t.Events, t.SharePct)
	}
	rep.Extra = rec
	return rep
}

// runSimScalePoint builds and drives one configuration, returning its record.
func runSimScalePoint(p SimScaleParams, pt SimScalePoint, seed uint64) SimScalePointRecord {
	simTime := pt.SimTime
	if simTime == 0 {
		simTime = p.SimTime
	}
	clientInterval := pt.ClientInterval
	if clientInterval == 0 {
		clientInterval = p.ClientInterval
	}
	livenessInterval := pt.LivenessInterval
	if livenessInterval == 0 {
		livenessInterval = p.LivenessInterval
	}
	publishInterval := pt.PublishInterval
	if publishInterval == 0 {
		publishInterval = p.PublishInterval
	}
	fanoutBatch := pt.FanoutBatch
	if fanoutBatch < 1 {
		fanoutBatch = 1
	}

	loop := sim.NewLoop(seed)
	prof := simprof.New(simprof.Options{})
	loop.SetProfiler(prof)
	if p.Tracer != nil {
		loop.SetTracer(p.Tracer)
	}

	regions := []topology.RegionID{"region-a", "region-b", "region-c"}
	fleet := topology.Build(topology.Spec{
		Regions:           regions,
		MachinesPerRegion: 1,
		Capacity:          topology.Capacity{topology.ResourceCPU: 100},
	})
	net := rpcnet.NewNetwork(loop, fleet)
	disc := discovery.NewService(loop, discovery.DefaultDelay())
	disc.SetFanoutBatch(fanoutBatch)

	// Servers: registered fabric endpoints with liveness heartbeats,
	// spread round-robin across regions. Heartbeat phases are staggered so
	// the queue never sees a synchronized thundering herd.
	endpoints := make([]rpcnet.Endpoint, pt.Servers)
	rng := loop.RNG().Fork()
	for i := range endpoints {
		ep := rpcnet.Endpoint(fmt.Sprintf("srv-%05d", i))
		endpoints[i] = ep
		net.Register(ep, regions[i%len(regions)])
		phase := time.Duration(rng.Int63() % int64(livenessInterval))
		loop.AfterL(phase, lbSimLiveness, func() {
			loop.EveryL(livenessInterval, lbSimLiveness, func() {})
		})
	}

	// Shard map: every shard assigned to one server; republished with a
	// version bump on a timer so discovery fans the map out to all
	// subscribed clients. Republishes recycle map storage through a
	// scratch-buffer ping-pong: PublishScratch clones into the caller's
	// scratch and hands back the previous current map as the next scratch,
	// so steady-state publishes allocate nothing. (They still *copy*
	// O(shards) entries per publish — that residual cost is the baseline
	// the ROADMAP's delta shard-map format is measured against.)
	const app = shard.AppID("simscale")
	m := shard.NewMap(app)
	m.Version = 1
	ids := make([]shard.ID, pt.Shards)
	for i := 0; i < pt.Shards; i++ {
		ids[i] = shard.ID(fmt.Sprintf("s%07d", i))
		m.Entries[ids[i]] = []shard.Assignment{{
			Server: shard.ServerID(endpoints[i%len(endpoints)]),
			Role:   shard.RolePrimary,
		}}
	}
	disc.Publish(m)
	if pt.DeltaPublish {
		// Delta republication: each tick stages ChurnPerPublish random
		// single-replica reassignments (mirrored into the authoritative map)
		// and publishes only those — O(changed) instead of the O(shards)
		// copy above, which dominated this point's profile before deltas.
		churn := pt.ChurnPerPublish
		if churn < 1 {
			churn = 1
		}
		dlt := shard.NewDelta(app)
		prng := loop.RNG().Fork()
		loop.EveryL(publishInterval, lbSimPublish, func() {
			dlt.Reset(app, m.Version, m.Version+1, 0)
			for j := 0; j < churn; j++ {
				id := ids[prng.Intn(pt.Shards)]
				srv := shard.ServerID(endpoints[prng.Intn(len(endpoints))])
				dlt.SetOne(id, srv, shard.RolePrimary)
				m.Entries[id][0] = shard.Assignment{Server: srv, Role: shard.RolePrimary}
			}
			m.Version++
			if next := disc.PublishDelta(dlt); next != nil {
				dlt = next
			}
		})
	} else {
		// Full republication recycles map storage through a scratch-buffer
		// ping-pong: PublishScratch clones into the caller's scratch and
		// hands back the previous current map as the next scratch, so
		// steady-state publishes allocate nothing — but still copy
		// O(shards) entries each, the baseline the delta path replaces.
		scratch := m.Clone() // seeds the ping-pong; first republish reuses it
		loop.EveryL(publishInterval, lbSimPublish, func() {
			m.Version++
			scratch = disc.PublishScratch(m, scratch)
		})
	}

	// One load report per shard, uniformly spread over the horizon. These
	// are all scheduled up front, so the event queue starts at a depth
	// proportional to the shard count — the regime the ROADMAP's
	// million-entity goal targets. A single shared callback taking the
	// counter cell as its argument avoids one closure per shard.
	serverLoad := make([]int, pt.Servers)
	loadReport := func(a any) { *(a.(*int))++ }
	for i := 0; i < pt.Shards; i++ {
		at := time.Duration(rng.Int63() % int64(simTime))
		loop.PostArgL(at, lbSimShard, loadReport, &serverLoad[i%len(endpoints)])
	}

	// Clients: each runs a self-rescheduling request loop over the fabric
	// with diurnal rate modulation, and subscribes to the shard map. The
	// request completion callbacks are hoisted out of the per-request path
	// so a request allocates nothing beyond its pooled kernel events.
	var served, failed, mapsApplied int
	onDone := func(time.Duration) { served++ }
	onFail := func() { failed++ }
	onMap := func(*shard.Map) { mapsApplied++ }
	onDelta := func(*shard.Delta) { mapsApplied++ }
	for c := 0; c < pt.Clients; c++ {
		region := regions[c%len(regions)]
		crng := loop.RNG().Fork()
		if pt.DeltaPublish {
			disc.SubscribeDelta(app, onMap, onDelta)
		} else {
			disc.Subscribe(app, onMap)
		}
		var step func()
		step = func() {
			target := endpoints[crng.Intn(len(endpoints))]
			net.Call(region, target, nil, onDone, onFail)
			rate := workload.Diurnal(loop.Now(), 0.5)
			gap := time.Duration(crng.ExpFloat64() * float64(clientInterval) / rate)
			if gap < time.Millisecond {
				gap = time.Millisecond
			}
			loop.AfterL(gap, lbSimRequest, step)
		}
		loop.AfterL(time.Duration(crng.Int63()%int64(clientInterval)), lbSimRequest, step)
	}

	// Measure the run phase only: setup allocations (map build, up-front
	// shard timers) are excluded so allocs/event reflects steady-state
	// kernel + callback cost.
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	loop.RunUntil(simTime)
	wall := time.Since(t0)
	runtime.ReadMemStats(&ms1)

	events := loop.Dispatched()
	r := SimScalePointRecord{
		Shards:        pt.Shards,
		Clients:       pt.Clients,
		Servers:       pt.Servers,
		SimTime:       simTime.String(),
		FanoutBatch:   fanoutBatch,
		DeltaPublish:  pt.DeltaPublish,
		Events:        events,
		Requests:      served + failed,
		MapDeliveries: mapsApplied,
		WallMS:        float64(wall) / 1e6,
		MaxHeapDepth:  prof.MaxHeapDepth(),
		AvgHeapDepth:  prof.AvgHeapDepth(),
	}
	if wall > 0 {
		r.EventsPerSec = float64(events) / wall.Seconds()
	}
	if events > 0 {
		r.AllocsPerEvent = float64(ms1.Mallocs-ms0.Mallocs) / float64(events)
	}
	for _, row := range prof.Top(5) {
		share := 0.0
		if events > 0 {
			share = 100 * float64(row.Fired) / float64(events)
		}
		r.Top = append(r.Top, SimCostCenter{
			Component: row.Component,
			Kind:      row.Kind,
			Events:    row.Fired,
			WallMS:    float64(row.WallNS) / 1e6,
			SharePct:  share,
		})
	}
	return r
}
