package experiments

import (
	"fmt"
	"time"

	"shardmanager/internal/sim"
	"shardmanager/internal/solver"
)

// SolverBenchParams configure the "solverscale" benchmark experiment: one
// ZippyDB-style placement problem solved twice — serially and with the
// deterministic parallel evaluator — under default solver options.
type SolverBenchParams struct {
	// Servers and Shards size the problem (buckets and entities).
	Servers, Shards int
	Seed            uint64
	// Parallel is the worker count for the parallel pass.
	Parallel int
}

// DefaultSolverBenchParams is the headline scale the tracked perf numbers
// in BENCH_solver.json refer to: ~100k entities on 5k buckets.
func DefaultSolverBenchParams() SolverBenchParams {
	return SolverBenchParams{Servers: 5000, Shards: 100000, Seed: 1, Parallel: 4}
}

// SolverScale runs the solver fast-path scale benchmark. It reports wall
// time, evaluation throughput, and move counts for the serial solve, then
// re-solves the identical problem with parallel candidate evaluation and
// verifies the Result is byte-identical (same moves, same assignment, same
// evaluation count). The machine-readable Values become BENCH_solver.json
// via `smbench -fig solverscale`.
func SolverScale(params SolverBenchParams) *Report {
	r := &Report{
		ID:    "solverscale",
		Title: "Solver fast-path scale benchmark (serial vs deterministic parallel)",
		Params: map[string]string{
			"servers":  fmt.Sprint(params.Servers),
			"shards":   fmt.Sprint(params.Shards),
			"seed":     fmt.Sprint(params.Seed),
			"parallel": fmt.Sprint(params.Parallel),
		},
	}
	build := func() *solver.Problem {
		return zippyProblem(sim.NewRNG(params.Seed), params.Servers, params.Shards, false)
	}

	opt := solver.DefaultOptions()
	opt.Seed = params.Seed

	p := build()
	opt.Sampler = solver.GroupedSampler(p, 1)
	start := time.Now()
	serial := solver.Solve(p, opt)
	serialWall := time.Since(start)

	pp := build()
	popt := opt
	popt.Parallel = params.Parallel
	popt.Sampler = solver.GroupedSampler(pp, 1)
	start = time.Now()
	par := solver.Solve(pp, popt)
	parWall := time.Since(start)

	identical := len(serial.Moves) == len(par.Moves) &&
		serial.Evaluated == par.Evaluated &&
		serial.Rounds == par.Rounds &&
		serial.Final == par.Final
	if identical {
		for i := range serial.Moves {
			if serial.Moves[i] != par.Moves[i] {
				identical = false
				break
			}
		}
	}
	if identical {
		for i := range p.Entities {
			if p.Entities[i].Bucket != pp.Entities[i].Bucket {
				identical = false
				break
			}
		}
	}

	t := Table{
		Title:   "scale solve",
		Columns: []string{"mode", "initial violations", "final violations", "moves", "evaluations", "evals/sec", "wall time"},
	}
	row := func(mode string, res *solver.Result, wall time.Duration) {
		t.Rows = append(t.Rows, []string{
			mode, fmt.Sprint(res.Initial.Total()), fmt.Sprint(res.Final.Total()),
			fmt.Sprint(len(res.Moves)), fmt.Sprint(res.Evaluated),
			fmt.Sprintf("%.0f", float64(res.Evaluated)/wall.Seconds()),
			wall.Truncate(time.Millisecond).String(),
		})
	}
	row("serial", serial, serialWall)
	row(fmt.Sprintf("parallel(%d)", params.Parallel), par, parWall)
	r.Tables = append(r.Tables, t)

	r.AddValue("entities", float64(params.Shards))
	r.AddValue("buckets", float64(params.Servers))
	r.AddValue("seed", float64(params.Seed))
	r.AddValue("initial_violations", float64(serial.Initial.Total()))
	r.AddValue("final_violations", float64(serial.Final.Total()))
	r.AddValue("moves", float64(len(serial.Moves)))
	r.AddValue("rounds", float64(serial.Rounds))
	r.AddValue("evaluations", float64(serial.Evaluated))
	r.AddValue("evals_per_sec", float64(serial.Evaluated)/serialWall.Seconds())
	r.AddValue("wall_ms", float64(serialWall.Milliseconds()))
	r.AddValue("parallel_wall_ms", float64(parWall.Milliseconds()))
	if identical {
		r.AddValue("parallel_identical", 1)
	} else {
		r.AddValue("parallel_identical", 0)
	}

	if identical {
		r.AddNote("parallel(%d) Result is byte-identical to serial (moves, assignment, evaluations, rounds)", params.Parallel)
	} else {
		r.AddNote("WARNING: parallel Result DIVERGED from serial — determinism bug")
	}
	r.AddNote("serial solve: %d evaluations in %v (%.1fM evals/sec)",
		serial.Evaluated, serialWall.Truncate(time.Millisecond),
		float64(serial.Evaluated)/serialWall.Seconds()/1e6)
	return r
}
