package experiments

import (
	"bytes"
	"fmt"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/audit"
	"shardmanager/internal/faults"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

// AuditArtifacts is the machine-readable audit payload an audit-enabled
// experiment carries in Report.Extra: the deterministic text report plus
// the structured form. Two runs of the same seed produce byte-identical
// Text — the determinism tests compare exactly this.
type AuditArtifacts struct {
	Text   string       `json:"text"`
	Report audit.Report `json:"report"`
}

// NewAuditArtifacts renders the auditor's current state into artifacts.
func NewAuditArtifacts(a *audit.Auditor) *AuditArtifacts {
	var buf bytes.Buffer
	a.WriteText(&buf)
	return &AuditArtifacts{Text: buf.String(), Report: a.Report()}
}

// Kernel-profiler labels for the torture drivers, so the sweep itself shows
// up attributed in simprof output instead of as unlabeled events.
var (
	lbTortureClient = sim.LabelFor("torture", "client")
	lbTortureChurn  = sim.LabelFor("torture", "churn")
	lbTortureDrain  = sim.LabelFor("torture", "drain")
)

// TortureParams configure the randomized migration-torture sweep: many
// small seeded worlds, each running concurrent graceful migrations under a
// random fault timeline while the runtime auditor checks the §4.3
// invariants on every ownership event.
type TortureParams struct {
	// Seeds is how many seeds to sweep, starting at StartSeed.
	Seeds     int
	StartSeed uint64

	Shards           int
	Replicas         int
	ServersPerRegion int
	// RequestRate is requests/second of mixed read/write traffic.
	RequestRate int
	// Horizon is the per-seed run length after settling.
	Horizon time.Duration
	// Events is how many random fault events each seed's timeline gets.
	Events int
	// MaxBugNotes caps per-bug note lines in the rendered report.
	MaxBugNotes int
}

// DefaultTortureParams return the standard sweep sizing (the full sweep;
// `make audit-torture` and check.sh scale Seeds down for smokes).
func DefaultTortureParams() TortureParams {
	return TortureParams{
		Seeds:            500,
		StartSeed:        1,
		Shards:           48,
		Replicas:         2,
		ServersPerRegion: 3,
		RequestRate:      20,
		Horizon:          3 * time.Minute,
		Events:           10,
		MaxBugNotes:      40,
	}
}

// InvPanic is the pseudo-invariant recorded when a torture world panics
// outright (for example when the orchestrator's own map sanity checks fire).
// The crash is itself a finding: the sweep survives it, pins the seed, and
// keeps whatever the auditor observed up to the crash.
const InvPanic = "panic"

// FoundBug is one torture finding: the first violation of an invariant on
// one seed. Re-running RunTortureSeed with the same params and Seed
// reproduces it exactly.
type FoundBug struct {
	Seed      uint64        `json:"seed"`
	Invariant string        `json:"invariant"`
	Shard     shard.ID      `json:"shard"`
	At        time.Duration `json:"at_ns"`
	Detail    string        `json:"detail"`
}

// TortureArtifacts is the sweep's machine-readable record (Report.Extra);
// smbench writes it to the found-bug log.
type TortureArtifacts struct {
	Seeds      int        `json:"seeds"`
	StartSeed  uint64     `json:"start_seed"`
	Checks     int64      `json:"checks"`
	Violations int64      `json:"violations"`
	SeedsHit   int        `json:"seeds_with_violations"`
	Panics     int        `json:"panics"`
	Bugs       []FoundBug `json:"bugs"`
}

// TortureRun is one completed torture seed, kept whole so callers (smctl
// audit) can print ownership timelines around any violation.
type TortureRun struct {
	Seed       uint64
	Deployment *Deployment
	Auditor    *audit.Auditor
	Scenario   *faults.Scenario
	// Bugs holds the first violation per invariant on this seed.
	Bugs []FoundBug
	// Panic is the recovered panic message when the world crashed outright
	// (also recorded in Bugs under InvPanic); empty on a clean run.
	Panic string
}

// tortureRegions is the fixed region set of every torture world.
var tortureRegions = []topology.RegionID{"region-a", "region-b", "region-c"}

// tortureScenario composes a random fault timeline from its own RNG stream
// (derived from the seed, independent of the loop RNG): partitions, loss,
// latency inflation, gray failures, session expiry with reconnect (the
// false-dead primary generator), machine crashes with restore, and coord
// write stalls.
func tortureScenario(rng *sim.RNG, fleet *topology.Fleet, horizon time.Duration, events int) *faults.Scenario {
	sc := faults.NewScenario()
	pickRegion := func() topology.RegionID { return tortureRegions[rng.Intn(len(tortureRegions))] }
	pickPair := func() (topology.RegionID, topology.RegionID) {
		i := rng.Intn(len(tortureRegions))
		j := rng.Intn(len(tortureRegions) - 1)
		if j >= i {
			j++
		}
		return tortureRegions[i], tortureRegions[j]
	}
	window := horizon - 70*time.Second // leave a recovery tail
	if window <= 0 {
		window = horizon / 2
	}
	for i := 0; i < events; i++ {
		at := 10*time.Second + time.Duration(rng.Int63()%int64(window))
		dur := 10*time.Second + time.Duration(rng.Int63()%int64(30*time.Second))
		var act faults.Action
		switch rng.Intn(8) {
		case 0:
			a, b := pickPair()
			act = faults.Partition(a, b)
		case 1:
			a, b := pickPair()
			act = faults.PartitionOneWay(a, b)
		case 2:
			a, b := pickPair()
			act = faults.PacketLoss(a, b, 0.2+0.3*rng.Float64())
		case 3:
			a, b := pickPair()
			act = faults.LatencyScale(a, b, 3+5*rng.Float64())
		case 4:
			act = faults.Gray(pickRegion(), 1+rng.Intn(2),
				time.Duration(100+rng.Intn(300))*time.Millisecond)
		case 5:
			// False-dead: liveness vanishes while the process keeps
			// serving, then the session reconnects mid-failover.
			reconnect := 5*time.Second + time.Duration(rng.Int63()%int64(15*time.Second))
			act = faults.ExpireSessions(pickRegion(), 1+rng.Intn(2), reconnect)
			dur = 0 // heals via the reconnect itself
		case 6:
			ms := fleet.MachinesInRegion(pickRegion())
			act = faults.CrashMachine(ms[rng.Intn(len(ms))].ID)
			dur = 20*time.Second + time.Duration(rng.Int63()%int64(40*time.Second))
		case 7:
			act = faults.CoordStall()
			dur = 10*time.Second + time.Duration(rng.Int63()%int64(10*time.Second))
		}
		sc.Add(at, dur, act)
	}
	return sc
}

// RunTortureSeed runs one torture world to completion and returns it with
// the auditor still attached. Deterministic: same params + seed, same
// violations, same timelines.
func RunTortureSeed(p TortureParams, seed uint64) *TortureRun {
	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	pol.SpreadLevel = topology.LevelRegion
	pol.SpreadWeight = 100
	cfg := orchestrator.Config{
		App:      "torture",
		Strategy: shard.PrimarySecondary,
		Shards: UniformShardConfigs(p.Shards, p.Replicas, topology.Capacity{
			topology.ResourceCPU:        0.5,
			topology.ResourceShardCount: 1,
		}),
		Policy: pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: float64(p.Shards),
		},
		HomeRegion:              "region-c",
		GracefulMigration:       true,
		FailoverGrace:           10 * time.Second,
		AllocInterval:           15 * time.Second,
		MaxConcurrentMigrations: 50,
	}
	backing := apps.NewKVBacking()
	d := Build(DeploymentSpec{
		Regions:          tortureRegions,
		ServersPerRegion: p.ServersPerRegion,
		Orch:             cfg,
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Audit: &audit.Options{},
		Seed:  seed,
	})
	run := &TortureRun{Seed: seed, Deployment: d, Auditor: d.Auditor}
	// The whole scripted run executes under a recover so a world that
	// crashes outright (an orchestrator sanity panic, say) becomes a pinned
	// finding instead of killing the sweep. The sim is single-threaded, so
	// the crash point — and everything the auditor saw before it — is as
	// deterministic as a violation.
	func() {
		defer func() {
			if r := recover(); r != nil {
				run.Panic = fmt.Sprintf("%v", r)
			}
		}()
		if err := d.Settle(10 * time.Minute); err != nil {
			panic(err)
		}
		ks := KeyspaceFor(p.Shards)
		client := d.NewClient("region-a", ks, routing.DefaultOptions())
		d.Loop.RunFor(3 * time.Second) // let the client fetch its first map
		t0 := d.Loop.Now()

		// Mixed read/write traffic; writes are what the write-owner invariant
		// bites on.
		trafficRNG := d.Loop.RNG().Fork()
		d.Loop.EveryL(time.Second/time.Duration(p.RequestRate), lbTortureClient, func() {
			i := trafficRNG.Intn(p.Shards)
			key := KeyForShard(i)
			if trafficRNG.Float64() < 0.5 {
				client.Do(key, true, apps.KVOpPut,
					apps.KVPut{Value: fmt.Sprintf("v%d", i)}, func(routing.Result) {})
			} else {
				client.Do(key, false, apps.KVOpGet, nil, func(routing.Result) {})
			}
		})

		// Migration churn concurrent with the faults: region-preference flips
		// force graceful primary migrations, and periodic drains force bulk
		// moves off one server at a time.
		churnRNG := d.Loop.RNG().Fork()
		d.Loop.EveryL(20*time.Second, lbTortureChurn, func() {
			s := shard.ID(fmt.Sprintf("s%05d", churnRNG.Intn(p.Shards)))
			d.Orch.SetRegionPreference(s, tortureRegions[churnRNG.Intn(len(tortureRegions))], 50)
		})
		d.Loop.EveryL(45*time.Second, lbTortureDrain, func() {
			m := d.Orch.AssignmentSnapshot()
			servers := m.Servers()
			if len(servers) == 0 {
				return
			}
			id := servers[churnRNG.Intn(len(servers))]
			d.Orch.Drain(id, nil)
			d.Loop.AfterL(25*time.Second, lbTortureDrain, func() { d.Orch.CancelDrain(id) })
		})

		// Random fault timeline from a stream derived only from the seed.
		scRNG := sim.NewRNG(seed ^ 0x7067656e6f747274) // "trtonegp", torture-gen tag
		run.Scenario = tortureScenario(scRNG, d.Fleet, p.Horizon, p.Events)
		shifted := faults.NewScenario()
		for _, ev := range run.Scenario.Events {
			shifted.Add(t0+ev.At, ev.For, ev.Action)
		}
		faults.NewInjector(d.FaultEnv()).Schedule(shifted)
		d.Loop.RunFor(p.Horizon)
	}()

	seen := make(map[string]bool)
	for _, v := range d.Auditor.Violations() {
		if seen[v.Invariant] {
			continue
		}
		seen[v.Invariant] = true
		run.Bugs = append(run.Bugs, FoundBug{
			Seed:      seed,
			Invariant: v.Invariant,
			Shard:     v.Shard,
			At:        v.At,
			Detail:    v.Detail,
		})
	}
	if run.Panic != "" {
		run.Bugs = append(run.Bugs, FoundBug{
			Seed:      seed,
			Invariant: InvPanic,
			At:        d.Loop.Now(),
			Detail:    run.Panic,
		})
	}
	return run
}

// Torture sweeps Seeds seeds and reports every invariant violation found,
// each pinned to the seed that reproduces it.
func Torture(p TortureParams) *Report {
	if p.Seeds <= 0 {
		p.Seeds = 1
	}
	if p.MaxBugNotes <= 0 {
		p.MaxBugNotes = 40
	}
	r := &Report{
		ID:    "torture",
		Title: "migration torture: randomized fault timelines under audit, violations pinned by seed",
		Params: map[string]string{
			"seeds":      fmt.Sprint(p.Seeds),
			"start_seed": fmt.Sprint(p.StartSeed),
			"shards":     fmt.Sprint(p.Shards),
			"replicas":   fmt.Sprint(p.Replicas),
			"servers":    fmt.Sprintf("%dx%d", p.ServersPerRegion, len(tortureRegions)),
			"horizon":    p.Horizon.String(),
			"events":     fmt.Sprint(p.Events),
		},
	}
	art := &TortureArtifacts{Seeds: p.Seeds, StartSeed: p.StartSeed}
	for i := 0; i < p.Seeds; i++ {
		seed := p.StartSeed + uint64(i)
		run := RunTortureSeed(p, seed)
		for _, n := range run.Auditor.Checks() {
			art.Checks += n
		}
		art.Violations += run.Auditor.ViolationCount()
		if run.Panic != "" {
			art.Panics++
		}
		if len(run.Bugs) > 0 {
			art.SeedsHit++
			art.Bugs = append(art.Bugs, run.Bugs...)
		}
	}
	r.Extra = art
	r.AddValue("seeds", float64(p.Seeds))
	r.AddValue("audit_checks", float64(art.Checks))
	r.AddValue("audit_violations", float64(art.Violations))
	r.AddValue("seeds_with_violations", float64(art.SeedsHit))
	r.AddValue("seeds_panicked", float64(art.Panics))
	r.AddValue("bugs_found", float64(len(art.Bugs)))
	r.AddNote("swept %d seeds (%d..%d): %d invariant checks, %d violations on %d seeds",
		p.Seeds, p.StartSeed, p.StartSeed+uint64(p.Seeds)-1, art.Checks, art.Violations, art.SeedsHit)
	for i, b := range art.Bugs {
		if i >= p.MaxBugNotes {
			r.AddNote("... %d more findings in the found-bug log", len(art.Bugs)-i)
			break
		}
		r.AddNote("seed %d: %s shard=%s at=%s — %s", b.Seed, b.Invariant, b.Shard, b.At, b.Detail)
	}
	if len(art.Bugs) == 0 {
		r.AddNote("no invariant violations found; the found-bug log is empty")
	}
	return r
}
