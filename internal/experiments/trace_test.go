package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
)

// runTracedFailover builds a small primary/secondary deployment with tracing
// enabled, drains a primary-holding server (exercising the graceful §4.3
// migration protocol), then kills the machine under another primary
// (exercising failover promotion). It returns the tracer with the full run
// recorded.
func runTracedFailover(t *testing.T, seed uint64) *trace.Tracer {
	t.Helper()
	tr := trace.New(trace.Options{})
	cfg := orchestrator.Config{
		App:      "tracedkv",
		Strategy: shard.PrimarySecondary,
		Shards: UniformShardConfigs(20, 2, topology.Capacity{
			topology.ResourceCPU:        1,
			topology.ResourceShardCount: 1,
		}),
		Policy: allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount),
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: 40,
		},
		GracefulMigration: true,
		FailoverGrace:     10 * time.Second,
		AllocInterval:     15 * time.Second,
	}
	backing := apps.NewKVBacking()
	d := Build(DeploymentSpec{
		Regions:          []topology.RegionID{"west", "east"},
		ServersPerRegion: 4,
		Orch:             cfg,
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Tracer: tr,
		Seed:   seed,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		t.Fatal(err)
	}

	// Drain the primary of shard s00000: its primary replica must move via
	// the graceful protocol (prepare_add/prepare_drop/add/drop).
	victim, ok := d.Orch.AssignmentSnapshot().Primary(shard.ID("s00000"))
	if !ok {
		t.Fatal("s00000 has no primary after settle")
	}
	drained := false
	d.Orch.Drain(victim, func() { drained = true })
	for i := 0; i < 20 && !drained; i++ {
		d.Loop.RunFor(30 * time.Second)
	}
	if !drained {
		t.Fatalf("drain of %s did not complete", victim)
	}

	// Kill the machine under another shard's primary: after FailoverGrace a
	// secondary must be promoted via change_role.
	m := d.Orch.AssignmentSnapshot()
	var killed shard.ServerID
	for _, sid := range d.Orch.ShardIDs() {
		if p, ok := m.Primary(sid); ok && p != victim {
			killed = p
			break
		}
	}
	if killed == "" {
		t.Fatal("no primary left to kill")
	}
	for _, mgr := range d.Managers {
		if c, ok := mgr.Container(cluster.ContainerID(killed)); ok {
			mgr.KillMachine(c.Machine)
		}
	}
	d.Loop.RunFor(2 * time.Minute)
	return tr
}

func TestFailoverTraceCapturesMigrationLifecycle(t *testing.T) {
	tr := runTracedFailover(t, 7)

	// At least one completed graceful migration span with all four protocol
	// steps as children.
	steps := []string{"prepare_add_shard", "prepare_drop_shard", "add_shard", "drop_shard"}
	var complete *trace.Span
	for _, sp := range tr.FindSpans("orchestrator", "migration") {
		if !sp.Ended || sp.Attr("ok") != "true" || sp.Attr("graceful") != "true" {
			continue
		}
		have := map[string]bool{}
		for _, c := range tr.Children(sp.ID) {
			have[c.Name] = true
		}
		all := true
		for _, s := range steps {
			all = all && have[s]
		}
		if all {
			complete = sp
			break
		}
	}
	if complete == nil {
		t.Fatal("no completed graceful migration span with all four protocol-step children")
	}
	if complete.Duration() <= 0 {
		t.Fatalf("migration span duration = %v", complete.Duration())
	}

	// Failover promotion shows up as change_role spans.
	if len(tr.FindSpans("orchestrator", "change_role")) == 0 {
		t.Fatal("no change_role spans after machine kill")
	}
	// The control plane's RPCs are spanned too.
	if len(tr.FindSpans("rpcnet", "rpc")) == 0 {
		t.Fatal("no rpcnet rpc spans recorded")
	}
	if len(tr.FindSpans("sim.loop", "dispatch")) == 0 {
		t.Fatal("no dispatch spans recorded")
	}
	// Map publishes and coordination watch fires are visible as events.
	var publishes, watches int
	for _, ev := range tr.Events() {
		switch {
		case ev.Component == "orchestrator" && ev.Name == "publish":
			publishes++
		case ev.Component == "coord" && ev.Name == "watch_fire":
			watches++
		}
	}
	if publishes == 0 || watches == 0 {
		t.Fatalf("publish events = %d, watch_fire events = %d; want both > 0", publishes, watches)
	}
}

// TestFailoverTraceIsDeterministic runs the identical scenario twice with the
// same seed and demands byte-identical Chrome exports — the property the
// -trace flag documents.
func TestFailoverTraceIsDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := runTracedFailover(t, 7).WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := runTracedFailover(t, 7).WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different trace bytes")
	}
	// Sanity: the export is a Perfetto-loadable Chrome trace document.
	if !strings.HasPrefix(a.String(), `{"displayTimeUnit":"ms"`) {
		t.Fatalf("unexpected export prefix: %.60s", a.String())
	}
}
