// Package faults is the deterministic fault-injection subsystem: it
// schedules composable fault scenarios on the simulation loop, in the spirit
// of Jepsen-style partition testing and Twine's maintenance-event model. A
// Scenario is a timeline of Events; each Event applies an Action at a
// simulated time and, when given a duration, reverts it afterwards. Actions
// cover the failure classes the paper's evaluation (§8) exercises and the
// ones production postmortems add on top:
//
//   - crash faults: machine, rack, datacenter, or whole region loss
//     (driven through the regional cluster managers, so container
//     restarts and failover take their normal paths);
//   - network faults: symmetric and asymmetric region partitions,
//     per-link latency inflation, and packet loss (installed in rpcnet);
//   - coordination faults: session expiry (false-dead servers) and
//     znode-write stalls (coord.SetWriteGate);
//   - gray failures: slow-but-alive servers that pass liveness checks
//     while stalling every request.
//
// Scenarios come from Go code (NewScenario + Add) or from the text DSL
// parsed by ParseSpec ("t=60s partition(region-a|region-b) for 120s"),
// which cmd/smbench and cmd/smctl expose as flags. Everything runs on the
// sim loop and draws no randomness, so a seeded run with a scenario is as
// reproducible as one without.
package faults

import (
	"fmt"
	"sort"
	"time"

	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/coord"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
)

// Kernel-profiler attribution labels for injector timers.
var (
	lbApply  = sim.LabelFor("faults", "apply")
	lbRevert = sim.LabelFor("faults", "revert")
)

// Env holds the handles an injector needs into a simulated world. Any field
// an action does not touch may be nil; applying an action against a missing
// handle panics with the action's name, which is the desired loud failure
// for a mis-wired experiment.
type Env struct {
	Loop     *sim.Loop
	Fleet    *topology.Fleet
	Net      *rpcnet.Network
	Store    *coord.Store
	Managers map[topology.RegionID]*cluster.Manager
	Hosts    map[topology.RegionID]*appserver.Host
}

// Action is one injectable fault. Apply and Revert run on the sim loop;
// Revert must undo Apply (actions whose effect heals by itself, like
// session expiry with a reconnect, make it a no-op).
type Action interface {
	// Name is a short stable kind label ("partition", "crash-rack", ...)
	// used in traces, metrics, and String().
	Name() string
	// Describe returns the human-readable parameterization for logs.
	Describe() string
	Apply(env *Env)
	Revert(env *Env)
}

// Event is one scheduled fault.
type Event struct {
	// At is the simulated time the action is applied.
	At time.Duration
	// For, when positive, reverts the action at At+For; zero means the
	// fault is permanent (or heals through its own mechanism).
	For    time.Duration
	Action Action
}

// String renders the event in the DSL's own syntax.
func (e Event) String() string {
	s := fmt.Sprintf("t=%s %s", e.At, e.Action.Describe())
	if e.For > 0 {
		s += fmt.Sprintf(" for %s", e.For)
	}
	return s
}

// Scenario is an ordered fault timeline.
type Scenario struct {
	Events []Event
}

// NewScenario returns an empty timeline.
func NewScenario() *Scenario { return &Scenario{} }

// Add appends one event: apply action at time at, and if dur > 0 revert it
// at at+dur. Returns the scenario for chaining.
func (s *Scenario) Add(at, dur time.Duration, action Action) *Scenario {
	s.Events = append(s.Events, Event{At: at, For: dur, Action: action})
	return s
}

// String renders the whole timeline, one event per line, in time order.
func (s *Scenario) String() string {
	evs := append([]Event(nil), s.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	out := ""
	for i, e := range evs {
		if i > 0 {
			out += "\n"
		}
		out += e.String()
	}
	return out
}

// Injector binds a scenario to an environment and schedules it on the loop.
type Injector struct {
	env *Env

	// Injected and Reverted count fault applications, for tests and smctl.
	Injected int
	Reverted int
}

// NewInjector returns an injector over env.
func NewInjector(env *Env) *Injector {
	if env == nil || env.Loop == nil {
		panic("faults: injector needs an Env with a Loop")
	}
	return &Injector{env: env}
}

// Schedule arms every event of the scenario on the sim loop. Call before
// (or while) running the loop; events in the past fire immediately on the
// next step.
func (in *Injector) Schedule(s *Scenario) {
	for _, ev := range s.Events {
		ev := ev
		in.env.Loop.AtL(ev.At, lbApply, func() { in.apply(ev) })
	}
}

func (in *Injector) apply(ev Event) {
	loop := in.env.Loop
	tr := loop.Tracer()
	var sp trace.SpanID
	if tr.Enabled() {
		sp = tr.StartSpan("faults", ev.Action.Name(), 0,
			trace.String("fault", ev.Action.Describe()),
			trace.Dur("for", ev.For))
	}
	loop.Metrics().Counter("faults_injected_total", "kind", ev.Action.Name()).Inc()
	ev.Action.Apply(in.env)
	in.Injected++
	if ev.For <= 0 {
		if tr.Enabled() {
			tr.EndSpan(sp, trace.String("status", "permanent"))
		}
		return
	}
	loop.AfterL(ev.For, lbRevert, func() {
		ev.Action.Revert(in.env)
		in.Reverted++
		loop.Metrics().Counter("faults_reverted_total", "kind", ev.Action.Name()).Inc()
		if tr.Enabled() {
			tr.EndSpan(sp, trace.String("status", "reverted"))
		}
	})
}

// manager returns the cluster manager owning region r.
func (e *Env) manager(r topology.RegionID) *cluster.Manager {
	m := e.Managers[r]
	if m == nil {
		panic(fmt.Sprintf("faults: no cluster manager for region %q", r))
	}
	return m
}

// host returns the appserver host for region r.
func (e *Env) host(r topology.RegionID) *appserver.Host {
	h := e.Hosts[r]
	if h == nil {
		panic(fmt.Sprintf("faults: no appserver host for region %q", r))
	}
	return h
}

// --- network faults ---

// linkAction installs the same LinkFault on a set of directed links.
type linkAction struct {
	name  string
	pairs [][2]topology.RegionID
	fault rpcnet.LinkFault
}

func (a *linkAction) Name() string { return a.name }

func (a *linkAction) Describe() string {
	desc := a.name + "("
	for i, p := range a.pairs {
		if i > 0 {
			desc += ","
		}
		desc += fmt.Sprintf("%s>%s", p[0], p[1])
	}
	switch {
	case a.fault.DropProb > 0 && a.fault.DropProb < 1:
		desc += fmt.Sprintf(", %.2f", a.fault.DropProb)
	case a.fault.LatencyScale > 1:
		desc += fmt.Sprintf(", x%g", a.fault.LatencyScale)
	case a.fault.LatencyAdd > 0:
		desc += fmt.Sprintf(", +%s", a.fault.LatencyAdd)
	}
	return desc + ")"
}

func (a *linkAction) Apply(env *Env) {
	for _, p := range a.pairs {
		env.Net.SetLinkFault(p[0], p[1], a.fault)
	}
}

func (a *linkAction) Revert(env *Env) {
	for _, p := range a.pairs {
		env.Net.ClearLinkFault(p[0], p[1])
	}
}

func bothWays(a, b topology.RegionID) [][2]topology.RegionID {
	return [][2]topology.RegionID{{a, b}, {b, a}}
}

// Partition drops all traffic between a and b, both directions.
func Partition(a, b topology.RegionID) Action {
	return &linkAction{name: "partition", pairs: bothWays(a, b),
		fault: rpcnet.LinkFault{DropProb: 1}}
}

// PartitionOneWay drops all traffic from a to b only — the asymmetric
// partition that breaks naive failure detectors.
func PartitionOneWay(from, to topology.RegionID) Action {
	return &linkAction{name: "partition", pairs: [][2]topology.RegionID{{from, to}},
		fault: rpcnet.LinkFault{DropProb: 1}}
}

// LatencyScale multiplies the latency between a and b (both directions) by
// factor.
func LatencyScale(a, b topology.RegionID, factor float64) Action {
	return &linkAction{name: "latency", pairs: bothWays(a, b),
		fault: rpcnet.LinkFault{LatencyScale: factor}}
}

// LatencyAdd adds extra one-way delay between a and b (both directions).
func LatencyAdd(a, b topology.RegionID, extra time.Duration) Action {
	return &linkAction{name: "latency", pairs: bothWays(a, b),
		fault: rpcnet.LinkFault{LatencyAdd: extra}}
}

// PacketLoss drops each message between a and b (both directions) with
// probability p.
func PacketLoss(a, b topology.RegionID, p float64) Action {
	return &linkAction{name: "loss", pairs: bothWays(a, b),
		fault: rpcnet.LinkFault{DropProb: p}}
}

// --- crash faults ---

// crashAction kills a deterministic set of machines and restores them on
// revert. Machines are resolved lazily at Apply time so a scenario can name
// domains before the fleet exists.
type crashAction struct {
	kind string // "machine", "rack", "dc", "region"
	arg  string
}

func (a *crashAction) Name() string { return "crash-" + a.kind }

func (a *crashAction) Describe() string {
	return fmt.Sprintf("crash(%s:%s)", a.kind, a.arg)
}

func (a *crashAction) machines(env *Env) []*topology.Machine {
	switch a.kind {
	case "machine":
		m := env.Fleet.Machine(topology.MachineID(a.arg))
		if m == nil {
			panic(fmt.Sprintf("faults: unknown machine %q", a.arg))
		}
		return []*topology.Machine{m}
	case "rack":
		return env.Fleet.MachinesInDomain(topology.LevelRack, a.arg)
	case "dc":
		return env.Fleet.MachinesInDomain(topology.LevelDatacenter, a.arg)
	case "region":
		return env.Fleet.MachinesInRegion(topology.RegionID(a.arg))
	default:
		panic(fmt.Sprintf("faults: unknown crash kind %q", a.kind))
	}
}

func (a *crashAction) Apply(env *Env) {
	ms := a.machines(env)
	if len(ms) == 0 {
		panic(fmt.Sprintf("faults: %s matches no machines", a.Describe()))
	}
	for _, m := range ms {
		env.manager(m.Region).KillMachine(m.ID)
	}
}

func (a *crashAction) Revert(env *Env) {
	for _, m := range a.machines(env) {
		env.manager(m.Region).RestoreMachine(m.ID)
	}
}

// CrashMachine kills one machine; revert restores it.
func CrashMachine(id topology.MachineID) Action {
	return &crashAction{kind: "machine", arg: string(id)}
}

// CrashRack kills every machine in a rack fault domain (the fully qualified
// name "region/dcN/rackNN" from Machine.Domain).
func CrashRack(domain string) Action { return &crashAction{kind: "rack", arg: domain} }

// CrashDatacenter kills every machine in a datacenter domain ("region/dcN").
func CrashDatacenter(domain string) Action { return &crashAction{kind: "dc", arg: domain} }

// CrashRegion kills every machine in a region.
func CrashRegion(r topology.RegionID) Action { return &crashAction{kind: "region", arg: string(r)} }

// --- coordination faults ---

// expireAction force-expires coordination sessions of live servers in one
// region: the orchestrator sees them die (ephemeral nodes vanish) while the
// processes keep serving — ZooKeeper's false-dead. The servers reconnect
// after Reconnect (0 = never).
type expireAction struct {
	region    topology.RegionID
	count     int // <= 0 means every server in the region
	reconnect time.Duration
}

func (a *expireAction) Name() string { return "expire-session" }

func (a *expireAction) Describe() string {
	n := "all"
	if a.count > 0 {
		n = fmt.Sprintf("%d", a.count)
	}
	return fmt.Sprintf("expire(%s, %s)", a.region, n)
}

func (a *expireAction) Apply(env *Env) {
	h := env.host(a.region)
	ids := h.ServerIDs()
	if a.count > 0 && a.count < len(ids) {
		ids = ids[:a.count]
	}
	for _, id := range ids {
		h.ExpireSession(id, a.reconnect)
	}
}

func (a *expireAction) Revert(*Env) {} // healing is the reconnect itself

// ExpireSessions expires the coordination sessions of the first count live
// servers (sorted by ID; count <= 0 means all) in the region. Each server
// reopens a session after reconnectAfter (0 = never).
func ExpireSessions(region topology.RegionID, count int, reconnectAfter time.Duration) Action {
	return &expireAction{region: region, count: count, reconnect: reconnectAfter}
}

// stallAction gates every mutating coordination-store operation with
// ErrUnavailable — the ensemble is up for reads but write-stalled, a classic
// ZooKeeper overload mode.
type stallAction struct{}

func (stallAction) Name() string     { return "coord-stall" }
func (stallAction) Describe() string { return "stall(coord)" }

func (stallAction) Apply(env *Env) {
	env.Store.SetWriteGate(func(op, path string) error {
		return fmt.Errorf("%w: write stall injected (%s %s)", coord.ErrUnavailable, op, path)
	})
}

func (stallAction) Revert(env *Env) { env.Store.SetWriteGate(nil) }

// CoordStall blocks all coordination-store writes until reverted.
func CoordStall() Action { return stallAction{} }

// --- gray failures ---

// grayAction makes servers slow-but-alive: liveness nodes stay up, the
// orchestrator keeps them in the map, but every request stalls by delay.
type grayAction struct {
	region topology.RegionID
	count  int // <= 0 means every server in the region
	delay  time.Duration
	// applied remembers exactly which servers were slowed, so Revert heals
	// them even if the region's server set changed in between.
	applied []*appserver.Server
}

func (a *grayAction) Name() string { return "gray" }

func (a *grayAction) Describe() string {
	n := "all"
	if a.count > 0 {
		n = fmt.Sprintf("%d", a.count)
	}
	return fmt.Sprintf("gray(%s, %s, %s)", a.region, n, a.delay)
}

func (a *grayAction) targets(env *Env) []*appserver.Server {
	h := env.host(a.region)
	ids := h.ServerIDs()
	if a.count > 0 && a.count < len(ids) {
		ids = ids[:a.count]
	}
	out := make([]*appserver.Server, 0, len(ids))
	for _, id := range ids {
		if srv := h.Server(id); srv != nil {
			out = append(out, srv)
		}
	}
	return out
}

func (a *grayAction) Apply(env *Env) {
	a.applied = a.targets(env)
	for _, srv := range a.applied {
		srv.SetServeDelay(a.delay)
	}
}

func (a *grayAction) Revert(*Env) {
	for _, srv := range a.applied {
		srv.SetServeDelay(0)
	}
	a.applied = nil
}

// Gray stalls every request on the first count live servers (sorted by ID;
// count <= 0 means all) in the region by delay, without touching liveness.
func Gray(region topology.RegionID, count int, delay time.Duration) Action {
	return &grayAction{region: region, count: count, delay: delay}
}
