package faults_test

import (
	"errors"
	"testing"
	"time"

	"shardmanager/internal/appserver"
	"shardmanager/internal/coord"
	"shardmanager/internal/discovery"
	"shardmanager/internal/faults"
	"shardmanager/internal/routing"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

type okApp struct{}

func (okApp) AddShard(shard.ID, shard.Role)               {}
func (okApp) DropShard(shard.ID)                          {}
func (okApp) ChangeRole(shard.ID, shard.Role, shard.Role) {}
func (okApp) HandleRequest(req *appserver.Request) (any, error) {
	return "v:" + req.Key, nil
}

// world is a hand-wired two-region deployment: one server in "far" holding
// shard s1, one client in "near" reading it across a 60ms link.
type world struct {
	loop   *sim.Loop
	fleet  *topology.Fleet
	net    *rpcnet.Network
	client *routing.Client
	env    *faults.Env
}

func newWorld(t testing.TB) *world {
	t.Helper()
	fleet := topology.Build(topology.Spec{
		Regions:           []topology.RegionID{"near", "far"},
		MachinesPerRegion: 2,
		Latency: map[[2]topology.RegionID]time.Duration{
			{"near", "far"}: 60 * time.Millisecond,
		},
	})
	fleet.SetLatency("near", "near", time.Millisecond)
	fleet.SetLatency("far", "far", time.Millisecond)
	loop := sim.NewLoop(7)
	net := rpcnet.NewNetwork(loop, fleet)
	net.Jitter = 0 // exact latencies, so plateau comparisons are equalities
	dir := appserver.NewDirectory()
	disc := discovery.NewService(loop, discovery.FixedDelay(100*time.Millisecond))
	srv := appserver.NewServer(loop, net, dir, okApp{}, "app", "far-srv", "far")
	dir.Register(srv)
	net.Register("far-srv", "far")
	srv.AddShard("s1", shard.RoleSecondary)
	ks, err := shard.NewKeyspace([]shard.ID{"s1"}, []string{""})
	if err != nil {
		t.Fatal(err)
	}
	m := shard.NewMap("app")
	m.Version = 1
	m.Entries = map[shard.ID][]shard.Assignment{
		"s1": {{Server: "far-srv", Role: shard.RoleSecondary}},
	}
	disc.Publish(m)
	client := routing.NewClient(loop, net, dir, disc, fleet, "app", ks, "near", routing.DefaultOptions())
	loop.RunFor(2 * time.Second) // map propagation
	return &world{
		loop:   loop,
		fleet:  fleet,
		net:    net,
		client: client,
		env:    &faults.Env{Loop: loop, Fleet: fleet, Net: net},
	}
}

func (w *world) read(t testing.TB) routing.Result {
	t.Helper()
	var res routing.Result
	got := false
	w.client.Do("k", false, "op", nil, func(r routing.Result) { res = r; got = true })
	w.loop.RunFor(time.Minute)
	if !got {
		t.Fatal("no result")
	}
	return res
}

func TestPartitionHealRestoresLatencyPlateau(t *testing.T) {
	w := newWorld(t)
	base := w.read(t)
	if !base.OK {
		t.Fatalf("pre-fault read failed: %+v", base)
	}

	part := faults.Partition("near", "far")
	part.Apply(w.env)
	during := w.read(t)
	if during.OK {
		t.Fatalf("read succeeded across a full partition: %+v", during)
	}

	part.Revert(w.env)
	healed := w.read(t)
	if !healed.OK {
		t.Fatalf("post-heal read failed: %+v", healed)
	}
	if healed.Latency != base.Latency {
		t.Fatalf("healed latency %v != pre-fault plateau %v", healed.Latency, base.Latency)
	}
}

func TestScheduledLatencyFaultInflatesAndReverts(t *testing.T) {
	w := newWorld(t)
	base := w.read(t)
	if !base.OK {
		t.Fatalf("pre-fault read failed: %+v", base)
	}

	inj := faults.NewInjector(w.env)
	start := w.loop.Now()
	inj.Schedule(faults.NewScenario().
		Add(start+10*time.Second, 20*time.Second, faults.LatencyScale("near", "far", 5)))

	var during, after routing.Result
	w.loop.At(start+15*time.Second, func() {
		w.client.Do("k", false, "op", nil, func(r routing.Result) { during = r })
	})
	w.loop.At(start+45*time.Second, func() {
		w.client.Do("k", false, "op", nil, func(r routing.Result) { after = r })
	})
	w.loop.RunFor(time.Minute)

	if !during.OK || !after.OK {
		t.Fatalf("during = %+v, after = %+v", during, after)
	}
	if during.Latency <= 4*base.Latency {
		t.Fatalf("latency under x5 inflation = %v; want > 4x the %v plateau", during.Latency, base.Latency)
	}
	if after.Latency != base.Latency {
		t.Fatalf("post-revert latency %v != pre-fault plateau %v", after.Latency, base.Latency)
	}
	if inj.Injected != 1 || inj.Reverted != 1 {
		t.Fatalf("injected/reverted = %d/%d, want 1/1", inj.Injected, inj.Reverted)
	}
}

func TestOneWayPartitionIsAsymmetric(t *testing.T) {
	w := newWorld(t)
	faults.PartitionOneWay("near", "far").Apply(w.env)
	if !w.net.Partitioned("near", "far") {
		t.Fatal("near->far should be partitioned")
	}
	if w.net.Partitioned("far", "near") {
		t.Fatal("far->near should be open under a one-way partition")
	}
}

func TestCoordStallGatesWritesUntilReverted(t *testing.T) {
	store := coord.NewStore()
	loop := sim.NewLoop(1)
	env := &faults.Env{Loop: loop, Store: store}

	stall := faults.CoordStall()
	stall.Apply(env)
	if err := store.Create("/x", nil, nil); !errors.Is(err, coord.ErrUnavailable) {
		t.Fatalf("Create under stall = %v, want ErrUnavailable", err)
	}
	if _, _, err := store.Get("/"); err != nil {
		t.Fatalf("reads must survive a write stall: %v", err)
	}
	stall.Revert(env)
	if err := store.Create("/x", nil, nil); err != nil {
		t.Fatalf("Create after revert = %v", err)
	}
}
