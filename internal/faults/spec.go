package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"shardmanager/internal/topology"
)

// ParseSpec parses the fault-scenario DSL into a Scenario. Clauses are
// separated by ';' or newlines; each clause is
//
//	t=<dur> <action> [for <dur>]
//
// with actions
//
//	partition(a|b)          symmetric region partition
//	partition(a>b)          one-way partition from a to b
//	latency(a|b, x3)        scale link latency (both directions)
//	latency(a|b, +50ms)     add link latency (both directions)
//	loss(a|b, 0.3)          per-message drop probability
//	crash(machine:<id>)     kill one machine
//	crash(rack:<domain>)    kill a rack ("region/dc0/rack01")
//	crash(dc:<domain>)      kill a datacenter ("region/dc0")
//	crash(region:<region>)  kill a whole region
//	expire(region[, n])     expire coord sessions of n servers (default all);
//	                        "for <dur>" is the reconnect delay
//	stall(coord)            reject all coordination-store writes
//	gray(region[, n], d)    slow n servers (default all) by d per request
//
// Example: "t=60s partition(region-a|region-b) for 120s; t=4m loss(region-a|region-c, 0.2) for 1m".
func ParseSpec(spec string) (*Scenario, error) {
	s := NewScenario()
	for _, raw := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == '\n' }) {
		clause := strings.TrimSpace(raw)
		if clause == "" || strings.HasPrefix(clause, "#") {
			continue
		}
		ev, err := parseClause(clause)
		if err != nil {
			return nil, fmt.Errorf("faults: clause %q: %w", clause, err)
		}
		s.Events = append(s.Events, ev)
	}
	if len(s.Events) == 0 {
		return nil, fmt.Errorf("faults: empty scenario spec")
	}
	return s, nil
}

func parseClause(clause string) (Event, error) {
	fields := strings.Fields(clause)
	if len(fields) < 2 {
		return Event{}, fmt.Errorf("want \"t=<dur> <action> [for <dur>]\"")
	}
	if !strings.HasPrefix(fields[0], "t=") {
		return Event{}, fmt.Errorf("clause must start with t=<dur>")
	}
	at, err := time.ParseDuration(strings.TrimPrefix(fields[0], "t="))
	if err != nil {
		return Event{}, fmt.Errorf("bad time: %w", err)
	}
	// The action may contain spaces ("gray(region-b, 2, 300ms)"), so take
	// everything up to an optional trailing "for <dur>" as the action text.
	rest := fields[1:]
	var dur time.Duration
	if n := len(rest); n >= 2 && rest[n-2] == "for" {
		dur, err = time.ParseDuration(rest[n-1])
		if err != nil {
			return Event{}, fmt.Errorf("bad duration: %w", err)
		}
		rest = rest[:n-2]
	}
	actionText := strings.Join(rest, " ")
	if strings.Contains(actionText, " for ") || !strings.HasSuffix(actionText, ")") {
		return Event{}, fmt.Errorf("trailing tokens; want [for <dur>]")
	}
	action, selfHealing, err := parseAction(actionText, dur)
	if err != nil {
		return Event{}, err
	}
	if selfHealing {
		// The action consumes the duration itself (e.g. session reconnect);
		// there is nothing for the injector to revert.
		dur = 0
	}
	return Event{At: at, For: dur, Action: action}, nil
}

// parseAction parses "name(args)". dur is the clause's "for" duration, which
// self-healing actions absorb (returning selfHealing=true).
func parseAction(s string, dur time.Duration) (action Action, selfHealing bool, err error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return nil, false, fmt.Errorf("action %q: want name(args)", s)
	}
	name := s[:open]
	var args []string
	if inner := strings.TrimSpace(s[open+1 : len(s)-1]); inner != "" {
		for _, a := range strings.Split(inner, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	switch name {
	case "partition":
		if len(args) != 1 {
			return nil, false, fmt.Errorf("partition wants one link argument")
		}
		from, to, oneWay, err := parseLink(args[0])
		if err != nil {
			return nil, false, err
		}
		if oneWay {
			return PartitionOneWay(from, to), false, nil
		}
		return Partition(from, to), false, nil
	case "latency":
		if len(args) != 2 {
			return nil, false, fmt.Errorf("latency wants (a|b, x<scale> or +<dur>)")
		}
		from, to, oneWay, err := parseLink(args[0])
		if err != nil {
			return nil, false, err
		}
		if oneWay {
			return nil, false, fmt.Errorf("latency faults are symmetric; use a|b")
		}
		switch {
		case strings.HasPrefix(args[1], "x"):
			f, err := strconv.ParseFloat(args[1][1:], 64)
			if err != nil || f <= 0 {
				return nil, false, fmt.Errorf("bad latency scale %q", args[1])
			}
			return LatencyScale(from, to, f), false, nil
		case strings.HasPrefix(args[1], "+"):
			d, err := time.ParseDuration(args[1][1:])
			if err != nil || d <= 0 {
				return nil, false, fmt.Errorf("bad latency delta %q", args[1])
			}
			return LatencyAdd(from, to, d), false, nil
		default:
			return nil, false, fmt.Errorf("latency amount %q: want x<scale> or +<dur>", args[1])
		}
	case "loss":
		if len(args) != 2 {
			return nil, false, fmt.Errorf("loss wants (a|b, p)")
		}
		from, to, oneWay, err := parseLink(args[0])
		if err != nil {
			return nil, false, err
		}
		if oneWay {
			return nil, false, fmt.Errorf("loss faults are symmetric; use a|b")
		}
		p, err := strconv.ParseFloat(args[1], 64)
		if err != nil || p <= 0 || p > 1 {
			return nil, false, fmt.Errorf("bad loss probability %q", args[1])
		}
		return PacketLoss(from, to, p), false, nil
	case "crash":
		if len(args) != 1 {
			return nil, false, fmt.Errorf("crash wants one kind:target argument")
		}
		kind, target, ok := strings.Cut(args[0], ":")
		if !ok {
			return nil, false, fmt.Errorf("crash target %q: want kind:name", args[0])
		}
		switch kind {
		case "machine":
			return CrashMachine(topology.MachineID(target)), false, nil
		case "rack":
			return CrashRack(target), false, nil
		case "dc":
			return CrashDatacenter(target), false, nil
		case "region":
			return CrashRegion(topology.RegionID(target)), false, nil
		default:
			return nil, false, fmt.Errorf("crash kind %q: want machine|rack|dc|region", kind)
		}
	case "expire":
		if len(args) < 1 || len(args) > 2 {
			return nil, false, fmt.Errorf("expire wants (region[, n])")
		}
		n := 0
		if len(args) == 2 {
			n, err = strconv.Atoi(args[1])
			if err != nil || n <= 0 {
				return nil, false, fmt.Errorf("bad server count %q", args[1])
			}
		}
		return ExpireSessions(topology.RegionID(args[0]), n, dur), true, nil
	case "stall":
		if len(args) != 1 || args[0] != "coord" {
			return nil, false, fmt.Errorf("stall wants (coord)")
		}
		return CoordStall(), false, nil
	case "gray":
		if len(args) < 2 || len(args) > 3 {
			return nil, false, fmt.Errorf("gray wants (region[, n], delay)")
		}
		n := 0
		delayArg := args[1]
		if len(args) == 3 {
			n, err = strconv.Atoi(args[1])
			if err != nil || n <= 0 {
				return nil, false, fmt.Errorf("bad server count %q", args[1])
			}
			delayArg = args[2]
		}
		d, err := time.ParseDuration(delayArg)
		if err != nil || d <= 0 {
			return nil, false, fmt.Errorf("bad gray delay %q", delayArg)
		}
		return Gray(topology.RegionID(args[0]), n, d), false, nil
	default:
		return nil, false, fmt.Errorf("unknown action %q", name)
	}
}

// parseLink parses "a|b" (symmetric) or "a>b" (one-way).
func parseLink(s string) (from, to topology.RegionID, oneWay bool, err error) {
	if a, b, ok := strings.Cut(s, "|"); ok {
		return topology.RegionID(strings.TrimSpace(a)), topology.RegionID(strings.TrimSpace(b)), false, nil
	}
	if a, b, ok := strings.Cut(s, ">"); ok {
		return topology.RegionID(strings.TrimSpace(a)), topology.RegionID(strings.TrimSpace(b)), true, nil
	}
	return "", "", false, fmt.Errorf("link %q: want a|b or a>b", s)
}
