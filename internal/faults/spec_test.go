package faults_test

import (
	"strings"
	"testing"
	"time"

	"shardmanager/internal/faults"
)

func TestParseSpecFullGrammar(t *testing.T) {
	spec := `
		t=60s partition(region-a|region-b) for 120s
		t=75s partition(region-a>region-c) for 60s
		t=3m latency(region-a|region-c, x5) for 1m
		t=3m30s latency(region-a|region-b, +50ms) for 30s
		t=4m loss(region-a|region-b, 0.3) for 45s
		t=5m crash(rack:region-b/dc0/rack00) for 1m
		t=6m crash(machine:region-a-m0001) for 30s
		t=7m expire(region-c, 2) for 30s
		t=8m stall(coord) for 30s
		t=9m gray(region-b, 2, 300ms) for 1m
		t=10m crash(region:region-b)
	`
	s, err := faults.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 11 {
		t.Fatalf("parsed %d events, want 11", len(s.Events))
	}
	first := s.Events[0]
	if first.At != 60*time.Second || first.For != 120*time.Second {
		t.Fatalf("first event timing = %+v", first)
	}
	if first.Action.Name() != "partition" {
		t.Fatalf("first action = %s", first.Action.Name())
	}
	// expire consumes its "for" duration as the reconnect delay; the
	// injector has nothing to revert.
	expire := s.Events[7]
	if expire.Action.Name() != "expire-session" {
		t.Fatalf("event 7 = %s", expire.Action.Name())
	}
	if expire.For != 0 {
		t.Fatalf("expire event kept For=%v; reconnect should absorb it", expire.For)
	}
	// the last event is permanent
	if last := s.Events[10]; last.For != 0 || last.Action.Name() != "crash-region" {
		t.Fatalf("last event = %+v (%s)", last, last.Action.Name())
	}
	// String renders every event in DSL-like syntax, in time order.
	out := s.String()
	if !strings.Contains(out, "t=1m0s partition(region-a>region-b,region-b>region-a) for 2m0s") {
		t.Fatalf("String() missing partition line:\n%s", out)
	}
	if strings.Count(out, "\n") != 10 {
		t.Fatalf("String() = %d lines, want 11:\n%s", strings.Count(out, "\n")+1, out)
	}
}

func TestParseSpecSemicolonSeparatedAndComments(t *testing.T) {
	s, err := faults.ParseSpec("# a comment\nt=1s stall(coord) for 5s; t=10s partition(a|b) for 1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 2 {
		t.Fatalf("parsed %d events, want 2", len(s.Events))
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"partition(a|b)",                 // missing t=
		"t=5s",                           // missing action
		"t=5s explode(a)",                // unknown action
		"t=5s partition(a|b) until 10s",  // bad trailing tokens
		"t=5s partition(a)",              // bad link
		"t=5s latency(a|b, 3)",           // bad amount
		"t=5s latency(a>b, x3)",          // one-way latency unsupported
		"t=5s loss(a|b, 1.5)",            // probability out of range
		"t=5s crash(planet:earth)",       // bad crash kind
		"t=5s crash(region-b)",           // missing kind:
		"t=5s gray(region-b)",            // missing delay
		"t=5s expire(region-c, zero)",    // bad count
		"t=5s stall(zookeeper)",          // unknown stall target
		"t=banana partition(a|b) for 1s", // bad time
	}
	for _, spec := range bad {
		if _, err := faults.ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) succeeded, want error", spec)
		}
	}
}
