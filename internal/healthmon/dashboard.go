// Text dashboard rendering for Status — the `smctl status` view. Output is
// deterministic for a given snapshot: everything is pre-sorted by Snapshot
// and numbers render with fixed precision.
package healthmon

import (
	"fmt"
	"strings"
	"time"
)

// pct renders an availability fraction as a percentage with enough digits
// to distinguish SLO-relevant differences (99.99% vs 99.999%).
func pct(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.4f", v*100), "0"), ".") + "%"
}

// Render returns the operator dashboard as text.
func (st *Status) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "health @ %s  (SLO target %s)\n", st.At, pct(st.SLOTarget))
	if len(st.Apps) == 0 {
		b.WriteString("  no applications observed\n")
	}
	for _, app := range st.Apps {
		fmt.Fprintf(&b, "\napp %s\n", app.App)
		fmt.Fprintf(&b, "  availability  %s (%d/%d ok)   5m %s burn %.2f   1h %s burn %.2f\n",
			pct(app.Availability), app.OK, app.Total,
			pct(app.Window5m), app.Burn5m, pct(app.Window1h), app.Burn1h)
		fmt.Fprintf(&b, "  error budget  %.1f%% remaining\n", app.BudgetRemaining*100)
		fmt.Fprintf(&b, "  shard map     v%d (%d publishes)   propagation max %s, %d deliveries (%d stale)\n",
			app.MapVersion, app.MapPublishes, app.MaxPropagation, app.Deliveries, app.StaleDeliveries)
		fmt.Fprintf(&b, "  migrations    %d ok / %d failed / %d active   role changes %d\n",
			app.MigrationsOK, app.MigrationsFailed, len(app.ActiveMigrations), app.RoleChanges)
		for _, mi := range app.ActiveMigrations {
			kind := "move"
			if mi.Graceful {
				kind = "graceful"
			}
			fmt.Fprintf(&b, "    active: %s  %s -> %s (%s, since %s)\n",
				mi.Shard, mi.From, mi.To, kind, mi.Since)
		}
		if len(app.WorstShards) > 0 {
			b.WriteString("  worst shards\n")
			for _, s := range app.WorstShards {
				fmt.Fprintf(&b, "    %-12s %s (%d/%d ok)\n", s.Shard, pct(s.Rate), s.OK, s.Total)
			}
		}
		if len(app.Violations) > 0 {
			b.WriteString("  slo violations\n")
			for _, iv := range app.Violations {
				fmt.Fprintf(&b, "    %s - %s\n", iv.From, iv.To)
			}
		} else {
			b.WriteString("  slo violations  none\n")
		}
		if regions := app.DomainsAt("region"); len(regions) > 0 {
			b.WriteString("  by region     ")
			for i, d := range regions {
				if i > 0 {
					b.WriteString("   ")
				}
				fmt.Fprintf(&b, "%s %s (%d/%d)", d.Domain, pct(d.Rate), d.OK, d.Total)
			}
			b.WriteByte('\n')
		}
	}
	if len(st.Regions) > 0 {
		b.WriteString("\ncluster\n")
		for _, r := range st.Regions {
			fmt.Fprintf(&b, "  region %-8s containers %d running, %d starts, %d stops (%d unplanned), %d maintenance\n",
				r.Region, r.Running, r.Starts, r.Stops, r.Unplanned, r.Maintenance)
		}
	}
	return b.String()
}

// DomainsAt returns the app's domain breakdown rows for one level.
func (a *AppStatus) DomainsAt(level string) []DomainAvail {
	var out []DomainAvail
	for _, d := range a.Domains {
		if d.Level == level {
			out = append(out, d)
		}
	}
	return out
}

// RenderCompact returns a one-line-per-app summary (for periodic printing
// during a run).
func (st *Status) RenderCompact() string {
	var b strings.Builder
	for i, app := range st.Apps {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s %s (%d/%d, %d migs active, map v%d)",
			app.App, pct(app.Availability), app.OK, app.Total,
			len(app.ActiveMigrations), app.MapVersion)
	}
	if b.Len() == 0 {
		return fmt.Sprintf("health @ %s: no data", st.At)
	}
	return fmt.Sprintf("health @ %s: %s", time.Duration(st.At), b.String())
}
