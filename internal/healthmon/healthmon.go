// Package healthmon is the always-on health/SLO monitoring plane. It
// aggregates signals from the orchestrator (migrations, role changes, map
// publications), application servers and routing clients (per-request
// outcomes), service discovery (map propagation staleness), and the cluster
// manager (container churn, maintenance) into live per-app shard
// availability, SLO burn-rate windows, violation intervals, and
// per-failure-domain breakdowns — the §8.1 evaluation numbers, computed
// continuously on the simulated clock instead of ad hoc per experiment.
//
// Every attachment point is deliberately RNG-free: hooks and observers fire
// synchronously inside existing events, so attaching a Monitor never
// perturbs a seeded run. In particular the Monitor must NOT subscribe to
// discovery (each subscriber draws propagation delays from the shared RNG);
// it uses discovery.SetObserver instead.
package healthmon

import (
	"sort"
	"time"

	"shardmanager/internal/cluster"
	"shardmanager/internal/discovery"
	"shardmanager/internal/metrics"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

// Options configure a Monitor.
type Options struct {
	// SLOTarget is the availability objective (default 0.9999 — the
	// paper's 99.99% shard availability SLO, §8.1).
	SLOTarget float64
	// Bucket is the success-ratio bucket width (default 30s, matching the
	// experiment trackers so cross-checks are bit-identical).
	Bucket time.Duration
	// Registry receives the monitor's live gauges and is returned by
	// Registry() for exposition. nil creates a private registry.
	Registry *metrics.Registry
	// WorstShards bounds the per-app worst-shard list in snapshots
	// (default 5).
	WorstShards int
}

// counts is an ok/total pair.
type counts struct {
	ok, total int64
}

func (c *counts) rate() float64 {
	if c.total == 0 {
		return 1
	}
	return float64(c.ok) / float64(c.total)
}

// migrationInfo describes one in-flight migration.
type migrationInfo struct {
	Shard    shard.ID
	From, To shard.ServerID
	Graceful bool
	Since    time.Duration
}

// appHealth is the monitor's state for one application.
type appHealth struct {
	ratio     *metrics.SuccessRatio
	totals    counts
	perShard  map[shard.ID]*counts
	perDomain map[string]map[string]*counts // level -> domain -> counts

	active           map[shard.ID]migrationInfo
	migOK, migFail   int64
	roleChanges      int64
	mapVersion       int64
	publishes        int64
	deliveries, lost int64 // discovery deliveries; lost = stale or cancelled
	maxLag           time.Duration
}

// regionHealth is the monitor's state for one cluster-manager region.
type regionHealth struct {
	running     int64
	starts      int64
	stops       int64
	unplanned   int64
	maintenance int64
}

// Monitor aggregates health signals. Create with New, attach with the
// Watch* methods, then Snapshot at any simulated time.
type Monitor struct {
	opts  Options
	clk   sim.Clock
	reg   *metrics.Registry
	start time.Duration

	apps        map[shard.AppID]*appHealth
	regions     map[topology.RegionID]*regionHealth
	regionOrder []topology.RegionID
	resolvers   []func(shard.ServerID) map[string]string
}

// New returns a Monitor. Call Bind before the simulation starts so
// observations are timestamped on the right clock.
func New(opts Options) *Monitor {
	if opts.SLOTarget <= 0 || opts.SLOTarget >= 1 {
		opts.SLOTarget = 0.9999
	}
	if opts.Bucket <= 0 {
		opts.Bucket = 30 * time.Second
	}
	if opts.WorstShards <= 0 {
		opts.WorstShards = 5
	}
	reg := opts.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	return &Monitor{
		opts:    opts,
		reg:     reg,
		apps:    make(map[shard.AppID]*appHealth),
		regions: make(map[topology.RegionID]*regionHealth),
	}
}

// Bind attaches the simulated clock; the monitoring window starts now.
func (m *Monitor) Bind(clk sim.Clock) {
	m.clk = clk
	if clk != nil {
		m.start = clk.Now()
	}
}

// Registry returns the monitor's labeled-metrics registry (never nil).
func (m *Monitor) Registry() *metrics.Registry { return m.reg }

// SLOTarget returns the configured availability objective.
func (m *Monitor) SLOTarget() float64 { return m.opts.SLOTarget }

func (m *Monitor) now() time.Duration {
	if m.clk == nil {
		return 0
	}
	return m.clk.Now()
}

func (m *Monitor) app(id shard.AppID) *appHealth {
	a, ok := m.apps[id]
	if !ok {
		a = &appHealth{
			ratio:     metrics.NewSuccessRatio(m.opts.Bucket),
			perShard:  make(map[shard.ID]*counts),
			perDomain: make(map[string]map[string]*counts),
			active:    make(map[shard.ID]migrationInfo),
		}
		m.apps[id] = a
	}
	return a
}

func (m *Monitor) region(id topology.RegionID) *regionHealth {
	r, ok := m.regions[id]
	if !ok {
		r = &regionHealth{}
		m.regions[id] = r
		m.regionOrder = append(m.regionOrder, id)
	}
	return r
}

// domains resolves a server's failure-domain labels through the watched
// orchestrators, or nil.
func (m *Monitor) domains(id shard.ServerID) map[string]string {
	for _, resolve := range m.resolvers {
		if d := resolve(id); d != nil {
			return d
		}
	}
	return nil
}

// --- attachment points ---

// WatchClient subscribes to a routing client's final request outcomes —
// the ground truth for shard availability, observed exactly as the client
// experiences it (after all retries and forwards).
func (m *Monitor) WatchClient(c *routing.Client) {
	app := c.App
	c.OnResult(func(res routing.Result) { m.observe(app, res) })
}

// Observe records one request outcome directly (exported for tests and
// hand-wired setups; WatchClient is the normal path).
func (m *Monitor) Observe(app shard.AppID, res routing.Result) { m.observe(app, res) }

func (m *Monitor) observe(app shard.AppID, res routing.Result) {
	a := m.app(app)
	a.ratio.Observe(m.now(), res.OK)
	a.totals.total++
	if res.OK {
		a.totals.ok++
	}
	sc := a.perShard[res.Shard]
	if sc == nil {
		sc = &counts{}
		a.perShard[res.Shard] = sc
	}
	sc.total++
	if res.OK {
		sc.ok++
	}
	// Attribute to the failure domains of the server that handled the
	// final attempt; unroutable requests (no server) stay unattributed.
	if res.Server != "" {
		if doms := m.domains(res.Server); doms != nil {
			for level, domain := range doms {
				byDomain := a.perDomain[level]
				if byDomain == nil {
					byDomain = make(map[string]*counts)
					a.perDomain[level] = byDomain
				}
				dc := byDomain[domain]
				if dc == nil {
					dc = &counts{}
					byDomain[domain] = dc
				}
				dc.total++
				if res.OK {
					dc.ok++
				}
			}
		}
	}
	m.reg.Gauge("health_availability", "app", string(app)).Set(a.totals.rate())
}

// WatchOrchestrator attaches to the control plane's transition hooks and
// registers it as a failure-domain resolver.
func (m *Monitor) WatchOrchestrator(o *orchestrator.Orchestrator) {
	a := m.app(o.App())
	app := string(o.App())
	m.resolvers = append(m.resolvers, o.ServerDomains)
	o.AddHooks(orchestrator.Hooks{
		MigrationStarted: func(s shard.ID, from, to shard.ServerID, graceful bool) {
			a.active[s] = migrationInfo{Shard: s, From: from, To: to, Graceful: graceful, Since: m.now()}
			m.reg.Gauge("health_migrations_active", "app", app).Set(float64(len(a.active)))
		},
		MigrationFinished: func(s shard.ID, ok bool) {
			delete(a.active, s)
			if ok {
				a.migOK++
			} else {
				a.migFail++
			}
			m.reg.Gauge("health_migrations_active", "app", app).Set(float64(len(a.active)))
		},
		RoleChanged: func(s shard.ID, server shard.ServerID, from, to shard.Role) {
			a.roleChanges++
		},
		MapPublished: func(version int64, entries int) {
			a.mapVersion = version
			a.publishes++
		},
	})
}

// WatchDiscovery observes map-delivery outcomes for propagation staleness.
// It uses the RNG-free observer hook, never Subscribe.
func (m *Monitor) WatchDiscovery(s *discovery.Service) {
	s.AddObserver(func(app shard.AppID, version int64, lag time.Duration, status string) {
		a := m.app(app)
		a.deliveries++
		if status == "delivered" {
			if lag > a.maxLag {
				a.maxLag = lag
			}
		} else {
			a.lost++
		}
	})
}

// WatchManager observes one region's container lifecycle and maintenance
// notices. Listeners are append-only and RNG-free, so this is safe on a
// seeded run.
func (m *Monitor) WatchManager(mgr *cluster.Manager) {
	w := &clusterWatch{m: m, region: mgr.Region}
	mgr.AddListener(w)
	mgr.AddMaintenanceListener(w)
}

type clusterWatch struct {
	m      *Monitor
	region topology.RegionID
}

func (w *clusterWatch) ContainerStarted(cluster.Container) {
	r := w.m.region(w.region)
	r.running++
	r.starts++
}

func (w *clusterWatch) ContainerStopping(c cluster.Container, reason string) {
	r := w.m.region(w.region)
	r.running--
	r.stops++
	if reason == "machine-failure" {
		r.unplanned++
	}
}

func (w *clusterWatch) ContainerStopped(cluster.Container) {}

func (w *clusterWatch) MaintenanceScheduled(region topology.RegionID, ev cluster.MaintenanceEvent) {
	w.m.region(region).maintenance++
}

// --- cross-check accessors ---

// Rate returns the app's overall success fraction (1 if nothing observed).
func (m *Monitor) Rate(app shard.AppID) float64 { return m.app(app).ratio.Rate() }

// RateBetween returns the app's success fraction over ratio buckets
// starting in [from, to]. This delegates to the same metrics.SuccessRatio
// computation the figure runners use on their own trackers, so cross-check
// tests can demand bit-identical agreement.
func (m *Monitor) RateBetween(app shard.AppID, from, to time.Duration) float64 {
	return m.app(app).ratio.RateBetween(from, to)
}

// MinBucketBetween returns the app's worst per-bucket success fraction in
// [from, to].
func (m *Monitor) MinBucketBetween(app shard.AppID, from, to time.Duration) float64 {
	return m.app(app).ratio.MinBucketBetween(from, to)
}

// --- snapshots ---

// Interval is a half-open span of simulated time [From, To).
type Interval struct {
	From, To time.Duration
}

// ShardAvail is one shard's observed availability.
type ShardAvail struct {
	Shard     shard.ID
	OK, Total int64
	Rate      float64
}

// DomainAvail is one failure domain's observed availability.
type DomainAvail struct {
	Level     string
	Domain    string
	OK, Total int64
	Rate      float64
}

// AppStatus is the health snapshot of one application.
type AppStatus struct {
	App          shard.AppID
	OK, Total    int64
	Availability float64
	// Window5m/Window1h are trailing-window success rates; Burn5m/Burn1h
	// are the corresponding SLO burn rates ((1-rate)/(1-SLO): 1.0 burns
	// the error budget exactly at the sustainable pace).
	Window5m, Window1h float64
	Burn5m, Burn1h     float64
	// BudgetRemaining is the fraction of the total error budget still
	// unspent over the whole window (negative = overdrawn).
	BudgetRemaining float64
	WorstShards     []ShardAvail
	Domains         []DomainAvail
	Violations      []Interval

	ActiveMigrations []migrationInfo
	MigrationsOK     int64
	MigrationsFailed int64
	RoleChanges      int64
	MapVersion       int64
	MapPublishes     int64
	Deliveries       int64
	StaleDeliveries  int64
	MaxPropagation   time.Duration
}

// RegionStatus is the health snapshot of one cluster region.
type RegionStatus struct {
	Region      topology.RegionID
	Running     int64
	Starts      int64
	Stops       int64
	Unplanned   int64
	Maintenance int64
}

// Status is a point-in-time health snapshot.
type Status struct {
	At        time.Duration
	SLOTarget float64
	Apps      []AppStatus
	Regions   []RegionStatus
}

// Snapshot computes the current health picture. All slices are sorted so a
// snapshot of the same state always renders identically.
func (m *Monitor) Snapshot() *Status {
	now := m.now()
	st := &Status{At: now, SLOTarget: m.opts.SLOTarget}

	appIDs := make([]string, 0, len(m.apps))
	for id := range m.apps {
		appIDs = append(appIDs, string(id))
	}
	sort.Strings(appIDs)
	for _, id := range appIDs {
		st.Apps = append(st.Apps, m.appStatus(shard.AppID(id), now))
	}

	regions := append([]topology.RegionID(nil), m.regionOrder...)
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	for _, id := range regions {
		r := m.regions[id]
		st.Regions = append(st.Regions, RegionStatus{
			Region:      id,
			Running:     r.running,
			Starts:      r.starts,
			Stops:       r.stops,
			Unplanned:   r.unplanned,
			Maintenance: r.maintenance,
		})
	}
	return st
}

func (m *Monitor) appStatus(id shard.AppID, now time.Duration) AppStatus {
	a := m.apps[id]
	slo := m.opts.SLOTarget
	out := AppStatus{
		App:              id,
		OK:               a.totals.ok,
		Total:            a.totals.total,
		Availability:     a.totals.rate(),
		Window5m:         a.ratio.RateBetween(now-5*time.Minute, now),
		Window1h:         a.ratio.RateBetween(now-time.Hour, now),
		MigrationsOK:     a.migOK,
		MigrationsFailed: a.migFail,
		RoleChanges:      a.roleChanges,
		MapVersion:       a.mapVersion,
		MapPublishes:     a.publishes,
		Deliveries:       a.deliveries,
		StaleDeliveries:  a.lost,
		MaxPropagation:   a.maxLag,
	}
	out.Burn5m = (1 - out.Window5m) / (1 - slo)
	out.Burn1h = (1 - out.Window1h) / (1 - slo)
	out.BudgetRemaining = 1.0
	if allowed := (1 - slo) * float64(a.totals.total); allowed > 0 {
		out.BudgetRemaining = 1 - float64(a.totals.total-a.totals.ok)/allowed
	}

	// Worst shards: lowest success rate first, ties by most failures then
	// by ID for determinism.
	shards := make([]ShardAvail, 0, len(a.perShard))
	for sid, c := range a.perShard {
		shards = append(shards, ShardAvail{Shard: sid, OK: c.ok, Total: c.total, Rate: c.rate()})
	}
	sort.Slice(shards, func(i, j int) bool {
		if shards[i].Rate != shards[j].Rate {
			return shards[i].Rate < shards[j].Rate
		}
		fi, fj := shards[i].Total-shards[i].OK, shards[j].Total-shards[j].OK
		if fi != fj {
			return fi > fj
		}
		return shards[i].Shard < shards[j].Shard
	})
	if len(shards) > m.opts.WorstShards {
		shards = shards[:m.opts.WorstShards]
	}
	out.WorstShards = shards

	// Domain breakdown in level order region > datacenter > rack, domains
	// sorted within each level.
	for _, level := range []string{
		topology.LevelRegion.String(),
		topology.LevelDatacenter.String(),
		topology.LevelRack.String(),
	} {
		byDomain := a.perDomain[level]
		names := make([]string, 0, len(byDomain))
		for d := range byDomain {
			names = append(names, d)
		}
		sort.Strings(names)
		for _, d := range names {
			c := byDomain[d]
			out.Domains = append(out.Domains, DomainAvail{
				Level: level, Domain: d, OK: c.ok, Total: c.total, Rate: c.rate(),
			})
		}
	}

	// Violation intervals: ratio buckets below the SLO target, adjacent
	// buckets merged.
	curve := a.ratio.Curve()
	for _, p := range curve {
		if p.V >= slo {
			continue
		}
		from, to := p.T, p.T+m.opts.Bucket
		if n := len(out.Violations); n > 0 && out.Violations[n-1].To == from {
			out.Violations[n-1].To = to
		} else {
			out.Violations = append(out.Violations, Interval{From: from, To: to})
		}
	}

	// Active migrations sorted by shard ID.
	if len(a.active) > 0 {
		migs := make([]migrationInfo, 0, len(a.active))
		for _, mi := range a.active {
			migs = append(migs, mi)
		}
		sort.Slice(migs, func(i, j int) bool { return migs[i].Shard < migs[j].Shard })
		out.ActiveMigrations = migs
	}
	return out
}
