package healthmon

import (
	"strings"
	"testing"
	"time"

	"shardmanager/internal/metrics"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
)

// fakeClock drives observation timestamps directly.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) Now() time.Duration { return c.t }

func TestMonitorAvailabilityAndWindows(t *testing.T) {
	clk := &fakeClock{}
	m := New(Options{})
	m.Bind(clk)

	app := shard.AppID("kv")
	// Minute 0-9: all ok. Minute 10: a burst of failures.
	for i := 0; i < 100; i++ {
		clk.t = time.Duration(i) * 6 * time.Second
		m.Observe(app, routing.Result{OK: true, Shard: "s0", Server: "srv/0"})
	}
	clk.t = 10 * time.Minute
	for i := 0; i < 10; i++ {
		m.Observe(app, routing.Result{OK: false, Err: "no-replica", Shard: "s1"})
	}

	st := m.Snapshot()
	if len(st.Apps) != 1 {
		t.Fatalf("apps = %d", len(st.Apps))
	}
	a := st.Apps[0]
	if a.Total != 110 || a.OK != 100 {
		t.Fatalf("totals = %d/%d", a.OK, a.Total)
	}
	if want := 100.0 / 110.0; a.Availability != want {
		t.Fatalf("availability = %v, want %v", a.Availability, want)
	}
	// The trailing 5m window at t=10m holds the 50 ok samples from minutes
	// 5-10 plus the 10-failure burst in the bucket starting at 10m.
	if want := 50.0 / 60.0; a.Window5m != want {
		t.Fatalf("Window5m = %v, want %v", a.Window5m, want)
	}
	if want := (1 - a.Window5m) / (1 - m.SLOTarget()); a.Burn5m != want {
		t.Fatalf("Burn5m = %v, want %v", a.Burn5m, want)
	}
	// Violations must cover the failure bucket.
	if len(a.Violations) != 1 || a.Violations[0].From != 10*time.Minute {
		t.Fatalf("Violations = %+v", a.Violations)
	}
	// Worst shard is s1 (0%), then s0 (100%).
	if len(a.WorstShards) != 2 || a.WorstShards[0].Shard != "s1" || a.WorstShards[0].Rate != 0 {
		t.Fatalf("WorstShards = %+v", a.WorstShards)
	}
	// Budget: 10 failures against an allowance of 110*0.0001.
	if a.BudgetRemaining >= 0 {
		t.Fatalf("BudgetRemaining = %v, want deeply negative", a.BudgetRemaining)
	}
	// Cross-check accessor agrees with the snapshot.
	if got := m.Rate(app); got != a.Availability {
		t.Fatalf("Rate = %v, snapshot = %v", got, a.Availability)
	}
}

func TestMonitorViolationMerging(t *testing.T) {
	clk := &fakeClock{}
	m := New(Options{Bucket: 30 * time.Second})
	m.Bind(clk)
	app := shard.AppID("a")
	// Failures in buckets 0 and 1 (adjacent — one interval), and bucket 4.
	for _, at := range []time.Duration{10 * time.Second, 40 * time.Second, 130 * time.Second} {
		clk.t = at
		m.Observe(app, routing.Result{OK: false, Shard: "s"})
	}
	v := m.Snapshot().Apps[0].Violations
	if len(v) != 2 {
		t.Fatalf("Violations = %+v, want 2 intervals", v)
	}
	if v[0].From != 0 || v[0].To != time.Minute {
		t.Fatalf("merged interval = %+v", v[0])
	}
	if v[1].From != 2*time.Minute || v[1].To != 150*time.Second {
		t.Fatalf("second interval = %+v", v[1])
	}
}

func TestMonitorRegistryGauge(t *testing.T) {
	reg := metrics.NewRegistry()
	m := New(Options{Registry: reg})
	m.Bind(&fakeClock{})
	m.Observe("kv", routing.Result{OK: true, Shard: "s"})
	m.Observe("kv", routing.Result{OK: false, Shard: "s"})
	if got := reg.Gauge("health_availability", "app", "kv").Value(); got != 0.5 {
		t.Fatalf("health_availability = %v, want 0.5", got)
	}
	if m.Registry() != reg {
		t.Fatal("Registry() should return the injected registry")
	}
}

func TestRenderDashboard(t *testing.T) {
	clk := &fakeClock{t: 90 * time.Second}
	m := New(Options{})
	m.Bind(clk)
	m.Observe("kv", routing.Result{OK: true, Shard: "s0", Server: "srv/0"})
	m.Observe("kv", routing.Result{OK: false, Err: "not-owner", Shard: "s1"})
	st := m.Snapshot()
	out := st.Render()
	for _, want := range []string{"app kv", "availability", "worst shards", "slo violations", "error budget"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
	// Rendering the same snapshot twice is byte-identical.
	if out != st.Render() {
		t.Fatal("Render not deterministic")
	}
	if !strings.Contains(st.RenderCompact(), "kv 50%") {
		t.Fatalf("compact = %q", st.RenderCompact())
	}
}

func TestRenderEmpty(t *testing.T) {
	m := New(Options{})
	out := m.Snapshot().Render()
	if !strings.Contains(out, "no applications observed") {
		t.Fatalf("empty dashboard = %q", out)
	}
}
