package integration

import (
	"fmt"
	"testing"
	"time"

	"shardmanager/internal/cluster"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/taskcontroller"
	"shardmanager/internal/topology"
)

// TestChaosRandomEventsConvergeToValidState drives the full stack through a
// randomized schedule of unplanned failures, restorations, negotiable
// restarts, drains, replica-count changes, and preference changes, then
// checks the paper's steady-state invariants after quiescence:
//
//   - the published shard map is always structurally valid,
//   - every shard ends fully replicated on live servers,
//   - every shard has exactly one primary,
//   - drained/dead servers hold nothing they shouldn't.
func TestChaosRandomEventsConvergeToValidState(t *testing.T) {
	for _, seed := range []uint64{101, 202, 303} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

func runChaos(t *testing.T, seed uint64) {
	t.Helper()
	const (
		shardsN  = 30
		replicas = 2
		perReg   = 4
	)
	tp := taskcontroller.DefaultPolicy(2)
	d, _ := buildKV(t, []topology.RegionID{"r1", "r2"}, perReg, shardsN, replicas, &tp,
		func(c *orchestrator.Config) {
			c.FailoverGrace = 20 * time.Second
			c.AllocInterval = 15 * time.Second
		})
	rng := sim.NewRNG(seed)

	// Track machines we have deliberately killed so we can restore them
	// and never take down more than half of a region.
	type deadMachine struct {
		mgr *cluster.Manager
		id  topology.MachineID
	}
	var dead []deadMachine
	managers := []*cluster.Manager{d.Managers["r1"], d.Managers["r2"]}

	checkMapValid := func() {
		if err := d.Orch.AssignmentSnapshot().Validate(); err != nil {
			t.Fatalf("invalid map mid-chaos: %v", err)
		}
	}

	events := 0
	for events < 30 {
		d.Loop.RunFor(time.Duration(30+rng.Intn(120)) * time.Second)
		checkMapValid()
		events++
		switch rng.Intn(6) {
		case 0: // unplanned machine failure (bounded)
			if len(dead) >= 2 {
				continue
			}
			mgr := managers[rng.Intn(len(managers))]
			machines := d.Fleet.MachinesInRegion(mgr.Region)
			m := machines[rng.Intn(len(machines))]
			if !mgr.MachineAlive(m.ID) {
				continue
			}
			mgr.KillMachine(m.ID)
			dead = append(dead, deadMachine{mgr, m.ID})
		case 1: // restore a failed machine
			if len(dead) == 0 {
				continue
			}
			dm := dead[0]
			dead = dead[1:]
			dm.mgr.RestoreMachine(dm.id)
		case 2: // negotiable restart of a random container
			mgr := managers[rng.Intn(len(managers))]
			running := mgr.RunningContainers(d.Jobs[mgr.Region])
			if len(running) == 0 {
				continue
			}
			mgr.Submit(cluster.Operation{
				Type:       cluster.OpRestart,
				Container:  running[rng.Intn(len(running))],
				Negotiable: true,
				Reason:     "chaos-upgrade",
			})
		case 3: // drain and release a random server
			mgr := managers[rng.Intn(len(managers))]
			running := mgr.RunningContainers(d.Jobs[mgr.Region])
			if len(running) == 0 {
				continue
			}
			srv := shard.ServerID(running[rng.Intn(len(running))])
			d.Orch.Drain(srv, func() { d.Orch.CancelDrain(srv) })
		case 4: // scale a shard between 2 and 3 replicas
			id := shard.ID(fmt.Sprintf("s%05d", rng.Intn(shardsN)))
			n := 2 + rng.Intn(2)
			d.Orch.SetReplicas(id, n)
		case 5: // flip a region preference
			id := shard.ID(fmt.Sprintf("s%05d", rng.Intn(shardsN)))
			region := managers[rng.Intn(len(managers))].Region
			d.Orch.SetRegionPreference(id, region, 200)
		}
	}

	// Restore everything and let the system quiesce.
	for _, dm := range dead {
		dm.mgr.RestoreMachine(dm.id)
	}
	d.Loop.RunFor(20 * time.Minute)

	m := d.Orch.AssignmentSnapshot()
	if err := m.Validate(); err != nil {
		t.Fatalf("invalid map after quiescence: %v", err)
	}
	for _, id := range d.Orch.ShardIDs() {
		want := d.Orch.TotalReplicas(id)
		as := m.Replicas(id)
		if len(as) != want {
			t.Fatalf("shard %s has %d/%d replicas after quiescence", id, len(as), want)
		}
		primaries := 0
		for _, a := range as {
			srv := d.Dir.Lookup(a.Server)
			if srv == nil {
				t.Fatalf("shard %s replica on dead server %s", id, a.Server)
			}
			if !srv.HoldsActive(id) {
				t.Fatalf("server %s does not actively hold %s", a.Server, id)
			}
			if a.Role == shard.RolePrimary {
				primaries++
			}
		}
		if primaries != 1 {
			t.Fatalf("shard %s has %d primaries after quiescence", id, primaries)
		}
	}
	// Consistency between orchestrator view and server reality: every
	// active server replica appears in the map.
	for _, mgr := range managers {
		for _, cid := range mgr.RunningContainers(d.Jobs[mgr.Region]) {
			srv := d.Dir.Lookup(shard.ServerID(cid))
			if srv == nil {
				continue
			}
			for id := range srv.Shards() {
				found := false
				for _, a := range m.Replicas(id) {
					if a.Server == srv.ID {
						found = true
					}
				}
				if !found && srv.HoldsActive(id) {
					t.Fatalf("server %s holds %s not in map", srv.ID, id)
				}
			}
		}
	}
	t.Logf("chaos seed %d: %s", seed, d.Orch.Stats())
}
