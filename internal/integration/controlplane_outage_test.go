package integration

import (
	"testing"
	"time"

	"shardmanager/internal/apps"
	"shardmanager/internal/cluster"
	"shardmanager/internal/experiments"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// TestControlPlaneOutageDoesNotTakeAppDown asserts §6.2: "Even if all SM
// control-plane components are down, application clients can continue to
// send requests to application servers, although new shard assignments
// would not be generated."
func TestControlPlaneOutageDoesNotTakeAppDown(t *testing.T) {
	d, _ := buildKV(t, []topology.RegionID{"r1"}, 4, 60, 1, nil, nil)
	ks := experiments.KeyspaceFor(60)
	client := d.NewClient("r1", ks, routing.DefaultOptions())
	d.Loop.RunFor(5 * time.Second)

	doPut := func(i int) bool {
		ok := false
		client.Do(experiments.KeyForShard(i), true, apps.KVOpPut, apps.KVPut{Value: "v"},
			func(res routing.Result) { ok = res.OK })
		d.Loop.RunFor(2 * time.Second)
		return ok
	}
	if !doPut(0) {
		t.Fatal("request failed before outage")
	}

	// The entire SM control plane goes down.
	d.Orch.Stop()
	versionAtOutage := d.Orch.Version()

	// Clients keep working off the last published map for a long time.
	for i := 0; i < 20; i++ {
		if !doPut(i) {
			t.Fatalf("request %d failed during control-plane outage", i)
		}
	}
	d.Loop.RunFor(10 * time.Minute)
	if !doPut(5) {
		t.Fatal("request failed late in the outage")
	}

	// But failures are NOT repaired while the control plane is down: a
	// dead server's shards stay unassigned.
	mgr := d.Managers["r1"]
	victim := shard.ServerID(mgr.RunningContainers(d.Jobs["r1"])[0])
	lost := d.Orch.ShardsOnServer(victim)
	if lost == 0 {
		t.Fatal("victim held no shards")
	}
	c, _ := mgr.Container(cluster.ContainerID(victim))
	mgr.KillMachine(c.Machine)
	d.Loop.RunFor(10 * time.Minute)
	if d.Orch.Version() != versionAtOutage {
		t.Fatalf("map version moved during outage: %d -> %d", versionAtOutage, d.Orch.Version())
	}
	if d.Orch.EmergencyRuns.Value() != 0 {
		t.Fatal("emergency allocation ran while control plane was down")
	}

	// The control plane recovers and repairs the damage.
	d.Orch.Start()
	d.Loop.RunFor(10 * time.Minute)
	if d.Orch.ShardsOnServer(victim) != 0 {
		t.Fatalf("dead server still holds %d shards after recovery", d.Orch.ShardsOnServer(victim))
	}
	if d.Orch.Version() == versionAtOutage {
		t.Fatal("no new map published after recovery")
	}
	// Shards are fully served again.
	for i := 0; i < 20; i++ {
		if !doPut(i) {
			t.Fatalf("request %d failed after recovery", i)
		}
	}
}
