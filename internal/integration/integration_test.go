// Package integration contains whole-system scenario tests that cross
// every package boundary: cluster manager + TaskController + orchestrator +
// appserver + discovery + routing, all driven on the deterministic
// simulator. Each test asserts one of the paper's system-level guarantees.
package integration

import (
	"fmt"
	"testing"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/apps"
	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/experiments"
	"shardmanager/internal/orchestrator"
	"shardmanager/internal/routing"
	"shardmanager/internal/shard"
	"shardmanager/internal/taskcontroller"
	"shardmanager/internal/topology"
)

// buildKV builds a primary-secondary KV deployment across the given regions.
func buildKV(t *testing.T, regions []topology.RegionID, serversPerRegion, shards, replicas int,
	taskPolicy *taskcontroller.Policy, tweak func(*orchestrator.Config)) (*experiments.Deployment, *apps.KVBacking) {
	t.Helper()
	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	if replicas == 1 {
		pol.SpreadWeight = 0
	}
	cfg := orchestrator.Config{
		App:      "kv",
		Strategy: shard.PrimarySecondary,
		Shards: experiments.UniformShardConfigs(shards, replicas, topology.Capacity{
			topology.ResourceCPU:        1,
			topology.ResourceShardCount: 1,
		}),
		Policy: pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: float64(shards),
		},
		GracefulMigration: true,
		FailoverGrace:     3 * time.Minute,
	}
	if replicas == 1 {
		cfg.Strategy = shard.PrimaryOnly
	}
	if tweak != nil {
		tweak(&cfg)
	}
	backing := apps.NewKVBacking()
	d := experiments.Build(experiments.DeploymentSpec{
		Regions:          regions,
		ServersPerRegion: serversPerRegion,
		Orch:             cfg,
		TaskPolicy:       taskPolicy,
		ClusterOpts:      cluster.DefaultOptions(),
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewKVStore(s, backing)
		},
		Seed: 77,
	})
	if err := d.Settle(15 * time.Minute); err != nil {
		t.Fatal(err)
	}
	return d, backing
}

// TestCrossRegionRestartsNeverLoseAllReplicas reproduces §2.3's motivating
// scenario: two regional cluster managers independently start rolling
// restarts at the same time; containers in different regions host the two
// replicas of the same shard. One TaskController coordinates both regions,
// so no shard ever has zero alive replicas.
func TestCrossRegionRestartsNeverLoseAllReplicas(t *testing.T) {
	tp := taskcontroller.DefaultPolicy(6)
	tp.DrainOnRestart = false // rely purely on the per-shard cap
	tp.MaxUnavailableReplicas = 1
	d, _ := buildKV(t, []topology.RegionID{"r1", "r2"}, 6, 60, 2, &tp, nil)

	// Sample every second: every shard must keep >= 1 alive replica.
	minAlive := 99
	d.Loop.Every(time.Second, func() {
		m := d.Orch.AssignmentSnapshot()
		for _, id := range d.Orch.ShardIDs() {
			alive := 0
			for _, a := range m.Replicas(id) {
				if d.Dir.Lookup(a.Server) != nil {
					alive++
				}
			}
			if alive < minAlive {
				minAlive = alive
			}
		}
	})

	// Both regions upgrade simultaneously.
	done := 0
	for _, r := range []topology.RegionID{"r1", "r2"} {
		d.Managers[r].RollingUpgrade(d.Jobs[r], 6, "upgrade", func() { done++ })
	}
	d.Loop.RunFor(60 * time.Minute)
	if done != 2 {
		t.Fatalf("upgrades completed = %d, want 2", done)
	}
	if minAlive < 1 {
		t.Fatalf("a shard lost all replicas (min alive = %d)", minAlive)
	}
}

// TestZeroRequestLossDuringDrainedUpgrade asserts the §4.3 guarantee end to
// end: with TaskController drains and graceful migration, a rolling upgrade
// drops zero requests.
func TestZeroRequestLossDuringDrainedUpgrade(t *testing.T) {
	tp := taskcontroller.DefaultPolicy(2)
	d, _ := buildKV(t, []topology.RegionID{"r1"}, 8, 200, 1, &tp, func(c *orchestrator.Config) {
		c.MaxConcurrentMigrations = 30
		c.ShardLoadTime = 2 * time.Second
	})
	ks := experiments.KeyspaceFor(200)
	client := d.NewClient("r1", ks, routing.DefaultOptions())
	d.Loop.RunFor(5 * time.Second)

	rng := d.Loop.RNG().Fork()
	var sent, failed int
	d.Loop.Every(100*time.Millisecond, func() {
		key := experiments.KeyForShard(rng.Intn(200))
		sent++
		client.Do(key, true, apps.KVOpPut, apps.KVPut{Value: "v"}, func(res routing.Result) {
			if !res.OK {
				failed++
				t.Logf("request failed at %v: %s (shard %s)", d.Loop.Now(), res.Err, res.Shard)
			}
		})
	})

	done := false
	d.Managers["r1"].RollingUpgrade(d.Jobs["r1"], 2, "upgrade", func() { done = true })
	d.Loop.RunFor(45 * time.Minute)
	if !done {
		t.Fatal("upgrade did not complete")
	}
	if failed != 0 {
		t.Fatalf("%d/%d requests dropped during drained upgrade", failed, sent)
	}
	if sent < 1000 {
		t.Fatalf("too little traffic to be meaningful: %d", sent)
	}
}

// TestMaintenanceDemotesPrimariesAhead asserts §4.2: before a scheduled
// network-loss maintenance, SM demotes primaries on the affected machine
// and promotes secondaries elsewhere, so every shard keeps an alive primary
// through the event.
func TestMaintenanceDemotesPrimariesAhead(t *testing.T) {
	tp := taskcontroller.DefaultPolicy(4)
	d, _ := buildKV(t, []topology.RegionID{"r1", "r2"}, 4, 40, 2, &tp, nil)

	// Find a machine hosting at least one primary.
	m := d.Orch.AssignmentSnapshot()
	var victim topology.MachineID
	var victimServer shard.ServerID
	mgr := d.Managers["r1"]
	for _, id := range d.Orch.ShardIDs() {
		if p, ok := m.Primary(id); ok {
			if c, ok := mgr.Container(cluster.ContainerID(p)); ok {
				victim = c.Machine
				victimServer = p
				break
			}
		}
	}
	if victim == "" {
		t.Fatal("no primary found in r1")
	}

	start := d.Loop.Now() + 10*time.Minute
	mgr.ScheduleMaintenance([]topology.MachineID{victim}, start, start+5*time.Minute, cluster.ImpactNetworkLoss)

	// Just before the event starts, the machine must hold no primaries.
	d.Loop.RunUntil(start - time.Second)
	m = d.Orch.AssignmentSnapshot()
	for _, id := range d.Orch.ShardIDs() {
		if p, ok := m.Primary(id); ok && p == victimServer {
			t.Fatalf("shard %s still has its primary on the maintenance machine", id)
		}
	}
	// Through and after the event, every shard keeps exactly one primary.
	d.Loop.RunFor(10 * time.Minute)
	m = d.Orch.AssignmentSnapshot()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, id := range d.Orch.ShardIDs() {
		if _, ok := m.Primary(id); !ok {
			t.Fatalf("shard %s lost its primary", id)
		}
	}
}

// TestShardScalerGrowsHotShards wires the control-plane shard scaler to a
// live orchestrator: shards reporting hot load gain replicas at the next
// allocations (§6.1).
func TestShardScalerGrowsHotShards(t *testing.T) {
	// KV app with a load reporter we control.
	hot := map[shard.ID]bool{"s00000": true, "s00001": true}
	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	cfg := orchestrator.Config{
		App:      "scaled",
		Strategy: shard.SecondaryOnly,
		Shards: experiments.UniformShardConfigs(20, 2, topology.Capacity{
			topology.ResourceCPU:        1,
			topology.ResourceShardCount: 1,
		}),
		Policy: pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        1000,
			topology.ResourceShardCount: 100,
		},
		GracefulMigration: true,
	}
	backing := apps.NewKVBacking()
	d := experiments.Build(experiments.DeploymentSpec{
		Regions:          []topology.RegionID{"r1", "r2"},
		ServersPerRegion: 4,
		Orch:             cfg,
		ClusterOpts:      cluster.DefaultOptions(),
		AppFactory: func(s *appserver.Server) appserver.Application {
			kv := apps.NewKVStore(s, backing)
			for id := range hot {
				kv.SetShardLoad(id, topology.Capacity{
					topology.ResourceCPU:        95,
					topology.ResourceShardCount: 1,
				})
			}
			return kv
		},
		Seed: 5,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		t.Fatal(err)
	}

	// Let a load-collection cycle land the hot readings, then tick the
	// scaler.
	d.Loop.RunFor(time.Minute)
	scaler, err := newScaler(d)
	if err != nil {
		t.Fatal(err)
	}
	scaler.Tick()
	d.Loop.RunFor(5 * time.Minute) // allocation adds the new replicas

	m := d.Orch.AssignmentSnapshot()
	for id := range hot {
		if got := len(m.Replicas(id)); got != 3 {
			t.Fatalf("hot shard %s has %d replicas, want 3", id, got)
		}
	}
	if got := len(m.Replicas("s00010")); got != 2 {
		t.Fatalf("cold shard grew to %d replicas", got)
	}
}

// newScaler builds the control-plane shard scaler against the deployment's
// orchestrator.
func newScaler(d *experiments.Deployment) (interface{ Tick() }, error) {
	return newScalerImpl(d)
}

// TestAutoscaleResizeAddsServersAndRebalances exercises the auto-scaler
// path of §4.1: the cluster manager grows the job (negotiable start ops);
// the orchestrator notices the new servers and rebalances shards onto them.
func TestAutoscaleResizeAddsServersAndRebalances(t *testing.T) {
	tp := taskcontroller.DefaultPolicy(10)
	d, _ := buildKV(t, []topology.RegionID{"r1"}, 4, 120, 1, &tp, nil)
	mgr := d.Managers["r1"]
	job := d.Jobs["r1"]

	before := map[shard.ServerID]int{}
	m := d.Orch.AssignmentSnapshot()
	for _, id := range d.Orch.ShardIDs() {
		for _, a := range m.Replicas(id) {
			before[a.Server]++
		}
	}
	if len(before) != 4 {
		t.Fatalf("servers in use = %d, want 4", len(before))
	}

	mgr.Resize(job, 8)
	d.Loop.RunFor(20 * time.Minute)
	if got := len(mgr.RunningContainers(job)); got != 8 {
		t.Fatalf("running containers = %d, want 8", got)
	}
	after := map[shard.ServerID]int{}
	m = d.Orch.AssignmentSnapshot()
	for _, id := range d.Orch.ShardIDs() {
		for _, a := range m.Replicas(id) {
			after[a.Server]++
		}
	}
	if len(after) < 7 {
		t.Fatalf("shards rebalanced onto only %d/8 servers", len(after))
	}
	// Shard-count balance: no server should hold more than ~2x the mean.
	for srv, n := range after {
		if n > 2*120/8+5 {
			t.Fatalf("server %s still hot with %d shards", srv, n)
		}
	}
}

// TestStreamProcessorSurvivesDrainEndToEnd drives the AdEvents-like app
// through a real drain + graceful migration and checks the materialized
// state is correct on the new owner, queried through the router.
func TestStreamProcessorSurvivesDrainEndToEnd(t *testing.T) {
	const numShards = 40
	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	pol.SpreadWeight = 0
	cfg := orchestrator.Config{
		App:      "adevents",
		Strategy: shard.PrimaryOnly,
		Shards: experiments.UniformShardConfigs(numShards, 1, topology.Capacity{
			topology.ResourceCPU:        1,
			topology.ResourceShardCount: 1,
		}),
		Policy: pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: numShards,
		},
		GracefulMigration: true,
	}
	bus := apps.NewDataBus()
	d := experiments.Build(experiments.DeploymentSpec{
		Regions:          []topology.RegionID{"r1"},
		ServersPerRegion: 4,
		Orch:             cfg,
		ClusterOpts:      cluster.DefaultOptions(),
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewStreamProcessor(s, bus)
		},
		Seed: 3,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		t.Fatal(err)
	}

	// Publish events for shard s00000 and verify the aggregate. The
	// event key doubles as the routing key.
	ks := experiments.KeyspaceFor(numShards)
	adKey := experiments.KeyForShard(0)
	for i := 0; i < 5; i++ {
		bus.Publish(apps.BusEvent{Shard: "s00000", Key: adKey, Count: 2})
	}
	client := d.NewClient("r1", ks, routing.DefaultOptions())
	d.Loop.RunFor(5 * time.Second)

	query := func() int64 {
		var got int64 = -1
		client.Do(adKey, false, apps.StreamOpQuery, nil, func(res routing.Result) {
			if res.OK {
				got = res.Payload.(int64)
			}
		})
		d.Loop.RunFor(5 * time.Second)
		return got
	}
	if v := query(); v != 10 {
		t.Fatalf("aggregate = %d, want 10", v)
	}

	// Drain the owner; the shard migrates; the new owner rebuilds from
	// the bus and serves the same aggregate.
	m := d.Orch.AssignmentSnapshot()
	owner, _ := m.Primary("s00000")
	drained := false
	d.Orch.Drain(owner, func() { drained = true })
	d.Loop.RunFor(10 * time.Minute)
	if !drained {
		t.Fatal("drain never completed")
	}
	m = d.Orch.AssignmentSnapshot()
	newOwner, ok := m.Primary("s00000")
	if !ok || newOwner == owner {
		t.Fatalf("shard did not move: %s -> %s", owner, newOwner)
	}
	if v := query(); v != 10 {
		t.Fatalf("aggregate after migration = %d, want 10", v)
	}
}

// TestTwoAppsShareFleetIndependently runs two applications with separate
// orchestrators on the same fleet, coordination store, and discovery
// service — the multi-tenant reality of §6.
func TestTwoAppsShareFleetIndependently(t *testing.T) {
	d1, backing := buildKV(t, []topology.RegionID{"r1"}, 4, 40, 1, nil, nil)
	_ = backing

	// Second app: its own job on the same cluster manager and stores.
	pol := allocator.DefaultPolicy(topology.ResourceShardCount)
	pol.SpreadWeight = 0
	cfg2 := orchestrator.Config{
		App:      "second",
		Strategy: shard.PrimaryOnly,
		Shards: experiments.UniformShardConfigs(20, 1, topology.Capacity{
			topology.ResourceShardCount: 1,
		}),
		Policy:         pol,
		ServerCapacity: topology.Capacity{topology.ResourceShardCount: 100},
	}
	qBacking := apps.NewQueueBacking()
	host2 := appserver.NewHost(d1.Loop, d1.Net, d1.Dir, d1.Store, d1.Fleet, "second", "second-job",
		func(s *appserver.Server) appserver.Application { return apps.NewQueue(s, qBacking) })
	d1.Managers["r1"].AddListener(host2)
	d1.Managers["r1"].CreateJob("second-job", "second", 3)
	orch2 := orchestrator.New(d1.Loop, d1.Store, d1.Disc, d1.Net, d1.Dir, d1.Fleet, cfg2, 9)
	orch2.Start()
	d1.Loop.RunFor(5 * time.Minute)

	m1 := d1.Orch.AssignmentSnapshot()
	m2 := orch2.AssignmentSnapshot()
	if len(m1.Entries) != 40 || len(m2.Entries) != 20 {
		t.Fatalf("apps interfered: %d/%d shards", len(m1.Entries), len(m2.Entries))
	}
	// The second app's shards only live on its own job's servers.
	for id, as := range m2.Entries {
		for _, a := range as {
			if len(a.Server) < 10 || a.Server[:10] != "second-job" {
				t.Fatalf("shard %s of app2 on foreign server %s", id, a.Server)
			}
		}
	}
}

// TestRollingUpgradePreservesQueueData: end-to-end durability — everything
// enqueued before and during an upgrade is dequeueable afterwards, in
// order per shard.
func TestRollingUpgradePreservesQueueData(t *testing.T) {
	const numShards = 30
	tp := taskcontroller.DefaultPolicy(2)
	pol := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	pol.SpreadWeight = 0
	cfg := orchestrator.Config{
		App:      "q",
		Strategy: shard.PrimaryOnly,
		Shards: experiments.UniformShardConfigs(numShards, 1, topology.Capacity{
			topology.ResourceCPU:        1,
			topology.ResourceShardCount: 1,
		}),
		Policy: pol,
		ServerCapacity: topology.Capacity{
			topology.ResourceCPU:        100,
			topology.ResourceShardCount: numShards,
		},
		GracefulMigration: true,
		FailoverGrace:     3 * time.Minute,
	}
	backing := apps.NewQueueBacking()
	d := experiments.Build(experiments.DeploymentSpec{
		Regions:          []topology.RegionID{"r1"},
		ServersPerRegion: 4,
		Orch:             cfg,
		TaskPolicy:       &tp,
		ClusterOpts:      cluster.DefaultOptions(),
		AppFactory: func(s *appserver.Server) appserver.Application {
			return apps.NewQueue(s, backing)
		},
		Seed: 13,
	})
	if err := d.Settle(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	ks := experiments.KeyspaceFor(numShards)
	client := d.NewClient("r1", ks, routing.DefaultOptions())
	d.Loop.RunFor(5 * time.Second)

	// Enqueue sequenced messages to shard 0 throughout an upgrade.
	seq := 0
	tick := d.Loop.Every(500*time.Millisecond, func() {
		seq++
		client.Do(experiments.KeyForShard(0), true, apps.QueueOpEnqueue,
			fmt.Sprintf("m%06d", seq), func(routing.Result) {})
	})
	done := false
	d.Managers["r1"].RollingUpgrade(d.Jobs["r1"], 2, "upgrade", func() { done = true })
	d.Loop.RunFor(30 * time.Minute)
	tick.Stop()
	d.Loop.RunFor(10 * time.Second)
	if !done {
		t.Fatal("upgrade incomplete")
	}

	// Drain the queue through the router and verify order.
	want := 1
	for {
		var got string
		ok := false
		client.Do(experiments.KeyForShard(0), true, apps.QueueOpDequeue, nil, func(res routing.Result) {
			if res.OK {
				got, ok = res.Payload.(string)
			}
		})
		d.Loop.RunFor(2 * time.Second)
		if !ok || got == "" {
			break
		}
		expect := fmt.Sprintf("m%06d", want)
		if got != expect {
			t.Fatalf("out-of-order delivery: got %s want %s", got, expect)
		}
		want++
	}
	if want < 10 {
		t.Fatalf("dequeued only %d messages", want-1)
	}
}
