package integration

import (
	"shardmanager/internal/controlplane"
	"shardmanager/internal/experiments"
	"shardmanager/internal/topology"
)

// newScalerImpl wires the control-plane shard scaler to the deployment's
// orchestrator (which satisfies controlplane.ScalerTarget).
func newScalerImpl(d *experiments.Deployment) (*controlplane.Scaler, error) {
	return controlplane.NewScaler(d.Orch, controlplane.ScalerPolicy{
		Metric:      topology.ResourceCPU,
		ScaleUpAt:   80,
		ScaleDownAt: 5,
		MinReplicas: 2,
		MaxReplicas: 5,
	})
}
