// Package legacy implements the two sharding schemes that SM competes with
// in Figure 4 — static sharding and consistent hashing (§2.2.1) — both as
// working routers and as comparators for the adoption analysis:
//
//   - Static sharding binds keys to sequentially indexed tasks
//     (taskID = hash(key) mod total_tasks), Twine-style. Simple, but
//     resizing the job remaps almost every key, and availability depends
//     entirely on container-level failover.
//   - Consistent hashing places tasks on a hash ring with virtual nodes;
//     resizing only remaps the keys adjacent to the new/removed node.
//
// The paper observes that static sharding is ≈3x more popular than
// consistent hashing despite the theoretical resharding advantage; the
// Compare helpers quantify that trade-off (fraction of keys remapped) for
// the repository's EXPERIMENTS notes.
package legacy

import (
	"fmt"
	"sort"

	"shardmanager/internal/shard"
)

// fnv1a64 hashes a string and applies a splitmix64-style finalizer; raw
// FNV-1a of short structured names ("m5#17") clusters on the ring.
func fnv1a64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// StaticSharding routes keys by taskID = hash(key) mod tasks (§2.2.1: "the
// task with taskID = key mod total_tasks is responsible for the key").
type StaticSharding struct {
	tasks int
}

// NewStaticSharding builds a static scheme over n tasks.
func NewStaticSharding(n int) *StaticSharding {
	if n <= 0 {
		panic(fmt.Sprintf("legacy: NewStaticSharding(%d)", n))
	}
	return &StaticSharding{tasks: n}
}

// Tasks returns the task count.
func (s *StaticSharding) Tasks() int { return s.tasks }

// TaskFor returns the task index owning key.
func (s *StaticSharding) TaskFor(key string) int {
	return int(fnv1a64(key) % uint64(s.tasks))
}

// ServerFor returns the owning server named "<job>/<task>".
func (s *StaticSharding) ServerFor(job, key string) shard.ServerID {
	return shard.ServerID(fmt.Sprintf("%s/%d", job, s.TaskFor(key)))
}

// Resize returns a new scheme with n tasks (the old one is unchanged;
// static schemes have no incremental resharding).
func (s *StaticSharding) Resize(n int) *StaticSharding { return NewStaticSharding(n) }

// HashRing is a consistent-hashing router with virtual nodes.
type HashRing struct {
	vnodes int
	// ring maps sorted hash points to member names.
	points  []uint64
	owners  map[uint64]string
	members map[string]bool
}

// NewHashRing builds a ring with the given virtual-node count per member
// (e.g. 100).
func NewHashRing(vnodes int) *HashRing {
	if vnodes <= 0 {
		panic(fmt.Sprintf("legacy: NewHashRing(%d)", vnodes))
	}
	return &HashRing{
		vnodes:  vnodes,
		owners:  make(map[uint64]string),
		members: make(map[string]bool),
	}
}

// Add inserts a member into the ring.
func (r *HashRing) Add(member string) {
	if r.members[member] {
		return
	}
	r.members[member] = true
	for v := 0; v < r.vnodes; v++ {
		h := fnv1a64(fmt.Sprintf("%s#%d", member, v))
		// Extremely unlikely collision: skew by one until free.
		for {
			if _, taken := r.owners[h]; !taken {
				break
			}
			h++
		}
		r.owners[h] = member
		r.points = append(r.points, h)
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i] < r.points[j] })
}

// Remove deletes a member from the ring.
func (r *HashRing) Remove(member string) {
	if !r.members[member] {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, h := range r.points {
		if r.owners[h] == member {
			delete(r.owners, h)
			continue
		}
		kept = append(kept, h)
	}
	r.points = kept
}

// Members returns the number of ring members.
func (r *HashRing) Members() int { return len(r.members) }

// Owner returns the member owning key ("" on an empty ring).
func (r *HashRing) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv1a64(key)
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if idx == len(r.points) {
		idx = 0 // wrap around
	}
	return r.owners[r.points[idx]]
}

// ReshardCost measures the fraction of sampled keys that change owner when
// mutate is applied to a copy of the routing function. keys must be
// non-empty.
func ReshardCost(keys []string, ownerBefore, ownerAfter func(string) string) float64 {
	if len(keys) == 0 {
		panic("legacy: ReshardCost with no keys")
	}
	moved := 0
	for _, k := range keys {
		if ownerBefore(k) != ownerAfter(k) {
			moved++
		}
	}
	return float64(moved) / float64(len(keys))
}

// CompareReshard quantifies §2.2.1's trade-off: the key-remap fraction when
// growing from n to n+1 servers under each scheme.
type CompareResult struct {
	StaticMoved     float64
	ConsistentMoved float64
}

// CompareReshard samples the reshard cost for both legacy schemes.
func CompareReshard(keys []string, n int) CompareResult {
	st := NewStaticSharding(n)
	st2 := st.Resize(n + 1)

	ring := NewHashRing(100)
	for i := 0; i < n; i++ {
		ring.Add(fmt.Sprintf("task%d", i))
	}
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = ring.Owner(k)
	}
	ring.Add(fmt.Sprintf("task%d", n))

	return CompareResult{
		StaticMoved: ReshardCost(keys,
			func(k string) string { return fmt.Sprint(st.TaskFor(k)) },
			func(k string) string { return fmt.Sprint(st2.TaskFor(k)) }),
		ConsistentMoved: ReshardCost(keys,
			func(k string) string { return before[k] },
			func(k string) string { return ring.Owner(k) }),
	}
}
