package legacy

import (
	"fmt"
	"testing"
	"testing/quick"
)

func sampleKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	return keys
}

func TestStaticShardingDeterministicAndBounded(t *testing.T) {
	s := NewStaticSharding(16)
	if err := quick.Check(func(key string) bool {
		task := s.TaskFor(key)
		return task >= 0 && task < 16 && task == s.TaskFor(key)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStaticShardingSpreadsKeys(t *testing.T) {
	s := NewStaticSharding(8)
	counts := make([]int, 8)
	for _, k := range sampleKeys(8000) {
		counts[s.TaskFor(k)]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Fatalf("task %d has %d/8000 keys", i, c)
		}
	}
}

func TestStaticServerFor(t *testing.T) {
	s := NewStaticSharding(4)
	id := s.ServerFor("job", "k")
	want := fmt.Sprintf("job/%d", s.TaskFor("k"))
	if string(id) != want {
		t.Fatalf("ServerFor = %s, want %s", id, want)
	}
}

func TestHashRingOwnership(t *testing.T) {
	r := NewHashRing(100)
	if r.Owner("k") != "" {
		t.Fatal("empty ring returned an owner")
	}
	for i := 0; i < 8; i++ {
		r.Add(fmt.Sprintf("m%d", i))
	}
	if r.Members() != 8 {
		t.Fatalf("members = %d", r.Members())
	}
	// Deterministic and reasonably balanced.
	counts := map[string]int{}
	for _, k := range sampleKeys(8000) {
		o := r.Owner(k)
		if o == "" || o != r.Owner(k) {
			t.Fatal("unstable ownership")
		}
		counts[o]++
	}
	for m, c := range counts {
		if c < 400 || c > 2000 {
			t.Fatalf("member %s owns %d/8000 keys", m, c)
		}
	}
}

func TestHashRingAddRemoveIdempotent(t *testing.T) {
	r := NewHashRing(10)
	r.Add("a")
	r.Add("a")
	if r.Members() != 1 {
		t.Fatal("double add counted twice")
	}
	r.Remove("a")
	r.Remove("a")
	if r.Members() != 0 || r.Owner("k") != "" {
		t.Fatal("remove incomplete")
	}
}

func TestHashRingRemoveOnlyRemapsVictimKeys(t *testing.T) {
	r := NewHashRing(100)
	for i := 0; i < 8; i++ {
		r.Add(fmt.Sprintf("m%d", i))
	}
	keys := sampleKeys(4000)
	before := map[string]string{}
	for _, k := range keys {
		before[k] = r.Owner(k)
	}
	r.Remove("m3")
	for _, k := range keys {
		after := r.Owner(k)
		if after == "m3" {
			t.Fatal("removed member still owns keys")
		}
		if before[k] != "m3" && after != before[k] {
			t.Fatalf("key %s moved although its owner was not removed", k)
		}
	}
}

func TestCompareReshardMatchesTheory(t *testing.T) {
	keys := sampleKeys(20000)
	res := CompareReshard(keys, 16)
	// Static: going 16 -> 17 remaps ~1 - 1/17 ≈ 94% of keys.
	if res.StaticMoved < 0.85 {
		t.Fatalf("static remap = %.2f, want ~0.94", res.StaticMoved)
	}
	// Consistent hashing: ~1/17 ≈ 6% of keys move to the new member.
	if res.ConsistentMoved > 0.15 {
		t.Fatalf("consistent remap = %.2f, want ~0.06", res.ConsistentMoved)
	}
	if res.ConsistentMoved <= 0 {
		t.Fatal("consistent hashing moved nothing; new member unused")
	}
}

func TestReshardCostPanicsOnNoKeys(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ReshardCost(nil, nil, nil)
}

func TestConstructorsPanicOnBadArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"static": func() { NewStaticSharding(0) },
		"ring":   func() { NewHashRing(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkHashRingOwner(b *testing.B) {
	r := NewHashRing(100)
	for i := 0; i < 64; i++ {
		r.Add(fmt.Sprintf("m%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner("some-key")
	}
}
