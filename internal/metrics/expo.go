// Deterministic exporters for the labeled Registry. All three formats are
// byte-stable: families sort by name, cells sort by label values, and floats
// render via strconv.FormatFloat(v, 'g', -1, 64) so the same registry state
// always serializes to the same bytes — the property the golden-file and
// same-seed determinism tests pin down.
package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// fmtFloat renders a float the shortest way that round-trips, with
// Prometheus-style +Inf/-Inf spellings.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders {k="v",...} for the cell, or "" when unlabeled. extra
// appends one more pair (used for histogram le).
func promLabels(keys, vals []string, extraK, extraV string) string {
	if len(keys) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, vals[i])
	}
	if extraK != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraK, extraV)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4): # HELP/# TYPE headers, one line per cell, and
// cumulative _bucket/_sum/_count lines for histograms.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, c := range f.sortedCells() {
			switch f.kind {
			case KindCounter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, promLabels(f.keys, c.labels, "", ""), c.counter.Value()); err != nil {
					return err
				}
			case KindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, promLabels(f.keys, c.labels, "", ""), fmtFloat(c.gauge.Value())); err != nil {
					return err
				}
			case KindHistogram:
				cum := c.hist.Cumulative()
				for i, bound := range c.hist.bounds {
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(f.keys, c.labels, "le", fmtFloat(bound)), cum[i]); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, promLabels(f.keys, c.labels, "le", "+Inf"), cum[len(cum)-1]); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, promLabels(f.keys, c.labels, "", ""), fmtFloat(c.hist.Sum())); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, promLabels(f.keys, c.labels, "", ""), c.hist.Count()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// jsonCell is one exported (family, labels) instance.
type jsonCell struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`   // counter (as float) or gauge
	Count   *uint64           `json:"count,omitempty"`   // histogram
	Sum     *float64          `json:"sum,omitempty"`     // histogram
	Buckets []jsonBucket      `json:"buckets,omitempty"` // histogram, cumulative
}

type jsonBucket struct {
	LE    string `json:"le"` // formatted bound, "+Inf" for the last
	Count uint64 `json:"count"`
}

type jsonFamily struct {
	Name  string     `json:"name"`
	Type  string     `json:"type"`
	Help  string     `json:"help,omitempty"`
	Cells []jsonCell `json:"cells"`
}

// WriteJSON writes a deterministic JSON snapshot: an array of families
// sorted by name, each with cells sorted by label values, indented for
// diff-friendliness.
func (r *Registry) WriteJSON(w io.Writer) error {
	fams := []jsonFamily{}
	if r != nil {
		for _, f := range r.sortedFamilies() {
			jf := jsonFamily{Name: f.name, Type: f.kind.String(), Help: f.help, Cells: []jsonCell{}}
			for _, c := range f.sortedCells() {
				jc := jsonCell{}
				if len(f.keys) > 0 {
					jc.Labels = make(map[string]string, len(f.keys))
					for i, k := range f.keys {
						jc.Labels[k] = c.labels[i]
					}
				}
				switch f.kind {
				case KindCounter:
					v := float64(c.counter.Value())
					jc.Value = &v
				case KindGauge:
					v := c.gauge.Value()
					jc.Value = &v
				case KindHistogram:
					n, s := c.hist.Count(), c.hist.Sum()
					jc.Count, jc.Sum = &n, &s
					cum := c.hist.Cumulative()
					for i, bound := range c.hist.bounds {
						jc.Buckets = append(jc.Buckets, jsonBucket{LE: fmtFloat(bound), Count: cum[i]})
					}
					jc.Buckets = append(jc.Buckets, jsonBucket{LE: "+Inf", Count: cum[len(cum)-1]})
				}
				jf.Cells = append(jf.Cells, jc)
			}
			fams = append(fams, jf)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(fams)
	// json.Marshal sorts map keys, so the labels object is deterministic too.
}

// WriteCSV writes the registry as flat rows: name,type,labels,field,value.
// labels is "k=v;k=v" in key order; field is "value" for counters/gauges and
// "count"/"sum"/"le=<bound>" (cumulative) for histograms.
func (r *Registry) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "type", "labels", "field", "value"}); err != nil {
		return err
	}
	if r != nil {
		for _, f := range r.sortedFamilies() {
			for _, c := range f.sortedCells() {
				parts := make([]string, len(f.keys))
				for i, k := range f.keys {
					parts[i] = k + "=" + c.labels[i]
				}
				labels := strings.Join(parts, ";")
				row := func(field, value string) error {
					return cw.Write([]string{f.name, f.kind.String(), labels, field, value})
				}
				var err error
				switch f.kind {
				case KindCounter:
					err = row("value", strconv.FormatInt(c.counter.Value(), 10))
				case KindGauge:
					err = row("value", fmtFloat(c.gauge.Value()))
				case KindHistogram:
					cum := c.hist.Cumulative()
					for i, bound := range c.hist.bounds {
						if err = row("le="+fmtFloat(bound), strconv.FormatUint(cum[i], 10)); err != nil {
							break
						}
					}
					if err == nil {
						err = row("le=+Inf", strconv.FormatUint(cum[len(cum)-1], 10))
					}
					if err == nil {
						err = row("sum", fmtFloat(c.hist.Sum()))
					}
					if err == nil {
						err = row("count", strconv.FormatUint(c.hist.Count(), 10))
					}
				}
				if err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
