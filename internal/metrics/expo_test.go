package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildFixedRegistry populates a registry with a fixed, representative mix of
// families so the golden files exercise every branch of the exporters:
// unlabeled and labeled cells, negative/fractional gauges, and histograms.
func buildFixedRegistry() *Registry {
	r := NewRegistry()
	r.Describe("requests_total", "Requests by app and outcome.")
	r.Counter("requests_total", "app", "kv", "outcome", "ok").Add(142)
	r.Counter("requests_total", "app", "kv", "outcome", "error").Add(3)
	r.Counter("requests_total", "app", "queue", "outcome", "ok").Add(99)
	r.Describe("map_version", "Latest published routing map version.")
	r.Gauge("map_version", "app", "kv").Set(17)
	r.Gauge("drift").Set(-0.25)
	r.Describe("latency_ms", "Request latency in milliseconds.")
	h := r.Histogram("latency_ms", []float64{1, 5, 25, 100}, "app", "kv")
	for _, v := range []float64{0.3, 0.9, 2, 4, 4, 30, 80, 250} {
		h.Observe(v)
	}
	r.Histogram("latency_ms", nil, "app", "queue").Observe(12)
	// The runtime auditor's families: a zero-valued cell must still be
	// exported (pre-registered invariants with no violations).
	r.Describe("audit_checks_total", "Invariant evaluations performed by the runtime auditor.")
	r.Counter("audit_checks_total", "invariant", "one-primary").Add(5120)
	r.Counter("audit_checks_total", "invariant", "stale-routing").Add(480)
	r.Describe("audit_violations_total", "Invariant violations detected by the runtime auditor.")
	r.Counter("audit_violations_total", "invariant", "one-primary").Add(2)
	r.Counter("audit_violations_total", "invariant", "stale-routing")
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (run with -update to regenerate)\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "registry.prom", buf.Bytes())
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedRegistry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "registry.json", buf.Bytes())
}

func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixedRegistry().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "registry.csv", buf.Bytes())
}

// TestExportDeterminism builds the same registry twice and requires
// byte-identical output in all three formats — map iteration order must
// never leak.
func TestExportDeterminism(t *testing.T) {
	for _, format := range []struct {
		name  string
		write func(*Registry, *bytes.Buffer) error
	}{
		{"prometheus", func(r *Registry, b *bytes.Buffer) error { return r.WritePrometheus(b) }},
		{"json", func(r *Registry, b *bytes.Buffer) error { return r.WriteJSON(b) }},
		{"csv", func(r *Registry, b *bytes.Buffer) error { return r.WriteCSV(b) }},
	} {
		var a, b bytes.Buffer
		if err := format.write(buildFixedRegistry(), &a); err != nil {
			t.Fatal(err)
		}
		if err := format.write(buildFixedRegistry(), &b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("%s export not deterministic", format.name)
		}
		if a.Len() == 0 {
			t.Fatalf("%s export empty", format.name)
		}
	}
}
