// Package metrics provides the lightweight instrumentation primitives the
// rest of the reproduction uses: counters, time series sampled on the
// simulated clock, and percentile estimation over bounded windows. The paper
// reports request success rates, client latency traces, violation counts,
// and p90/p99 utilization; these types produce exactly those series.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Counter is a monotonically increasing count. The zero value is ready to use.
type Counter struct {
	n int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta; negative deltas panic since counters are monotonic.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		panic(fmt.Sprintf("metrics: Counter.Add(%d)", delta))
	}
	c.n += delta
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Gauge is a value that can move in both directions.
type Gauge struct {
	v float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) { g.v += delta }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Point is one sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// Series is an append-only time series.
type Series struct {
	Name   string
	points []Point
}

// NewSeries returns a named, empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Record appends a sample at time t.
func (s *Series) Record(t time.Duration, v float64) {
	s.points = append(s.points, Point{T: t, V: v})
}

// Points returns the recorded samples in insertion order.
func (s *Series) Points() []Point { return s.points }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// Last returns the most recent sample, or a zero Point if empty.
func (s *Series) Last() Point {
	if len(s.points) == 0 {
		return Point{}
	}
	return s.points[len(s.points)-1]
}

// Max returns the maximum sample value. ok is false for an empty series —
// a plain 0 would be indistinguishable from a real zero sample.
func (s *Series) Max() (v float64, ok bool) {
	if len(s.points) == 0 {
		return 0, false
	}
	m := math.Inf(-1)
	for _, p := range s.points {
		if p.V > m {
			m = p.V
		}
	}
	return m, true
}

// Min returns the minimum sample value. ok is false for an empty series.
func (s *Series) Min() (v float64, ok bool) {
	if len(s.points) == 0 {
		return 0, false
	}
	m := math.Inf(1)
	for _, p := range s.points {
		if p.V < m {
			m = p.V
		}
	}
	return m, true
}

// Mean returns the average sample value, or 0 if empty.
func (s *Series) Mean() float64 {
	if len(s.points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.points {
		sum += p.V
	}
	return sum / float64(len(s.points))
}

// Between returns the samples with T in [from, to].
func (s *Series) Between(from, to time.Duration) []Point {
	var out []Point
	for _, p := range s.points {
		if p.T >= from && p.T <= to {
			out = append(out, p)
		}
	}
	return out
}

// MeanBetween returns the mean of samples with T in [from, to], or 0 if none.
func (s *Series) MeanBetween(from, to time.Duration) float64 {
	pts := s.Between(from, to)
	if len(pts) == 0 {
		return 0
	}
	var sum float64
	for _, p := range pts {
		sum += p.V
	}
	return sum / float64(len(pts))
}

// Quantile returns the q-quantile (0 <= q <= 1) of all sample values using
// nearest-rank on a sorted copy. It returns 0 for an empty series.
func (s *Series) Quantile(q float64) float64 {
	if len(s.points) == 0 {
		return 0
	}
	vals := make([]float64, len(s.points))
	for i, p := range s.points {
		vals[i] = p.V
	}
	return Quantile(vals, q)
}

// Quantile returns the q-quantile of vals by nearest rank. vals is not
// modified. It panics if q is outside [0, 1] and returns 0 for empty input.
func Quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		checkQ(q)
		return 0
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	return nearestRank(sorted, q)
}

// Quantiles returns the q-quantile for each of qs over vals, sorting the
// data once instead of once per quantile. vals is not modified. It panics if
// any q is outside [0, 1]; empty input yields all zeros.
func Quantiles(vals []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(vals) == 0 {
		for _, q := range qs {
			checkQ(q)
		}
		return out
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = nearestRank(sorted, q)
	}
	return out
}

func checkQ(q float64) {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("metrics: Quantile(%v)", q))
	}
}

// nearestRank returns the q-quantile of an already sorted, non-empty slice.
func nearestRank(sorted []float64, q float64) float64 {
	checkQ(q)
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Histogram accumulates observations and answers quantile queries. It stores
// raw values; experiments are bounded so memory is not a concern, and exact
// quantiles keep figure shapes faithful.
type Histogram struct {
	vals   []float64
	sorted bool
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.vals = append(h.vals, v)
	h.sorted = false
}

// Count returns the number of observations.
func (h *Histogram) Count() int { return len(h.vals) }

// Quantile returns the q-quantile of the observations.
func (h *Histogram) Quantile(q float64) float64 {
	h.ensureSorted()
	if len(h.vals) == 0 {
		checkQ(q)
		return 0
	}
	return nearestRank(h.vals, q)
}

// Quantiles returns the q-quantile for each of qs, sorting the observations
// at most once — the call experiments use to pull p50/p90/p99 from one
// histogram.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	h.ensureSorted()
	out := make([]float64, len(qs))
	for i, q := range qs {
		if len(h.vals) == 0 {
			checkQ(q)
			continue
		}
		out[i] = nearestRank(h.vals, q)
	}
	return out
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.vals)
		h.sorted = true
	}
}

// Mean returns the average observation, or 0 if empty.
func (h *Histogram) Mean() float64 {
	if len(h.vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.vals {
		sum += v
	}
	return sum / float64(len(h.vals))
}

// Reset discards all observations.
func (h *Histogram) Reset() {
	h.vals = h.vals[:0]
	h.sorted = false
}

// SeriesRegistry is a named collection of series, handy for experiments that
// emit several curves per figure. (The labeled-metric-family Registry lives
// in registry.go.)
type SeriesRegistry struct {
	series map[string]*Series
	order  []string
}

// NewSeriesRegistry returns an empty series registry.
func NewSeriesRegistry() *SeriesRegistry {
	return &SeriesRegistry{series: make(map[string]*Series)}
}

// Series returns the series with the given name, creating it on first use.
func (r *SeriesRegistry) Series(name string) *Series {
	s, ok := r.series[name]
	if !ok {
		s = NewSeries(name)
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return s
}

// Names returns the series names in creation order.
func (r *SeriesRegistry) Names() []string {
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}

// SuccessRatio tracks a ratio of successes to total attempts within bucketed
// windows of simulated time, producing the success-rate curves in Fig 17/18.
type SuccessRatio struct {
	Bucket  time.Duration
	buckets map[int64]*ratioBucket
}

type ratioBucket struct {
	ok, total int64
}

// NewSuccessRatio returns a tracker with the given bucket width.
func NewSuccessRatio(bucket time.Duration) *SuccessRatio {
	if bucket <= 0 {
		panic("metrics: non-positive bucket")
	}
	return &SuccessRatio{Bucket: bucket, buckets: make(map[int64]*ratioBucket)}
}

// Observe records one attempt at time t.
func (s *SuccessRatio) Observe(t time.Duration, ok bool) {
	k := int64(t / s.Bucket)
	b := s.buckets[k]
	if b == nil {
		b = &ratioBucket{}
		s.buckets[k] = b
	}
	b.total++
	if ok {
		b.ok++
	}
}

// Curve returns one point per bucket (at the bucket start), value = success
// fraction in that bucket, ordered by time. Buckets with no attempts are
// omitted.
func (s *SuccessRatio) Curve() []Point {
	keys := make([]int64, 0, len(s.buckets))
	for k := range s.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Point, 0, len(keys))
	for _, k := range keys {
		b := s.buckets[k]
		out = append(out, Point{
			T: time.Duration(k) * s.Bucket,
			V: float64(b.ok) / float64(b.total),
		})
	}
	return out
}

// Totals returns the overall successes and attempts.
func (s *SuccessRatio) Totals() (ok, total int64) {
	for _, b := range s.buckets {
		ok += b.ok
		total += b.total
	}
	return ok, total
}

// Rate returns the overall success fraction, or 1 if nothing was observed.
func (s *SuccessRatio) Rate() float64 {
	ok, total := s.Totals()
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// MinBucketRate returns the worst per-bucket success fraction, or 1 if
// nothing was observed. Fig 17's "drops below 90%" claims are about this.
func (s *SuccessRatio) MinBucketRate() float64 {
	return s.MinBucketBetween(0, 1<<62)
}

// RateBetween returns the success fraction over buckets starting in
// [from, to], or 1 if none — e.g. the upgrade window only, excluding quiet
// tails that would dilute the figure.
func (s *SuccessRatio) RateBetween(from, to time.Duration) float64 {
	var ok, total int64
	for k, b := range s.buckets {
		t := time.Duration(k) * s.Bucket
		if t >= from && t <= to {
			ok += b.ok
			total += b.total
		}
	}
	if total == 0 {
		return 1
	}
	return float64(ok) / float64(total)
}

// MinBucketBetween returns the worst per-bucket success fraction among
// buckets starting in [from, to], or 1 if none.
func (s *SuccessRatio) MinBucketBetween(from, to time.Duration) float64 {
	min := 1.0
	for k, b := range s.buckets {
		t := time.Duration(k) * s.Bucket
		if t < from || t > to {
			continue
		}
		if r := float64(b.ok) / float64(b.total); r < min {
			min = r
		}
	}
	return min
}
