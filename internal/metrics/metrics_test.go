package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("Value = %d, want 5", c.Value())
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Fatalf("Value = %v, want 2", g.Value())
	}
}

func TestSeriesStats(t *testing.T) {
	s := NewSeries("x")
	for i, v := range []float64{5, 1, 3} {
		s.Record(time.Duration(i)*time.Second, v)
	}
	max, okMax := s.Max()
	min, okMin := s.Min()
	if s.Len() != 3 || !okMax || max != 5 || !okMin || min != 1 || s.Mean() != 3 {
		t.Fatalf("stats: len=%d max=%v min=%v mean=%v", s.Len(), max, min, s.Mean())
	}
	if s.Last().V != 3 {
		t.Fatalf("Last = %v", s.Last())
	}
}

func TestSeriesEmpty(t *testing.T) {
	s := NewSeries("e")
	if v, ok := s.Max(); ok || v != 0 {
		t.Fatalf("empty Max = %v, %v; want 0, false", v, ok)
	}
	if v, ok := s.Min(); ok || v != 0 {
		t.Fatalf("empty Min = %v, %v; want 0, false", v, ok)
	}
	if s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Fatal("empty series stats should be zero")
	}
	if (s.Last() != Point{}) {
		t.Fatal("empty Last should be zero Point")
	}
}

func TestSeriesBetween(t *testing.T) {
	s := NewSeries("b")
	for i := 0; i < 10; i++ {
		s.Record(time.Duration(i)*time.Second, float64(i))
	}
	pts := s.Between(3*time.Second, 5*time.Second)
	if len(pts) != 3 || pts[0].V != 3 || pts[2].V != 5 {
		t.Fatalf("Between = %v", pts)
	}
	if got := s.MeanBetween(3*time.Second, 5*time.Second); got != 4 {
		t.Fatalf("MeanBetween = %v, want 4", got)
	}
	if got := s.MeanBetween(100*time.Second, 200*time.Second); got != 0 {
		t.Fatalf("MeanBetween empty = %v, want 0", got)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.1, 1}, {0.5, 5}, {0.9, 9}, {0.99, 10}, {1, 10},
	}
	for _, c := range cases {
		if got := Quantile(vals, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Quantile(vals, 0.5)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("input mutated: %v", vals)
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestQuantilePropertyWithinBounds(t *testing.T) {
	if err := quick.Check(func(raw []float64, qRaw uint8) bool {
		vals := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		q := float64(qRaw) / 255
		got := Quantile(vals, q)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		return got >= sorted[0] && got <= sorted[len(sorted)-1]
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilesMatchesSingleQuantile(t *testing.T) {
	vals := []float64{9, 1, 4, 7, 2, 8, 3, 10, 5, 6}
	qs := []float64{0, 0.1, 0.5, 0.9, 0.99, 1}
	got := Quantiles(vals, qs...)
	if len(got) != len(qs) {
		t.Fatalf("len = %d, want %d", len(got), len(qs))
	}
	for i, q := range qs {
		if want := Quantile(vals, q); got[i] != want {
			t.Errorf("Quantiles[%v] = %v, want %v", q, got[i], want)
		}
	}
	// Input order preserved; empty input yields zeros.
	if vals[0] != 9 || vals[9] != 6 {
		t.Fatalf("input mutated: %v", vals)
	}
	for _, v := range Quantiles(nil, 0.5, 0.9) {
		if v != 0 {
			t.Fatalf("Quantiles(nil) = %v, want zeros", v)
		}
	}
}

func TestQuantilesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quantiles([]float64{1}, 0.5, -0.1)
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	got := h.Quantiles(0.5, 0.9, 0.99, 1)
	want := []float64{50, 90, 99, 100}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Quantiles = %v, want %v", got, want)
		}
	}
	var empty Histogram
	for _, v := range empty.Quantiles(0.5, 1) {
		if v != 0 {
			t.Fatal("empty histogram quantiles should be zero")
		}
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Quantile(0.99); got != 99 {
		t.Fatalf("p99 = %v, want 99", got)
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("Mean = %v, want 50.5", got)
	}
	// Observing after a quantile query must re-sort.
	h.Observe(1000)
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("max after new observation = %v, want 1000", got)
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestSeriesRegistry(t *testing.T) {
	r := NewSeriesRegistry()
	a := r.Series("a")
	b := r.Series("b")
	if r.Series("a") != a || r.Series("b") != b {
		t.Fatal("Series should be stable per name")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v", names)
	}
}

func TestSuccessRatio(t *testing.T) {
	sr := NewSuccessRatio(time.Second)
	// Bucket 0: 3 ok, 1 fail. Bucket 2: all ok.
	sr.Observe(100*time.Millisecond, true)
	sr.Observe(200*time.Millisecond, true)
	sr.Observe(300*time.Millisecond, true)
	sr.Observe(400*time.Millisecond, false)
	sr.Observe(2500*time.Millisecond, true)
	curve := sr.Curve()
	if len(curve) != 2 {
		t.Fatalf("curve buckets = %d, want 2", len(curve))
	}
	if curve[0].T != 0 || curve[0].V != 0.75 {
		t.Fatalf("bucket0 = %+v", curve[0])
	}
	if curve[1].T != 2*time.Second || curve[1].V != 1 {
		t.Fatalf("bucket2 = %+v", curve[1])
	}
	ok, total := sr.Totals()
	if ok != 4 || total != 5 {
		t.Fatalf("Totals = %d/%d", ok, total)
	}
	if got := sr.Rate(); got != 0.8 {
		t.Fatalf("Rate = %v", got)
	}
	if got := sr.MinBucketRate(); got != 0.75 {
		t.Fatalf("MinBucketRate = %v", got)
	}
}

func TestSuccessRatioEmpty(t *testing.T) {
	sr := NewSuccessRatio(time.Second)
	if sr.Rate() != 1 || sr.MinBucketRate() != 1 {
		t.Fatal("empty tracker should report perfect rate")
	}
	if len(sr.Curve()) != 0 {
		t.Fatal("empty tracker should have empty curve")
	}
}

func TestSuccessRatioRejectsBadBucket(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSuccessRatio(0)
}
