// Labeled metric families. A Registry holds counters, gauges, and
// fixed-bucket histograms keyed by (family name, label values) — the
// aggregate layer that the per-experiment Series/SuccessRatio types do not
// cover. The registry is built for the deterministic simulation: it is
// unsynchronized (the event loop is single-threaded), iteration order never
// leaks (exporters sort), and a nil *Registry is a valid no-op sink so
// instrumented packages pay nothing when monitoring is off.
package metrics

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the labeled metric family types.
type Kind int

// Family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus type name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// FixedHistogram counts observations into fixed upper-bound buckets
// (Prometheus-style cumulative "le" semantics on export). Unlike the
// raw-value Histogram, its memory is bounded by the bucket count, which is
// what an always-on monitoring plane needs.
type FixedHistogram struct {
	bounds []float64 // ascending upper bounds; an implicit +Inf follows
	counts []uint64  // len(bounds)+1, last is the +Inf bucket
	count  uint64
	sum    float64
}

// NewFixedHistogram returns a histogram with the given ascending upper
// bounds. It panics on unsorted or duplicate bounds. nil bounds yield a
// single +Inf bucket (count/sum only).
func NewFixedHistogram(bounds []float64) *FixedHistogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending: %v", bounds))
		}
	}
	h := &FixedHistogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]uint64, len(h.bounds)+1)
	return h
}

// Observe records one value.
func (h *FixedHistogram) Observe(v float64) {
	if h.counts == nil {
		h.counts = make([]uint64, len(h.bounds)+1)
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *FixedHistogram) Count() uint64 { return h.count }

// Sum returns the sum of observed values.
func (h *FixedHistogram) Sum() float64 { return h.sum }

// Bounds returns the configured upper bounds (without the implicit +Inf).
func (h *FixedHistogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// Cumulative returns the cumulative count per bound, ending with the +Inf
// bucket (== Count()).
func (h *FixedHistogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.bounds)+1)
	var acc uint64
	for i := range out {
		if i < len(h.counts) {
			acc += h.counts[i]
		}
		out[i] = acc
	}
	return out
}

// DefaultLatencyBuckets suit request latencies in milliseconds, spanning
// intra-rack hops to cross-ocean retries.
var DefaultLatencyBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// family is one named metric with a fixed kind and label-key schema.
type family struct {
	name    string
	help    string
	kind    Kind
	keys    []string
	buckets []float64 // histogram bounds, fixed at first use
	cells   map[string]*cell
}

// cell is one (family, label values) instance.
type cell struct {
	labels  []string // values aligned with family.keys
	counter Counter
	gauge   Gauge
	hist    *FixedHistogram
}

// Registry is a collection of labeled metric families with deterministic
// exporters (see expo.go). The zero value is not usable; a nil *Registry is
// a valid no-op sink: all lookups return shared discard instances.
type Registry struct {
	families map[string]*family
}

// NewRegistry returns an empty labeled-metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Shared sinks handed out by a nil registry so disabled instrumentation
// still returns usable objects.
var (
	discardCounter Counter
	discardGauge   Gauge
	discardHist    = NewFixedHistogram(nil)
)

// Describe sets a family's help text (shown as # HELP in the exposition).
// It may be called before or after the family's first sample and is
// idempotent.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	f := r.families[name]
	if f == nil {
		f = &family{name: name, kind: KindCounter, cells: make(map[string]*cell)}
		// kind is provisional until the first typed lookup fixes it.
		f.kind = -1
		r.families[name] = f
	}
	f.help = help
}

// Counter returns the counter cell for the family name and the alternating
// key/value label pairs, creating family and cell on first use. A nil
// registry returns a shared discard counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return &discardCounter
	}
	return &r.cell(name, KindCounter, nil, labels).counter
}

// Gauge returns the gauge cell for the family name and label pairs. A nil
// registry returns a shared discard gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return &discardGauge
	}
	return &r.cell(name, KindGauge, nil, labels).gauge
}

// Histogram returns the fixed-bucket histogram cell for the family name and
// label pairs. The bounds are fixed by the family's first lookup; later
// calls may pass nil. A nil registry returns a shared discard histogram.
func (r *Registry) Histogram(name string, bounds []float64, labels ...string) *FixedHistogram {
	if r == nil {
		return discardHist
	}
	c := r.cell(name, KindHistogram, bounds, labels)
	return c.hist
}

// cell resolves (and lazily creates) the family and cell, enforcing a
// consistent kind and label schema per family.
func (r *Registry) cell(name string, kind Kind, bounds []float64, labels []string) *cell {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("metrics: %s: odd label list %v", name, labels))
	}
	keys := make([]string, 0, len(labels)/2)
	vals := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		keys = append(keys, labels[i])
		vals = append(vals, labels[i+1])
	}
	f := r.families[name]
	if f == nil || f.kind == -1 {
		if f == nil {
			f = &family{name: name, cells: make(map[string]*cell)}
			r.families[name] = f
		}
		f.kind = kind
		f.keys = keys
		if kind == KindHistogram {
			if bounds == nil {
				bounds = DefaultLatencyBuckets
			}
			f.buckets = append([]float64(nil), bounds...)
		}
	} else {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %v, used as %v", name, f.kind, kind))
		}
		if len(f.keys) != len(keys) {
			panic(fmt.Sprintf("metrics: %s label keys %v, used with %v", name, f.keys, keys))
		}
		for i := range keys {
			if f.keys[i] != keys[i] {
				panic(fmt.Sprintf("metrics: %s label keys %v, used with %v", name, f.keys, keys))
			}
		}
	}
	key := strings.Join(vals, "\xff")
	c := f.cells[key]
	if c == nil {
		c = &cell{labels: vals}
		if f.kind == KindHistogram {
			c.hist = NewFixedHistogram(f.buckets)
		}
		f.cells[key] = c
	}
	return c
}

// sortedFamilies returns the families ordered by name; exporters and tests
// iterate through this so map order never leaks.
func (r *Registry) sortedFamilies() []*family {
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		if f.kind == -1 {
			continue // Describe()d but never sampled
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// sortedCells returns a family's cells ordered by label values.
func (f *family) sortedCells() []*cell {
	keys := make([]string, 0, len(f.cells))
	for k := range f.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*cell, len(keys))
	for i, k := range keys {
		out[i] = f.cells[k]
	}
	return out
}

// Len returns the number of sampled families (for tests).
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for _, f := range r.families {
		if f.kind != -1 {
			n++
		}
	}
	return n
}
