package metrics

import "testing"

func TestLabeledRegistryBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total", "app", "kv", "outcome", "ok")
	c.Inc()
	c.Inc()
	if r.Counter("req_total", "app", "kv", "outcome", "ok") != c {
		t.Fatal("same labels should return the same cell")
	}
	c2 := r.Counter("req_total", "app", "kv", "outcome", "error")
	if c2 == c {
		t.Fatal("different labels should return a different cell")
	}
	if c.Value() != 2 || c2.Value() != 0 {
		t.Fatalf("values = %d, %d", c.Value(), c2.Value())
	}

	g := r.Gauge("replicas", "app", "kv")
	g.Set(3)
	if got := r.Gauge("replicas", "app", "kv").Value(); got != 3 {
		t.Fatalf("gauge = %v", got)
	}

	h := r.Histogram("latency_ms", []float64{1, 10, 100}, "app", "kv")
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	if h.Count() != 4 || h.Sum() != 555.5 {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
	cum := h.Cumulative()
	want := []uint64{1, 2, 3, 4}
	for i := range want {
		if cum[i] != want[i] {
			t.Fatalf("Cumulative = %v, want %v", cum, want)
		}
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
}

func TestLabeledRegistryHistogramBoundary(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []float64{10})
	// "le" semantics: a value equal to the bound lands in that bucket, and
	// the bounds are fixed by the first lookup — later calls may pass nil.
	h := r.Histogram("h", nil)
	h.Observe(10)
	if cum := h.Cumulative(); cum[0] != 1 {
		t.Fatalf("Cumulative = %v; 10 should be <= le=10", cum)
	}
}

func TestNilRegistryDiscards(t *testing.T) {
	var r *Registry
	r.Counter("c").Inc()
	r.Gauge("g").Set(1)
	r.Histogram("h", nil).Observe(1)
	r.Describe("c", "help")
	if r.Len() != 0 {
		t.Fatal("nil registry Len should be 0")
	}
	if err := r.WritePrometheus(discardWriter{}); err != nil {
		t.Fatal(err)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

func TestLabeledRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m")
	r.Gauge("m")
}

func TestLabeledRegistryKeyMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "app", "a")
	r.Counter("m", "shard", "s")
}

func TestLabeledRegistryOddLabelsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r := NewRegistry()
	r.Counter("m", "app")
}

func TestFixedHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFixedHistogram([]float64{10, 1})
}

func TestDescribeBeforeAndAfterUse(t *testing.T) {
	r := NewRegistry()
	r.Describe("a", "described first")
	r.Counter("a", "k", "v").Inc()
	r.Counter("b").Inc()
	r.Describe("b", "described after")
	fams := r.sortedFamilies()
	if len(fams) != 2 || fams[0].help != "described first" || fams[1].help != "described after" {
		t.Fatalf("help text lost: %+v", fams)
	}
	// A described-but-never-sampled family must not appear in exports.
	r.Describe("ghost", "never sampled")
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
}
