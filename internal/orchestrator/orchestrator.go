// Package orchestrator implements the SM orchestrator of §3.2 — the
// control-plane component ("mini-SM", §6.1) that manages one application
// partition:
//
//   - It discovers application-server liveness by watching the ephemeral
//     nodes the SM library creates in the coordination store.
//   - It periodically collects per-shard load from servers by direct RPC.
//   - It invokes the allocator — in emergency mode when servers die, in
//     periodic mode on a timer — and executes the resulting replica moves.
//   - It performs graceful primary-replica migration with the 5-step
//     protocol of §4.3, so that no client request is dropped.
//   - It publishes every new shard map version to the service discovery
//     system and persists per-server assignments to the coordination store
//     so servers can restore them at start-up without the control plane.
//   - It exposes the drain operation the TaskController uses to empty a
//     container before a negotiable lifecycle operation (§4.1), and role
//     demotion ahead of non-negotiable maintenance (§4.2).
package orchestrator

import (
	"fmt"
	"sort"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/appserver"
	"shardmanager/internal/coord"
	"shardmanager/internal/discovery"
	"shardmanager/internal/metrics"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
)

// Kernel-profiler attribution labels for the control plane's timers.
var (
	lbLoadCollect   = sim.LabelFor("orchestrator", "load_collect")
	lbAllocate      = sim.LabelFor("orchestrator", "allocate")
	lbFailoverGrace = sim.LabelFor("orchestrator", "failover_grace")
	lbLoadApply     = sim.LabelFor("orchestrator", "load_apply")
	lbMigrationLoad = sim.LabelFor("orchestrator", "migration_load")
	lbPublishMargin = sim.LabelFor("orchestrator", "publish_margin")
	lbDrainCheck    = sim.LabelFor("orchestrator", "drain_check")
)

// ShardConfig declares one shard of the application.
type ShardConfig struct {
	ID       shard.ID
	Replicas int
	// RegionPreference pins the shard's preferred region (§5.1 soft
	// goal 1); empty means none.
	RegionPreference topology.RegionID
	PreferenceWeight float64
	// DefaultLoad seeds the shard's load before the first collection.
	DefaultLoad topology.Capacity
}

// Config configures an orchestrator for one application partition.
type Config struct {
	App      shard.AppID
	Strategy shard.ReplicationStrategy
	Shards   []ShardConfig
	// Policy drives the allocator.
	Policy allocator.Policy
	// ServerCapacity is the per-server capacity used for balancing.
	ServerCapacity topology.Capacity
	// HomeRegion is where this mini-SM runs (RPC latency origin).
	HomeRegion topology.RegionID
	// GracefulMigration enables the §4.3 protocol for primary moves;
	// disabling it is the "no graceful migration" ablation of Fig 17.
	GracefulMigration bool
	// LoadInterval is the load-collection period (default 10s).
	LoadInterval time.Duration
	// AllocInterval is the periodic-allocation period (default 30s).
	AllocInterval time.Duration
	// FailoverGrace is how long a server must stay dead before its
	// shards are reassigned (default 30s). Quick in-place restarts stay
	// under it.
	FailoverGrace time.Duration
	// PublishMargin is the wait between publishing a new map and
	// dropping the old primary, covering map propagation (default 3s).
	PublishMargin time.Duration
	// MaxConcurrentMigrations caps in-flight replica migrations (§5.1
	// hard constraint "system stability"; default 20).
	MaxConcurrentMigrations int
	// ShardLoadTime is how long the orchestrator waits after
	// prepare_add_shard for the new replica to finish loading state
	// before telling the old one to forward. Should be >= the servers'
	// LoadTime; the old primary serves clients throughout.
	ShardLoadTime time.Duration
}

func (c *Config) fillDefaults() {
	if c.LoadInterval <= 0 {
		c.LoadInterval = 10 * time.Second
	}
	if c.AllocInterval <= 0 {
		c.AllocInterval = 30 * time.Second
	}
	if c.FailoverGrace <= 0 {
		c.FailoverGrace = 30 * time.Second
	}
	if c.PublishMargin <= 0 {
		c.PublishMargin = 3 * time.Second
	}
	if c.MaxConcurrentMigrations <= 0 {
		c.MaxConcurrentMigrations = 20
	}
}

type serverState struct {
	id       shard.ServerID
	machine  topology.MachineID
	region   topology.RegionID
	domains  map[string]string
	alive    bool
	draining bool
	// deadSince is when the server was last seen dying.
	deadSince time.Duration
	// load is the latest per-shard load report.
	load map[shard.ID]topology.Capacity
}

type replicaSlot struct {
	server shard.ServerID
	role   shard.Role
}

type shardState struct {
	cfg   ShardConfig
	slots []replicaSlot
	// migrating marks an in-flight migration touching this shard.
	migrating bool
}

type drainRequest struct {
	server shard.ServerID
	onDone func()
}

// Hooks let an external monitor observe control-plane transitions. Unlike a
// discovery subscription, hooks fire synchronously and draw no randomness,
// so attaching them (healthmon does) cannot perturb a seeded run. Any field
// may be nil.
type Hooks struct {
	// MigrationStarted fires when a queued migration begins executing.
	MigrationStarted func(s shard.ID, from, to shard.ServerID, graceful bool)
	// MigrationFinished fires when a migration completes or fails.
	MigrationFinished func(s shard.ID, ok bool)
	// MigrationStep fires when one shard-lifecycle RPC (prepare_add_shard,
	// prepare_drop_shard, add_shard, drop_shard) completes, with status "ok"
	// or "failed".
	MigrationStep func(s shard.ID, step string, server shard.ServerID, status string)
	// RoleChanged fires when the orchestrator issues a change_role RPC.
	RoleChanged func(s shard.ID, server shard.ServerID, from, to shard.Role)
	// MapPublished fires on every shard-map publication.
	MapPublished func(version int64, entries int)
	// MapSnapshot fires on every publication with the full map about to be
	// handed to discovery. The callback must treat it as read-only and not
	// retain it past the call (clone what it needs).
	MapSnapshot func(m *shard.Map)
}

// Orchestrator is one mini-SM control-plane instance.
type Orchestrator struct {
	cfg   Config
	loop  *sim.Loop
	store *coord.Store
	disc  *discovery.Service
	net   *rpcnet.Network
	dir   *appserver.Directory
	fleet *topology.Fleet
	alloc *allocator.Allocator
	paths appserver.CoordPaths

	servers map[shard.ServerID]*serverState
	shards  map[shard.ID]*shardState
	order   []shard.ID // deterministic shard iteration
	version int64

	migrationQueue []migration
	inFlight       int
	curAlloc       trace.SpanID // open "allocate" span, parent of spawned work

	draining        map[shard.ServerID]*drainRequest
	drainCheckArmed bool
	started         bool
	tickers         []*sim.Ticker
	hooks           []Hooks

	// Stats.
	ShardMoves      metrics.Counter
	EmergencyRuns   metrics.Counter
	PeriodicRuns    metrics.Counter
	FailedRPCs      metrics.Counter
	MovesSeries     *metrics.Series // shard moves applied, per allocation
	ViolationSeries *metrics.Series
}

type migration struct {
	shard    shard.ID
	slot     int
	from, to shard.ServerID
	graceful bool
	// span covers the whole migration from enqueue to finish; the per-step
	// RPCs (prepare_add_shard, add_shard, drop_shard, ...) are its children.
	span trace.SpanID
}

// New creates an orchestrator. Call Start to begin managing.
func New(loop *sim.Loop, store *coord.Store, disc *discovery.Service,
	net *rpcnet.Network, dir *appserver.Directory, fleet *topology.Fleet,
	cfg Config, seed uint64) *Orchestrator {
	cfg.fillDefaults()
	if cfg.HomeRegion == "" {
		cfg.HomeRegion = fleet.Regions()[0]
	}
	o := &Orchestrator{
		cfg:             cfg,
		loop:            loop,
		store:           store,
		disc:            disc,
		net:             net,
		dir:             dir,
		fleet:           fleet,
		alloc:           allocator.New(cfg.Policy, seed),
		paths:           appserver.DefaultPaths(cfg.App),
		servers:         make(map[shard.ServerID]*serverState),
		shards:          make(map[shard.ID]*shardState),
		draining:        make(map[shard.ServerID]*drainRequest),
		MovesSeries:     metrics.NewSeries("shard_moves"),
		ViolationSeries: metrics.NewSeries("violations"),
	}
	for _, sc := range cfg.Shards {
		if sc.Replicas <= 0 {
			sc.Replicas = 1
		}
		if _, dup := o.shards[sc.ID]; dup {
			panic(fmt.Sprintf("orchestrator: duplicate shard %q", sc.ID))
		}
		o.shards[sc.ID] = &shardState{cfg: sc}
		o.order = append(o.order, sc.ID)
	}
	return o
}

// SetHooks installs the observer hooks, replacing any previously attached
// set (zero value clears them).
func (o *Orchestrator) SetHooks(h Hooks) { o.hooks = []Hooks{h} }

// AddHooks attaches an additional set of observer hooks without disturbing
// ones already installed; all attached hooks fire in attachment order. The
// runtime auditor uses this to coexist with healthmon.
func (o *Orchestrator) AddHooks(h Hooks) { o.hooks = append(o.hooks, h) }

// App returns the managed application ID.
func (o *Orchestrator) App() shard.AppID { return o.cfg.App }

// ServerDomains returns the failure-domain labels (region/datacenter/rack)
// last resolved for the server, or nil if unknown. Domains persist after a
// server dies so failures can still be attributed to the right domain.
func (o *Orchestrator) ServerDomains(id shard.ServerID) map[string]string {
	if st := o.servers[id]; st != nil {
		return st.domains
	}
	return nil
}

// Start begins membership watching, load collection, and periodic
// allocation.
func (o *Orchestrator) Start() {
	if o.started {
		return
	}
	o.started = true
	mustEnsure(o.store, o.paths.ServersPath)
	mustEnsure(o.store, o.paths.AssignPath)
	o.watchMembership()
	o.syncMembership()
	o.tickers = append(o.tickers,
		o.loop.EveryL(o.cfg.LoadInterval, lbLoadCollect, o.collectLoads),
		o.loop.EveryL(o.cfg.AllocInterval, lbAllocate, func() { o.allocate(allocator.Periodic) }))
	// Initial placement as soon as servers appear.
	o.loop.AfterL(time.Second, lbAllocate, func() { o.allocate(allocator.Periodic) })
}

// Stop halts the control plane: no more load collection, allocations, or
// migrations. Application clients keep using the last published shard map
// and servers keep serving — §6.2's guarantee that an SM control-plane
// outage does not take applications down; "new shard assignments would not
// be generated". Start resumes.
func (o *Orchestrator) Stop() {
	if !o.started {
		return
	}
	o.started = false
	for _, t := range o.tickers {
		t.Stop()
	}
	o.tickers = nil
	o.migrationQueue = nil
}

func mustEnsure(store *coord.Store, path string) {
	if !store.Exists(path) {
		if err := store.CreateAll(path, nil, nil); err != nil {
			panic(fmt.Sprintf("orchestrator: ensure %s: %v", path, err))
		}
	}
}

// --- membership ---

func (o *Orchestrator) watchMembership() {
	err := o.store.WatchChildren(o.paths.ServersPath, func(coord.Event) {
		o.syncMembership()
		o.watchMembership() // re-arm the one-shot watch
	})
	if err != nil {
		panic(fmt.Sprintf("orchestrator: watch: %v", err))
	}
}

// syncMembership reconciles the coordination store's liveness nodes with
// the orchestrator's server table.
func (o *Orchestrator) syncMembership() {
	kids, err := o.store.Children(o.paths.ServersPath)
	if err != nil {
		return
	}
	seen := make(map[shard.ServerID]bool, len(kids))
	for _, kid := range kids {
		data, _, err := o.store.Get(o.paths.ServersPath + "/" + kid)
		if err != nil {
			continue
		}
		id := unescapeID(kid)
		seen[id] = true
		st := o.servers[id]
		if st == nil {
			st = &serverState{id: id, load: make(map[shard.ID]topology.Capacity)}
			o.servers[id] = st
		}
		if !st.alive {
			st.alive = true
			o.resolveMachine(st, string(data))
		}
	}
	anyDied := false
	for id, st := range o.servers {
		if !seen[id] && st.alive {
			st.alive = false
			st.deadSince = o.loop.Now()
			anyDied = true
			o.scheduleFailover(id, st.deadSince)
		}
	}
	if anyDied && o.started {
		// Fail the primary role over immediately; replica placement
		// itself waits for the failover grace.
		o.reconcileAllRoles()
	}
}

func unescapeID(kid string) shard.ServerID {
	b := []byte(kid)
	for i := range b {
		if b[i] == '~' {
			b[i] = '/'
		}
	}
	return shard.ServerID(b)
}

// resolveMachine fills the server's placement metadata from its liveness
// node payload (the machine ID written by the SM library's host).
func (o *Orchestrator) resolveMachine(st *serverState, payload string) {
	m := o.fleet.Machine(topology.MachineID(payload))
	if m == nil {
		// Fall back: payload may be a region name (older hosts).
		st.region = topology.RegionID(payload)
		st.domains = map[string]string{
			topology.LevelRegion.String():     payload,
			topology.LevelDatacenter.String(): payload + "/dc?",
			topology.LevelRack.String():       payload + "/dc?/rack?",
		}
		return
	}
	st.machine = m.ID
	st.region = m.Region
	st.domains = map[string]string{
		topology.LevelRegion.String():     m.Domain(topology.LevelRegion),
		topology.LevelDatacenter.String(): m.Domain(topology.LevelDatacenter),
		topology.LevelRack.String():       m.Domain(topology.LevelRack),
	}
}

// scheduleFailover reassigns the dead server's shards if it is still dead
// after the grace period; quick in-place restarts never trigger it.
func (o *Orchestrator) scheduleFailover(id shard.ServerID, at time.Duration) {
	o.loop.AfterL(o.cfg.FailoverGrace, lbFailoverGrace, func() {
		st := o.servers[id]
		if st == nil || st.alive || st.deadSince != at {
			return
		}
		if o.hasReplicasOn(id) {
			o.allocate(allocator.Emergency)
		}
	})
}

func (o *Orchestrator) hasReplicasOn(id shard.ServerID) bool {
	for _, ss := range o.shards {
		for _, slot := range ss.slots {
			if slot.server == id {
				return true
			}
		}
	}
	return false
}

// --- load collection ---

// sortedServerIDs returns the server table's keys in sorted order so event
// scheduling is deterministic (map iteration order varies per process).
func (o *Orchestrator) sortedServerIDs() []shard.ServerID {
	ids := make([]shard.ServerID, 0, len(o.servers))
	for id := range o.servers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (o *Orchestrator) collectLoads() {
	for _, id := range o.sortedServerIDs() {
		st := o.servers[id]
		if !st.alive {
			continue
		}
		id, st := id, st
		o.net.Call(o.cfg.HomeRegion, rpcnet.Endpoint(id), func() {
			srv := o.dir.Lookup(id)
			if srv == nil {
				return
			}
			report := srv.LoadReport()
			o.loop.AfterL(0, lbLoadApply, func() {
				for sid, load := range report {
					st.load[sid] = load
				}
			})
		}, nil, func() {
			o.failedRPC()
		})
	}
}

// shardLoad returns the shard's most recent measured load (max across
// reporting servers) or its configured default.
func (o *Orchestrator) shardLoad(ss *shardState) topology.Capacity {
	var latest topology.Capacity
	for _, slot := range ss.slots {
		if st := o.servers[slot.server]; st != nil {
			if l, ok := st.load[ss.cfg.ID]; ok {
				latest = l
			}
		}
	}
	if latest == nil {
		latest = ss.cfg.DefaultLoad
	}
	if latest == nil {
		latest = topology.Capacity{topology.ResourceShardCount: 1}
	}
	return latest
}

// --- allocation ---

// allocate runs the allocator in the given mode and executes the diff.
func (o *Orchestrator) allocate(mode allocator.Mode) {
	if !o.started {
		return
	}
	// While a batch of migrations is still queued, a new periodic run
	// would just recompute the same plan (migrating shards are skipped);
	// wait for the queue to drain. Emergencies always run.
	if mode == allocator.Periodic && len(o.migrationQueue) > 0 {
		return
	}
	in := o.buildInput()
	if len(in.Servers) == 0 {
		return
	}
	tr := o.loop.Tracer()
	if tr.Enabled() {
		o.curAlloc = tr.StartSpan("orchestrator", "allocate", 0,
			trace.String("app", string(o.cfg.App)),
			trace.String("mode", mode.String()))
	}
	res := o.alloc.Run(in, mode)
	if mode == allocator.Emergency {
		o.EmergencyRuns.Inc()
	} else {
		o.PeriodicRuns.Inc()
	}
	o.ViolationSeries.Record(o.loop.Now(), float64(res.Final.Total()))
	if mr := o.loop.Metrics(); mr != nil {
		app := string(o.cfg.App)
		mr.Counter("orchestrator_allocations_total", "app", app, "mode", mode.String()).Inc()
		mr.Counter("orchestrator_moves_planned_total", "app", app).Add(int64(len(res.Moves)))
		mr.Gauge("orchestrator_violations", "app", app).Set(float64(res.Final.Total()))
	}
	o.executeDiff(res)
	if tr.Enabled() {
		tr.EndSpan(o.curAlloc,
			trace.Int("moves", len(res.Moves)),
			trace.Int("violations", res.Final.Total()))
	}
	o.curAlloc = 0
}

func (o *Orchestrator) buildInput() allocator.Input {
	in := allocator.Input{Current: make(map[shard.ID][]shard.ServerID, len(o.shards))}
	now := o.loop.Now()
	for _, id := range o.sortedServerIDs() {
		st := o.servers[id]
		if st.domains == nil {
			continue
		}
		// A server dead for less than the failover grace (e.g. a quick
		// in-place restart) keeps its replicas: treating it as dead
		// would make every planned restart churn the whole placement.
		alive := st.alive || now-st.deadSince < o.cfg.FailoverGrace
		in.Servers = append(in.Servers, allocator.ServerInfo{
			ID:       id,
			Domains:  st.domains,
			Capacity: o.cfg.ServerCapacity,
			Alive:    alive,
			Draining: st.draining,
		})
	}
	for _, id := range o.order {
		ss := o.shards[id]
		in.Shards = append(in.Shards, allocator.ShardSpec{
			ID:               id,
			Replicas:         ss.cfg.Replicas,
			Load:             o.shardLoad(ss),
			RegionPreference: ss.cfg.RegionPreference,
			PreferenceWeight: ss.cfg.PreferenceWeight,
		})
		cur := make([]shard.ServerID, len(ss.slots))
		for i, slot := range ss.slots {
			cur[i] = slot.server
		}
		in.Current[id] = cur
	}
	return in
}

// executeDiff turns allocator moves into RPC sequences.
func (o *Orchestrator) executeDiff(res *allocator.Result) {
	changed := false
	for _, mv := range res.Moves {
		ss := o.shards[mv.Shard]
		if ss == nil || ss.migrating {
			continue
		}
		switch mv.Kind() {
		case "add":
			// Reuse an empty slot or one whose server is dead (the
			// replica this add replaces); append only for genuine
			// replica-count growth.
			slot := o.findSlot(ss, "")
			if slot == -1 {
				slot = o.findDeadSlot(ss)
			}
			if slot == -1 {
				ss.slots = append(ss.slots, replicaSlot{})
				slot = len(ss.slots) - 1
			}
			role := o.roleForNewReplica(ss)
			ss.slots[slot] = replicaSlot{server: mv.To, role: role}
			o.rpcAddShard(mv.To, mv.Shard, role)
			o.ShardMoves.Inc()
			changed = true
		case "drop":
			slot := o.findSlot(ss, mv.From)
			if slot == -1 {
				continue
			}
			ss.slots = append(ss.slots[:slot], ss.slots[slot+1:]...)
			o.rpcDropShard(mv.From, mv.Shard)
			o.ShardMoves.Inc()
			changed = true
		case "move":
			slot := o.findSlot(ss, mv.From)
			if slot == -1 {
				continue
			}
			graceful := o.cfg.GracefulMigration && ss.slots[slot].role == shard.RolePrimary
			o.enqueueMigration(migration{
				shard:    mv.Shard,
				slot:     slot,
				from:     mv.From,
				to:       mv.To,
				graceful: graceful,
			})
		}
	}
	for _, id := range o.order {
		if o.reconcileRoles(o.shards[id]) {
			changed = true
		}
	}
	if changed {
		o.publish()
	}
	o.MovesSeries.Record(o.loop.Now(), float64(len(res.Moves)))
	o.pumpMigrations()
}

// findSlot returns the index of the slot on server (or the first empty slot
// if server is ""), or -1.
func (o *Orchestrator) findSlot(ss *shardState, server shard.ServerID) int {
	for i, slot := range ss.slots {
		if slot.server == server {
			return i
		}
	}
	return -1
}

// findDeadSlot returns the index of the first slot held by a dead server,
// or -1.
func (o *Orchestrator) findDeadSlot(ss *shardState) int {
	for i, slot := range ss.slots {
		if slot.server == "" {
			continue
		}
		if st := o.servers[slot.server]; st == nil || !st.alive {
			return i
		}
	}
	return -1
}

// roleForNewReplica picks the role for a newly added replica under the
// app's replication strategy.
func (o *Orchestrator) roleForNewReplica(ss *shardState) shard.Role {
	switch o.cfg.Strategy {
	case shard.PrimaryOnly:
		return shard.RolePrimary
	case shard.SecondaryOnly:
		return shard.RoleSecondary
	default:
		for _, slot := range ss.slots {
			if slot.role == shard.RolePrimary && slot.server != "" {
				if st := o.servers[slot.server]; st != nil && st.alive {
					return shard.RoleSecondary
				}
			}
		}
		return shard.RolePrimary
	}
}

// reconcileRoles enforces exactly one primary per shard for primary-bearing
// strategies: primaries on dead servers are demoted in place (no RPC — the
// server is gone; if it restarts it reads the corrected role from the
// persisted assignment), surplus alive primaries are demoted by RPC, and if
// no alive primary remains a secondary is promoted (automatic failover of
// the primary role). Returns true if anything changed.
func (o *Orchestrator) reconcileRoles(ss *shardState) bool {
	if o.cfg.Strategy == shard.SecondaryOnly || ss.migrating {
		return false
	}
	changed := false
	alivePrimary := -1
	for i := range ss.slots {
		slot := &ss.slots[i]
		if slot.server == "" || slot.role != shard.RolePrimary {
			continue
		}
		st := o.servers[slot.server]
		if st == nil || !st.alive {
			slot.role = shard.RoleSecondary
			changed = true
			continue
		}
		if alivePrimary == -1 {
			alivePrimary = i
		} else {
			slot.role = shard.RoleSecondary
			o.rpcChangeRole(slot.server, ss.cfg.ID, shard.RolePrimary, shard.RoleSecondary)
			changed = true
		}
	}
	if alivePrimary == -1 {
		for i := range ss.slots {
			slot := &ss.slots[i]
			if slot.server == "" || slot.role != shard.RoleSecondary {
				continue
			}
			st := o.servers[slot.server]
			if st != nil && st.alive {
				slot.role = shard.RolePrimary
				o.rpcChangeRole(slot.server, ss.cfg.ID, shard.RoleSecondary, shard.RolePrimary)
				changed = true
				break
			}
		}
	}
	return changed
}

// reconcileAllRoles repairs role invariants across every shard and
// publishes if anything changed; invoked on membership changes so primary
// failover does not wait for the next allocation.
func (o *Orchestrator) reconcileAllRoles() {
	changed := false
	for _, id := range o.order {
		if o.reconcileRoles(o.shards[id]) {
			changed = true
		}
	}
	if changed {
		o.publish()
	}
}

// --- migrations ---

func (o *Orchestrator) enqueueMigration(m migration) {
	ss := o.shards[m.shard]
	ss.migrating = true
	if tr := o.loop.Tracer(); tr.Enabled() {
		// The span opens at enqueue so queueing delay behind the
		// concurrency cap is part of the migration's measured latency.
		m.span = tr.StartSpan("orchestrator", "migration", o.curAlloc,
			trace.String("shard", string(m.shard)),
			trace.String("from", string(m.from)),
			trace.String("to", string(m.to)),
			trace.Bool("graceful", m.graceful))
	}
	o.migrationQueue = append(o.migrationQueue, m)
}

// pumpMigrations starts queued migrations up to the concurrency cap.
func (o *Orchestrator) pumpMigrations() {
	for o.inFlight < o.cfg.MaxConcurrentMigrations && len(o.migrationQueue) > 0 {
		m := o.migrationQueue[0]
		o.migrationQueue = o.migrationQueue[1:]
		o.inFlight++
		o.runMigration(m)
	}
}

func (o *Orchestrator) finishMigration(m migration, ok bool) {
	if tr := o.loop.Tracer(); tr.Enabled() {
		tr.EndSpan(m.span, trace.Bool("ok", ok))
	}
	o.inFlight--
	if mr := o.loop.Metrics(); mr != nil {
		outcome := "ok"
		if !ok {
			outcome = "failed"
		}
		mr.Counter("orchestrator_migrations_total", "app", string(o.cfg.App), "outcome", outcome).Inc()
		mr.Gauge("orchestrator_migrations_inflight", "app", string(o.cfg.App)).Set(float64(o.inFlight))
	}
	for _, h := range o.hooks {
		if h.MigrationFinished != nil {
			h.MigrationFinished(m.shard, ok)
		}
	}
	ss := o.shards[m.shard]
	ss.migrating = false
	if ok {
		o.ShardMoves.Inc()
	}
	o.pumpMigrations()
	if !ok {
		// The shard may be under-replicated; let emergency repair it.
		o.allocate(allocator.Emergency)
		return
	}
	o.checkDrainsDone()
}

// runMigration executes one replica move. Graceful primary migration uses
// the 5-step protocol of §4.3; other moves use make-before-break
// (add-then-drop) for secondaries, which never reduces read availability,
// and break-before-make for non-graceful primary moves (the Fig 17
// ablation), which opens a visible gap.
func (o *Orchestrator) runMigration(m migration) {
	ss := o.shards[m.shard]
	slot := &ss.slots[m.slot]
	role := slot.role
	if tr := o.loop.Tracer(); tr.Enabled() {
		tr.Event("orchestrator", "migration_start", m.span,
			trace.String("shard", string(m.shard)),
			trace.String("role", role.String()))
	}
	o.loop.Metrics().Gauge("orchestrator_migrations_inflight",
		"app", string(o.cfg.App)).Set(float64(o.inFlight))
	for _, h := range o.hooks {
		if h.MigrationStarted != nil {
			h.MigrationStarted(m.shard, m.from, m.to, m.graceful)
		}
	}
	fail := func() {
		o.failedRPC()
		o.finishMigration(m, false)
	}
	commit := func() {
		slot.server = m.to
		o.publish()
	}
	switch {
	case m.graceful && role == shard.RolePrimary:
		// Step 1: prepare_add on the new primary, then give it time to
		// load the shard's state; the old primary keeps serving.
		o.callStep(m.span, "prepare_add_shard", m.shard, m.to, func(srv *appserver.Server) {
			srv.PrepareAddShard(m.shard, m.from, shard.RolePrimary)
		}, func() {
			o.loop.AfterL(o.cfg.ShardLoadTime, lbMigrationLoad, func() { o.gracefulStep2(m, commit, fail) })
		}, fail)
	case role == shard.RoleSecondary:
		// Make-before-break: add the new secondary, then drop the old.
		o.callStep(m.span, "add_shard", m.shard, m.to, func(srv *appserver.Server) {
			srv.AddShard(m.shard, shard.RoleSecondary)
		}, func() {
			commit()
			o.loop.AfterL(o.cfg.PublishMargin, lbPublishMargin, func() {
				o.callStep(m.span, "drop_shard", m.shard, m.from, func(srv *appserver.Server) {
					srv.DropShard(m.shard)
				}, func() { o.finishMigration(m, true) },
					func() { o.finishMigration(m, true) })
			})
		}, fail)
	default:
		// Non-graceful primary move: drop, then add. SM's guarantee
		// that no two servers serve the same shard forces the gap.
		o.callStep(m.span, "drop_shard", m.shard, m.from, func(srv *appserver.Server) {
			srv.DropShard(m.shard)
		}, func() {
			o.callStep(m.span, "add_shard", m.shard, m.to, func(srv *appserver.Server) {
				srv.AddShard(m.shard, role)
			}, func() {
				commit()
				o.finishMigration(m, true)
			}, fail)
		}, func() {
			// Old server is already dead; just add the new one.
			o.callStep(m.span, "add_shard", m.shard, m.to, func(srv *appserver.Server) {
				srv.AddShard(m.shard, role)
			}, func() {
				commit()
				o.finishMigration(m, true)
			}, fail)
		})
	}
}

// gracefulStep2 continues a graceful primary migration after the new
// primary finished loading: prepare_drop on the old (it starts forwarding),
// add_shard on the new, publish, and finally drop the old replica.
func (o *Orchestrator) gracefulStep2(m migration, commit func(), fail func()) {
	// Step 2: prepare_drop on the old; it starts forwarding.
	o.callStep(m.span, "prepare_drop_shard", m.shard, m.from, func(srv *appserver.Server) {
		srv.PrepareDropShard(m.shard, m.to, shard.RolePrimary)
	}, func() {
		// Step 3: add_shard on the new primary.
		o.callStep(m.span, "add_shard", m.shard, m.to, func(srv *appserver.Server) {
			srv.AddShard(m.shard, shard.RolePrimary)
		}, func() {
			// Step 4: publish the new map.
			commit()
			// Step 5: drop the old replica once clients have
			// learned the new map.
			o.loop.AfterL(o.cfg.PublishMargin, lbPublishMargin, func() {
				o.callStep(m.span, "drop_shard", m.shard, m.from, func(srv *appserver.Server) {
					srv.DropShard(m.shard)
				}, func() {
					o.finishMigration(m, true)
				}, func() {
					// Old server died after handoff: the
					// migration still succeeded.
					o.finishMigration(m, true)
				})
			})
		}, fail)
	}, fail)
}

// failedRPC counts one failed orchestrator->server RPC in both the legacy
// counter and the labeled registry.
func (o *Orchestrator) failedRPC() {
	o.FailedRPCs.Inc()
	o.loop.Metrics().Counter("orchestrator_failed_rpcs_total",
		"app", string(o.cfg.App)).Inc()
}

// call performs an orchestrator->server RPC: handle runs at the server,
// done runs back home after the round trip, fail runs if the server is
// unreachable.
func (o *Orchestrator) call(id shard.ServerID, handle func(*appserver.Server), done func(), fail func()) {
	o.net.Call(o.cfg.HomeRegion, rpcnet.Endpoint(id), func() {
		if srv := o.dir.Lookup(id); srv != nil {
			handle(srv)
		}
	}, func(time.Duration) {
		if done != nil {
			done()
		}
	}, func() {
		if fail != nil {
			fail()
		}
	})
}

// callStep performs one shard-lifecycle RPC as a traced child span of
// parent, so a migration reads as its protocol steps in the trace viewer.
// The step's completion (ok or failed) also fires the MigrationStep hook.
func (o *Orchestrator) callStep(parent trace.SpanID, step string, s shard.ID, id shard.ServerID,
	handle func(*appserver.Server), done func(), fail func()) {
	tr := o.loop.Tracer()
	var sp trace.SpanID
	if tr.Enabled() {
		sp = tr.StartSpan("orchestrator", step, parent, trace.String("server", string(id)))
	}
	stepDone := func(status string) {
		for _, h := range o.hooks {
			if h.MigrationStep != nil {
				h.MigrationStep(s, step, id, status)
			}
		}
	}
	o.call(id, handle, func() {
		if tr.Enabled() {
			tr.EndSpan(sp, trace.String("status", "ok"))
		}
		stepDone("ok")
		if done != nil {
			done()
		}
	}, func() {
		if tr.Enabled() {
			tr.EndSpan(sp, trace.String("status", "failed"))
		}
		stepDone("failed")
		if fail != nil {
			fail()
		}
	})
}

func (o *Orchestrator) rpcAddShard(id shard.ServerID, s shard.ID, role shard.Role) {
	o.callStep(o.curAlloc, "add_shard", s, id,
		func(srv *appserver.Server) { srv.AddShard(s, role) }, nil, func() { o.failedRPC() })
}

func (o *Orchestrator) rpcDropShard(id shard.ServerID, s shard.ID) {
	o.callStep(o.curAlloc, "drop_shard", s, id,
		func(srv *appserver.Server) { srv.DropShard(s) }, nil, func() { o.failedRPC() })
}

func (o *Orchestrator) rpcChangeRole(id shard.ServerID, s shard.ID, from, to shard.Role) {
	tr := o.loop.Tracer()
	var sp trace.SpanID
	if tr.Enabled() {
		sp = tr.StartSpan("orchestrator", "change_role", o.curAlloc,
			trace.String("server", string(id)),
			trace.String("shard", string(s)),
			trace.String("from", from.String()),
			trace.String("to", to.String()))
	}
	o.loop.Metrics().Counter("orchestrator_role_changes_total",
		"app", string(o.cfg.App), "to", to.String()).Inc()
	for _, h := range o.hooks {
		if h.RoleChanged != nil {
			h.RoleChanged(s, id, from, to)
		}
	}
	o.call(id, func(srv *appserver.Server) { _ = srv.ChangeRole(s, from, to) },
		func() { tr.EndSpan(sp, trace.String("status", "ok")) },
		func() {
			tr.EndSpan(sp, trace.String("status", "failed"))
			o.failedRPC()
		})
}

// --- publication ---

// publish pushes a new shard-map version to service discovery and persists
// per-server assignments to the coordination store.
func (o *Orchestrator) publish() {
	o.version++
	m := shard.NewMap(o.cfg.App)
	m.Version = o.version
	perServer := make(map[shard.ServerID]map[shard.ID]shard.Role)
	for _, id := range o.order {
		ss := o.shards[id]
		var as []shard.Assignment
		for _, slot := range ss.slots {
			if slot.server == "" {
				continue
			}
			as = append(as, shard.Assignment{Server: slot.server, Role: slot.role})
			if perServer[slot.server] == nil {
				perServer[slot.server] = make(map[shard.ID]shard.Role)
			}
			perServer[slot.server][id] = slot.role
		}
		if len(as) > 0 {
			m.Entries[id] = as
		}
	}
	if err := m.Validate(); err != nil {
		panic(fmt.Sprintf("orchestrator: invalid map: %v", err))
	}
	if tr := o.loop.Tracer(); tr.Enabled() {
		tr.Event("orchestrator", "publish", o.curAlloc,
			trace.String("app", string(o.cfg.App)),
			trace.Int64("version", m.Version),
			trace.Int("entries", len(m.Entries)))
	}
	o.loop.Metrics().Counter("orchestrator_publishes_total",
		"app", string(o.cfg.App)).Inc()
	for _, h := range o.hooks {
		if h.MapPublished != nil {
			h.MapPublished(m.Version, len(m.Entries))
		}
		if h.MapSnapshot != nil {
			h.MapSnapshot(m)
		}
	}
	o.disc.Publish(m)

	// Persist assignments for server start-up reads (§3.2). Servers with
	// no shards get their node cleared.
	for _, id := range o.sortedServerIDs() {
		node := o.paths.AssignNode(id)
		data := appserver.EncodeAssignment(perServer[id])
		if o.store.Exists(node) {
			_, _ = o.store.Set(node, data, -1)
		} else {
			_ = o.store.Create(node, data, nil)
		}
	}
}

// Version returns the latest published map version.
func (o *Orchestrator) Version() int64 { return o.version }

// --- TaskController-facing API ---

// AssignmentSnapshot returns the current authoritative shard map (not the
// possibly stale discovery view).
func (o *Orchestrator) AssignmentSnapshot() *shard.Map {
	m := shard.NewMap(o.cfg.App)
	m.Version = o.version
	for _, id := range o.order {
		ss := o.shards[id]
		var as []shard.Assignment
		for _, slot := range ss.slots {
			if slot.server != "" {
				as = append(as, shard.Assignment{Server: slot.server, Role: slot.role})
			}
		}
		if len(as) > 0 {
			m.Entries[id] = as
		}
	}
	return m
}

// AliveReplicas returns, for each shard with a replica on server, how many
// of its replicas are currently on alive, non-draining servers. The
// TaskController uses this to enforce the per-shard unavailability cap.
func (o *Orchestrator) AliveReplicas(server shard.ServerID) map[shard.ID]int {
	out := make(map[shard.ID]int)
	for _, id := range o.order {
		ss := o.shards[id]
		onServer := false
		alive := 0
		for _, slot := range ss.slots {
			if slot.server == server {
				onServer = true
			}
			if st := o.servers[slot.server]; st != nil && st.alive {
				alive++
			}
		}
		if onServer {
			out[id] = alive
		}
	}
	return out
}

// SetReplicas changes a shard's desired replica count; the next allocation
// adds or drops replicas to match (the shard scaler's lever, §6.1).
func (o *Orchestrator) SetReplicas(s shard.ID, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("orchestrator: SetReplicas(%s, %d)", s, n))
	}
	if ss := o.shards[s]; ss != nil {
		ss.cfg.Replicas = n
	}
}

// SetRegionPreference updates a shard's regional placement preference; the
// next periodic allocation migrates replicas toward it (the Fig 20
// AppShard-follows-DBShard workflow).
func (o *Orchestrator) SetRegionPreference(s shard.ID, region topology.RegionID, weight float64) {
	if ss := o.shards[s]; ss != nil {
		ss.cfg.RegionPreference = region
		ss.cfg.PreferenceWeight = weight
	}
}

// ShardLoadValue returns the latest measured load of a shard for one
// resource (the shard scaler's input).
func (o *Orchestrator) ShardLoadValue(s shard.ID, r topology.Resource) float64 {
	if ss := o.shards[s]; ss != nil {
		return o.shardLoad(ss).Get(r)
	}
	return 0
}

// ShardIDs returns the managed shard IDs in configuration order.
func (o *Orchestrator) ShardIDs() []shard.ID {
	out := make([]shard.ID, len(o.order))
	copy(out, o.order)
	return out
}

// TotalReplicas returns the configured replica count of a shard (0 if
// unknown).
func (o *Orchestrator) TotalReplicas(s shard.ID) int {
	if ss := o.shards[s]; ss != nil {
		return ss.cfg.Replicas
	}
	return 0
}

// ServerAlive reports whether the orchestrator currently believes the
// server is alive.
func (o *Orchestrator) ServerAlive(id shard.ServerID) bool {
	st := o.servers[id]
	return st != nil && st.alive
}

// ShardsOnServer returns how many replicas the server currently holds.
func (o *Orchestrator) ShardsOnServer(id shard.ServerID) int {
	n := 0
	for _, ss := range o.shards {
		for _, slot := range ss.slots {
			if slot.server == id {
				n++
			}
		}
	}
	return n
}

// Drain moves every replica off the server and calls onDone when the
// server is empty. The TaskController drains containers before approving
// restarts for applications configured to do so (§4.1).
func (o *Orchestrator) Drain(id shard.ServerID, onDone func()) {
	st := o.servers[id]
	if st == nil || o.ShardsOnServer(id) == 0 {
		if onDone != nil {
			onDone()
		}
		return
	}
	st.draining = true
	o.draining[id] = &drainRequest{server: id, onDone: onDone}
	o.allocate(allocator.Periodic)
	o.checkDrainsDone() // arms the periodic re-check
}

// CancelDrain clears the draining mark (e.g. operation aborted).
func (o *Orchestrator) CancelDrain(id shard.ServerID) {
	if st := o.servers[id]; st != nil {
		st.draining = false
	}
	delete(o.draining, id)
}

// checkDrainsDone fires completions for servers that emptied out. Servers
// still holding shards are picked up by the regular periodic allocation
// (which retries moves the churn caps deferred); a single re-check timer is
// kept armed while any drain is outstanding.
func (o *Orchestrator) checkDrainsDone() {
	ids := make([]shard.ServerID, 0, len(o.draining))
	for id := range o.draining {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		req := o.draining[id]
		if o.ShardsOnServer(id) == 0 && !o.shardsMigratingFrom(id) {
			delete(o.draining, id)
			if req.onDone != nil {
				req.onDone()
			}
		}
	}
	if len(o.draining) > 0 && !o.drainCheckArmed {
		o.drainCheckArmed = true
		o.loop.AfterL(o.cfg.AllocInterval, lbDrainCheck, func() {
			o.drainCheckArmed = false
			o.checkDrainsDone()
		})
	}
}

func (o *Orchestrator) shardsMigratingFrom(id shard.ServerID) bool {
	for _, m := range o.migrationQueue {
		if m.from == id {
			return true
		}
	}
	return false
}

// DemotePrimaries demotes every primary replica on the server, promoting a
// secondary elsewhere — SM's preparation for short non-negotiable events
// like rack-switch maintenance (§4.2).
func (o *Orchestrator) DemotePrimaries(id shard.ServerID) {
	changed := false
	for _, sid := range o.order {
		ss := o.shards[sid]
		if ss.migrating {
			continue
		}
		for i, slot := range ss.slots {
			if slot.server != id || slot.role != shard.RolePrimary {
				continue
			}
			// Find an alive secondary to promote.
			promote := -1
			for j, other := range ss.slots {
				if j == i || other.role != shard.RoleSecondary {
					continue
				}
				if st := o.servers[other.server]; st != nil && st.alive && !st.draining {
					promote = j
					break
				}
			}
			if promote == -1 {
				continue
			}
			ss.slots[i].role = shard.RoleSecondary
			ss.slots[promote].role = shard.RolePrimary
			o.rpcChangeRole(id, sid, shard.RolePrimary, shard.RoleSecondary)
			o.rpcChangeRole(ss.slots[promote].server, sid, shard.RoleSecondary, shard.RolePrimary)
			changed = true
		}
	}
	if changed {
		o.publish()
	}
}

// ForceAllocate triggers an immediate allocation (exposed for tests and
// the smbench harness).
func (o *Orchestrator) ForceAllocate(mode allocator.Mode) { o.allocate(mode) }

// Stats returns a human-readable summary for smctl.
func (o *Orchestrator) Stats() string {
	alive := 0
	for _, st := range o.servers {
		if st.alive {
			alive++
		}
	}
	return fmt.Sprintf("app=%s servers=%d/%d shards=%d version=%d moves=%d emergencies=%d",
		o.cfg.App, alive, len(o.servers), len(o.shards), o.version,
		o.ShardMoves.Value(), o.EmergencyRuns.Value())
}
