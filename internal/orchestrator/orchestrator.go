// Package orchestrator implements the SM orchestrator of §3.2 — the
// control-plane component ("mini-SM", §6.1) that manages one application
// partition:
//
//   - It discovers application-server liveness by watching the ephemeral
//     nodes the SM library creates in the coordination store.
//   - It periodically collects per-shard load from servers by direct RPC.
//   - It invokes the allocator — in emergency mode when servers die, in
//     periodic mode on a timer — and executes the resulting replica moves.
//   - It performs graceful primary-replica migration with the 5-step
//     protocol of §4.3, so that no client request is dropped.
//   - It publishes every new shard map version to the service discovery
//     system and persists per-server assignments to the coordination store
//     so servers can restore them at start-up without the control plane.
//   - It exposes the drain operation the TaskController uses to empty a
//     container before a negotiable lifecycle operation (§4.1), and role
//     demotion ahead of non-negotiable maintenance (§4.2).
package orchestrator

import (
	"fmt"
	"sort"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/appserver"
	"shardmanager/internal/coord"
	"shardmanager/internal/discovery"
	"shardmanager/internal/metrics"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
)

// Kernel-profiler attribution labels for the control plane's timers.
var (
	lbLoadCollect   = sim.LabelFor("orchestrator", "load_collect")
	lbAllocate      = sim.LabelFor("orchestrator", "allocate")
	lbFailoverGrace = sim.LabelFor("orchestrator", "failover_grace")
	lbLoadApply     = sim.LabelFor("orchestrator", "load_apply")
	lbMigrationLoad = sim.LabelFor("orchestrator", "migration_load")
	lbPublishMargin = sim.LabelFor("orchestrator", "publish_margin")
	lbDrainCheck    = sim.LabelFor("orchestrator", "drain_check")
	lbPromoteHold   = sim.LabelFor("orchestrator", "promote_hold")
	lbOrphanGC      = sim.LabelFor("orchestrator", "orphan_gc")
)

// ShardConfig declares one shard of the application.
type ShardConfig struct {
	ID       shard.ID
	Replicas int
	// RegionPreference pins the shard's preferred region (§5.1 soft
	// goal 1); empty means none.
	RegionPreference topology.RegionID
	PreferenceWeight float64
	// DefaultLoad seeds the shard's load before the first collection.
	DefaultLoad topology.Capacity
}

// Config configures an orchestrator for one application partition.
type Config struct {
	App      shard.AppID
	Strategy shard.ReplicationStrategy
	Shards   []ShardConfig
	// Policy drives the allocator.
	Policy allocator.Policy
	// ServerCapacity is the per-server capacity used for balancing.
	ServerCapacity topology.Capacity
	// HomeRegion is where this mini-SM runs (RPC latency origin).
	HomeRegion topology.RegionID
	// GracefulMigration enables the §4.3 protocol for primary moves;
	// disabling it is the "no graceful migration" ablation of Fig 17.
	GracefulMigration bool
	// LoadInterval is the load-collection period (default 10s).
	LoadInterval time.Duration
	// AllocInterval is the periodic-allocation period (default 30s).
	AllocInterval time.Duration
	// FailoverGrace is how long a server must stay dead before its
	// shards are reassigned (default 30s). Quick in-place restarts stay
	// under it.
	FailoverGrace time.Duration
	// PublishMargin is the wait between publishing a new map and
	// dropping the old primary, covering map propagation (default 3s).
	PublishMargin time.Duration
	// PromoteHold is how long after a primary's server dies (liveness
	// node lost) the orchestrator waits before promoting a replacement
	// primary (default 5s). It must exceed the SM library's self-fence
	// delay (appserver.DefaultFenceDelay) so a false-dead server — healthy
	// process, expired session — has provably stopped serving as primary
	// before a second primary can appear anywhere (the MIT 6.824 "two
	// servers both believe they own a shard" race).
	PromoteHold time.Duration
	// MaxConcurrentMigrations caps in-flight replica migrations (§5.1
	// hard constraint "system stability"; default 20).
	MaxConcurrentMigrations int
	// ShardLoadTime is how long the orchestrator waits after
	// prepare_add_shard for the new replica to finish loading state
	// before telling the old one to forward. Should be >= the servers'
	// LoadTime; the old primary serves clients throughout.
	ShardLoadTime time.Duration
	// OrphanRetry is the retry interval for cleanup RPCs that failed —
	// dropping a replica a migration left behind, or resuming a forwarding
	// primary whose migration aborted (default 5s). An RPC can execute on
	// the server yet report failure (reply lost), so cleanup must be
	// retried until acknowledged: an unacknowledged orphan is a live
	// primary the control plane no longer knows about.
	OrphanRetry time.Duration
	// DeltaPublish switches publication to the incremental path after the
	// first full snapshot: the orchestrator retains its last published map,
	// diffs each new build against it, and hands discovery an O(changed
	// entries) delta instead of an O(shards) snapshot to clone and fan out.
	// Off by default (the legacy full-publish path, byte-identical to prior
	// behavior). Routing clients must set Options.ApplyDeltas when this is
	// on, because delta publishes mutate the discovery-side map in place.
	DeltaPublish bool
}

func (c *Config) fillDefaults() {
	if c.LoadInterval <= 0 {
		c.LoadInterval = 10 * time.Second
	}
	if c.AllocInterval <= 0 {
		c.AllocInterval = 30 * time.Second
	}
	if c.FailoverGrace <= 0 {
		c.FailoverGrace = 30 * time.Second
	}
	if c.PublishMargin <= 0 {
		c.PublishMargin = 3 * time.Second
	}
	if c.PromoteHold <= 0 {
		c.PromoteHold = 5 * time.Second
	}
	if c.MaxConcurrentMigrations <= 0 {
		c.MaxConcurrentMigrations = 20
	}
	if c.OrphanRetry <= 0 {
		c.OrphanRetry = 5 * time.Second
	}
}

type serverState struct {
	id       shard.ServerID
	machine  topology.MachineID
	region   topology.RegionID
	domains  map[string]string
	alive    bool
	draining bool
	// deadSince is when the server was last seen dying.
	deadSince time.Duration
	// load is the latest per-shard load report.
	load map[shard.ID]topology.Capacity
}

type replicaSlot struct {
	server shard.ServerID
	role   shard.Role
}

type shardState struct {
	cfg   ShardConfig
	slots []replicaSlot
	// migrating marks an in-flight migration touching this shard.
	migrating bool
	// mig is the in-flight migration itself (nil unless migrating); rejoin
	// syncs consult it so they never drop a half-handed-over replica.
	mig *migration
	// holdUntil blocks primary promotion for this shard until the given
	// sim time: set when a dead server's primary is demoted in place, it
	// gives the possibly-false-dead old primary time to self-fence.
	holdUntil time.Duration
	// orphans names servers that may still hold an unacknowledged replica
	// of this shard (a cleanup drop failed and is being retried). While any
	// orphan is pending, the shard's old primary must not resume serving:
	// the orphan could be an active primary whose add executed even though
	// the reply was lost.
	orphans map[shard.ServerID]bool
}

type drainRequest struct {
	server shard.ServerID
	onDone func()
}

// Hooks let an external monitor observe control-plane transitions. Unlike a
// discovery subscription, hooks fire synchronously and draw no randomness,
// so attaching them (healthmon does) cannot perturb a seeded run. Any field
// may be nil.
type Hooks struct {
	// MigrationStarted fires when a queued migration begins executing.
	MigrationStarted func(s shard.ID, from, to shard.ServerID, graceful bool)
	// MigrationFinished fires when a migration completes or fails.
	MigrationFinished func(s shard.ID, ok bool)
	// MigrationStep fires when one shard-lifecycle RPC (prepare_add_shard,
	// prepare_drop_shard, add_shard, drop_shard) completes, with status "ok"
	// or "failed".
	MigrationStep func(s shard.ID, step string, server shard.ServerID, status string)
	// RoleChanged fires when the orchestrator issues a change_role RPC.
	RoleChanged func(s shard.ID, server shard.ServerID, from, to shard.Role)
	// MapPublished fires on every shard-map publication.
	MapPublished func(version int64, entries int)
	// MapSnapshot fires on every publication with the full map about to be
	// handed to discovery. The callback must treat it as read-only and not
	// retain it past the call (clone what it needs).
	MapSnapshot func(m *shard.Map)
}

// Orchestrator is one mini-SM control-plane instance.
type Orchestrator struct {
	cfg   Config
	loop  *sim.Loop
	store *coord.Store
	disc  *discovery.Service
	net   *rpcnet.Network
	dir   *appserver.Directory
	fleet *topology.Fleet
	alloc *allocator.Allocator
	paths appserver.CoordPaths

	servers map[shard.ServerID]*serverState
	shards  map[shard.ID]*shardState
	order   []shard.ID // deterministic shard iteration
	version int64
	// lastPub is the previously published map, retained only in
	// DeltaPublish mode as the diff base; deltaScratch is the ping-ponged
	// delta buffer recycled through discovery.PublishDelta.
	lastPub      *shard.Map
	deltaScratch *shard.Delta

	migrationQueue []migration
	inFlight       int
	curAlloc       trace.SpanID // open "allocate" span, parent of spawned work

	draining        map[shard.ServerID]*drainRequest
	drainCheckArmed bool
	started         bool
	tickers         []*sim.Ticker
	hooks           []Hooks

	// Stats.
	ShardMoves      metrics.Counter
	EmergencyRuns   metrics.Counter
	PeriodicRuns    metrics.Counter
	FailedRPCs      metrics.Counter
	MovesSeries     *metrics.Series // shard moves applied, per allocation
	ViolationSeries *metrics.Series
}

type migration struct {
	shard    shard.ID
	slot     int
	from, to shard.ServerID
	role     shard.Role
	graceful bool
	// span covers the whole migration from enqueue to finish; the per-step
	// RPCs (prepare_add_shard, add_shard, drop_shard, ...) are its children.
	span trace.SpanID
}

// New creates an orchestrator. Call Start to begin managing.
func New(loop *sim.Loop, store *coord.Store, disc *discovery.Service,
	net *rpcnet.Network, dir *appserver.Directory, fleet *topology.Fleet,
	cfg Config, seed uint64) *Orchestrator {
	cfg.fillDefaults()
	if cfg.HomeRegion == "" {
		cfg.HomeRegion = fleet.Regions()[0]
	}
	o := &Orchestrator{
		cfg:             cfg,
		loop:            loop,
		store:           store,
		disc:            disc,
		net:             net,
		dir:             dir,
		fleet:           fleet,
		alloc:           allocator.New(cfg.Policy, seed),
		paths:           appserver.DefaultPaths(cfg.App),
		servers:         make(map[shard.ServerID]*serverState),
		shards:          make(map[shard.ID]*shardState),
		draining:        make(map[shard.ServerID]*drainRequest),
		MovesSeries:     metrics.NewSeries("shard_moves"),
		ViolationSeries: metrics.NewSeries("violations"),
	}
	for _, sc := range cfg.Shards {
		if sc.Replicas <= 0 {
			sc.Replicas = 1
		}
		if _, dup := o.shards[sc.ID]; dup {
			panic(fmt.Sprintf("orchestrator: duplicate shard %q", sc.ID))
		}
		o.shards[sc.ID] = &shardState{cfg: sc}
		o.order = append(o.order, sc.ID)
	}
	return o
}

// SetHooks installs the observer hooks, replacing any previously attached
// set (zero value clears them).
func (o *Orchestrator) SetHooks(h Hooks) { o.hooks = []Hooks{h} }

// AddHooks attaches an additional set of observer hooks without disturbing
// ones already installed; all attached hooks fire in attachment order. The
// runtime auditor uses this to coexist with healthmon.
func (o *Orchestrator) AddHooks(h Hooks) { o.hooks = append(o.hooks, h) }

// App returns the managed application ID.
func (o *Orchestrator) App() shard.AppID { return o.cfg.App }

// ServerDomains returns the failure-domain labels (region/datacenter/rack)
// last resolved for the server, or nil if unknown. Domains persist after a
// server dies so failures can still be attributed to the right domain.
func (o *Orchestrator) ServerDomains(id shard.ServerID) map[string]string {
	if st := o.servers[id]; st != nil {
		return st.domains
	}
	return nil
}

// Start begins membership watching, load collection, and periodic
// allocation.
func (o *Orchestrator) Start() {
	if o.started {
		return
	}
	o.started = true
	mustEnsure(o.store, o.paths.ServersPath)
	mustEnsure(o.store, o.paths.AssignPath)
	o.watchMembership()
	o.syncMembership()
	o.tickers = append(o.tickers,
		o.loop.EveryL(o.cfg.LoadInterval, lbLoadCollect, o.collectLoads),
		o.loop.EveryL(o.cfg.AllocInterval, lbAllocate, func() { o.allocate(allocator.Periodic) }))
	// Initial placement as soon as servers appear.
	o.loop.AfterL(time.Second, lbAllocate, func() { o.allocate(allocator.Periodic) })
}

// Stop halts the control plane: no more load collection, allocations, or
// migrations. Application clients keep using the last published shard map
// and servers keep serving — §6.2's guarantee that an SM control-plane
// outage does not take applications down; "new shard assignments would not
// be generated". Start resumes.
func (o *Orchestrator) Stop() {
	if !o.started {
		return
	}
	o.started = false
	for _, t := range o.tickers {
		t.Stop()
	}
	o.tickers = nil
	o.migrationQueue = nil
}

func mustEnsure(store *coord.Store, path string) {
	if !store.Exists(path) {
		if err := store.CreateAll(path, nil, nil); err != nil {
			panic(fmt.Sprintf("orchestrator: ensure %s: %v", path, err))
		}
	}
}

// --- membership ---

func (o *Orchestrator) watchMembership() {
	err := o.store.WatchChildren(o.paths.ServersPath, func(coord.Event) {
		o.syncMembership()
		o.watchMembership() // re-arm the one-shot watch
	})
	if err != nil {
		panic(fmt.Sprintf("orchestrator: watch: %v", err))
	}
}

// syncMembership reconciles the coordination store's liveness nodes with
// the orchestrator's server table.
func (o *Orchestrator) syncMembership() {
	kids, err := o.store.Children(o.paths.ServersPath)
	if err != nil {
		return
	}
	seen := make(map[shard.ServerID]bool, len(kids))
	for _, kid := range kids {
		data, _, err := o.store.Get(o.paths.ServersPath + "/" + kid)
		if err != nil {
			continue
		}
		id := unescapeID(kid)
		seen[id] = true
		st := o.servers[id]
		rejoined := false
		if st == nil {
			st = &serverState{id: id, load: make(map[shard.ID]topology.Capacity)}
			o.servers[id] = st
		} else if !st.alive {
			rejoined = true
		}
		if !st.alive {
			st.alive = true
			o.resolveMachine(st, string(data))
		}
		if rejoined && o.started {
			// A server coming back from the dead (false-dead reconnect or
			// in-place restart) may hold a stale — possibly fenced —
			// replica set; push the authoritative assignment at a fresh
			// generation so it unfences into the current world, not the
			// one it left.
			o.syncServer(id)
		}
	}
	anyDied := false
	for id, st := range o.servers {
		if !seen[id] && st.alive {
			st.alive = false
			st.deadSince = o.loop.Now()
			anyDied = true
			o.scheduleFailover(id, st.deadSince)
		}
	}
	if anyDied && o.started {
		// Demote the dead servers' primaries immediately, but promotion of
		// replacements waits out PromoteHold (reconcileRoles gates on
		// holdUntil); re-reconcile once the hold has elapsed so failover
		// does not wait for the next periodic allocation.
		o.reconcileAllRoles()
		o.loop.AfterL(o.cfg.PromoteHold, lbPromoteHold, o.reconcileAllRoles)
	}
}

func unescapeID(kid string) shard.ServerID {
	b := []byte(kid)
	for i := range b {
		if b[i] == '~' {
			b[i] = '/'
		}
	}
	return shard.ServerID(b)
}

// resolveMachine fills the server's placement metadata from its liveness
// node payload (the machine ID written by the SM library's host).
func (o *Orchestrator) resolveMachine(st *serverState, payload string) {
	m := o.fleet.Machine(topology.MachineID(payload))
	if m == nil {
		// Fall back: payload may be a region name (older hosts).
		st.region = topology.RegionID(payload)
		st.domains = map[string]string{
			topology.LevelRegion.String():     payload,
			topology.LevelDatacenter.String(): payload + "/dc?",
			topology.LevelRack.String():       payload + "/dc?/rack?",
		}
		return
	}
	st.machine = m.ID
	st.region = m.Region
	st.domains = map[string]string{
		topology.LevelRegion.String():     m.Domain(topology.LevelRegion),
		topology.LevelDatacenter.String(): m.Domain(topology.LevelDatacenter),
		topology.LevelRack.String():       m.Domain(topology.LevelRack),
	}
}

// scheduleFailover reassigns the dead server's shards if it is still dead
// after the grace period; quick in-place restarts never trigger it.
func (o *Orchestrator) scheduleFailover(id shard.ServerID, at time.Duration) {
	o.loop.AfterL(o.cfg.FailoverGrace, lbFailoverGrace, func() {
		st := o.servers[id]
		if st == nil || st.alive || st.deadSince != at {
			return
		}
		if o.hasReplicasOn(id) {
			o.allocate(allocator.Emergency)
		}
	})
}

// syncServer pushes the authoritative assignment for one server at a fresh
// generation — the anti-entropy step for rejoining servers. It lifts the
// server's self-fence (the new generation supersedes the lost lease), fixes
// roles the server demoted or restored stale, drops replicas the world moved
// away while it was gone, and confirms restored-unconfirmed primaries.
func (o *Orchestrator) syncServer(id shard.ServerID) {
	want := make(map[shard.ID]shard.Role)
	var protect map[shard.ID]bool
	for _, sid := range o.order {
		ss := o.shards[sid]
		if slot := o.findSlot(ss, id); slot != -1 {
			want[sid] = ss.slots[slot].role
		}
		if ss.mig != nil && ss.mig.to == id {
			if protect == nil {
				protect = make(map[shard.ID]bool)
			}
			protect[sid] = true
		}
	}
	gen := o.store.NextEpoch()
	o.loop.Metrics().Counter("orchestrator_server_syncs_total",
		"app", string(o.cfg.App)).Inc()
	o.call(id, func(srv *appserver.Server) {
		srv.SyncAssignment(want, protect, gen)
	}, nil, func() { o.failedRPC() })
}

func (o *Orchestrator) hasReplicasOn(id shard.ServerID) bool {
	for _, ss := range o.shards {
		for _, slot := range ss.slots {
			if slot.server == id {
				return true
			}
		}
	}
	return false
}

// --- load collection ---

// sortedServerIDs returns the server table's keys in sorted order so event
// scheduling is deterministic (map iteration order varies per process).
func (o *Orchestrator) sortedServerIDs() []shard.ServerID {
	ids := make([]shard.ServerID, 0, len(o.servers))
	for id := range o.servers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (o *Orchestrator) collectLoads() {
	for _, id := range o.sortedServerIDs() {
		st := o.servers[id]
		if !st.alive {
			continue
		}
		id, st := id, st
		o.net.Call(o.cfg.HomeRegion, rpcnet.Endpoint(id), func() {
			srv := o.dir.Lookup(id)
			if srv == nil {
				return
			}
			report := srv.LoadReport()
			o.loop.AfterL(0, lbLoadApply, func() {
				for sid, load := range report {
					st.load[sid] = load
				}
			})
		}, nil, func() {
			o.failedRPC()
		})
	}
}

// shardLoad returns the shard's most recent measured load (max across
// reporting servers) or its configured default.
func (o *Orchestrator) shardLoad(ss *shardState) topology.Capacity {
	var latest topology.Capacity
	for _, slot := range ss.slots {
		if st := o.servers[slot.server]; st != nil {
			if l, ok := st.load[ss.cfg.ID]; ok {
				latest = l
			}
		}
	}
	if latest == nil {
		latest = ss.cfg.DefaultLoad
	}
	if latest == nil {
		latest = topology.Capacity{topology.ResourceShardCount: 1}
	}
	return latest
}

// --- allocation ---

// allocate runs the allocator in the given mode and executes the diff.
func (o *Orchestrator) allocate(mode allocator.Mode) {
	if !o.started {
		return
	}
	// While a batch of migrations is still queued, a new periodic run
	// would just recompute the same plan (migrating shards are skipped);
	// wait for the queue to drain. Emergencies always run.
	if mode == allocator.Periodic && len(o.migrationQueue) > 0 {
		return
	}
	in := o.buildInput()
	if len(in.Servers) == 0 {
		return
	}
	tr := o.loop.Tracer()
	if tr.Enabled() {
		o.curAlloc = tr.StartSpan("orchestrator", "allocate", 0,
			trace.String("app", string(o.cfg.App)),
			trace.String("mode", mode.String()))
	}
	res := o.alloc.Run(in, mode)
	if mode == allocator.Emergency {
		o.EmergencyRuns.Inc()
	} else {
		o.PeriodicRuns.Inc()
	}
	o.ViolationSeries.Record(o.loop.Now(), float64(res.Final.Total()))
	if mr := o.loop.Metrics(); mr != nil {
		app := string(o.cfg.App)
		mr.Counter("orchestrator_allocations_total", "app", app, "mode", mode.String()).Inc()
		mr.Counter("orchestrator_moves_planned_total", "app", app).Add(int64(len(res.Moves)))
		mr.Gauge("orchestrator_violations", "app", app).Set(float64(res.Final.Total()))
	}
	o.executeDiff(res)
	if tr.Enabled() {
		tr.EndSpan(o.curAlloc,
			trace.Int("moves", len(res.Moves)),
			trace.Int("violations", res.Final.Total()))
	}
	o.curAlloc = 0
}

func (o *Orchestrator) buildInput() allocator.Input {
	in := allocator.Input{Current: make(map[shard.ID][]shard.ServerID, len(o.shards))}
	now := o.loop.Now()
	for _, id := range o.sortedServerIDs() {
		st := o.servers[id]
		if st.domains == nil {
			continue
		}
		// A server dead for less than the failover grace (e.g. a quick
		// in-place restart) keeps its replicas: treating it as dead
		// would make every planned restart churn the whole placement.
		alive := st.alive || now-st.deadSince < o.cfg.FailoverGrace
		in.Servers = append(in.Servers, allocator.ServerInfo{
			ID:       id,
			Domains:  st.domains,
			Capacity: o.cfg.ServerCapacity,
			Alive:    alive,
			Draining: st.draining,
		})
	}
	for _, id := range o.order {
		ss := o.shards[id]
		in.Shards = append(in.Shards, allocator.ShardSpec{
			ID:               id,
			Replicas:         ss.cfg.Replicas,
			Load:             o.shardLoad(ss),
			RegionPreference: ss.cfg.RegionPreference,
			PreferenceWeight: ss.cfg.PreferenceWeight,
		})
		cur := make([]shard.ServerID, len(ss.slots))
		for i, slot := range ss.slots {
			cur[i] = slot.server
		}
		in.Current[id] = cur
	}
	return in
}

// executeDiff turns allocator moves into RPC sequences.
func (o *Orchestrator) executeDiff(res *allocator.Result) {
	changed := false
	for _, mv := range res.Moves {
		ss := o.shards[mv.Shard]
		if ss == nil || ss.migrating {
			continue
		}
		if len(ss.orphans) > 0 {
			// An unresolved orphan may be an active primary whose cleanup
			// drop hasn't been acknowledged yet; starting a new move could
			// activate a second primary next to it. The next allocation
			// replans once the orphan resolves.
			o.publishRejected("orphan_pending")
			continue
		}
		switch mv.Kind() {
		case "add":
			if o.findSlot(ss, mv.To) != -1 {
				// The target already holds a replica of this shard (e.g.
				// a churn-deferred move raced a sibling add); honoring the
				// plan would publish a duplicate-replica map.
				o.publishRejected("duplicate_add")
				continue
			}
			// Reuse an empty slot or one whose server is dead (the
			// replica this add replaces); append only for genuine
			// replica-count growth.
			slot := o.findSlot(ss, "")
			if slot == -1 {
				slot = o.findDeadSlot(ss)
			}
			if slot == -1 {
				ss.slots = append(ss.slots, replicaSlot{})
				slot = len(ss.slots) - 1
			}
			role := o.roleForNewReplica(ss)
			ss.slots[slot] = replicaSlot{server: mv.To, role: role}
			o.rpcAddShard(mv.To, mv.Shard, role)
			o.ShardMoves.Inc()
			changed = true
		case "drop":
			slot := o.findSlot(ss, mv.From)
			if slot == -1 {
				continue
			}
			ss.slots = append(ss.slots[:slot], ss.slots[slot+1:]...)
			o.rpcDropShard(mv.From, mv.Shard)
			o.ShardMoves.Inc()
			changed = true
		case "move":
			slot := o.findSlot(ss, mv.From)
			if slot == -1 {
				continue
			}
			if o.findSlot(ss, mv.To) != -1 {
				// Destination already holds a replica; moving there would
				// collapse two replicas onto one server.
				o.publishRejected("duplicate_move")
				continue
			}
			graceful := o.cfg.GracefulMigration && ss.slots[slot].role == shard.RolePrimary
			o.enqueueMigration(migration{
				shard:    mv.Shard,
				slot:     slot,
				from:     mv.From,
				to:       mv.To,
				role:     ss.slots[slot].role,
				graceful: graceful,
			})
		}
	}
	for _, id := range o.order {
		if o.reconcileRoles(o.shards[id]) {
			changed = true
		}
	}
	if changed {
		o.publish()
	}
	o.MovesSeries.Record(o.loop.Now(), float64(len(res.Moves)))
	o.pumpMigrations()
}

// findSlot returns the index of the slot on server (or the first empty slot
// if server is ""), or -1.
func (o *Orchestrator) findSlot(ss *shardState, server shard.ServerID) int {
	for i, slot := range ss.slots {
		if slot.server == server {
			return i
		}
	}
	return -1
}

// findDeadSlot returns the index of the first slot held by a dead server,
// or -1.
func (o *Orchestrator) findDeadSlot(ss *shardState) int {
	for i, slot := range ss.slots {
		if slot.server == "" {
			continue
		}
		if st := o.servers[slot.server]; st == nil || !st.alive {
			return i
		}
	}
	return -1
}

// roleForNewReplica picks the role for a newly added replica under the
// app's replication strategy.
func (o *Orchestrator) roleForNewReplica(ss *shardState) shard.Role {
	switch o.cfg.Strategy {
	case shard.PrimaryOnly:
		return shard.RolePrimary
	case shard.SecondaryOnly:
		return shard.RoleSecondary
	default:
		for _, slot := range ss.slots {
			if slot.role == shard.RolePrimary && slot.server != "" {
				if st := o.servers[slot.server]; st != nil && st.alive {
					return shard.RoleSecondary
				}
			}
		}
		if o.loop.Now() < ss.holdUntil {
			// The shard just lost its primary; don't mint a new one
			// before the old server's self-fence deadline — join as a
			// secondary and let reconcileRoles promote after the hold.
			return shard.RoleSecondary
		}
		return shard.RolePrimary
	}
}

// reconcileRoles enforces exactly one primary per shard for primary-bearing
// strategies: primaries on dead servers are demoted in place (no RPC — the
// server is gone; if it restarts it reads the corrected role from the
// persisted assignment), surplus alive primaries are demoted by RPC, and if
// no alive primary remains a secondary is promoted (automatic failover of
// the primary role). Returns true if anything changed.
func (o *Orchestrator) reconcileRoles(ss *shardState) bool {
	if o.cfg.Strategy == shard.SecondaryOnly || ss.migrating {
		return false
	}
	changed := false
	alivePrimary := -1
	for i := range ss.slots {
		slot := &ss.slots[i]
		if slot.server == "" || slot.role != shard.RolePrimary {
			continue
		}
		st := o.servers[slot.server]
		if st == nil || !st.alive {
			// Demote in place (no RPC — the server is gone), and hold
			// promotion of a successor until the possibly-false-dead old
			// primary has had time to self-fence.
			slot.role = shard.RoleSecondary
			ss.holdUntil = o.loop.Now() + o.cfg.PromoteHold
			changed = true
			continue
		}
		if alivePrimary == -1 {
			alivePrimary = i
		} else {
			slot.role = shard.RoleSecondary
			o.rpcChangeRole(slot.server, ss.cfg.ID, shard.RolePrimary, shard.RoleSecondary)
			changed = true
		}
	}
	// Promotion additionally waits for pending orphans: an orphan may be an
	// active primary whose cleanup drop wasn't acknowledged, and promoting a
	// secondary next to it would put two primaries up at once.
	if alivePrimary == -1 && o.loop.Now() >= ss.holdUntil && len(ss.orphans) == 0 {
		for i := range ss.slots {
			slot := &ss.slots[i]
			if slot.server == "" || slot.role != shard.RoleSecondary {
				continue
			}
			st := o.servers[slot.server]
			if st != nil && st.alive {
				slot.role = shard.RolePrimary
				o.rpcChangeRole(slot.server, ss.cfg.ID, shard.RoleSecondary, shard.RolePrimary)
				changed = true
				break
			}
		}
	}
	return changed
}

// reconcileAllRoles repairs role invariants across every shard and
// publishes if anything changed; invoked on membership changes so primary
// failover does not wait for the next allocation.
func (o *Orchestrator) reconcileAllRoles() {
	changed := false
	for _, id := range o.order {
		if o.reconcileRoles(o.shards[id]) {
			changed = true
		}
	}
	if changed {
		o.publish()
	}
}

// --- migrations ---

func (o *Orchestrator) enqueueMigration(m migration) {
	ss := o.shards[m.shard]
	ss.migrating = true
	if tr := o.loop.Tracer(); tr.Enabled() {
		// The span opens at enqueue so queueing delay behind the
		// concurrency cap is part of the migration's measured latency.
		m.span = tr.StartSpan("orchestrator", "migration", o.curAlloc,
			trace.String("shard", string(m.shard)),
			trace.String("from", string(m.from)),
			trace.String("to", string(m.to)),
			trace.Bool("graceful", m.graceful))
	}
	o.migrationQueue = append(o.migrationQueue, m)
}

// pumpMigrations starts queued migrations up to the concurrency cap.
func (o *Orchestrator) pumpMigrations() {
	for o.inFlight < o.cfg.MaxConcurrentMigrations && len(o.migrationQueue) > 0 {
		m := o.migrationQueue[0]
		o.migrationQueue = o.migrationQueue[1:]
		o.inFlight++
		o.runMigration(m)
	}
}

func (o *Orchestrator) finishMigration(m migration, ok bool) {
	if tr := o.loop.Tracer(); tr.Enabled() {
		tr.EndSpan(m.span, trace.Bool("ok", ok))
	}
	o.inFlight--
	if mr := o.loop.Metrics(); mr != nil {
		outcome := "ok"
		if !ok {
			outcome = "failed"
		}
		mr.Counter("orchestrator_migrations_total", "app", string(o.cfg.App), "outcome", outcome).Inc()
		mr.Gauge("orchestrator_migrations_inflight", "app", string(o.cfg.App)).Set(float64(o.inFlight))
	}
	for _, h := range o.hooks {
		if h.MigrationFinished != nil {
			h.MigrationFinished(m.shard, ok)
		}
	}
	ss := o.shards[m.shard]
	ss.migrating = false
	ss.mig = nil
	if ok {
		o.ShardMoves.Inc()
	}
	o.pumpMigrations()
	if !ok {
		// The shard may be under-replicated; let emergency repair it.
		o.allocate(allocator.Emergency)
		return
	}
	o.checkDrainsDone()
}

// runMigration executes one replica move. Graceful primary migration uses
// the 5-step protocol of §4.3; other moves use make-before-break
// (add-then-drop) for secondaries, which never reduces read availability,
// and break-before-make for non-graceful primary moves (the Fig 17
// ablation), which opens a visible gap.
func (o *Orchestrator) runMigration(m migration) {
	ss := o.shards[m.shard]
	slot := &ss.slots[m.slot]
	role := slot.role
	m.role = role
	ss.mig = &m
	if tr := o.loop.Tracer(); tr.Enabled() {
		tr.Event("orchestrator", "migration_start", m.span,
			trace.String("shard", string(m.shard)),
			trace.String("role", role.String()))
	}
	o.loop.Metrics().Gauge("orchestrator_migrations_inflight",
		"app", string(o.cfg.App)).Set(float64(o.inFlight))
	for _, h := range o.hooks {
		if h.MigrationStarted != nil {
			h.MigrationStarted(m.shard, m.from, m.to, m.graceful)
		}
	}
	fail := func() {
		o.failedRPC()
		o.finishMigration(m, false)
	}
	commit := func() {
		slot.server = m.to
		o.publish()
	}
	// abort rolls back a half-added replica on the target before declaring
	// the migration failed, so a later plan can reuse the server without
	// tripping the duplicate-replica guards or leaving a stuck forwarder.
	// Any step's RPC can have executed on the server even though the reply
	// was lost, so the rollback can never be fire-and-forget: the target
	// drop retries until acknowledged (an unacknowledged "failed" add may
	// be a live orphan primary), and only once the target is provably gone
	// does the old primary resume serving — resuming earlier could put two
	// active primaries up at once.
	abort := func() {
		o.callStep(m.span, "drop_shard", m.shard, m.to, func(srv *appserver.Server) {
			srv.DropShard(m.shard)
		}, func() {
			fail()
			o.resumeSource(m.shard, m.from)
		}, func() {
			fail()
			o.scheduleOrphanDrop(m.shard, m.to, func() { o.resumeSource(m.shard, m.from) })
		})
	}
	switch {
	case m.graceful && role == shard.RolePrimary:
		// Step 1: prepare_add on the new primary, then give it time to
		// load the shard's state; the old primary keeps serving. A failed
		// prepare_add still aborts (not plain fail): the RPC may have
		// executed, leaving a half-prepared replica to clean up.
		gen := o.store.NextEpoch()
		o.callStep(m.span, "prepare_add_shard", m.shard, m.to, func(srv *appserver.Server) {
			srv.PrepareAddShardGen(m.shard, m.from, shard.RolePrimary, gen)
		}, func() {
			o.loop.AfterL(o.cfg.ShardLoadTime, lbMigrationLoad, func() { o.gracefulStep2(m, commit, abort) })
		}, abort)
	case role == shard.RoleSecondary:
		// Make-before-break: add the new secondary, then drop the old.
		gen := o.store.NextEpoch()
		o.callStep(m.span, "add_shard", m.shard, m.to, func(srv *appserver.Server) {
			srv.AddShardGen(m.shard, shard.RoleSecondary, gen)
		}, func() {
			commit()
			o.loop.AfterL(o.cfg.PublishMargin, lbPublishMargin, func() {
				o.callStep(m.span, "drop_shard", m.shard, m.from, func(srv *appserver.Server) {
					srv.DropShard(m.shard)
				}, func() { o.finishMigration(m, true) },
					func() {
						o.scheduleOrphanDrop(m.shard, m.from, nil)
						o.finishMigration(m, true)
					})
			})
		}, func() {
			o.scheduleOrphanDrop(m.shard, m.to, nil)
			fail()
		})
	default:
		// Non-graceful primary move: drop, then add. SM's guarantee
		// that no two servers serve the same shard forces the gap.
		addNew := func() {
			gen := o.store.NextEpoch()
			o.callStep(m.span, "add_shard", m.shard, m.to, func(srv *appserver.Server) {
				srv.AddShardGen(m.shard, role, gen)
			}, func() {
				commit()
				o.finishMigration(m, true)
			}, func() {
				o.scheduleOrphanDrop(m.shard, m.to, nil)
				fail()
			})
		}
		o.callStep(m.span, "drop_shard", m.shard, m.from, func(srv *appserver.Server) {
			srv.DropShard(m.shard)
		}, addNew, func() {
			// Old server is already dead; just add the new one.
			addNew()
		})
	}
}

// gracefulStep2 continues a graceful primary migration after the new
// primary finished loading: prepare_drop on the old (it starts forwarding),
// add_shard on the new, publish, and finally drop the old replica. fail is
// the caller's rollback path (drops the half-added target replica).
func (o *Orchestrator) gracefulStep2(m migration, commit func(), fail func()) {
	// Step 2: prepare_drop on the old; it starts forwarding.
	o.callStep(m.span, "prepare_drop_shard", m.shard, m.from, func(srv *appserver.Server) {
		srv.PrepareDropShard(m.shard, m.to, shard.RolePrimary)
	}, func() {
		// Step 3: add_shard on the new primary.
		gen := o.store.NextEpoch()
		o.callStep(m.span, "add_shard", m.shard, m.to, func(srv *appserver.Server) {
			srv.AddShardGen(m.shard, shard.RolePrimary, gen)
		}, func() {
			// Step 4: publish the new map.
			commit()
			// Step 5: drop the old replica once clients have
			// learned the new map.
			o.loop.AfterL(o.cfg.PublishMargin, lbPublishMargin, func() {
				o.callStep(m.span, "drop_shard", m.shard, m.from, func(srv *appserver.Server) {
					srv.DropShard(m.shard)
				}, func() {
					o.finishMigration(m, true)
				}, func() {
					// The migration still succeeded, but the old
					// replica may survive an unacknowledged drop
					// (e.g. the reply was lost): keep retrying so
					// it cannot forward — or serve — forever.
					o.scheduleOrphanDrop(m.shard, m.from, nil)
					o.finishMigration(m, true)
				})
			})
		}, fail)
	}, fail)
}

// scheduleOrphanDrop arms a retry for a cleanup drop that failed: the
// replica on id may still exist (an RPC can execute yet report failure when
// the reply is lost), and an orphaned active primary is invisible to the
// slots, so nothing else would ever reclaim it. The server is registered as
// a pending orphan of the shard — resumeSource refuses to resume an old
// primary while any orphan is pending. then (optional) runs once the orphan
// is resolved (drop acknowledged, server died, or a newer migration took the
// server over).
func (o *Orchestrator) scheduleOrphanDrop(s shard.ID, id shard.ServerID, then func()) {
	if ss := o.shards[s]; ss != nil {
		if ss.orphans == nil {
			ss.orphans = make(map[shard.ServerID]bool)
		}
		ss.orphans[id] = true
	}
	o.loop.AfterL(o.cfg.OrphanRetry, lbOrphanGC, func() { o.dropOrphan(s, id, then) })
}

// dropOrphan retries a drop_shard until the server acknowledges it, dies
// (its replicas die with the process; a rejoin runs SyncAssignment), or
// legitimately re-engages with the shard. Every exit path clears the
// shard's pending-orphan mark and fires then.
func (o *Orchestrator) dropOrphan(s shard.ID, id shard.ServerID, then func()) {
	ss := o.shards[s]
	if ss == nil {
		return
	}
	resolved := func() {
		delete(ss.orphans, id)
		if then != nil {
			then()
		}
	}
	if ss.mig != nil && (ss.mig.to == id || ss.mig.from == id) {
		resolved() // a live migration owns this server's replica state now
		return
	}
	if o.findSlot(ss, id) != -1 {
		resolved() // the server legitimately holds the shard again
		return
	}
	st := o.servers[id]
	if st == nil || !st.alive {
		resolved() // death or the rejoin sync cleans up
		return
	}
	o.callStep(o.curAlloc, "drop_orphan", s, id, func(srv *appserver.Server) {
		srv.DropShard(s)
	}, func() {
		o.loop.Metrics().Counter("orchestrator_orphan_drops_total",
			"app", string(o.cfg.App)).Inc()
		resolved()
	}, func() {
		o.failedRPC()
		o.loop.AfterL(o.cfg.OrphanRetry, lbOrphanGC, func() { o.dropOrphan(s, id, then) })
	})
}

// resumeSource returns an aborted graceful migration's old primary to active
// serving: its prepare_drop may have executed (leaving it forwarding to a
// target that no longer holds the shard) even though the reply was lost.
// Safe to issue blindly — ResumeShardGen no-ops unless the replica is
// forwarding. It waits out any pending orphan of the shard first: an orphan
// may be an active primary, and resuming next to it would put two primaries
// up at once. Retries until acknowledged: a stuck forwarder bounces every
// client of the shard.
func (o *Orchestrator) resumeSource(s shard.ID, id shard.ServerID) {
	ss := o.shards[s]
	if ss == nil || ss.mig != nil || o.findSlot(ss, id) == -1 {
		return // superseded: a newer migration or assignment owns the shard
	}
	st := o.servers[id]
	if st == nil || !st.alive {
		return
	}
	if len(ss.orphans) > 0 {
		o.loop.AfterL(o.cfg.OrphanRetry, lbOrphanGC, func() { o.resumeSource(s, id) })
		return
	}
	gen := o.store.NextEpoch()
	o.callStep(o.curAlloc, "resume_shard", s, id, func(srv *appserver.Server) {
		srv.ResumeShardGen(s, gen)
	}, nil, func() {
		o.failedRPC()
		o.loop.AfterL(o.cfg.OrphanRetry, lbOrphanGC, func() { o.resumeSource(s, id) })
	})
}

// failedRPC counts one failed orchestrator->server RPC in both the legacy
// counter and the labeled registry.
func (o *Orchestrator) failedRPC() {
	o.FailedRPCs.Inc()
	o.loop.Metrics().Counter("orchestrator_failed_rpcs_total",
		"app", string(o.cfg.App)).Inc()
}

// call performs an orchestrator->server RPC: handle runs at the server,
// done runs back home after the round trip, fail runs if the server is
// unreachable.
func (o *Orchestrator) call(id shard.ServerID, handle func(*appserver.Server), done func(), fail func()) {
	o.net.Call(o.cfg.HomeRegion, rpcnet.Endpoint(id), func() {
		if srv := o.dir.Lookup(id); srv != nil {
			handle(srv)
		}
	}, func(time.Duration) {
		if done != nil {
			done()
		}
	}, func() {
		if fail != nil {
			fail()
		}
	})
}

// callStep performs one shard-lifecycle RPC as a traced child span of
// parent, so a migration reads as its protocol steps in the trace viewer.
// The step's completion (ok or failed) also fires the MigrationStep hook.
func (o *Orchestrator) callStep(parent trace.SpanID, step string, s shard.ID, id shard.ServerID,
	handle func(*appserver.Server), done func(), fail func()) {
	tr := o.loop.Tracer()
	var sp trace.SpanID
	if tr.Enabled() {
		sp = tr.StartSpan("orchestrator", step, parent, trace.String("server", string(id)))
	}
	stepDone := func(status string) {
		for _, h := range o.hooks {
			if h.MigrationStep != nil {
				h.MigrationStep(s, step, id, status)
			}
		}
	}
	o.call(id, handle, func() {
		if tr.Enabled() {
			tr.EndSpan(sp, trace.String("status", "ok"))
		}
		stepDone("ok")
		if done != nil {
			done()
		}
	}, func() {
		if tr.Enabled() {
			tr.EndSpan(sp, trace.String("status", "failed"))
		}
		stepDone("failed")
		if fail != nil {
			fail()
		}
	})
}

func (o *Orchestrator) rpcAddShard(id shard.ServerID, s shard.ID, role shard.Role) {
	gen := o.store.NextEpoch()
	o.callStep(o.curAlloc, "add_shard", s, id,
		func(srv *appserver.Server) { srv.AddShardGen(s, role, gen) }, nil, func() {
			o.failedRPC()
			o.loop.AfterL(o.cfg.OrphanRetry, lbOrphanGC, func() { o.retryAdd(s, id) })
		})
}

// retryAdd re-issues an add_shard whose RPC failed while the authoritative
// slots still name the server: the published map already promises the
// replica there, so clients route to it — an unrepaired slot bounces them
// with not-owner until something else happens to move the shard. Retries
// stop once the slot is reassigned or the server dies; an add that executed
// even though its reply was lost makes the retry an idempotent no-op.
func (o *Orchestrator) retryAdd(s shard.ID, id shard.ServerID) {
	ss := o.shards[s]
	if ss == nil {
		return
	}
	if ss.migrating {
		// A migration owns this shard's transitions; re-check after it.
		o.loop.AfterL(o.cfg.OrphanRetry, lbOrphanGC, func() { o.retryAdd(s, id) })
		return
	}
	slot := o.findSlot(ss, id)
	if slot == -1 {
		return // slot reassigned; the map no longer promises this replica
	}
	st := o.servers[id]
	if st == nil || !st.alive {
		return // death or the rejoin sync reconciles
	}
	o.rpcAddShard(id, s, ss.slots[slot].role)
}

func (o *Orchestrator) rpcDropShard(id shard.ServerID, s shard.ID) {
	o.callStep(o.curAlloc, "drop_shard", s, id,
		func(srv *appserver.Server) { srv.DropShard(s) }, nil, func() {
			o.failedRPC()
			o.scheduleOrphanDrop(s, id, nil)
		})
}

func (o *Orchestrator) rpcChangeRole(id shard.ServerID, s shard.ID, from, to shard.Role) {
	o.rpcChangeRoleThen(id, s, from, to, nil)
}

// rpcChangeRoleThen is rpcChangeRole with a completion callback: done(true)
// after the server acknowledged the role change, done(false) if it was
// unreachable. DemotePrimaries chains demote→promote through it so the two
// primaries can never be active simultaneously server-side.
func (o *Orchestrator) rpcChangeRoleThen(id shard.ServerID, s shard.ID, from, to shard.Role, done func(ok bool)) {
	tr := o.loop.Tracer()
	var sp trace.SpanID
	if tr.Enabled() {
		sp = tr.StartSpan("orchestrator", "change_role", o.curAlloc,
			trace.String("server", string(id)),
			trace.String("shard", string(s)),
			trace.String("from", from.String()),
			trace.String("to", to.String()))
	}
	o.loop.Metrics().Counter("orchestrator_role_changes_total",
		"app", string(o.cfg.App), "to", to.String()).Inc()
	for _, h := range o.hooks {
		if h.RoleChanged != nil {
			h.RoleChanged(s, id, from, to)
		}
	}
	gen := o.store.NextEpoch()
	o.call(id, func(srv *appserver.Server) { _ = srv.ChangeRoleGen(s, from, to, gen) },
		func() {
			tr.EndSpan(sp, trace.String("status", "ok"))
			if done != nil {
				done(true)
			}
		},
		func() {
			tr.EndSpan(sp, trace.String("status", "failed"))
			o.failedRPC()
			if done != nil {
				done(false)
			}
		})
}

// --- publication ---

// publishRejected counts one refused-to-publish-garbage event: a planned
// change or map entry that would have violated map invariants (duplicate
// replica, two primaries) was dropped instead of published.
func (o *Orchestrator) publishRejected(reason string) {
	o.loop.Metrics().Counter("orchestrator_publish_rejected_total",
		"app", string(o.cfg.App), "reason", reason).Inc()
}

// sanitizeSlots repairs a shard's slot list in place so the published map
// always satisfies Validate: duplicate servers collapse to the first
// occurrence (preferring the primary) and surplus primaries demote. Repairs
// are counted via orchestrator_publish_rejected_total; they indicate a
// planning bug upstream but must not take the control plane down.
func (o *Orchestrator) sanitizeSlots(ss *shardState) {
	seen := make(map[shard.ServerID]int, len(ss.slots))
	out := ss.slots[:0]
	for _, slot := range ss.slots {
		if slot.server == "" {
			out = append(out, slot)
			continue
		}
		if j, dup := seen[slot.server]; dup {
			if slot.role == shard.RolePrimary && out[j].role != shard.RolePrimary {
				out[j].role = shard.RolePrimary
			}
			o.publishRejected("duplicate_replica")
			continue
		}
		seen[slot.server] = len(out)
		out = append(out, slot)
	}
	primaries := 0
	for i := range out {
		if out[i].server == "" || out[i].role != shard.RolePrimary {
			continue
		}
		primaries++
		if primaries > 1 {
			out[i].role = shard.RoleSecondary
			o.publishRejected("surplus_primary")
		}
	}
	ss.slots = out
}

// buildMap assembles the shard map (and per-server assignment index) from
// the current slots, stamped with the given version and a fresh epoch.
func (o *Orchestrator) buildMap(version int64) (*shard.Map, map[shard.ServerID]map[shard.ID]shard.Role) {
	m := shard.NewMap(o.cfg.App)
	m.Version = version
	m.Gen = o.store.NextEpoch()
	perServer := make(map[shard.ServerID]map[shard.ID]shard.Role)
	for _, id := range o.order {
		ss := o.shards[id]
		var as []shard.Assignment
		for _, slot := range ss.slots {
			if slot.server == "" {
				continue
			}
			as = append(as, shard.Assignment{Server: slot.server, Role: slot.role})
			if perServer[slot.server] == nil {
				perServer[slot.server] = make(map[shard.ID]shard.Role)
			}
			perServer[slot.server][id] = slot.role
		}
		if len(as) > 0 {
			m.Entries[id] = as
		}
	}
	return m, perServer
}

// publish pushes a new shard-map version to service discovery and persists
// per-server assignments to the coordination store. Every publication is
// stamped with a fresh coordination epoch so consumers apply maps in
// generation order and drop stale ones.
func (o *Orchestrator) publish() {
	o.version++
	m, perServer := o.buildMap(o.version)
	if err := m.Validate(); err != nil {
		// Never publish (or panic on) an invariant-violating map: repair
		// the offending slots, count the rejection, and rebuild.
		for _, id := range o.order {
			o.sanitizeSlots(o.shards[id])
		}
		m, perServer = o.buildMap(o.version)
		if err := m.Validate(); err != nil {
			panic(fmt.Sprintf("orchestrator: invalid map after sanitize: %v", err))
		}
	}
	if tr := o.loop.Tracer(); tr.Enabled() {
		tr.Event("orchestrator", "publish", o.curAlloc,
			trace.String("app", string(o.cfg.App)),
			trace.Int64("version", m.Version),
			trace.Int("entries", len(m.Entries)))
	}
	o.loop.Metrics().Counter("orchestrator_publishes_total",
		"app", string(o.cfg.App)).Inc()
	for _, h := range o.hooks {
		if h.MapPublished != nil {
			h.MapPublished(m.Version, len(m.Entries))
		}
		if h.MapSnapshot != nil {
			h.MapSnapshot(m)
		}
	}
	if o.cfg.DeltaPublish && o.lastPub != nil {
		d := m.Diff(o.lastPub, o.deltaScratch)
		o.deltaScratch = o.disc.PublishDelta(d)
		if v, _, ok := o.disc.CurrentMeta(o.cfg.App); !ok || v != m.Version {
			// The delta could not chain onto discovery's current map (it was
			// dropped as a gap); resync with a full snapshot.
			o.disc.Publish(m)
		}
		o.lastPub = m
	} else {
		o.disc.Publish(m)
		if o.cfg.DeltaPublish {
			// First publication: discovery cloned m, so the freshly built map
			// is ours to retain as the next diff base.
			o.lastPub = m
		}
	}

	// Persist assignments for server start-up reads (§3.2). Servers with
	// no shards get their node cleared.
	for _, id := range o.sortedServerIDs() {
		node := o.paths.AssignNode(id)
		data := appserver.EncodeAssignment(perServer[id])
		if o.store.Exists(node) {
			_, _ = o.store.Set(node, data, -1)
		} else {
			_ = o.store.Create(node, data, nil)
		}
	}
}

// Version returns the latest published map version.
func (o *Orchestrator) Version() int64 { return o.version }

// --- TaskController-facing API ---

// AssignmentSnapshot returns the current authoritative shard map (not the
// possibly stale discovery view).
func (o *Orchestrator) AssignmentSnapshot() *shard.Map {
	m := shard.NewMap(o.cfg.App)
	m.Version = o.version
	for _, id := range o.order {
		ss := o.shards[id]
		var as []shard.Assignment
		for _, slot := range ss.slots {
			if slot.server != "" {
				as = append(as, shard.Assignment{Server: slot.server, Role: slot.role})
			}
		}
		if len(as) > 0 {
			m.Entries[id] = as
		}
	}
	return m
}

// AliveReplicas returns, for each shard with a replica on server, how many
// of its replicas are currently on alive, non-draining servers. The
// TaskController uses this to enforce the per-shard unavailability cap.
func (o *Orchestrator) AliveReplicas(server shard.ServerID) map[shard.ID]int {
	out := make(map[shard.ID]int)
	for _, id := range o.order {
		ss := o.shards[id]
		onServer := false
		alive := 0
		for _, slot := range ss.slots {
			if slot.server == server {
				onServer = true
			}
			if st := o.servers[slot.server]; st != nil && st.alive {
				alive++
			}
		}
		if onServer {
			out[id] = alive
		}
	}
	return out
}

// SetReplicas changes a shard's desired replica count; the next allocation
// adds or drops replicas to match (the shard scaler's lever, §6.1).
func (o *Orchestrator) SetReplicas(s shard.ID, n int) {
	if n <= 0 {
		panic(fmt.Sprintf("orchestrator: SetReplicas(%s, %d)", s, n))
	}
	if ss := o.shards[s]; ss != nil {
		ss.cfg.Replicas = n
	}
}

// SetRegionPreference updates a shard's regional placement preference; the
// next periodic allocation migrates replicas toward it (the Fig 20
// AppShard-follows-DBShard workflow).
func (o *Orchestrator) SetRegionPreference(s shard.ID, region topology.RegionID, weight float64) {
	if ss := o.shards[s]; ss != nil {
		ss.cfg.RegionPreference = region
		ss.cfg.PreferenceWeight = weight
	}
}

// ShardLoadValue returns the latest measured load of a shard for one
// resource (the shard scaler's input).
func (o *Orchestrator) ShardLoadValue(s shard.ID, r topology.Resource) float64 {
	if ss := o.shards[s]; ss != nil {
		return o.shardLoad(ss).Get(r)
	}
	return 0
}

// ShardIDs returns the managed shard IDs in configuration order.
func (o *Orchestrator) ShardIDs() []shard.ID {
	out := make([]shard.ID, len(o.order))
	copy(out, o.order)
	return out
}

// TotalReplicas returns the configured replica count of a shard (0 if
// unknown).
func (o *Orchestrator) TotalReplicas(s shard.ID) int {
	if ss := o.shards[s]; ss != nil {
		return ss.cfg.Replicas
	}
	return 0
}

// ServerAlive reports whether the orchestrator currently believes the
// server is alive.
func (o *Orchestrator) ServerAlive(id shard.ServerID) bool {
	st := o.servers[id]
	return st != nil && st.alive
}

// ShardsOnServer returns how many replicas the server currently holds.
func (o *Orchestrator) ShardsOnServer(id shard.ServerID) int {
	n := 0
	for _, ss := range o.shards {
		for _, slot := range ss.slots {
			if slot.server == id {
				n++
			}
		}
	}
	return n
}

// Drain moves every replica off the server and calls onDone when the
// server is empty. The TaskController drains containers before approving
// restarts for applications configured to do so (§4.1).
func (o *Orchestrator) Drain(id shard.ServerID, onDone func()) {
	st := o.servers[id]
	if st == nil || o.ShardsOnServer(id) == 0 {
		if onDone != nil {
			onDone()
		}
		return
	}
	st.draining = true
	o.draining[id] = &drainRequest{server: id, onDone: onDone}
	o.allocate(allocator.Periodic)
	o.checkDrainsDone() // arms the periodic re-check
}

// CancelDrain clears the draining mark (e.g. operation aborted).
func (o *Orchestrator) CancelDrain(id shard.ServerID) {
	if st := o.servers[id]; st != nil {
		st.draining = false
	}
	delete(o.draining, id)
}

// checkDrainsDone fires completions for servers that emptied out. Servers
// still holding shards are picked up by the regular periodic allocation
// (which retries moves the churn caps deferred); a single re-check timer is
// kept armed while any drain is outstanding.
func (o *Orchestrator) checkDrainsDone() {
	ids := make([]shard.ServerID, 0, len(o.draining))
	for id := range o.draining {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		req := o.draining[id]
		if o.ShardsOnServer(id) == 0 && !o.shardsMigratingFrom(id) {
			delete(o.draining, id)
			if req.onDone != nil {
				req.onDone()
			}
		}
	}
	if len(o.draining) > 0 && !o.drainCheckArmed {
		o.drainCheckArmed = true
		o.loop.AfterL(o.cfg.AllocInterval, lbDrainCheck, func() {
			o.drainCheckArmed = false
			o.checkDrainsDone()
		})
	}
}

func (o *Orchestrator) shardsMigratingFrom(id shard.ServerID) bool {
	for _, m := range o.migrationQueue {
		if m.from == id {
			return true
		}
	}
	return false
}

// DemotePrimaries demotes every primary replica on the server, promoting a
// secondary elsewhere — SM's preparation for short non-negotiable events
// like rack-switch maintenance (§4.2).
func (o *Orchestrator) DemotePrimaries(id shard.ServerID) {
	changed := false
	for _, sid := range o.order {
		ss := o.shards[sid]
		if ss.migrating {
			continue
		}
		for i, slot := range ss.slots {
			if slot.server != id || slot.role != shard.RolePrimary {
				continue
			}
			// Find an alive secondary to promote.
			promote := -1
			for j, other := range ss.slots {
				if j == i || other.role != shard.RoleSecondary {
					continue
				}
				if st := o.servers[other.server]; st != nil && st.alive && !st.draining {
					promote = j
					break
				}
			}
			if promote == -1 {
				continue
			}
			ss.slots[i].role = shard.RoleSecondary
			ss.slots[promote].role = shard.RolePrimary
			// Chain the RPCs: promote only after the demote is
			// acknowledged, so the two servers never both hold the active
			// primary role (concurrent RPCs could land promote-first).
			promoteSrv := ss.slots[promote].server
			o.rpcChangeRoleThen(id, sid, shard.RolePrimary, shard.RoleSecondary, func(ok bool) {
				if !ok {
					// The old primary never heard the demotion (it may
					// still be serving); revert the book-keeping rather
					// than promote a second primary next to it. Slots may
					// have shifted while the RPC was in flight, so find
					// the servers again instead of trusting the indices.
					if j := o.findSlot(ss, id); j != -1 && ss.slots[j].role == shard.RoleSecondary {
						ss.slots[j].role = shard.RolePrimary
					}
					if j := o.findSlot(ss, promoteSrv); j != -1 && ss.slots[j].role == shard.RolePrimary {
						ss.slots[j].role = shard.RoleSecondary
					}
					o.publish()
					return
				}
				o.rpcChangeRole(promoteSrv, sid, shard.RoleSecondary, shard.RolePrimary)
			})
			changed = true
		}
	}
	if changed {
		o.publish()
	}
}

// ForceAllocate triggers an immediate allocation (exposed for tests and
// the smbench harness).
func (o *Orchestrator) ForceAllocate(mode allocator.Mode) { o.allocate(mode) }

// Stats returns a human-readable summary for smctl.
func (o *Orchestrator) Stats() string {
	alive := 0
	for _, st := range o.servers {
		if st.alive {
			alive++
		}
	}
	return fmt.Sprintf("app=%s servers=%d/%d shards=%d version=%d moves=%d emergencies=%d",
		o.cfg.App, alive, len(o.servers), len(o.shards), o.version,
		o.ShardMoves.Value(), o.EmergencyRuns.Value())
}
