package orchestrator

import (
	"fmt"
	"testing"
	"time"

	"shardmanager/internal/allocator"
	"shardmanager/internal/appserver"
	"shardmanager/internal/cluster"
	"shardmanager/internal/coord"
	"shardmanager/internal/discovery"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

// countApp tracks per-shard ownership for assertions.
type countApp struct {
	owner map[shard.ID]shard.Role
}

func newCountApp() *countApp { return &countApp{owner: map[shard.ID]shard.Role{}} }

func (a *countApp) AddShard(s shard.ID, role shard.Role)    { a.owner[s] = role }
func (a *countApp) DropShard(s shard.ID)                    { delete(a.owner, s) }
func (a *countApp) ChangeRole(s shard.ID, _, to shard.Role) { a.owner[s] = to }
func (a *countApp) HandleRequest(req *appserver.Request) (any, error) {
	return "ok", nil
}

type world struct {
	loop     *sim.Loop
	fleet    *topology.Fleet
	store    *coord.Store
	disc     *discovery.Service
	net      *rpcnet.Network
	dir      *appserver.Directory
	managers map[topology.RegionID]*cluster.Manager
	host     *appserver.Host
	orch     *Orchestrator
}

// buildWorld wires a full single-app deployment: fleet, one cluster manager
// per region, one job per region, hosts, and an orchestrator.
func buildWorld(t *testing.T, regions []topology.RegionID, serversPerRegion int, cfg Config) *world {
	t.Helper()
	fleet := topology.Build(topology.Spec{
		Regions:           regions,
		MachinesPerRegion: serversPerRegion,
		Capacity:          topology.Capacity{topology.ResourceCPU: 100},
	})
	loop := sim.NewLoop(11)
	w := &world{
		loop:     loop,
		fleet:    fleet,
		store:    coord.NewStore(),
		disc:     discovery.NewService(loop, discovery.FixedDelay(500*time.Millisecond)),
		net:      rpcnet.NewNetwork(loop, fleet),
		dir:      appserver.NewDirectory(),
		managers: make(map[topology.RegionID]*cluster.Manager),
	}
	for _, r := range regions {
		mgr := cluster.NewManager(loop, fleet, r, cluster.DefaultOptions())
		w.managers[r] = mgr
		job := cluster.JobID(fmt.Sprintf("%s-job-%s", cfg.App, r))
		host := appserver.NewHost(loop, w.net, w.dir, w.store, fleet, cfg.App, job,
			func(s *appserver.Server) appserver.Application { return newCountApp() })
		mgr.AddListener(host)
		w.host = host
		mgr.CreateJob(job, string(cfg.App), serversPerRegion)
	}
	w.orch = New(loop, w.store, w.disc, w.net, w.dir, fleet, cfg, 1)
	w.orch.Start()
	return w
}

func shardConfigs(n, replicas int) []ShardConfig {
	out := make([]ShardConfig, n)
	for i := range out {
		out[i] = ShardConfig{
			ID:       shard.ID(fmt.Sprintf("s%03d", i)),
			Replicas: replicas,
			DefaultLoad: topology.Capacity{
				topology.ResourceCPU:        1,
				topology.ResourceShardCount: 1,
			},
		}
	}
	return out
}

func basePolicy() allocator.Policy {
	p := allocator.DefaultPolicy(topology.ResourceCPU, topology.ResourceShardCount)
	p.SolveTime = 0
	return p
}

func baseConfig(strategy shard.ReplicationStrategy, shards, replicas int) Config {
	return Config{
		App:               "app",
		Strategy:          strategy,
		Shards:            shardConfigs(shards, replicas),
		Policy:            basePolicy(),
		ServerCapacity:    topology.Capacity{topology.ResourceCPU: 100, topology.ResourceShardCount: 1000},
		GracefulMigration: true,
	}
}

// assertConverged checks that every shard has the expected replica count on
// alive servers and that the authoritative map validates.
func assertConverged(t *testing.T, w *world, replicas int) {
	t.Helper()
	m := w.orch.AssignmentSnapshot()
	if err := m.Validate(); err != nil {
		t.Fatalf("invalid map: %v", err)
	}
	for id, as := range m.Entries {
		if len(as) != replicas {
			t.Fatalf("shard %s has %d replicas, want %d", id, len(as), replicas)
		}
		for _, a := range as {
			if srv := w.dir.Lookup(a.Server); srv == nil {
				t.Fatalf("shard %s on dead server %s", id, a.Server)
			}
		}
	}
	if len(m.Entries) != len(w.orch.cfg.Shards) {
		t.Fatalf("map has %d shards, want %d", len(m.Entries), len(w.orch.cfg.Shards))
	}
}

func TestInitialPlacementPrimaryOnly(t *testing.T) {
	w := buildWorld(t, []topology.RegionID{"r1"}, 6, baseConfig(shard.PrimaryOnly, 30, 1))
	w.loop.RunFor(3 * time.Minute)
	assertConverged(t, w, 1)
	// Every replica is a primary and the owning server agrees.
	m := w.orch.AssignmentSnapshot()
	for id, as := range m.Entries {
		if as[0].Role != shard.RolePrimary {
			t.Fatalf("shard %s role = %v", id, as[0].Role)
		}
		srv := w.dir.Lookup(as[0].Server)
		if !srv.HoldsActive(id) {
			t.Fatalf("server %s does not hold %s", as[0].Server, id)
		}
	}
	// Discovery received the map.
	if cur := w.disc.Current("app"); cur == nil || cur.Version == 0 {
		t.Fatal("map never published")
	}
}

func TestInitialPlacementPrimarySecondarySpread(t *testing.T) {
	w := buildWorld(t, []topology.RegionID{"r1", "r2", "r3"}, 4, baseConfig(shard.PrimarySecondary, 20, 3))
	w.loop.RunFor(5 * time.Minute)
	assertConverged(t, w, 3)
	m := w.orch.AssignmentSnapshot()
	for id, as := range m.Entries {
		primaries := 0
		regions := map[topology.RegionID]bool{}
		for _, a := range as {
			if a.Role == shard.RolePrimary {
				primaries++
			}
			regions[w.net.Region(rpcnet.Endpoint(a.Server))] = true
		}
		if primaries != 1 {
			t.Fatalf("shard %s has %d primaries", id, primaries)
		}
		if len(regions) != 3 {
			t.Fatalf("shard %s spans %d regions, want 3", id, len(regions))
		}
	}
}

func TestFailoverReplacesDeadServerReplicas(t *testing.T) {
	cfg := baseConfig(shard.PrimaryOnly, 24, 1)
	cfg.FailoverGrace = 20 * time.Second
	w := buildWorld(t, []topology.RegionID{"r1"}, 6, cfg)
	w.loop.RunFor(3 * time.Minute)
	assertConverged(t, w, 1)

	// Kill a machine; after the grace period its shards move elsewhere.
	mgr := w.managers["r1"]
	cid := mgr.RunningContainers("app-job-r1")[0]
	victim := shard.ServerID(cid)
	before := w.orch.ShardsOnServer(victim)
	if before == 0 {
		t.Fatal("victim held no shards")
	}
	c, _ := mgr.Container(cid)
	mgr.KillMachine(c.Machine)
	w.loop.RunFor(5 * time.Minute)
	assertConverged(t, w, 1)
	if w.orch.EmergencyRuns.Value() == 0 {
		t.Fatal("no emergency allocation ran")
	}
	if n := w.orch.ShardsOnServer(victim); n != 0 {
		t.Fatalf("dead server still holds %d shards", n)
	}
}

func TestQuickRestartDoesNotTriggerFailover(t *testing.T) {
	cfg := baseConfig(shard.PrimaryOnly, 12, 1)
	cfg.FailoverGrace = 5 * time.Minute // restart (60s) well under grace
	w := buildWorld(t, []topology.RegionID{"r1"}, 4, cfg)
	w.loop.RunFor(3 * time.Minute)
	mgr := w.managers["r1"]
	cid := mgr.RunningContainers("app-job-r1")[0]
	mgr.Submit(cluster.Operation{Type: cluster.OpRestart, Container: cid, Negotiable: false, Reason: "upgrade"})
	w.loop.RunFor(10 * time.Minute)
	if w.orch.EmergencyRuns.Value() != 0 {
		t.Fatalf("emergency ran %d times for a quick restart", w.orch.EmergencyRuns.Value())
	}
	// The restarted server restored its shards from the store.
	srv := w.dir.Lookup(shard.ServerID(cid))
	if srv == nil {
		t.Fatal("server did not come back")
	}
	if w.orch.ShardsOnServer(shard.ServerID(cid)) == 0 {
		t.Fatal("orchestrator forgot the server's shards")
	}
	if len(srv.Shards()) == 0 {
		t.Fatal("server did not restore shards at start-up")
	}
}

func TestPrimaryFailoverPromotesSecondary(t *testing.T) {
	cfg := baseConfig(shard.PrimarySecondary, 10, 2)
	cfg.FailoverGrace = 20 * time.Second
	w := buildWorld(t, []topology.RegionID{"r1", "r2"}, 4, cfg)
	w.loop.RunFor(5 * time.Minute)
	assertConverged(t, w, 2)

	// Find the primary server of shard s000 and kill its machine.
	m := w.orch.AssignmentSnapshot()
	prim, ok := m.Primary("s000")
	if !ok {
		t.Fatal("no primary for s000")
	}
	var mgr *cluster.Manager
	var container cluster.Container
	for _, cm := range w.managers {
		if c, ok := cm.Container(cluster.ContainerID(prim)); ok {
			mgr, container = cm, c
			break
		}
	}
	mgr.KillMachine(container.Machine)
	w.loop.RunFor(5 * time.Minute)

	m = w.orch.AssignmentSnapshot()
	newPrim, ok := m.Primary("s000")
	if !ok {
		t.Fatal("shard lost its primary permanently")
	}
	if newPrim == prim {
		t.Fatal("primary still on dead server")
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainEmptiesServer(t *testing.T) {
	cfg := baseConfig(shard.PrimaryOnly, 24, 1)
	w := buildWorld(t, []topology.RegionID{"r1"}, 6, cfg)
	w.loop.RunFor(3 * time.Minute)
	mgr := w.managers["r1"]
	victim := shard.ServerID(mgr.RunningContainers("app-job-r1")[0])
	if w.orch.ShardsOnServer(victim) == 0 {
		t.Fatal("victim empty before drain")
	}
	done := false
	w.orch.Drain(victim, func() { done = true })
	w.loop.RunFor(10 * time.Minute)
	if !done {
		t.Fatalf("drain never completed; still %d shards", w.orch.ShardsOnServer(victim))
	}
	if n := w.orch.ShardsOnServer(victim); n != 0 {
		t.Fatalf("server still holds %d shards", n)
	}
	assertConverged(t, w, 1)
	// After CancelDrain + reallocation, the server may receive shards
	// again.
	w.orch.CancelDrain(victim)
	w.loop.RunFor(5 * time.Minute)
}

func TestDrainEmptyServerCompletesImmediately(t *testing.T) {
	cfg := baseConfig(shard.PrimaryOnly, 4, 1)
	w := buildWorld(t, []topology.RegionID{"r1"}, 4, cfg)
	done := false
	w.orch.Drain("ghost", func() { done = true })
	if !done {
		t.Fatal("drain of unknown server should complete immediately")
	}
	_ = w
}

func TestDemotePrimariesPromotesElsewhere(t *testing.T) {
	cfg := baseConfig(shard.PrimarySecondary, 12, 2)
	w := buildWorld(t, []topology.RegionID{"r1", "r2"}, 4, cfg)
	w.loop.RunFor(5 * time.Minute)
	m := w.orch.AssignmentSnapshot()
	// Pick a server holding at least one primary.
	var victim shard.ServerID
	for id := range m.Entries {
		if p, ok := m.Primary(id); ok {
			victim = p
			break
		}
	}
	w.orch.DemotePrimaries(victim)
	w.loop.RunFor(time.Minute)
	m = w.orch.AssignmentSnapshot()
	for id, as := range m.Entries {
		for _, a := range as {
			if a.Server == victim && a.Role == shard.RolePrimary {
				t.Fatalf("shard %s still has primary on demoted server", id)
			}
		}
		primaries := 0
		for _, a := range as {
			if a.Role == shard.RolePrimary {
				primaries++
			}
		}
		if primaries != 1 {
			t.Fatalf("shard %s has %d primaries after demotion", id, primaries)
		}
	}
}

func TestAliveReplicasReporting(t *testing.T) {
	cfg := baseConfig(shard.SecondaryOnly, 10, 2)
	w := buildWorld(t, []topology.RegionID{"r1", "r2"}, 3, cfg)
	w.loop.RunFor(5 * time.Minute)
	m := w.orch.AssignmentSnapshot()
	srv := m.Entries["s000"][0].Server
	counts := w.orch.AliveReplicas(srv)
	if len(counts) == 0 {
		t.Fatal("no shards reported on server")
	}
	for id, n := range counts {
		if n != 2 {
			t.Fatalf("shard %s alive replicas = %d, want 2", id, n)
		}
	}
}

func TestPublishPersistsAssignments(t *testing.T) {
	cfg := baseConfig(shard.PrimaryOnly, 8, 1)
	w := buildWorld(t, []topology.RegionID{"r1"}, 4, cfg)
	w.loop.RunFor(3 * time.Minute)
	m := w.orch.AssignmentSnapshot()
	srv := m.Entries["s000"][0].Server
	node := appserver.DefaultPaths("app").AssignNode(srv)
	data, _, err := w.store.Get(node)
	if err != nil || len(data) == 0 {
		t.Fatalf("assignment node missing: %v", err)
	}
}

func TestStatsString(t *testing.T) {
	cfg := baseConfig(shard.PrimaryOnly, 4, 1)
	w := buildWorld(t, []topology.RegionID{"r1"}, 4, cfg)
	w.loop.RunFor(2 * time.Minute)
	if s := w.orch.Stats(); s == "" {
		t.Fatal("empty stats")
	}
}

func TestDuplicateShardConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cfg := baseConfig(shard.PrimaryOnly, 1, 1)
	cfg.Shards = append(cfg.Shards, cfg.Shards[0])
	fleet := topology.Build(topology.Spec{Regions: []topology.RegionID{"r"}, MachinesPerRegion: 1})
	loop := sim.NewLoop(1)
	New(loop, coord.NewStore(), discovery.NewService(loop, nil),
		rpcnet.NewNetwork(loop, fleet), appserver.NewDirectory(), fleet, cfg, 1)
}
