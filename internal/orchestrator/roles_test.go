package orchestrator

import (
	"testing"
	"time"

	"shardmanager/internal/cluster"
	"shardmanager/internal/shard"
	"shardmanager/internal/topology"
)

// TestDeadPrimaryDemotedInMapImmediately: when a primary's server dies, the
// published map must never show two primaries — the dead slot is demoted in
// the same reconciliation that promotes the survivor.
func TestDeadPrimaryDemotedInMapImmediately(t *testing.T) {
	cfg := baseConfig(shard.PrimarySecondary, 8, 2)
	cfg.FailoverGrace = 10 * time.Minute // placement stays put; roles move
	w := buildWorld(t, []topology.RegionID{"r1", "r2"}, 4, cfg)
	w.loop.RunFor(5 * time.Minute)
	assertConverged(t, w, 2)

	m := w.orch.AssignmentSnapshot()
	prim, _ := m.Primary("s000")
	var mgr *cluster.Manager
	var cont cluster.Container
	for _, cm := range w.managers {
		if c, ok := cm.Container(cluster.ContainerID(prim)); ok {
			mgr, cont = cm, c
		}
	}
	mgr.KillMachine(cont.Machine)
	// Within seconds (not an allocation interval), the role must fail
	// over and the map must stay valid.
	w.loop.RunFor(5 * time.Second)
	m = w.orch.AssignmentSnapshot()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	newPrim, ok := m.Primary("s000")
	if !ok {
		t.Fatal("no primary after failover")
	}
	if newPrim == prim {
		t.Fatal("primary still the dead server")
	}
	// Every shard that had its primary on the dead server failed over.
	for _, id := range w.orch.ShardIDs() {
		p, ok := m.Primary(id)
		if !ok {
			t.Fatalf("shard %s lost its primary", id)
		}
		if p == prim {
			t.Fatalf("shard %s primary still on dead server", id)
		}
	}
}

// TestRestartedPrimaryComesBackAsSecondary: after the role failed over, the
// restarted server restores the *corrected* role from the persisted
// assignment — not its old primaryship.
func TestRestartedPrimaryComesBackAsSecondary(t *testing.T) {
	cfg := baseConfig(shard.PrimarySecondary, 6, 2)
	cfg.FailoverGrace = 10 * time.Minute
	w := buildWorld(t, []topology.RegionID{"r1", "r2"}, 3, cfg)
	w.loop.RunFor(5 * time.Minute)

	m := w.orch.AssignmentSnapshot()
	prim, _ := m.Primary("s000")
	var mgr *cluster.Manager
	var cont cluster.Container
	for _, cm := range w.managers {
		if c, ok := cm.Container(cluster.ContainerID(prim)); ok {
			mgr, cont = cm, c
		}
	}
	mgr.KillMachine(cont.Machine)
	w.loop.RunFor(30 * time.Second)
	mgr.RestoreMachine(cont.Machine)
	w.loop.RunFor(2 * time.Minute)

	srv := w.dir.Lookup(prim)
	if srv == nil {
		t.Fatal("server did not come back")
	}
	if role, ok := srv.Shards()["s000"]; ok && role == shard.RolePrimary {
		// It may have been re-promoted by reconciliation only if the
		// map agrees; the map itself must be consistent either way.
		m = w.orch.AssignmentSnapshot()
		if p, _ := m.Primary("s000"); p != prim {
			t.Fatalf("server believes it is primary but map says %s", p)
		}
	}
	if err := w.orch.AssignmentSnapshot().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSetReplicasGrowAndShrinkLive: the shard scaler's lever works against
// a live deployment in both directions.
func TestSetReplicasGrowAndShrinkLive(t *testing.T) {
	cfg := baseConfig(shard.SecondaryOnly, 6, 2)
	w := buildWorld(t, []topology.RegionID{"r1", "r2"}, 4, cfg)
	w.loop.RunFor(5 * time.Minute)
	assertConverged(t, w, 2)

	w.orch.SetReplicas("s000", 3)
	w.loop.RunFor(5 * time.Minute)
	m := w.orch.AssignmentSnapshot()
	if got := len(m.Replicas("s000")); got != 3 {
		t.Fatalf("after grow: %d replicas", got)
	}
	// The new replica landed on a live server and is actively held.
	for _, a := range m.Replicas("s000") {
		srv := w.dir.Lookup(a.Server)
		if srv == nil || !srv.HoldsActive("s000") {
			t.Fatalf("replica on %s not active", a.Server)
		}
	}

	w.orch.SetReplicas("s000", 2)
	w.loop.RunFor(5 * time.Minute)
	m = w.orch.AssignmentSnapshot()
	if got := len(m.Replicas("s000")); got != 2 {
		t.Fatalf("after shrink: %d replicas", got)
	}
}

func TestSetReplicasPanicsOnZero(t *testing.T) {
	cfg := baseConfig(shard.SecondaryOnly, 2, 2)
	w := buildWorld(t, []topology.RegionID{"r1"}, 2, cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w.orch.SetReplicas("s000", 0)
}

// TestRegionPreferenceChangeTriggersMigration: updating a shard's region
// preference moves it at the next periodic allocation (Fig 20's lever).
func TestRegionPreferenceChangeTriggersMigration(t *testing.T) {
	cfg := baseConfig(shard.PrimaryOnly, 12, 1)
	cfg.Policy.AffinityWeight = 300
	w := buildWorld(t, []topology.RegionID{"r1", "r2"}, 4, cfg)
	w.loop.RunFor(5 * time.Minute)

	for _, id := range w.orch.ShardIDs() {
		w.orch.SetRegionPreference(id, "r2", 300)
	}
	w.loop.RunFor(10 * time.Minute)
	m := w.orch.AssignmentSnapshot()
	for _, id := range w.orch.ShardIDs() {
		srv, _ := m.Primary(id)
		c := false
		for _, cm := range w.managers {
			if cm.Region == "r2" {
				if _, ok := cm.Container(cluster.ContainerID(srv)); ok {
					c = true
				}
			}
		}
		if !c {
			t.Fatalf("shard %s not migrated to r2 (on %s)", id, srv)
		}
	}
}

// TestMigrationTargetDiesMidFlight: a graceful migration whose target dies
// mid-protocol aborts and the shard is repaired by emergency allocation.
func TestMigrationTargetDiesMidFlight(t *testing.T) {
	cfg := baseConfig(shard.PrimaryOnly, 12, 1)
	cfg.FailoverGrace = 15 * time.Second
	cfg.ShardLoadTime = 10 * time.Second // long window to inject the failure
	cfg.Policy.AffinityWeight = 300
	w := buildWorld(t, []topology.RegionID{"r1", "r2"}, 4, cfg)
	w.loop.RunFor(5 * time.Minute)

	// Force migrations toward r2, then kill all of r2 mid-flight.
	for _, id := range w.orch.ShardIDs() {
		w.orch.SetRegionPreference(id, "r2", 300)
	}
	w.orch.ForceAllocate(0) // Periodic
	// Kill r2 during the migrations' state-load window (prepare_add has
	// been sent; add_shard has not), so the protocol aborts mid-flight.
	w.loop.RunFor(5 * time.Second)
	w.managers["r2"].FailRegion()
	w.loop.RunFor(10 * time.Minute)

	// All shards must end up assigned to live servers with a valid map.
	m := w.orch.AssignmentSnapshot()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, id := range w.orch.ShardIDs() {
		as := m.Replicas(id)
		if len(as) != 1 {
			t.Fatalf("shard %s has %d replicas", id, len(as))
		}
		if w.dir.Lookup(as[0].Server) == nil {
			t.Fatalf("shard %s stranded on dead server %s", id, as[0].Server)
		}
	}
	// The region failure must have been handled through the abort path
	// (failed migration RPCs) and/or emergency reallocation.
	if w.orch.FailedRPCs.Value() == 0 && w.orch.EmergencyRuns.Value() == 0 {
		t.Fatal("neither failed RPCs nor emergency runs after mid-flight region loss")
	}
}

// TestDrainWithZeroShardLoadTime covers graceful migration without a
// configured load window (ShardLoadTime 0): the protocol still completes.
func TestDrainWithZeroShardLoadTime(t *testing.T) {
	cfg := baseConfig(shard.PrimaryOnly, 10, 1)
	w := buildWorld(t, []topology.RegionID{"r1"}, 4, cfg)
	w.loop.RunFor(3 * time.Minute)
	victim := shard.ServerID(w.managers["r1"].RunningContainers("app-job-r1")[0])
	done := false
	w.orch.Drain(victim, func() { done = true })
	w.loop.RunFor(10 * time.Minute)
	if !done || w.orch.ShardsOnServer(victim) != 0 {
		t.Fatalf("drain incomplete: done=%v remaining=%d", done, w.orch.ShardsOnServer(victim))
	}
}

// TestAccessorsAndStop covers the small control-plane accessors and the
// §6.2 Stop/Start path at the package level.
func TestAccessorsAndStop(t *testing.T) {
	cfg := baseConfig(shard.PrimaryOnly, 6, 1)
	w := buildWorld(t, []topology.RegionID{"r1"}, 3, cfg)
	w.loop.RunFor(3 * time.Minute)

	if w.orch.Version() == 0 {
		t.Fatal("no map published")
	}
	if w.orch.TotalReplicas("s000") != 1 || w.orch.TotalReplicas("ghost") != 0 {
		t.Fatal("TotalReplicas wrong")
	}
	if got := len(w.orch.ShardIDs()); got != 6 {
		t.Fatalf("ShardIDs = %d", got)
	}
	if w.orch.ShardLoadValue("s000", topology.ResourceShardCount) != 1 {
		t.Fatal("ShardLoadValue wrong")
	}
	if w.orch.ShardLoadValue("ghost", topology.ResourceCPU) != 0 {
		t.Fatal("ghost load should be 0")
	}
	m := w.orch.AssignmentSnapshot()
	srv, _ := m.Primary("s000")
	if !w.orch.ServerAlive(srv) || w.orch.ServerAlive("ghost") {
		t.Fatal("ServerAlive wrong")
	}

	// Stop freezes the version; Start resumes; double calls are no-ops.
	v := w.orch.Version()
	w.orch.Stop()
	w.orch.Stop()
	w.orch.SetReplicas("s000", 1)
	w.loop.RunFor(5 * time.Minute)
	if w.orch.Version() != v {
		t.Fatal("version moved while stopped")
	}
	w.orch.Start()
	w.loop.RunFor(time.Minute)
	// Still converged and valid after resume.
	if err := w.orch.AssignmentSnapshot().Validate(); err != nil {
		t.Fatal(err)
	}
}
