package routing

import (
	"testing"
	"time"

	"shardmanager/internal/shard"
)

func TestForwardedRequestCountsHops(t *testing.T) {
	e := newEnv(t)
	old := e.addServer("old", "near")
	newer := e.addServer("new", "far")
	old.AddShard("s1", shard.RolePrimary)
	newer.PrepareAddShard("s1", "old", shard.RolePrimary)
	old.PrepareDropShard("s1", "new", shard.RolePrimary)
	e.publish(1, map[shard.ID][]shard.Assignment{
		"s1": {{Server: "old", Role: shard.RolePrimary}},
	})
	c := e.client("near")
	e.loop.RunFor(time.Second)
	res := do(t, e, c, "abc", true)
	if !res.OK || res.Hops != 1 || res.Server != "new" {
		t.Fatalf("res = %+v", res)
	}
	// The forwarding adds cross-region hops: near->old(near)->new(far)
	// ->old(near)->client: at least 2x60ms on top of local RTT.
	if res.Latency < 120*time.Millisecond {
		t.Fatalf("forwarded latency = %v", res.Latency)
	}
}

func TestMaxAttemptsOptionRespected(t *testing.T) {
	e := newEnv(t)
	opts := Options{MaxAttempts: 2, RetryDelay: 50 * time.Millisecond}
	c := NewClient(e.loop, e.net, e.dir, e.disc, e.fleet, "app", e.ks, "near", opts)
	res := do(t, e, c, "abc", false)
	if res.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", res.Attempts)
	}
}

func TestDefaultsAppliedForZeroOptions(t *testing.T) {
	e := newEnv(t)
	c := NewClient(e.loop, e.net, e.dir, e.disc, e.fleet, "app", e.ks, "near", Options{})
	res := do(t, e, c, "abc", false)
	if res.Attempts != 4 {
		t.Fatalf("attempts = %d, want default 4", res.Attempts)
	}
}

func TestRetrySucceedsWhenServerRecovers(t *testing.T) {
	e := newEnv(t)
	srv := e.addServer("srv", "near")
	srv.AddShard("s1", shard.RolePrimary)
	e.publish(1, map[shard.ID][]shard.Assignment{
		"s1": {{Server: "srv", Role: shard.RolePrimary}},
	})
	c := e.client("near")
	e.loop.RunFor(time.Second)
	// Take the server down, issue a request, revive the server before
	// the retries run out.
	e.net.Unregister("srv")
	var res Result
	gotIt := false
	c.Do("abc", true, "op", nil, func(r Result) { res = r; gotIt = true })
	e.loop.After(300*time.Millisecond, func() {
		e.net.Register("srv", "near")
	})
	e.loop.RunFor(time.Minute)
	if !gotIt || !res.OK {
		t.Fatalf("res = %+v", res)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want retries", res.Attempts)
	}
}

func TestReadSpreadsAcrossEquidistantReplicas(t *testing.T) {
	e := newEnv(t)
	a := e.addServer("a", "near")
	b := e.addServer("b", "near")
	a.AddShard("s1", shard.RoleSecondary)
	b.AddShard("s1", shard.RoleSecondary)
	e.publish(1, map[shard.ID][]shard.Assignment{
		"s1": {{Server: "a", Role: shard.RoleSecondary}, {Server: "b", Role: shard.RoleSecondary}},
	})
	c := e.client("near")
	e.loop.RunFor(time.Second)
	counts := map[shard.ServerID]int{}
	for i := 0; i < 60; i++ {
		res := do(t, e, c, "abc", false)
		counts[res.Server]++
	}
	if counts["a"] == 0 || counts["b"] == 0 {
		t.Fatalf("reads not spread: %v", counts)
	}
}

func TestServerGoneFromDirectoryFails(t *testing.T) {
	e := newEnv(t)
	srv := e.addServer("srv", "near")
	srv.AddShard("s1", shard.RolePrimary)
	e.publish(1, map[shard.ID][]shard.Assignment{
		"s1": {{Server: "srv", Role: shard.RolePrimary}},
	})
	c := e.client("near")
	e.loop.RunFor(time.Second)
	// Reachable on the network but missing from the directory (process
	// replaced): the client sees server-gone and retries to failure.
	e.dir.Remove("srv")
	res := do(t, e, c, "abc", true)
	if res.OK {
		t.Fatalf("res = %+v", res)
	}
}

func benchEnv(b *testing.B) (*env, *Client) {
	b.Helper()
	e := newEnv(b)
	srv := e.addServer("srv", "near")
	srv.AddShard("s1", shard.RolePrimary)
	srv.AddShard("s2", shard.RolePrimary)
	e.publish(1, map[shard.ID][]shard.Assignment{
		"s1": {{Server: "srv", Role: shard.RolePrimary}},
		"s2": {{Server: "srv", Role: shard.RolePrimary}},
	})
	c := e.client("near")
	e.loop.RunFor(time.Second)
	return e, c
}

func BenchmarkClientRequestRoundTrip(b *testing.B) {
	e, c := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok := false
		c.Do("abc", true, "op", nil, func(r Result) { ok = r.OK })
		e.loop.RunFor(time.Second)
		if !ok {
			b.Fatal("request failed")
		}
	}
}

func TestRetryBackoffIsExponentialAndCapped(t *testing.T) {
	e := newEnv(t)
	// No map ever arrives, so every attempt fails instantly with no-replica
	// and the request's total latency is exactly the sum of retry waits.
	opts := Options{
		MaxAttempts:   5,
		RetryDelay:    100 * time.Millisecond,
		MaxRetryDelay: 250 * time.Millisecond,
		RetryJitter:   -1, // disable jitter for an exact schedule
	}
	c := NewClient(e.loop, e.net, e.dir, e.disc, e.fleet, "app", e.ks, "near", opts)
	res := do(t, e, c, "abc", false)
	if res.OK || res.Attempts != 5 {
		t.Fatalf("res = %+v", res)
	}
	// Waits: 100ms, 200ms, then capped at 250ms twice.
	want := 100*time.Millisecond + 200*time.Millisecond + 250*time.Millisecond + 250*time.Millisecond
	if res.Latency != want {
		t.Fatalf("total retry latency = %v, want %v", res.Latency, want)
	}
}

func TestRetryJitterBoundedAndDeterministic(t *testing.T) {
	run := func() time.Duration {
		e := newEnv(t)
		opts := Options{
			MaxAttempts:   4,
			RetryDelay:    100 * time.Millisecond,
			MaxRetryDelay: 400 * time.Millisecond,
			RetryJitter:   0.5,
		}
		c := NewClient(e.loop, e.net, e.dir, e.disc, e.fleet, "app", e.ks, "near", opts)
		return do(t, e, c, "abc", false).Latency
	}
	lat := run()
	base := 100*time.Millisecond + 200*time.Millisecond + 400*time.Millisecond
	if lat < base || lat > base+base/2 {
		t.Fatalf("jittered retry latency %v outside [%v, %v]", lat, base, base+base/2)
	}
	if again := run(); again != lat {
		t.Fatalf("same seed gave different retry schedules: %v vs %v", lat, again)
	}
}
