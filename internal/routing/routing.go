// Package routing implements the Service Router (SR) library linked into
// application clients (§3.2): it learns the application's shard map from
// the service discovery system, maps keys to shards through the app-owned
// keyspace, picks a replica (the primary for writes, the closest replica
// for reads), sends the request over the simulated network, and retries on
// failures and on "wrong owner" rejections caused by stale maps.
//
// The client-facing API mirrors §3.3:
//
//	rpc_client = get_client(app_name, key)
//	rpc_client.function_foo(...)
//
// which here is Client.Do(key, ...).
package routing

import (
	"sort"
	"time"

	"shardmanager/internal/appserver"
	"shardmanager/internal/discovery"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
)

// lbRetry attributes request-retry timers in the kernel profiler.
var lbRetry = sim.LabelFor("routing", "retry")

// Options configure a client.
type Options struct {
	// MaxAttempts bounds total tries per request (default 4).
	MaxAttempts int
	// RetryDelay is the base delay before the first retry (default 200ms).
	// Subsequent retries back off exponentially from it.
	RetryDelay time.Duration
	// MaxRetryDelay caps the exponential backoff (default 5s).
	MaxRetryDelay time.Duration
	// RetryJitter adds up to this fraction of extra random delay per retry
	// (default 0.2), drawn from the client's own forked RNG so retries from
	// many clients decorrelate instead of stampeding in lockstep after a
	// partition heals. Set negative to disable jitter entirely.
	RetryJitter float64
	// ApplyDeltas subscribes the client through the incremental path: the
	// client owns a private map, cloning full snapshots into it and applying
	// deltas in place (O(changed entries) per update instead of retaining
	// O(shards) snapshots). Required when the publisher uses delta publishes
	// (which mutate the discovery-side map in place); routing outcomes are
	// identical either way.
	ApplyDeltas bool
}

// DefaultOptions returns sensible client settings.
func DefaultOptions() Options {
	return Options{
		MaxAttempts:   4,
		RetryDelay:    200 * time.Millisecond,
		MaxRetryDelay: 5 * time.Second,
		RetryJitter:   0.2,
	}
}

// Result is the final outcome of one request as seen by the client.
type Result struct {
	OK       bool
	Err      string
	Payload  any
	Latency  time.Duration
	Attempts int
	// Hops counts server-side forwarding hops on the final attempt.
	Hops int
	// Server that handled the final attempt.
	Server shard.ServerID
	Shard  shard.ID
	// Write reports whether the request was primary-routed.
	Write bool
	// RejectedBy is the server the final failed attempt was sent to (the
	// rejecting server when the failure was a rejection; "" when no
	// candidate existed at all). Success results leave it empty.
	RejectedBy shard.ServerID
	// MapVersion is the client's shard-map version when the request
	// finished — the auditor uses it to distinguish transient staleness
	// from permanently stale routing.
	MapVersion int64
}

// Client is one application client instance located in a region.
type Client struct {
	App    shard.AppID
	Region topology.RegionID

	loop     *sim.Loop
	net      *rpcnet.Network
	dir      *appserver.Directory
	disc     *discovery.Service
	fleet    *topology.Fleet
	keyspace *shard.Keyspace
	opts     Options
	rng      *sim.RNG
	retryRNG *sim.RNG

	current *shard.Map
	// owned is the client-private map buffer used in ApplyDeltas mode:
	// full snapshots are cloned into it and deltas applied in place, so the
	// client never retains a service-owned map that a later delta publish
	// would mutate underneath it.
	owned *shard.Map

	// MapUpdates counts received shard-map versions.
	MapUpdates int64

	// observers see every final Result at the simulated time it completes.
	// They must not draw randomness — healthmon hangs availability tracking
	// off this hook precisely because it cannot perturb the seeded RNG.
	observers []func(Result)
}

// NewClient creates a client and subscribes it to the app's shard map.
func NewClient(loop *sim.Loop, net *rpcnet.Network, dir *appserver.Directory,
	disc *discovery.Service, fleet *topology.Fleet, app shard.AppID,
	keyspace *shard.Keyspace, region topology.RegionID, opts Options) *Client {
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 4
	}
	if opts.RetryDelay <= 0 {
		opts.RetryDelay = 200 * time.Millisecond
	}
	if opts.MaxRetryDelay <= 0 {
		opts.MaxRetryDelay = 5 * time.Second
	}
	if opts.RetryJitter == 0 {
		opts.RetryJitter = 0.2
	}
	c := &Client{
		App:      app,
		Region:   region,
		loop:     loop,
		net:      net,
		dir:      dir,
		disc:     disc,
		fleet:    fleet,
		keyspace: keyspace,
		opts:     opts,
		rng:      loop.RNG().Fork(),
	}
	// Retry jitter has its own stream forked from the client's RNG: drawing
	// jitter from c.rng directly would shift the read tie-break sequence
	// whenever a request happens to retry.
	c.retryRNG = c.rng.Fork()
	if opts.ApplyDeltas {
		// SubscribeDelta's RNG accounting matches Subscribe exactly, so the
		// mode flag cannot shift any other subscriber's delay stream.
		disc.SubscribeDelta(app, c.onFullSnapshot, c.onDelta)
	} else {
		disc.Subscribe(app, func(m *shard.Map) {
			// An on-demand refresh may already have installed a newer map than
			// this delivery carries; never regress.
			if !newerMap(m, c.current) {
				return
			}
			c.current = m
			c.MapUpdates++
		})
	}
	return c
}

// onFullSnapshot installs a delivered full snapshot in ApplyDeltas mode by
// cloning it into the client-owned buffer (the delivered map is
// service-owned there and must not be retained).
func (c *Client) onFullSnapshot(m *shard.Map) {
	if !newerMap(m, c.current) {
		return
	}
	c.owned = m.CloneInto(c.owned)
	c.current = c.owned
	c.MapUpdates++
}

// onDelta chains one in-order delta onto the client's private map. An
// on-demand refresh may have moved the client past the delta's base version;
// a delta that can no longer chain falls back to a full refresh from the
// authoritative current map.
func (c *Client) onDelta(d *shard.Delta) {
	cur := c.current
	if cur == nil || cur.Version >= d.ToVersion {
		return
	}
	if cur.Version == d.FromVersion {
		if err := cur.ApplyDelta(d); err == nil {
			c.MapUpdates++
			return
		}
	}
	c.refreshMap()
}

// newerMap reports whether m supersedes cur: by fencing generation when both
// maps carry one (the total order shared with sessions and grants), by
// version otherwise.
func newerMap(m, cur *shard.Map) bool {
	if m == nil {
		return false
	}
	if cur == nil {
		return true
	}
	if m.Gen > 0 && cur.Gen > 0 {
		return m.Gen > cur.Gen
	}
	return m.Version > cur.Version
}

// newerMeta is newerMap for a (version, gen) pair read without cloning.
func newerMeta(version, gen int64, cur *shard.Map) bool {
	if cur == nil {
		return true
	}
	if gen > 0 && cur.Gen > 0 {
		return gen > cur.Gen
	}
	return version > cur.Version
}

// refreshMap pulls the discovery system's current map immediately, without
// waiting for tree propagation. The SR library does this when a server's
// rejection implies the client's map is generation-behind ("fenced",
// "not-owner", "not-primary"): the map that fixes the routing already exists,
// so fetching it now closes the staleness window instead of retrying blind.
func (c *Client) refreshMap() {
	if c.opts.ApplyDeltas {
		// Peek at the version first so a no-op refresh costs no copy, then
		// clone into the client-owned buffer instead of allocating a map.
		v, g, ok := c.disc.CurrentMeta(c.App)
		if !ok || !newerMeta(v, g, c.current) {
			return
		}
		c.owned = c.disc.CurrentInto(c.App, c.owned)
		c.current = c.owned
		c.MapUpdates++
		c.loop.Metrics().Counter("routing_map_refreshes_total",
			"app", string(c.App)).Inc()
		return
	}
	m := c.disc.Current(c.App)
	if !newerMap(m, c.current) {
		return
	}
	c.current = m
	c.MapUpdates++
	c.loop.Metrics().Counter("routing_map_refreshes_total",
		"app", string(c.App)).Inc()
}

// OnResult registers fn to run on every final request Result.
func (c *Client) OnResult(fn func(Result)) {
	c.observers = append(c.observers, fn)
}

// HasMap reports whether the client has received any shard map yet.
func (c *Client) HasMap() bool { return c.current != nil }

// MapVersion returns the client's current map version (0 if none).
func (c *Client) MapVersion() int64 {
	if c.current == nil {
		return 0
	}
	return c.current.Version
}

// Do routes one request for key and invokes done with the final outcome.
// write selects primary-routed requests.
func (c *Client) Do(key string, write bool, op string, payload any, done func(Result)) {
	s := c.keyspace.ShardFor(key)
	start := c.loop.Now()
	if mr := c.loop.Metrics(); mr != nil || len(c.observers) > 0 {
		app := string(c.App)
		inner := done
		done = func(res Result) {
			if mr != nil {
				mr.Counter("routing_requests_total", "app", app).Inc()
				outcome := "ok"
				if !res.OK {
					// res.Err comes from a small fixed set of reject
					// reasons, so it is safe as a label value.
					outcome = res.Err
					if outcome == "" {
						outcome = "error"
					}
				}
				mr.Counter("routing_results_total", "app", app, "outcome", outcome).Inc()
				if res.Attempts > 1 {
					mr.Counter("routing_retries_total", "app", app).Add(int64(res.Attempts - 1))
				}
				if res.OK {
					mr.Histogram("routing_latency_ms", nil, "app", app).
						Observe(float64(res.Latency) / float64(time.Millisecond))
				}
			}
			for _, fn := range c.observers {
				fn(res)
			}
			inner(res)
		}
	}
	var root trace.SpanID
	if tr := c.loop.Tracer(); tr.Enabled() {
		root = tr.StartSpan("routing", "request", 0,
			trace.String("key", key),
			trace.String("shard", string(s)),
			trace.Bool("write", write),
			trace.String("op", op))
		inner := done
		done = func(res Result) {
			tr.EndSpan(root,
				trace.Bool("ok", res.OK),
				trace.String("err", res.Err),
				trace.Int("attempts", res.Attempts),
				trace.Int("hops", res.Hops),
				trace.String("server", string(res.Server)))
			inner(res)
		}
	}
	c.attempt(&appserver.Request{
		App:       c.App,
		Shard:     s,
		Key:       key,
		Write:     write,
		Op:        op,
		Payload:   payload,
		TraceSpan: root,
	}, start, 1, make(map[shard.ServerID]bool), done)
}

// retryDelay returns the wait before attempt+1: capped exponential backoff
// from RetryDelay, plus deterministic jitter from the client's retry RNG.
// A fixed delay synchronizes every client blocked by the same partition into
// one retry storm the instant it heals; the jitter spreads them out.
func (c *Client) retryDelay(attempt int) time.Duration {
	d := c.opts.RetryDelay
	for i := 1; i < attempt && d < c.opts.MaxRetryDelay; i++ {
		d *= 2
	}
	if d > c.opts.MaxRetryDelay {
		d = c.opts.MaxRetryDelay
	}
	if c.opts.RetryJitter > 0 {
		d += time.Duration(c.retryRNG.Float64() * c.opts.RetryJitter * float64(d))
	}
	return d
}

// attempt performs one try and schedules retries.
func (c *Client) attempt(req *appserver.Request, start time.Duration, attempt int,
	tried map[shard.ServerID]bool, done func(Result)) {
	tr := c.loop.Tracer()
	var asp trace.SpanID
	if tr.Enabled() {
		// Map version at attempt time shows which attempts ran on a stale
		// map — the "wrong owner" retry loop of §3.2 made visible.
		asp = tr.StartSpan("routing", "attempt", req.TraceSpan,
			trace.Int("attempt", attempt),
			trace.Int64("map_version", c.MapVersion()))
	}
	var lastServer shard.ServerID
	fail := func(errMsg string) {
		if tr.Enabled() {
			tr.EndSpan(asp, trace.String("err", errMsg))
		}
		switch errMsg {
		case "fenced", "not-owner", "not-primary":
			// Ownership rejections mean the routing map is behind the
			// server's view; refresh before the retry (and even on the
			// final attempt, for the next request's benefit).
			c.refreshMap()
		}
		if attempt >= c.opts.MaxAttempts {
			done(Result{
				Err:        errMsg,
				Latency:    c.loop.Now() - start,
				Attempts:   attempt,
				Shard:      req.Shard,
				Write:      req.Write,
				RejectedBy: lastServer,
				MapVersion: c.MapVersion(),
			})
			return
		}
		c.loop.AfterL(c.retryDelay(attempt), lbRetry, func() {
			c.attempt(req, start, attempt+1, tried, done)
		})
	}

	target, ok := c.pickServer(req.Shard, req.Write, tried)
	if !ok {
		// No candidate at all (no map or no replicas known): retry
		// with a fresh view; an updated map may have arrived by then.
		for k := range tried {
			delete(tried, k)
		}
		fail("no-replica")
		return
	}
	tried[target] = true
	lastServer = target

	c.net.Send(c.Region, rpcnet.Endpoint(target), func() {
		srv := c.dir.Lookup(target)
		if srv == nil {
			fail("server-gone")
			return
		}
		srv.Serve(req, func(resp appserver.Response) {
			// Response travels back to the client's region over the fabric,
			// so injected link faults can lose or delay the reply leg too.
			c.net.Reply(srv.Region, c.Region, func() {
				if resp.OK {
					if tr.Enabled() {
						tr.EndSpan(asp,
							trace.String("server", string(resp.Server)),
							trace.Int("hops", resp.Hops))
					}
					done(Result{
						OK:         true,
						Payload:    resp.Payload,
						Latency:    c.loop.Now() - start,
						Attempts:   attempt,
						Hops:       resp.Hops,
						Server:     resp.Server,
						Shard:      req.Shard,
						Write:      req.Write,
						MapVersion: c.MapVersion(),
					})
					return
				}
				if resp.Server != "" {
					// A forwarded request may be rejected deeper in the
					// chain; attribute the failure to the actual rejecter.
					lastServer = resp.Server
				}
				fail(resp.Err)
			}, func() {
				fail("reply-lost")
			})
		})
	}, func() {
		fail("unreachable")
	})
}

// pickServer chooses a replica for the request: the primary for writes, the
// closest untried replica for reads (locality-aware, which is what makes
// the Fig 19 latency curves move). Secondary-only applications route reads
// round-robin among the closest replicas.
func (c *Client) pickServer(s shard.ID, write bool, tried map[shard.ServerID]bool) (shard.ServerID, bool) {
	if c.current == nil {
		return "", false
	}
	replicas := c.current.Replicas(s)
	if len(replicas) == 0 {
		return "", false
	}
	if write {
		for _, a := range replicas {
			if a.Role == shard.RolePrimary {
				if tried[a.Server] {
					return "", false
				}
				return a.Server, true
			}
		}
		return "", false
	}
	// Reads: sort candidates by latency from the client's region, break
	// ties randomly to spread load.
	type cand struct {
		srv shard.ServerID
		lat time.Duration
		tie uint64
	}
	cands := make([]cand, 0, len(replicas))
	for _, a := range replicas {
		if tried[a.Server] {
			continue
		}
		lat := c.fleet.Latency(c.Region, c.net.Region(rpcnet.Endpoint(a.Server)))
		cands = append(cands, cand{srv: a.Server, lat: lat, tie: c.rng.Uint64()})
	}
	if len(cands) == 0 {
		return "", false
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].lat != cands[j].lat {
			return cands[i].lat < cands[j].lat
		}
		return cands[i].tie < cands[j].tie
	})
	return cands[0].srv, true
}
