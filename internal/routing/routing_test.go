package routing

import (
	"testing"
	"time"

	"shardmanager/internal/appserver"
	"shardmanager/internal/discovery"
	"shardmanager/internal/rpcnet"
	"shardmanager/internal/shard"
	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

type okApp struct{}

func (okApp) AddShard(shard.ID, shard.Role)               {}
func (okApp) DropShard(shard.ID)                          {}
func (okApp) ChangeRole(shard.ID, shard.Role, shard.Role) {}
func (okApp) HandleRequest(req *appserver.Request) (any, error) {
	return "v:" + req.Key, nil
}

type env struct {
	loop  *sim.Loop
	fleet *topology.Fleet
	net   *rpcnet.Network
	dir   *appserver.Directory
	disc  *discovery.Service
	ks    *shard.Keyspace
}

func newEnv(t testing.TB) *env {
	t.Helper()
	fleet := topology.Build(topology.Spec{
		Regions:           []topology.RegionID{"near", "far"},
		MachinesPerRegion: 2,
		Latency: map[[2]topology.RegionID]time.Duration{
			{"near", "far"}: 60 * time.Millisecond,
		},
	})
	fleet.SetLatency("near", "near", time.Millisecond)
	fleet.SetLatency("far", "far", time.Millisecond)
	loop := sim.NewLoop(7)
	net := rpcnet.NewNetwork(loop, fleet)
	net.Jitter = 0
	ks, err := shard.NewKeyspace([]shard.ID{"s1", "s2"}, []string{"", "m"})
	if err != nil {
		t.Fatal(err)
	}
	return &env{
		loop:  loop,
		fleet: fleet,
		net:   net,
		dir:   appserver.NewDirectory(),
		disc:  discovery.NewService(loop, discovery.FixedDelay(100*time.Millisecond)),
		ks:    ks,
	}
}

func (e *env) addServer(id shard.ServerID, region topology.RegionID) *appserver.Server {
	s := appserver.NewServer(e.loop, e.net, e.dir, okApp{}, "app", id, region)
	e.dir.Register(s)
	e.net.Register(rpcnet.Endpoint(id), region)
	return s
}

func (e *env) killServer(id shard.ServerID) {
	e.dir.Remove(id)
	e.net.Unregister(rpcnet.Endpoint(id))
}

func (e *env) publish(version int64, entries map[shard.ID][]shard.Assignment) {
	m := shard.NewMap("app")
	m.Version = version
	m.Entries = entries
	e.disc.Publish(m)
}

func (e *env) client(region topology.RegionID) *Client {
	return NewClient(e.loop, e.net, e.dir, e.disc, e.fleet, "app", e.ks, region, DefaultOptions())
}

func do(t testing.TB, e *env, c *Client, key string, write bool) Result {
	t.Helper()
	var res Result
	got := false
	c.Do(key, write, "op", nil, func(r Result) { res = r; got = true })
	e.loop.RunFor(time.Minute)
	if !got {
		t.Fatal("no result")
	}
	return res
}

func TestRouteWriteToPrimary(t *testing.T) {
	e := newEnv(t)
	p := e.addServer("p", "near")
	sec := e.addServer("sec", "near")
	p.AddShard("s1", shard.RolePrimary)
	sec.AddShard("s1", shard.RoleSecondary)
	e.publish(1, map[shard.ID][]shard.Assignment{
		"s1": {{Server: "sec", Role: shard.RoleSecondary}, {Server: "p", Role: shard.RolePrimary}},
	})
	c := e.client("near")
	e.loop.RunFor(time.Second) // map propagation
	res := do(t, e, c, "abc", true)
	if !res.OK || res.Server != "p" || res.Payload != "v:abc" {
		t.Fatalf("res = %+v", res)
	}
	if res.Shard != "s1" {
		t.Fatalf("shard = %s", res.Shard)
	}
}

func TestRouteReadPrefersLocalReplica(t *testing.T) {
	e := newEnv(t)
	nearSrv := e.addServer("near-srv", "near")
	farSrv := e.addServer("far-srv", "far")
	nearSrv.AddShard("s1", shard.RoleSecondary)
	farSrv.AddShard("s1", shard.RoleSecondary)
	e.publish(1, map[shard.ID][]shard.Assignment{
		"s1": {{Server: "far-srv", Role: shard.RoleSecondary}, {Server: "near-srv", Role: shard.RoleSecondary}},
	})
	c := e.client("near")
	e.loop.RunFor(time.Second)
	for i := 0; i < 5; i++ {
		res := do(t, e, c, "abc", false)
		if !res.OK || res.Server != "near-srv" {
			t.Fatalf("res = %+v, want near-srv", res)
		}
		if res.Latency > 10*time.Millisecond {
			t.Fatalf("local read latency = %v", res.Latency)
		}
	}
}

func TestReadFailsOverToRemoteReplica(t *testing.T) {
	e := newEnv(t)
	nearSrv := e.addServer("near-srv", "near")
	farSrv := e.addServer("far-srv", "far")
	nearSrv.AddShard("s1", shard.RoleSecondary)
	farSrv.AddShard("s1", shard.RoleSecondary)
	e.publish(1, map[shard.ID][]shard.Assignment{
		"s1": {{Server: "near-srv", Role: shard.RoleSecondary}, {Server: "far-srv", Role: shard.RoleSecondary}},
	})
	c := e.client("near")
	e.loop.RunFor(time.Second)
	e.killServer("near-srv")
	res := do(t, e, c, "abc", false)
	if !res.OK || res.Server != "far-srv" {
		t.Fatalf("res = %+v, want far-srv", res)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want retry", res.Attempts)
	}
	if res.Latency < 120*time.Millisecond {
		t.Fatalf("remote latency = %v, want >= 2x60ms", res.Latency)
	}
}

func TestNoMapFailsAfterRetries(t *testing.T) {
	e := newEnv(t)
	c := e.client("near")
	res := do(t, e, c, "abc", false)
	if res.OK || res.Err != "no-replica" {
		t.Fatalf("res = %+v", res)
	}
	if res.Attempts != DefaultOptions().MaxAttempts {
		t.Fatalf("attempts = %d", res.Attempts)
	}
}

func TestStaleMapRetriesAndRecovers(t *testing.T) {
	e := newEnv(t)
	old := e.addServer("old", "near")
	newer := e.addServer("new", "near")
	old.AddShard("s1", shard.RolePrimary)
	e.publish(1, map[shard.ID][]shard.Assignment{
		"s1": {{Server: "old", Role: shard.RolePrimary}},
	})
	c := e.client("near")
	e.loop.RunFor(time.Second)
	// Non-graceful move: old drops, new adds, map updated. The client
	// still has v1 when it first sends; retry after map refresh works.
	old.DropShard("s1")
	newer.AddShard("s1", shard.RolePrimary)
	e.publish(2, map[shard.ID][]shard.Assignment{
		"s1": {{Server: "new", Role: shard.RolePrimary}},
	})
	res := do(t, e, c, "abc", true)
	if !res.OK || res.Server != "new" {
		t.Fatalf("res = %+v", res)
	}
	if c.MapVersion() != 2 {
		t.Fatalf("map version = %d", c.MapVersion())
	}
}

func TestWriteToSecondaryOnlyMapFails(t *testing.T) {
	e := newEnv(t)
	srv := e.addServer("srv", "near")
	srv.AddShard("s1", shard.RoleSecondary)
	e.publish(1, map[shard.ID][]shard.Assignment{
		"s1": {{Server: "srv", Role: shard.RoleSecondary}},
	})
	c := e.client("near")
	e.loop.RunFor(time.Second)
	res := do(t, e, c, "abc", true)
	if res.OK {
		t.Fatalf("write succeeded with no primary: %+v", res)
	}
}

func TestHasMapAndUpdates(t *testing.T) {
	e := newEnv(t)
	c := e.client("near")
	if c.HasMap() || c.MapVersion() != 0 {
		t.Fatal("client should start without a map")
	}
	e.publish(3, map[shard.ID][]shard.Assignment{})
	e.loop.RunFor(time.Second)
	if !c.HasMap() || c.MapVersion() != 3 || c.MapUpdates != 1 {
		t.Fatalf("map state: has=%v v=%d updates=%d", c.HasMap(), c.MapVersion(), c.MapUpdates)
	}
}

func TestKeyRoutesToCorrectShard(t *testing.T) {
	e := newEnv(t)
	a := e.addServer("a", "near")
	b := e.addServer("b", "near")
	a.AddShard("s1", shard.RolePrimary)
	b.AddShard("s2", shard.RolePrimary)
	e.publish(1, map[shard.ID][]shard.Assignment{
		"s1": {{Server: "a", Role: shard.RolePrimary}},
		"s2": {{Server: "b", Role: shard.RolePrimary}},
	})
	c := e.client("near")
	e.loop.RunFor(time.Second)
	if res := do(t, e, c, "apple", true); res.Server != "a" {
		t.Fatalf("apple routed to %s", res.Server)
	}
	if res := do(t, e, c, "zebra", true); res.Server != "b" {
		t.Fatalf("zebra routed to %s", res.Server)
	}
}
