// Package rpcnet simulates the network fabric between regions: one-way
// message delivery with region-to-region latency taken from the fleet's
// latency model. Application clients, application servers, and the SM
// orchestrator all communicate through a Network so that experiments see
// realistic geo-distributed latencies (Fig 19/20) and so that failed
// endpoints drop traffic instead of magically responding.
//
// The fabric is also the injection point for network faults: per-directed-link
// latency inflation, packet loss, and full partitions (symmetric or
// asymmetric) installed via SetLinkFault. Failure detection is modeled
// explicitly: a sender learns that a message was lost only after SendTimeout,
// never "for free" at the would-be delivery instant — so injected latency can
// never make a timeout arrive faster than a slow success.
package rpcnet

import (
	"time"

	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
)

// Endpoint is anything reachable on the network.
type Endpoint string

// DefaultSendTimeout is how long a sender waits before concluding a message
// was lost (down endpoint, partition, or packet loss).
const DefaultSendTimeout = 1 * time.Second

// Kernel-profiler attribution labels, interned once so the per-message path
// never touches the label table.
var (
	lbDeliver = sim.LabelFor("rpcnet", "deliver")
	lbReply   = sim.LabelFor("rpcnet", "reply")
	lbTimeout = sim.LabelFor("rpcnet", "timeout")
)

// LinkFault describes an injected impairment of one directed region link.
// The zero value is a healthy link.
type LinkFault struct {
	// LatencyScale multiplies the link's base latency (0 or 1 = unchanged).
	LatencyScale float64
	// LatencyAdd is added to the link's latency after scaling.
	LatencyAdd time.Duration
	// DropProb is the probability a message on this link is lost
	// (1 = full partition).
	DropProb float64
}

// partitioned reports whether the fault drops every message.
func (f LinkFault) partitioned() bool { return f.DropProb >= 1 }

// active reports whether the fault changes anything.
func (f LinkFault) active() bool {
	return f.DropProb > 0 || f.LatencyAdd > 0 || (f.LatencyScale > 0 && f.LatencyScale != 1)
}

type linkKey struct {
	from, to topology.RegionID
}

// Network delivers messages between regions with simulated latency.
type Network struct {
	loop  *sim.Loop
	fleet *topology.Fleet
	rng   *sim.RNG
	// Jitter adds up to this fraction of extra random latency per hop
	// (default 0.1).
	Jitter float64
	// SendTimeout is how long a sender waits before detecting a lost
	// message (default DefaultSendTimeout). Failure callbacks fire at
	// send time + SendTimeout, decoupled from the (possibly inflated)
	// delivery latency.
	SendTimeout time.Duration

	regions map[Endpoint]topology.RegionID
	down    map[Endpoint]bool
	faults  map[linkKey]LinkFault

	// inflight counts messages currently riding the fabric (scheduled but
	// not yet delivered), exported as the rpcnet_inflight_messages gauge —
	// the delivery-queue depth the kernel profiler pairs with its
	// event-heap gauges.
	inflight int

	// Messages counts deliveries, Dropped counts messages lost to link
	// faults, for tests and smctl.
	Messages int64
	Dropped  int64

	// freeEnvs / freeCalls are deterministic freelists for the per-message
	// and per-RPC bookkeeping records. Pooling them (instead of capturing
	// the same state in closures) makes the send -> deliver -> reply path
	// allocation-free: the records are recycled the moment their terminal
	// callback runs, and peak in-flight traffic bounds the arena.
	freeEnvs  *envelope
	freeCalls *callState
}

// envelope is the pooled per-message state a Send or Reply carries through
// the fabric: everything the old closure captured, now recycled per message.
// Callbacks take the (func(any), any) shape so the event loop can dispatch
// them without allocating.
type envelope struct {
	n       *Network
	to      Endpoint
	sp      trace.SpanID
	sentAt  time.Duration
	timeout time.Duration
	status  string
	fn      func(any)
	arg     any
	onFail  func(any)
	failArg any
	next    *envelope
}

func (n *Network) allocEnv() *envelope {
	e := n.freeEnvs
	if e == nil {
		e = &envelope{n: n}
		return e
	}
	n.freeEnvs = e.next
	e.next = nil
	return e
}

func (n *Network) freeEnv(e *envelope) {
	*e = envelope{n: n, next: n.freeEnvs}
	n.freeEnvs = e
}

// callState is the pooled per-RPC state for Call: request leg, handler,
// reply leg, and completion callbacks.
type callState struct {
	n      *Network
	from   topology.RegionID
	to     Endpoint
	start  time.Duration
	sp     trace.SpanID
	handle func()
	done   func(time.Duration)
	fail   func()
	next   *callState
}

func (n *Network) allocCall() *callState {
	c := n.freeCalls
	if c == nil {
		c = &callState{n: n}
		return c
	}
	n.freeCalls = c.next
	c.next = nil
	return c
}

func (n *Network) freeCall(c *callState) {
	*c = callState{n: n, next: n.freeCalls}
	n.freeCalls = c
}

// invoke0 adapts a plain func() callback to the arg-carrying shape. Func
// values are pointer-shaped, so boxing one into the arg slot is free.
func invoke0(a any) { a.(func())() }

// NewNetwork returns a network over the fleet's latency model.
func NewNetwork(loop *sim.Loop, fleet *topology.Fleet) *Network {
	return &Network{
		loop:        loop,
		fleet:       fleet,
		rng:         loop.RNG().Fork(),
		Jitter:      0.1,
		SendTimeout: DefaultSendTimeout,
		regions:     make(map[Endpoint]topology.RegionID),
		down:        make(map[Endpoint]bool),
	}
}

// Register places an endpoint in a region and marks it reachable.
func (n *Network) Register(e Endpoint, region topology.RegionID) {
	n.regions[e] = region
	delete(n.down, e)
}

// Unregister makes the endpoint unreachable (process death).
func (n *Network) Unregister(e Endpoint) { n.down[e] = true }

// Reachable reports whether the endpoint is registered and up.
func (n *Network) Reachable(e Endpoint) bool {
	_, ok := n.regions[e]
	return ok && !n.down[e]
}

// Region returns the endpoint's region ("" if unknown).
func (n *Network) Region(e Endpoint) topology.RegionID { return n.regions[e] }

// SetLinkFault installs a fault on the directed link from -> to, replacing
// any previous fault on that link. A zero LinkFault clears it.
func (n *Network) SetLinkFault(from, to topology.RegionID, f LinkFault) {
	if !f.active() {
		n.ClearLinkFault(from, to)
		return
	}
	if n.faults == nil {
		n.faults = make(map[linkKey]LinkFault)
	}
	n.faults[linkKey{from, to}] = f
}

// ClearLinkFault removes any fault on the directed link from -> to.
func (n *Network) ClearLinkFault(from, to topology.RegionID) {
	delete(n.faults, linkKey{from, to})
}

// LinkFaultOn returns the fault installed on the directed link (zero value
// when healthy).
func (n *Network) LinkFaultOn(from, to topology.RegionID) LinkFault {
	return n.faults[linkKey{from, to}]
}

// Partitioned reports whether the directed link from -> to currently drops
// all traffic.
func (n *Network) Partitioned(from, to topology.RegionID) bool {
	return n.faults[linkKey{from, to}].partitioned()
}

// Delay returns one sampled one-way latency between two regions, including
// any injected latency inflation on the link.
func (n *Network) Delay(from, to topology.RegionID) time.Duration {
	base := n.fleet.Latency(from, to)
	if f, ok := n.faults[linkKey{from, to}]; ok {
		if f.LatencyScale > 0 {
			base = time.Duration(float64(base) * f.LatencyScale)
		}
		base += f.LatencyAdd
	}
	if n.Jitter <= 0 {
		return base
	}
	return base + time.Duration(n.rng.Float64()*n.Jitter*float64(base))
}

// sendTimeout returns the failure-detection delay for one message.
func (n *Network) sendTimeout() time.Duration {
	if n.SendTimeout > 0 {
		return n.SendTimeout
	}
	return DefaultSendTimeout
}

// trackInflight adjusts the fabric's in-flight message count and mirrors it
// into the metrics registry when one is attached.
func (n *Network) trackInflight(delta int) {
	n.inflight += delta
	if mr := n.loop.Metrics(); mr != nil {
		mr.Gauge("rpcnet_inflight_messages").Set(float64(n.inflight))
	}
}

// InFlight returns the number of messages scheduled but not yet delivered.
func (n *Network) InFlight() int { return n.inflight }

// lost decides whether a message on from -> to is lost to an injected
// link fault. It consumes randomness only on lossy (0 < p < 1) links so that
// installing and removing faults perturbs the RNG stream minimally.
func (n *Network) lost(from, to topology.RegionID) bool {
	f, ok := n.faults[linkKey{from, to}]
	if !ok || f.DropProb <= 0 {
		return false
	}
	if f.DropProb >= 1 {
		return true
	}
	return n.rng.Float64() < f.DropProb
}

// Send schedules fn to run after the one-way latency from the sender's
// region to the destination endpoint's region. If the message is lost — the
// destination is unreachable at delivery time, or an injected link fault
// drops it — onFail runs at send time + SendTimeout instead: the sender
// learns of the failure only by timeout, never faster than a slow success
// could arrive. Either callback may be nil.
func (n *Network) Send(fromRegion topology.RegionID, to Endpoint, fn func(), onFail func()) {
	var fnA, failA func(any)
	var fnArg, failArg any
	if fn != nil {
		fnA, fnArg = invoke0, fn
	}
	if onFail != nil {
		failA, failArg = invoke0, onFail
	}
	n.SendArg(fromRegion, to, fnA, fnArg, failA, failArg)
}

// SendArg is Send with arg-carrying callbacks: fn(arg) on delivery,
// onFail(failArg) on loss. Static callbacks plus pooled envelopes keep the
// per-message path free of closure allocations; either callback may be nil.
func (n *Network) SendArg(fromRegion topology.RegionID, to Endpoint, fn func(any), arg any, onFail func(any), failArg any) {
	toRegion, known := n.regions[to]
	var d time.Duration
	if known {
		d = n.Delay(fromRegion, toRegion)
	} else {
		d = n.Delay(fromRegion, fromRegion)
	}
	tr := n.loop.Tracer()
	var sp trace.SpanID
	if tr.Enabled() {
		sp = tr.StartSpan("rpcnet", "send", 0,
			trace.String("from", string(fromRegion)),
			trace.String("to", string(to)))
		tr.Event("rpcnet", "tx", sp)
	}
	timeout := n.sendTimeout()
	if known && n.lost(fromRegion, toRegion) {
		n.Dropped++
		e := n.allocEnv()
		e.to, e.sp, e.status = to, sp, "dropped"
		e.onFail, e.failArg = onFail, failArg
		n.loop.PostArgL(timeout, lbTimeout, envTimeout, e)
		return
	}
	e := n.allocEnv()
	e.to, e.sp = to, sp
	e.sentAt, e.timeout = n.loop.Now(), timeout
	e.fn, e.arg = fn, arg
	e.onFail, e.failArg = onFail, failArg
	n.trackInflight(1)
	n.loop.PostArgL(d, lbDeliver, envDeliver, e)
}

// envDeliver runs at the delivery instant of a sent message.
func envDeliver(a any) {
	e := a.(*envelope)
	n := e.n
	n.Messages++
	n.trackInflight(-1)
	if !n.Reachable(e.to) {
		// Failure detection is by timeout from the send instant; if
		// the (possibly inflated) delivery delay already exceeds the
		// timeout the sender has been waiting long enough.
		e.status = "unreachable"
		wait := e.sentAt + e.timeout - n.loop.Now()
		if wait > 0 {
			n.loop.PostArgL(wait, lbTimeout, envTimeout, e)
			return
		}
		envTimeout(e)
		return
	}
	tr := n.loop.Tracer()
	if tr.Enabled() {
		tr.Event("rpcnet", "rx", e.sp)
		tr.EndSpan(e.sp, trace.String("status", "delivered"))
	}
	fn, arg := e.fn, e.arg
	n.freeEnv(e)
	if fn != nil {
		fn(arg)
	}
}

// envTimeout reports a lost message to the sender at its detection instant.
func envTimeout(a any) {
	e := a.(*envelope)
	n := e.n
	tr := n.loop.Tracer()
	if tr.Enabled() {
		tr.Event("rpcnet", "timeout", e.sp, trace.String("to", string(e.to)))
		tr.EndSpan(e.sp, trace.String("status", e.status))
	}
	onFail, failArg := e.onFail, e.failArg
	n.freeEnv(e)
	if onFail != nil {
		onFail(failArg)
	}
}

// Reply schedules fn after the one-way latency from region from to region to
// — the response leg of an RPC, where the receiver is not a registered
// endpoint. It honors injected link faults: a lost reply invokes onFail at
// send time + SendTimeout.
func (n *Network) Reply(from, to topology.RegionID, fn func(), onFail func()) {
	var fnA, failA func(any)
	var fnArg, failArg any
	if fn != nil {
		fnA, fnArg = invoke0, fn
	}
	if onFail != nil {
		failA, failArg = invoke0, onFail
	}
	n.ReplyArg(from, to, fnA, fnArg, failA, failArg)
}

// ReplyArg is Reply with arg-carrying callbacks, the allocation-free form.
func (n *Network) ReplyArg(from, to topology.RegionID, fn func(any), arg any, onFail func(any), failArg any) {
	if n.lost(from, to) {
		n.Dropped++
		if onFail != nil {
			e := n.allocEnv()
			e.fn, e.arg = onFail, failArg
			n.loop.PostArgL(n.sendTimeout(), lbTimeout, envInvoke, e)
		}
		return
	}
	n.trackInflight(1)
	e := n.allocEnv()
	e.fn, e.arg = fn, arg
	n.loop.PostArgL(n.Delay(from, to), lbReply, envReply, e)
}

// envReply runs at the delivery instant of a reply leg.
func envReply(a any) {
	e := a.(*envelope)
	n := e.n
	n.trackInflight(-1)
	fn, arg := e.fn, e.arg
	n.freeEnv(e)
	if fn != nil {
		fn(arg)
	}
}

// envInvoke runs a bare deferred callback (lost-reply timeout).
func envInvoke(a any) {
	e := a.(*envelope)
	fn, arg := e.fn, e.arg
	e.n.freeEnv(e)
	fn(arg)
}

// Call performs a round trip: deliver the request, run handle at the
// destination, then deliver the reply back and run done with the total
// round-trip time. If the destination is unreachable or either leg is lost,
// fail runs after the sender's timeout for that leg. handle runs only if the
// destination is reachable.
func (n *Network) Call(fromRegion topology.RegionID, to Endpoint, handle func(), done func(rtt time.Duration), fail func()) {
	c := n.allocCall()
	c.from, c.to, c.start = fromRegion, to, n.loop.Now()
	c.handle, c.done, c.fail = handle, done, fail
	tr := n.loop.Tracer()
	if tr.Enabled() {
		c.sp = tr.StartSpan("rpcnet", "rpc", 0,
			trace.String("from", string(fromRegion)),
			trace.String("to", string(to)))
	}
	n.SendArg(fromRegion, to, callDelivered, c, callSendFailed, c)
}

// callDelivered runs the handler at the destination, then launches the
// reply leg: destination region back to caller region.
func callDelivered(a any) {
	c := a.(*callState)
	if c.handle != nil {
		c.handle()
	}
	n := c.n
	n.ReplyArg(n.regions[c.to], c.from, callReplied, c, callReplyLost, c)
}

func callDone(c *callState, status string, ok bool) {
	n := c.n
	tr := n.loop.Tracer()
	if tr.Enabled() {
		tr.EndSpan(c.sp, trace.String("status", status))
	}
	done, fail, rtt := c.done, c.fail, n.loop.Now()-c.start
	n.freeCall(c)
	if ok {
		if done != nil {
			done(rtt)
		}
		return
	}
	if fail != nil {
		fail()
	}
}

func callReplied(a any)   { callDone(a.(*callState), "ok", true) }
func callReplyLost(a any) { callDone(a.(*callState), "reply-lost", false) }
func callSendFailed(a any) {
	callDone(a.(*callState), "failed", false)
}
