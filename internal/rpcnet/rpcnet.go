// Package rpcnet simulates the network fabric between regions: one-way
// message delivery with region-to-region latency taken from the fleet's
// latency model. Application clients, application servers, and the SM
// orchestrator all communicate through a Network so that experiments see
// realistic geo-distributed latencies (Fig 19/20) and so that failed
// endpoints drop traffic instead of magically responding.
package rpcnet

import (
	"time"

	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
)

// Endpoint is anything reachable on the network.
type Endpoint string

// Network delivers messages between regions with simulated latency.
type Network struct {
	loop  *sim.Loop
	fleet *topology.Fleet
	rng   *sim.RNG
	// Jitter adds up to this fraction of extra random latency per hop
	// (default 0.1).
	Jitter float64

	regions map[Endpoint]topology.RegionID
	down    map[Endpoint]bool

	// Messages counts deliveries, for tests.
	Messages int64
}

// NewNetwork returns a network over the fleet's latency model.
func NewNetwork(loop *sim.Loop, fleet *topology.Fleet) *Network {
	return &Network{
		loop:    loop,
		fleet:   fleet,
		rng:     loop.RNG().Fork(),
		Jitter:  0.1,
		regions: make(map[Endpoint]topology.RegionID),
		down:    make(map[Endpoint]bool),
	}
}

// Register places an endpoint in a region and marks it reachable.
func (n *Network) Register(e Endpoint, region topology.RegionID) {
	n.regions[e] = region
	delete(n.down, e)
}

// Unregister makes the endpoint unreachable (process death).
func (n *Network) Unregister(e Endpoint) { n.down[e] = true }

// Reachable reports whether the endpoint is registered and up.
func (n *Network) Reachable(e Endpoint) bool {
	_, ok := n.regions[e]
	return ok && !n.down[e]
}

// Region returns the endpoint's region ("" if unknown).
func (n *Network) Region(e Endpoint) topology.RegionID { return n.regions[e] }

// Delay returns one sampled one-way latency between two regions.
func (n *Network) Delay(from, to topology.RegionID) time.Duration {
	base := n.fleet.Latency(from, to)
	if n.Jitter <= 0 {
		return base
	}
	return base + time.Duration(n.rng.Float64()*n.Jitter*float64(base))
}

// Send schedules fn to run after the one-way latency from the sender's
// region to the destination endpoint's region. If the destination is
// unreachable at delivery time, onFail runs instead (after the same delay —
// the sender learns of the failure by timeout/RST, not instantly). Either
// callback may be nil.
func (n *Network) Send(fromRegion topology.RegionID, to Endpoint, fn func(), onFail func()) {
	toRegion, known := n.regions[to]
	var d time.Duration
	if known {
		d = n.Delay(fromRegion, toRegion)
	} else {
		d = n.Delay(fromRegion, fromRegion)
	}
	tr := n.loop.Tracer()
	var sp trace.SpanID
	if tr.Enabled() {
		sp = tr.StartSpan("rpcnet", "send", 0,
			trace.String("from", string(fromRegion)),
			trace.String("to", string(to)))
		tr.Event("rpcnet", "tx", sp)
	}
	n.loop.After(d, func() {
		n.Messages++
		if !n.Reachable(to) {
			if tr.Enabled() {
				tr.Event("rpcnet", "timeout", sp, trace.String("to", string(to)))
				tr.EndSpan(sp, trace.String("status", "unreachable"))
			}
			if onFail != nil {
				onFail()
			}
			return
		}
		if tr.Enabled() {
			tr.Event("rpcnet", "rx", sp)
			tr.EndSpan(sp, trace.String("status", "delivered"))
		}
		if fn != nil {
			fn()
		}
	})
}

// Call performs a round trip: deliver the request, run handle at the
// destination, then deliver the reply back and run done with the total
// round-trip time. If the destination is unreachable, fail runs after the
// one-way delay. handle runs only if the destination is reachable.
func (n *Network) Call(fromRegion topology.RegionID, to Endpoint, handle func(), done func(rtt time.Duration), fail func()) {
	start := n.loop.Now()
	tr := n.loop.Tracer()
	var sp trace.SpanID
	if tr.Enabled() {
		sp = tr.StartSpan("rpcnet", "rpc", 0,
			trace.String("from", string(fromRegion)),
			trace.String("to", string(to)))
	}
	n.Send(fromRegion, to, func() {
		if handle != nil {
			handle()
		}
		// Reply path: destination region back to caller region.
		back := n.Delay(n.regions[to], fromRegion)
		n.loop.After(back, func() {
			if tr.Enabled() {
				tr.EndSpan(sp, trace.String("status", "ok"))
			}
			if done != nil {
				done(n.loop.Now() - start)
			}
		})
	}, func() {
		if tr.Enabled() {
			tr.EndSpan(sp, trace.String("status", "failed"))
		}
		if fail != nil {
			fail()
		}
	})
}
