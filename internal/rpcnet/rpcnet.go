// Package rpcnet simulates the network fabric between regions: one-way
// message delivery with region-to-region latency taken from the fleet's
// latency model. Application clients, application servers, and the SM
// orchestrator all communicate through a Network so that experiments see
// realistic geo-distributed latencies (Fig 19/20) and so that failed
// endpoints drop traffic instead of magically responding.
//
// The fabric is also the injection point for network faults: per-directed-link
// latency inflation, packet loss, and full partitions (symmetric or
// asymmetric) installed via SetLinkFault. Failure detection is modeled
// explicitly: a sender learns that a message was lost only after SendTimeout,
// never "for free" at the would-be delivery instant — so injected latency can
// never make a timeout arrive faster than a slow success.
package rpcnet

import (
	"time"

	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
	"shardmanager/internal/trace"
)

// Endpoint is anything reachable on the network.
type Endpoint string

// DefaultSendTimeout is how long a sender waits before concluding a message
// was lost (down endpoint, partition, or packet loss).
const DefaultSendTimeout = 1 * time.Second

// Kernel-profiler attribution labels, interned once so the per-message path
// never touches the label table.
var (
	lbDeliver = sim.LabelFor("rpcnet", "deliver")
	lbReply   = sim.LabelFor("rpcnet", "reply")
	lbTimeout = sim.LabelFor("rpcnet", "timeout")
)

// LinkFault describes an injected impairment of one directed region link.
// The zero value is a healthy link.
type LinkFault struct {
	// LatencyScale multiplies the link's base latency (0 or 1 = unchanged).
	LatencyScale float64
	// LatencyAdd is added to the link's latency after scaling.
	LatencyAdd time.Duration
	// DropProb is the probability a message on this link is lost
	// (1 = full partition).
	DropProb float64
}

// partitioned reports whether the fault drops every message.
func (f LinkFault) partitioned() bool { return f.DropProb >= 1 }

// active reports whether the fault changes anything.
func (f LinkFault) active() bool {
	return f.DropProb > 0 || f.LatencyAdd > 0 || (f.LatencyScale > 0 && f.LatencyScale != 1)
}

type linkKey struct {
	from, to topology.RegionID
}

// Network delivers messages between regions with simulated latency.
type Network struct {
	loop  *sim.Loop
	fleet *topology.Fleet
	rng   *sim.RNG
	// Jitter adds up to this fraction of extra random latency per hop
	// (default 0.1).
	Jitter float64
	// SendTimeout is how long a sender waits before detecting a lost
	// message (default DefaultSendTimeout). Failure callbacks fire at
	// send time + SendTimeout, decoupled from the (possibly inflated)
	// delivery latency.
	SendTimeout time.Duration

	regions map[Endpoint]topology.RegionID
	down    map[Endpoint]bool
	faults  map[linkKey]LinkFault

	// inflight counts messages currently riding the fabric (scheduled but
	// not yet delivered), exported as the rpcnet_inflight_messages gauge —
	// the delivery-queue depth the kernel profiler pairs with its
	// event-heap gauges.
	inflight int

	// Messages counts deliveries, Dropped counts messages lost to link
	// faults, for tests and smctl.
	Messages int64
	Dropped  int64
}

// NewNetwork returns a network over the fleet's latency model.
func NewNetwork(loop *sim.Loop, fleet *topology.Fleet) *Network {
	return &Network{
		loop:        loop,
		fleet:       fleet,
		rng:         loop.RNG().Fork(),
		Jitter:      0.1,
		SendTimeout: DefaultSendTimeout,
		regions:     make(map[Endpoint]topology.RegionID),
		down:        make(map[Endpoint]bool),
	}
}

// Register places an endpoint in a region and marks it reachable.
func (n *Network) Register(e Endpoint, region topology.RegionID) {
	n.regions[e] = region
	delete(n.down, e)
}

// Unregister makes the endpoint unreachable (process death).
func (n *Network) Unregister(e Endpoint) { n.down[e] = true }

// Reachable reports whether the endpoint is registered and up.
func (n *Network) Reachable(e Endpoint) bool {
	_, ok := n.regions[e]
	return ok && !n.down[e]
}

// Region returns the endpoint's region ("" if unknown).
func (n *Network) Region(e Endpoint) topology.RegionID { return n.regions[e] }

// SetLinkFault installs a fault on the directed link from -> to, replacing
// any previous fault on that link. A zero LinkFault clears it.
func (n *Network) SetLinkFault(from, to topology.RegionID, f LinkFault) {
	if !f.active() {
		n.ClearLinkFault(from, to)
		return
	}
	if n.faults == nil {
		n.faults = make(map[linkKey]LinkFault)
	}
	n.faults[linkKey{from, to}] = f
}

// ClearLinkFault removes any fault on the directed link from -> to.
func (n *Network) ClearLinkFault(from, to topology.RegionID) {
	delete(n.faults, linkKey{from, to})
}

// LinkFaultOn returns the fault installed on the directed link (zero value
// when healthy).
func (n *Network) LinkFaultOn(from, to topology.RegionID) LinkFault {
	return n.faults[linkKey{from, to}]
}

// Partitioned reports whether the directed link from -> to currently drops
// all traffic.
func (n *Network) Partitioned(from, to topology.RegionID) bool {
	return n.faults[linkKey{from, to}].partitioned()
}

// Delay returns one sampled one-way latency between two regions, including
// any injected latency inflation on the link.
func (n *Network) Delay(from, to topology.RegionID) time.Duration {
	base := n.fleet.Latency(from, to)
	if f, ok := n.faults[linkKey{from, to}]; ok {
		if f.LatencyScale > 0 {
			base = time.Duration(float64(base) * f.LatencyScale)
		}
		base += f.LatencyAdd
	}
	if n.Jitter <= 0 {
		return base
	}
	return base + time.Duration(n.rng.Float64()*n.Jitter*float64(base))
}

// sendTimeout returns the failure-detection delay for one message.
func (n *Network) sendTimeout() time.Duration {
	if n.SendTimeout > 0 {
		return n.SendTimeout
	}
	return DefaultSendTimeout
}

// trackInflight adjusts the fabric's in-flight message count and mirrors it
// into the metrics registry when one is attached.
func (n *Network) trackInflight(delta int) {
	n.inflight += delta
	if mr := n.loop.Metrics(); mr != nil {
		mr.Gauge("rpcnet_inflight_messages").Set(float64(n.inflight))
	}
}

// InFlight returns the number of messages scheduled but not yet delivered.
func (n *Network) InFlight() int { return n.inflight }

// lost decides whether a message on from -> to is lost to an injected
// link fault. It consumes randomness only on lossy (0 < p < 1) links so that
// installing and removing faults perturbs the RNG stream minimally.
func (n *Network) lost(from, to topology.RegionID) bool {
	f, ok := n.faults[linkKey{from, to}]
	if !ok || f.DropProb <= 0 {
		return false
	}
	if f.DropProb >= 1 {
		return true
	}
	return n.rng.Float64() < f.DropProb
}

// Send schedules fn to run after the one-way latency from the sender's
// region to the destination endpoint's region. If the message is lost — the
// destination is unreachable at delivery time, or an injected link fault
// drops it — onFail runs at send time + SendTimeout instead: the sender
// learns of the failure only by timeout, never faster than a slow success
// could arrive. Either callback may be nil.
func (n *Network) Send(fromRegion topology.RegionID, to Endpoint, fn func(), onFail func()) {
	toRegion, known := n.regions[to]
	var d time.Duration
	if known {
		d = n.Delay(fromRegion, toRegion)
	} else {
		d = n.Delay(fromRegion, fromRegion)
	}
	tr := n.loop.Tracer()
	var sp trace.SpanID
	if tr.Enabled() {
		sp = tr.StartSpan("rpcnet", "send", 0,
			trace.String("from", string(fromRegion)),
			trace.String("to", string(to)))
		tr.Event("rpcnet", "tx", sp)
	}
	timeout := n.sendTimeout()
	fail := func(status string) {
		if tr.Enabled() {
			tr.Event("rpcnet", "timeout", sp, trace.String("to", string(to)))
			tr.EndSpan(sp, trace.String("status", status))
		}
		if onFail != nil {
			onFail()
		}
	}
	if known && n.lost(fromRegion, toRegion) {
		n.Dropped++
		n.loop.AfterL(timeout, lbTimeout, func() { fail("dropped") })
		return
	}
	sentAt := n.loop.Now()
	n.trackInflight(1)
	n.loop.AfterL(d, lbDeliver, func() {
		n.Messages++
		n.trackInflight(-1)
		if !n.Reachable(to) {
			// Failure detection is by timeout from the send instant; if
			// the (possibly inflated) delivery delay already exceeds the
			// timeout the sender has been waiting long enough.
			wait := sentAt + timeout - n.loop.Now()
			if wait > 0 {
				n.loop.AfterL(wait, lbTimeout, func() { fail("unreachable") })
			} else {
				fail("unreachable")
			}
			return
		}
		if tr.Enabled() {
			tr.Event("rpcnet", "rx", sp)
			tr.EndSpan(sp, trace.String("status", "delivered"))
		}
		if fn != nil {
			fn()
		}
	})
}

// Reply schedules fn after the one-way latency from region from to region to
// — the response leg of an RPC, where the receiver is not a registered
// endpoint. It honors injected link faults: a lost reply invokes onFail at
// send time + SendTimeout.
func (n *Network) Reply(from, to topology.RegionID, fn func(), onFail func()) {
	if n.lost(from, to) {
		n.Dropped++
		if onFail != nil {
			n.loop.AfterL(n.sendTimeout(), lbTimeout, onFail)
		}
		return
	}
	n.trackInflight(1)
	n.loop.AfterL(n.Delay(from, to), lbReply, func() {
		n.trackInflight(-1)
		if fn != nil {
			fn()
		}
	})
}

// Call performs a round trip: deliver the request, run handle at the
// destination, then deliver the reply back and run done with the total
// round-trip time. If the destination is unreachable or either leg is lost,
// fail runs after the sender's timeout for that leg. handle runs only if the
// destination is reachable.
func (n *Network) Call(fromRegion topology.RegionID, to Endpoint, handle func(), done func(rtt time.Duration), fail func()) {
	start := n.loop.Now()
	tr := n.loop.Tracer()
	var sp trace.SpanID
	if tr.Enabled() {
		sp = tr.StartSpan("rpcnet", "rpc", 0,
			trace.String("from", string(fromRegion)),
			trace.String("to", string(to)))
	}
	n.Send(fromRegion, to, func() {
		if handle != nil {
			handle()
		}
		// Reply path: destination region back to caller region.
		n.Reply(n.regions[to], fromRegion, func() {
			if tr.Enabled() {
				tr.EndSpan(sp, trace.String("status", "ok"))
			}
			if done != nil {
				done(n.loop.Now() - start)
			}
		}, func() {
			if tr.Enabled() {
				tr.EndSpan(sp, trace.String("status", "reply-lost"))
			}
			if fail != nil {
				fail()
			}
		})
	}, func() {
		if tr.Enabled() {
			tr.EndSpan(sp, trace.String("status", "failed"))
		}
		if fail != nil {
			fail()
		}
	})
}
