package rpcnet

import (
	"testing"
	"time"

	"shardmanager/internal/sim"
	"shardmanager/internal/topology"
)

func testNet(t *testing.T) (*sim.Loop, *Network) {
	t.Helper()
	fleet := topology.Build(topology.Spec{
		Regions:           []topology.RegionID{"a", "b"},
		MachinesPerRegion: 1,
		Latency:           map[[2]topology.RegionID]time.Duration{{"a", "b"}: 50 * time.Millisecond},
	})
	loop := sim.NewLoop(1)
	n := NewNetwork(loop, fleet)
	n.Jitter = 0
	return loop, n
}

func TestSendDeliversWithLatency(t *testing.T) {
	loop, n := testNet(t)
	n.Register("dst", "b")
	var deliveredAt time.Duration
	n.Send("a", "dst", func() { deliveredAt = loop.Now() }, nil)
	loop.Run()
	if deliveredAt != 50*time.Millisecond {
		t.Fatalf("delivered at %v, want 50ms", deliveredAt)
	}
	if n.Messages != 1 {
		t.Fatalf("Messages = %d", n.Messages)
	}
}

func TestSendToDownEndpointFails(t *testing.T) {
	loop, n := testNet(t)
	n.Register("dst", "b")
	n.Unregister("dst")
	ok, failed := false, false
	n.Send("a", "dst", func() { ok = true }, func() { failed = true })
	loop.Run()
	if ok || !failed {
		t.Fatalf("ok=%v failed=%v", ok, failed)
	}
}

func TestEndpointGoesDownInFlight(t *testing.T) {
	loop, n := testNet(t)
	n.Register("dst", "b")
	failed := false
	n.Send("a", "dst", nil, func() { failed = true })
	// Kill the endpoint before the message lands.
	loop.After(10*time.Millisecond, func() { n.Unregister("dst") })
	loop.Run()
	if !failed {
		t.Fatal("in-flight message delivered to dead endpoint")
	}
}

func TestReRegisterRevives(t *testing.T) {
	loop, n := testNet(t)
	n.Register("dst", "b")
	n.Unregister("dst")
	n.Register("dst", "b")
	if !n.Reachable("dst") {
		t.Fatal("re-registered endpoint unreachable")
	}
	ok := false
	n.Send("a", "dst", func() { ok = true }, nil)
	loop.Run()
	if !ok {
		t.Fatal("message not delivered after revive")
	}
}

func TestCallRoundTrip(t *testing.T) {
	loop, n := testNet(t)
	n.Register("dst", "b")
	var rtt time.Duration
	handled := false
	n.Call("a", "dst", func() { handled = true }, func(d time.Duration) { rtt = d }, nil)
	loop.Run()
	if !handled {
		t.Fatal("handler not invoked")
	}
	if rtt != 100*time.Millisecond {
		t.Fatalf("rtt = %v, want 100ms", rtt)
	}
}

func TestCallFailure(t *testing.T) {
	loop, n := testNet(t)
	failed := false
	n.Call("a", "ghost", nil, nil, func() { failed = true })
	loop.Run()
	if !failed {
		t.Fatal("call to unknown endpoint did not fail")
	}
}

func TestJitterBounds(t *testing.T) {
	loop, n := testNet(t)
	n.Jitter = 0.5
	n.Register("dst", "b")
	for i := 0; i < 100; i++ {
		d := n.Delay("a", "b")
		if d < 50*time.Millisecond || d > 75*time.Millisecond {
			t.Fatalf("delay %v outside [50ms, 75ms]", d)
		}
	}
	_ = loop
}

func TestRegionLookup(t *testing.T) {
	_, n := testNet(t)
	n.Register("x", "a")
	if n.Region("x") != "a" || n.Region("ghost") != "" {
		t.Fatal("Region lookup wrong")
	}
}

func TestFailureDetectedAtSendTimeout(t *testing.T) {
	loop, n := testNet(t)
	n.Register("dst", "b")
	n.Unregister("dst")
	var failedAt time.Duration
	n.Send("a", "dst", nil, func() { failedAt = loop.Now() })
	loop.Run()
	if failedAt != n.SendTimeout {
		t.Fatalf("failure detected at %v, want SendTimeout %v", failedAt, n.SendTimeout)
	}
}

func TestTimeoutNeverBeatsSlowSuccess(t *testing.T) {
	// With latency inflated past SendTimeout, a failure must be detected no
	// earlier than the inflated delivery delay — the sender cannot learn of
	// a loss faster than a success could have arrived.
	loop, n := testNet(t)
	n.Register("dst", "b")
	n.Unregister("dst")
	n.SetLinkFault("a", "b", LinkFault{LatencyScale: 40}) // 50ms -> 2s > 1s timeout
	var failedAt time.Duration
	n.Send("a", "dst", nil, func() { failedAt = loop.Now() })
	loop.Run()
	if failedAt != 2*time.Second {
		t.Fatalf("failure detected at %v, want the 2s inflated delay", failedAt)
	}
}

func TestPartitionDropsAndFailsAtTimeout(t *testing.T) {
	loop, n := testNet(t)
	n.Register("dst", "b")
	n.SetLinkFault("a", "b", LinkFault{DropProb: 1})
	ok := false
	var failedAt time.Duration
	n.Send("a", "dst", func() { ok = true }, func() { failedAt = loop.Now() })
	loop.Run()
	if ok {
		t.Fatal("message crossed a full partition")
	}
	if failedAt != n.SendTimeout {
		t.Fatalf("failure detected at %v, want SendTimeout %v", failedAt, n.SendTimeout)
	}
	if n.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Dropped)
	}
}

func TestOneWayPartitionLeavesReverseOpen(t *testing.T) {
	loop, n := testNet(t)
	n.Register("dst", "b")
	n.Register("src", "a")
	n.SetLinkFault("a", "b", LinkFault{DropProb: 1})
	aToB, bToA := false, false
	n.Send("a", "dst", func() { aToB = true }, nil)
	n.Send("b", "src", func() { bToA = true }, nil)
	loop.Run()
	if aToB || !bToA {
		t.Fatalf("aToB=%v bToA=%v; want only b->a delivered", aToB, bToA)
	}
}

func TestLatencyAddInflatesDelay(t *testing.T) {
	_, n := testNet(t)
	n.SetLinkFault("a", "b", LinkFault{LatencyAdd: 30 * time.Millisecond})
	if d := n.Delay("a", "b"); d != 80*time.Millisecond {
		t.Fatalf("Delay = %v, want 80ms", d)
	}
	n.ClearLinkFault("a", "b")
	if d := n.Delay("a", "b"); d != 50*time.Millisecond {
		t.Fatalf("Delay after clear = %v, want 50ms", d)
	}
}

func TestZeroLinkFaultClears(t *testing.T) {
	_, n := testNet(t)
	n.SetLinkFault("a", "b", LinkFault{DropProb: 1})
	n.SetLinkFault("a", "b", LinkFault{})
	if n.Partitioned("a", "b") {
		t.Fatal("zero LinkFault should clear the fault")
	}
}

func TestCallFailsWhenReplyLost(t *testing.T) {
	loop, n := testNet(t)
	n.Register("dst", "b")
	n.SetLinkFault("b", "a", LinkFault{DropProb: 1}) // only the reply leg
	handled, done, failed := false, false, false
	n.Call("a", "dst", func() { handled = true }, func(time.Duration) { done = true }, func() { failed = true })
	loop.Run()
	if !handled || done || !failed {
		t.Fatalf("handled=%v done=%v failed=%v; want request delivered, reply lost", handled, done, failed)
	}
}

func TestSendDeliverReplyAllocationFree(t *testing.T) {
	loop, n := testNet(t)
	n.Register("dst", "b")
	served := 0
	handle := func() {}
	done := func(time.Duration) { served++ }
	fail := func() { t.Error("call failed on a healthy link") }
	// Warm the event, envelope, and callState freelists.
	for i := 0; i < 100; i++ {
		n.Call("a", "dst", handle, done, fail)
	}
	loop.Run()
	// Steady state: a full RPC round trip — send, deliver, reply — must not
	// allocate. The pooled envelopes/callStates and the kernel's event
	// freelist are the whole story; no closures, no per-message garbage.
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 10; i++ {
			n.Call("a", "dst", handle, done, fail)
		}
		loop.Run()
	})
	if allocs != 0 {
		t.Fatalf("send->deliver->reply allocated %.2f allocs/run, want 0", allocs)
	}
	if served == 0 {
		t.Fatal("no calls completed")
	}
}

func TestSendArgDeliversArg(t *testing.T) {
	loop, n := testNet(t)
	n.Register("dst", "b")
	type msg struct{ payload int }
	var got *msg
	m := &msg{payload: 42}
	n.SendArg("a", "dst", func(a any) { got = a.(*msg) }, m, nil, nil)
	loop.Run()
	if got != m {
		t.Fatalf("SendArg delivered %v, want the original message pointer", got)
	}
}

func TestSendArgFailArgOnUnreachable(t *testing.T) {
	loop, n := testNet(t)
	n.Register("dst", "b")
	n.Unregister("dst")
	var failedWith any
	n.SendArg("a", "dst",
		func(any) { t.Error("delivered to a down endpoint") }, nil,
		func(a any) { failedWith = a }, "req-7")
	loop.Run()
	if failedWith != "req-7" {
		t.Fatalf("onFail got %v, want req-7", failedWith)
	}
}
