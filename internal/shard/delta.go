package shard

import (
	"fmt"
	"sort"
)

// DeltaEntry is one changed shard in a Delta: the shard's complete new
// assignment list. Whole-entry granularity (rather than per-replica edits)
// keeps application order-independent and idempotent per shard, which is
// what lets consumers apply a delta's entries in any order.
type DeltaEntry struct {
	Shard       ID
	Assignments []Assignment
}

// Delta is a compact edit script between two consecutive shard-map
// versions: applying it to a map at FromVersion yields the map at
// ToVersion. Steady-state publication cost becomes O(changed entries)
// instead of the O(shards) copy a full-map publish pays, which is what
// makes frequent republication affordable at millions of shards
// (ROADMAP item 2).
//
// A Delta is a reusable buffer: Reset rewinds it in place, and staging
// methods (Set, SetOne, Remove) recycle the Changed backing array and each
// entry's Assignments slice, so a publisher that ping-pongs two deltas
// allocates nothing at steady state.
type Delta struct {
	App AppID
	// FromVersion is the map version this delta applies on top of;
	// ToVersion is the resulting version. Deltas chain: a consumer at
	// version N applies the N->N+1 delta; anything else falls back to a
	// full snapshot.
	FromVersion int64
	ToVersion   int64
	// Gen is the coordination epoch stamped on the resulting map, with the
	// same total-order semantics as Map.Gen.
	Gen int64
	// Changed holds added or reassigned shards with their new assignments.
	Changed []DeltaEntry
	// Removed lists shards absent from the target map.
	Removed []ID
}

// NewDelta returns an empty delta buffer for app.
func NewDelta(app AppID) *Delta { return &Delta{App: app} }

// Reset rewinds the delta in place for reuse, keeping the backing arrays:
// version bounds and generation are restamped, Changed and Removed empty.
// Returns d.
func (d *Delta) Reset(app AppID, from, to, gen int64) *Delta {
	d.App, d.FromVersion, d.ToVersion, d.Gen = app, from, to, gen
	d.Changed = d.Changed[:0]
	d.Removed = d.Removed[:0]
	return d
}

// Len returns the number of edits (changed + removed entries).
func (d *Delta) Len() int { return len(d.Changed) + len(d.Removed) }

// entry appends one (possibly recycled) changed entry and returns it.
func (d *Delta) entry(s ID) *DeltaEntry {
	if len(d.Changed) < cap(d.Changed) {
		d.Changed = d.Changed[:len(d.Changed)+1]
	} else {
		d.Changed = append(d.Changed, DeltaEntry{})
	}
	e := &d.Changed[len(d.Changed)-1]
	e.Shard = s
	return e
}

// Set stages shard s's new assignment list, copying as into recycled
// storage (the caller may keep mutating its slice). Staging the same shard
// twice records it twice; the last entry wins on apply, but publishers
// should coalesce (stage each shard at most once per delta) to keep deltas
// minimal.
func (d *Delta) Set(s ID, as []Assignment) {
	e := d.entry(s)
	e.Assignments = append(e.Assignments[:0], as...)
}

// SetOne stages shard s as a single-replica assignment — the hot path for
// primary-only churn, with no intermediate slice.
func (d *Delta) SetOne(s ID, server ServerID, role Role) {
	e := d.entry(s)
	if cap(e.Assignments) < 1 {
		e.Assignments = make([]Assignment, 1, 4)
	} else {
		e.Assignments = e.Assignments[:1]
	}
	e.Assignments[0] = Assignment{Server: server, Role: role}
}

// Remove stages shard s for removal from the map.
func (d *Delta) Remove(s ID) { d.Removed = append(d.Removed, s) }

// ApproxBytes estimates the delta's wire size: shard/server ID bytes plus a
// small fixed per-record overhead. The full-vs-delta bytes-per-publish
// comparison in BENCH_controlplane.json uses the same accounting for both
// sides, so the ratio is meaningful even though neither is a real codec.
func (d *Delta) ApproxBytes() int64 {
	n := int64(32) // header: app/version bounds/gen
	for i := range d.Changed {
		e := &d.Changed[i]
		n += int64(len(e.Shard)) + 4
		for _, a := range e.Assignments {
			n += int64(len(a.Server)) + 5 // server id + role + framing
		}
	}
	for _, s := range d.Removed {
		n += int64(len(s)) + 4
	}
	return n
}

// ApproxBytes estimates the map's wire size under the same accounting as
// Delta.ApproxBytes.
func (m *Map) ApproxBytes() int64 {
	n := int64(32)
	for s, as := range m.Entries {
		n += int64(len(s)) + 4
		for _, a := range as {
			n += int64(len(a.Server)) + 5
		}
	}
	return n
}

// assignmentsEqual reports whether two assignment lists are identical
// including order (publication order is part of map identity: routing
// iterates replica lists in order).
func assignmentsEqual(a, b []Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Diff computes the delta that turns prev into m, reusing scratch's storage
// when non-nil. Entries are emitted in sorted shard order so the result is
// deterministic regardless of map iteration order. Cost is O(|m| + |prev|)
// plus a sort of the changed set — publishers that already know their churn
// set should stage a Delta directly instead and skip the scan.
func (m *Map) Diff(prev *Map, scratch *Delta) *Delta {
	if prev == nil {
		panic("shard: Diff(nil) — publish a full map instead")
	}
	d := scratch
	if d == nil {
		d = NewDelta(m.App)
	}
	d.Reset(m.App, prev.Version, m.Version, m.Gen)
	for s, as := range m.Entries {
		if pas, ok := prev.Entries[s]; !ok || !assignmentsEqual(as, pas) {
			d.Set(s, as)
		}
	}
	for s := range prev.Entries {
		if _, ok := m.Entries[s]; !ok {
			d.Remove(s)
		}
	}
	sort.Slice(d.Changed, func(i, j int) bool { return d.Changed[i].Shard < d.Changed[j].Shard })
	sort.Slice(d.Removed, func(i, j int) bool { return d.Removed[i] < d.Removed[j] })
	return d
}

// ApplyDelta applies d to m in place, advancing it from d.FromVersion to
// d.ToVersion. Per-shard assignment slices are recycled, so applying a
// steady-state delta (same shards churning) allocates nothing. It is the
// consumer-side counterpart of Diff: for any maps A, B with the same App,
// A.Clone() + ApplyDelta(B.Diff(A)) is deep-equal to B.
//
// The version must match exactly: a consumer holding any other version must
// resync from a full snapshot (the service discovery layer arranges that).
func (m *Map) ApplyDelta(d *Delta) error {
	if m.App != d.App {
		return fmt.Errorf("shard: delta for app %q applied to map of %q", d.App, m.App)
	}
	if m.Version != d.FromVersion {
		return fmt.Errorf("shard: delta %d->%d applied to map at version %d",
			d.FromVersion, d.ToVersion, m.Version)
	}
	for i := range d.Changed {
		e := &d.Changed[i]
		m.Entries[e.Shard] = append(m.Entries[e.Shard][:0], e.Assignments...)
	}
	for _, s := range d.Removed {
		delete(m.Entries, s)
	}
	m.Version = d.ToVersion
	if d.Gen > 0 {
		m.Gen = d.Gen
	}
	return nil
}
