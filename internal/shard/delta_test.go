package shard

import (
	"fmt"
	"math/rand"
	"testing"
)

func mapsDeepEqual(a, b *Map) error {
	if a.App != b.App || a.Version != b.Version || a.Gen != b.Gen {
		return fmt.Errorf("header mismatch: %s/v%d/g%d vs %s/v%d/g%d",
			a.App, a.Version, a.Gen, b.App, b.Version, b.Gen)
	}
	if len(a.Entries) != len(b.Entries) {
		return fmt.Errorf("entry count %d vs %d", len(a.Entries), len(b.Entries))
	}
	for s, as := range a.Entries {
		bs, ok := b.Entries[s]
		if !ok {
			return fmt.Errorf("shard %s missing", s)
		}
		if !assignmentsEqual(as, bs) {
			return fmt.Errorf("shard %s: %v vs %v", s, as, bs)
		}
	}
	return nil
}

func TestDiffApplyRoundTrip(t *testing.T) {
	prev := NewMap("app")
	prev.Version, prev.Gen = 3, 7
	prev.Entries["s0"] = []Assignment{{Server: "a", Role: RolePrimary}}
	prev.Entries["s1"] = []Assignment{{Server: "b", Role: RolePrimary}, {Server: "c", Role: RoleSecondary}}
	prev.Entries["s2"] = []Assignment{{Server: "c", Role: RolePrimary}}

	next := prev.Clone()
	next.Version, next.Gen = 4, 9
	next.Entries["s0"] = []Assignment{{Server: "d", Role: RolePrimary}}   // reassigned
	next.Entries["s3"] = []Assignment{{Server: "a", Role: RoleSecondary}} // added
	delete(next.Entries, "s2")                                            // removed
	next.Entries["s1"] = append([]Assignment(nil), prev.Entries["s1"]...) // unchanged

	d := next.Diff(prev, nil)
	if d.FromVersion != 3 || d.ToVersion != 4 || d.Gen != 9 {
		t.Fatalf("delta header %+v", d)
	}
	if len(d.Changed) != 2 || len(d.Removed) != 1 {
		t.Fatalf("delta size: %d changed, %d removed", len(d.Changed), len(d.Removed))
	}
	// Deterministic sorted order.
	if d.Changed[0].Shard != "s0" || d.Changed[1].Shard != "s3" || d.Removed[0] != "s2" {
		t.Fatalf("delta order: %+v", d)
	}

	got := prev.Clone()
	if err := got.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	if err := mapsDeepEqual(got, next); err != nil {
		t.Fatal(err)
	}
}

func TestApplyDeltaVersionAndAppChecks(t *testing.T) {
	m := NewMap("app")
	m.Version = 5
	d := NewDelta("app").Reset("app", 4, 5, 0)
	if err := m.ApplyDelta(d); err == nil {
		t.Fatal("version-mismatched delta accepted")
	}
	d.Reset("other", 5, 6, 0)
	if err := m.ApplyDelta(d); err == nil {
		t.Fatal("wrong-app delta accepted")
	}
}

func TestDeltaSetCopiesAssignments(t *testing.T) {
	d := NewDelta("app")
	as := []Assignment{{Server: "a", Role: RolePrimary}}
	d.Set("s0", as)
	as[0].Server = "mutated"
	if d.Changed[0].Assignments[0].Server != "a" {
		t.Fatal("Set aliased the caller's slice")
	}
}

// TestDeltaApplyEquivalenceRandomChurn is the acceptance property test:
// across randomized churn scripts, a follower that applies every delta in
// order stays deep-equal to the publisher's full map.
func TestDeltaApplyEquivalenceRandomChurn(t *testing.T) {
	const (
		seeds    = 8
		shards   = 300
		versions = 60
	)
	for seed := int64(1); seed <= seeds; seed++ {
		rng := rand.New(rand.NewSource(seed))
		servers := make([]ServerID, 20)
		for i := range servers {
			servers[i] = ServerID(fmt.Sprintf("srv%02d", i))
		}
		pub := NewMap("churn")
		pub.Version, pub.Gen = 1, 1
		for i := 0; i < shards; i++ {
			pub.Entries[ID(fmt.Sprintf("s%04d", i))] = []Assignment{
				{Server: servers[rng.Intn(len(servers))], Role: RolePrimary},
			}
		}
		follower := pub.Clone()
		var scratch *Delta
		for v := 0; v < versions; v++ {
			prev := pub.Clone() // publisher's last published state
			// Random churn: reassigns, replica-count changes, removals, adds.
			for n := rng.Intn(20); n >= 0; n-- {
				s := ID(fmt.Sprintf("s%04d", rng.Intn(shards)))
				switch rng.Intn(5) {
				case 0:
					delete(pub.Entries, s)
				case 1:
					pub.Entries[s] = []Assignment{
						{Server: servers[rng.Intn(len(servers))], Role: RolePrimary},
						{Server: servers[rng.Intn(len(servers))], Role: RoleSecondary},
					}
				default:
					pub.Entries[s] = []Assignment{
						{Server: servers[rng.Intn(len(servers))], Role: RolePrimary},
					}
				}
			}
			pub.Version++
			pub.Gen++
			scratch = pub.Diff(prev, scratch)
			if err := follower.ApplyDelta(scratch); err != nil {
				t.Fatalf("seed %d v%d: %v", seed, v, err)
			}
			if err := mapsDeepEqual(follower, pub); err != nil {
				t.Fatalf("seed %d v%d: follower diverged: %v", seed, v, err)
			}
		}
	}
}

// TestDeltaStagingSteadyStateAllocs pins the pooled-buffer contract: once a
// delta buffer and the target map have warmed up, staging and applying a
// same-shape delta allocates nothing.
func TestDeltaStagingSteadyStateAllocs(t *testing.T) {
	const n = 64
	m := NewMap("app")
	m.Version = 1
	ids := make([]ID, n)
	for i := range ids {
		ids[i] = ID(fmt.Sprintf("s%04d", i))
		m.Entries[ids[i]] = []Assignment{{Server: "a", Role: RolePrimary}}
	}
	d := NewDelta("app")
	// Warm up both buffers once.
	d.Reset("app", 1, 2, 0)
	for _, s := range ids {
		d.SetOne(s, "b", RolePrimary)
	}
	if err := m.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	version := int64(2)
	allocs := testing.AllocsPerRun(100, func() {
		d.Reset("app", version, version+1, 0)
		for _, s := range ids {
			d.SetOne(s, "c", RolePrimary)
		}
		if err := m.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		version++
	})
	if allocs != 0 {
		t.Fatalf("steady-state delta stage+apply allocates %.1f/run, want 0", allocs)
	}
}

func TestApproxBytesScalesWithEdits(t *testing.T) {
	m := NewMap("app")
	for i := 0; i < 1000; i++ {
		m.Entries[ID(fmt.Sprintf("s%05d", i))] = []Assignment{{Server: "srv-00001", Role: RolePrimary}}
	}
	d := NewDelta("app")
	d.SetOne("s00000", "srv-00002", RolePrimary)
	if fb, db := m.ApproxBytes(), d.ApproxBytes(); db*10 >= fb {
		t.Fatalf("delta bytes %d not small vs full %d", db, fb)
	}
}
