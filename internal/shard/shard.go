// Package shard defines the core data model shared across the Shard Manager
// reproduction: applications, shards, replica roles, shard-to-server
// assignments, versioned shard maps, and the app-defined keyspace.
//
// SM uses the app-key, app-sharding abstraction (§3.1): the application
// decides how its key space divides into shards (possibly unevenly, e.g.
// S0:[1,9], S1:[10,99], S2:[100,100000]) and SM never splits or merges
// shards. A Keyspace captures that app-owned mapping; both application
// clients and servers share it.
package shard

import (
	"fmt"
	"sort"
	"strings"
)

// AppID names a sharded application.
type AppID string

// ID names one shard of an application.
type ID string

// ServerID names an application server (one container). It equals the
// cluster manager's container ID textually.
type ServerID string

// Role is a replica's role.
type Role int

// Replica roles (§2.2.3).
const (
	RolePrimary Role = iota
	RoleSecondary
)

// String returns "primary" or "secondary".
func (r Role) String() string {
	switch r {
	case RolePrimary:
		return "primary"
	case RoleSecondary:
		return "secondary"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// ReplicationStrategy classifies an application per §2.2.3.
type ReplicationStrategy int

// Replication strategies.
const (
	// PrimaryOnly: each shard has a single primary replica; SM guarantees
	// no two servers serve the same shard at once.
	PrimaryOnly ReplicationStrategy = iota
	// SecondaryOnly: each shard has multiple equal replicas.
	SecondaryOnly
	// PrimarySecondary: one SM-elected primary plus >= 1 secondaries.
	PrimarySecondary
)

// String returns the strategy name.
func (s ReplicationStrategy) String() string {
	switch s {
	case PrimaryOnly:
		return "primary-only"
	case SecondaryOnly:
		return "secondary-only"
	case PrimarySecondary:
		return "primary-secondary"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Assignment is one replica's placement: which server and in which role.
type Assignment struct {
	Server ServerID
	Role   Role
}

// Map is a versioned shard-to-server assignment for one application.
// Versions increase monotonically with every publication; the service
// discovery system disseminates maps to clients with a delay, so clients may
// briefly act on stale versions (which is exactly what the graceful
// migration protocol of §4.3 must tolerate).
type Map struct {
	App     AppID
	Version int64
	// Gen is the coordination epoch (fencing token) stamped at publish
	// time. Generations are drawn from the coord store's global epoch
	// counter, so they are totally ordered with session generations and
	// role grants: a consumer may safely discard any map whose Gen is
	// behind one it has already applied, and a server fenced at session
	// generation g trusts only grants with Gen > g.
	Gen     int64
	Entries map[ID][]Assignment
}

// NewMap returns an empty shard map for app.
func NewMap(app AppID) *Map {
	return &Map{App: app, Entries: make(map[ID][]Assignment)}
}

// Clone returns a deep copy.
func (m *Map) Clone() *Map {
	out := &Map{App: m.App, Version: m.Version, Gen: m.Gen, Entries: make(map[ID][]Assignment, len(m.Entries))}
	for s, as := range m.Entries {
		out.Entries[s] = append([]Assignment(nil), as...)
	}
	return out
}

// CloneInto deep-copies m into dst, reusing dst's entry map and per-shard
// assignment slices instead of allocating fresh ones. At steady state —
// same shard set publish over publish — a clone into a previously used
// buffer allocates nothing, which is what makes periodic full-map
// republishes affordable at large shard counts. A nil dst behaves like
// Clone. Returns dst.
func (m *Map) CloneInto(dst *Map) *Map {
	if dst == nil {
		return m.Clone()
	}
	dst.App, dst.Version, dst.Gen = m.App, m.Version, m.Gen
	if dst.Entries == nil {
		dst.Entries = make(map[ID][]Assignment, len(m.Entries))
	} else {
		for s := range dst.Entries {
			if _, ok := m.Entries[s]; !ok {
				delete(dst.Entries, s)
			}
		}
	}
	for s, as := range m.Entries {
		dst.Entries[s] = append(dst.Entries[s][:0], as...)
	}
	return dst
}

// Primary returns the server holding the shard's primary replica, if any.
func (m *Map) Primary(s ID) (ServerID, bool) {
	for _, a := range m.Entries[s] {
		if a.Role == RolePrimary {
			return a.Server, true
		}
	}
	return "", false
}

// Replicas returns all assignments of a shard (nil if unknown).
func (m *Map) Replicas(s ID) []Assignment { return m.Entries[s] }

// Servers returns the sorted distinct servers appearing in the map.
func (m *Map) Servers() []ServerID {
	set := make(map[ServerID]struct{})
	for _, as := range m.Entries {
		for _, a := range as {
			set[a.Server] = struct{}{}
		}
	}
	out := make([]ServerID, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ShardsOn returns the sorted shards that have a replica on server.
func (m *Map) ShardsOn(server ServerID) []ID {
	var out []ID
	for s, as := range m.Entries {
		for _, a := range as {
			if a.Server == server {
				out = append(out, s)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Validate checks map invariants: at most one primary per shard and no
// duplicate server within a shard's replica list.
func (m *Map) Validate() error {
	for s, as := range m.Entries {
		primaries := 0
		seen := make(map[ServerID]struct{}, len(as))
		for _, a := range as {
			if a.Role == RolePrimary {
				primaries++
			}
			if _, dup := seen[a.Server]; dup {
				return fmt.Errorf("shard %s: duplicate replica on server %s", s, a.Server)
			}
			seen[a.Server] = struct{}{}
		}
		if primaries > 1 {
			return fmt.Errorf("shard %s: %d primaries", s, primaries)
		}
	}
	return nil
}

// Range is a half-open key range [Start, End); End == "" means unbounded.
type Range struct {
	Start string
	End   string
}

// Contains reports whether key falls in the range.
func (r Range) Contains(key string) bool {
	if key < r.Start {
		return false
	}
	return r.End == "" || key < r.End
}

// Keyspace is the application-owned mapping from keys to shards: an ordered
// list of non-overlapping ranges. Because SM uses app-sharding, the
// application constructs the Keyspace and both clients and servers consult
// it; SM itself never changes it.
type Keyspace struct {
	shards []ID
	starts []string // starts[i] is the inclusive start key of shards[i]
}

// NewKeyspace builds a keyspace from ordered (shard, startKey) boundaries.
// The first start key must be "" (covers the smallest keys) and starts must
// be strictly increasing.
func NewKeyspace(shards []ID, starts []string) (*Keyspace, error) {
	if len(shards) == 0 || len(shards) != len(starts) {
		return nil, fmt.Errorf("shard: keyspace needs equal non-empty shards/starts, got %d/%d", len(shards), len(starts))
	}
	if starts[0] != "" {
		return nil, fmt.Errorf("shard: first start key must be empty, got %q", starts[0])
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] <= starts[i-1] {
			return nil, fmt.Errorf("shard: start keys not increasing at %d (%q <= %q)", i, starts[i], starts[i-1])
		}
	}
	ks := &Keyspace{
		shards: append([]ID(nil), shards...),
		starts: append([]string(nil), starts...),
	}
	return ks, nil
}

// UniformKeyspace builds n equal hash-style shards named "<prefix>NNNN".
// Keys are mapped by FNV-1a hash bucketing, which emulates the common
// pattern of apps hashing keys into uniformly named shards while remaining
// an app-owned (not framework-owned) decision.
func UniformKeyspace(prefix string, n int) *Keyspace {
	if n <= 0 {
		panic(fmt.Sprintf("shard: UniformKeyspace(%d)", n))
	}
	shards := make([]ID, n)
	for i := range shards {
		shards[i] = ID(fmt.Sprintf("%s%04d", prefix, i))
	}
	return &Keyspace{shards: shards} // nil starts => hash mode
}

// ShardFor returns the shard owning key.
func (k *Keyspace) ShardFor(key string) ID {
	if k.starts == nil {
		return k.shards[int(fnv1a(key)%uint64(len(k.shards)))]
	}
	// Binary search for the last start <= key.
	idx := sort.Search(len(k.starts), func(i int) bool { return k.starts[i] > key })
	return k.shards[idx-1] // idx >= 1 because starts[0] == ""
}

// Shards returns the shard IDs in order.
func (k *Keyspace) Shards() []ID {
	out := make([]ID, len(k.shards))
	copy(out, k.shards)
	return out
}

// Len returns the number of shards.
func (k *Keyspace) Len() int { return len(k.shards) }

// RangeOf returns the key range of shard s, or false for hash-mode
// keyspaces or unknown shards. Supporting range queries (e.g. the prefix
// scans that Laser relies on, §3.1) requires this key locality.
func (k *Keyspace) RangeOf(s ID) (Range, bool) {
	if k.starts == nil {
		return Range{}, false
	}
	for i, id := range k.shards {
		if id == s {
			r := Range{Start: k.starts[i]}
			if i+1 < len(k.starts) {
				r.End = k.starts[i+1]
			}
			return r, true
		}
	}
	return Range{}, false
}

// ShardsForPrefix returns the shards whose ranges may contain keys with the
// given prefix, in keyspace order. For hash-mode keyspaces every shard may
// contain such keys (locality is destroyed — the Slicer UUID-key downside
// discussed in §3.1), so all shards are returned.
func (k *Keyspace) ShardsForPrefix(prefix string) []ID {
	if k.starts == nil || prefix == "" {
		return k.Shards()
	}
	var out []ID
	hi := prefixUpperBound(prefix)
	for i, id := range k.shards {
		start := k.starts[i]
		end := ""
		if i+1 < len(k.starts) {
			end = k.starts[i+1]
		}
		// Overlaps [prefix, hi)?
		if end != "" && end <= prefix {
			continue
		}
		if hi != "" && start >= hi {
			continue
		}
		out = append(out, id)
	}
	return out
}

// prefixUpperBound returns the smallest string greater than every string
// with the given prefix, or "" if none exists.
func prefixUpperBound(prefix string) string {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] < 0xff {
			b[i]++
			return string(b[:i+1])
		}
	}
	return ""
}

func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// FormatAssignments renders assignments compactly for logs and smctl.
func FormatAssignments(as []Assignment) string {
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = fmt.Sprintf("%s(%s)", a.Server, a.Role)
	}
	return strings.Join(parts, ",")
}
