package shard

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRoleAndStrategyStrings(t *testing.T) {
	if RolePrimary.String() != "primary" || RoleSecondary.String() != "secondary" {
		t.Fatal("role names wrong")
	}
	if PrimaryOnly.String() != "primary-only" || PrimarySecondary.String() != "primary-secondary" {
		t.Fatal("strategy names wrong")
	}
	if Role(9).String() != "role(9)" || ReplicationStrategy(9).String() != "strategy(9)" {
		t.Fatal("unknown enum names wrong")
	}
}

func TestMapPrimaryAndReplicas(t *testing.T) {
	m := NewMap("app")
	m.Entries["s1"] = []Assignment{
		{Server: "a", Role: RoleSecondary},
		{Server: "b", Role: RolePrimary},
	}
	p, ok := m.Primary("s1")
	if !ok || p != "b" {
		t.Fatalf("Primary = %q ok=%v", p, ok)
	}
	if _, ok := m.Primary("missing"); ok {
		t.Fatal("Primary of missing shard")
	}
	if len(m.Replicas("s1")) != 2 {
		t.Fatal("Replicas wrong")
	}
}

func TestMapCloneIsDeep(t *testing.T) {
	m := NewMap("app")
	m.Entries["s1"] = []Assignment{{Server: "a", Role: RolePrimary}}
	c := m.Clone()
	c.Entries["s1"][0].Server = "x"
	c.Entries["s2"] = []Assignment{{Server: "y"}}
	if m.Entries["s1"][0].Server != "a" || len(m.Entries) != 1 {
		t.Fatal("Clone shares state")
	}
}

func TestMapServersAndShardsOn(t *testing.T) {
	m := NewMap("app")
	m.Entries["s1"] = []Assignment{{Server: "b", Role: RolePrimary}, {Server: "a", Role: RoleSecondary}}
	m.Entries["s2"] = []Assignment{{Server: "a", Role: RolePrimary}}
	servers := m.Servers()
	if len(servers) != 2 || servers[0] != "a" || servers[1] != "b" {
		t.Fatalf("Servers = %v", servers)
	}
	on := m.ShardsOn("a")
	if len(on) != 2 || on[0] != "s1" || on[1] != "s2" {
		t.Fatalf("ShardsOn = %v", on)
	}
}

func TestMapValidate(t *testing.T) {
	m := NewMap("app")
	m.Entries["ok"] = []Assignment{{Server: "a", Role: RolePrimary}, {Server: "b", Role: RoleSecondary}}
	if err := m.Validate(); err != nil {
		t.Fatalf("valid map rejected: %v", err)
	}
	m.Entries["two-primaries"] = []Assignment{{Server: "a", Role: RolePrimary}, {Server: "b", Role: RolePrimary}}
	if err := m.Validate(); err == nil {
		t.Fatal("two primaries accepted")
	}
	delete(m.Entries, "two-primaries")
	m.Entries["dup"] = []Assignment{{Server: "a", Role: RolePrimary}, {Server: "a", Role: RoleSecondary}}
	if err := m.Validate(); err == nil {
		t.Fatal("duplicate server accepted")
	}
}

func TestNewKeyspaceUnevenRanges(t *testing.T) {
	// The paper's example: S0:[1,9], S1:[10,99], S2:[100,100000]. With
	// string keys we express it as boundaries.
	ks, err := NewKeyspace([]ID{"S0", "S1", "S2"}, []string{"", "10", "100"})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]ID{
		"0":    "S0",
		"1":    "S0",
		"0999": "S0",
		"10":   "S1",
		"1000": "S2", // string order: "1000" >= "100"
		"100":  "S2",
		"zzz":  "S2",
	}
	for key, want := range cases {
		if got := ks.ShardFor(key); got != want {
			t.Errorf("ShardFor(%q) = %s, want %s", key, got, want)
		}
	}
}

func TestNewKeyspaceValidation(t *testing.T) {
	if _, err := NewKeyspace(nil, nil); err == nil {
		t.Fatal("empty keyspace accepted")
	}
	if _, err := NewKeyspace([]ID{"a"}, []string{"x"}); err == nil {
		t.Fatal("non-empty first start accepted")
	}
	if _, err := NewKeyspace([]ID{"a", "b"}, []string{"", ""}); err == nil {
		t.Fatal("non-increasing starts accepted")
	}
	if _, err := NewKeyspace([]ID{"a", "b"}, []string{""}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestUniformKeyspaceCoversAllKeys(t *testing.T) {
	ks := UniformKeyspace("sh", 16)
	if ks.Len() != 16 {
		t.Fatalf("Len = %d", ks.Len())
	}
	seen := make(map[ID]bool)
	for i := 0; i < 10000; i++ {
		s := ks.ShardFor(string(rune('a'+i%26)) + string(rune('0'+i%10)) + string(rune(i)))
		seen[s] = true
	}
	if len(seen) < 12 {
		t.Fatalf("hash keyspace used only %d/16 shards", len(seen))
	}
}

func TestUniformKeyspacePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UniformKeyspace("x", 0)
}

func TestKeyspaceDeterministicProperty(t *testing.T) {
	ks := UniformKeyspace("sh", 64)
	if err := quick.Check(func(key string) bool {
		return ks.ShardFor(key) == ks.ShardFor(key)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeKeyspaceShardForMatchesRangeOf(t *testing.T) {
	ks, _ := NewKeyspace([]ID{"a", "b", "c"}, []string{"", "m", "t"})
	if err := quick.Check(func(key string) bool {
		s := ks.ShardFor(key)
		r, ok := ks.RangeOf(s)
		return ok && r.Contains(key)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeOf(t *testing.T) {
	ks, _ := NewKeyspace([]ID{"a", "b"}, []string{"", "m"})
	ra, ok := ks.RangeOf("a")
	if !ok || ra.Start != "" || ra.End != "m" {
		t.Fatalf("RangeOf(a) = %+v ok=%v", ra, ok)
	}
	rb, _ := ks.RangeOf("b")
	if rb.End != "" {
		t.Fatalf("RangeOf(b).End = %q, want unbounded", rb.End)
	}
	if _, ok := ks.RangeOf("zzz"); ok {
		t.Fatal("RangeOf unknown shard")
	}
	if _, ok := UniformKeyspace("x", 4).RangeOf("x0000"); ok {
		t.Fatal("hash keyspace has no ranges")
	}
}

func TestShardsForPrefix(t *testing.T) {
	ks, _ := NewKeyspace([]ID{"a", "b", "c"}, []string{"", "m", "t"})
	got := ks.ShardsForPrefix("mo")
	if len(got) != 1 || got[0] != "b" {
		t.Fatalf("ShardsForPrefix(mo) = %v", got)
	}
	got = ks.ShardsForPrefix("l")
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("ShardsForPrefix(l) = %v", got)
	}
	// Prefix spanning boundary: keys "m".."zzz" overlap b and c... use
	// empty prefix to mean everything.
	got = ks.ShardsForPrefix("")
	if len(got) != 3 {
		t.Fatalf("ShardsForPrefix('') = %v", got)
	}
	// Hash keyspaces lose locality: all shards returned.
	h := UniformKeyspace("x", 4)
	if len(h.ShardsForPrefix("abc")) != 4 {
		t.Fatal("hash keyspace should return all shards for a prefix")
	}
}

func TestShardsForPrefixConsistentWithShardFor(t *testing.T) {
	ks, _ := NewKeyspace([]ID{"a", "b", "c", "d"}, []string{"", "g", "p", "w"})
	if err := quick.Check(func(key string) bool {
		if key == "" {
			return true
		}
		owner := ks.ShardFor(key)
		for _, s := range ks.ShardsForPrefix(key) {
			if s == owner {
				return true
			}
		}
		return false
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixUpperBound(t *testing.T) {
	if got := prefixUpperBound("abc"); got != "abd" {
		t.Fatalf("prefixUpperBound(abc) = %q", got)
	}
	if got := prefixUpperBound("a\xff"); got != "b" {
		t.Fatalf("prefixUpperBound(a\\xff) = %q", got)
	}
	if got := prefixUpperBound("\xff\xff"); got != "" {
		t.Fatalf("prefixUpperBound(all-ff) = %q", got)
	}
}

func TestFormatAssignments(t *testing.T) {
	s := FormatAssignments([]Assignment{
		{Server: "srv1", Role: RolePrimary},
		{Server: "srv2", Role: RoleSecondary},
	})
	if !strings.Contains(s, "srv1(primary)") || !strings.Contains(s, "srv2(secondary)") {
		t.Fatalf("FormatAssignments = %q", s)
	}
}

func TestMapCloneIntoReusesStorage(t *testing.T) {
	m := NewMap("app")
	m.Version, m.Gen = 7, 3
	m.Entries["s1"] = []Assignment{{Server: "a", Role: RolePrimary}}
	m.Entries["s2"] = []Assignment{{Server: "b", Role: RolePrimary}, {Server: "c", Role: RoleSecondary}}

	dst := NewMap("other")
	dst.Entries["stale"] = []Assignment{{Server: "z"}}
	s2buf := make([]Assignment, 1, 4)
	s2buf[0] = Assignment{Server: "old"}
	dst.Entries["s2"] = s2buf

	got := m.CloneInto(dst)
	if got != dst {
		t.Fatal("CloneInto did not return dst")
	}
	if dst.App != "app" || dst.Version != 7 || dst.Gen != 3 {
		t.Fatalf("header not copied: %+v", dst)
	}
	if _, ok := dst.Entries["stale"]; ok {
		t.Fatal("stale key survived CloneInto")
	}
	if len(dst.Entries) != 2 || len(dst.Entries["s2"]) != 2 {
		t.Fatalf("entries not copied: %+v", dst.Entries)
	}
	// The pre-existing slice storage must be reused, not reallocated.
	if &dst.Entries["s2"][0] != &s2buf[:1][0] {
		t.Fatal("CloneInto reallocated a reusable assignment slice")
	}
	// And the copy must be deep: mutating dst must not touch m.
	dst.Entries["s1"][0].Server = "mut"
	if m.Entries["s1"][0].Server != "a" {
		t.Fatal("CloneInto shares state with the source")
	}
	// nil dst falls back to a fresh deep clone.
	c := m.CloneInto(nil)
	if c == nil || len(c.Entries) != 2 || &c.Entries["s2"][0] == &m.Entries["s2"][0] {
		t.Fatal("CloneInto(nil) did not deep-clone")
	}
}

func TestMapCloneIntoSteadyStateAllocationFree(t *testing.T) {
	m := NewMap("app")
	for i := 0; i < 500; i++ {
		id := ID("shard-" + strings.Repeat("x", i%7) + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)))
		m.Entries[id] = []Assignment{{Server: "a", Role: RolePrimary}}
	}
	dst := m.Clone()
	allocs := testing.AllocsPerRun(50, func() {
		m.Version++
		m.CloneInto(dst)
	})
	if allocs != 0 {
		t.Fatalf("steady-state CloneInto allocated %.2f allocs/run, want 0", allocs)
	}
}
