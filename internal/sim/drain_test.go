package sim

import (
	"testing"
	"time"
)

// These tests pin down the drain/stop edge cases of the event loop: stopping
// timers and tickers must never leave stale callbacks that fire later, and
// RunUntil must treat the deadline itself as inclusive even for events that
// are scheduled *at* the deadline by another deadline event.

func TestTimerStopAfterFireIsInert(t *testing.T) {
	l := NewLoop(1)
	n := 0
	tm := l.After(time.Second, func() { n++ })
	l.Run()
	if n != 1 {
		t.Fatalf("fired %d times, want 1", n)
	}
	// Stop after firing must report not-pending and must not disturb other
	// scheduled work.
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
	l.After(time.Second, func() { n++ })
	if tm.Stop() {
		t.Fatal("repeated Stop returned true")
	}
	l.Run()
	if n != 2 {
		t.Fatalf("later event did not run (n=%d)", n)
	}
}

func TestCancelledEventsDrainFromQueue(t *testing.T) {
	l := NewLoop(1)
	timers := make([]*Timer, 0, 10)
	for i := 0; i < 10; i++ {
		timers = append(timers, l.After(time.Duration(i+1)*time.Second, func() {
			t.Error("cancelled timer fired")
		}))
	}
	for _, tm := range timers {
		tm.Stop()
	}
	// Cancelled entries still sit in the heap awaiting lazy removal, but
	// Pending counts only callbacks that will actually fire.
	if l.Pending() != 0 {
		t.Fatalf("Pending = %d after cancelling all, want 0", l.Pending())
	}
	l.RunUntil(time.Minute)
	if l.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", l.Pending())
	}
	if l.Now() != time.Minute {
		t.Fatalf("Now = %v, want 1m", l.Now())
	}
}

func TestPendingExcludesCancelledButUndrainedEvents(t *testing.T) {
	l := NewLoop(1)
	fired := 0
	keepA := l.After(time.Second, func() { fired++ })
	victim := l.After(2*time.Second, func() { t.Error("cancelled timer fired") })
	keepB := l.After(3*time.Second, func() { fired++ })
	if l.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", l.Pending())
	}
	// Cancel the middle event: it stays in the heap (lazy removal) but must
	// leave the pending count immediately.
	if !victim.Stop() {
		t.Fatal("Stop reported not-pending for a live timer")
	}
	if l.Pending() != 2 {
		t.Fatalf("Pending = %d after one cancel, want 2 (raw heap still holds 3)", l.Pending())
	}
	if got := l.queueLen(); got != 3 {
		t.Fatalf("queue length = %d, want 3 (cancelled entry awaits lazy drain)", got)
	}
	// Double-stop and stop-after-fire must not decrement again.
	victim.Stop()
	if l.Pending() != 2 {
		t.Fatalf("Pending = %d after double stop, want 2", l.Pending())
	}
	l.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if l.Pending() != 0 {
		t.Fatalf("Pending = %d after drain, want 0", l.Pending())
	}
	keepA.Stop()
	keepB.Stop()
	if l.Pending() != 0 {
		t.Fatalf("Pending = %d after stopping fired timers, want 0", l.Pending())
	}
	if got := l.Dispatched(); got != 2 {
		t.Fatalf("Dispatched = %d, want 2 (cancelled events never count)", got)
	}
}

func TestTickerStopInsideCallbackLeavesNoResidue(t *testing.T) {
	l := NewLoop(1)
	n := 0
	var tk *Ticker
	tk = l.Every(time.Second, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	l.RunUntil(time.Minute)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
	if l.Pending() != 0 {
		t.Fatalf("Pending = %d after ticker stop, want 0 (stale reschedule left behind)", l.Pending())
	}
	// A stopped ticker must stay stopped across further loop progress.
	l.RunFor(time.Minute)
	if n != 3 {
		t.Fatalf("stopped ticker ticked again (n=%d)", n)
	}
}

func TestTickerStopThenStopAgain(t *testing.T) {
	l := NewLoop(1)
	tk := l.Every(time.Second, func() { t.Error("tick after immediate stop") })
	tk.Stop()
	tk.Stop() // double-stop must be harmless
	l.RunUntil(5 * time.Second)
	if l.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", l.Pending())
	}
}

func TestRunUntilRunsAllEventsExactlyAtDeadline(t *testing.T) {
	l := NewLoop(1)
	const deadline = 10 * time.Second
	ran := 0
	for i := 0; i < 5; i++ {
		l.At(deadline, func() { ran++ })
	}
	l.RunUntil(deadline)
	if ran != 5 {
		t.Fatalf("ran %d deadline events, want 5", ran)
	}
	if l.Now() != deadline {
		t.Fatalf("Now = %v, want %v", l.Now(), deadline)
	}
}

func TestRunUntilRunsReentrantlyScheduledDeadlineEvents(t *testing.T) {
	l := NewLoop(1)
	const deadline = 10 * time.Second
	var order []string
	l.At(deadline, func() {
		order = append(order, "first")
		// Scheduled from inside a deadline event, at the deadline: still
		// <= deadline, so RunUntil must run it before returning.
		l.At(deadline, func() { order = append(order, "nested") })
	})
	l.At(deadline+time.Nanosecond, func() { order = append(order, "past") })
	l.RunUntil(deadline)
	if len(order) != 2 || order[0] != "first" || order[1] != "nested" {
		t.Fatalf("order = %v, want [first nested]", order)
	}
	if l.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (the past-deadline event)", l.Pending())
	}
	l.RunFor(time.Second)
	if len(order) != 3 || order[2] != "past" {
		t.Fatalf("order = %v, want past-deadline event to run later", order)
	}
}

func TestRunUntilSkipsCancelledHeadEvent(t *testing.T) {
	l := NewLoop(1)
	tm := l.After(time.Second, func() { t.Error("cancelled head fired") })
	ran := false
	l.After(2*time.Second, func() { ran = true })
	tm.Stop()
	l.RunUntil(2 * time.Second)
	if !ran {
		t.Fatal("event behind cancelled head did not run")
	}
	if l.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", l.Pending())
	}
}
