package sim

import (
	"sync"
	"time"
)

// Label identifies one (component, kind) attribution bucket for the
// kernel profiler (internal/simprof). Labels are interned process-wide:
// components intern theirs once (package var or constructor) and pass the
// small integer at every schedule site, so the hot path never touches the
// string table. Label 0 is reserved for unlabeled events.
//
// Label *identity* is assignment-order dependent (package init and test
// order), so it must never leak into output; reports key rows by the
// (component, kind) names, which are stable.
type Label int32

// labelKey is the interning key.
type labelKey struct {
	component, kind string
}

// labelTable is the process-global intern table. A mutex (not the loop)
// guards it because independent loops in parallel tests intern labels
// concurrently; interning is off the dispatch path.
var labelTable = struct {
	sync.RWMutex
	byName map[labelKey]Label
	names  []labelKey // index = Label; names[0] is the unlabeled sentinel
}{
	byName: map[labelKey]Label{},
	names:  []labelKey{{}},
}

// LabelFor interns (component, kind) and returns its label. Calling it
// repeatedly with the same pair returns the same label; hot components
// should still cache the result rather than re-interning per event.
func LabelFor(component, kind string) Label {
	k := labelKey{component, kind}
	labelTable.RLock()
	lb, ok := labelTable.byName[k]
	labelTable.RUnlock()
	if ok {
		return lb
	}
	labelTable.Lock()
	defer labelTable.Unlock()
	if lb, ok := labelTable.byName[k]; ok {
		return lb
	}
	lb = Label(len(labelTable.names))
	labelTable.byName[k] = lb
	labelTable.names = append(labelTable.names, k)
	return lb
}

// LabelName returns the (component, kind) pair a label was interned with.
// Label 0 and out-of-range labels return empty strings.
func LabelName(lb Label) (component, kind string) {
	labelTable.RLock()
	defer labelTable.RUnlock()
	if lb <= 0 || int(lb) >= len(labelTable.names) {
		return "", ""
	}
	k := labelTable.names[lb]
	return k.component, k.kind
}

// NumLabels returns the number of interned labels plus one (the unlabeled
// sentinel): the size profilers need for a dense per-label stats table.
func NumLabels() int {
	labelTable.RLock()
	defer labelTable.RUnlock()
	return len(labelTable.names)
}

// LabeledFunc pairs a callback with its attribution label so schedule
// sites read naturally: l.Schedule(d, sim.Labeled("rpcnet", "deliver", fn)).
type LabeledFunc struct {
	Label Label
	Fn    func()
}

// Labeled tags fn with an attribution label for the kernel profiler. It
// interns (component, kind) on every call; per-message hot paths should
// intern once with LabelFor and use AfterL/AtL directly.
func Labeled(component, kind string, fn func()) LabeledFunc {
	return LabeledFunc{Label: LabelFor(component, kind), Fn: fn}
}

// Profiler observes the loop's event lifecycle. internal/simprof provides
// the real implementation; the loop only knows this interface so sim stays
// dependency-free. All methods are invoked on the loop goroutine.
type Profiler interface {
	// OnSchedule is called when an event is pushed onto the heap.
	OnSchedule(lb Label)
	// OnCancel is called when a still-pending timer is stopped.
	OnCancel(lb Label)
	// Dispatch runs fn, attributing its cost to lb. now is the simulated
	// time of the event; heapLen and live are the post-pop event-heap
	// length and live (non-cancelled) pending-event count, for queue-depth
	// gauges.
	Dispatch(lb Label, now time.Duration, heapLen, live int, fn func())
}
