package sim

import (
	"testing"
	"time"
)

func TestLabelInterning(t *testing.T) {
	a := LabelFor("compA", "kindX")
	b := LabelFor("compA", "kindX")
	c := LabelFor("compA", "kindY")
	if a != b {
		t.Fatalf("same pair interned twice: %d vs %d", a, b)
	}
	if a == c || a == 0 || c == 0 {
		t.Fatalf("distinct pairs collided or hit the reserved label: %d %d", a, c)
	}
	comp, kind := LabelName(a)
	if comp != "compA" || kind != "kindX" {
		t.Fatalf("LabelName(%d) = (%q, %q)", a, comp, kind)
	}
	if comp, kind := LabelName(0); comp != "" || kind != "" {
		t.Fatalf("LabelName(0) = (%q, %q), want empty", comp, kind)
	}
	if n := NumLabels(); n <= int(a) || n <= int(c) {
		t.Fatalf("NumLabels() = %d does not cover interned labels", n)
	}
}

// recordingProfiler captures the hook sequence the loop feeds a profiler.
type recordingProfiler struct {
	scheduled []Label
	cancelled []Label
	dispatch  []Label
	heapLens  []int
	lives     []int
	simTimes  []time.Duration
}

func (r *recordingProfiler) OnSchedule(lb Label) { r.scheduled = append(r.scheduled, lb) }
func (r *recordingProfiler) OnCancel(lb Label)   { r.cancelled = append(r.cancelled, lb) }
func (r *recordingProfiler) Dispatch(lb Label, now time.Duration, heapLen, live int, fn func()) {
	r.dispatch = append(r.dispatch, lb)
	r.heapLens = append(r.heapLens, heapLen)
	r.lives = append(r.lives, live)
	r.simTimes = append(r.simTimes, now)
	fn()
}

func TestProfilerHooksSeeScheduleCancelDispatch(t *testing.T) {
	l := NewLoop(1)
	rec := &recordingProfiler{}
	l.SetProfiler(rec)
	lbA := LabelFor("hooktest", "a")
	lbB := LabelFor("hooktest", "b")

	ran := 0
	l.AfterL(time.Second, lbA, func() { ran++ })
	tm := l.AfterL(2*time.Second, lbB, func() { t.Error("cancelled event ran") })
	l.Schedule(3*time.Second, Labeled("hooktest", "a", func() { ran++ }))
	l.After(4*time.Second, func() { ran++ }) // unlabeled
	tm.Stop()
	l.Run()

	wantSched := []Label{lbA, lbB, lbA, 0}
	if len(rec.scheduled) != 4 {
		t.Fatalf("scheduled hooks = %v, want %v", rec.scheduled, wantSched)
	}
	for i, lb := range wantSched {
		if rec.scheduled[i] != lb {
			t.Fatalf("scheduled hooks = %v, want %v", rec.scheduled, wantSched)
		}
	}
	if len(rec.cancelled) != 1 || rec.cancelled[0] != lbB {
		t.Fatalf("cancel hooks = %v, want [%d]", rec.cancelled, lbB)
	}
	wantDispatch := []Label{lbA, lbA, 0}
	if len(rec.dispatch) != 3 {
		t.Fatalf("dispatch hooks = %v, want %v", rec.dispatch, wantDispatch)
	}
	for i, lb := range wantDispatch {
		if rec.dispatch[i] != lb {
			t.Fatalf("dispatch hooks = %v, want %v", rec.dispatch, wantDispatch)
		}
	}
	if ran != 3 {
		t.Fatalf("callbacks ran = %d, want 3", ran)
	}
	// Sim times are the event timestamps; heap/live counts shrink to zero.
	wantTimes := []time.Duration{time.Second, 3 * time.Second, 4 * time.Second}
	for i, d := range wantTimes {
		if rec.simTimes[i] != d {
			t.Fatalf("dispatch sim times = %v, want %v", rec.simTimes, wantTimes)
		}
	}
	if last := rec.lives[len(rec.lives)-1]; last != 0 {
		t.Fatalf("live count at final dispatch = %d, want 0", last)
	}
}

func TestEveryLAttributesTicks(t *testing.T) {
	l := NewLoop(1)
	rec := &recordingProfiler{}
	l.SetProfiler(rec)
	lb := LabelFor("hooktest", "tick")
	n := 0
	var tk *Ticker
	tk = l.EveryL(time.Second, lb, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	l.RunUntil(10 * time.Second)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
	for _, got := range rec.dispatch {
		if got != lb {
			t.Fatalf("tick dispatched under label %d, want %d", got, lb)
		}
	}
	if len(rec.dispatch) != 3 {
		t.Fatalf("dispatches = %d, want 3", len(rec.dispatch))
	}
	// Stopping the ticker from inside its own callback suppresses the
	// reschedule entirely, so no cancellation is recorded.
	if len(rec.cancelled) != 0 {
		t.Fatalf("cancel hooks = %v, want none", rec.cancelled)
	}
}

// TestDisabledProfilerAddsNoAllocations pins the satellite requirement that
// the disabled-profiler path costs nothing: scheduling and dispatching a
// labeled event allocates exactly as much as an unlabeled one.
func TestDisabledProfilerAddsNoAllocations(t *testing.T) {
	lb := LabelFor("alloctest", "tick")
	measure := func(schedule func(l *Loop)) float64 {
		l := NewLoop(1)
		return testing.AllocsPerRun(200, func() {
			schedule(l)
			l.Step()
		})
	}
	plain := measure(func(l *Loop) { l.After(time.Microsecond, func() {}) })
	labeled := measure(func(l *Loop) { l.AfterL(time.Microsecond, lb, func() {}) })
	if labeled > plain {
		t.Fatalf("labeled schedule+dispatch allocates %.1f/op, unlabeled %.1f/op", labeled, plain)
	}
}
