// Package sim provides a deterministic discrete-event simulation kernel.
//
// All Shard Manager components take time from a Clock rather than the wall
// clock, so the same control-plane code runs both in unit tests (driven
// directly) and in whole-cluster experiments (driven by a Loop). A Loop is a
// single-threaded event queue: callbacks scheduled with At or After run in
// timestamp order, ties broken by scheduling order, which makes every
// experiment reproducible from its seed.
//
// Pending events live in a hierarchical timing wheel (see wheel.go) rather
// than one global binary heap, and event objects are recycled through a
// per-loop freelist, so the schedule/dispatch hot path is allocation-free
// and O(1) for the short delays that dominate cluster simulations.
package sim

import (
	"fmt"
	"math"
	"time"

	"shardmanager/internal/metrics"
	"shardmanager/internal/trace"
)

// Clock supplies the current simulated time.
type Clock interface {
	// Now returns the current simulated time as an offset from the
	// simulation epoch.
	Now() time.Duration
}

// Scheduler schedules callbacks to run at future simulated times.
type Scheduler interface {
	Clock
	// After schedules fn to run d after the current time. It returns a
	// Timer that can cancel the callback before it fires.
	After(d time.Duration, fn func()) *Timer
	// At schedules fn at an absolute simulated time. Times in the past
	// run immediately after the current event, at the current time.
	At(t time.Duration, fn func()) *Timer
}

// Timer is a handle to a scheduled callback. Event objects are recycled, so
// the handle pins the generation it was issued for: once the event fires or
// is compacted away and the object is reused, the stale handle goes inert.
type Timer struct {
	ev   *event
	gen  uint32
	loop *Loop
}

// Stop cancels the timer. It reports whether the callback was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.gen != t.gen || t.ev.cancelled() {
		return false
	}
	ev := t.ev
	lb := ev.label
	ev.fn, ev.fnA, ev.arg = nil, nil, nil
	l := t.loop
	// The event stays filed in the wheel until drained, but it no longer
	// counts as pending work.
	l.live--
	l.w.cancelled++
	if p := l.prof; p != nil {
		p.OnCancel(lb)
	}
	l.maybeCompact()
	return true
}

// event is a pooled scheduled callback. Exactly one of fn / fnA is set while
// live; both nil means cancelled. fnA carries its argument in arg, which
// avoids a closure allocation per schedule on arg-shaped hot paths (RPC
// envelopes, map deliveries). next links freelist entries and wheel slot
// lists; gen increments on every recycle to invalidate stale Timer handles.
type event struct {
	at    time.Duration
	seq   uint64
	fn    func()
	fnA   func(any)
	arg   any
	label Label
	gen   uint32
	next  *event
}

func (ev *event) cancelled() bool { return ev.fn == nil && ev.fnA == nil }

// Loop is a single-threaded discrete-event loop. The zero value is not
// usable; create one with NewLoop.
type Loop struct {
	now        time.Duration
	seq        uint64
	w          wheel
	live       int    // scheduled events not yet fired or cancelled
	dispatched uint64 // total events fired over the loop's lifetime
	rng        *RNG
	tracer     *trace.Tracer
	metrics    *metrics.Registry
	prof       Profiler

	free *event // recycled event objects

	// tramp adapts a pending (fnA, arg) pair to the profiler's func()
	// dispatch hook without allocating a closure per event: the pair is
	// staged on the loop and consumed by the one prebuilt trampoline.
	tramp func()
	pfnA  func(any)
	parg  any
}

// NewLoop returns an event loop starting at time zero with a deterministic
// RNG seeded by seed.
func NewLoop(seed uint64) *Loop {
	l := &Loop{rng: NewRNG(seed)}
	l.tramp = func() {
		fnA, arg := l.pfnA, l.parg
		l.pfnA, l.parg = nil, nil
		fnA(arg)
	}
	return l
}

// Now returns the current simulated time.
func (l *Loop) Now() time.Duration { return l.now }

// RNG returns the loop's deterministic random source.
func (l *Loop) RNG() *RNG { return l.rng }

// SetTracer attaches a tracer to the loop and binds it to the loop's clock.
// The loop is the natural home for the tracer: every control-plane
// component holds the loop, so all of them reach the same tracer through
// Tracer() without extra plumbing. Pass nil to disable tracing.
func (l *Loop) SetTracer(tr *trace.Tracer) {
	l.tracer = tr
	if tr != nil {
		tr.SetClock(l)
	}
}

// Tracer returns the loop's tracer, or nil when tracing is disabled.
// Callers must treat a nil result as a valid disabled tracer.
func (l *Loop) Tracer() *trace.Tracer { return l.tracer }

// SetMetrics attaches a labeled-metrics registry to the loop, following the
// same pattern as SetTracer: components reach the shared registry through
// Metrics() without extra plumbing. Pass nil to disable metrics.
func (l *Loop) SetMetrics(r *metrics.Registry) { l.metrics = r }

// Metrics returns the loop's metrics registry, or nil when metrics are
// disabled. A nil *metrics.Registry is itself a valid no-op sink, so callers
// may use the result without checking.
func (l *Loop) Metrics() *metrics.Registry { return l.metrics }

// SetProfiler attaches a kernel profiler to the loop (internal/simprof
// provides one). Pass nil to disable; disabled profiling costs one pointer
// test per schedule and dispatch. The profiler must be attached before the
// events it should attribute are scheduled, and must not be shared between
// concurrently running loops.
func (l *Loop) SetProfiler(p Profiler) { l.prof = p }

// Profiler returns the loop's profiler, or nil when profiling is disabled.
func (l *Loop) Profiler() Profiler { return l.prof }

// Dispatched returns the total number of events the loop has fired. It is
// maintained unconditionally (the counter is one increment per event), so
// throughput benchmarks need no profiler.
func (l *Loop) Dispatched() uint64 { return l.dispatched }

// allocEvent takes an event object off the freelist, growing it by a batch
// when empty. Objects are never returned to the runtime: peak live events
// bound the arena, which keeps long sims allocation-free at steady state.
func (l *Loop) allocEvent() *event {
	ev := l.free
	if ev == nil {
		chunk := make([]event, 64)
		for i := len(chunk) - 1; i > 0; i-- {
			chunk[i].next = l.free
			l.free = &chunk[i]
		}
		ev = &chunk[0]
		return ev
	}
	l.free = ev.next
	ev.next = nil
	return ev
}

// recycle returns a drained event to the freelist, bumping its generation so
// outstanding Timer handles go inert.
func (l *Loop) recycle(ev *event) {
	ev.gen++
	ev.fn, ev.fnA, ev.arg = nil, nil, nil
	ev.label = 0
	ev.next = l.free
	l.free = ev
}

// schedule files a new event; the common core of every At/After variant.
func (l *Loop) schedule(t time.Duration, lb Label, fn func(), fnA func(any), arg any) *event {
	if t < l.now {
		t = l.now
	}
	ev := l.allocEvent()
	ev.at, ev.seq, ev.fn, ev.fnA, ev.arg, ev.label = t, l.seq, fn, fnA, arg, lb
	l.seq++
	l.live++
	l.w.stored++
	l.w.file(ev)
	if p := l.prof; p != nil {
		p.OnSchedule(lb)
	}
	return ev
}

// After schedules fn to run d after the current time.
func (l *Loop) After(d time.Duration, fn func()) *Timer {
	return l.AfterL(d, 0, fn)
}

// AfterL schedules fn to run d after the current time, attributing its
// dispatch cost to lb when a profiler is attached.
func (l *Loop) AfterL(d time.Duration, lb Label, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return l.AtL(l.now+d, lb, fn)
}

// At schedules fn at absolute time t (clamped to the present).
func (l *Loop) At(t time.Duration, fn func()) *Timer {
	return l.AtL(t, 0, fn)
}

// AtL schedules fn at absolute time t (clamped to the present) under an
// attribution label. The body stays small enough to inline so that callers
// which discard the returned handle keep it on the stack.
func (l *Loop) AtL(t time.Duration, lb Label, fn func()) *Timer {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	ev := l.schedule(t, lb, fn, nil, nil)
	return &Timer{ev: ev, gen: ev.gen, loop: l}
}

// AfterArgL schedules fn(arg) to run d after the current time. Passing the
// argument through the event instead of capturing it keeps arg-shaped hot
// paths (one pointer per RPC message or map delivery) closure-free; arg
// should be a pointer type so boxing it into the event is allocation-free.
func (l *Loop) AfterArgL(d time.Duration, lb Label, fn func(any), arg any) *Timer {
	if d < 0 {
		d = 0
	}
	t := l.now + d
	if fn == nil {
		panic("sim: AfterArgL with nil callback")
	}
	ev := l.schedule(t, lb, nil, fn, arg)
	return &Timer{ev: ev, gen: ev.gen, loop: l}
}

// PostArgL schedules fn(arg) to run d after the current time with no
// cancellation handle at all. It is the allocation-free form for
// fire-and-forget hot paths (message deliveries, replies) that never stop
// their timers: no Timer is constructed, no closure is captured, and the
// pooled event is the only storage the callback occupies.
func (l *Loop) PostArgL(d time.Duration, lb Label, fn func(any), arg any) {
	if fn == nil {
		panic("sim: PostArgL with nil callback")
	}
	if d < 0 {
		d = 0
	}
	l.schedule(l.now+d, lb, nil, fn, arg)
}

// Schedule schedules a labeled callback built with Labeled to run d after
// the current time.
func (l *Loop) Schedule(d time.Duration, lf LabeledFunc) *Timer {
	return l.AfterL(d, lf.Label, lf.Fn)
}

// Every schedules fn to run every interval, starting one interval from now,
// until the returned Ticker is stopped.
func (l *Loop) Every(interval time.Duration, fn func()) *Ticker {
	return l.EveryL(interval, 0, fn)
}

// EveryL is Every with an attribution label applied to every tick.
func (l *Loop) EveryL(interval time.Duration, lb Label, fn func()) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive interval %v", interval))
	}
	tk := &Ticker{loop: l, interval: interval, label: lb, fn: fn}
	tk.schedule()
	return tk
}

// Ticker repeatedly schedules a callback at a fixed interval. The ticker
// itself rides the event's arg slot, so steady-state ticking allocates
// nothing: one pooled event per tick, no closures.
type Ticker struct {
	loop     *Loop
	interval time.Duration
	label    Label
	fn       func()
	ev       *event
	gen      uint32
	stopped  bool
}

func tickerFire(a any) {
	t := a.(*Ticker)
	if t.stopped {
		return
	}
	t.fn()
	if !t.stopped {
		t.schedule()
	}
}

func (t *Ticker) schedule() {
	ev := t.loop.schedule(t.loop.now+t.interval, t.label, nil, tickerFire, t)
	t.ev, t.gen = ev, ev.gen
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.ev != nil {
		tm := Timer{ev: t.ev, gen: t.gen, loop: t.loop}
		tm.Stop()
	}
}

// maybeCompact sweeps cancelled-but-undrained events out of the wheel once
// they are both numerous (past a floor) and the majority of stored entries.
// Cancel-heavy sims (routing retries, fencing timers) otherwise carry dead
// weight for the full flight time of their longest cancelled timer.
func (l *Loop) maybeCompact() {
	if l.w.cancelled >= compactFloor && l.w.cancelled*2 > l.w.stored {
		l.w.compact(l)
	}
}

// queueLen reports events held in the pending structure, including
// cancelled-but-undrained ones — the wheel's equivalent of the old global
// heap length, used by drain tests and reported to tracer/profiler gauges.
func (l *Loop) queueLen() int { return l.w.stored }

// Step runs the next pending event. It reports whether an event ran.
func (l *Loop) Step() bool {
	return l.stepBounded(0, false)
}

// stepBounded runs the next pending event whose timestamp is <= deadline
// (any timestamp when limited is false). Cancelled events reaching the front
// of the near heap are drained regardless of deadline, matching the old
// heap's lazy-removal behavior.
func (l *Loop) stepBounded(deadline time.Duration, limited bool) bool {
	w := &l.w
	for {
		for len(w.near) > 0 && w.near[0].cancelled() {
			ev := heapPop(&w.near)
			w.stored--
			w.cancelled--
			l.recycle(ev)
		}
		if len(w.near) == 0 {
			if w.stored == 0 {
				return false
			}
			limitTick := uint64(math.MaxUint64)
			if limited {
				limitTick = tickOf(int64(deadline))
				if limitTick <= w.curTick {
					return false
				}
			}
			w.advance(limitTick)
			if len(w.near) == 0 {
				return false
			}
			continue
		}
		ev := w.near[0]
		if limited && ev.at > deadline {
			return false
		}
		heapPop(&w.near)
		w.stored--
		lag := ev.at - l.now
		l.now = ev.at
		lb, fn, fnA, arg := ev.label, ev.fn, ev.fnA, ev.arg
		l.recycle(ev)
		l.live--
		l.dispatched++
		if tr := l.tracer; tr != nil {
			sp := tr.StartSpan("sim.loop", "dispatch", 0)
			l.invoke(lb, fn, fnA, arg)
			tr.EndSpan(sp)
			tr.Counter("sim.loop", "queue_depth", float64(w.stored))
			tr.Counter("sim.loop", "loop_lag_ms", float64(lag)/float64(time.Millisecond))
		} else {
			l.invoke(lb, fn, fnA, arg)
		}
		return true
	}
}

// invoke runs one event callback, routing it through the profiler when one
// is attached. The profiler wraps a func() so the measured interval covers
// only the callback; arg-carrying events go through the loop's trampoline
// rather than a fresh closure.
func (l *Loop) invoke(lb Label, fn func(), fnA func(any), arg any) {
	if p := l.prof; p != nil {
		if fn == nil {
			l.pfnA, l.parg = fnA, arg
			fn = l.tramp
		}
		p.Dispatch(lb, l.now, l.w.stored, l.live, fn)
		return
	}
	if fn != nil {
		fn()
		return
	}
	fnA(arg)
}

// Run executes events until the queue drains.
func (l *Loop) Run() {
	for l.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline.
func (l *Loop) RunUntil(deadline time.Duration) {
	for l.stepBounded(deadline, true) {
	}
	if l.now < deadline {
		l.now = deadline
	}
}

// RunFor executes events for d of simulated time from the current instant.
func (l *Loop) RunFor(d time.Duration) { l.RunUntil(l.now + d) }

// Pending returns the number of live scheduled events: callbacks that will
// still fire. Cancelled timers stop counting immediately, even while their
// wheel entries await lazy removal.
func (l *Loop) Pending() int { return l.live }

// RNG is a splitmix64 pseudo-random generator. It is deliberately simple and
// fully deterministic across platforms, unlike math/rand's global source.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("sim: Intn(%d)", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// NormFloat64 returns a normally distributed value (mean 0, stddev 1) using
// the Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u1 := r.Float64()
		if u1 == 0 {
			continue
		}
		u2 := r.Float64()
		return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	}
}

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		return -math.Log(u)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements via swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Fork derives an independent generator; useful to give each component its
// own stream so that adding randomness in one place does not perturb others.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// ManualClock is a Clock for unit tests that component code can advance
// directly without an event loop.
type ManualClock struct {
	now time.Duration
}

// NewManualClock returns a ManualClock set to start.
func NewManualClock(start time.Duration) *ManualClock {
	return &ManualClock{now: start}
}

// Now returns the current manual time.
func (c *ManualClock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. It panics if d is negative.
func (c *ManualClock) Advance(d time.Duration) {
	if d < 0 {
		panic("sim: ManualClock.Advance negative")
	}
	c.now += d
}

// Set jumps the clock to t. It panics if t is before the current time.
func (c *ManualClock) Set(t time.Duration) {
	if t < c.now {
		panic("sim: ManualClock.Set into the past")
	}
	c.now = t
}
