package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestLoopOrdersEventsByTime(t *testing.T) {
	l := NewLoop(1)
	var got []int
	l.After(3*time.Second, func() { got = append(got, 3) })
	l.After(1*time.Second, func() { got = append(got, 1) })
	l.After(2*time.Second, func() { got = append(got, 2) })
	l.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if l.Now() != 3*time.Second {
		t.Fatalf("Now = %v, want 3s", l.Now())
	}
}

func TestLoopTieBreakIsFIFO(t *testing.T) {
	l := NewLoop(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		l.At(time.Second, func() { got = append(got, i) })
	}
	l.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	l := NewLoop(1)
	fired := false
	tm := l.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	l.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	l := NewLoop(1)
	tm := l.After(time.Second, func() {})
	l.Run()
	if tm.Stop() {
		t.Fatal("Stop after firing returned true")
	}
}

func TestAtInThePastRunsNow(t *testing.T) {
	l := NewLoop(1)
	l.After(5*time.Second, func() {
		l.At(time.Second, func() {
			if l.Now() != 5*time.Second {
				t.Errorf("past event ran at %v, want 5s", l.Now())
			}
		})
	})
	l.Run()
}

func TestRunUntilAdvancesClock(t *testing.T) {
	l := NewLoop(1)
	ran := false
	l.After(10*time.Second, func() { ran = true })
	l.RunUntil(5 * time.Second)
	if ran {
		t.Fatal("event beyond deadline ran")
	}
	if l.Now() != 5*time.Second {
		t.Fatalf("Now = %v, want 5s", l.Now())
	}
	l.RunFor(5 * time.Second)
	if !ran {
		t.Fatal("event at deadline did not run")
	}
}

func TestRunUntilRunsEventAtDeadline(t *testing.T) {
	l := NewLoop(1)
	ran := false
	l.After(5*time.Second, func() { ran = true })
	l.RunUntil(5 * time.Second)
	if !ran {
		t.Fatal("event exactly at deadline should run")
	}
}

func TestEverticksAndStops(t *testing.T) {
	l := NewLoop(1)
	n := 0
	tk := l.Every(time.Second, func() {
		n++
		if n == 3 {
			// Stop from within the callback.
		}
	})
	l.RunUntil(3 * time.Second)
	tk.Stop()
	l.RunUntil(10 * time.Second)
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	l := NewLoop(1)
	n := 0
	var tk *Ticker
	tk = l.Every(time.Second, func() {
		n++
		if n == 2 {
			tk.Stop()
		}
	})
	l.Run()
	if n != 2 {
		t.Fatalf("ticks = %d, want 2", n)
	}
}

func TestNestedScheduling(t *testing.T) {
	l := NewLoop(1)
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			l.After(time.Millisecond, recurse)
		}
	}
	l.After(0, recurse)
	l.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if l.Now() != 99*time.Millisecond {
		t.Fatalf("Now = %v, want 99ms", l.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(20)
		seen := make([]bool, 20)
		for _, v := range p {
			if v < 0 || v >= 20 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(99)
	n := 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}

func TestRNGExpFloat64Mean(t *testing.T) {
	r := NewRNG(123)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / float64(n)
	if mean < 0.97 || mean > 1.03 {
		t.Fatalf("mean = %v, want ~1", mean)
	}
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(5)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams produced identical first value")
	}
}

func TestManualClock(t *testing.T) {
	c := NewManualClock(time.Minute)
	if c.Now() != time.Minute {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Advance(time.Second)
	if c.Now() != time.Minute+time.Second {
		t.Fatalf("Now = %v", c.Now())
	}
	c.Set(2 * time.Minute)
	if c.Now() != 2*time.Minute {
		t.Fatalf("Now = %v", c.Now())
	}
}

func TestManualClockPanics(t *testing.T) {
	c := NewManualClock(time.Minute)
	mustPanic(t, func() { c.Advance(-1) })
	mustPanic(t, func() { c.Set(0) })
}

func TestLoopPanicsOnBadArgs(t *testing.T) {
	l := NewLoop(1)
	mustPanic(t, func() { l.At(0, nil) })
	mustPanic(t, func() { l.Every(0, func() {}) })
	mustPanic(t, func() { NewRNG(1).Intn(0) })
}

func mustPanic(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fn()
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(11)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", vals)
	}
}

func BenchmarkLoopScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		l := NewLoop(1)
		for j := 0; j < 1000; j++ {
			l.After(time.Duration(j)*time.Millisecond, func() {})
		}
		l.Run()
	}
}
