package sim

import (
	"testing"
	"time"

	"shardmanager/internal/trace"
)

// TestTracerOnLoop checks the trace integration: dispatch spans and
// queue-depth counters appear, stamped with loop time. It lives here rather
// than in internal/trace because sim imports trace.
func TestTracerOnLoop(t *testing.T) {
	l := NewLoop(1)
	tr := trace.New(trace.Options{})
	l.SetTracer(tr)
	if l.Tracer() != tr {
		t.Fatal("Tracer() did not return the attached tracer")
	}
	l.After(time.Second, func() {})
	l.After(2*time.Second, func() {})
	l.Run()
	spans := tr.FindSpans("sim.loop", "dispatch")
	if len(spans) != 2 {
		t.Fatalf("dispatch spans = %d, want 2", len(spans))
	}
	if spans[0].Start != time.Second || spans[1].Start != 2*time.Second {
		t.Fatalf("dispatch spans at %v, %v", spans[0].Start, spans[1].Start)
	}
	var depths int
	for _, s := range tr.Samples() {
		if s.Name == "queue_depth" {
			depths++
		}
	}
	if depths != 2 {
		t.Fatalf("queue_depth samples = %d, want 2", depths)
	}
}

// TestLoopWithoutTracerIsUnaffected guards the disabled-by-default path.
func TestLoopWithoutTracerIsUnaffected(t *testing.T) {
	l := NewLoop(1)
	if l.Tracer() != nil {
		t.Fatal("new loop has a tracer attached")
	}
	n := 0
	l.After(time.Second, func() { n++ })
	l.Run()
	if n != 1 {
		t.Fatalf("event ran %d times, want 1", n)
	}
}
