package sim

import (
	"math"
	"math/bits"
)

// The loop's pending-event store is a hierarchical timing wheel. The old
// implementation kept every scheduled event in one global binary heap, so
// each schedule and dispatch paid O(log n) pointer-chasing sift operations
// against an arbitrarily deep heap (~142k entries at 120k shards). The wheel
// replaces that with O(1) slot filing for the dominant short-delay events
// (RPC deliveries, retries, liveness timers) and defers ordering work until
// a tick actually becomes due.
//
// Geometry. Simulated time is divided into ticks of 2^20 ns (~1.05 ms).
// An event whose tick is delta ticks in the future is filed by delta:
//
//	delta <= 2^8      L0: 256 slots of one tick each, slot = tick & 255
//	delta <= 2^14     L1: 64 slots of 2^8 ticks,  slot = (tick >> 8) & 63
//	delta <= 2^20     L2: 64 slots of 2^14 ticks, slot = (tick >> 14) & 63
//	delta <= 2^26     L3: 64 slots of 2^20 ticks, slot = (tick >> 20) & 63
//	delta <= 2^32     L4: 64 slots of 2^26 ticks, slot = (tick >> 26) & 63
//	beyond            overflow: a small binary min-heap (~52+ days out)
//
// Slots are intrusive singly-linked lists (event.next), so filing is
// pointer-swap cheap and allocation-free. Occupancy bitmaps (four words for
// L0, one word per upper level) let the cursor skip empty slots with
// TrailingZeros64 instead of walking them.
//
// Ordering / determinism. Events due at or before the cursor live in
// "near", a binary min-heap keyed (at, seq) exactly like the old global
// heap. The loop dispatches only from near, and the cursor advances only
// when near is empty, so the event popped from near is always the globally
// minimal live (at, seq) — byte-for-byte the old dispatch order, including
// FIFO ties by seq. When the cursor crosses a slot boundary the covering
// upper-level slot cascades: its events re-file by their new delta, landing
// in L0 (or near) before their tick can become due.
type wheel struct {
	curTick uint64 // all events at ticks <= curTick are in near (or gone)

	near []*event // due events, min-heap on (at, seq)

	l0    [l0Slots]*event
	l0occ [l0Slots / 64]uint64

	lv    [numLevels][lvlSlots]*event
	lvocc [numLevels]uint64

	overflow []*event // far-future events, min-heap on (at, seq)

	stored    int // events held anywhere in the structure (incl. cancelled)
	cancelled int // cancelled-but-undrained events among stored
}

const (
	tickShift = 20 // tick = 2^20 ns ~= 1.05 ms of simulated time

	l0Slots = 256
	l0Mask  = l0Slots - 1

	numLevels = 4
	lvlSlots  = 64
	lvlMask   = lvlSlots - 1

	// compactFloor is the minimum number of cancelled-but-undrained events
	// before compaction is considered; below it the dead weight is too small
	// to matter and tiny unit-test workloads keep exact legacy occupancy.
	compactFloor = 256
)

// lvlShift[k] is the slot-index shift for level k; maxDelta[k] its horizon.
var (
	lvlShift = [numLevels]uint{8, 14, 20, 26}
	maxDelta = [numLevels]uint64{1 << 14, 1 << 20, 1 << 26, 1 << 32}
)

func tickOf(at int64) uint64 { return uint64(at) >> tickShift }

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// file places ev into near, a wheel slot, or overflow by its delta from the
// cursor. It does not touch stored: callers account for entering/leaving the
// structure; re-filing during a cascade is not a new entry.
func (w *wheel) file(ev *event) {
	t := tickOf(int64(ev.at))
	if t <= w.curTick {
		heapPush(&w.near, ev)
		return
	}
	delta := t - w.curTick
	if delta <= l0Slots {
		s := t & l0Mask
		ev.next = w.l0[s]
		w.l0[s] = ev
		w.l0occ[s>>6] |= 1 << (s & 63)
		return
	}
	for k := 0; k < numLevels; k++ {
		if delta <= maxDelta[k] {
			s := (t >> lvlShift[k]) & lvlMask
			ev.next = w.lv[k][s]
			w.lv[k][s] = ev
			w.lvocc[k] |= 1 << s
			return
		}
	}
	heapPush(&w.overflow, ev)
}

// advance moves the cursor forward until near is non-empty or the next
// occupied tick would exceed limit (then the cursor stops at limit). The
// caller must ensure near is empty. Work is bounded by occupancy: empty
// stretches are skipped via nextBoundary rather than walked tick by tick.
func (w *wheel) advance(limit uint64) {
	for {
		t := w.curTick + 1
		if t > limit {
			return
		}
		if t&l0Mask == 0 {
			w.cascadeAt(t)
		}
		if s := w.scanL0(int(t & l0Mask)); s >= 0 {
			tick := (t &^ uint64(l0Mask)) | uint64(s)
			if tick > limit {
				w.curTick = limit
				return
			}
			w.curTick = tick
			w.loadL0(s)
			return
		}
		// Rest of this 256-tick block is empty: jump to the next boundary
		// whose cascade can produce events (or to limit, whichever first).
		// L0 slots below the cursor's block offset wrap into the next block
		// (delta <= 256 spans the boundary), so any remaining L0 occupancy
		// after a failed tail scan pins the jump to the very next block.
		blockEnd := (t &^ uint64(l0Mask)) + l0Slots
		nb := blockEnd
		if w.l0occ[0]|w.l0occ[1]|w.l0occ[2]|w.l0occ[3] == 0 {
			nb = w.nextBoundary(blockEnd)
		}
		if nb-1 >= limit {
			w.curTick = limit
			return
		}
		w.curTick = nb - 1
	}
}

// cascadeAt re-files the upper-level slots that become current when the
// cursor reaches boundary b (a multiple of 256 ticks; curTick == b-1).
// Higher levels first, so events trickle down one filing per level at most.
// At L3 horizons the overflow heap is drained of everything newly within
// the wheel's reach.
func (w *wheel) cascadeAt(b uint64) {
	if b&(1<<26-1) == 0 {
		w.drainOverflow(b + (1 << 32))
		w.cascadeSlot(3, (b>>26)&lvlMask)
	}
	if b&(1<<20-1) == 0 {
		w.cascadeSlot(2, (b>>20)&lvlMask)
	}
	if b&(1<<14-1) == 0 {
		w.cascadeSlot(1, (b>>14)&lvlMask)
	}
	w.cascadeSlot(0, (b>>8)&lvlMask)
}

func (w *wheel) cascadeSlot(k int, s uint64) {
	ev := w.lv[k][s]
	if ev == nil {
		return
	}
	w.lv[k][s] = nil
	w.lvocc[k] &^= 1 << s
	for ev != nil {
		next := ev.next
		ev.next = nil
		w.file(ev)
		ev = next
	}
}

func (w *wheel) drainOverflow(horizon uint64) {
	for len(w.overflow) > 0 && tickOf(int64(w.overflow[0].at)) < horizon {
		w.file(heapPop(&w.overflow))
	}
}

// scanL0 returns the first occupied L0 slot index >= from, or -1.
func (w *wheel) scanL0(from int) int {
	wi := from >> 6
	word := w.l0occ[wi] & (^uint64(0) << uint(from&63))
	for {
		if word != 0 {
			return wi<<6 + bits.TrailingZeros64(word)
		}
		wi++
		if wi == len(w.l0occ) {
			return -1
		}
		word = w.l0occ[wi]
	}
}

// loadL0 moves slot s's events into near. Within one L0 slot all events
// share a tick, but their sub-tick at values differ; the near heap restores
// exact (at, seq) order regardless of list order.
func (w *wheel) loadL0(s int) {
	ev := w.l0[s]
	w.l0[s] = nil
	w.l0occ[s>>6] &^= 1 << uint(s&63)
	for ev != nil {
		next := ev.next
		ev.next = nil
		heapPush(&w.near, ev)
		ev = next
	}
}

// nextBoundary returns the earliest cascade boundary >= blockEnd at which
// events can (re-)enter lower levels: the first occupied slot per upper
// level, and the first L3 horizon that reaches the overflow head. Returns
// MaxUint64 when the upper levels and overflow are all empty.
func (w *wheel) nextBoundary(blockEnd uint64) uint64 {
	best := uint64(math.MaxUint64)
	for k := 0; k < numLevels; k++ {
		occ := w.lvocc[k]
		if occ == 0 {
			continue
		}
		shift := lvlShift[k]
		curU := w.curTick >> shift
		s0 := (curU + 1) & lvlMask
		// Rotate so bit j corresponds to slot (s0+j)&63: slots map to
		// units curU+1 .. curU+64 in circular order.
		rot := bits.RotateLeft64(occ, -int(s0))
		u := curU + 1 + uint64(bits.TrailingZeros64(rot))
		if b := u << shift; b < best {
			best = b
		}
	}
	if len(w.overflow) > 0 {
		// First multiple of 2^26 whose drain horizon (+2^32) covers the
		// overflow head. Overflow deltas exceed 2^32, so c never underflows
		// and the boundary lands strictly before the head's own tick.
		c := tickOf(int64(w.overflow[0].at)) - (1 << 32)
		b := (c>>26 + 1) << 26
		if b < blockEnd {
			b = blockEnd
		}
		if b < best {
			best = b
		}
	}
	if best < blockEnd {
		best = blockEnd
	}
	return best
}

// compact sweeps cancelled-but-undrained events out of every structure,
// recycling them onto the loop's freelist. Survivor order is irrelevant to
// correctness: near and overflow re-heapify on the (at, seq) total order,
// and slot lists are unordered by design.
func (w *wheel) compact(l *Loop) {
	w.near = compactHeap(w.near, l)
	for s := range w.l0 {
		if w.l0[s] == nil {
			continue
		}
		w.l0[s] = compactList(w.l0[s], l)
		if w.l0[s] == nil {
			w.l0occ[s>>6] &^= 1 << uint(s&63)
		}
	}
	for k := range w.lv {
		for s := range w.lv[k] {
			if w.lv[k][s] == nil {
				continue
			}
			w.lv[k][s] = compactList(w.lv[k][s], l)
			if w.lv[k][s] == nil {
				w.lvocc[k] &^= 1 << uint(s)
			}
		}
	}
	w.overflow = compactHeap(w.overflow, l)
	w.cancelled = 0
}

func compactHeap(h []*event, l *Loop) []*event {
	keep := h[:0]
	for _, ev := range h {
		if ev.cancelled() {
			l.w.stored--
			l.recycle(ev)
		} else {
			keep = append(keep, ev)
		}
	}
	// Zero the tail so dropped entries do not pin recycled events.
	for i := len(keep); i < len(h); i++ {
		h[i] = nil
	}
	heapify(keep)
	return keep
}

func compactList(head *event, l *Loop) *event {
	var out *event
	for ev := head; ev != nil; {
		next := ev.next
		ev.next = nil
		if ev.cancelled() {
			l.w.stored--
			l.recycle(ev)
		} else {
			ev.next = out
			out = ev
		}
		ev = next
	}
	return out
}

// Binary min-heap helpers over (at, seq) — shared by near and overflow.

func heapPush(h *[]*event, ev *event) {
	s := append(*h, ev)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
	*h = s
}

func heapPop(h *[]*event) *event {
	s := *h
	ev := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = nil
	s = s[:n]
	*h = s
	siftDown(s, 0)
	return ev
}

func siftDown(s []*event, i int) {
	n := len(s)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && eventLess(s[c+1], s[c]) {
			c++
		}
		if !eventLess(s[c], s[i]) {
			return
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
}

func heapify(s []*event) {
	for i := len(s)/2 - 1; i >= 0; i-- {
		siftDown(s, i)
	}
}
