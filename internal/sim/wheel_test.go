package sim

import (
	"testing"
	"time"
)

// The timing wheel must dispatch in exactly the order the old global binary
// heap did: ascending (at, seq), FIFO among ties, cancelled events silently
// skipped, RunUntil deadlines inclusive. The property test below drives
// randomized schedule/cancel/run scripts into a real Loop and into a naive
// reference model (linear scan for the minimum — trivially correct), and
// requires identical dispatch logs.

// refEvent is one event in the reference model.
type refEvent struct {
	at        time.Duration
	seq       uint64
	id        int
	child     time.Duration // >= 0: schedule a child this far ahead on fire
	fired     bool
	cancelled bool
}

// refModel is the obviously-correct pending-event store: an unordered slice
// scanned linearly for the minimum (at, seq).
type refModel struct {
	now    time.Duration
	seq    uint64
	events []*refEvent
	nextID int
	log    []int
}

func (r *refModel) schedule(d, child time.Duration) *refEvent {
	at := r.now + d
	if at < r.now {
		at = r.now
	}
	ev := &refEvent{at: at, seq: r.seq, id: r.nextID, child: child}
	r.seq++
	r.nextID++
	r.events = append(r.events, ev)
	return ev
}

func (r *refModel) pending() int {
	n := 0
	for _, ev := range r.events {
		if !ev.fired && !ev.cancelled {
			n++
		}
	}
	return n
}

func (r *refModel) runUntil(deadline time.Duration) {
	for {
		var min *refEvent
		for _, ev := range r.events {
			if ev.fired || ev.cancelled {
				continue
			}
			if min == nil || ev.at < min.at || (ev.at == min.at && ev.seq < min.seq) {
				min = ev
			}
		}
		if min == nil || min.at > deadline {
			break
		}
		min.fired = true
		r.now = min.at
		r.log = append(r.log, min.id)
		if min.child >= 0 {
			r.schedule(min.child, -1)
		}
	}
	if r.now < deadline {
		r.now = deadline
	}
}

// delayMix samples delays spanning every wheel level: sub-tick, L0 (~ms),
// L1 (~s), L2 (~min-h), L3 (~h), L4 (~days), and the overflow heap beyond
// ~52 days — plus exact tick-boundary values to probe off-by-one filing.
func delayMix(rng *RNG) time.Duration {
	const tick = 1 << tickShift
	switch rng.Intn(12) {
	case 0:
		return 0
	case 1:
		return time.Duration(rng.Intn(1000)) // sub-microsecond
	case 2:
		return time.Duration(rng.Intn(tick)) // within one tick
	case 3:
		return time.Duration(rng.Intn(200 * tick)) // L0
	case 4:
		return time.Duration(rng.Intn(int(30 * time.Second))) // L0/L1
	case 5:
		return time.Duration(rng.Intn(int(4 * time.Hour))) // L1/L2
	case 6:
		return 18*time.Hour + time.Duration(rng.Intn(int(12*time.Hour))) // L2/L3
	case 7:
		return time.Duration(1+rng.Intn(40)) * 24 * time.Hour // L3/L4
	case 8:
		return time.Duration(55+rng.Intn(120)) * 24 * time.Hour // L4/overflow
	case 9:
		// Exact tick multiples and their neighbors.
		base := time.Duration(rng.Intn(1<<14)) * tick
		return base + time.Duration(rng.Intn(3)-1)
	case 10:
		// Level-horizon boundaries: 2^8, 2^14, 2^20 ticks, +/- 1 tick.
		h := []time.Duration{1 << 8 * tick, 1 << 14 * tick, 1 << 20 * tick}[rng.Intn(3)]
		return h + time.Duration(rng.Intn(3)-1)*tick
	default:
		return time.Duration(rng.Intn(int(2 * time.Minute)))
	}
}

func TestWheelDispatchOrderMatchesReferenceHeap(t *testing.T) {
	const (
		seeds        = 8
		sequences    = 150 // x8 seeds = 1200 randomized scripts
		opsPerScript = 40
	)
	for seed := uint64(1); seed <= seeds; seed++ {
		rng := NewRNG(seed * 0x9e3779b9)
		for s := 0; s < sequences; s++ {
			loop := NewLoop(7)
			ref := &refModel{}
			var log []int
			var timers []*Timer
			var refs []*refEvent
			topIDs := make(map[int]bool)
			scheduleBoth := func() {
				d := delayMix(rng)
				child := time.Duration(-1)
				if rng.Intn(4) == 0 {
					child = delayMix(rng)
				}
				id := ref.nextID
				topIDs[id] = true
				re := ref.schedule(d, child)
				tm := loop.After(d, func() {
					log = append(log, id)
					if child >= 0 {
						// Children consume a seq on both sides in fire order;
						// the reference mirrors this inside runUntil. Only
						// top-level ids are logged and compared — a child
						// ordering bug still surfaces as a seq skew that
						// reorders later same-instant top-level events.
						loop.After(child, func() {})
					}
				})
				timers = append(timers, tm)
				refs = append(refs, re)
			}
			for op := 0; op < opsPerScript; op++ {
				switch rng.Intn(6) {
				case 0, 1, 2: // schedule (sometimes a same-instant burst)
					n := 1
					if rng.Intn(5) == 0 {
						n = 2 + rng.Intn(4)
					}
					for i := 0; i < n; i++ {
						scheduleBoth()
					}
				case 3: // cancel a random top-level timer
					if len(timers) > 0 {
						k := rng.Intn(len(timers))
						got := timers[k].Stop()
						want := !refs[k].fired && !refs[k].cancelled
						refs[k].cancelled = true
						if got != want {
							t.Fatalf("seed %d seq %d: Stop(#%d) = %v, reference pending = %v",
								seed, s, k, got, want)
						}
					}
				case 4: // run a bounded slice of time
					d := delayMix(rng)
					loop.RunFor(d)
					ref.runUntil(ref.now + d)
				case 5: // run to a far deadline crossing many cascades
					d := time.Duration(1+rng.Intn(3)) * 30 * time.Hour
					loop.RunFor(d)
					ref.runUntil(ref.now + d)
				}
				if got, want := loop.Pending(), ref.pending(); got != want {
					t.Fatalf("seed %d seq %d op %d: Pending = %d, reference = %d",
						seed, s, op, got, want)
				}
				if loop.Now() != ref.now {
					t.Fatalf("seed %d seq %d op %d: Now = %v, reference = %v",
						seed, s, op, loop.Now(), ref.now)
				}
			}
			// Drain everything (children included) and compare full logs.
			loop.RunFor(400 * 24 * time.Hour)
			ref.runUntil(ref.now + 400*24*time.Hour)
			want := make([]int, 0, len(ref.log))
			for _, id := range ref.log {
				if topIDs[id] {
					want = append(want, id)
				}
			}
			if len(log) != len(want) {
				t.Fatalf("seed %d seq %d: fired %d events, reference fired %d",
					seed, s, len(log), len(want))
			}
			for i := range log {
				if log[i] != want[i] {
					t.Fatalf("seed %d seq %d: dispatch order diverges at %d: got id %d, reference id %d",
						seed, s, i, log[i], want[i])
				}
			}
			if loop.Pending() != 0 || ref.pending() != 0 {
				t.Fatalf("seed %d seq %d: residue after drain: loop=%d ref=%d",
					seed, s, loop.Pending(), ref.pending())
			}
		}
	}
}

func TestCompactionSweepsCancelledEvents(t *testing.T) {
	l := NewLoop(1)
	timers := make([]*Timer, 0, 1000)
	fired := 0
	for i := 0; i < 1000; i++ {
		// Spread across levels so the sweep touches near, L0, upper levels.
		d := time.Duration(i) * 37 * time.Millisecond
		timers = append(timers, l.After(d, func() { fired++ }))
	}
	// Cancel 600. The sweep triggers at the 501st cancel (cancelled*2 >
	// stored once 501*2 > 1000), reclaiming all 501 dead entries; the
	// remaining 99 cancels sit below the 256-entry floor and await lazy
	// drain. So the structure holds 400 live + 99 cancelled entries.
	for i := 0; i < 600; i++ {
		timers[i].Stop()
	}
	if got := l.queueLen(); got != 499 {
		t.Fatalf("queueLen = %d after compaction, want 499 (400 live + 99 lazy)", got)
	}
	if got := l.Pending(); got != 400 {
		t.Fatalf("Pending = %d, want 400", got)
	}
	// Double-stop of compacted (recycled) timers must be inert.
	for i := 0; i < 600; i++ {
		if timers[i].Stop() {
			t.Fatalf("Stop(#%d) on compacted timer returned true", i)
		}
	}
	l.Run()
	if fired != 400 {
		t.Fatalf("fired = %d, want 400 survivors", fired)
	}
	if got := l.queueLen(); got != 0 {
		t.Fatalf("queueLen = %d after drain, want 0", got)
	}
}

func TestCompactionBelowFloorKeepsLazyEntries(t *testing.T) {
	l := NewLoop(1)
	var timers []*Timer
	for i := 0; i < 100; i++ {
		timers = append(timers, l.After(time.Duration(i+1)*time.Second, func() {}))
	}
	for _, tm := range timers {
		tm.Stop()
	}
	// 100 cancelled is under the 256 floor: entries stay for lazy drain,
	// exactly as the old heap behaved (drain_test pins this at small scale).
	if got := l.queueLen(); got != 100 {
		t.Fatalf("queueLen = %d, want 100 (no compaction below floor)", got)
	}
	l.RunUntil(2 * time.Minute)
	if got := l.queueLen(); got != 0 {
		t.Fatalf("queueLen = %d after drain, want 0", got)
	}
}

func TestScheduleDispatchAllocationFree(t *testing.T) {
	l := NewLoop(1)
	var n int
	cb := func(any) { n++ }
	// Warm the freelist and the near heap's capacity.
	for i := 0; i < 1000; i++ {
		l.PostArgL(time.Duration(i)*time.Millisecond, 0, cb, nil)
	}
	l.Run()
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 50; i++ {
			l.PostArgL(time.Duration(i)*13*time.Millisecond, 0, cb, nil)
		}
		l.Run()
	})
	if allocs != 0 {
		t.Fatalf("schedule+dispatch allocated %.2f allocs/run, want 0", allocs)
	}
}

func TestTickerSteadyStateAllocationFree(t *testing.T) {
	l := NewLoop(1)
	n := 0
	tk := l.Every(time.Second, func() { n++ })
	l.RunFor(10 * time.Second) // warm-up
	allocs := testing.AllocsPerRun(100, func() {
		l.RunFor(10 * time.Second)
	})
	tk.Stop()
	if allocs != 0 {
		t.Fatalf("ticker steady state allocated %.2f allocs/run, want 0", allocs)
	}
}
