package simprof

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// ReportOptions select what the text/JSON/folded exports contain.
type ReportOptions struct {
	// Wall includes wall-clock and allocation columns and sorts cost
	// centers by wall time. Wall measurements vary run to run; leave Wall
	// false for the byte-stable report the golden tests pin.
	Wall bool
}

// sortRowsByName orders rows by (component, kind): the deterministic
// report order.
func sortRowsByName(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Component != rows[j].Component {
			return rows[i].Component < rows[j].Component
		}
		return rows[i].Kind < rows[j].Kind
	})
}

// sortRowsByWall orders rows most-expensive first; every tie breaks on a
// deterministic key so the order is total even when wall times collide.
func sortRowsByWall(rows []Row) {
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].WallNS != rows[j].WallNS {
			return rows[i].WallNS > rows[j].WallNS
		}
		if rows[i].Fired != rows[j].Fired {
			return rows[i].Fired > rows[j].Fired
		}
		if rows[i].Component != rows[j].Component {
			return rows[i].Component < rows[j].Component
		}
		return rows[i].Kind < rows[j].Kind
	})
}

// WriteText renders the profile as a fixed-width table. Without o.Wall the
// output is derived purely from simulation state and is byte-identical
// across runs of the same seed.
func (p *Profile) WriteText(w io.Writer, o ReportOptions) error {
	rows := p.Rows()
	if o.Wall {
		sortRowsByWall(rows)
	}
	if _, err := fmt.Fprintf(w,
		"simprof: %d events dispatched (%d scheduled, %d cancelled), sim time %s..%s\n",
		p.total.fired, p.total.scheduled, p.total.cancelled,
		fmtSim(p.total.firstSim), fmtSim(p.total.lastSim)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event heap: max depth %d, avg depth %.1f; live timers max %d\n",
		p.maxHeap, p.AvgHeapDepth(), p.maxLive); err != nil {
		return err
	}
	header := fmt.Sprintf("%-14s %-18s %12s %12s %9s %8s %11s %11s",
		"component", "kind", "scheduled", "fired", "cancelled", "share", "first", "last")
	if o.Wall {
		header += fmt.Sprintf(" %10s %8s %12s", "wall ms", "ns/ev", "allocs")
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, r := range rows {
		comp, kind := r.name()
		line := fmt.Sprintf("%-14s %-18s %12d %12d %9d %7.2f%% %11s %11s",
			comp, kind, r.Scheduled, r.Fired, r.Cancelled,
			100*r.share(p.total.fired), fmtSim(r.FirstSim), fmtSim(r.LastSim))
		if o.Wall {
			nsPerEv := float64(0)
			if r.Fired > 0 {
				nsPerEv = float64(r.WallNS) / float64(r.Fired)
			}
			line += fmt.Sprintf(" %10.2f %8.0f %12d", float64(r.WallNS)/1e6, nsPerEv, r.Allocs)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// fmtSim renders a simulated timestamp compactly.
func fmtSim(d time.Duration) string { return d.String() }

// jsonReport is the WriteJSON schema. Field order is fixed by the struct,
// rows are sorted, and all values derive from integers, so the marshaled
// bytes are deterministic (wall fields appear only with ReportOptions.Wall).
type jsonReport struct {
	Events    uint64  `json:"events"`
	Scheduled uint64  `json:"scheduled"`
	Cancelled uint64  `json:"cancelled"`
	FirstSim  int64   `json:"first_sim_ns"`
	LastSim   int64   `json:"last_sim_ns"`
	HeapMax   int     `json:"heap_depth_max"`
	HeapAvg   float64 `json:"heap_depth_avg"`
	LiveMax   int     `json:"pending_timers_max"`
	WallNS    int64   `json:"wall_ns,omitempty"`
	Rows      []Row   `json:"rows"`
}

// WriteJSON renders the profile as indented JSON (byte-stable without
// o.Wall, like WriteText).
func (p *Profile) WriteJSON(w io.Writer, o ReportOptions) error {
	rows := p.Rows()
	if o.Wall {
		sortRowsByWall(rows)
	} else {
		for i := range rows {
			rows[i].WallNS = 0
			rows[i].Allocs = 0
		}
	}
	rep := jsonReport{
		Events:    p.total.fired,
		Scheduled: p.total.scheduled,
		Cancelled: p.total.cancelled,
		FirstSim:  int64(p.total.firstSim),
		LastSim:   int64(p.total.lastSim),
		HeapMax:   p.maxHeap,
		HeapAvg:   p.AvgHeapDepth(),
		LiveMax:   p.maxLive,
		Rows:      rows,
	}
	if o.Wall {
		rep.WallNS = p.total.wallNS
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// WriteFolded emits folded stacks ("sim;component;kind value") for
// flamegraph tooling (inferno, flamegraph.pl, speedscope). With o.Wall the
// value is wall-clock microseconds; without it, the event count — a
// deterministic "event flame".
func (p *Profile) WriteFolded(w io.Writer, o ReportOptions) error {
	for _, r := range p.Rows() {
		comp, kind := r.name()
		v := r.Fired
		if o.Wall {
			v = uint64(r.WallNS / 1000)
		}
		if v == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "sim;%s;%s %d\n", comp, kind, v); err != nil {
			return err
		}
	}
	return nil
}
